/**
 * @file
 * RQ3 reproduction (§4.4): precision and recall of the crash-site
 * mapping oracle, measured against the injected-bug ground truth
 * (where the paper relied on manual analysis of 58 selected and 200
 * sampled dropped discrepancies).
 */

#include "bench_util.h"

using namespace ubfuzz;

int
main()
{
    fuzzer::CampaignStats stats = bench::runStandardCampaign();
    bench::header("RQ3: crash-site mapping precision / recall");

    std::printf("UB programs tested:            %8zu\n",
                stats.ubPrograms);
    std::printf("programs with discrepancy:     %8zu\n",
                stats.discrepantPrograms);
    std::printf("discrepant (crash,miss) pairs: %8zu\n",
                stats.verdictPairs);
    std::printf("selected by the oracle:        %8zu\n",
                stats.selectedPairs);
    std::printf("  ... ground-truth bug-caused: %8zu\n",
                stats.selectedTrueBug);
    std::printf("  ... optimization-caused:     %8zu\n",
                stats.selectedOptimization);
    std::printf("dropped by the oracle:         %8zu\n",
                stats.droppedPairs);
    std::printf("  ... ground-truth bug-caused: %8zu\n",
                stats.droppedTrueBug);
    bench::rule();
    double precision =
        stats.selectedPairs
            ? 100.0 * stats.selectedTrueBug / stats.selectedPairs
            : 0.0;
    double recall =
        (stats.selectedTrueBug + stats.droppedTrueBug)
            ? 100.0 * stats.selectedTrueBug /
                  (stats.selectedTrueBug + stats.droppedTrueBug)
            : 0.0;
    std::printf("precision: %5.1f%%   recall: %5.1f%%\n", precision,
                recall);
    std::printf("paper: perfect precision on 58 selected "
                "discrepancies; 100%% recall on 200 sampled dropped "
                "ones\n");
    std::printf("note: the residual optimization-caused selections "
                "stem from GCC -O3 lifetime hoisting invalidating "
                "use-after-scope — the exact mechanism of the paper's "
                "one invalid report (Figure 8)\n");
    return 0;
}
