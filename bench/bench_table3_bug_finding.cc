/**
 * @file
 * Table 3 reproduction (RQ1, bug finding): run the full UBfuzz
 * campaign against the simulated compilers and report found sanitizer
 * bugs per compiler/sanitizer, alongside the paper-shaped
 * Reported/Confirmed/Fixed/Invalid rows derived from the injected-bug
 * catalog metadata.
 */

#include "bench_util.h"

using namespace ubfuzz;

int
main()
{
    int seeds = bench::seedCount(120);
    std::printf("campaign: %d seeds (set UBFUZZ_BENCH_SEEDS to "
                "scale)\n",
                seeds);
    fuzzer::CampaignStats stats = bench::runStandardCampaign(seeds);

    bench::header("Table 3: status of found sanitizer bugs");
    struct Cell
    {
        int reported = 0, confirmed = 0, fixed = 0, invalid = 0;
    };
    // Columns: GCC ASan, GCC UBSan, LLVM ASan, LLVM UBSan, LLVM MSan.
    Cell cells[5];
    auto column = [](const san::BugInfo &b) {
        if (b.vendor == Vendor::GCC)
            return b.sanitizer == SanitizerKind::ASan ? 0 : 1;
        if (b.sanitizer == SanitizerKind::ASan)
            return 2;
        return b.sanitizer == SanitizerKind::UBSan ? 3 : 4;
    };
    auto tally = [&](san::BugId id) {
        const san::BugInfo &b = san::bugInfo(id);
        Cell &c = cells[column(b)];
        c.reported++;
        if (b.confirmed)
            c.confirmed++;
        if (b.fixedAfterReport)
            c.fixed++;
    };
    for (const auto &[id, count] : stats.bugFindingCounts)
        tally(id);
    for (san::BugId id : stats.wrongReportBugs)
        if (!stats.bugFindingCounts.count(id))
            tally(id);
    // The oracle false alarm (Figure 8 / GCC -O3 lifetime hoisting)
    // surfaces as findings with no injected-bug explanation; after
    // deduplication it is one "Invalid" report against GCC ASan.
    if (stats.invalidFindings > 0) {
        cells[0].reported++;
        cells[0].invalid++;
    }

    const char *cols[] = {"GCC/ASan", "GCC/UBSan", "LLVM/ASan",
                          "LLVM/UBSan", "LLVM/MSan"};
    std::printf("%-12s", "Status");
    for (const char *c : cols)
        std::printf(" %10s", c);
    std::printf(" %7s\n", "Total");
    bench::rule();
    auto row = [&](const char *name, auto get) {
        std::printf("%-12s", name);
        int total = 0;
        for (const Cell &c : cells) {
            std::printf(" %10d", get(c));
            total += get(c);
        }
        std::printf(" %7d\n", total);
    };
    row("Reported", [](const Cell &c) { return c.reported; });
    row("Confirmed", [](const Cell &c) { return c.confirmed; });
    row("Fixed", [](const Cell &c) { return c.fixed; });
    row("Invalid", [](const Cell &c) { return c.invalid; });
    bench::rule();
    std::printf("paper (5-month campaign): Reported 9/7/6/8/1 = 31, "
                "Confirmed 8/7/2/2/1 = 20, Fixed 3/3/0/0/0 = 6, "
                "Invalid 1/0/0/0/0 = 1\n");
    std::printf("injected catalog: %zu real defects; campaign found "
                "%zu of them (plus %zu wrong-report, %s invalid)\n",
                san::kNumBugs, stats.bugFindingCounts.size(),
                stats.wrongReportBugs.size(),
                stats.invalidFindings ? "1" : "0");
    std::printf("programs: %zu UB programs tested, %zu discrepant, "
                "%zu selected by the oracle\n",
                stats.ubPrograms, stats.discrepantPrograms,
                stats.oracleSelectedPrograms);
    std::printf("\nfound bugs:\n");
    for (const auto &[id, count] : stats.bugFindingCounts) {
        std::printf("  %-48s %6zu findings\n", san::bugInfo(id).name,
                    count);
    }
    for (san::BugId id : stats.wrongReportBugs)
        std::printf("  %-48s (wrong-report)\n", san::bugInfo(id).name);
    return 0;
}
