/**
 * @file
 * Execution-engine microbenchmark: what does per-execution setup cost,
 * and what does the batched engine save?
 *
 *   ./build/bench/bench_exec [--runs N]
 *
 * Two scenarios over the same compiled binaries:
 *  - unbatched: vm::execute per run — every run rebuilds the machine
 *    (stack arena + two shadow planes, 0xAA fill) from scratch;
 *  - batched: one vm::Machine, reset() between runs — the construction
 *    cost is paid once and each reset restores only the bytes the
 *    previous run dirtied.
 *
 * Also runs one real differential matrix through an ExecutionPlan and
 * prints the engine counters, so the dedup-skip behavior is visible
 * outside a full campaign.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "ast/printer.h"
#include "bench_util.h"
#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "generator/generator.h"
#include "ir/lowering.h"
#include "oracle/oracle.h"
#include "support/parse_num.h"
#include "vm/bytecode.h"
#include "vm/vm.h"

using namespace ubfuzz;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    int runs = 300;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--runs") && i + 1 < argc) {
            // Strict parse: garbage, zero, and ERANGE-clamped values
            // abort instead of silently running a different count.
            auto v = support::parseInt(argv[++i], 1);
            if (!v) {
                std::fprintf(stderr, "--runs: invalid number '%s'\n",
                             argv[i]);
                return 2;
            }
            runs = *v;
        } else {
            std::fprintf(stderr, "usage: %s [--runs N]\n", argv[0]);
            return 2;
        }
    }

    // A representative binary: a generated seed program at gcc -O2.
    gen::GeneratorConfig gc;
    gc.seed = 20240427;
    gc.safeMath = true;
    auto prog = gen::generateProgram(gc);
    compiler::CompilerConfig cc;
    cc.level = OptLevel::O2;
    compiler::Binary bin = compiler::compileProgram(*prog, cc);

    bench::header("per-execution setup cost (batched vs unbatched)");
    std::printf("runs: %d\n", runs);

    auto t0 = std::chrono::steady_clock::now();
    uint64_t check = 0;
    for (int i = 0; i < runs; i++)
        check ^= vm::execute(bin.module).checksum;
    double unbatched = secondsSince(t0);

    vm::Machine machine;
    t0 = std::chrono::steady_clock::now();
    uint64_t check2 = 0;
    for (int i = 0; i < runs; i++)
        check2 ^= machine.run(bin.module).checksum;
    double batched = secondsSince(t0);

    if (check != check2) {
        std::fprintf(stderr, "FAIL: batched checksum diverged\n");
        return 1;
    }
    std::printf("unbatched:        %8.1f us/exec\n",
                unbatched * 1e6 / runs);
    std::printf("batched:          %8.1f us/exec  (%.2fx)\n",
                batched * 1e6 / runs,
                batched > 0 ? unbatched / batched : 0.0);
    std::printf("machines built:   %zu (for %zu executions, %zu "
                "resets)\n",
                machine.stats().machinesBuilt,
                machine.stats().executions, machine.stats().resets);

    bench::rule();
    bench::header("dispatch cost (struct-walking vs bytecode, silent run)");
    // The silent-run configuration is the campaign's hot loop: no
    // tracing, no profiling, no ground truth. Step-heavy programs so
    // the per-step dispatch cost dominates per-run setup; same binary,
    // same steps — only the interpreter differs. Two shapes: an
    // array-crunching loop (Load+Bin / Bin+Store / Cmp+Br pairs) and a
    // call/branch-heavy workload, so superinstruction coverage is
    // measured on more than one pairing profile. Each fast machine
    // shares a default CodeCache: the first run translates at the
    // baseline tier, the second quickens to the fused tier, and the
    // timed runs all execute fused records.
    auto measureWorkload = [&](const char *name, const char *src) {
        auto prog = frontend::parseOrDie(src);
        ast::PrintedProgram printed2 = ast::printProgram(*prog);
        ir::Module mod = ir::lowerProgram(*prog, printed2.map);
        vm::Machine refMachine;
        vm::ExecResult refRes = refMachine.runReference(mod);
        vm::CodeCache cache;
        vm::Machine fastMachine(&cache);
        vm::ExecResult fastRes = fastMachine.run(mod);
        if (fastRes.checksum != refRes.checksum ||
            fastRes.steps != refRes.steps) {
            std::fprintf(stderr,
                         "FAIL: %s: bytecode run diverged from the "
                         "reference interpreter\n",
                         name);
            std::exit(1);
        }
        int dispatchRuns = std::max(10, runs / 10);
        auto t1 = std::chrono::steady_clock::now();
        for (int i = 0; i < dispatchRuns; i++)
            refMachine.runReference(mod);
        double refSecs = secondsSince(t1);
        t1 = std::chrono::steady_clock::now();
        for (int i = 0; i < dispatchRuns; i++)
            fastMachine.run(mod);
        double fastSecs = secondsSince(t1);
        double stepsTotal = static_cast<double>(refRes.steps) *
                            static_cast<double>(dispatchRuns);
        double refNs = refSecs * 1e9 / stepsTotal;
        double fastNs = fastSecs * 1e9 / stepsTotal;
        std::printf("-- workload: %s --\n", name);
        std::printf("steps/exec:       %llu\n",
                    static_cast<unsigned long long>(refRes.steps));
        std::printf("struct-walking:   %8.2f ns/step\n", refNs);
        std::printf("bytecode:         %8.2f ns/step  (%.2fx)\n", fastNs,
                    fastNs > 0 ? refNs / fastNs : 0.0);
        std::printf("translations:     %zu (hits: %zu, for %zu "
                    "bytecode executions)\n",
                    fastMachine.stats().translations,
                    fastMachine.stats().translationHits,
                    fastMachine.stats().executions);
        vm::bc::Program fused = vm::bc::translate(mod, vm::bc::kTierFused);
        std::printf("fused records:    %u of %zu (%.1f%% of records)\n",
                    fused.fusedRecords, fused.code.size(),
                    100.0 * fused.fusedRecords / fused.code.size());
        std::printf("quickened:        %zu translation(s)\n",
                    cache.quickenedTranslations());
        if (fused.fusedRecords == 0) {
            std::fprintf(stderr,
                         "FAIL: %s: fusion pass found no pairs\n", name);
            std::exit(1);
        }
        if (cache.quickenedTranslations() == 0 ||
            cache.fusedRecords() != fused.fusedRecords) {
            std::fprintf(stderr,
                         "FAIL: %s: hot binary was not quickened\n",
                         name);
            std::exit(1);
        }
    };
    measureWorkload("array loop", R"(int a[64];
int helper(int x) {
    return x * 3 + 1;
}
int main(void) {
    long s = 0l;
    for (int i = 0; i < 20000; i += 1) {
        int j = i % 64;
        a[j] = a[j] + helper(i);
        s += (long)(a[j] % 100);
        s += (long)((i * 7) % 13);
    }
    __checksum(s);
    return (int)(s % 256l);
}
)");
    measureWorkload("call/branch", R"(int collatz(int n) {
    int c = 0;
    while (n != 1 && c < 200) {
        if ((n % 2) == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        c += 1;
    }
    return c;
}
int depth2(int x) {
    return collatz(x) + 1;
}
int main(void) {
    long s = 0l;
    for (int i = 1; i < 4000; i += 1) {
        int v = (i % 97) + 2;
        if ((i % 3) == 0) {
            s += (long)collatz(v);
        } else {
            s += (long)depth2(v + 1);
        }
    }
    __checksum(s);
    return (int)(s % 256l);
}
)");

    bench::rule();
    bench::header("one differential matrix through an ExecutionPlan");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    compiler::CompilationCache cache(*prog, printed);
    vm::Machine shared;
    auto configs = oracle::testingMatrix(SanitizerKind::ASan);
    t0 = std::chrono::steady_clock::now();
    oracle::DifferentialResult diff =
        oracle::runDifferential(cache, shared, configs, 1'000'000);
    double matrix = secondsSince(t0);
    std::printf("configs:          %zu\n", diff.outcomes.size());
    std::printf("elapsed:          %.3f ms\n", matrix * 1e3);
    std::printf("executions:       %zu (dedup skips: %zu)\n",
                shared.stats().executions, shared.stats().dedupSkips);
    std::printf("machines built:   %zu, resets: %zu\n",
                shared.stats().machinesBuilt, shared.stats().resets);
    std::printf("timeouts:         %zu\n", diff.timeouts);
    return 0;
}
