/**
 * @file
 * Table 5 reproduction (RQ4): structural coverage of the simulated
 * compilers' sanitizer code while compiling each corpus. Gcov over
 * GCC/LLVM sanitizer files in the paper; here the optimizer and
 * sanitizer passes carry explicit coverage sites (support/coverage.h)
 * sliced per vendor.
 */

#include "bench_util.h"

#include "ast/printer.h"
#include "compiler/compiler.h"
#include "generator/generator.h"
#include "mutation/music.h"
#include "support/coverage.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"

using namespace ubfuzz;

namespace {

/** Compile a program with every sanitizer both vendors support. */
void
compileAllConfigs(ast::Program &prog)
{
    ast::PrintedProgram printed = ast::printProgram(prog);
    for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
        for (SanitizerKind s : {SanitizerKind::ASan,
                                SanitizerKind::UBSan,
                                SanitizerKind::MSan}) {
            if (!vendorSupports(v, s))
                continue;
            compiler::CompilerConfig c;
            c.vendor = v;
            c.level = OptLevel::O2;
            c.sanitizer = s;
            compiler::compile(prog, printed, c);
        }
    }
}

void
report(const char *name)
{
    CovReport gcc = CoverageRegistry::instance().report("gcc.");
    CovReport llvm = CoverageRegistry::instance().report("llvm.");
    std::printf("%-14s GCC:  LC %5.1f%%  FC %5.1f%%  BC %5.1f%%   "
                "LLVM: LC %5.1f%%  FC %5.1f%%  BC %5.1f%%\n",
                name, gcc.linePct(), gcc.funcPct(), gcc.branchPct(),
                llvm.linePct(), llvm.funcPct(), llvm.branchPct());
}

} // namespace

int
main()
{
    int seeds = bench::seedCount(40);
    std::printf("programs per corpus: derived from %d seeds\n\n",
                seeds);
    bench::header("Table 5: coverage of sanitizer-related compiler "
                  "code per input corpus");
    Rng rng(11);
    auto &registry = CoverageRegistry::instance();

    // Seeds only.
    registry.resetHits();
    for (int i = 0; i < seeds; i++) {
        gen::GeneratorConfig gc;
        gc.seed = 500 + static_cast<uint64_t>(i);
        auto prog = gen::generateProgram(gc);
        compileAllConfigs(*prog);
    }
    report("Seeds");

    // MUSIC mutants.
    registry.resetHits();
    for (int i = 0; i < seeds; i++) {
        gen::GeneratorConfig gc;
        gc.seed = 500 + static_cast<uint64_t>(i);
        auto seed = gen::generateProgram(gc);
        compileAllConfigs(*seed);
        for (int m = 0; m < 6; m++) {
            auto mutant = mutation::musicMutate(*seed, rng);
            if (mutant)
                compileAllConfigs(*mutant);
        }
    }
    report("MUSIC");

    // Csmith-NoSafe.
    registry.resetHits();
    for (int i = 0; i < seeds * 7; i++) {
        gen::GeneratorConfig gc;
        gc.seed = 90000 + static_cast<uint64_t>(i);
        gc.safeMath = false;
        auto prog = gen::generateProgram(gc);
        compileAllConfigs(*prog);
    }
    report("Csmith-NoSafe");

    // UBfuzz programs.
    registry.resetHits();
    for (int i = 0; i < seeds; i++) {
        gen::GeneratorConfig gc;
        gc.seed = 500 + static_cast<uint64_t>(i);
        auto seed = gen::generateProgram(gc);
        compileAllConfigs(*seed);
        ubgen::UBGenerator gen(*seed);
        for (auto &ub : gen.generateAll(rng, 3))
            compileAllConfigs(*ub.program);
    }
    report("UBfuzz");

    bench::rule();
    std::printf("paper shape: all generators a moderate improvement "
                "over seeds; UBfuzz/Csmith-NoSafe the largest\n");
    return 0;
}
