/**
 * @file
 * Table 1 reproduction: for every UB kind, generate a UB program via
 * shadow statement insertion from a fixed seed and show the inserted
 * shadow statement plus ground-truth validation — the executable form
 * of the paper's "UB conditions and shadow statements" table.
 */

#include "bench_util.h"

#include "ast/printer.h"
#include "generator/generator.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"

using namespace ubfuzz;

int
main()
{
    bench::header("Table 1: shadow statement instantiations "
                  "(one generated UB program per kind)");
    Rng rng(7);
    size_t shown[ubgen::kNumUBKinds] = {};
    for (uint64_t seed = 1; seed <= 40; seed++) {
        gen::GeneratorConfig gc;
        gc.seed = seed;
        auto prog = gen::generateProgram(gc);
        ubgen::UBGenerator gen(*prog);
        for (ubgen::UBKind kind : ubgen::kAllUBKinds) {
            if (shown[static_cast<size_t>(kind)])
                continue;
            auto programs = gen.generate(kind, rng, 4);
            for (auto &ub : programs) {
                if (!ubgen::validateUBProgram(ub))
                    continue;
                shown[static_cast<size_t>(kind)] = 1;
                std::string sanis;
                for (SanitizerKind s : ubgen::sanitizersFor(kind)) {
                    sanis += sanitizerName(s);
                    sanis += " ";
                }
                std::printf("%-22s  shadow: %-44s  sanitizers: %s\n",
                            ubgen::ubKindName(kind),
                            ub.shadowDesc.c_str(), sanis.c_str());
                break;
            }
        }
    }
    bench::rule();
    size_t covered = 0;
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++)
        covered += shown[k];
    std::printf("kinds covered: %zu / %zu (paper: all 9 kinds "
                "supported)\n",
                covered, ubgen::kNumUBKinds);
    return 0;
}
