/**
 * @file
 * Shared helpers for the experiment-reproduction harnesses. Every
 * bench binary regenerates one of the paper's tables or figures; the
 * campaign scale is controlled by UBFUZZ_BENCH_SEEDS (default tuned so
 * each binary finishes in well under a minute).
 */

#ifndef UBFUZZ_BENCH_BENCH_UTIL_H
#define UBFUZZ_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzzer/fuzzer.h"
#include "support/parse_num.h"

namespace ubfuzz::bench {

/**
 * UBFUZZ_BENCH_SEEDS, strictly parsed (support::parseInt): a typo
 * ("6O", "1e3", "") or an overflowing value ("9e30"-sized digits,
 * which raw strtol clamps with errno=ERANGE) must abort the run, not
 * silently shrink or clamp the campaign — the same policy the
 * campaign CLI applies to its flags.
 */
inline int
seedCount(int fallback = 60)
{
    const char *env = std::getenv("UBFUZZ_BENCH_SEEDS");
    if (!env)
        return fallback;
    auto v = support::parseInt(env, 1, 1000000);
    if (!v) {
        std::fprintf(stderr,
                     "UBFUZZ_BENCH_SEEDS: invalid seed count '%s' "
                     "(want an integer in [1, 1000000])\n",
                     env);
        std::exit(2);
    }
    return *v;
}

inline fuzzer::CampaignStats
runStandardCampaign(int seeds = seedCount())
{
    fuzzer::CampaignConfig cfg;
    cfg.seed = 20240427; // ASPLOS'24 conference date
    cfg.numSeeds = seeds;
    cfg.capPerKind = 4;
    return fuzzer::runCampaign(cfg);
}

inline void
header(const char *title)
{
    std::printf("==== %s ====\n", title);
}

inline void
rule()
{
    std::printf("------------------------------------------"
                "----------------------------\n");
}

} // namespace ubfuzz::bench

#endif // UBFUZZ_BENCH_BENCH_UTIL_H
