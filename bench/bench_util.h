/**
 * @file
 * Shared helpers for the experiment-reproduction harnesses. Every
 * bench binary regenerates one of the paper's tables or figures; the
 * campaign scale is controlled by UBFUZZ_BENCH_SEEDS (default tuned so
 * each binary finishes in well under a minute).
 */

#ifndef UBFUZZ_BENCH_BENCH_UTIL_H
#define UBFUZZ_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzzer/fuzzer.h"

namespace ubfuzz::bench {

inline int
seedCount(int fallback = 60)
{
    if (const char *env = std::getenv("UBFUZZ_BENCH_SEEDS"))
        return std::max(1, std::atoi(env));
    return fallback;
}

inline fuzzer::CampaignStats
runStandardCampaign(int seeds = seedCount())
{
    fuzzer::CampaignConfig cfg;
    cfg.seed = 20240427; // ASPLOS'24 conference date
    cfg.numSeeds = seeds;
    cfg.capPerKind = 4;
    return fuzzer::runCampaign(cfg);
}

inline void
header(const char *title)
{
    std::printf("==== %s ====\n", title);
}

inline void
rule()
{
    std::printf("------------------------------------------"
                "----------------------------\n");
}

} // namespace ubfuzz::bench

#endif // UBFUZZ_BENCH_BENCH_UTIL_H
