/**
 * @file
 * Table 2 reproduction: the UB kind <-> sanitizer support matrix, plus
 * an executable confirmation that a bug-free configuration of each
 * supporting sanitizer actually detects each kind at -O0.
 */

#include "bench_util.h"

#include "ast/printer.h"
#include "compiler/compiler.h"
#include "generator/generator.h"
#include "ir/lowering.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"
#include "vm/vm.h"

using namespace ubfuzz;

int
main()
{
    bench::header("Table 2: UB kinds supported by each sanitizer");
    std::printf("%-24s %-8s %-8s %-8s  detection confirmed\n", "UB",
                "ASan", "UBSan", "MSan");
    bench::rule();

    Rng rng(3);
    for (ubgen::UBKind kind : ubgen::kAllUBKinds) {
        auto sanis = ubgen::sanitizersFor(kind);
        auto has = [&](SanitizerKind s) {
            for (SanitizerKind x : sanis)
                if (x == s)
                    return true;
            return false;
        };
        // Confirm with a generated UB program of this kind.
        std::string confirmed = "-";
        for (uint64_t seed = 1; seed <= 30 && confirmed == "-";
             seed++) {
            gen::GeneratorConfig gc;
            gc.seed = seed * 13 + 1;
            auto prog = gen::generateProgram(gc);
            ubgen::UBGenerator gen(*prog);
            for (auto &ub : gen.generate(kind, rng, 3)) {
                if (!ubgen::validateUBProgram(ub))
                    continue;
                // Compile with the first supporting sanitizer on a
                // bug-free (version 1) compiler at -O0.
                compiler::CompilerConfig cc;
                cc.vendor = sanis[0] == SanitizerKind::MSan
                                ? Vendor::LLVM
                                : Vendor::GCC;
                cc.version = 1;
                cc.level = OptLevel::O0;
                cc.sanitizer = sanis[0];
                auto bin = compiler::compileProgram(*ub.program, cc);
                auto r = vm::execute(bin.module);
                if (r.crashed() &&
                    ubgen::reportMatchesKind(kind, r.report)) {
                    confirmed = vm::reportKindName(r.report);
                    break;
                }
            }
        }
        std::printf("%-24s %-8s %-8s %-8s  %s\n",
                    ubgen::ubKindName(kind),
                    has(SanitizerKind::ASan) ? "yes" : "-",
                    has(SanitizerKind::UBSan) ? "yes" : "-",
                    has(SanitizerKind::MSan) ? "yes" : "-",
                    confirmed.c_str());
    }
    return 0;
}
