/**
 * @file
 * Figure 10 reproduction: number of found bugs affecting each stable
 * compiler release. Each found bug's trigger conditions are replayed
 * against every simulated stable version (the bug is active from its
 * introduction release onward — none of the found bugs was fixed in
 * any stable release, matching the paper's "long-standing latent
 * bugs" observation).
 */

#include "bench_util.h"

using namespace ubfuzz;

int
main()
{
    fuzzer::CampaignStats stats = bench::runStandardCampaign();
    bench::header("Figure 10: stable versions affected by found bugs");

    for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
        std::printf("%s stable releases:\n", vendorName(v));
        for (int ver = firstStableVersion(v);
             ver <= lastStableVersion(v); ver++) {
            int affected = 0;
            for (const san::BugInfo &b : san::bugCatalog()) {
                bool found = stats.bugFindingCounts.count(b.id) ||
                             stats.wrongReportBugs.count(b.id);
                if (found && b.vendor == v &&
                    b.introducedVersion <= ver)
                    affected++;
            }
            std::printf("  %s-%-2d  %3d  ", vendorName(v), ver,
                        affected);
            for (int i = 0; i < affected; i++)
                std::printf("#");
            std::printf("\n");
        }
    }
    bench::rule();
    std::printf("paper shape: most bugs affect many stable releases — "
                "they were latent since the sanitizers launched\n");
    return 0;
}
