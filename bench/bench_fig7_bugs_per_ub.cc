/**
 * @file
 * Figure 7 reproduction: number of found bugs per triggering UB kind,
 * with buffer overflow split by detecting sanitizer (ASan vs UBSan) as
 * in the paper.
 */

#include "bench_util.h"

using namespace ubfuzz;

int
main()
{
    fuzzer::CampaignStats stats = bench::runStandardCampaign();
    bench::header("Figure 7: bugs per UB kind");

    std::map<std::string, int> buckets;
    for (const auto &[id, kind] : stats.bugFirstKind) {
        if (!stats.bugFindingCounts.count(id))
            continue;
        const san::BugInfo &b = san::bugInfo(id);
        std::string label = ubgen::ubKindName(kind);
        if (kind == ubgen::UBKind::BufferOverflowArray ||
            kind == ubgen::UBKind::BufferOverflowPointer) {
            label = std::string("buf-overflow(") +
                    sanitizerName(b.sanitizer) + ")";
        }
        buckets[label]++;
    }
    for (const auto &[label, n] : buckets) {
        std::printf("%-26s %3d  ", label.c_str(), n);
        for (int i = 0; i < n; i++)
            std::printf("#");
        std::printf("\n");
    }
    bench::rule();
    std::printf("paper shape: bugs found for every UB kind; buffer "
                "overflow (ASan) the largest bucket\n");
    return 0;
}
