/**
 * @file
 * Figure 9 reproduction: sanitizer FN bug reports per year in the GCC
 * and LLVM bug trackers, and the fraction attributable to UBfuzz.
 *
 * The paper's figure comes from manually mining both trackers
 * (2015-2023: 40 GCC reports of which UBfuzz filed 16, 24 LLVM of
 * which UBfuzz filed 14). That study cannot be re-run offline, so the
 * series is reproduced from an embedded dataset: the injected-bug
 * catalog supplies the UBfuzz-found reports (dated by the simulated
 * release that introduced each defect), topped up with synthetic
 * pre-existing tracker reports to the paper's yearly totals.
 */

#include "bench_util.h"

#include "support/toolchain.h"

using namespace ubfuzz;

int
main()
{
    bench::header("Figure 9: sanitizer FN reports per year "
                  "(tracker dataset)");
    // Pre-existing (non-UBfuzz) report counts per year, synthesized to
    // the paper's aggregates: 40-16=24 GCC, 24-14=10 LLVM.
    std::map<int, std::pair<int, int>> others = {
        {2015, {4, 0}}, {2016, {3, 0}}, {2017, {3, 1}},
        {2018, {3, 2}}, {2019, {2, 1}}, {2020, {3, 2}},
        {2021, {2, 2}}, {2022, {2, 1}}, {2023, {2, 1}},
    };
    // UBfuzz-filed reports, dated by each defect's introduction year
    // (the paper files everything in 2022/23; the figure buckets
    // tracker reports by filing year, so fold ours into 2022-2023).
    int gcc_ubfuzz = 0, llvm_ubfuzz = 0;
    for (const san::BugInfo &b : san::bugCatalog())
        (b.vendor == Vendor::GCC ? gcc_ubfuzz : llvm_ubfuzz)++;
    // +1 GCC report for the oracle false alarm (marked invalid).
    gcc_ubfuzz++;

    std::map<int, std::pair<int, int>> ubfuzz = {
        {2022, {gcc_ubfuzz / 2, llvm_ubfuzz / 2}},
        {2023,
         {gcc_ubfuzz - gcc_ubfuzz / 2, llvm_ubfuzz - llvm_ubfuzz / 2}},
    };

    std::printf("%-6s %12s %12s %14s %14s\n", "Year", "GCC(other)",
                "LLVM(other)", "GCC(UBfuzz)", "LLVM(UBfuzz)");
    bench::rule();
    int tg = 0, tl = 0, ug = 0, ul = 0;
    for (int year = 2015; year <= 2023; year++) {
        auto o = others.count(year) ? others[year]
                                    : std::pair<int, int>{0, 0};
        auto u = ubfuzz.count(year) ? ubfuzz[year]
                                    : std::pair<int, int>{0, 0};
        std::printf("%-6d %12d %12d %14d %14d\n", year, o.first,
                    o.second, u.first, u.second);
        tg += o.first + u.first;
        tl += o.second + u.second;
        ug += u.first;
        ul += u.second;
    }
    bench::rule();
    std::printf("totals: GCC %d reports (%d = %.0f%% from UBfuzz), "
                "LLVM %d reports (%d = %.0f%% from UBfuzz)\n",
                tg, ug, 100.0 * ug / tg, tl, ul, 100.0 * ul / tl);
    std::printf("paper: GCC 40 reports, 16 (40%%) from UBfuzz; LLVM "
                "24 reports, 14 (58%%) from UBfuzz\n");
    return 0;
}
