/**
 * @file
 * Toolchain throughput micro-benchmarks (google-benchmark): the raw
 * rates behind the campaign — seed generation, printing + lowering,
 * full sanitizer compiles, VM execution, and UB program generation.
 */

#include <benchmark/benchmark.h>

#include "ast/printer.h"
#include "compiler/compiler.h"
#include "generator/generator.h"
#include "ir/lowering.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"
#include "vm/vm.h"

using namespace ubfuzz;

static void
BM_GenerateSeed(benchmark::State &state)
{
    uint64_t seed = 1;
    for (auto _ : state) {
        gen::GeneratorConfig cfg;
        cfg.seed = seed++;
        auto prog = gen::generateProgram(cfg);
        benchmark::DoNotOptimize(prog);
    }
}
BENCHMARK(BM_GenerateSeed);

static void
BM_PrintAndLower(benchmark::State &state)
{
    gen::GeneratorConfig cfg;
    cfg.seed = 42;
    auto prog = gen::generateProgram(cfg);
    for (auto _ : state) {
        ast::PrintedProgram printed = ast::printProgram(*prog);
        ir::Module mod = ir::lowerProgram(*prog, printed.map);
        benchmark::DoNotOptimize(mod);
    }
}
BENCHMARK(BM_PrintAndLower);

static void
BM_CompileAsanO2(benchmark::State &state)
{
    gen::GeneratorConfig cfg;
    cfg.seed = 42;
    auto prog = gen::generateProgram(cfg);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    compiler::CompilerConfig cc;
    cc.vendor = Vendor::GCC;
    cc.level = OptLevel::O2;
    cc.sanitizer = SanitizerKind::ASan;
    for (auto _ : state) {
        auto bin = compiler::compile(*prog, printed, cc);
        benchmark::DoNotOptimize(bin);
    }
}
BENCHMARK(BM_CompileAsanO2);

static void
BM_ExecuteBinary(benchmark::State &state)
{
    gen::GeneratorConfig cfg;
    cfg.seed = 42;
    auto prog = gen::generateProgram(cfg);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    compiler::CompilerConfig cc;
    cc.vendor = Vendor::GCC;
    cc.level = OptLevel::O2;
    cc.sanitizer = SanitizerKind::ASan;
    auto bin = compiler::compile(*prog, printed, cc);
    for (auto _ : state) {
        auto r = vm::execute(bin.module);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ExecuteBinary);

static void
BM_UBGenAllKinds(benchmark::State &state)
{
    gen::GeneratorConfig cfg;
    cfg.seed = 42;
    auto prog = gen::generateProgram(cfg);
    Rng rng(1);
    for (auto _ : state) {
        ubgen::UBGenerator gen(*prog);
        auto programs = gen.generateAll(rng, 2);
        benchmark::DoNotOptimize(programs);
    }
}
BENCHMARK(BM_UBGenAllKinds);

BENCHMARK_MAIN();
