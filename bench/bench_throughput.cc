/**
 * @file
 * Campaign throughput harness: how many UB programs per second the
 * full pipeline (generate -> inject -> sanitizer matrix -> oracle)
 * sustains, and how that scales with the worker pool.
 *
 *   ./build/bench/bench_throughput [--jobs N] [--seeds N] [--seed S]
 *
 * `--jobs 0` uses every hardware thread. The finding digest is
 * invariant under --jobs: the orchestrator guarantees bit-identical
 * results for any pool size, so two runs that differ only in --jobs
 * must print the same programs/findings/digest lines.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "fuzzer/orchestrator.h"
#include "support/parse_num.h"

using namespace ubfuzz;

namespace {

/** Strict int flag: garbage, trailing junk, overflow (ERANGE), and
 *  values below @p min all abort instead of clamping. */
int
intArg(int argc, char **argv, int &i, const char *flag, int min)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
    }
    auto v = support::parseInt(argv[++i], min);
    if (!v) {
        std::fprintf(stderr, "%s: invalid number '%s'\n", flag, argv[i]);
        std::exit(2);
    }
    return *v;
}

/** Strict 64-bit flag for the campaign seed (any uint64 value). */
uint64_t
u64Arg(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
    }
    auto v = support::parseUint64(argv[++i]);
    if (!v) {
        std::fprintf(stderr, "%s: invalid number '%s'\n", flag, argv[i]);
        std::exit(2);
    }
    return *v;
}

} // namespace

int
main(int argc, char **argv)
{
    fuzzer::CampaignConfig cfg;
    cfg.seed = 20240427;
    cfg.capPerKind = 4;
    cfg.numSeeds = bench::seedCount(60);
    cfg.jobs = 1;

    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--jobs") || !std::strcmp(argv[i], "-j"))
            cfg.jobs = intArg(argc, argv, i, "--jobs", 0);
        else if (!std::strcmp(argv[i], "--seeds"))
            cfg.numSeeds = intArg(argc, argv, i, "--seeds", 1);
        else if (!std::strcmp(argv[i], "--seed"))
            cfg.seed = u64Arg(argc, argv, i, "--seed");
        else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--seeds N] [--seed S]\n",
                         argv[0]);
            return 2;
        }
    }

    int jobs = fuzzer::resolveJobs(cfg.jobs);
    std::printf("bench_throughput: %d seeds, seed=%llu, jobs=%d\n",
                cfg.numSeeds,
                static_cast<unsigned long long>(cfg.seed), jobs);

    auto t0 = std::chrono::steady_clock::now();
    fuzzer::CampaignStats stats = fuzzer::runCampaign(cfg);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs <= 0)
        secs = 1e-9;

    std::printf("elapsed:          %.3f s\n", secs);
    std::printf("seeds (unprof.):  %zu (%zu)\n", stats.seeds,
                stats.unprofiledSeeds);
    std::printf("ub programs:      %zu\n", stats.ubPrograms);
    std::printf("programs/sec:     %.1f\n",
                static_cast<double>(stats.ubPrograms) / secs);
    std::printf("seeds/sec:        %.1f\n",
                static_cast<double>(stats.seeds) / secs);
    std::printf("selected pairs:   %zu\n", stats.selectedPairs);
    std::printf("distinct bugs:    %zu\n", stats.distinctBugsFound());
    std::printf("findings:         %zu\n", stats.findings.size());
    // Staged-compiler counters: with the seed-level cache, full
    // lowerings track productive seeds (one base each, plus counted
    // fallbacks) while every derived UB program lowers incrementally;
    // a jump here is a hot-path regression even when the digest is
    // unchanged.
    std::printf("productive seeds: %zu\n", stats.productiveSeeds());
    std::printf("lowerings:        %zu\n", stats.compile.lowerings);
    std::printf("delta lowerings:  %zu\n", stats.compile.deltaLowerings);
    std::printf("delta fallbacks:  %zu\n", stats.compile.deltaFallbacks);
    std::printf("early-opt runs:   %zu (cache hits: %zu)\n",
                stats.compile.earlyOptRuns,
                stats.compile.earlyOptCacheHits);
    std::printf("specializations:  %zu\n", stats.compile.specializations);
    // Every trace run used to be a second compile of a silent binary.
    std::printf("trace re-execs:   %zu (formerly recompiles)\n",
                stats.compile.traceExecutions);
    // Batched-execution counters: one machine per tested program (not
    // one per run), cheap resets in between, and executions skipped
    // when an identical binary already ran in the same matrix.
    std::printf("machines built:   %zu\n", stats.exec.machinesBuilt);
    std::printf("machine resets:   %zu\n", stats.exec.resets);
    std::printf("executions:       %zu\n", stats.exec.executions);
    // Bytecode engine: every execution resolves through the per-unit
    // CodeCache exactly once, so executions == translations + hits; a
    // binary re-executed (the debugger trace runs) is a hit, never a
    // second flattening.
    std::printf("translations:     %zu\n", stats.exec.translations);
    std::printf("translation hits: %zu\n", stats.exec.translationHits);
    // Quickening: hot binaries re-flattened at the fused tier (extra
    // work outside the identity above) and how many superinstruction
    // records those re-translations produced.
    std::printf("quickened:        %zu\n",
                stats.exec.quickenedTranslations);
    std::printf("fused records:    %zu\n", stats.exec.fusedRecords);
    std::printf("dedup skips:      %zu\n", stats.exec.dedupSkips);
    std::printf("corpus replays:   %zu\n", stats.exec.corpusSkips);
    // Cap pressure: how often the corpus memo / per-unit code cache
    // were full and recomputed instead of admitting. Nonzero here means
    // the caps are bounding memory on this workload — results are
    // bit-identical either way (test_orchestrator pins that), but the
    // work saved by the caches shrinks.
    std::printf("memo cap rejects: %zu\n", stats.exec.corpusCapRejects);
    std::printf("cache cap rejects: %zu\n",
                stats.exec.translationCapRejects);
    std::printf("unique programs:  %zu (cross-seed duplicates: %zu)\n",
                stats.uniquePrograms(), stats.corpusDuplicates);
    std::printf("exec timeouts:    %zu (excluded from pairing: %zu)\n",
                stats.execTimeouts, stats.timeoutExcluded);
    // Hardening-oracle work (zero outside --mode harden): fault
    // injections counted by the VM itself, and the oracle's
    // classification of each injected flip.
    std::printf("fault injections: %zu\n", stats.exec.faultInjections);
    std::printf("faults detected:  %zu (masked %zu, sdc %zu)\n",
                stats.harden.faultsDetected, stats.harden.faultsMasked,
                stats.harden.faultsSdc);
    std::printf("drift reports:    %zu (of %zu comparisons)\n",
                stats.harden.driftReports,
                stats.harden.driftComparisons);
    // Supervised-execution accounting (zero outside the campaign
    // CLI's --isolate mode — the bench always runs in-process, so CI
    // asserts all four stay zero here).
    std::printf("worker crashes:   %zu\n", stats.workerCrashes);
    std::printf("worker timeouts:  %zu\n", stats.workerTimeouts);
    std::printf("retried attempts: %zu\n", stats.retried);
    std::printf("quarantined:      %zu\n", stats.quarantined);
    std::printf("finding digest:   %016llx\n",
                static_cast<unsigned long long>(
                    fuzzer::findingsDigest(stats)));
    return 0;
}
