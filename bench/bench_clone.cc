/**
 * @file
 * Clone microbenchmark: what does the arena representation buy on the
 * generation/mutation side, where every UB program, Music mutant, and
 * reducer trial starts with a cloneProgram?
 *
 *   ./build/bench/bench_clone [--runs N]
 *
 * Three measurements over the standard seed mix:
 *  - memcpy clones/sec (cloneProgram: chunk memcpy + pointer patch)
 *    vs rebuild clones/sec (cloneProgramByRebuild: the pre-arena
 *    node-by-node algorithm), with heap allocations per clone;
 *  - Music mutants/sec (clone + mutate, the Table 4 inner loop);
 *  - a parity check: both clone paths print to identical text, and
 *    the memcpy clone's subtree range hashes equal the source's.
 *
 * Exits nonzero if parity fails or the memcpy clone is not at least
 * 2x the rebuild baseline, so CI can run it as a smoke check.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "ast/clone.h"
#include "ast/printer.h"
#include "bench_util.h"
#include "generator/generator.h"
#include "mutation/music.h"
#include "support/parse_num.h"
#include "support/rng.h"

using namespace ubfuzz;

namespace {

// Heap-allocation counter: every operator new in the process bumps it,
// so allocsDuring() measures exactly what a clone costs in mallocs.
// (Not atomic on purpose — this bench is single-threaded.)
unsigned long long g_allocs = 0;

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs++;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocs++;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

template <typename F>
std::pair<double, double> // (ops/sec, allocs/op)
measure(int runs, F &&op)
{
    unsigned long long a0 = g_allocs;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < runs; i++)
        op();
    double secs = secondsSince(t0);
    unsigned long long allocs = g_allocs - a0;
    return {runs / secs, static_cast<double>(allocs) / runs};
}

} // namespace

int
main(int argc, char **argv)
{
    int runs = 2000;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--runs") && i + 1 < argc) {
            auto v = support::parseInt(argv[++i], 1);
            if (!v) {
                std::fprintf(stderr, "--runs: invalid number '%s'\n",
                             argv[i]);
                return 2;
            }
            runs = *v;
        } else {
            std::fprintf(stderr, "usage: %s [--runs N]\n", argv[0]);
            return 2;
        }
    }

    // The standard seed mix: the same generator stream the campaign
    // uses, a handful of shapes deep.
    std::vector<std::unique_ptr<ast::Program>> seeds;
    for (int i = 0; i < 8; i++) {
        gen::GeneratorConfig gc;
        gc.seed = 20240427 + i;
        seeds.push_back(gen::generateProgram(gc));
    }

    bench::header("clone cost (arena memcpy vs node-by-node rebuild)");
    std::printf("runs per seed:  %d\n", runs);
    bench::rule();

    bool ok = true;
    double sumMemcpy = 0, sumRebuild = 0, sumMutants = 0;
    double sumMemcpyAllocs = 0, sumRebuildAllocs = 0;
    for (size_t si = 0; si < seeds.size(); si++) {
        const ast::Program &seed = *seeds[si];

        // Parity first: both paths must print to the seed's text, and
        // the memcpy clone must hash identically over the whole arena.
        std::string want = ast::programText(seed);
        ast::ClonedProgram byCopy = ast::cloneProgram(seed);
        ast::ClonedProgram byRebuild = ast::cloneProgramByRebuild(seed);
        if (ast::programText(*byCopy.program) != want ||
            ast::programText(*byRebuild.program) != want) {
            std::fprintf(stderr, "parity FAILED: clone of seed %zu "
                                 "prints differently\n", si);
            ok = false;
        }
        const ast::ASTContext &sctx = seed.ctx();
        const ast::ASTContext &cctx = byCopy.program->ctx();
        if (cctx.numNodes() != sctx.numNodes() ||
            cctx.hashNodeRange(0, cctx.numNodes()) !=
                sctx.hashNodeRange(0, sctx.numNodes())) {
            std::fprintf(stderr, "parity FAILED: clone of seed %zu "
                                 "hashes differently\n", si);
            ok = false;
        }

        auto [memcpyRate, memcpyAllocs] = measure(runs, [&] {
            ast::ClonedProgram c = ast::cloneProgram(seed);
        });
        auto [rebuildRate, rebuildAllocs] = measure(runs, [&] {
            ast::ClonedProgram c = ast::cloneProgramByRebuild(seed);
        });
        Rng rng(7);
        auto [mutantRate, mutantAllocs] = measure(runs, [&] {
            mutation::musicMutate(seed, rng);
        });
        std::printf("seed %zu (%4u nodes): memcpy %9.0f/s (%5.1f allocs)"
                    "  rebuild %8.0f/s (%6.1f allocs)  mutants %8.0f/s\n",
                    si, sctx.numNodes(), memcpyRate, memcpyAllocs,
                    rebuildRate, rebuildAllocs, mutantRate);
        sumMemcpy += memcpyRate;
        sumRebuild += rebuildRate;
        sumMutants += mutantRate;
        sumMemcpyAllocs += memcpyAllocs;
        sumRebuildAllocs += rebuildAllocs;
    }
    bench::rule();
    double n = static_cast<double>(seeds.size());
    double speedup = sumMemcpy / sumRebuild;
    std::printf("clones/sec (memcpy):   %.0f\n", sumMemcpy / n);
    std::printf("clones/sec (rebuild):  %.0f\n", sumRebuild / n);
    std::printf("clone speedup:         %.2fx\n", speedup);
    std::printf("allocs/clone (memcpy): %.1f\n", sumMemcpyAllocs / n);
    std::printf("allocs/clone (rebuild): %.1f\n", sumRebuildAllocs / n);
    std::printf("music mutants/sec:     %.0f\n", sumMutants / n);

    if (!ok) {
        std::fprintf(stderr, "FAILED: clone parity violated\n");
        return 1;
    }
    if (speedup < 2.0) {
        std::fprintf(stderr, "FAILED: memcpy clone only %.2fx the "
                             "rebuild baseline (want >= 2x)\n", speedup);
        return 1;
    }
    // The memcpy clone allocates O(1) blocks (arena chunks + fixed
    // per-program containers), independent of node count; the rebuild
    // allocates per node. Half is a loose bound — measured ~5x fewer.
    if (sumMemcpyAllocs * 2 >= sumRebuildAllocs) {
        std::fprintf(stderr, "FAILED: memcpy clone allocates %.1f "
                             "blocks vs rebuild %.1f (want < half)\n",
                     sumMemcpyAllocs / n, sumRebuildAllocs / n);
        return 1;
    }
    return 0;
}
