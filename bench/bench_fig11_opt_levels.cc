/**
 * @file
 * Figure 11 reproduction: number of found bugs affecting each
 * optimization level, from the campaign's per-finding records (which
 * optimization level the missing binary was compiled at).
 */

#include "bench_util.h"

using namespace ubfuzz;

int
main()
{
    fuzzer::CampaignStats stats = bench::runStandardCampaign();
    bench::header("Figure 11: affected optimization levels");

    std::map<OptLevel, int> counts;
    for (const auto &[id, levels] : stats.bugLevels) {
        if (!stats.bugFindingCounts.count(id))
            continue;
        for (OptLevel l : levels)
            counts[l]++;
    }
    for (OptLevel l : kAllOptLevels) {
        std::printf("%-5s %3d  ", optLevelName(l), counts[l]);
        for (int i = 0; i < counts[l]; i++)
            std::printf("#");
        std::printf("\n");
    }
    bench::rule();
    std::printf("paper shape: bugs affect every level with no single "
                "dominant one — testing only -O0 would miss most\n");

    // Ablation: -O0-only testing (the paper's Challenge 2 argument).
    fuzzer::CampaignConfig cfg;
    cfg.seed = 20240427;
    cfg.numSeeds = std::max(10, bench::seedCount() / 3);
    cfg.capPerKind = 4;
    cfg.onlyO0 = true;
    fuzzer::CampaignStats o0 = fuzzer::runCampaign(cfg);
    std::printf("ablation: -O0-only differential testing finds %zu "
                "distinct bugs (full matrix on the same seeds would "
                "find far more)\n",
                o0.distinctBugsFound());
    return 0;
}
