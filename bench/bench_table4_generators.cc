/**
 * @file
 * Table 4 reproduction (RQ2): number of UB programs per generator and
 * per UB kind, with the "No UB" column, plus the Juliet-corpus
 * FN-finding result (§4.3).
 *
 * UBfuzz programs carry their UB kind by construction; MUSIC mutants
 * and Csmith-NoSafe programs are classified by the ground-truth
 * checker — the analog of the paper running all sanitizers over them.
 */

#include "bench_util.h"

#include "ast/printer.h"
#include "corpus/juliet.h"
#include "generator/generator.h"
#include "ir/lowering.h"
#include "mutation/music.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"
#include "vm/vm.h"

using namespace ubfuzz;
using ubgen::UBKind;

namespace {

struct Row
{
    size_t perKind[ubgen::kNumUBKinds] = {};
    size_t total = 0;
    size_t noUB = 0;
};

void
classify(ast::Program &prog, Row &row)
{
    ast::PrintedProgram printed = ast::printProgram(prog);
    ir::Module mod = ir::lowerProgram(prog, printed.map);
    vm::ExecOptions opts;
    opts.groundTruth = true;
    opts.stepLimit = 1'000'000;
    vm::ExecResult r = vm::execute(mod, opts);
    if (r.kind != vm::ExecResult::Kind::Report) {
        row.noUB++;
        return;
    }
    row.perKind[static_cast<size_t>(fuzzer::kindOfReport(r.report))]++;
    row.total++;
}

} // namespace

int
main()
{
    int seeds = bench::seedCount(100);
    std::printf("seed programs per generator: %d (paper: 1000 seeds; "
                "set UBFUZZ_BENCH_SEEDS)\n\n",
                seeds);
    Rng rng(2024);

    Row ubfuzz_row, music_row, nosafe_row;

    for (int i = 0; i < seeds; i++) {
        uint64_t s = 7000 + static_cast<uint64_t>(i);
        // UBfuzz: shadow statement insertion on safe seeds.
        {
            gen::GeneratorConfig gc;
            gc.seed = s;
            auto seed = gen::generateProgram(gc);
            ubgen::UBGenerator gen(*seed);
            for (auto &ub : gen.generateAll(rng)) {
                if (!ubgen::validateUBProgram(ub))
                    continue;
                ubfuzz_row.perKind[static_cast<size_t>(ub.kind)]++;
                ubfuzz_row.total++;
            }
        }
        // MUSIC: ~14 mutants per seed (like the paper's 14k/1000).
        {
            gen::GeneratorConfig gc;
            gc.seed = s;
            auto seed = gen::generateProgram(gc);
            for (int m = 0; m < 14; m++) {
                auto mutant = mutation::musicMutate(*seed, rng);
                if (mutant)
                    classify(*mutant, music_row);
            }
        }
        // Csmith-NoSafe: 14 programs per seed slot for parity.
        for (int m = 0; m < 14; m++) {
            gen::GeneratorConfig gc;
            gc.seed = s * 977 + static_cast<uint64_t>(m);
            gc.safeMath = false;
            auto prog = gen::generateProgram(gc);
            classify(*prog, nosafe_row);
        }
    }

    bench::header("Table 4: UB programs per generator");
    std::printf("%-14s", "Generator");
    for (UBKind k : ubgen::kAllUBKinds)
        std::printf(" %9.9s", ubgen::ubKindName(k));
    std::printf(" %7s %6s\n", "Total", "NoUB");
    bench::rule();
    auto print_row = [&](const char *name, const Row &row,
                         bool no_ub_applicable) {
        std::printf("%-14s", name);
        for (size_t k = 0; k < ubgen::kNumUBKinds; k++)
            std::printf(" %9zu", row.perKind[k]);
        if (no_ub_applicable)
            std::printf(" %7zu %6zu\n", row.total, row.noUB);
        else
            std::printf(" %7zu %6s\n", row.total, "-");
    };
    print_row("UBfuzz", ubfuzz_row, false);
    print_row("MUSIC", music_row, true);
    print_row("Csmith-NoSafe", nosafe_row, true);
    bench::rule();
    std::printf("paper shape: UBfuzz covers all 9 kinds with ~14 UB "
                "programs/seed; MUSIC ~95%% no-UB; NoSafe only the "
                "three arithmetic kinds\n\n");

    // §4.3: testing sanitizers with the Juliet corpus finds no bugs.
    fuzzer::CampaignConfig jc;
    jc.source = fuzzer::SourceMode::Juliet;
    fuzzer::CampaignStats jstats = fuzzer::runCampaign(jc);
    std::printf("Juliet corpus: %zu UB programs, sanitizer FN bugs "
                "found: %zu (paper: none)\n",
                jstats.ubPrograms, jstats.distinctBugsFound());
    return 0;
}
