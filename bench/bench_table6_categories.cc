/**
 * @file
 * Table 6 reproduction: root-cause categories of the found bugs per
 * compiler, against the full injected catalog.
 */

#include "bench_util.h"

using namespace ubfuzz;

int
main()
{
    fuzzer::CampaignStats stats = bench::runStandardCampaign();
    bench::header("Table 6: bug categories by root cause");

    const san::BugCategory cats[] = {
        san::BugCategory::NoSanitizerCheck,
        san::BugCategory::IncorrectSanitizerOptimization,
        san::BugCategory::WrongRedZoneBuffer,
        san::BugCategory::IncorrectSanitizerCheck,
        san::BugCategory::IncorrectExpressionFolding,
        san::BugCategory::IncorrectOperationHandling,
        san::BugCategory::WrongLineInformation,
    };
    std::printf("%-40s %10s %10s   %s\n", "Category", "GCC", "LLVM",
                "(found / in catalog)");
    bench::rule();
    for (san::BugCategory cat : cats) {
        int found[2] = {0, 0}, total[2] = {0, 0};
        for (const san::BugInfo &b : san::bugCatalog()) {
            if (b.category != cat)
                continue;
            int v = b.vendor == Vendor::GCC ? 0 : 1;
            total[v]++;
            if (stats.bugFindingCounts.count(b.id) ||
                stats.wrongReportBugs.count(b.id))
                found[v]++;
        }
        std::printf("%-40s   %3d / %2d   %3d / %2d\n",
                    san::bugCategoryName(cat), found[0], total[0],
                    found[1], total[1]);
    }
    bench::rule();
    std::printf("paper: GCC 2/5/1/2/4/0/2, LLVM 2/3/1/7/1/1/0 "
                "(catalog matches by construction; the campaign's "
                "'found' column converges on it with scale)\n");
    return 0;
}
