/**
 * @file
 * Optimizer pass tests: each pass individually on crafted programs,
 * pipeline behaviour per level/vendor, and UB-elimination semantics
 * (the "optimizers assume no UB" behaviour of §1 Challenge 2).
 */

#include <set>

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "frontend/parser.h"
#include "generator/generator.h"
#include "ir/lowering.h"
#include "opt/pass.h"
#include "vm/vm.h"

namespace ubfuzz::opt {
namespace {

ir::Module
lower(const std::string &src)
{
    auto prog = frontend::parseOrDie(src);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    return ir::lowerProgram(*prog, printed.map);
}

size_t
countOp(const ir::Module &m, ir::Opcode op)
{
    size_t n = 0;
    for (const auto &f : m.functions)
        for (const auto &bb : f.blocks)
            for (const auto &inst : bb.insts)
                n += inst.op == op ? 1 : 0;
    return n;
}

size_t
countBin(const ir::Module &m)
{
    return countOp(m, ir::Opcode::Bin);
}

TEST(ConstFold, FoldsLiteralArithmetic)
{
    ir::Module m = lower("int main(void) { return 2 + 3 * 4; }");
    size_t before = countBin(m);
    ASSERT_GT(before, 0u);
    auto fold = createConstFold();
    auto dce = createDCE();
    for (auto &f : m.functions) {
        fold->run(m, f);
        fold->run(m, f);
        dce->run(m, f);
    }
    EXPECT_EQ(countBin(m), 0u);
    EXPECT_EQ(vm::execute(m).exitCode, 14);
}

TEST(ConstFold, NeverFoldsTrappingDivision)
{
    ir::Module m = lower("int main(void) { return 7 / 0; }");
    auto fold = createConstFold();
    for (auto &f : m.functions)
        fold->run(m, f);
    // The division must survive folding and still trap at runtime.
    EXPECT_GT(countBin(m), 0u);
    EXPECT_EQ(vm::execute(m).kind, vm::ExecResult::Kind::Trap);
}

TEST(ConstFold, FoldsConstantBranches)
{
    ir::Module m = lower(R"(int main(void) {
    if (0) {
        return 1;
    }
    return 2;
}
)");
    size_t cond_before = countOp(m, ir::Opcode::CondBr);
    ASSERT_GT(cond_before, 0u);
    auto fold = createConstFold();
    for (auto &f : m.functions)
        fold->run(m, f);
    EXPECT_EQ(countOp(m, ir::Opcode::CondBr), 0u);
    EXPECT_EQ(vm::execute(m).exitCode, 2);
}

TEST(Peephole, LlvmReassociationFoldsConstants)
{
    // ((x + c1) + c2): LLVM folds c1+c2; GCC's flavour does not.
    const char *src = R"(int x = 5;
int main(void) {
    return (x + 3) + 4;
}
)";
    ir::Module mllvm = lower(src);
    auto peep_llvm = createPeephole(Vendor::LLVM);
    bool changed = false;
    for (auto &f : mllvm.functions)
        changed |= peep_llvm->run(mllvm, f);
    EXPECT_TRUE(changed);
    EXPECT_EQ(vm::execute(mllvm).exitCode, 12);

    ir::Module mgcc = lower(src);
    auto peep_gcc = createPeephole(Vendor::GCC);
    for (auto &f : mgcc.functions)
        peep_gcc->run(mgcc, f);
    EXPECT_EQ(vm::execute(mgcc).exitCode, 12);
}

TEST(Peephole, MulByZeroKillsValue)
{
    ir::Module m = lower(R"(int x = 9;
int main(void) {
    return x * 0;
}
)");
    auto peep = createPeephole(Vendor::GCC);
    auto dce = createDCE();
    bool changed = false;
    for (auto &f : m.functions) {
        changed |= peep->run(m, f);
        dce->run(m, f);
    }
    EXPECT_TRUE(changed);
    // The load of x is dead after x*0 -> 0.
    EXPECT_EQ(countOp(m, ir::Opcode::Load), 0u);
    EXPECT_EQ(vm::execute(m).exitCode, 0);
}

TEST(StoreForward, ForwardsStoresAndElidesLoads)
{
    ir::Module m = lower(R"(int main(void) {
    int x = 41;
    int y = x + 1;
    return y;
}
)");
    size_t loads_before = countOp(m, ir::Opcode::Load);
    auto fwd = createStoreForward();
    auto fold = createConstFold();
    auto dce = createDCE();
    for (auto &f : m.functions) {
        fwd->run(m, f);
        fold->run(m, f);
        dce->run(m, f);
    }
    EXPECT_LT(countOp(m, ir::Opcode::Load), loads_before);
    EXPECT_EQ(vm::execute(m).exitCode, 42);
}

TEST(DSE, RemovesDeadOOBStore)
{
    // The Figure 3 transform: a write-only local array's OOB store
    // disappears — and with it, the UB.
    ir::Module m = lower(R"(int main(void) {
    int d[2];
    int i = 2;
    d[i] = 1;
    return 0;
}
)");
    vm::ExecOptions gt;
    gt.groundTruth = true;
    EXPECT_EQ(vm::execute(m, gt).kind, vm::ExecResult::Kind::Report);

    auto dse = createDSE();
    bool changed = false;
    for (auto &f : m.functions)
        changed |= dse->run(m, f);
    EXPECT_TRUE(changed);
    EXPECT_EQ(vm::execute(m, gt).kind, vm::ExecResult::Kind::Clean);
}

TEST(DSE, KeepsObservableStores)
{
    ir::Module m = lower(R"(int g[2];
int main(void) {
    g[0] = 7;
    __checksum((long)g[0]);
    return g[0];
}
)");
    auto dse = createDSE();
    for (auto &f : m.functions)
        dse->run(m, f);
    EXPECT_EQ(vm::execute(m).exitCode, 7);
}

TEST(SimplifyCFG, PrunesUnreachableUB)
{
    ir::Module m = lower(R"(int z = 0;
int main(void) {
    if (1) {
        return 3;
    }
    return 5 / z;
}
)");
    auto fold = createConstFold();
    auto simp = createSimplifyCFG();
    for (auto &f : m.functions) {
        fold->run(m, f);
        simp->run(m, f);
    }
    // The division is unreachable and must be gone.
    bool has_div = false;
    for (const auto &f : m.functions)
        for (const auto &bb : f.blocks)
            for (const auto &inst : bb.insts)
                has_div |= inst.op == ir::Opcode::Bin &&
                           inst.binOp == ast::BinaryOp::Div;
    EXPECT_FALSE(has_div);
    EXPECT_EQ(vm::execute(m).exitCode, 3);
}

TEST(LifetimeHoist, RemovesLoopLocalMarkers)
{
    ir::Module m = lower(R"(int g = 0;
int *p = &g;
int main(void) {
    for (int i = 0; i < 3; i += 1) {
        int inner = i;
        p = &inner;
    }
    return *p;
}
)");
    size_t markers_before = countOp(m, ir::Opcode::LifetimeStart) +
                            countOp(m, ir::Opcode::LifetimeEnd);
    ASSERT_GT(markers_before, 0u);
    auto hoist = createLifetimeHoist();
    bool changed = false;
    for (auto &f : m.functions)
        changed |= hoist->run(m, f);
    EXPECT_TRUE(changed);
    size_t markers_after = countOp(m, ir::Opcode::LifetimeStart) +
                           countOp(m, ir::Opcode::LifetimeEnd);
    EXPECT_LT(markers_after, markers_before);
}

/** Pipelines at every (vendor, level) preserve semantics of valid
 *  parsed programs — a hand-written complement to the generator
 *  sweep. */
class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(PipelineSweep, PreservesSemantics)
{
    Vendor v = std::get<0>(GetParam()) ? Vendor::LLVM : Vendor::GCC;
    OptLevel l = static_cast<OptLevel>(std::get<1>(GetParam()));
    const char *src = R"(int a[5] = {3, 1, 4, 1, 5};
int acc = 0;
long mix(int n) {
    long r = 1l;
    for (int i = 0; i < n; i += 1) {
        r = r * 3l + (long)a[i % 5];
        if (r > 500l) {
            r = r % 97l;
        }
    }
    return r;
}
int main(void) {
    acc = (int)mix(9);
    int t = acc;
    t = t << 2;
    t = t ^ (acc & 5);
    __checksum((long)t);
    return t & 255;
}
)";
    auto prog = frontend::parseOrDie(src);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    ir::Module base = ir::lowerProgram(*prog, printed.map);
    vm::ExecResult ref = vm::execute(base);
    ASSERT_EQ(ref.kind, vm::ExecResult::Kind::Clean);

    ir::Module m = ir::lowerProgram(*prog, printed.map);
    auto pipeline = buildPipeline(v, l, Stage::EarlyOpt);
    runPipeline(m, pipeline, 2);
    auto late = buildPipeline(v, l, Stage::LateOpt);
    runPipeline(m, late, 1);
    ASSERT_EQ(ir::verifyModule(m), "");
    vm::ExecResult r = vm::execute(m);
    ASSERT_EQ(r.kind, vm::ExecResult::Kind::Clean);
    EXPECT_EQ(r.exitCode, ref.exitCode)
        << vendorName(v) << " " << optLevelName(l);
    EXPECT_EQ(r.checksum, ref.checksum)
        << vendorName(v) << " " << optLevelName(l);
}

INSTANTIATE_TEST_SUITE_P(VendorsLevels, PipelineSweep,
                         ::testing::Combine(::testing::Range(0, 2),
                                            ::testing::Range(0, 5)));

/**
 * The compile-once cache keys early-opt modules by
 * canonicalEarlyOptPoint, so the claimed equivalences must really
 * produce bit-identical modules. Check every matrix point against its
 * representative on a spread of generated programs — if buildPipeline
 * or stageIterations ever makes, say, LLVM -Os diverge from -O1, this
 * is the test that fails.
 */
TEST(CanonicalEarlyOpt, RepresentativeProducesIdenticalModules)
{
    for (uint64_t seed : {11u, 222u, 3333u, 44444u}) {
        gen::GeneratorConfig gc;
        gc.seed = seed;
        auto prog = gen::generateProgram(gc);
        ast::PrintedProgram printed = ast::printProgram(*prog);
        ir::Module base = ir::lowerProgram(*prog, printed.map);
        for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
            for (OptLevel l : kAllOptLevels) {
                auto [cv, cl] = canonicalEarlyOptPoint(v, l);
                ir::Module actual = ir::cloneModule(base);
                runStagePipeline(actual, v, l, Stage::EarlyOpt);
                ir::Module canon = ir::cloneModule(base);
                runStagePipeline(canon, cv, cl, Stage::EarlyOpt);
                EXPECT_EQ(ir::printModule(actual),
                          ir::printModule(canon))
                    << "seed " << seed << ": " << vendorName(v) << " "
                    << optLevelName(l) << " vs canonical "
                    << vendorName(cv) << " " << optLevelName(cl);
            }
        }
    }
}

/** The canonicalization collapses the 10-point matrix to 7 early-opt
 *  classes: shared -O0, four GCC levels, and two LLVM groups. */
TEST(CanonicalEarlyOpt, ExpectedEquivalenceClasses)
{
    std::set<std::pair<Vendor, OptLevel>> points;
    for (Vendor v : {Vendor::GCC, Vendor::LLVM})
        for (OptLevel l : kAllOptLevels)
            points.insert(canonicalEarlyOptPoint(v, l));
    EXPECT_EQ(points.size(), 7u);
    // A representative must map to itself (idempotence).
    for (const auto &[v, l] : points) {
        auto again = canonicalEarlyOptPoint(v, l);
        EXPECT_EQ(again.first, v);
        EXPECT_EQ(again.second, l);
    }
}

} // namespace
} // namespace ubfuzz::opt
