/**
 * @file
 * Lowering + VM execution semantics: arithmetic, control flow, memory,
 * traps, ground-truth UB detection, and execution tracing.
 */

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "frontend/parser.h"
#include "ir/lowering.h"
#include "vm/vm.h"

namespace ubfuzz {
namespace {

/** Compile a source string at "-O0, no sanitizer" and run it. */
vm::ExecResult
runSource(const std::string &src, vm::ExecOptions opts = {})
{
    auto prog = frontend::parseOrDie(src);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    ir::Module mod = ir::lowerProgram(*prog, printed.map);
    std::string verr = ir::verifyModule(mod);
    EXPECT_EQ(verr, "") << ir::printModule(mod);
    return vm::execute(mod, opts);
}

int64_t
exitOf(const std::string &src)
{
    vm::ExecResult r = runSource(src);
    EXPECT_EQ(r.kind, vm::ExecResult::Kind::Clean) << r.str();
    return r.exitCode;
}

TEST(VM, ArithmeticAndConversions)
{
    EXPECT_EQ(exitOf("int main(void) { return 2 + 3 * 4; }"), 14);
    EXPECT_EQ(exitOf("int main(void) { return 7 / 2; }"), 3);
    EXPECT_EQ(exitOf("int main(void) { return -7 % 3; }"), -1);
    EXPECT_EQ(exitOf("int main(void) { return 1 << 5; }"), 32);
    EXPECT_EQ(exitOf("int main(void) { return -8 >> 1; }"), -4);
    EXPECT_EQ(exitOf("int main(void) { char c = 200; return c; }"),
              static_cast<int8_t>(200));
    EXPECT_EQ(exitOf("int main(void) { unsigned char c = 200; "
                     "return c; }"),
              200);
    // Unsigned comparison: 4000000000u > 1.
    EXPECT_EQ(exitOf("int main(void) { unsigned int u = 4000000000u; "
                     "return u > 1u; }"),
              1);
    // Mixed signed/unsigned comparison follows C: -1 converts to huge.
    EXPECT_EQ(exitOf("int main(void) { int a = -1; unsigned int b = 1u; "
                     "return a > b; }"),
              1);
}

TEST(VM, ShortCircuitIsLazy)
{
    // Division by zero on the unevaluated side must not trap.
    EXPECT_EQ(exitOf("int main(void) { int z = 0; int ok = 1; "
                     "return (z != 0) && (10 / z > 0) ? 7 : ok; }"),
              1);
    EXPECT_EQ(exitOf("int main(void) { int z = 0; "
                     "return (z == 0) || (10 / z > 0); }"),
              1);
}

TEST(VM, SelectIsLazy)
{
    EXPECT_EQ(exitOf("int main(void) { int z = 0; "
                     "return (z == 0) ? 5 : (10 / z); }"),
              5);
}

TEST(VM, ControlFlow)
{
    EXPECT_EQ(exitOf(R"(int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i += 1) {
        if (i % 2 == 0) {
            s += i;
        }
    }
    return s;
}
)"),
              20);
    EXPECT_EQ(exitOf(R"(int main(void) {
    int i = 0;
    int n = 0;
    while (1) {
        i += 1;
        if (i > 5) {
            break;
        }
        if (i == 2) {
            continue;
        }
        n += i;
    }
    return n;
}
)"),
              13);
}

TEST(VM, ArraysPointersStructs)
{
    EXPECT_EQ(exitOf(R"(int a[5] = {1, 2, 3, 4, 5};
int main(void) {
    int *p = &a[1];
    p[2] = 40;
    return a[3] + *(p + 1) + a[0];
}
)"),
              44);
    EXPECT_EQ(exitOf(R"(struct S {
    int x;
    long y;
};
struct S s;
struct S t;
int main(void) {
    s.x = 11;
    s.y = 31l;
    t = s;
    return t.x + (int)t.y;
}
)"),
              42);
    // Pointer difference.
    EXPECT_EQ(exitOf(R"(int a[8];
int main(void) {
    int *p = &a[6];
    int *q = &a[2];
    return (int)(p - q);
}
)"),
              4);
}

TEST(VM, GlobalInitializersAndRelocations)
{
    EXPECT_EQ(exitOf(R"(int g = 5;
int a[3] = {10, 20, 30};
int *p = &a[1];
int **pp = &p;
int main(void) {
    **pp = g;
    return a[1];
}
)"),
              5);
}

TEST(VM, FunctionsAndRecursion)
{
    EXPECT_EQ(exitOf(R"(int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
int main(void) {
    return fib(10);
}
)"),
              55);
}

TEST(VM, MallocFreeAndChecksum)
{
    vm::ExecResult r = runSource(R"(int main(void) {
    long *p = (long*)__malloc(16l);
    p[0] = 7l;
    p[1] = 9l;
    __checksum(p[0] + p[1]);
    __free((char*)p);
    return 0;
}
)");
    EXPECT_EQ(r.kind, vm::ExecResult::Kind::Clean);
    EXPECT_NE(r.checksum, 0u);
}

TEST(VM, HardwareTraps)
{
    // Unchecked division by zero traps like SIGFPE.
    vm::ExecResult r1 = runSource(
        "int main(void) { int z = 0; return 5 / z; }");
    EXPECT_EQ(r1.kind, vm::ExecResult::Kind::Trap);
    EXPECT_EQ(r1.trap, vm::TrapKind::DivByZero);

    // Null dereference traps like SIGSEGV.
    vm::ExecResult r2 = runSource(
        "int main(void) { int *p = 0; return *p; }");
    EXPECT_EQ(r2.kind, vm::ExecResult::Kind::Trap);
    EXPECT_EQ(r2.trap, vm::TrapKind::Segfault);

    // Small OOB inside a mapped segment is silent (like hardware).
    vm::ExecResult r3 = runSource(R"(int a[4];
int b[4];
int main(void) {
    int *p = &a[0];
    return p[5] * 0;
}
)");
    EXPECT_EQ(r3.kind, vm::ExecResult::Kind::Clean);
}

TEST(VM, InfiniteLoopTimesOut)
{
    vm::ExecOptions opts;
    opts.stepLimit = 10000;
    vm::ExecResult r = runSource("int main(void) { while (1) { } "
                                 "return 0; }",
                                 opts);
    EXPECT_EQ(r.kind, vm::ExecResult::Kind::Timeout);
}

TEST(VM, UninitializedMemoryIsDeterministic)
{
    int64_t a = exitOf("int main(void) { int x; return x * 0 + 3; }");
    int64_t b = exitOf("int main(void) { int x; return x * 0 + 3; }");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, 3);
}

//===--------------------------------------------------------------===//
// Ground-truth UB detection (the reference checker used by Table 4)
//===--------------------------------------------------------------===//

vm::ExecResult
runGroundTruth(const std::string &src)
{
    vm::ExecOptions opts;
    opts.groundTruth = true;
    return runSource(src, opts);
}

TEST(GroundTruth, DetectsStackBufferOverflow)
{
    vm::ExecResult r = runGroundTruth(R"(int main(void) {
    int a[4];
    int i = 4;
    a[0] = 1;
    return a[i];
}
)");
    ASSERT_EQ(r.kind, vm::ExecResult::Kind::Report) << r.str();
    EXPECT_EQ(r.report, vm::ReportKind::StackBufferOverflow);
}

TEST(GroundTruth, DetectsGlobalBufferOverflowViaPointer)
{
    vm::ExecResult r = runGroundTruth(R"(int b[2];
int *d = &b[0];
int k = 0;
int main(void) {
    k = 2;
    return *(d + k);
}
)");
    ASSERT_EQ(r.kind, vm::ExecResult::Kind::Report) << r.str();
    EXPECT_EQ(r.report, vm::ReportKind::GlobalBufferOverflow);
}

TEST(GroundTruth, DetectsUseAfterFree)
{
    vm::ExecResult r = runGroundTruth(R"(int main(void) {
    int *p = (int*)__malloc(8l);
    *p = 1;
    __free((char*)p);
    return *p;
}
)");
    ASSERT_EQ(r.kind, vm::ExecResult::Kind::Report) << r.str();
    EXPECT_EQ(r.report, vm::ReportKind::HeapUseAfterFree);
}

TEST(GroundTruth, DetectsSignedOverflowAndShiftAndDiv)
{
    vm::ExecResult r1 = runGroundTruth(R"(int main(void) {
    int x = 2147483647;
    int y = 1;
    return x + y;
}
)");
    ASSERT_EQ(r1.kind, vm::ExecResult::Kind::Report) << r1.str();
    EXPECT_EQ(r1.report, vm::ReportKind::SignedIntegerOverflow);

    vm::ExecResult r2 = runGroundTruth(R"(int main(void) {
    int x = 1;
    int y = 40;
    return x << y;
}
)");
    ASSERT_EQ(r2.kind, vm::ExecResult::Kind::Report) << r2.str();
    EXPECT_EQ(r2.report, vm::ReportKind::ShiftOutOfBounds);

    vm::ExecResult r3 = runGroundTruth(R"(int main(void) {
    int z = 0;
    return 7 / z;
}
)");
    ASSERT_EQ(r3.kind, vm::ExecResult::Kind::Report) << r3.str();
    EXPECT_EQ(r3.report, vm::ReportKind::DivByZero);
}

TEST(GroundTruth, DetectsUninitUse)
{
    vm::ExecResult r = runGroundTruth(R"(int main(void) {
    int x;
    if (x > 0) {
        return 1;
    }
    return 0;
}
)");
    ASSERT_EQ(r.kind, vm::ExecResult::Kind::Report) << r.str();
    EXPECT_EQ(r.report, vm::ReportKind::UninitValue);
}

TEST(GroundTruth, CleanProgramStaysClean)
{
    vm::ExecResult r = runGroundTruth(R"(int a[4] = {1, 2, 3, 4};
int main(void) {
    int s = 0;
    for (int i = 0; i < 4; i += 1) {
        s += a[i];
    }
    __checksum((long)s);
    return s;
}
)");
    EXPECT_EQ(r.kind, vm::ExecResult::Kind::Clean) << r.str();
    EXPECT_EQ(r.exitCode, 10);
}

//===--------------------------------------------------------------===//
// Tracing (the debugger of Algorithm 2)
//===--------------------------------------------------------------===//

TEST(Trace, RecordsExecutedSitesInOrder)
{
    vm::ExecOptions opts;
    opts.recordTrace = true;
    vm::ExecResult r = runSource(R"(int g = 0;
int main(void) {
    g = 1;
    g = 2;
    return g;
}
)",
                                 opts);
    ASSERT_EQ(r.kind, vm::ExecResult::Kind::Clean);
    ASSERT_FALSE(r.trace.empty());
    // Both assignment lines appear, in order.
    bool saw3 = false, saw4 = false;
    int32_t line3_pos = -1, line4_pos = -1;
    for (size_t i = 0; i < r.trace.size(); i++) {
        if (r.trace[i].line == 3 && !saw3) {
            saw3 = true;
            line3_pos = static_cast<int32_t>(i);
        }
        if (r.trace[i].line == 4 && !saw4) {
            saw4 = true;
            line4_pos = static_cast<int32_t>(i);
        }
    }
    EXPECT_TRUE(saw3);
    EXPECT_TRUE(saw4);
    EXPECT_LT(line3_pos, line4_pos);
}

//===--------------------------------------------------------------===//
// Machine reuse (the batched execution engine)
//===--------------------------------------------------------------===//

ir::Module
lowerSource(const std::string &src)
{
    auto prog = frontend::parseOrDie(src);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    ir::Module mod = ir::lowerProgram(*prog, printed.map);
    EXPECT_EQ(ir::verifyModule(mod), "");
    return mod;
}

void
expectSameResult(const vm::ExecResult &fresh, const vm::ExecResult &reused)
{
    EXPECT_EQ(fresh.kind, reused.kind)
        << fresh.str() << " vs " << reused.str();
    EXPECT_EQ(fresh.report, reused.report);
    EXPECT_EQ(fresh.reportLoc, reused.reportLoc);
    EXPECT_EQ(fresh.trap, reused.trap);
    EXPECT_EQ(fresh.trapLoc, reused.trapLoc);
    EXPECT_EQ(fresh.exitCode, reused.exitCode);
    EXPECT_EQ(fresh.checksum, reused.checksum);
    EXPECT_EQ(fresh.steps, reused.steps);
    EXPECT_EQ(fresh.trace, reused.trace);
}

/** reset() + re-run must be bit-identical to a fresh vm::execute, for
 *  every result field, across every outcome kind. */
void
expectReuseIdentical(const std::string &src, vm::ExecOptions opts = {})
{
    ir::Module mod = lowerSource(src);
    vm::ExecResult fresh = vm::execute(mod, opts);
    vm::Machine m;
    expectSameResult(fresh, m.run(mod, opts));
    m.reset();
    expectSameResult(fresh, m.run(mod, opts));
    // And without the explicit reset (run() re-arms on demand).
    expectSameResult(fresh, m.run(mod, opts));
}

TEST(MachineReuse, CleanProgramWithChecksum)
{
    expectReuseIdentical(R"(int main(void) {
    long *p = (long*)__malloc(16l);
    p[0] = 7l;
    p[1] = 9l;
    __checksum(p[0] + p[1]);
    __free((char*)p);
    return 3;
}
)");
}

TEST(MachineReuse, TrapProgram)
{
    expectReuseIdentical(
        "int main(void) { int z = 0; return 5 / z; }");
}

TEST(MachineReuse, TimeoutProgram)
{
    vm::ExecOptions opts;
    opts.stepLimit = 5000;
    expectReuseIdentical("int main(void) { while (1) { } return 0; }",
                         opts);
}

TEST(MachineReuse, GroundTruthReportProgram)
{
    vm::ExecOptions opts;
    opts.groundTruth = true;
    expectReuseIdentical(R"(int main(void) {
    int a[4];
    int i = 4;
    a[0] = 1;
    return a[i];
}
)",
                         opts);
}

TEST(MachineReuse, TraceProgram)
{
    vm::ExecOptions opts;
    opts.recordTrace = true;
    expectReuseIdentical(R"(int g = 0;
int main(void) {
    g = 1;
    g = 2;
    return g;
}
)",
                         opts);
}

TEST(MachineReuse, SilentOutOfBoundsWriteDoesNotLeakAcrossRuns)
{
    // The writer's OOB store lands inside the mapped stack segment
    // beyond its frame layout — exactly the bytes a lazy reset would
    // miss. The reader then loads that address uninitialized; on a
    // properly reset machine it must see the deterministic 0xAA fill,
    // not the 77 the previous run planted there.
    ir::Module writer = lowerSource(R"(int main(void) {
    int a[4];
    int i = 9;
    a[i] = 77;
    return a[i];
}
)");
    ir::Module reader = lowerSource(R"(int main(void) {
    int a[4];
    int i = 9;
    return a[i];
}
)");
    vm::ExecResult freshWriter = vm::execute(writer);
    vm::ExecResult freshReader = vm::execute(reader);
    ASSERT_EQ(freshWriter.exitCode, 77);
    ASSERT_NE(freshReader.exitCode, 77); // 0xAA fill, not the plant

    vm::Machine m;
    expectSameResult(freshWriter, m.run(writer));
    expectSameResult(freshReader, m.run(reader));
    expectSameResult(freshWriter, m.run(writer));
    expectSameResult(freshReader, m.run(reader));
}

TEST(MachineReuse, UninitReadIsDeterministicAcrossRuns)
{
    expectReuseIdentical("int main(void) { int x; return x * 0 + 3; }");
}

TEST(MachineReuse, InterleavedModulesStayIndependent)
{
    ir::Module a = lowerSource(
        "int main(void) { int x = 6; __checksum((long)x); return x; }");
    ir::Module b = lowerSource(R"(int main(void) {
    int v[3] = {1, 2, 3};
    return v[0] + v[1] + v[2];
}
)");
    vm::ExecResult fa = vm::execute(a);
    vm::ExecResult fb = vm::execute(b);
    vm::Machine m;
    expectSameResult(fa, m.run(a));
    expectSameResult(fb, m.run(b));
    expectSameResult(fa, m.run(a));
    expectSameResult(fb, m.run(b));
    EXPECT_EQ(m.stats().machinesBuilt, 1u);
    EXPECT_EQ(m.stats().executions, 4u);
    EXPECT_EQ(m.stats().resets, 3u);
    // Interleaving does not thrash the code cache: each distinct
    // binary is flattened once, the re-runs hit.
    EXPECT_EQ(m.stats().translations, 2u);
    EXPECT_EQ(m.stats().translationHits, 2u);
}

TEST(MachineReuse, OptionsChangeBetweenRuns)
{
    // The same machine serves a silent run, then a ground-truth run,
    // then a traced run — the differential runner's exact sequence.
    ir::Module mod = lowerSource(R"(int main(void) {
    int a[4];
    int i = 4;
    a[0] = 1;
    return a[i] * 0;
}
)");
    vm::ExecOptions gt;
    gt.groundTruth = true;
    vm::ExecOptions tr;
    tr.recordTrace = true;

    vm::Machine m;
    expectSameResult(vm::execute(mod), m.run(mod));
    expectSameResult(vm::execute(mod, gt), m.run(mod, gt));
    expectSameResult(vm::execute(mod, tr), m.run(mod, tr));
    expectSameResult(vm::execute(mod), m.run(mod));
}

TEST(MachineReuse, StatsCountWork)
{
    ir::Module mod = lowerSource("int main(void) { return 1; }");
    vm::Machine m;
    EXPECT_EQ(m.stats().machinesBuilt, 1u);
    EXPECT_EQ(m.stats().executions, 0u);
    m.run(mod);
    m.run(mod);
    m.noteDedupSkip();
    EXPECT_EQ(m.stats().executions, 2u);
    EXPECT_EQ(m.stats().resets, 1u);
    EXPECT_EQ(m.stats().dedupSkips, 1u);
    EXPECT_EQ(m.stats().translations, 1u);
    EXPECT_EQ(m.stats().translationHits, 1u);
}

TEST(MachineReuse, ReferenceInterpreterAgreesAfterBytecodeRuns)
{
    // The two interpreters share the machine's arenas; alternating
    // between them must not perturb either (reset restores the same
    // construction-time state for both).
    ir::Module mod = lowerSource(R"(int main(void) {
    int a[4];
    int i = 4;
    a[0] = 1;
    return a[i] * 0;
}
)");
    vm::Machine m;
    vm::ExecResult fast = m.run(mod);
    vm::ExecResult ref = m.runReference(mod);
    expectSameResult(fast, ref);
    expectSameResult(fast, m.run(mod));
}

//===--------------------------------------------------------------===//
// Execution keys (what lets a batch skip identical binaries)
//===--------------------------------------------------------------===//

TEST(ExecutionKey, IdenticalModulesShareAKey)
{
    ir::Module a = lowerSource("int main(void) { return 4; }");
    ir::Module b = lowerSource("int main(void) { return 4; }");
    EXPECT_EQ(ir::executionKey(a), ir::executionKey(b));
}

TEST(ExecutionKey, BehavioralFlagsChangeTheKey)
{
    // printModule ignores these flags, but the VM does not — the key
    // must see them or a batch would copy results across binaries that
    // behave differently.
    ir::Module a = lowerSource("int main(void) { int x; return x * 0; }");
    ir::Module b = lowerSource("int main(void) { int x; return x * 0; }");
    b.msan.enabled = true;
    EXPECT_NE(ir::executionKey(a), ir::executionKey(b));
    ir::Module c = lowerSource("int main(void) { int x; return x * 0; }");
    c.asanHeap = true;
    EXPECT_NE(ir::executionKey(a), ir::executionKey(c));
}

TEST(ExecutionKey, GlobalInitBytesChangeTheKey)
{
    ir::Module a = lowerSource("int g = 1;\nint main(void) { return g; }");
    ir::Module b = lowerSource("int g = 2;\nint main(void) { return g; }");
    EXPECT_NE(ir::executionKey(a), ir::executionKey(b));
}

} // namespace
} // namespace ubfuzz
