/**
 * @file
 * The parallel orchestrator's determinism contract: sharding a
 * campaign across a worker pool never changes the result — the same
 * findings, the same ground-truth attribution, the same counters,
 * regardless of `jobs`. The campaign service extends the contract
 * across processes: kill + resume and shard + merge must reproduce an
 * uninterrupted run bit for bit, for any jobs value.
 */

#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "fuzzer/orchestrator.h"

namespace ubfuzz::fuzzer {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch store directory per test, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const char *tag)
    {
        path = fs::temp_directory_path() /
               (std::string("ubfuzz_service_") + tag + "_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

std::vector<FindingRecord>
sortedFindings(const CampaignStats &stats)
{
    std::vector<FindingRecord> f = stats.findings;
    std::sort(f.begin(), f.end());
    return f;
}

void
expectIdentical(const CampaignStats &a, const CampaignStats &b)
{
    EXPECT_EQ(a.seeds, b.seeds);
    EXPECT_EQ(a.ubPrograms, b.ubPrograms);
    EXPECT_EQ(a.nonTriggering, b.nonTriggering);
    EXPECT_EQ(a.noUB, b.noUB);
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++)
        EXPECT_EQ(a.perKind[k], b.perKind[k]) << "kind " << k;
    EXPECT_EQ(a.discrepantPrograms, b.discrepantPrograms);
    EXPECT_EQ(a.oracleSelectedPrograms, b.oracleSelectedPrograms);
    EXPECT_EQ(a.verdictPairs, b.verdictPairs);
    EXPECT_EQ(a.selectedPairs, b.selectedPairs);
    EXPECT_EQ(a.selectedTrueBug, b.selectedTrueBug);
    EXPECT_EQ(a.selectedOptimization, b.selectedOptimization);
    EXPECT_EQ(a.droppedPairs, b.droppedPairs);
    EXPECT_EQ(a.droppedTrueBug, b.droppedTrueBug);
    EXPECT_EQ(a.bugFindingCounts, b.bugFindingCounts);
    EXPECT_EQ(a.bugFirstKind, b.bugFirstKind);
    EXPECT_EQ(a.bugLevels, b.bugLevels);
    EXPECT_EQ(a.wrongReports, b.wrongReports);
    EXPECT_EQ(a.wrongReportBugs, b.wrongReportBugs);
    EXPECT_EQ(a.invalidFindings, b.invalidFindings);
    // Timeout accounting and the corpus seen-set fold in unit order,
    // so they are part of the determinism contract too. (The ExecStats
    // work counters are deliberately not: under jobs > 1 a cross-seed
    // duplicate being computed concurrently may be recomputed instead
    // of replayed — identical results, slightly different work.)
    EXPECT_EQ(a.execTimeouts, b.execTimeouts);
    EXPECT_EQ(a.timeoutExcluded, b.timeoutExcluded);
    EXPECT_EQ(a.corpusSeen, b.corpusSeen);
    EXPECT_EQ(a.corpusDuplicates, b.corpusDuplicates);
    EXPECT_EQ(sortedFindings(a), sortedFindings(b));
}

TEST(Orchestrator, ShardingIsDeterministic)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 12;
    cfg.capPerKind = 2;

    cfg.jobs = 1;
    CampaignStats sequential = runCampaignParallel(cfg);
    cfg.jobs = 4;
    CampaignStats sharded = runCampaignParallel(cfg);

    // The campaign actually found things (the comparison is not 0==0).
    ASSERT_GT(sequential.ubPrograms, 0u);
    ASSERT_GT(sequential.findings.size(), 0u);
    expectIdentical(sequential, sharded);
}

TEST(Orchestrator, MoreJobsThanUnits)
{
    CampaignConfig cfg;
    cfg.seed = 3;
    cfg.numSeeds = 3;
    cfg.capPerKind = 2;

    cfg.jobs = 1;
    CampaignStats sequential = runCampaignParallel(cfg);
    cfg.jobs = 16;
    CampaignStats sharded = runCampaignParallel(cfg);
    expectIdentical(sequential, sharded);
}

TEST(Orchestrator, JulietShardsDeterministically)
{
    CampaignConfig cfg;
    cfg.source = SourceMode::Juliet;

    cfg.jobs = 1;
    CampaignStats sequential = runCampaignParallel(cfg);
    cfg.jobs = 4;
    CampaignStats sharded = runCampaignParallel(cfg);
    ASSERT_GT(sequential.ubPrograms, 0u);
    expectIdentical(sequential, sharded);
}

TEST(Orchestrator, ResolveJobs)
{
    EXPECT_EQ(resolveJobs(3), 3);
    EXPECT_EQ(resolveJobs(1), 1);
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_GE(resolveJobs(-2), 1);
}

TEST(Orchestrator, EmptyCampaign)
{
    CampaignConfig cfg;
    cfg.numSeeds = 0;
    cfg.jobs = 8;
    CampaignStats stats = runCampaignParallel(cfg);
    EXPECT_EQ(stats.seeds, 0u);
    EXPECT_EQ(stats.ubPrograms, 0u);
}

TEST(Service, StreamsUnitsInOrder)
{
    CampaignConfig cfg;
    cfg.seed = 5;
    cfg.numSeeds = 6;
    cfg.capPerKind = 2;
    cfg.jobs = 4;

    std::vector<int> folded;
    ServiceOptions opts;
    opts.onUnitFolded = [&folded](int unit, const CampaignStats &,
                                  bool replayed) {
        EXPECT_FALSE(replayed);
        folded.push_back(unit);
    };
    ServiceResult res = runCampaignService(cfg, opts);
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.unitsOwned, 6);
    EXPECT_EQ(res.unitsRun, 6);
    EXPECT_EQ(res.unitsReplayed, 0);
    // Strict unit order even with a racing pool: the fold frontier is
    // what makes `--serve` output identical run to run.
    EXPECT_EQ(folded, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Service, KillAndResumeIsBitIdentical)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 10;
    cfg.capPerKind = 2;
    cfg.jobs = 1;
    CampaignStats uninterrupted = runCampaignParallel(cfg);
    ASSERT_GT(uninterrupted.findings.size(), 0u);

    for (int jobs : {1, 4}) {
        SCOPED_TRACE(jobs);
        cfg.jobs = jobs;
        TempDir dir("resume");
        campaign::Manifest m =
            campaign::manifestFor(cfg, campaign::ShardSpec{});
        std::string error;

        // First process: pause after half the units — the
        // deterministic stand-in for `kill` (a real kill additionally
        // tears the final record, which test_store covers byte by
        // byte).
        auto store =
            campaign::CampaignStore::open(dir.str(), m, false, &error);
        ASSERT_TRUE(store) << error;
        ServiceOptions opts;
        opts.store = store.get();
        opts.maxFreshUnits = 5;
        ServiceResult first = runCampaignService(cfg, opts);
        EXPECT_FALSE(first.complete);
        EXPECT_EQ(first.unitsRun, 5);
        store.reset();

        // Second process: replay the journal, run the rest.
        store =
            campaign::CampaignStore::open(dir.str(), m, true, &error);
        ASSERT_TRUE(store) << error;
        std::vector<bool> replayedFlags;
        ServiceOptions resumeOpts;
        resumeOpts.store = store.get();
        resumeOpts.onUnitFolded = [&replayedFlags](
                                      int, const CampaignStats &,
                                      bool replayed) {
            replayedFlags.push_back(replayed);
        };
        ServiceResult second = runCampaignService(cfg, resumeOpts);
        EXPECT_TRUE(second.complete);
        EXPECT_EQ(second.unitsReplayed, 5);
        EXPECT_EQ(second.unitsRun, 5);
        ASSERT_EQ(replayedFlags.size(), 10u);
        for (size_t i = 0; i < replayedFlags.size(); i++)
            EXPECT_EQ(replayedFlags[i], i < 5) << "unit " << i;

        expectIdentical(uninterrupted, second.stats);
        EXPECT_EQ(findingsDigest(second.stats),
                  findingsDigest(uninterrupted));
        if (jobs == 1) {
            // Sequentially, even the work counters are reproduced:
            // the journal carries the paused run's exact deltas and
            // memo contributions, so the resumed process does exactly
            // the work the uninterrupted one would have.
            EXPECT_EQ(second.stats, uninterrupted);
        }
    }
}

TEST(Service, ReplayOfCompletedCampaignReproducesEveryField)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 8;
    cfg.capPerKind = 2;
    cfg.jobs = 1;

    TempDir dir("replay");
    campaign::Manifest m =
        campaign::manifestFor(cfg, campaign::ShardSpec{});
    std::string error;
    auto store =
        campaign::CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    ServiceOptions opts;
    opts.store = store.get();
    ServiceResult live = runCampaignService(cfg, opts);
    ASSERT_TRUE(live.complete);
    store.reset();

    // Replay-only run: every unit folds from the journal, nothing is
    // recomputed, and the resulting CampaignStats is structurally
    // equal to the live one — every field, work counters included
    // (defaulted operator==).
    store = campaign::CampaignStore::open(dir.str(), m, true, &error);
    ASSERT_TRUE(store) << error;
    ServiceOptions replayOpts;
    replayOpts.store = store.get();
    ServiceResult replayed = runCampaignService(cfg, replayOpts);
    EXPECT_TRUE(replayed.complete);
    EXPECT_EQ(replayed.unitsReplayed, 8);
    EXPECT_EQ(replayed.unitsRun, 0);
    EXPECT_EQ(replayed.stats, live.stats);
}

TEST(Service, ShardedStoresMergeToUninterruptedCampaign)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 8;
    cfg.capPerKind = 2;
    cfg.jobs = 1;
    CampaignStats whole = runCampaignParallel(cfg);
    ASSERT_GT(whole.findings.size(), 0u);

    for (int count : {2, 4}) {
        for (int jobs : {1, 4}) {
            SCOPED_TRACE(std::to_string(count) + " shards, jobs " +
                         std::to_string(jobs));
            cfg.jobs = jobs;
            TempDir dir("shard");
            int owned = 0;
            for (int i = 1; i <= count; i++) {
                campaign::ShardSpec shard{i, count};
                std::string error;
                auto store = campaign::CampaignStore::open(
                    dir.str(), campaign::manifestFor(cfg, shard),
                    false, &error);
                ASSERT_TRUE(store) << error;
                ServiceOptions opts;
                opts.shard = shard;
                opts.store = store.get();
                ServiceResult res = runCampaignService(cfg, opts);
                EXPECT_TRUE(res.complete);
                owned += res.unitsOwned;
            }
            EXPECT_EQ(owned, cfg.numSeeds);

            campaign::MergeResult merged =
                campaign::mergeStore(dir.str());
            ASSERT_TRUE(merged.ok) << merged.error;
            EXPECT_EQ(merged.unitsMerged,
                      static_cast<size_t>(cfg.numSeeds));
            expectIdentical(whole, merged.stats);
            EXPECT_EQ(findingsDigest(merged.stats),
                      findingsDigest(whole));
        }
    }
}

TEST(Service, IsolatedWorkersAreBitIdentical)
{
    // The tentpole determinism claim at service granularity: forked,
    // supervised workers produce the same campaign as in-process
    // units, for any jobs value — a worker is a fork computing the
    // identical unit, and results fold behind the same frontier.
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 8;
    cfg.capPerKind = 2;
    cfg.jobs = 1;
    CampaignStats inProcess = runCampaignParallel(cfg);
    ASSERT_GT(inProcess.findings.size(), 0u);

    cfg.isolate = true;
    for (int jobs : {1, 4}) {
        SCOPED_TRACE(jobs);
        cfg.jobs = jobs;
        ServiceResult res = runCampaignService(cfg, ServiceOptions{});
        EXPECT_TRUE(res.complete);
        EXPECT_EQ(res.unitsQuarantined, 0);
        expectIdentical(inProcess, res.stats);
        EXPECT_EQ(findingsDigest(res.stats),
                  findingsDigest(inProcess));
        // Crash-free supervision leaves no accounting trace at all.
        EXPECT_EQ(res.stats.workerCrashes, 0u);
        EXPECT_EQ(res.stats.workerTimeouts, 0u);
        EXPECT_EQ(res.stats.retried, 0u);
        EXPECT_EQ(res.stats.quarantined, 0u);
        if (jobs == 1)
            EXPECT_EQ(res.stats, inProcess);
    }
}

TEST(Service, QuarantinedUnitSurvivesResumeWithoutDoubleCounting)
{
    // Unit 3 crashes on every attempt: the campaign must complete
    // around it (quarantine record), and a --resume must neither
    // re-run it nor double-count anything.
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 8;
    cfg.capPerKind = 2;
    cfg.jobs = 1;
    cfg.isolate = true;
    cfg.retries = 1;
    cfg.failureInjection =
        FailureInjection{FailureInjection::Kind::Crash, 3, -1, 0};

    TempDir dir("quarantine");
    campaign::Manifest m =
        campaign::manifestFor(cfg, campaign::ShardSpec{});
    std::string error;
    auto store =
        campaign::CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    ServiceOptions opts;
    opts.store = store.get();
    ServiceResult live = runCampaignService(cfg, opts);
    EXPECT_TRUE(live.complete);
    EXPECT_EQ(live.unitsRun, 8);
    EXPECT_EQ(live.unitsQuarantined, 1);
    EXPECT_EQ(live.stats.quarantined, 1u);
    EXPECT_EQ(live.stats.retried, 1u);
    EXPECT_EQ(live.stats.workerCrashes, 2u);
    // The quarantined unit contributes nothing to either side of any
    // accounting identity — the satellite's headline check:
    // machinesBuilt + corpusSkips == ubPrograms + harden.programs.
    EXPECT_EQ(statsInvariantViolation(live.stats), "");
    EXPECT_EQ(live.stats.exec.machinesBuilt +
                  live.stats.exec.corpusSkips,
              live.stats.ubPrograms + live.stats.harden.programs);
    store.reset();

    // Resume: all 8 units (the quarantine record included) replay;
    // nothing re-runs, and the totals are field-for-field what the
    // live run reported — no double-count, no silent loss.
    store = campaign::CampaignStore::open(dir.str(), m, true, &error);
    ASSERT_TRUE(store) << error;
    ServiceOptions resumeOpts;
    resumeOpts.store = store.get();
    ServiceResult resumed = runCampaignService(cfg, resumeOpts);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.unitsReplayed, 8);
    EXPECT_EQ(resumed.unitsRun, 0);
    EXPECT_EQ(resumed.unitsQuarantined, 1);
    EXPECT_EQ(resumed.stats, live.stats);
    EXPECT_EQ(statsInvariantViolation(resumed.stats), "");
    store.reset();

    // The store still merges as a complete campaign: quarantine is a
    // first-class record, not a hole.
    campaign::MergeResult merged = campaign::mergeStore(dir.str());
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(merged.unitsMerged, 8u);
    EXPECT_EQ(merged.stats, live.stats);
}

TEST(Service, StopRequestPausesResumably)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 8;
    cfg.capPerKind = 2;
    cfg.jobs = 1;
    CampaignStats uninterrupted = runCampaignParallel(cfg);

    TempDir dir("stop");
    campaign::Manifest m =
        campaign::manifestFor(cfg, campaign::ShardSpec{});
    std::string error;
    auto store =
        campaign::CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;

    // Flip the stop flag from the fold callback after three units —
    // the in-test stand-in for SIGINT arriving mid-campaign. The
    // journal must already hold everything folded so far.
    std::atomic<bool> stop{false};
    int folds = 0;
    ServiceOptions opts;
    opts.store = store.get();
    opts.stopRequested = &stop;
    opts.onUnitFolded = [&](int, const CampaignStats &, bool) {
        if (++folds == 3)
            stop.store(true);
    };
    ServiceResult paused = runCampaignService(cfg, opts);
    EXPECT_FALSE(paused.complete);
    EXPECT_EQ(paused.unitsRun, 3);
    store.reset();

    store = campaign::CampaignStore::open(dir.str(), m, true, &error);
    ASSERT_TRUE(store) << error;
    ServiceOptions resumeOpts;
    resumeOpts.store = store.get();
    ServiceResult resumed = runCampaignService(cfg, resumeOpts);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.unitsReplayed, 3);
    EXPECT_EQ(resumed.unitsRun, 5);
    EXPECT_EQ(resumed.stats, uninterrupted);
    EXPECT_EQ(findingsDigest(resumed.stats),
              findingsDigest(uninterrupted));
}

TEST(Service, TinyCapsAreBitIdentical)
{
    // Shrink the corpus memo and the per-unit code cache to 4 entries:
    // both stop admitting and recompute instead, so every logical
    // statistic and the digest are unchanged — only the cap-reject
    // counters (and the other work counters) know the difference.
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 10;
    cfg.capPerKind = 2;
    cfg.jobs = 1;
    CampaignStats normal = runCampaignParallel(cfg);
    EXPECT_EQ(normal.exec.corpusCapRejects, 0u);
    EXPECT_EQ(normal.exec.translationCapRejects, 0u);

    cfg.corpusMemoCap = 4;
    cfg.codeCacheCap = 4;
    CampaignStats tiny = runCampaignParallel(cfg);
    expectIdentical(normal, tiny);
    EXPECT_EQ(findingsDigest(tiny), findingsDigest(normal));
    // The caps actually bit on this workload (the comparison above is
    // not vacuous).
    EXPECT_GT(tiny.exec.corpusCapRejects, 0u);
    EXPECT_GT(tiny.exec.translationCapRejects, 0u);
}

} // namespace
} // namespace ubfuzz::fuzzer
