/**
 * @file
 * The parallel orchestrator's determinism contract: sharding a
 * campaign across a worker pool never changes the result — the same
 * findings, the same ground-truth attribution, the same counters,
 * regardless of `jobs`.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "fuzzer/orchestrator.h"

namespace ubfuzz::fuzzer {
namespace {

std::vector<FindingRecord>
sortedFindings(const CampaignStats &stats)
{
    std::vector<FindingRecord> f = stats.findings;
    std::sort(f.begin(), f.end());
    return f;
}

void
expectIdentical(const CampaignStats &a, const CampaignStats &b)
{
    EXPECT_EQ(a.seeds, b.seeds);
    EXPECT_EQ(a.ubPrograms, b.ubPrograms);
    EXPECT_EQ(a.nonTriggering, b.nonTriggering);
    EXPECT_EQ(a.noUB, b.noUB);
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++)
        EXPECT_EQ(a.perKind[k], b.perKind[k]) << "kind " << k;
    EXPECT_EQ(a.discrepantPrograms, b.discrepantPrograms);
    EXPECT_EQ(a.oracleSelectedPrograms, b.oracleSelectedPrograms);
    EXPECT_EQ(a.verdictPairs, b.verdictPairs);
    EXPECT_EQ(a.selectedPairs, b.selectedPairs);
    EXPECT_EQ(a.selectedTrueBug, b.selectedTrueBug);
    EXPECT_EQ(a.selectedOptimization, b.selectedOptimization);
    EXPECT_EQ(a.droppedPairs, b.droppedPairs);
    EXPECT_EQ(a.droppedTrueBug, b.droppedTrueBug);
    EXPECT_EQ(a.bugFindingCounts, b.bugFindingCounts);
    EXPECT_EQ(a.bugFirstKind, b.bugFirstKind);
    EXPECT_EQ(a.bugLevels, b.bugLevels);
    EXPECT_EQ(a.wrongReports, b.wrongReports);
    EXPECT_EQ(a.wrongReportBugs, b.wrongReportBugs);
    EXPECT_EQ(a.invalidFindings, b.invalidFindings);
    // Timeout accounting and the corpus seen-set fold in unit order,
    // so they are part of the determinism contract too. (The ExecStats
    // work counters are deliberately not: under jobs > 1 a cross-seed
    // duplicate being computed concurrently may be recomputed instead
    // of replayed — identical results, slightly different work.)
    EXPECT_EQ(a.execTimeouts, b.execTimeouts);
    EXPECT_EQ(a.timeoutExcluded, b.timeoutExcluded);
    EXPECT_EQ(a.corpusSeen, b.corpusSeen);
    EXPECT_EQ(a.corpusDuplicates, b.corpusDuplicates);
    EXPECT_EQ(sortedFindings(a), sortedFindings(b));
}

TEST(Orchestrator, ShardingIsDeterministic)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 12;
    cfg.capPerKind = 2;

    cfg.jobs = 1;
    CampaignStats sequential = runCampaignParallel(cfg);
    cfg.jobs = 4;
    CampaignStats sharded = runCampaignParallel(cfg);

    // The campaign actually found things (the comparison is not 0==0).
    ASSERT_GT(sequential.ubPrograms, 0u);
    ASSERT_GT(sequential.findings.size(), 0u);
    expectIdentical(sequential, sharded);
}

TEST(Orchestrator, MoreJobsThanUnits)
{
    CampaignConfig cfg;
    cfg.seed = 3;
    cfg.numSeeds = 3;
    cfg.capPerKind = 2;

    cfg.jobs = 1;
    CampaignStats sequential = runCampaignParallel(cfg);
    cfg.jobs = 16;
    CampaignStats sharded = runCampaignParallel(cfg);
    expectIdentical(sequential, sharded);
}

TEST(Orchestrator, JulietShardsDeterministically)
{
    CampaignConfig cfg;
    cfg.source = SourceMode::Juliet;

    cfg.jobs = 1;
    CampaignStats sequential = runCampaignParallel(cfg);
    cfg.jobs = 4;
    CampaignStats sharded = runCampaignParallel(cfg);
    ASSERT_GT(sequential.ubPrograms, 0u);
    expectIdentical(sequential, sharded);
}

TEST(Orchestrator, ResolveJobs)
{
    EXPECT_EQ(resolveJobs(3), 3);
    EXPECT_EQ(resolveJobs(1), 1);
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_GE(resolveJobs(-2), 1);
}

TEST(Orchestrator, EmptyCampaign)
{
    CampaignConfig cfg;
    cfg.numSeeds = 0;
    cfg.jobs = 8;
    CampaignStats stats = runCampaignParallel(cfg);
    EXPECT_EQ(stats.seeds, 0u);
    EXPECT_EQ(stats.ubPrograms, 0u);
}

} // namespace
} // namespace ubfuzz::fuzzer
