/**
 * @file
 * The bytecode execution engine: fast-vs-generic dispatch parity (the
 * flattened interpreter against the reference struct-walking one,
 * over every UB kind, every dispatch mode, and sanitizer-instrumented
 * binaries), translation-time exhaustiveness of the opcode table, and
 * CodeCache accounting (one translation per distinct binary,
 * executions == translations + hits).
 */

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "generator/generator.h"
#include "ir/lowering.h"
#include "oracle/oracle.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"
#include "vm/bytecode.h"
#include "vm/vm.h"

namespace ubfuzz {
namespace {

using ubgen::UBKind;

void
expectSameResult(const vm::ExecResult &ref, const vm::ExecResult &fast,
                 const std::string &what)
{
    EXPECT_EQ(ref.kind, fast.kind)
        << what << ": " << ref.str() << " vs " << fast.str();
    EXPECT_EQ(ref.report, fast.report) << what;
    EXPECT_EQ(ref.reportLoc, fast.reportLoc) << what;
    EXPECT_EQ(ref.trap, fast.trap) << what;
    EXPECT_EQ(ref.trapLoc, fast.trapLoc) << what;
    EXPECT_EQ(ref.exitCode, fast.exitCode) << what;
    EXPECT_EQ(ref.checksum, fast.checksum) << what;
    EXPECT_EQ(ref.steps, fast.steps) << what;
    EXPECT_EQ(ref.trace, fast.trace) << what;
}

/** Bytecode vs reference under the differential runner's modes:
 *  silent, ground truth, and traced (the Generic loop). */
void
expectParity(const ir::Module &mod, const std::string &what,
             uint64_t stepLimit = 2'000'000)
{
    vm::Machine ref;
    vm::Machine fast;
    vm::ExecOptions silent;
    silent.stepLimit = stepLimit;
    expectSameResult(ref.runReference(mod, silent), fast.run(mod, silent),
                     what + " [silent]");
    vm::ExecOptions gt = silent;
    gt.groundTruth = true;
    expectSameResult(ref.runReference(mod, gt), fast.run(mod, gt),
                     what + " [ground-truth]");
    vm::ExecOptions tr = silent;
    tr.recordTrace = true;
    expectSameResult(ref.runReference(mod, tr), fast.run(mod, tr),
                     what + " [trace]");
}

TEST(DispatchParity, EveryUBKindEveryMode)
{
    // Walk seeds until the UB gallery covered every kind at least
    // once, comparing the bytecode interpreter against the reference
    // for every derived program under every differential-runner mode.
    bool covered[ubgen::kNumUBKinds] = {};
    size_t checked = 0;
    for (uint64_t s = 1; s <= 30; s++) {
        gen::GeneratorConfig gc;
        gc.seed = s;
        gc.safeMath = true;
        auto seed = gen::generateProgram(gc);
        ubgen::UBGenerator ubg(*seed);
        if (!ubg.profiled())
            continue;
        Rng rng(s * 31);
        auto programs = ubg.generateAll(rng, 1);
        for (const auto &ub : programs) {
            ast::PrintedProgram printed = ast::printProgram(*ub.program);
            ir::Module mod = ir::lowerProgram(*ub.program, printed.map);
            expectParity(mod, std::string("kind ") +
                                  ubgen::ubKindName(ub.kind) + " seed " +
                                  std::to_string(s));
            covered[static_cast<size_t>(ub.kind)] = true;
            checked++;
        }
        bool all = true;
        for (UBKind k : ubgen::kAllUBKinds)
            all = all && covered[static_cast<size_t>(k)];
        if (all && s >= 6)
            break;
    }
    for (UBKind k : ubgen::kAllUBKinds)
        EXPECT_TRUE(covered[static_cast<size_t>(k)])
            << "gallery never produced " << ubgen::ubKindName(k);
    EXPECT_GT(checked, 20u);
}

TEST(DispatchParity, SanitizerInstrumentedBinaries)
{
    // The silent matrix runs execute sanitizer-instrumented binaries:
    // cover the sanitizer opcodes (AsanCheck, Ubsan*, MsanCheck) and
    // the MSan shadow dispatch mode against the reference.
    gen::GeneratorConfig gc;
    gc.seed = 11;
    gc.safeMath = true;
    auto seed = gen::generateProgram(gc);
    ubgen::UBGenerator ubg(*seed);
    ASSERT_TRUE(ubg.profiled());
    Rng rng(7);
    auto programs = ubg.generateAll(rng, 1);
    ASSERT_FALSE(programs.empty());
    size_t checked = 0;
    for (size_t i = 0; i < programs.size() && checked < 4; i++) {
        const auto &ub = programs[i];
        for (SanitizerKind sani :
             {SanitizerKind::ASan, SanitizerKind::UBSan,
              SanitizerKind::MSan}) {
            for (compiler::CompilerConfig cfg :
                 oracle::testingMatrix(sani)) {
                compiler::Binary bin =
                    compiler::compileProgram(*ub.program, cfg);
                expectParity(bin.module, cfg.str());
            }
        }
        checked++;
    }
    EXPECT_GT(checked, 0u);
}

TEST(DispatchParity, TimeoutAndProfileRuns)
{
    auto prog = frontend::parseOrDie(R"(int main(void) {
    long *p = (long*)__malloc(16l);
    p[0] = 1l;
    __free((char*)p);
    while (1) {
        __checksum(1l);
    }
    return 0;
}
)");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    ir::Module mod = ir::lowerProgram(*prog, printed.map);
    // Timeout: step counts against the limit must agree exactly.
    vm::ExecOptions opts;
    opts.stepLimit = 12345;
    vm::Machine ref, fast;
    expectSameResult(ref.runReference(mod, opts), fast.run(mod, opts),
                     "timeout");
    // Profile runs take the generic loop; the collected records must
    // agree (heap allocation lifecycles and the event sequence).
    vm::RawProfile refProf, fastProf;
    vm::ExecOptions profOpts;
    profOpts.stepLimit = 12345;
    profOpts.profile = &refProf;
    vm::ExecResult r1 = ref.runReference(mod, profOpts);
    profOpts.profile = &fastProf;
    vm::ExecResult r2 = fast.run(mod, profOpts);
    expectSameResult(r1, r2, "profile");
    EXPECT_EQ(refProf.eventSeq, fastProf.eventSeq);
    ASSERT_EQ(refProf.heapAllocs.size(), fastProf.heapAllocs.size());
    for (size_t i = 0; i < refProf.heapAllocs.size(); i++) {
        EXPECT_EQ(refProf.heapAllocs[i].allocSeq,
                  fastProf.heapAllocs[i].allocSeq);
        EXPECT_EQ(refProf.heapAllocs[i].freeSeq,
                  fastProf.heapAllocs[i].freeSeq);
    }
}

TEST(DispatchParity, DeepRecursionStackOverflowTrap)
{
    // The call-depth trap reports at the last executed valid location
    // (curLoc_ in the reference); the bytecode loop reconstructs it
    // from its pc side table.
    auto prog = frontend::parseOrDie(R"(int down(int n) {
    return down(n + 1);
}
int main(void) {
    return down(0);
}
)");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    ir::Module mod = ir::lowerProgram(*prog, printed.map);
    vm::Machine ref, fast;
    expectSameResult(ref.runReference(mod), fast.run(mod),
                     "call depth trap");
}

//===--------------------------------------------------------------===//
// Translation-time exhaustiveness
//===--------------------------------------------------------------===//

TEST(Exhaustiveness, EveryOpcodeHasABytecodeHandler)
{
    for (size_t i = 0; i < ir::kNumOpcodes; i++) {
        EXPECT_TRUE(vm::bc::opcodeHasHandler(static_cast<ir::Opcode>(i)))
            << "opcode #" << i << " ("
            << ir::opcodeName(static_cast<ir::Opcode>(i))
            << ") has no bytecode handler";
    }
    // Guard the hand-maintained bound itself: one past kNumOpcodes must
    // not name a real opcode. An opcode appended to the enum without
    // bumping kNumOpcodes gets a real name here and fails this check,
    // so the loop above cannot silently under-cover.
    EXPECT_STREQ(
        ir::opcodeName(static_cast<ir::Opcode>(ir::kNumOpcodes)), "?");
}

TEST(ExhaustivenessDeathTest, UnknownOpcodePanicsAtTranslation)
{
    auto prog = frontend::parseOrDie("int main(void) { return 0; }");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    ir::Module mod = ir::lowerProgram(*prog, printed.map);
    // Corrupt one instruction with an opcode the flattener has never
    // heard of: the panic must fire at translation, not mid-run.
    mod.functions[mod.mainIndex].blocks[0].insts[0].op =
        static_cast<ir::Opcode>(0xEF);
    EXPECT_DEATH((void)vm::bc::translate(mod), "no bytecode handler");
}

//===--------------------------------------------------------------===//
// CodeCache accounting
//===--------------------------------------------------------------===//

ir::Module
lowerSource(const std::string &src)
{
    auto prog = frontend::parseOrDie(src);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    return ir::lowerProgram(*prog, printed.map);
}

TEST(CodeCache, TranslateOncePerDistinctBinary)
{
    ir::Module mod = lowerSource("int main(void) { return 7; }");
    vm::Machine m;
    m.run(mod);
    m.run(mod);
    m.run(mod);
    EXPECT_EQ(m.stats().translations, 1u);
    EXPECT_EQ(m.stats().translationHits, 2u);
    EXPECT_EQ(m.stats().executions,
              m.stats().translations + m.stats().translationHits);
}

TEST(CodeCache, ByteIdenticalModulesShareATranslation)
{
    // Keyed by ir::BinaryKey, not object identity: two separately
    // lowered but byte-identical binaries share one translation.
    ir::Module a = lowerSource("int main(void) { return 4; }");
    ir::Module b = lowerSource("int main(void) { return 4; }");
    vm::Machine m;
    vm::ExecResult ra = m.run(a);
    vm::ExecResult rb = m.run(b);
    EXPECT_EQ(ra.exitCode, rb.exitCode);
    EXPECT_EQ(m.stats().translations, 1u);
    EXPECT_EQ(m.stats().translationHits, 1u);
}

TEST(CodeCache, SharedAcrossMachines)
{
    // The campaign's per-unit wiring: the classifier machine and every
    // per-program machine resolve through one cache, so a binary one
    // machine ran is never flattened again by another.
    ir::Module mod = lowerSource("int main(void) { return 1; }");
    vm::CodeCache cache;
    vm::Machine m1(&cache);
    vm::Machine m2(&cache);
    m1.run(mod);
    m2.run(mod);
    EXPECT_EQ(m1.stats().translations, 1u);
    EXPECT_EQ(m1.stats().translationHits, 0u);
    EXPECT_EQ(m2.stats().translations, 0u);
    EXPECT_EQ(m2.stats().translationHits, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(CodeCache, ExecutionPlanAccountsTranslationsAndHits)
{
    // One real differential matrix: every distinct binary translates
    // exactly once; the debugger re-executions of silent binaries are
    // the hits. The campaign-wide CI invariant in miniature.
    gen::GeneratorConfig gc;
    gc.seed = 11;
    gc.safeMath = true;
    auto seed = gen::generateProgram(gc);
    ubgen::UBGenerator ubg(*seed);
    ASSERT_TRUE(ubg.profiled());
    Rng rng(3);
    auto programs = ubg.generateAll(rng, 1);
    ASSERT_FALSE(programs.empty());
    const auto &ub = programs.front();
    ast::PrintedProgram printed = ast::printProgram(*ub.program);
    compiler::CompilationCache cache(*ub.program, printed);
    vm::CodeCache codeCache;
    vm::Machine machine(&codeCache);
    auto configs = oracle::testingMatrix(SanitizerKind::ASan);
    oracle::DifferentialResult diff =
        oracle::runDifferential(cache, machine, configs, 1'000'000);
    const vm::ExecStats &es = machine.stats();
    EXPECT_GT(es.executions, 0u);
    EXPECT_GT(es.translations, 0u);
    EXPECT_EQ(es.executions, es.translations + es.translationHits);
    // Distinct binaries executed once each: translations never exceed
    // the matrix width (aliased configs are dedup skips, not runs).
    EXPECT_LE(es.translations, configs.size());
    EXPECT_EQ(diff.outcomes.size(), configs.size());
}

//===--------------------------------------------------------------===//
// Superinstruction fusion + quickening
//===--------------------------------------------------------------===//

/** A compact program whose fused translation exercises every fused
 *  family: the loop compare+branch, array load+bin and bin+store,
 *  gep+load on the indexed reads, and frame-slot address+load/store
 *  pairs from the lowered locals. Three iterations keep the full run
 *  short enough to sweep every stepLimit boundary below. */
const char *kFusedSource = R"(int a[8];
int g;
int helper(int x) {
    return x * 3 + 1;
}
int main(void) {
    long s = 0l;
    g = 2;
    for (int i = 0; i < 3; i += 1) {
        int j = i % 8;
        a[j] = a[j] + helper(i) + g;
        s += (long)(a[j] % 100);
    }
    __checksum(s);
    return (int)(s % 256l);
}
)";

TEST(Fusion, TranslationCoversEveryFusedFamily)
{
    ir::Module mod = lowerSource(kFusedSource);
    vm::bc::Program base = vm::bc::translate(mod);
    vm::bc::Program fused = vm::bc::translate(mod, vm::bc::kTierFused);
    EXPECT_EQ(base.tier, vm::bc::kTierBaseline);
    EXPECT_EQ(base.fusedRecords, 0u);
    EXPECT_EQ(fused.tier, vm::bc::kTierFused);
    ASSERT_GT(fused.fusedRecords, 0u);
    // Fusion rewrites first-half opcodes in place: the pc space, the
    // record count, and the loc side table are identical to baseline.
    ASSERT_EQ(base.code.size(), fused.code.size());
    ASSERT_EQ(base.locs, fused.locs);
    using vm::bc::BOp;
    size_t families[5] = {};
    for (const vm::bc::BInst &bi : fused.code) {
        if (bi.op >= BOp::FCmpBrRR && bi.op <= BOp::FCmpBrII)
            families[0]++;
        else if (bi.op >= BOp::FLoadBinRR && bi.op <= BOp::FLoadBinII)
            families[1]++;
        else if (bi.op >= BOp::FBinStoreRR && bi.op <= BOp::FBinStoreII)
            families[2]++;
        else if (bi.op >= BOp::FGepLoadRR && bi.op <= BOp::FGepLoadII)
            families[3]++;
        else if (bi.op >= BOp::FFrameAddrLoad &&
                 bi.op <= BOp::FFrameAddrStoreI)
            families[4]++;
    }
    const char *names[5] = {"Cmp+CondBr", "Load+Bin", "Bin+Store",
                            "Gep+Load", "FrameAddr+access"};
    size_t total = 0;
    for (size_t i = 0; i < 5; i++) {
        EXPECT_GT(families[i], 0u) << names[i] << " family never fused";
        total += families[i];
    }
    EXPECT_EQ(total, fused.fusedRecords);
}

TEST(Fusion, StepLimitParityAtEveryBoundary)
{
    // The regression magnet: a stepLimit expiring *between* the two
    // halves of a superinstruction must time out at exactly the same
    // step as the reference, in every dispatch mode. Sweep every
    // boundary of the whole program, fused from the very first
    // translation (hot threshold 1).
    ir::Module mod = lowerSource(kFusedSource);
    ASSERT_GT(vm::bc::translate(mod, vm::bc::kTierFused).fusedRecords,
              0u);
    // Shadow-mode dispatch follows the translation's msan flag; no
    // check records are needed to exercise the mode's loop.
    ir::Module shadowMod = mod;
    shadowMod.msan.enabled = true;
    vm::Machine probe;
    const uint64_t fullSteps = probe.runReference(mod).steps;
    ASSERT_GT(fullSteps, 0u);
    ASSERT_LT(fullSteps, 2000u); // keep the quadratic sweep cheap
    for (uint64_t k = 0; k <= fullSteps + 1; k++) {
        vm::CodeCache cache(vm::CodeCache::kDefaultMaxEntries, 1);
        vm::Machine ref;
        vm::Machine fast(&cache);
        vm::ExecOptions o;
        o.stepLimit = k;
        std::string tag = "stepLimit " + std::to_string(k);
        expectSameResult(ref.runReference(mod, o), fast.run(mod, o),
                         tag + " [silent]");
        vm::ExecOptions gt = o;
        gt.groundTruth = true;
        expectSameResult(ref.runReference(mod, gt), fast.run(mod, gt),
                         tag + " [ground-truth]");
        vm::ExecOptions tr = o;
        tr.recordTrace = true;
        expectSameResult(ref.runReference(mod, tr), fast.run(mod, tr),
                         tag + " [trace]");
        expectSameResult(ref.runReference(shadowMod, o),
                         fast.run(shadowMod, o), tag + " [shadow]");
    }
}

TEST(Quickening, HotBinaryRetranslatesAtTheFusedTierOnce)
{
    ir::Module mod = lowerSource(kFusedSource);
    vm::CodeCache cache; // default threshold: quickens on the 2nd run
    vm::Machine m(&cache);
    vm::ExecResult first = m.run(mod);
    EXPECT_EQ(cache.quickenedTranslations(), 0u);
    EXPECT_EQ(cache.fusedRecords(), 0u);
    vm::ExecResult second = m.run(mod);
    EXPECT_EQ(cache.quickenedTranslations(), 1u);
    EXPECT_GT(cache.fusedRecords(), 0u);
    vm::ExecResult third = m.run(mod);
    // The upgrade happens once; later runs hit the fused entry.
    EXPECT_EQ(cache.quickenedTranslations(), 1u);
    // Tier changes are invisible in results and in cache accounting:
    // still one entry, one baseline translation, hits for the rest.
    expectSameResult(first, second, "baseline vs quickened");
    expectSameResult(second, third, "quickened vs fused hit");
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(m.stats().translations, 1u);
    EXPECT_EQ(m.stats().translationHits, 2u);
    EXPECT_EQ(m.stats().executions,
              m.stats().translations + m.stats().translationHits);
}

} // namespace
} // namespace ubfuzz
