/**
 * @file
 * AST construction, typing, printing, cloning, and round-trip tests.
 */

#include <gtest/gtest.h>

#include "ast/clone.h"
#include "ast/printer.h"
#include "ast/typing.h"
#include "frontend/parser.h"

namespace ubfuzz::ast {
namespace {

TEST(TypeTable, InterningGivesPointerEquality)
{
    Program p;
    TypeTable &tt = p.types();
    EXPECT_EQ(tt.s32(), tt.scalar(ScalarKind::S32));
    EXPECT_EQ(tt.pointer(tt.s32()), tt.pointer(tt.s32()));
    EXPECT_EQ(tt.array(tt.s32(), 5), tt.array(tt.s32(), 5));
    EXPECT_NE(tt.array(tt.s32(), 5), tt.array(tt.s32(), 6));
}

TEST(TypeTable, SizesAndAlignment)
{
    Program p;
    TypeTable &tt = p.types();
    EXPECT_EQ(tt.scalar(ScalarKind::S16)->size(), 2u);
    EXPECT_EQ(tt.pointer(tt.s32())->size(), 8u);
    EXPECT_EQ(tt.array(tt.s64(), 3)->size(), 24u);

    auto *s = p.ctx().make<StructDecl>("S");
    s->addField(p.ctx().make<FieldDecl>("a", tt.scalar(ScalarKind::S8)));
    s->addField(p.ctx().make<FieldDecl>("b", tt.s64()));
    // char + padding + long -> 16 bytes, align 8.
    EXPECT_EQ(s->size(), 16u);
    EXPECT_EQ(s->align(), 8u);
    EXPECT_EQ(s->fields()[1]->offset(), 8u);
}

TEST(Typing, UsualArithmeticConversions)
{
    Program p;
    TypeTable &tt = p.types();
    const Type *s16 = tt.scalar(ScalarKind::S16);
    const Type *u32 = tt.scalar(ScalarKind::U32);
    const Type *s64 = tt.s64();
    const Type *u64 = tt.scalar(ScalarKind::U64);

    EXPECT_EQ(promote(tt, s16), tt.s32());
    EXPECT_EQ(commonType(tt, tt.s32(), u32), u32);
    EXPECT_EQ(commonType(tt, u32, s64), s64);
    EXPECT_EQ(commonType(tt, s64, u64), u64);
    EXPECT_EQ(binaryResultType(tt, BinaryOp::Lt, s64, u64), tt.s32());
    EXPECT_EQ(binaryResultType(tt, BinaryOp::Shl, s16, s64), tt.s32());
}

TEST(Typing, PointerArithmetic)
{
    Program p;
    TypeTable &tt = p.types();
    const Type *pi = tt.pointer(tt.s32());
    EXPECT_EQ(binaryResultType(tt, BinaryOp::Add, pi, tt.s32()), pi);
    EXPECT_EQ(binaryResultType(tt, BinaryOp::Add, tt.s32(), pi), pi);
    EXPECT_EQ(binaryResultType(tt, BinaryOp::Sub, pi, pi), tt.s64());
    const Type *arr = tt.array(tt.s32(), 4);
    EXPECT_EQ(binaryResultType(tt, BinaryOp::Add, arr, tt.s32()), pi);
}

/** Build a tiny program by hand and check the printed form. */
TEST(Printer, SimpleProgram)
{
    Program p;
    ExprBuilder eb(p);
    TypeTable &tt = p.types();
    auto *g = p.ctx().make<VarDecl>("g", tt.s32(), Storage::Global,
                                    eb.lit(7));
    p.globals().push_back(g);
    auto *fn = p.ctx().make<FunctionDecl>("main", tt.s32());
    auto *body = p.ctx().make<Block>();
    body->append(p.ctx().make<AssignStmt>(AssignOp::Assign, eb.ref(g),
                                          eb.bin(BinaryOp::Add, eb.ref(g),
                                                 eb.lit(1))));
    body->append(p.ctx().make<ReturnStmt>(eb.ref(g)));
    fn->setBody(body);
    p.functions().push_back(fn);
    p.setMain(fn);

    PrintedProgram printed = printProgram(p);
    EXPECT_EQ(printed.text, "int g = 7;\n"
                            "int main(void) {\n"
                            "    g = g + 1;\n"
                            "    return g;\n"
                            "}\n");
    // Locations: the assignment is on line 3, column 4.
    SourceLoc loc = printed.map.loc(body->stmts()[0]->nodeId());
    EXPECT_EQ(loc.line, 3);
    EXPECT_EQ(loc.offset, 4);
}

TEST(Parser, RoundTripIdempotence)
{
    const char *source = R"(struct S0 {
    int f0;
    long f1;
};
struct S0 gs;
int ga[4] = {1, 2, 3, 4};
int *gp = &ga[2];
int gk = 0;
long helper(int a, long b) {
    long r = 0;
    if (a > 3) {
        r = b + (long)a;
    } else {
        r = b - 1l;
    }
    return r;
}
int main(void) {
    int i = 0;
    for (i = 0; i < 4; i += 1) {
        ga[i] = ga[i] * 2;
    }
    gs.f0 = ga[1];
    gs.f1 = helper(gs.f0, 5l);
    *gp = (gk == 0) ? 1 : (100 / gk);
    while (gk < 3) {
        gk += 1;
    }
    __checksum((long)ga[0]);
    return 0;
}
)";
    auto prog = frontend::parseOrDie(source);
    std::string text1 = programText(*prog);
    auto prog2 = frontend::parseOrDie(text1);
    std::string text2 = programText(*prog2);
    EXPECT_EQ(text1, text2);
}

TEST(Parser, ReportsUnknownVariable)
{
    auto r = frontend::parseProgram("int main(void) { x = 1; return 0; }");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("unknown variable"), std::string::npos);
}

TEST(Parser, ReportsBadStructField)
{
    auto r = frontend::parseProgram(
        "struct S { int a; };\n"
        "struct S s;\n"
        "int main(void) { s.b = 1; return 0; }");
    EXPECT_FALSE(r.ok());
}

TEST(Parser, ParsesPaperFigure1)
{
    // The motivating example from the paper (Figure 1).
    const char *source = R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = *b[0 + 0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)";
    // *b[0+0] is actually ill-formed here; use the faithful variant.
    (void)source;
    const char *fig1 = R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)";
    auto prog = frontend::parseOrDie(fig1);
    EXPECT_NE(prog->main(), nullptr);
    EXPECT_EQ(prog->globals().size(), 4u);
}

TEST(Clone, PreservesNodeIdsAndStructure)
{
    auto prog = frontend::parseOrDie(R"(int g = 3;
int main(void) {
    int x = g + 4;
    __checksum((long)x);
    return x;
}
)");
    std::string before = programText(*prog);
    ClonedProgram cloned = cloneProgram(*prog);
    EXPECT_EQ(programText(*cloned.program), before);
    // Every global keeps its node id in the clone.
    for (const VarDecl *g : prog->globals()) {
        Node *n = cloned.find(g->nodeId());
        ASSERT_NE(n, nullptr);
        EXPECT_EQ(n->as<VarDecl>()->name(), g->name());
    }
}

TEST(Arena, NodeIdsAreDenseAndIndexable)
{
    // The arena replaces the per-program id->node hash map with a
    // dense vector: every node is reachable both by arena index and by
    // nodeId, and the two views agree.
    auto prog = frontend::parseOrDie(R"(int g = 3;
long helper(int a) {
    return (long)a * 2l;
}
int main(void) {
    int x = g + 4;
    __checksum(helper(x));
    return x;
}
)");
    const ASTContext &ctx = prog->ctx();
    ASSERT_GT(ctx.numNodes(), 0u);
    for (NodeIndex i = 0; i < ctx.numNodes(); i++) {
        const Node *n = ctx.nodeAt(i);
        EXPECT_EQ(n->arenaIndex(), i);
        EXPECT_EQ(ctx.nodeById(n->nodeId()), n);
    }
}

TEST(Arena, DuplicateNodeIdPanics)
{
    Program p;
    p.ctx().makeWithId<Block>(42);
    EXPECT_DEATH(p.ctx().makeWithId<Block>(42), "duplicate nodeId");
}

TEST(Clone, MemcpyClonePreservesIndicesIdsAndRangeHashes)
{
    auto prog = frontend::parseOrDie(R"(struct S0 {
    int f0;
};
struct S0 gs;
int ga[4] = {1, 2, 3, 4};
int main(void) {
    int i = 0;
    for (i = 0; i < 4; i += 1) {
        ga[i] = ga[i] * 2;
    }
    gs.f0 = (ga[0] > 3) ? ga[1] : ga[2];
    __checksum((long)gs.f0);
    return 0;
}
)");
    ClonedProgram cloned = cloneProgram(*prog);
    const ASTContext &a = prog->ctx();
    const ASTContext &b = cloned.program->ctx();
    ASSERT_EQ(a.numNodes(), b.numNodes());
    for (NodeIndex i = 0; i < a.numNodes(); i++) {
        EXPECT_EQ(a.nodeAt(i)->nodeId(), b.nodeAt(i)->nodeId());
        EXPECT_EQ(a.nodeAt(i)->kind(), b.nodeAt(i)->kind());
        // Dense id lookup in the clone lands on the same slot.
        EXPECT_EQ(cloned.find(a.nodeAt(i)->nodeId()), b.nodeAt(i));
    }
    // Every subtree fingerprint is a hash over a slot range; the
    // memcpy clone must agree on *every* range, not just the whole
    // arena — sample a grid of [i, j) windows.
    for (NodeIndex i = 0; i < a.numNodes(); i += 7)
        for (NodeIndex j = i + 1; j <= a.numNodes(); j += 5)
            EXPECT_EQ(a.hashNodeRange(i, j), b.hashNodeRange(i, j));
}

TEST(Clone, InPlaceMutationChangesTheRangeHash)
{
    auto prog = frontend::parseOrDie(R"(int g = 3;
int main(void) {
    int x = g + 4;
    return x;
}
)");
    const ASTContext &sctx = prog->ctx();
    uint64_t sourceHash = sctx.hashNodeRange(0, sctx.numNodes());

    ClonedProgram cloned = cloneProgram(*prog);
    ASTContext &cctx = cloned.program->ctx();
    ASSERT_EQ(cctx.hashNodeRange(0, cctx.numNodes()), sourceHash);

    // Flip the `g + 4` operator in place: the Binary slot's bytes
    // change, so any range covering it hashes differently.
    auto *decl =
        cloned.program->main()->body()->stmts()[0]->as<DeclStmt>();
    auto *bin = decl->var()->init()->as<Binary>();
    bin->setOp(BinaryOp::Sub);
    EXPECT_NE(cctx.hashNodeRange(0, cctx.numNodes()), sourceHash);
    // A range that excludes the mutated slot still matches.
    NodeIndex bi = bin->arenaIndex();
    if (bi > 0)
        EXPECT_EQ(cctx.hashNodeRange(0, bi), sctx.hashNodeRange(0, bi));
    // The source program is untouched.
    EXPECT_EQ(sctx.hashNodeRange(0, sctx.numNodes()), sourceHash);
}

TEST(Clone, RebuildBaselinePrintsIdentically)
{
    // The node-by-node cloner is kept as the bench baseline; it must
    // still produce a semantically identical program (same text, same
    // nodeIds for every source node).
    auto prog = frontend::parseOrDie(R"(int g = 3;
int main(void) {
    int x = g + 4;
    __checksum((long)x);
    return x;
}
)");
    ClonedProgram rebuilt = cloneProgramByRebuild(*prog);
    EXPECT_EQ(programText(*rebuilt.program), programText(*prog));
    for (const ast::VarDecl *gv : prog->globals())
        EXPECT_NE(rebuilt.find(gv->nodeId()), nullptr);
}

TEST(Clone, MutatingCloneLeavesOriginalIntact)
{
    auto prog = frontend::parseOrDie(R"(int g = 3;
int main(void) {
    g = 5;
    return g;
}
)");
    std::string before = programText(*prog);
    ClonedProgram cloned = cloneProgram(*prog);
    // Append a statement to the clone's main.
    Program &cp = *cloned.program;
    ExprBuilder eb(cp);
    VarDecl *g = cp.findGlobal("g");
    cp.main()->body()->insert(0, cp.ctx().make<AssignStmt>(
                                     AssignOp::Assign, eb.ref(g),
                                     eb.lit(9)));
    EXPECT_EQ(programText(*prog), before);
    EXPECT_NE(programText(cp), before);
}

} // namespace
} // namespace ubfuzz::ast
