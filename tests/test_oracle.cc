/**
 * @file
 * Crash-site mapping oracle tests: the true-bug case (Figure 1), the
 * optimization case (Figure 3), and the differential runner.
 */

#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "oracle/oracle.h"

namespace ubfuzz::oracle {
namespace {

TEST(CrashSiteMapping, MembershipSemantics)
{
    std::vector<SourceLoc> trace = {{1, 0}, {2, 4}, {3, 8}, {2, 4}};
    EXPECT_TRUE(crashSiteMapping({2, 4}, trace));
    EXPECT_TRUE(crashSiteMapping({3, 8}, trace));
    EXPECT_FALSE(crashSiteMapping({3, 9}, trace));
    EXPECT_FALSE(crashSiteMapping({9, 0}, trace));
    EXPECT_FALSE(crashSiteMapping({2, 4}, {}));
}

TEST(TestingMatrix, MatchesPaperSetup)
{
    // ASan and UBSan: both vendors x 5 levels.
    EXPECT_EQ(testingMatrix(SanitizerKind::ASan).size(), 10u);
    EXPECT_EQ(testingMatrix(SanitizerKind::UBSan).size(), 10u);
    // MSan: LLVM only.
    auto msan = testingMatrix(SanitizerKind::MSan);
    EXPECT_EQ(msan.size(), 5u);
    for (const auto &c : msan)
        EXPECT_EQ(c.vendor, Vendor::LLVM);
}

/**
 * Figure 1 analog: GCC ASan reports at -O0, misses at -O2 due to the
 * injected struct-copy defect; the crash site is still executed at
 * -O2, so the oracle says "sanitizer bug".
 */
TEST(Oracle, Figure1TrueBugIsSelected)
{
    auto prog = frontend::parseOrDie(R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    DifferentialResult diff = runDifferential(
        *prog, printed, testingMatrix(SanitizerKind::ASan));
    ASSERT_TRUE(diff.hasDiscrepancy());
    EXPECT_TRUE(diff.anyBugVerdict());
    // And the non-crashing binaries' logs confirm the injected bug.
    bool confirmed = false;
    for (const auto &v : diff.verdicts) {
        if (!v.isBug)
            continue;
        for (const auto &f : diff.outcomes[v.nonCrashingIdx].log.firings)
            confirmed |=
                f.id == san::BugId::GccAsanStructCopyNoCheck ||
                f.id == san::BugId::GccAsanGlobalPtrStoreNoCheck;
    }
    EXPECT_TRUE(confirmed);
}

/**
 * Figure 3 analog: the dead OOB store is eliminated by optimization
 * before the sanitizer pass. Discrepancy exists (-O0 reports, -O2
 * does not) but the crash site is not executed at -O2, so the oracle
 * must NOT flag a bug.
 */
TEST(Oracle, Figure3OptimizationIsRejected)
{
    auto prog = frontend::parseOrDie(R"(int main(void) {
    int d[2];
    int i = 2;
    d[i] = 1;
    return 0;
}
)");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    DifferentialResult diff = runDifferential(
        *prog, printed, testingMatrix(SanitizerKind::ASan));
    ASSERT_TRUE(diff.hasDiscrepancy());
    for (const auto &v : diff.verdicts) {
        EXPECT_FALSE(v.isBug)
            << diff.outcomes[v.nonCrashingIdx].config.str();
        // Ground truth agrees: no injected bug fired.
        EXPECT_TRUE(
            diff.outcomes[v.nonCrashingIdx].log.firings.empty());
    }
}

/**
 * The cache-driven differential runner is the campaign hot path; it
 * must agree exactly with the one-off overload, retain an executable
 * module per outcome, and do the whole matrix on a single lowering
 * with zero recompiles for the debugger traces.
 */
TEST(Oracle, CachedDifferentialMatchesOneOffAndRetainsModules)
{
    auto prog = frontend::parseOrDie(R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    auto configs = testingMatrix(SanitizerKind::ASan);
    DifferentialResult oneOff =
        runDifferential(*prog, printed, configs);

    compiler::CompilationCache cache(*prog, printed);
    DifferentialResult cached = runDifferential(cache, configs);

    ASSERT_EQ(oneOff.outcomes.size(), cached.outcomes.size());
    for (size_t i = 0; i < oneOff.outcomes.size(); i++) {
        EXPECT_EQ(oneOff.outcomes[i].result.str(),
                  cached.outcomes[i].result.str());
        EXPECT_EQ(ir::printModule(oneOff.outcomes[i].module),
                  ir::printModule(cached.outcomes[i].module));
    }
    ASSERT_EQ(oneOff.verdicts.size(), cached.verdicts.size());
    for (size_t i = 0; i < oneOff.verdicts.size(); i++) {
        EXPECT_EQ(oneOff.verdicts[i].crashingIdx,
                  cached.verdicts[i].crashingIdx);
        EXPECT_EQ(oneOff.verdicts[i].nonCrashingIdx,
                  cached.verdicts[i].nonCrashingIdx);
        EXPECT_EQ(oneOff.verdicts[i].isBug, cached.verdicts[i].isBug);
    }

    // Compile-once accounting: one lowering for the 10-config matrix,
    // and the debugger traces re-executed retained modules instead of
    // compiling any silent binary a second time.
    EXPECT_EQ(cache.stats().lowerings, 1u);
    EXPECT_EQ(cache.stats().specializations, configs.size());
    EXPECT_GT(cache.stats().traceExecutions, 0u);

    // The retained module is the executed binary: re-running it
    // reproduces the recorded outcome.
    for (const auto &oc : cached.outcomes) {
        vm::ExecResult again = vm::execute(oc.module);
        EXPECT_EQ(again.str(), oc.result.str()) << oc.config.str();
    }
}

/**
 * The batched plan executes each distinct binary once: identical
 * specializations (equal ir::executionKey) copy the result and count a
 * dedup skip, without changing a single outcome or verdict.
 */
TEST(ExecutionPlan, SkipsIdenticalBinariesWithIdenticalResults)
{
    auto prog = frontend::parseOrDie(R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    auto configs = testingMatrix(SanitizerKind::ASan);

    compiler::CompilationCache cache(*prog, printed);
    vm::Machine machine;
    DifferentialResult diff =
        runDifferential(cache, machine, configs, 1'000'000);

    EXPECT_GT(machine.stats().dedupSkips, 0u);
    EXPECT_LT(machine.stats().executions, configs.size());
    EXPECT_EQ(machine.stats().machinesBuilt, 1u);
    EXPECT_EQ(machine.stats().executions,
              machine.stats().resets + 1);

    // Copied results are indistinguishable from re-execution.
    for (const auto &oc : diff.outcomes) {
        vm::ExecResult again = vm::execute(oc.module);
        EXPECT_EQ(again.str(), oc.result.str()) << oc.config.str();
    }
}

/**
 * Timed-out binaries are counted and excluded from pairing: they are
 * neither crashes nor evidence of a missed report.
 */
TEST(Oracle, TimeoutsAreCountedAndExcludedFromPairing)
{
    auto prog = frontend::parseOrDie(R"(int main(void) {
    int s = 0;
    while (1) {
        s += 1;
    }
    return s;
}
)");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    auto configs = testingMatrix(SanitizerKind::UBSan);

    // A tiny step limit times every configuration out: no crashing
    // binary, no silent binary, no pairing.
    compiler::CompilationCache cache(*prog, printed);
    vm::Machine machine;
    DifferentialResult diff = runDifferential(cache, machine, configs, 50);
    EXPECT_GT(diff.timeouts, 0u);
    EXPECT_EQ(diff.timeouts, configs.size());
    EXPECT_FALSE(diff.hasDiscrepancy());
    EXPECT_EQ(diff.timeoutExcluded, 0u); // no pairing happened
    for (const auto &oc : diff.outcomes)
        EXPECT_EQ(oc.result.kind, vm::ExecResult::Kind::Timeout);
}

/** No discrepancy at all when every configuration reports. */
TEST(Oracle, ConsistentReportsAreNoDiscrepancy)
{
    auto prog = frontend::parseOrDie(R"(int z = 0;
int g = 7;
int main(void) {
    g = 100 / z;
    return g;
}
)");
    ast::PrintedProgram printed = ast::printProgram(*prog);
    DifferentialResult diff = runDifferential(
        *prog, printed, testingMatrix(SanitizerKind::UBSan));
    int crashes = 0;
    for (const auto &oc : diff.outcomes)
        crashes += oc.result.crashed() ? 1 : 0;
    EXPECT_EQ(crashes, static_cast<int>(diff.outcomes.size()));
    EXPECT_FALSE(diff.hasDiscrepancy());
}

} // namespace
} // namespace ubfuzz::oracle
