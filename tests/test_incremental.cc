/**
 * @file
 * Differential suite for the seed-level incremental lowering: for
 * every UB kind in the gallery, a module lowered incrementally from
 * the seed's base (spliced functions + replayed statement ranges) must
 * be indistinguishable from a from-scratch lowering under
 * ir::executionKey — the canonical serialization of everything the VM
 * reads — and must pass the IR verifier. Also covers the transparent
 * fallbacks: no perturbed-site handle, and a handle pointing at the
 * wrong function (the AST fingerprint must catch the real one).
 */

#include <gtest/gtest.h>

#include "ast/clone.h"
#include "ast/printer.h"
#include "ast/typing.h"
#include "compiler/compiler.h"
#include "generator/generator.h"
#include "ir/lowering.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"

namespace ubfuzz {
namespace {

using ubgen::UBKind;

std::unique_ptr<ast::Program>
makeSeed(uint64_t s)
{
    gen::GeneratorConfig gc;
    gc.seed = s;
    gc.safeMath = true;
    return gen::generateProgram(gc);
}

/** Incremental vs scratch for one derived program; returns the
 *  incremental module for further inspection. */
ir::Module
checkIncrementalEqualsScratch(compiler::SeedLoweringCache &cache,
                              const ubgen::UBProgram &ub,
                              compiler::CompileStats *stats = nullptr)
{
    ast::PrintedProgram printed = ast::printProgram(*ub.program);
    ir::Module inc = cache.lowerDerived(*ub.program, printed,
                                        ub.perturbedFnId, stats);
    ir::Module scratch = ir::lowerProgram(*ub.program, printed.map);
    EXPECT_EQ(ir::executionKey(inc), ir::executionKey(scratch))
        << "kind=" << ubgen::ubKindName(ub.kind)
        << " site=" << ub.siteId << " shadow: " << ub.shadowDesc;
    EXPECT_EQ(ir::verifyModule(inc), "");
    return inc;
}

TEST(IncrementalLowering, MatchesScratchForEveryUBKind)
{
    bool covered[ubgen::kNumUBKinds] = {};
    size_t checked = 0;
    compiler::CompileStats stats;
    // Walk seeds until the gallery covered every kind at least once
    // (the generator reliably reaches all nine within a few seeds).
    for (uint64_t s = 1; s <= 30; s++) {
        auto seed = makeSeed(s);
        ubgen::UBGenerator ubg(*seed);
        if (!ubg.profiled())
            continue;
        Rng rng(s * 71);
        auto programs = ubg.generateAll(rng, 2);
        if (programs.empty())
            continue;
        compiler::SeedLoweringCache cache(*seed, &stats);
        for (const auto &ub : programs) {
            checkIncrementalEqualsScratch(cache, ub, &stats);
            covered[static_cast<size_t>(ub.kind)] = true;
            checked++;
        }
        bool all = true;
        for (UBKind k : ubgen::kAllUBKinds)
            all = all && covered[static_cast<size_t>(k)];
        if (all && s >= 8)
            break;
    }
    for (UBKind k : ubgen::kAllUBKinds)
        EXPECT_TRUE(covered[static_cast<size_t>(k)])
            << "gallery never produced " << ubgen::ubKindName(k);
    EXPECT_GT(checked, 50u);
    // The derived programs overwhelmingly lower incrementally; the
    // occasional unprovable perturbation falls back, it never fails.
    EXPECT_GT(stats.deltaLowerings, stats.deltaFallbacks);
    EXPECT_EQ(stats.deltaLowerings + stats.deltaFallbacks, checked);
}

TEST(IncrementalLowering, NestedScopeBlocksRestoreTheLocationCursor)
{
    // Regression: a replayed scope Block must leave the location
    // cursor where a scratch lowering would — at its *last inner
    // statement's* loc, not its own '{' loc (blocks never setLoc
    // themselves; an empty block must not move the cursor at all).
    // The next loc-inheriting emission (the branch closing an
    // enclosing if) bakes the cursor into the module, so getting this
    // wrong used to break executionKey equality. Seed 119's
    // use-after-free programs hit exactly this shape: a then-block
    // whose only statement is `{ { decls... } decl; }`.
    auto seed = makeSeed(119);
    ubgen::UBGenerator ubg(*seed);
    ASSERT_TRUE(ubg.profiled());
    Rng rng(119 * 71);
    auto programs = ubg.generateAll(rng, 4);
    ASSERT_FALSE(programs.empty());
    compiler::SeedLoweringCache cache(*seed);
    bool sawUaf = false;
    for (const auto &ub : programs) {
        checkIncrementalEqualsScratch(cache, ub);
        sawUaf |= ub.kind == UBKind::UseAfterFree;
    }
    EXPECT_TRUE(sawUaf);
}

TEST(IncrementalLowering, UnknownSiteFallsBackToFullLowering)
{
    auto seed = makeSeed(3);
    ubgen::UBGenerator ubg(*seed);
    ASSERT_TRUE(ubg.profiled());
    Rng rng(7);
    auto programs = ubg.generateAll(rng, 1);
    ASSERT_FALSE(programs.empty());

    compiler::CompileStats stats;
    compiler::SeedLoweringCache cache(*seed, &stats);
    EXPECT_EQ(stats.lowerings, 1u); // the seed base

    ubgen::UBProgram ub = std::move(programs.front());
    ub.perturbedFnId = 0; // simulate a generator without the handle
    checkIncrementalEqualsScratch(cache, ub, &stats);
    EXPECT_EQ(stats.deltaFallbacks, 1u);
    EXPECT_EQ(stats.deltaLowerings, 0u);
    EXPECT_EQ(stats.lowerings, 2u); // base + the fallback
}

TEST(IncrementalLowering, WrongHandleIsCaughtByTheFingerprint)
{
    // A multi-function seed whose UB programs perturb specific
    // functions: lie about which one was perturbed. The splice proof
    // (AST fingerprint + location deltas) must catch the really
    // perturbed function and re-lower it, keeping the module exactly
    // equal to a scratch lowering — a deliberately adversarial stand-in
    // for "multi-site or non-splicable perturbations".
    for (uint64_t s = 1; s <= 12; s++) {
        auto seed = makeSeed(s);
        if (seed->functions().size() < 2)
            continue;
        ubgen::UBGenerator ubg(*seed);
        if (!ubg.profiled())
            continue;
        Rng rng(13);
        auto programs = ubg.generateAll(rng, 1);
        if (programs.empty())
            continue;
        compiler::SeedLoweringCache cache(*seed);
        size_t lied = 0;
        for (auto &ub : programs) {
            // Point the handle at a different function than the real
            // one (any other function's decl id).
            for (const ast::FunctionDecl *f : ub.program->functions()) {
                if (f->nodeId() != ub.perturbedFnId) {
                    ub.perturbedFnId = f->nodeId();
                    lied++;
                    break;
                }
            }
            checkIncrementalEqualsScratch(cache, ub);
        }
        ASSERT_GT(lied, 0u);
        return; // one qualifying seed is enough
    }
    GTEST_SKIP() << "no multi-function seed in range";
}

TEST(IncrementalLowering, HandMutatedCloneStaysExact)
{
    // Beyond ubgen's own repertoire: clone a seed, append a global and
    // perturb nothing else — every function must splice, and the
    // result must equal scratch.
    auto seed = makeSeed(5);
    ast::ClonedProgram clone = ast::cloneProgram(*seed);
    ast::Program &p = *clone.program;
    ast::ExprBuilder eb(p);
    auto *aux = p.ctx().make<ast::VarDecl>(
        "extra_global", p.types().s32(), ast::Storage::Global,
        eb.lit(0, ast::ScalarKind::S32));
    p.globals().push_back(aux);

    compiler::SeedLoweringCache cache(*seed);
    ast::PrintedProgram printed = ast::printProgram(p);
    ir::IncrementalStats inc;
    ir::LoweringInfo emptyInfo; // no provenance at all
    ir::Module m = ir::lowerProgramIncremental(
        p, printed.map, cache.baseModule(), emptyInfo,
        cache.basePrinted().map, /*perturbedFnId=*/0, &inc);
    // With empty provenance nothing can splice — but the module must
    // still be exactly right (the incremental path degrades to a full
    // lowering, never to a wrong module).
    ir::Module scratch = ir::lowerProgram(p, printed.map);
    EXPECT_EQ(ir::executionKey(m), ir::executionKey(scratch));
    EXPECT_EQ(inc.splicedFunctions, 0u);
}

TEST(IncrementalLowering, FingerprintRangesSurviveMemcpyClones)
{
    // The splice proof's structural half is now a hash over an arena
    // slot range. A memcpy clone preserves indices and slot bytes, so
    // every recorded function fingerprint must match on the clone by
    // pure range re-hash; an in-place perturbation inside one function
    // must break exactly that function's fingerprint.
    auto seed = makeSeed(9);
    ASSERT_GE(seed->functions().size(), 1u);
    ast::PrintedProgram printed = ast::printProgram(*seed);
    ir::LoweringInfo info;
    ir::lowerProgram(*seed, printed.map, &info);
    ASSERT_EQ(info.functions.size(), seed->functions().size());

    ast::ClonedProgram clone = ast::cloneProgram(*seed);
    ast::Program &p = *clone.program;
    for (size_t i = 0; i < p.functions().size(); i++)
        EXPECT_TRUE(info.functions[i].astFingerprint.matches(
            p.ctx(), p.functions()[i]))
            << "function " << i << " fails on an untouched clone";

    // Perturb the last function in place: appending to its body block
    // rewrites the block slot's list range, which lies inside the
    // recorded span.
    size_t victim = p.functions().size() - 1;
    ast::Block *body = p.functions()[victim]->body();
    ASSERT_NE(body, nullptr);
    body->append(p.ctx().make<ast::ReturnStmt>(nullptr));
    for (size_t i = 0; i < p.functions().size(); i++)
        EXPECT_EQ(info.functions[i].astFingerprint.matches(
                      p.ctx(), p.functions()[i]),
                  i != victim);

    // The original seed still matches everywhere — fingerprints proved
    // something about the clone, not the source.
    for (size_t i = 0; i < seed->functions().size(); i++)
        EXPECT_TRUE(info.functions[i].astFingerprint.matches(
            seed->ctx(), seed->functions()[i]));
}

TEST(IncrementalLowering, ProvenanceSplicesWholeUnperturbedClone)
{
    // An untouched clone printed identically: every function splices
    // whole, no statement is re-lowered, and the module is identical.
    auto seed = makeSeed(6);
    ast::ClonedProgram clone = ast::cloneProgram(*seed);

    ast::PrintedProgram basePrinted = ast::printProgram(*seed);
    ir::LoweringInfo info;
    ir::Module base = ir::lowerProgram(*seed, basePrinted.map, &info);

    ast::PrintedProgram printed = ast::printProgram(*clone.program);
    ir::IncrementalStats inc;
    ir::Module m = ir::lowerProgramIncremental(
        *clone.program, printed.map, base, info, basePrinted.map,
        /*perturbedFnId=*/0, &inc);
    ir::Module scratch = ir::lowerProgram(*clone.program, printed.map);
    EXPECT_EQ(ir::executionKey(m), ir::executionKey(scratch));
    EXPECT_EQ(inc.splicedFunctions, seed->functions().size());
    EXPECT_EQ(inc.reloweredFunctions, 0u);
}

} // namespace
} // namespace ubfuzz
