/**
 * @file
 * Injected-bug catalog tests: metadata invariants over all 30 entries
 * (parameterized), plus mechanism regression tests for defects with
 * intricate trigger patterns — each one compiles a crafted program on
 * the buggy configuration, asserts the miss + firing, and confirms a
 * bug-free version still reports.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "sanitizer/bug_catalog.h"
#include "vm/vm.h"

namespace ubfuzz::san {
namespace {

class CatalogSweep : public ::testing::TestWithParam<int>
{};

TEST_P(CatalogSweep, MetadataInvariants)
{
    const BugInfo &b = bugCatalog()[static_cast<size_t>(GetParam())];
    EXPECT_EQ(static_cast<int>(b.id), GetParam());
    // The vendor must ship the sanitizer the bug lives in.
    EXPECT_TRUE(vendorSupports(b.vendor, b.sanitizer));
    // Introduced in some simulated release window.
    EXPECT_GE(b.introducedVersion, firstStableVersion(b.vendor));
    EXPECT_LE(b.introducedVersion, trunkVersion(b.vendor));
    // Level window is well-formed and active on trunk somewhere.
    EXPECT_TRUE(optAtLeast(b.maxLevel, b.minLevel));
    bool active_somewhere = false;
    for (OptLevel l : kAllOptLevels) {
        active_somewhere |=
            ActiveBugs(b.vendor, trunkVersion(b.vendor), l)
                .active(b.id);
    }
    EXPECT_TRUE(active_somewhere) << b.name;
    // Fixed bugs were confirmed first, as in the paper's process.
    if (b.fixedAfterReport)
        EXPECT_TRUE(b.confirmed) << b.name;
    EXPECT_NE(b.name, nullptr);
    EXPECT_NE(b.description, nullptr);
}

INSTANTIATE_TEST_SUITE_P(AllBugs, CatalogSweep,
                         ::testing::Range(0,
                                          static_cast<int>(kNumBugs)));

//===--------------------------------------------------------------===//
// Mechanism regressions
//===--------------------------------------------------------------===//

struct Mechanism
{
    const char *name;
    BugId bug;
    const char *source;
    Vendor vendor;
    OptLevel level;
    SanitizerKind sanitizer;
};

class MechanismTest : public ::testing::TestWithParam<Mechanism>
{};

TEST_P(MechanismTest, BuggyMissesCleanReports)
{
    const Mechanism &m = GetParam();
    auto prog = frontend::parseOrDie(m.source);
    ast::PrintedProgram printed = ast::printProgram(*prog);

    // Buggy (trunk) configuration: no report, defect fired.
    compiler::CompilerConfig buggy{m.vendor, 0, m.level, m.sanitizer};
    auto bin = compiler::compile(*prog, printed, buggy);
    vm::ExecResult r = vm::execute(bin.module);
    EXPECT_NE(r.kind, vm::ExecResult::Kind::Report)
        << m.name << ": " << r.str();
    bool fired = false;
    for (const auto &f : bin.log.firings)
        fired |= f.id == m.bug;
    EXPECT_TRUE(fired) << m.name;

    // Pre-introduction version: same level, UB reported.
    compiler::CompilerConfig clean = buggy;
    clean.version = 1;
    auto clean_bin = compiler::compile(*prog, printed, clean);
    vm::ExecResult rc = vm::execute(clean_bin.module);
    EXPECT_EQ(rc.kind, vm::ExecResult::Kind::Report)
        << m.name << ": " << rc.str();
}

const Mechanism kMechanisms[] = {
    {"struct_copy", BugId::GccAsanStructCopyNoCheck,
     R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    k = 2;
    *c = *(d + k);
    return c->x;
}
)",
     Vendor::GCC, OptLevel::O2, SanitizerKind::ASan},
    {"global_ptr_store", BugId::GccAsanGlobalPtrStoreNoCheck,
     R"(int g;
int *ptr = &g;
int buf[3] = {1, 2, 3};
int **p_ptr = &ptr;
int main(void) {
    *ptr = 1;
    *p_ptr = &buf[2];
    *ptr = 4095;
    ptr = &buf[0];
    ptr = ptr + 4;
    *ptr = 7;
    return 0;
}
)",
     Vendor::GCC, OptLevel::O1, SanitizerKind::ASan},
    {"dup_across_free", BugId::GccAsanSanOptDupAcrossFree,
     R"(int main(void) {
    int *hp = (int*)__malloc(8l);
    hp[0] = 1;
    int a = *hp;
    __free((char*)hp);
    int b = *hp;
    return a + b;
}
)",
     Vendor::GCC, OptLevel::O1, SanitizerKind::ASan},
    {"rem_no_check", BugId::LlvmUbsanRemNoCheck,
     R"(int z = 0;
int main(void) {
    return 9 % z;
}
)",
     Vendor::LLVM, OptLevel::O1, SanitizerKind::UBSan},
    {"shift_neg_only", BugId::LlvmUbsanShiftNegOnly,
     R"(int n = 40;
int main(void) {
    return 1 << n;
}
)",
     Vendor::LLVM, OptLevel::O2, SanitizerKind::UBSan},
    {"mul_as_add", BugId::LlvmUbsanMulAsAdd,
     R"(int a = 100000;
int b = 100000;
int main(void) {
    return (a * b) != 0;
}
)",
     Vendor::LLVM, OptLevel::Os, SanitizerKind::UBSan},
    {"store_merged_arith", BugId::LlvmUbsanStoreMergedArithSkipped,
     R"(int g = 0;
int x = 2147483000;
int y = 2147483000;
int main(void) {
    g = x + y;
    __checksum((long)g);
    return 0;
}
)",
     Vendor::LLVM, OptLevel::O2, SanitizerKind::UBSan},
    {"small_array_bounds", BugId::LlvmUbsanSmallArrayBoundsSkipped,
     R"(int i = 4;
int main(void) {
    int a[3] = {1, 2, 3};
    int r = a[i];
    __checksum((long)r);
    return 0;
}
)",
     Vendor::LLVM, OptLevel::O1, SanitizerKind::UBSan},
    {"msan_sub_defined", BugId::LlvmMsanSubConstDefined,
     R"(int main(void) {
    int a;
    if (a - 1) {
        return 1;
    }
    return 0;
}
)",
     Vendor::LLVM, OptLevel::O1, SanitizerKind::MSan},
};

INSTANTIATE_TEST_SUITE_P(
    Regressions, MechanismTest, ::testing::ValuesIn(kMechanisms),
    [](const ::testing::TestParamInfo<Mechanism> &info) {
        return std::string(info.param.name);
    });

/** The version gates make Figure 10 monotone: once introduced, a bug
 *  stays active through trunk at its levels. */
TEST(Catalog, ActivityIsMonotoneInVersion)
{
    for (const BugInfo &b : bugCatalog()) {
        bool seen = false;
        for (int v = firstStableVersion(b.vendor);
             v <= trunkVersion(b.vendor); v++) {
            bool active =
                ActiveBugs(b.vendor, v, b.minLevel).active(b.id);
            if (seen)
                EXPECT_TRUE(active) << b.name << " v" << v;
            seen |= active;
        }
        EXPECT_TRUE(seen) << b.name;
    }
}

} // namespace
} // namespace ubfuzz::san
