/**
 * @file
 * Support-layer tests: RNG determinism, coverage registry semantics,
 * toolchain metadata, and the test-case reducer.
 */

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "frontend/parser.h"
#include "fuzzer/fuzzer.h"
#include "harden/harden.h"
#include "reduce/reducer.h"
#include "support/coverage.h"
#include "support/parse_num.h"
#include "support/rng.h"
#include "support/toolchain.h"

namespace ubfuzz {
namespace {

TEST(ParseNum, AcceptsPlainDecimals)
{
    EXPECT_EQ(support::parseInt64("0"), 0);
    EXPECT_EQ(support::parseInt64("42"), 42);
    EXPECT_EQ(support::parseInt64("-7"), -7);
    EXPECT_EQ(support::parseInt64("9223372036854775807"), INT64_MAX);
    EXPECT_EQ(support::parseInt64("-9223372036854775808"), INT64_MIN);
    EXPECT_EQ(support::parseUint64("18446744073709551615"), UINT64_MAX);
    EXPECT_EQ(support::parseInt("123"), 123);
}

TEST(ParseNum, RejectsGarbageAndTrailingJunk)
{
    for (const char *bad :
         {"", "-", "4O0", "1e3", "12 ", " 12", "+5", "0x10", "--3",
          "12abc", "1.5"}) {
        EXPECT_EQ(support::parseInt64(bad), std::nullopt) << bad;
        EXPECT_EQ(support::parseUint64(bad), std::nullopt) << bad;
    }
    // Unsigned additionally rejects negatives instead of wrapping the
    // way raw strtoull does ("-4" -> 18446744073709551612).
    EXPECT_EQ(support::parseUint64("-4"), std::nullopt);
}

TEST(ParseNum, RejectsOverflowInsteadOfClamping)
{
    // Raw strtol clamps these with errno=ERANGE; the strict parser
    // must refuse them ("9e30"-sized inputs used to pass validation).
    const char *huge = "9000000000000000000000000000000";
    EXPECT_EQ(support::parseInt64(huge), std::nullopt);
    EXPECT_EQ(support::parseUint64(huge), std::nullopt);
    EXPECT_EQ(support::parseInt64("-9000000000000000000000000000000"),
              std::nullopt);
    EXPECT_EQ(support::parseInt64("9223372036854775808"), std::nullopt);
    EXPECT_EQ(support::parseUint64("18446744073709551616"), std::nullopt);
    // And out-of-int values are rejected by the int window, not
    // truncated through a cast ("--seeds 99999999999").
    EXPECT_EQ(support::parseInt("99999999999"), std::nullopt);
}

TEST(ParseNum, EnforcesInclusiveWindows)
{
    EXPECT_EQ(support::parseInt64("5", 5, 10), 5);
    EXPECT_EQ(support::parseInt64("10", 5, 10), 10);
    EXPECT_EQ(support::parseInt64("4", 5, 10), std::nullopt);
    EXPECT_EQ(support::parseInt64("11", 5, 10), std::nullopt);
    // The campaign's flag policies: --jobs >= 0, seed counts >= 1.
    EXPECT_EQ(support::parseInt("-4", 0), std::nullopt);
    EXPECT_EQ(support::parseInt("0", 0), 0);
    EXPECT_EQ(support::parseInt("0", 1), std::nullopt);
    EXPECT_EQ(support::parseUint64("0", 1), std::nullopt);
}

TEST(ParseHarden, AcceptsExactFamilyLists)
{
    // --harden-passes takes a strict comma list of known families.
    EXPECT_EQ(harden::parseMask("dup"), harden::kDuplicateCompare);
    EXPECT_EQ(harden::parseMask("sig"), harden::kCfgSignature);
    EXPECT_EQ(harden::parseMask("dup,sig"), harden::kAllFamilies);
    EXPECT_EQ(harden::parseMask("sig,dup"), harden::kAllFamilies);
    // maskStr renders canonical names parseMask accepts back.
    EXPECT_EQ(harden::maskStr(harden::kAllFamilies), "dup,sig");
    EXPECT_EQ(harden::parseMask(harden::maskStr(harden::kCfgSignature)),
              harden::kCfgSignature);
}

TEST(ParseHarden, RejectsEmptyDuplicateAndJunkLists)
{
    for (const char *bad :
         {"", "dup,dup", "sig,sig", "dup,", ",sig", "dup,,sig", "bogus",
          "dup,sig,x", "DUP", "dup sig", "dup;sig", "all"})
        EXPECT_EQ(harden::parseMask(bad), std::nullopt) << bad;
}

TEST(ParseSourceMode, AcceptsExactModeNames)
{
    using fuzzer::SourceMode;
    EXPECT_EQ(fuzzer::parseSourceMode("ubfuzz"), SourceMode::UBFuzz);
    EXPECT_EQ(fuzzer::parseSourceMode("music"), SourceMode::Music);
    EXPECT_EQ(fuzzer::parseSourceMode("nosafe"),
              SourceMode::CsmithNoSafe);
    EXPECT_EQ(fuzzer::parseSourceMode("juliet"), SourceMode::Juliet);
    EXPECT_EQ(fuzzer::parseSourceMode("harden"), SourceMode::Harden);
}

TEST(ParseSourceMode, RejectsUnknownPrefixAndCaseVariants)
{
    for (const char *bad : {"", "hardened", "harden ", " harden",
                            "Harden", "ub", "ubfuzz,music", "default"})
        EXPECT_EQ(fuzzer::parseSourceMode(bad), std::nullopt) << bad;
}

TEST(ParseShard, AcceptsOneBasedSlices)
{
    EXPECT_EQ(support::parseShard("1/1"), std::make_pair(1, 1));
    EXPECT_EQ(support::parseShard("2/4"), std::make_pair(2, 4));
    EXPECT_EQ(support::parseShard("4/4"), std::make_pair(4, 4));
    EXPECT_EQ(support::parseShard("10/128"), std::make_pair(10, 128));
}

TEST(ParseShard, RejectsMalformedSlices)
{
    // Shards are 1-based and the index must fit the count; everything
    // that is not exactly "i/N" with 1 <= i <= N is a usage error.
    for (const char *bad :
         {"0/4", "5/4", "2/0", "0/0", "-1/4", "2/-4", "2/", "/4", "/",
          "", "2", "2/4/8", "2x4", "a/4", "2/b", "2 /4", "2/ 4",
          "+2/4", "99999999999/4", "2/99999999999"}) {
        EXPECT_EQ(support::parseShard(bad), std::nullopt) << bad;
    }
}

TEST(ParseSupervisionFlags, UnitTimeoutAndRetriesWindows)
{
    // --unit-timeout: any uint64 >= 1 ms, same strict grammar as the
    // other numeric flags (no sign, no suffix, no embedded junk).
    EXPECT_EQ(support::parseUint64("1", 1), 1u);
    EXPECT_EQ(support::parseUint64("250", 1), 250u);
    EXPECT_EQ(support::parseUint64("86400000", 1), 86400000u);
    for (const char *bad : {"0", "", "-1", "+5", "5s0", "5s", "s5",
                            "5 ", " 5", "5.0", "0x10", "1e3",
                            "99999999999999999999"})
        EXPECT_EQ(support::parseUint64(bad, 1), std::nullopt) << bad;

    // --retries: any int >= 0 (0 = quarantine on the first failure).
    EXPECT_EQ(support::parseInt("0", 0), 0);
    EXPECT_EQ(support::parseInt("2", 0), 2);
    EXPECT_EQ(support::parseInt("100", 0), 100);
    for (const char *bad :
         {"-1", "", "2x", "x2", "2 ", " 2", "+2", "99999999999"})
        EXPECT_EQ(support::parseInt(bad, 0), std::nullopt) << bad;
}

TEST(ParseFailureInjection, AcceptsTheThreeKinds)
{
    using FI = fuzzer::FailureInjection;
    auto crash = fuzzer::parseFailureInjection("crash:7:2");
    ASSERT_TRUE(crash.has_value());
    EXPECT_EQ(crash->kind, FI::Kind::Crash);
    EXPECT_EQ(crash->unit, 7);
    EXPECT_EQ(crash->attempts, 2);

    auto hang = fuzzer::parseFailureInjection("hang:0:-1");
    ASSERT_TRUE(hang.has_value());
    EXPECT_EQ(hang->kind, FI::Kind::Hang);
    EXPECT_EQ(hang->unit, 0);
    EXPECT_EQ(hang->attempts, -1); // every attempt

    auto torn = fuzzer::parseFailureInjection("torn:3:1:17");
    ASSERT_TRUE(torn.has_value());
    EXPECT_EQ(torn->kind, FI::Kind::TornPipe);
    EXPECT_EQ(torn->unit, 3);
    EXPECT_EQ(torn->attempts, 1);
    EXPECT_EQ(torn->tornBytes, 17u);

    // firesOn: the chosen unit's first `attempts` attempts, all of
    // them for -1.
    EXPECT_TRUE(crash->firesOn(7, 0));
    EXPECT_TRUE(crash->firesOn(7, 1));
    EXPECT_FALSE(crash->firesOn(7, 2));
    EXPECT_FALSE(crash->firesOn(6, 0));
    EXPECT_TRUE(hang->firesOn(0, 999));
    EXPECT_FALSE(FI{}.firesOn(0, 0)); // Kind::None never fires
}

TEST(ParseFailureInjection, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"", "crash", "crash:", "crash:7", "crash:7:", "crash:7:0",
          "crash:-1:1", "crash:7:2:9", "torn:3:1", "torn:3:1:",
          "torn:3:1:-1", "torn:3:1:9:9", "hang:0:2x", "hang:x:1",
          "boom:7:1", "Crash:7:1", "crash:7:1 ", " crash:7:1",
          "crash::1", "crash:7:+1"}) {
        EXPECT_EQ(fuzzer::parseFailureInjection(bad), std::nullopt)
            << bad;
    }
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        ASSERT_EQ(a.next(), b.next());
    Rng r(7);
    for (int i = 0; i < 1000; i++) {
        EXPECT_LT(r.below(13), 13u);
        int64_t v = r.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
    Rng c(42);
    Rng child = c.fork();
    EXPECT_NE(child.next(), Rng(42).next());
}

UBF_COV_DECLARE(testLine, "test.support.line");
UBF_COV_DECLARE_FUNC(testFunc, "test.support.func");
UBF_COV_DECLARE_BRANCH(testBranch, "test.support.branch");

TEST(Coverage, RegistryCountsSitesAndHits)
{
    auto &reg = CoverageRegistry::instance();
    reg.resetHits();
    CovReport before = reg.report("test.support.");
    EXPECT_EQ(before.lineTotal, 2u); // line + func-as-line
    EXPECT_EQ(before.funcTotal, 1u);
    EXPECT_EQ(before.branchTotal, 2u);
    EXPECT_EQ(before.lineHit, 0u);

    UBF_COV_HIT(testLine);
    UBF_COV_HIT(testFunc);
    UBF_COV_BRANCH(testBranch, true);
    CovReport mid = reg.report("test.support.");
    EXPECT_EQ(mid.lineHit, 2u);
    EXPECT_EQ(mid.funcHit, 1u);
    EXPECT_EQ(mid.branchHit, 1u);

    UBF_COV_BRANCH(testBranch, false);
    CovReport after = reg.report("test.support.");
    EXPECT_EQ(after.branchHit, 2u);
    EXPECT_DOUBLE_EQ(after.branchPct(), 100.0);
}

TEST(Toolchain, VersionsAndSupport)
{
    EXPECT_TRUE(vendorSupports(Vendor::LLVM, SanitizerKind::MSan));
    EXPECT_FALSE(vendorSupports(Vendor::GCC, SanitizerKind::MSan));
    EXPECT_EQ(trunkVersion(Vendor::GCC), 14);
    EXPECT_EQ(trunkVersion(Vendor::LLVM), 18);
    EXPECT_TRUE(optAtLeast(OptLevel::O2, OptLevel::Os));
    EXPECT_FALSE(optAtLeast(OptLevel::O1, OptLevel::Os));
}

TEST(Reducer, ShrinksWhilePreservingPredicate)
{
    auto prog = frontend::parseOrDie(R"(int g = 3;
int unused_global = 9;
int helper(int x) {
    return x * 2;
}
int main(void) {
    int a = 1;
    int b = 2;
    g = a + b;
    g = helper(g);
    g = 7;
    __checksum((long)g);
    return g;
}
)");
    // Predicate: main still ends with g == 7 (the final assignment).
    auto predicate = [](const ast::Program &p) {
        std::string text = ast::programText(p);
        return text.find("g = 7;") != std::string::npos &&
               text.find("return g;") != std::string::npos;
    };
    ASSERT_TRUE(predicate(*prog));
    reduce::ReduceStats stats;
    auto reduced = reduce::reduceProgram(*prog, predicate, &stats);
    EXPECT_TRUE(predicate(*reduced));
    EXPECT_GT(stats.statementsRemoved, 0);
    std::string text = ast::programText(*reduced);
    // The unused global and the helper are gone.
    EXPECT_EQ(text.find("unused_global"), std::string::npos);
    EXPECT_EQ(text.find("helper"), std::string::npos);
    EXPECT_LT(text.size(), ast::programText(*prog).size());
}

TEST(Reducer, NeverBreaksValidity)
{
    auto prog = frontend::parseOrDie(R"(int a[3] = {1, 2, 3};
int main(void) {
    int x = a[0];
    int y = x + a[1];
    __checksum((long)y);
    return y;
}
)");
    auto predicate = [](const ast::Program &p) {
        // Any candidate must still round-trip through the parser.
        auto r = frontend::parseProgram(ast::programText(p));
        return r.ok();
    };
    auto reduced = reduce::reduceProgram(*prog, predicate);
    EXPECT_TRUE(predicate(*reduced));
}

} // namespace
} // namespace ubfuzz
