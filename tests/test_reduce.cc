/**
 * @file
 * Reducer and MUSIC-mutator tests: reduction keeps the original
 * finding alive and shrinks the program deterministically; MUSIC
 * mutants are a pure function of (seed program, RNG stream).
 */

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "frontend/parser.h"
#include "generator/generator.h"
#include "ir/lowering.h"
#include "mutation/music.h"
#include "reduce/reducer.h"
#include "support/rng.h"
#include "vm/vm.h"

namespace ubfuzz {
namespace {

/** Ground-truth execution (the classifier the campaign uses). */
vm::ExecResult
groundTruth(const ast::Program &p)
{
    ast::PrintedProgram printed = ast::printProgram(p);
    ir::Module mod = ir::lowerProgram(p, printed.map);
    vm::ExecOptions opts;
    opts.groundTruth = true;
    opts.stepLimit = 1'000'000;
    return vm::execute(mod, opts);
}

/** An OOB write padded with statements and globals the UB does not
 *  depend on — exactly what a reducer must strip. */
const char *kPaddedUBSrc = R"(int junk_global[8];
int other_junk = 5;
int keep[2];
int helper(int v) {
    return v * 2 + 1;
}
int main(void) {
    int a = 1;
    int b = 2;
    junk_global[0] = a + b;
    junk_global[1] = helper(junk_global[0]);
    other_junk = junk_global[1] - a;
    int i = 2;
    keep[i] = 7;
    return 0;
}
)";

TEST(Reducer, ReducedProgramStillTriggersOriginalFinding)
{
    auto prog = frontend::parseOrDie(kPaddedUBSrc);
    vm::ExecResult original = groundTruth(*prog);
    ASSERT_EQ(original.kind, vm::ExecResult::Kind::Report)
        << original.str();

    reduce::Predicate interesting = [&](const ast::Program &p) {
        vm::ExecResult r = groundTruth(p);
        return r.kind == vm::ExecResult::Kind::Report &&
               r.report == original.report;
    };
    reduce::ReduceStats stats;
    auto reduced = reduce::reduceProgram(*prog, interesting, &stats);

    // The finding survived reduction...
    vm::ExecResult after = groundTruth(*reduced);
    ASSERT_EQ(after.kind, vm::ExecResult::Kind::Report);
    EXPECT_EQ(after.report, original.report);

    // ...and the padding did not: the junk statements, the dead
    // helper, and the dead globals are all gone.
    std::string text = ast::programText(*reduced);
    EXPECT_LT(text.size(), ast::programText(*prog).size());
    EXPECT_EQ(text.find("junk_global"), std::string::npos) << text;
    EXPECT_EQ(text.find("other_junk"), std::string::npos) << text;
    EXPECT_EQ(text.find("helper"), std::string::npos) << text;
    EXPECT_NE(text.find("keep[i]"), std::string::npos) << text;
    EXPECT_GT(stats.statementsRemoved, 0);
    EXPECT_GT(stats.globalsRemoved, 0);
    EXPECT_GT(stats.functionsRemoved, 0);
    EXPECT_GT(stats.predicateRuns, 0);
}

TEST(Reducer, ReductionIsDeterministic)
{
    auto prog = frontend::parseOrDie(kPaddedUBSrc);
    vm::ExecResult original = groundTruth(*prog);
    ASSERT_EQ(original.kind, vm::ExecResult::Kind::Report);
    reduce::Predicate interesting = [&](const ast::Program &p) {
        vm::ExecResult r = groundTruth(p);
        return r.kind == vm::ExecResult::Kind::Report &&
               r.report == original.report;
    };

    reduce::ReduceStats s1, s2;
    auto r1 = reduce::reduceProgram(*prog, interesting, &s1);
    auto r2 = reduce::reduceProgram(*prog, interesting, &s2);
    EXPECT_EQ(ast::programText(*r1), ast::programText(*r2));
    EXPECT_EQ(s1.statementsRemoved, s2.statementsRemoved);
    EXPECT_EQ(s1.globalsRemoved, s2.globalsRemoved);
    EXPECT_EQ(s1.functionsRemoved, s2.functionsRemoved);
    EXPECT_EQ(s1.predicateRuns, s2.predicateRuns);
}

TEST(Reducer, UninterestingDeletionsAreRolledBack)
{
    // A predicate pinned to the exact report kind must keep the
    // statements the UB depends on: reduce to (almost) nothing but the
    // triggering write.
    auto prog = frontend::parseOrDie(R"(int keep[2];
int main(void) {
    int i = 2;
    keep[i] = 7;
    return 0;
}
)");
    vm::ExecResult original = groundTruth(*prog);
    ASSERT_EQ(original.kind, vm::ExecResult::Kind::Report);
    reduce::Predicate interesting = [&](const ast::Program &p) {
        vm::ExecResult r = groundTruth(p);
        return r.kind == vm::ExecResult::Kind::Report &&
               r.report == original.report;
    };
    auto reduced = reduce::reduceProgram(*prog, interesting);
    std::string text = ast::programText(*reduced);
    EXPECT_NE(text.find("keep[i] = 7"), std::string::npos) << text;
    vm::ExecResult after = groundTruth(*reduced);
    EXPECT_EQ(after.report, original.report);
}

TEST(Music, MutantSequenceIsDeterministicInRngStream)
{
    gen::GeneratorConfig gc;
    gc.seed = 77;
    auto seed = gen::generateProgram(gc);

    Rng r1(99), r2(99);
    for (int i = 0; i < 10; i++) {
        auto m1 = mutation::musicMutate(*seed, r1);
        auto m2 = mutation::musicMutate(*seed, r2);
        ASSERT_EQ(m1 == nullptr, m2 == nullptr) << "draw " << i;
        if (!m1)
            continue;
        EXPECT_EQ(ast::programText(*m1), ast::programText(*m2))
            << "draw " << i;
        // Mutation never touches the seed program itself.
        EXPECT_EQ(ast::programText(*seed),
                  ast::programText(*gen::generateProgram(gc)));
    }
}

TEST(Music, MutantClassificationIsDeterministic)
{
    // The Table 4 pipeline depends on (mutate -> classify) being a
    // pure function of the RNG stream: same stream, same verdicts.
    gen::GeneratorConfig gc;
    gc.seed = 21;
    auto seed = gen::generateProgram(gc);
    auto classify = [&](uint64_t rngSeed) {
        Rng rng(rngSeed);
        std::string verdicts;
        for (int i = 0; i < 8; i++) {
            auto m = mutation::musicMutate(*seed, rng);
            if (!m) {
                verdicts += "skip;";
                continue;
            }
            verdicts += groundTruth(*m).str() + ";";
        }
        return verdicts;
    };
    EXPECT_EQ(classify(5), classify(5));
    EXPECT_EQ(classify(123), classify(123));
}

} // namespace
} // namespace ubfuzz
