/**
 * @file
 * The supervised-execution contract (fuzzer/supervisor):
 *
 *  - the worker result frame round-trips exactly and decode rejects
 *    every truncation prefix, every single-byte corruption, trailing
 *    garbage, and another unit's frame;
 *  - a worker killed at *any* byte offset of its frame is classified
 *    as a crash, retried, and never folds a partial delta (the IPC
 *    mirror of test_store's torn-tail grid);
 *  - crash/hang injection retries deterministically, a deadline SIGKILL
 *    counts as a timeout, exhaustion quarantines, and a supervised
 *    crash-free unit is bit-identical to the in-process run;
 *  - a stop request aborts supervision (killing a hung live worker)
 *    without fabricating a result.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "fuzzer/supervisor.h"

namespace ubfuzz {
namespace {

using fuzzer::CampaignConfig;
using fuzzer::CampaignStats;
using fuzzer::CorpusMemo;
using fuzzer::FailureInjection;
using fuzzer::SuperviseOutcome;
using fuzzer::detail::UnitOutput;

/** A cheap deterministic unit body: grids over the retry/IPC machinery
 *  re-run the unit hundreds of times, so it must cost microseconds,
 *  not the milliseconds of a real campaign unit. */
UnitOutput
cheapUnit(const CampaignConfig &, int unit, CorpusMemo *)
{
    UnitOutput out;
    out.stats.seeds = 1;
    out.stats.ubPrograms = static_cast<size_t>(10 + unit);
    out.stats.exec.executions = 5;
    out.stats.exec.machinesBuilt = static_cast<size_t>(unit + 1);
    return out;
}

/** Same, plus corpus-memo contributions, for codec coverage. */
UnitOutput
cheapUnitWithMemo(const CampaignConfig &cfg, int unit, CorpusMemo *memo)
{
    UnitOutput out = cheapUnit(cfg, unit, memo);
    for (uint64_t i = 0; i < 2; i++) {
        fuzzer::CorpusKey key;
        key.textHash = 0xabc0 + i;
        key.textLen = 40 + i;
        key.ubLoc = {unit, static_cast<int>(i)};
        CampaignStats delta;
        delta.ubPrograms = 1 + i;
        out.memoAdds.emplace_back(
            key, std::make_shared<const CampaignStats>(delta));
    }
    return out;
}

void
expectSameOutput(const UnitOutput &a, const UnitOutput &b)
{
    EXPECT_EQ(a.stats, b.stats);
    ASSERT_EQ(a.memoAdds.size(), b.memoAdds.size());
    for (size_t i = 0; i < a.memoAdds.size(); i++) {
        EXPECT_EQ(a.memoAdds[i].first, b.memoAdds[i].first);
        EXPECT_EQ(*a.memoAdds[i].second, *b.memoAdds[i].second);
    }
}

CampaignConfig
tinyConfig()
{
    CampaignConfig cfg;
    cfg.seed = 9;
    cfg.numSeeds = 3;
    cfg.capPerKind = 2;
    return cfg;
}

TEST(UnitFrame, RoundTripsExactly)
{
    UnitOutput out = cheapUnitWithMemo(CampaignConfig{}, 5, nullptr);
    std::string frame = fuzzer::encodeUnitFrame(5, out);
    UnitOutput back;
    ASSERT_TRUE(fuzzer::decodeUnitFrame(frame, 5, back));
    expectSameOutput(back, out);
    // Another unit's complete, well-checksummed frame is still not
    // *this* unit's result.
    EXPECT_FALSE(fuzzer::decodeUnitFrame(frame, 4, back));
}

TEST(UnitFrame, EveryTruncationAndCorruptionIsRejected)
{
    UnitOutput out = cheapUnitWithMemo(CampaignConfig{}, 2, nullptr);
    const std::string frame = fuzzer::encodeUnitFrame(2, out);
    UnitOutput sink;
    for (size_t len = 0; len < frame.size(); len++) {
        EXPECT_FALSE(fuzzer::decodeUnitFrame(
            std::string_view(frame).substr(0, len), 2, sink))
            << "prefix of " << len << " bytes decoded as complete";
    }
    // Trailing garbage: a worker writes exactly one frame and exits,
    // so extra bytes mean a protocol bug, not a second result.
    EXPECT_FALSE(fuzzer::decodeUnitFrame(frame + "x", 2, sink));
    // Any single corrupted byte fails the length check or the
    // checksum — no flip may decode.
    for (size_t i = 0; i < frame.size(); i++) {
        std::string bad = frame;
        bad[i] = static_cast<char>(bad[i] ^ 0x20);
        EXPECT_FALSE(fuzzer::decodeUnitFrame(bad, 2, sink))
            << "flip at byte " << i << " decoded";
    }
}

TEST(Supervisor, CompletesACrashFreeUnit)
{
    CampaignConfig cfg = tinyConfig();
    SuperviseOutcome res =
        fuzzer::superviseUnit(cfg, 1, nullptr, nullptr, cheapUnit);
    EXPECT_EQ(res.kind, SuperviseOutcome::Kind::Completed);
    expectSameOutput(res.out, cheapUnit(cfg, 1, nullptr));
    EXPECT_EQ(res.workerCrashes, 0u);
    EXPECT_EQ(res.workerTimeouts, 0u);
    EXPECT_EQ(res.retried, 0u);
}

TEST(Supervisor, TornPipeAtEveryByteOffsetIsACrashThenRetries)
{
    // The IPC mirror of the store's torn-tail grid: kill the worker
    // after it wrote exactly K bytes of its frame, for every K. The
    // supervisor must classify each tear as a crash (never fold the
    // partial delta) and succeed on the retry, whose attempt index
    // the injection no longer matches.
    CampaignConfig cfg = tinyConfig();
    cfg.retries = 1;
    const UnitOutput expected = cheapUnit(cfg, 2, nullptr);
    const size_t frameSize = fuzzer::encodeUnitFrame(2, expected).size();
    for (size_t k = 0; k < frameSize; k++) {
        cfg.failureInjection =
            FailureInjection{FailureInjection::Kind::TornPipe, 2, 1, k};
        SuperviseOutcome res =
            fuzzer::superviseUnit(cfg, 2, nullptr, nullptr, cheapUnit);
        ASSERT_EQ(res.kind, SuperviseOutcome::Kind::Completed)
            << "torn at byte " << k;
        ASSERT_EQ(res.workerCrashes, 1u) << "torn at byte " << k;
        ASSERT_EQ(res.retried, 1u) << "torn at byte " << k;
        ASSERT_EQ(res.workerTimeouts, 0u) << "torn at byte " << k;
        expectSameOutput(res.out, expected);
    }
}

TEST(Supervisor, CrashInjectionRetriesThenSucceeds)
{
    CampaignConfig cfg = tinyConfig();
    cfg.retries = 3;
    cfg.failureInjection =
        FailureInjection{FailureInjection::Kind::Crash, 0, 2, 0};
    SuperviseOutcome res =
        fuzzer::superviseUnit(cfg, 0, nullptr, nullptr, cheapUnit);
    EXPECT_EQ(res.kind, SuperviseOutcome::Kind::Completed);
    EXPECT_EQ(res.workerCrashes, 2u);
    EXPECT_EQ(res.retried, 2u);
    expectSameOutput(res.out, cheapUnit(cfg, 0, nullptr));
}

TEST(Supervisor, HungWorkerIsKilledAtTheDeadline)
{
    CampaignConfig cfg = tinyConfig();
    cfg.retries = 2;
    cfg.unitTimeoutMs = 150;
    cfg.failureInjection =
        FailureInjection{FailureInjection::Kind::Hang, 1, 1, 0};
    SuperviseOutcome res =
        fuzzer::superviseUnit(cfg, 1, nullptr, nullptr, cheapUnit);
    EXPECT_EQ(res.kind, SuperviseOutcome::Kind::Completed);
    EXPECT_EQ(res.workerTimeouts, 1u);
    EXPECT_EQ(res.workerCrashes, 0u);
    EXPECT_EQ(res.retried, 1u);
    expectSameOutput(res.out, cheapUnit(cfg, 1, nullptr));
}

TEST(Supervisor, ExhaustedRetriesQuarantine)
{
    CampaignConfig cfg = tinyConfig();
    cfg.retries = 2;
    cfg.failureInjection =
        FailureInjection{FailureInjection::Kind::Crash, 1, -1, 0};
    SuperviseOutcome res =
        fuzzer::superviseUnit(cfg, 1, nullptr, nullptr, cheapUnit);
    EXPECT_EQ(res.kind, SuperviseOutcome::Kind::Quarantined);
    // Counter identity: every failed attempt is one crash or timeout;
    // quarantine means retries + the final attempt all failed.
    EXPECT_EQ(res.workerCrashes, 3u);
    EXPECT_EQ(res.retried, 2u);
    EXPECT_EQ(res.workerCrashes + res.workerTimeouts,
              res.retried + 1);
}

TEST(Supervisor, StopRequestAbortsBeforeRunning)
{
    CampaignConfig cfg = tinyConfig();
    std::atomic<bool> stop{true};
    SuperviseOutcome res =
        fuzzer::superviseUnit(cfg, 0, nullptr, &stop, cheapUnit);
    EXPECT_EQ(res.kind, SuperviseOutcome::Kind::Aborted);
    EXPECT_EQ(res.retried, 0u);
}

TEST(Supervisor, StopRequestKillsAHungLiveWorker)
{
    // No deadline at all: only the stop flag can end this hang, by
    // SIGKILLing the live worker — exactly what the CLI does for
    // SIGINT under --isolate.
    CampaignConfig cfg = tinyConfig();
    cfg.failureInjection =
        FailureInjection{FailureInjection::Kind::Hang, 0, -1, 0};
    std::atomic<bool> stop{false};
    std::thread flipper([&stop] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        stop.store(true);
    });
    SuperviseOutcome res =
        fuzzer::superviseUnit(cfg, 0, nullptr, &stop, cheapUnit);
    flipper.join();
    EXPECT_EQ(res.kind, SuperviseOutcome::Kind::Aborted);
}

TEST(Supervisor, SupervisedRealUnitMatchesInProcessRun)
{
    // The determinism anchor at unit granularity: a forked worker
    // computing a *real* campaign unit (default work fn) returns the
    // same stats delta and memo contributions as running it on this
    // thread — including after an injected crash forces a retry.
    CampaignConfig cfg = tinyConfig();
    CorpusMemo direct(cfg.corpusMemoCap);
    UnitOutput expected =
        fuzzer::detail::runCampaignUnitRecorded(cfg, 0, &direct);

    CorpusMemo supervised(cfg.corpusMemoCap);
    SuperviseOutcome clean =
        fuzzer::superviseUnit(cfg, 0, &supervised, nullptr, {});
    ASSERT_EQ(clean.kind, SuperviseOutcome::Kind::Completed);
    expectSameOutput(clean.out, expected);

    CorpusMemo retried(cfg.corpusMemoCap);
    cfg.failureInjection =
        FailureInjection{FailureInjection::Kind::Crash, 0, 1, 0};
    SuperviseOutcome after =
        fuzzer::superviseUnit(cfg, 0, &retried, nullptr, {});
    ASSERT_EQ(after.kind, SuperviseOutcome::Kind::Completed);
    EXPECT_EQ(after.workerCrashes, 1u);
    expectSameOutput(after.out, expected);
}

} // namespace
} // namespace ubfuzz
