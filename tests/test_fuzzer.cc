/**
 * @file
 * End-to-end campaign tests: UBfuzz finds injected sanitizer bugs
 * through differential testing + crash-site mapping; the baselines
 * (MUSIC, Csmith-NoSafe, Juliet) find none — the paper's headline
 * comparison (§4.2/§4.3).
 */

#include <gtest/gtest.h>

#include "fuzzer/fuzzer.h"
#include "mutation/music.h"
#include "corpus/juliet.h"
#include "ast/printer.h"
#include "ir/lowering.h"
#include "vm/vm.h"

namespace ubfuzz::fuzzer {
namespace {

TEST(Campaign, UBFuzzFindsInjectedBugs)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 12;
    cfg.capPerKind = 3;
    CampaignStats stats = runCampaign(cfg);

    EXPECT_GT(stats.ubPrograms, 30u);
    EXPECT_GT(stats.discrepantPrograms, 0u);
    EXPECT_GT(stats.selectedPairs, 0u);
    // The campaign pins real injected bugs.
    EXPECT_GE(stats.distinctBugsFound(), 3u);
    // Ground-truth precision of crash-site mapping is high.
    EXPECT_GT(stats.selectedTrueBug, stats.selectedOptimization);
}

TEST(Campaign, CompileOnceAccounting)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 8;
    cfg.capPerKind = 2;
    CampaignStats stats = runCampaign(cfg);

    // Seed-level compile cache: one full lowering per productive seed
    // (plus counted fallbacks); every derived UB program — tested or
    // non-triggering — lowers incrementally from its seed's base
    // module. Early opt stays shared across the whole sanitizer
    // matrix, and every debugger trace is a re-execution rather than
    // a recompile.
    EXPECT_EQ(stats.compile.lowerings,
              stats.productiveSeeds() + stats.compile.deltaFallbacks);
    EXPECT_EQ(stats.compile.deltaLowerings + stats.compile.deltaFallbacks,
              stats.ubPrograms + stats.nonTriggering);
    EXPECT_GT(stats.compile.deltaLowerings, 0u);
    EXPECT_LT(stats.compile.earlyOptRuns,
              stats.compile.specializations);
    EXPECT_GT(stats.compile.earlyOptCacheHits, 0u);
    EXPECT_GT(stats.compile.specializations, 0u);
    EXPECT_EQ(stats.unprofiledSeeds, 0u);
    EXPECT_EQ(stats.productiveSeeds(), stats.seeds);
}

TEST(KindOfReport, MapsEveryReportKindExplicitly)
{
    using R = vm::ReportKind;
    using K = ubgen::UBKind;
    EXPECT_EQ(kindOfReport(R::ArrayIndexOOB), K::BufferOverflowArray);
    EXPECT_EQ(kindOfReport(R::StackBufferOverflow),
              K::BufferOverflowPointer);
    EXPECT_EQ(kindOfReport(R::GlobalBufferOverflow),
              K::BufferOverflowPointer);
    EXPECT_EQ(kindOfReport(R::HeapBufferOverflow),
              K::BufferOverflowPointer);
    EXPECT_EQ(kindOfReport(R::HeapUseAfterFree), K::UseAfterFree);
    EXPECT_EQ(kindOfReport(R::StackUseAfterScope), K::UseAfterScope);
    EXPECT_EQ(kindOfReport(R::NullDeref), K::NullPtrDeref);
    EXPECT_EQ(kindOfReport(R::SignedIntegerOverflow),
              K::IntegerOverflow);
    EXPECT_EQ(kindOfReport(R::ShiftOutOfBounds), K::ShiftOverflow);
    EXPECT_EQ(kindOfReport(R::DivByZero), K::DivideByZero);
    // The one that used to fall through the default arm:
    EXPECT_EQ(kindOfReport(R::UninitValue), K::UseOfUninitMemory);
}

TEST(KindOfReportDeathTest, NoneIsNotAReport)
{
    // ReportKind::None used to be silently mislabeled as
    // use-of-uninitialized-memory; now it panics.
    EXPECT_DEATH_IF_SUPPORTED(kindOfReport(vm::ReportKind::None),
                              "not a sanitizer report");
}

TEST(Campaign, BatchedExecutionAccounting)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 8;
    cfg.capPerKind = 2;
    CampaignStats stats = runCampaign(cfg);

    // One machine per tested program (not one per execution), with
    // cheap resets in between: executions = machines + resets. A
    // corpus-replayed duplicate contributes a ubProgram but builds no
    // machine, and under jobs=1 every duplicate replays — so machines
    // track unique programs exactly.
    EXPECT_EQ(stats.exec.machinesBuilt + stats.exec.corpusSkips,
              stats.ubPrograms);
    EXPECT_EQ(stats.exec.machinesBuilt, stats.uniquePrograms());
    EXPECT_GT(stats.exec.resets, 0u);
    EXPECT_EQ(stats.exec.executions,
              stats.exec.machinesBuilt + stats.exec.resets);
    // Equivalent matrix columns specialize to identical binaries whose
    // executions are skipped, so the engine runs strictly fewer
    // executions than the matrix has configurations.
    EXPECT_GT(stats.exec.dedupSkips, 0u);
    EXPECT_LT(stats.exec.executions,
              stats.compile.specializations +
                  stats.compile.traceExecutions +
                  stats.exec.dedupSkips);
}

TEST(Campaign, DigestUnchangedByDedupAndJobs)
{
    CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 10;
    cfg.capPerKind = 2;

    CampaignStats withDedup = runCampaign(cfg);
    ASSERT_GT(withDedup.findings.size(), 0u);

    CampaignConfig noDedup = cfg;
    noDedup.corpusDedup = false;
    CampaignStats withoutDedup = runCampaign(noDedup);

    CampaignConfig sharded = cfg;
    sharded.jobs = 4;
    CampaignStats shardedStats = runCampaign(sharded);

    // The cross-PR invariant: corpus dedup and sharding change how the
    // work is done, never what is found.
    EXPECT_EQ(findingsDigest(withDedup), findingsDigest(withoutDedup));
    EXPECT_EQ(findingsDigest(withDedup), findingsDigest(shardedStats));
    EXPECT_EQ(withDedup.ubPrograms, withoutDedup.ubPrograms);
    EXPECT_EQ(withDedup.selectedPairs, withoutDedup.selectedPairs);
    EXPECT_EQ(withDedup.execTimeouts, shardedStats.execTimeouts);
    EXPECT_EQ(withDedup.corpusDuplicates, shardedStats.corpusDuplicates);
    EXPECT_EQ(withDedup.uniquePrograms(), shardedStats.uniquePrograms());
}

TEST(CorpusMemo, ReplaysRecordedDeltas)
{
    CorpusMemo memo;
    CorpusKey key;
    key.textHash = 42;
    key.textLen = 100;
    key.kind = ubgen::UBKind::NullPtrDeref;
    key.ubLoc = SourceLoc{7, 4};
    EXPECT_EQ(memo.find(key), nullptr);

    auto delta = std::make_shared<CampaignStats>();
    delta->ubPrograms = 1;
    delta->selectedPairs = 3;
    memo.insert(key, delta);
    ASSERT_NE(memo.find(key), nullptr);
    EXPECT_EQ(memo.find(key)->selectedPairs, 3u);
    EXPECT_EQ(memo.size(), 1u);

    // First insertion wins (concurrent units may race to store the
    // same — identical — delta).
    auto other = std::make_shared<CampaignStats>();
    other->selectedPairs = 9;
    memo.insert(key, other);
    EXPECT_EQ(memo.find(key)->selectedPairs, 3u);

    // A different UB site is a different corpus identity.
    CorpusKey otherSite = key;
    otherSite.ubLoc = SourceLoc{8, 0};
    EXPECT_EQ(memo.find(otherSite), nullptr);
}

TEST(Campaign, Deterministic)
{
    CampaignConfig cfg;
    cfg.seed = 5;
    cfg.numSeeds = 4;
    cfg.capPerKind = 2;
    CampaignStats a = runCampaign(cfg);
    CampaignStats b = runCampaign(cfg);
    EXPECT_EQ(a.ubPrograms, b.ubPrograms);
    EXPECT_EQ(a.selectedPairs, b.selectedPairs);
    EXPECT_EQ(a.bugFindingCounts, b.bugFindingCounts);
}

TEST(Campaign, JulietFindsNoBugs)
{
    CampaignConfig cfg;
    cfg.source = SourceMode::Juliet;
    CampaignStats stats = runCampaign(cfg);
    // Every corpus case exhibits its UB...
    EXPECT_EQ(stats.noUB, 0u);
    EXPECT_EQ(stats.ubPrograms, corpus::julietSuite().size());
    // ...but none reveals an injected sanitizer bug (§4.3).
    EXPECT_EQ(stats.distinctBugsFound(), 0u);
    // The testing matrix adopts the ground-truth classifier's
    // lowering: one per case, none redone.
    EXPECT_EQ(stats.compile.lowerings, stats.ubPrograms);
}

TEST(Campaign, MusicMostlyGeneratesNoUB)
{
    CampaignConfig cfg;
    cfg.source = SourceMode::Music;
    cfg.seed = 3;
    cfg.numSeeds = 8;
    cfg.mutantsPerSeed = 10;
    CampaignStats stats = runCampaign(cfg);
    // The overwhelming majority of mutants has no UB (Table 4: ~95%).
    EXPECT_GT(stats.noUB, stats.ubPrograms);
    // Music rides the seed-level lowering cache like UBFuzz: one full
    // lowering per seed base plus counted fallbacks; every mutant
    // classified (whether UB or not) lowered incrementally.
    EXPECT_EQ(stats.compile.lowerings,
              stats.seeds + stats.compile.deltaFallbacks);
    EXPECT_GT(stats.compile.deltaLowerings, 0u);
    EXPECT_EQ(stats.compile.deltaLowerings + stats.compile.deltaFallbacks,
              stats.noUB + stats.ubPrograms);
}

TEST(Music, IncrementalLoweringMatchesScratchForMutants)
{
    // The PR 4 follow-up made concrete: a MUSIC mutant perturbs one
    // function of a node-id-preserving clone, so lowering it through
    // the seed cache with musicMutate's perturbed-function handle must
    // be indistinguishable from a scratch lowering.
    size_t checked = 0;
    compiler::CompileStats stats;
    for (uint64_t s = 1; s <= 6; s++) {
        gen::GeneratorConfig gc;
        gc.seed = s;
        gc.safeMath = true;
        auto seed = gen::generateProgram(gc);
        compiler::SeedLoweringCache cache(*seed, &stats);
        Rng rng(s * 17);
        for (int m = 0; m < 8; m++) {
            uint32_t fnId = 0;
            auto mutant = mutation::musicMutate(*seed, rng, &fnId);
            if (!mutant)
                continue;
            EXPECT_NE(fnId, 0u);
            ast::PrintedProgram printed = ast::printProgram(*mutant);
            ir::Module inc =
                cache.lowerDerived(*mutant, printed, fnId, &stats);
            ir::Module scratch = ir::lowerProgram(*mutant, printed.map);
            ASSERT_EQ(ir::executionKey(inc), ir::executionKey(scratch))
                << "seed " << s << " mutant " << m;
            checked++;
        }
    }
    EXPECT_GT(checked, 30u);
    // Mutants overwhelmingly take the incremental path (deletions,
    // operator flips, and constant tweaks are all single-function).
    EXPECT_GT(stats.deltaLowerings, stats.deltaFallbacks);
}

TEST(Campaign, CsmithNoSafeCoversOnlyArithmeticKinds)
{
    CampaignConfig cfg;
    cfg.source = SourceMode::CsmithNoSafe;
    cfg.seed = 7;
    cfg.numSeeds = 40;
    CampaignStats stats = runCampaign(cfg);
    EXPECT_GT(stats.ubPrograms, 0u);
    using ubgen::UBKind;
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++) {
        UBKind kind = static_cast<UBKind>(k);
        if (kind == UBKind::IntegerOverflow ||
            kind == UBKind::ShiftOverflow ||
            kind == UBKind::DivideByZero)
            continue;
        EXPECT_EQ(stats.perKind[k], 0u) << ubgen::ubKindName(kind);
    }
}

TEST(Campaign, OracleAblationSelectsFarMore)
{
    CampaignConfig with;
    with.seed = 9;
    with.numSeeds = 6;
    with.capPerKind = 2;
    CampaignStats a = runCampaign(with);

    CampaignConfig without = with;
    without.useOracle = false;
    CampaignStats b = runCampaign(without);

    // Without the oracle every discrepant pair is "selected" — the
    // flood the paper says is "practically infeasible" to triage.
    EXPECT_GT(b.selectedPairs, a.selectedPairs);
    EXPECT_GT(b.selectedOptimization, a.selectedOptimization);
}

TEST(Music, MutantsAreSyntacticallyValidAndDeterministic)
{
    gen::GeneratorConfig gc;
    gc.seed = 21;
    auto seed = gen::generateProgram(gc);
    Rng r1(5), r2(5);
    auto m1 = mutation::musicMutate(*seed, r1);
    auto m2 = mutation::musicMutate(*seed, r2);
    ASSERT_NE(m1, nullptr);
    ASSERT_NE(m2, nullptr);
    EXPECT_EQ(ast::programText(*m1), ast::programText(*m2));
    EXPECT_NE(ast::programText(*m1), ast::programText(*seed));
    // Mutants still lower and run (valid programs, possibly UB).
    ast::PrintedProgram printed = ast::printProgram(*m1);
    ir::Module mod = ir::lowerProgram(*m1, printed.map);
    EXPECT_EQ(ir::verifyModule(mod), "");
}

TEST(Juliet, EveryCaseTriggersItsDocumentedKind)
{
    for (const corpus::JulietCase &c : corpus::julietSuite()) {
        auto prog = corpus::parseCase(c);
        ast::PrintedProgram printed = ast::printProgram(*prog);
        ir::Module mod = ir::lowerProgram(*prog, printed.map);
        vm::ExecOptions opts;
        opts.groundTruth = true;
        vm::ExecResult r = vm::execute(mod, opts);
        ASSERT_EQ(r.kind, vm::ExecResult::Kind::Report)
            << c.name << ": " << r.str();
        EXPECT_TRUE(ubgen::reportMatchesKind(c.kind, r.report))
            << c.name << ": " << r.str();
    }
}

} // namespace
} // namespace ubfuzz::fuzzer
