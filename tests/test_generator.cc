/**
 * @file
 * Seed-generator properties: determinism, UB-freedom (the paper's core
 * requirement for seeds), round-trip parseability, semantic stability
 * across optimization levels, and NoSafe behaviour.
 */

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "ir/lowering.h"
#include "generator/generator.h"
#include "vm/vm.h"

namespace ubfuzz {
namespace {

vm::ExecResult
runGroundTruth(ast::Program &prog)
{
    ast::PrintedProgram printed = ast::printProgram(prog);
    ir::Module mod = ir::lowerProgram(prog, printed.map);
    vm::ExecOptions opts;
    opts.groundTruth = true;
    return vm::execute(mod, opts);
}

TEST(Generator, Deterministic)
{
    gen::GeneratorConfig cfg;
    cfg.seed = 42;
    auto p1 = gen::generateProgram(cfg);
    auto p2 = gen::generateProgram(cfg);
    EXPECT_EQ(ast::programText(*p1), ast::programText(*p2));
    cfg.seed = 43;
    auto p3 = gen::generateProgram(cfg);
    EXPECT_NE(ast::programText(*p1), ast::programText(*p3));
}

/** Property sweep: every generated seed is valid and UB-free. */
class GeneratorSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(GeneratorSweep, SeedIsUBFreeAndRoundTrips)
{
    gen::GeneratorConfig cfg;
    cfg.seed = GetParam();
    auto prog = gen::generateProgram(cfg);

    // Round-trip through the printer and parser.
    std::string text1 = ast::programText(*prog);
    auto reparsed = frontend::parseOrDie(text1);
    EXPECT_EQ(ast::programText(*reparsed), text1);

    // Ground truth: no UB on execution.
    vm::ExecResult r = runGroundTruth(*prog);
    EXPECT_EQ(r.kind, vm::ExecResult::Kind::Clean)
        << "seed " << GetParam() << ": " << r.str() << "\n"
        << text1;
}

TEST_P(GeneratorSweep, SemanticsStableAcrossLevels)
{
    gen::GeneratorConfig cfg;
    cfg.seed = GetParam() * 7919 + 3;
    auto prog = gen::generateProgram(cfg);
    ast::PrintedProgram printed = ast::printProgram(*prog);

    compiler::CompilerConfig base;
    base.vendor = Vendor::GCC;
    base.level = OptLevel::O0;
    vm::ExecResult ref =
        vm::execute(compiler::compile(*prog, printed, base).module);
    ASSERT_EQ(ref.kind, vm::ExecResult::Kind::Clean) << ref.str();

    for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
        for (OptLevel l : kAllOptLevels) {
            compiler::CompilerConfig c;
            c.vendor = v;
            c.level = l;
            vm::ExecResult r =
                vm::execute(compiler::compile(*prog, printed, c).module);
            ASSERT_EQ(r.kind, vm::ExecResult::Kind::Clean)
                << "seed " << cfg.seed << " " << c.str() << ": "
                << r.str() << "\n"
                << printed.text;
            EXPECT_EQ(r.checksum, ref.checksum)
                << "seed " << cfg.seed << " " << c.str() << "\n"
                << printed.text;
            EXPECT_EQ(r.exitCode, ref.exitCode)
                << "seed " << cfg.seed << " " << c.str();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Range<uint64_t>(1, 60));

/** NoSafe mode drops wrappers: some programs now trap or overflow. */
TEST(GeneratorNoSafe, ProducesOnlyArithmeticUB)
{
    int ub_count = 0;
    int total = 120;
    for (int s = 1; s <= total; s++) {
        gen::GeneratorConfig cfg;
        cfg.seed = static_cast<uint64_t>(s);
        cfg.safeMath = false;
        auto prog = gen::generateProgram(cfg);
        vm::ExecResult r = runGroundTruth(*prog);
        if (r.kind == vm::ExecResult::Kind::Report) {
            ub_count++;
            // Only the three arithmetic UB kinds are possible (§4.3).
            EXPECT_TRUE(
                r.report == vm::ReportKind::SignedIntegerOverflow ||
                r.report == vm::ReportKind::ShiftOutOfBounds ||
                r.report == vm::ReportKind::DivByZero)
                << r.str();
        }
    }
    // A sizable fraction has UB (the paper saw roughly half).
    EXPECT_GT(ub_count, total / 6);
    EXPECT_LT(ub_count, total);
}

TEST(Generator, ProducesRichConstructs)
{
    // Across a few seeds we should see every construct UBGen matches.
    bool saw_deref = false, saw_index = false, saw_div = false,
         saw_shift = false, saw_malloc = false, saw_struct = false;
    for (uint64_t s = 1; s <= 40; s++) {
        gen::GeneratorConfig cfg;
        cfg.seed = s;
        auto prog = gen::generateProgram(cfg);
        std::string text = ast::programText(*prog);
        saw_deref |= text.find("*(") != std::string::npos ||
                     text.find("*g") != std::string::npos;
        saw_index |= text.find("[") != std::string::npos;
        saw_div |= text.find("/") != std::string::npos ||
                   text.find("%") != std::string::npos;
        saw_shift |= text.find("<<") != std::string::npos ||
                     text.find(">>") != std::string::npos;
        saw_malloc |= text.find("__malloc") != std::string::npos;
        saw_struct |= text.find("struct") != std::string::npos;
    }
    EXPECT_TRUE(saw_deref);
    EXPECT_TRUE(saw_index);
    EXPECT_TRUE(saw_div);
    EXPECT_TRUE(saw_shift);
    EXPECT_TRUE(saw_malloc);
    EXPECT_TRUE(saw_struct);
}

} // namespace
} // namespace ubfuzz
