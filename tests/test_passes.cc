/**
 * @file
 * Pass-pipeline tests: registry-built pipelines are deterministic
 * (byte-identical pipelineId sequences on every build), registration
 * collisions die loudly, the adapter pipelines reproduce the
 * pre-refactor compiler bit-for-bit (equal ir::executionKey on a
 * standard seed mix), and the hardening passes are silent until a
 * FaultPlan is armed.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "generator/generator.h"
#include "harden/harden.h"
#include "opt/pass.h"
#include "passes/registry.h"
#include "sanitizer/sanitizer.h"
#include "vm/vm.h"

namespace ubfuzz {
namespace {

using compiler::Binary;
using compiler::CompilerConfig;
using passes::PassRegistry;
using passes::Pipeline;
using vm::ExecResult;

std::vector<uint64_t>
idsOf(const Pipeline &p)
{
    std::vector<uint64_t> ids;
    for (const auto &pass : p)
        ids.push_back(pass->pipelineId());
    return ids;
}

CompilerConfig
cfg(Vendor v, OptLevel l, SanitizerKind s = SanitizerKind::None,
    uint32_t harden = 0)
{
    CompilerConfig c;
    c.vendor = v;
    c.level = l;
    c.sanitizer = s;
    c.harden = harden;
    return c;
}

/** The configuration mix the parity tests sweep: every vendor/level
 *  corner the campaign matrix exercises, plus each sanitizer. */
std::vector<CompilerConfig>
standardConfigs()
{
    std::vector<CompilerConfig> cs;
    for (Vendor v : {Vendor::GCC, Vendor::LLVM})
        for (OptLevel l : kAllOptLevels)
            cs.push_back(cfg(v, l));
    cs.push_back(cfg(Vendor::GCC, OptLevel::O2, SanitizerKind::ASan));
    cs.push_back(cfg(Vendor::GCC, OptLevel::Os, SanitizerKind::UBSan));
    cs.push_back(cfg(Vendor::LLVM, OptLevel::O3, SanitizerKind::ASan));
    cs.push_back(cfg(Vendor::LLVM, OptLevel::O1, SanitizerKind::UBSan));
    cs.push_back(cfg(Vendor::LLVM, OptLevel::O2, SanitizerKind::MSan));
    return cs;
}

TEST(Passes, EarlyPipelinesAreByteIdenticalAcrossBuilds)
{
    for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
        for (OptLevel l : kAllOptLevels) {
            Pipeline a = passes::buildEarlyPipeline(v, l);
            Pipeline b = passes::buildEarlyPipeline(v, l);
            EXPECT_EQ(idsOf(a), idsOf(b))
                << vendorName(v) << " " << optLevelName(l);
            EXPECT_EQ(passes::pipelineFingerprint(a),
                      passes::pipelineFingerprint(b));
            // The memoized form the compilation cache keys on agrees
            // with a fresh instantiation.
            EXPECT_EQ(passes::earlyPipelineFingerprint(v, l),
                      passes::pipelineFingerprint(a));
        }
    }
}

TEST(Passes, SpecializePipelinesAreByteIdenticalAcrossBuilds)
{
    for (const CompilerConfig &c : standardConfigs()) {
        for (uint32_t mask : {0u, harden::kDuplicateCompare,
                              harden::kAllFamilies}) {
            Pipeline a = passes::buildSpecializePipeline(
                c.vendor, c.level, c.sanitizer, mask);
            Pipeline b = passes::buildSpecializePipeline(
                c.vendor, c.level, c.sanitizer, mask);
            EXPECT_EQ(idsOf(a), idsOf(b)) << c.str();
            EXPECT_EQ(passes::pipelineFingerprint(a),
                      passes::pipelineFingerprint(b));
        }
    }
}

TEST(Passes, DistinctInstrumentationSetsGetDistinctFingerprints)
{
    auto fp = [](SanitizerKind s, uint32_t mask) {
        return passes::pipelineFingerprint(passes::buildSpecializePipeline(
            Vendor::GCC, OptLevel::O2, s, mask));
    };
    uint64_t none = fp(SanitizerKind::None, 0);
    uint64_t asan = fp(SanitizerKind::ASan, 0);
    uint64_t dup = fp(SanitizerKind::None, harden::kDuplicateCompare);
    uint64_t all = fp(SanitizerKind::None, harden::kAllFamilies);
    EXPECT_NE(none, asan);
    EXPECT_NE(none, dup);
    EXPECT_NE(dup, all);
    EXPECT_NE(asan, dup);
}

TEST(PassesDeathTest, DuplicateNameRegistrationDies)
{
    auto factory = [] {
        return PassRegistry::instance().create("dce");
    };
    EXPECT_DEATH_IF_SUPPORTED(
        PassRegistry::instance().add("constfold", 0x1234567890abcdefULL,
                                     factory),
        "registered twice");
}

TEST(PassesDeathTest, CollidingPipelineIdDies)
{
    uint64_t taken =
        PassRegistry::instance().create("constfold")->pipelineId();
    auto factory = [] {
        return PassRegistry::instance().create("dce");
    };
    EXPECT_DEATH_IF_SUPPORTED(
        PassRegistry::instance().add("brand-new-pass", taken, factory),
        "collides");
}

TEST(Passes, UnknownPassNameDies)
{
    EXPECT_FALSE(PassRegistry::instance().has("no-such-pass"));
    EXPECT_DEATH_IF_SUPPORTED(
        PassRegistry::instance().create("no-such-pass"), "unknown pass");
}

/** The pre-refactor compiler, reconstructed from the legacy entry
 *  points it was built from: hardcoded opt stage pipelines around
 *  san::instrument. The registry path must match it bit-for-bit. */
ir::Module
legacyCompile(const ir::Module &base, const CompilerConfig &c)
{
    ir::Module m = ir::cloneModule(base);
    opt::runStagePipeline(m, c.vendor, c.level, opt::Stage::EarlyOpt);
    san::CompileLog log;
    san::SanitizerContext ctx;
    ctx.kind = c.sanitizer;
    ctx.bugs =
        san::ActiveBugs(c.vendor, c.effectiveVersion(), c.level);
    ctx.log = &log;
    san::instrument(m, ctx);
    opt::runStagePipeline(m, c.vendor, c.level, opt::Stage::LateOpt);
    return m;
}

TEST(Passes, RegistryPipelinesMatchLegacyExecutionKeys)
{
    // A standard seed mix: the generator's own programs, swept over
    // every vendor/level and each sanitizer. The registry-built
    // pipelines must produce byte-identical modules (equal
    // executionKey) to the hardcoded sequences they replaced — this is
    // the unit-level form of the campaign digest anchor.
    std::vector<CompilerConfig> configs = standardConfigs();
    for (uint64_t seed = 1; seed <= 6; seed++) {
        gen::GeneratorConfig gc;
        gc.seed = seed;
        auto prog = gen::generateProgram(gc);
        ast::PrintedProgram printed = ast::printProgram(*prog);
        ir::Module base = compiler::lowerOnce(*prog, printed);
        for (const CompilerConfig &c : configs) {
            if (!vendorSupports(c.vendor, c.sanitizer))
                continue;
            Binary viaRegistry = compiler::compile(*prog, printed, c);
            ir::Module viaLegacy = legacyCompile(base, c);
            EXPECT_EQ(ir::executionKey(viaRegistry.module),
                      ir::executionKey(viaLegacy))
                << "seed " << seed << " " << c.str();
        }
    }
}

TEST(Passes, HardenedModuleRecordsItsFamilies)
{
    auto prog = frontend::parseOrDie(
        "int main(void) { __checksum(7l); return 0; }");
    Binary plain = compiler::compileProgram(
        *prog, cfg(Vendor::GCC, OptLevel::O2));
    EXPECT_EQ(plain.module.hardenedWith, 0u);
    Binary dup = compiler::compileProgram(
        *prog,
        cfg(Vendor::GCC, OptLevel::O2, SanitizerKind::None,
            harden::kDuplicateCompare));
    EXPECT_EQ(dup.module.hardenedWith, harden::kDuplicateCompare);
    Binary all = compiler::compileProgram(
        *prog,
        cfg(Vendor::GCC, OptLevel::O2, SanitizerKind::None,
            harden::kAllFamilies));
    EXPECT_EQ(all.module.hardenedWith, harden::kAllFamilies);
    // A hardened module never shares an execution identity with the
    // unhardened build of the same program.
    EXPECT_NE(ir::executionKey(plain.module), ir::executionKey(all.module));
}

TEST(PassesDeathTest, RerunningAHardeningFamilyDies)
{
    auto prog = frontend::parseOrDie(
        "int main(void) { __checksum(1l); return 0; }");
    Binary b = compiler::compileProgram(
        *prog,
        cfg(Vendor::GCC, OptLevel::O0, SanitizerKind::None,
            harden::kDuplicateCompare));
    auto pass = PassRegistry::instance().create("harden.dup");
    ir::PassContext ctx;
    EXPECT_DEATH_IF_SUPPORTED(pass->run(b.module, ctx),
                              "already hardened");
}

TEST(Passes, HardeningIsSilentWithoutAnArmedFault)
{
    // The zero-drift guarantee at unit scale: on every standard
    // config, the hardened binary's observable result (kind, report,
    // exit code, checksum) equals the unhardened one as long as no
    // FaultPlan is armed.
    const char *src = R"(int g = 12;
int main(void) {
    int a[4] = {3, 1, 4, 1};
    long acc = 0;
    for (int i = 0; i < 4; i += 1) {
        acc += (long)(a[i] * g);
    }
    int *p = (int*)__malloc(8l);
    p[0] = (int)(acc & 1023l);
    __checksum(acc + (long)p[0]);
    __free((char*)p);
    return (int)(acc % 100l);
}
)";
    auto prog = frontend::parseOrDie(src);
    for (const CompilerConfig &c : standardConfigs()) {
        if (!vendorSupports(c.vendor, c.sanitizer))
            continue;
        Binary plain = compiler::compileProgram(*prog, c);
        CompilerConfig hc = c;
        hc.harden = harden::kAllFamilies;
        Binary hard = compiler::compileProgram(*prog, hc);
        ExecResult rp = vm::execute(plain.module, {});
        ExecResult rh = vm::execute(hard.module, {});
        EXPECT_EQ(rh.kind, rp.kind) << hc.str();
        EXPECT_EQ(rh.report, rp.report) << hc.str();
        EXPECT_EQ(rh.exitCode, rp.exitCode) << hc.str();
        EXPECT_EQ(rh.checksum, rp.checksum) << hc.str();
    }
}

TEST(Passes, ArmedFaultsAreDetectedOrMasked)
{
    // Sweep deterministic fault plans over a hardened binary: every
    // flip either leaves the observable result untouched (masked — the
    // victim was dead) or is caught as a HardeningFault report. A
    // silent corruption (different result, no report) is the failure
    // the passes exist to prevent.
    const char *src = R"(int main(void) {
    long acc = 1;
    for (int i = 1; i < 9; i += 1) {
        acc = acc * (long)i + 3l;
    }
    __checksum(acc);
    return (int)(acc % 97l);
}
)";
    auto prog = frontend::parseOrDie(src);
    Binary hard = compiler::compileProgram(
        *prog,
        cfg(Vendor::GCC, OptLevel::O2, SanitizerKind::None,
            harden::kAllFamilies));
    ExecResult base = vm::execute(hard.module, {});
    ASSERT_EQ(base.kind, ExecResult::Kind::Clean) << base.str();
    ASSERT_GT(base.steps, 1u);

    size_t detected = 0, silent = 0;
    for (uint64_t i = 0; i < 48; i++) {
        vm::FaultPlan plan;
        plan.step = 1 + (i * 7919) % (base.steps - 1);
        plan.target = i * 0x9e3779b97f4a7c15ULL + 11;
        plan.bitIndex = static_cast<uint8_t>((i * 13) % 64);
        vm::ExecOptions opts;
        opts.fault = &plan;
        ExecResult r = vm::execute(hard.module, opts);
        bool same = r.kind == base.kind && r.report == base.report &&
                    r.exitCode == base.exitCode &&
                    r.checksum == base.checksum;
        if (r.kind == ExecResult::Kind::Report) {
            EXPECT_EQ(r.report, vm::ReportKind::HardeningFault);
            detected++;
        } else if (!same) {
            silent++;
        }
    }
    EXPECT_GT(detected, 0u);
    EXPECT_EQ(silent, 0u) << "silent data corruption slipped past "
                             "the hardening passes";
}

TEST(Passes, UnhardenedBinaryNeverReportsHardeningFault)
{
    // Without the passes there is no HardenCheck to fire: a fault run
    // on a plain binary can corrupt the result but never reports.
    auto prog = frontend::parseOrDie(
        R"(int main(void) {
    long acc = 5;
    for (int i = 0; i < 20; i += 1) {
        acc += (long)(i * 3);
    }
    __checksum(acc);
    return (int)(acc % 50l);
}
)");
    Binary plain = compiler::compileProgram(
        *prog, cfg(Vendor::GCC, OptLevel::O2));
    ExecResult base = vm::execute(plain.module, {});
    ASSERT_GT(base.steps, 1u);
    for (uint64_t i = 0; i < 16; i++) {
        vm::FaultPlan plan;
        plan.step = 1 + (i * 31) % (base.steps - 1);
        plan.target = i * 0x2545f4914f6cdd1dULL + 1;
        plan.bitIndex = static_cast<uint8_t>(i % 64);
        vm::ExecOptions opts;
        opts.fault = &plan;
        ExecResult r = vm::execute(plain.module, opts);
        if (r.kind == ExecResult::Kind::Report)
            EXPECT_NE(r.report, vm::ReportKind::HardeningFault);
    }
}

} // namespace
} // namespace ubfuzz
