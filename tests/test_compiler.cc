/**
 * @file
 * Compiler pipeline tests: optimization semantic preservation,
 * sanitizer detection of each UB kind, UB elimination by optimization
 * (Figure 3), and an injected FN bug (Figure 1).
 */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "sanitizer/sanitizer.h"
#include "vm/vm.h"

namespace ubfuzz {
namespace {

using compiler::Binary;
using compiler::CompilerConfig;
using vm::ExecResult;

ExecResult
run(const Binary &b, vm::ExecOptions opts = {})
{
    return vm::execute(b.module, opts);
}

CompilerConfig
cfg(Vendor v, OptLevel l, SanitizerKind s = SanitizerKind::None,
    int version = 0)
{
    CompilerConfig c;
    c.vendor = v;
    c.level = l;
    c.sanitizer = s;
    c.version = version;
    return c;
}

/** Valid programs must behave identically at every level and vendor. */
TEST(Optimizer, SemanticPreservationOnValidPrograms)
{
    const char *programs[] = {
        R"(int a[6] = {5, 4, 3, 2, 1, 0};
int g = 3;
long mix(int x, long y) {
    long r = 0;
    for (int i = 0; i < x; i += 1) {
        r += y * (long)a[i % 6];
        if (r > 100l) {
            r -= 17l;
        }
    }
    return r;
}
int main(void) {
    long t = mix(g + 4, 9l);
    t += (g == 0) ? 1l : (100l / (long)g);
    int u = 1;
    u = u << (g & 7);
    __checksum(t + (long)u);
    return (int)(t % 100l);
}
)",
        R"(struct P {
    int x;
    int y;
};
struct P ps;
int buf[4] = {1, 2, 3, 4};
int *bp = &buf[1];
int main(void) {
    ps.x = *bp + bp[1];
    ps.y = ps.x * 2 - buf[0];
    struct P q;
    q = ps;
    int acc = 0;
    int i = 0;
    while (i < 4) {
        acc += buf[i] ^ (q.y & 3);
        i += 1;
    }
    __checksum((long)acc);
    return acc & 127;
}
)",
        R"(int main(void) {
    char c = 100;
    unsigned char u = 200;
    short s = -300;
    unsigned short w = 60000u;
    long big = 1234567890123l;
    int r = c + u - s + (int)w;
    long lr = big % 1000003l + (long)r;
    int *hp = (int*)__malloc(24l);
    hp[0] = r;
    hp[1] = (int)lr;
    hp[2] = hp[0] + hp[1];
    __checksum((long)hp[2]);
    __free((char*)hp);
    return hp != (int*)0;
}
)",
    };
    for (const char *src : programs) {
        auto prog = frontend::parseOrDie(src);
        ast::PrintedProgram printed = ast::printProgram(*prog);
        Binary base = compiler::compile(
            *prog, printed, cfg(Vendor::GCC, OptLevel::O0));
        ExecResult ref = run(base);
        ASSERT_EQ(ref.kind, ExecResult::Kind::Clean) << ref.str();
        for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
            for (OptLevel l : kAllOptLevels) {
                Binary b =
                    compiler::compile(*prog, printed, cfg(v, l));
                ExecResult r = run(b);
                ASSERT_EQ(r.kind, ExecResult::Kind::Clean)
                    << vendorName(v) << optLevelName(l) << ": "
                    << r.str();
                EXPECT_EQ(r.exitCode, ref.exitCode)
                    << vendorName(v) << optLevelName(l);
                EXPECT_EQ(r.checksum, ref.checksum)
                    << vendorName(v) << optLevelName(l);
            }
        }
    }
}

struct Detection
{
    const char *src;
    SanitizerKind sanitizer;
    vm::ReportKind expect;
};

/** Bug-free sanitizers at -O0 must catch every UB kind (Table 2). */
TEST(Sanitizers, DetectEveryUBKindAtO0)
{
    const Detection cases[] = {
        // Stack buffer overflow via array index (ASan).
        {R"(int main(void) {
    int a[4];
    int i = 0;
    a[0] = 1;
    i = 4;
    a[i] = 2;
    return 0;
}
)",
         SanitizerKind::ASan, vm::ReportKind::StackBufferOverflow},
        // Global buffer overflow via pointer (ASan).
        {R"(int b[2];
int *d = &b[0];
int k = 0;
int main(void) {
    k = 3;
    return *(d + k);
}
)",
         SanitizerKind::ASan, vm::ReportKind::GlobalBufferOverflow},
        // Use after free (ASan).
        {R"(int main(void) {
    long *p = (long*)__malloc(8l);
    *p = 5l;
    __free((char*)p);
    return (int)*p;
}
)",
         SanitizerKind::ASan, vm::ReportKind::HeapUseAfterFree},
        // Use after scope (ASan).
        {R"(int g;
int main(void) {
    int *p = &g;
    if (g == 0) {
        int inner[4];
        inner[0] = 7;
        p = &inner[0];
    }
    return *p;
}
)",
         SanitizerKind::ASan, vm::ReportKind::StackUseAfterScope},
        // Null pointer dereference (UBSan).
        {R"(int main(void) {
    int x = 0;
    int *p = &x;
    p = 0;
    return *p;
}
)",
         SanitizerKind::UBSan, vm::ReportKind::NullDeref},
        // Signed integer overflow (UBSan).
        {R"(int big = 2000000000;
int main(void) {
    int y = big;
    return big + y;
}
)",
         SanitizerKind::UBSan, vm::ReportKind::SignedIntegerOverflow},
        // Shift out of bounds (UBSan).
        {R"(int n = 33;
int main(void) {
    return 1 << n;
}
)",
         SanitizerKind::UBSan, vm::ReportKind::ShiftOutOfBounds},
        // Division by zero (UBSan).
        {R"(int z;
int main(void) {
    z = 0;
    return 7 % z;
}
)",
         SanitizerKind::UBSan, vm::ReportKind::DivByZero},
        // Array index OOB (UBSan bounds).
        {R"(int idx = 9;
int main(void) {
    int a[5] = {1, 2, 3, 4, 5};
    return a[idx];
}
)",
         SanitizerKind::UBSan, vm::ReportKind::ArrayIndexOOB},
        // Use of uninitialized memory (MSan, LLVM only).
        {R"(int main(void) {
    int x;
    if (x > 3) {
        return 1;
    }
    return 0;
}
)",
         SanitizerKind::MSan, vm::ReportKind::UninitValue},
    };

    for (const Detection &d : cases) {
        auto prog = frontend::parseOrDie(d.src);
        for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
            if (!vendorSupports(v, d.sanitizer))
                continue;
            // Version 5 on GCC/LLVM would have injected bugs active;
            // use a hypothetical bug-free version by picking version 1
            // (before anything was introduced).
            Binary b = compiler::compileProgram(
                *prog, cfg(v, OptLevel::O0, d.sanitizer, 1));
            ExecResult r = run(b);
            ASSERT_EQ(r.kind, ExecResult::Kind::Report)
                << vendorName(v) << " " << sanitizerName(d.sanitizer)
                << " on:\n"
                << d.src << "\ngot: " << r.str();
            EXPECT_EQ(r.report, d.expect)
                << vendorName(v) << " " << sanitizerName(d.sanitizer);
        }
    }
}

/**
 * Figure 3: the dead OOB store is eliminated by -O2 *before* the
 * sanitizer pass, so ASan cannot see it. Not a sanitizer bug.
 */
TEST(Pipeline, OptimizationEliminatesDeadUBStore)
{
    const char *src = R"(int main(void) {
    int d[2];
    int i = 2;
    d[i] = 1;
    return 0;
}
)";
    auto prog = frontend::parseOrDie(src);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    // At -O0, ASan reports the overflow.
    Binary b0 = compiler::compile(
        *prog, printed, cfg(Vendor::GCC, OptLevel::O0,
                            SanitizerKind::ASan, 1));
    ExecResult r0 = run(b0);
    ASSERT_EQ(r0.kind, ExecResult::Kind::Report) << r0.str();
    // At -O2, DSE removes the write-only store; clean exit, no bug.
    Binary b2 = compiler::compile(
        *prog, printed, cfg(Vendor::GCC, OptLevel::O2,
                            SanitizerKind::ASan, 1));
    ExecResult r2 = run(b2);
    EXPECT_EQ(r2.kind, ExecResult::Kind::Clean) << r2.str();
    // Crucially: no injected bug fired — this is pure optimization.
    EXPECT_TRUE(b2.log.firings.empty());
}

/**
 * Figure 1: the struct copy through an overflowed pointer. GCC ASan
 * detects it at -O0 but misses it at -O2 because of the injected
 * GccAsanStructCopyNoCheck defect — and the compile log says so.
 */
TEST(Pipeline, Figure1InjectedFalseNegative)
{
    const char *src = R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)";
    auto prog = frontend::parseOrDie(src);
    ast::PrintedProgram printed = ast::printProgram(*prog);

    Binary b0 = compiler::compile(
        *prog, printed,
        cfg(Vendor::GCC, OptLevel::O0, SanitizerKind::ASan));
    ExecResult r0 = run(b0);
    ASSERT_EQ(r0.kind, ExecResult::Kind::Report) << r0.str();
    EXPECT_EQ(r0.report, vm::ReportKind::GlobalBufferOverflow);

    Binary b2 = compiler::compile(
        *prog, printed,
        cfg(Vendor::GCC, OptLevel::O2, SanitizerKind::ASan));
    ExecResult r2 = run(b2);
    EXPECT_NE(r2.kind, ExecResult::Kind::Report) << r2.str();
    // The ground-truth log records the defect firing at the UB site.
    bool fired = false;
    for (const auto &f : b2.log.firings)
        fired |= f.id == san::BugId::GccAsanStructCopyNoCheck;
    EXPECT_TRUE(fired);
}

TEST(BugCatalog, DistributionMatchesTable3)
{
    int gcc_asan = 0, gcc_ubsan = 0, llvm_asan = 0, llvm_ubsan = 0,
        llvm_msan = 0;
    for (const san::BugInfo &b : san::bugCatalog()) {
        if (b.vendor == Vendor::GCC) {
            (b.sanitizer == SanitizerKind::ASan ? gcc_asan : gcc_ubsan)++;
        } else if (b.sanitizer == SanitizerKind::ASan) {
            llvm_asan++;
        } else if (b.sanitizer == SanitizerKind::UBSan) {
            llvm_ubsan++;
        } else {
            llvm_msan++;
        }
    }
    // 30 real defects; the paper's 31st report is the oracle false
    // alarm (GCC ASan "Invalid" in Table 3).
    EXPECT_EQ(gcc_asan, 8);
    EXPECT_EQ(gcc_ubsan, 7);
    EXPECT_EQ(llvm_asan, 6);
    EXPECT_EQ(llvm_ubsan, 8);
    EXPECT_EQ(llvm_msan, 1);
}

TEST(BugCatalog, VersionAndLevelGating)
{
    using san::ActiveBugs;
    using san::BugId;
    // GccAsanStructCopyNoCheck: GCC only, since v5, -O2 and up.
    EXPECT_TRUE(ActiveBugs(Vendor::GCC, 14, OptLevel::O2)
                    .active(BugId::GccAsanStructCopyNoCheck));
    EXPECT_TRUE(ActiveBugs(Vendor::GCC, 5, OptLevel::O3)
                    .active(BugId::GccAsanStructCopyNoCheck));
    EXPECT_FALSE(ActiveBugs(Vendor::GCC, 14, OptLevel::O0)
                     .active(BugId::GccAsanStructCopyNoCheck));
    EXPECT_FALSE(ActiveBugs(Vendor::GCC, 4, OptLevel::O2)
                     .active(BugId::GccAsanStructCopyNoCheck));
    EXPECT_FALSE(ActiveBugs(Vendor::LLVM, 14, OptLevel::O2)
                     .active(BugId::GccAsanStructCopyNoCheck));
}

TEST(Sanitizers, AsanRedzoneLimitIs32Bytes)
{
    // The paper (§2.1): ASan only detects overflows up to 32 bytes
    // past the buffer. Far enough past the buffer the access lands in
    // the *next global's* payload (past both globals' redzones), which
    // is valid memory as far as the shadow is concerned.
    const char *far_src = R"(int b[2];
int *d = &b[0];
int k = 0;
int main(void) {
    k = 19;
    return *(d + k);
}
)";
    auto prog = frontend::parseOrDie(far_src);
    Binary b = compiler::compileProgram(
        *prog, cfg(Vendor::GCC, OptLevel::O0, SanitizerKind::ASan, 1));
    ExecResult r = run(b);
    EXPECT_NE(r.kind, ExecResult::Kind::Report) << r.str();
}

/** The Figure 1 program: stack/global overflow with sanitizer action
 *  at every level — a good workout for the full matrix. */
const char *kStagedSrc = R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)";

/**
 * The whole point of the staged pipeline: a CompilationCache must hand
 * back bit-identical binaries (module text, compile log, and runtime
 * behaviour) to the uncached compile, for every configuration of the
 * full sanitizer matrix.
 */
TEST(StagedPipeline, CacheMatchesMonolithicCompile)
{
    auto prog = frontend::parseOrDie(kStagedSrc);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    compiler::CompilationCache cache(*prog, printed);
    for (SanitizerKind s :
         {SanitizerKind::None, SanitizerKind::ASan, SanitizerKind::UBSan,
          SanitizerKind::MSan}) {
        for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
            if (!vendorSupports(v, s))
                continue;
            for (OptLevel l : kAllOptLevels) {
                Binary mono = compiler::compile(*prog, printed,
                                                cfg(v, l, s));
                Binary staged = cache.compile(cfg(v, l, s));
                ASSERT_EQ(ir::printModule(mono.module),
                          ir::printModule(staged.module))
                    << cfg(v, l, s).str();
                ASSERT_EQ(mono.log.firings.size(),
                          staged.log.firings.size())
                    << cfg(v, l, s).str();
                for (size_t i = 0; i < mono.log.firings.size(); i++) {
                    EXPECT_EQ(mono.log.firings[i].id,
                              staged.log.firings[i].id);
                    EXPECT_EQ(mono.log.firings[i].loc,
                              staged.log.firings[i].loc);
                }
                ExecResult rm = run(mono), rs = run(staged);
                EXPECT_EQ(rm.str(), rs.str()) << cfg(v, l, s).str();
            }
        }
    }
}

/** Counter accounting: one lowering per program, one early-opt run per
 *  equivalence class, one specialization per binary. */
TEST(StagedPipeline, CacheReusesLoweringAndEarlyOpt)
{
    auto prog = frontend::parseOrDie(kStagedSrc);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    compiler::CompilationCache cache(*prog, printed);
    size_t compiles = 0;
    for (SanitizerKind s : {SanitizerKind::ASan, SanitizerKind::UBSan,
                            SanitizerKind::MSan}) {
        for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
            if (!vendorSupports(v, s))
                continue;
            for (OptLevel l : kAllOptLevels) {
                cache.compile(cfg(v, l, s));
                compiles++;
            }
        }
    }
    // ASan 10 + UBSan 10 + MSan 5 configurations...
    EXPECT_EQ(compiles, 25u);
    EXPECT_EQ(cache.stats().specializations, 25u);
    // ...share one lowering and 7 early-opt classes (shared -O0, four
    // GCC levels, LLVM {O1,Os} and {O2,O3}).
    EXPECT_EQ(cache.stats().lowerings, 1u);
    EXPECT_EQ(cache.stats().earlyOptRuns, 7u);
    EXPECT_EQ(cache.stats().earlyOptCacheHits, 18u);
}

/** cloneModule must be a deep copy: mutating the clone (or
 *  instrumenting it) leaves the original untouched. */
TEST(StagedPipeline, CloneModuleIsolatesMutation)
{
    auto prog = frontend::parseOrDie(kStagedSrc);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    ir::Module base = compiler::lowerOnce(*prog, printed);
    std::string before = ir::printModule(base);
    ir::Module clone = ir::cloneModule(base);
    compiler::Binary b =
        compiler::specialize(clone, cfg(Vendor::GCC, OptLevel::O2,
                                        SanitizerKind::ASan));
    // The specialized binary gained sanitizer instructions; neither the
    // clone it came from nor the base module changed.
    EXPECT_EQ(b.module.instrumentedWith, SanitizerKind::ASan);
    EXPECT_EQ(clone.instrumentedWith, SanitizerKind::None);
    EXPECT_EQ(ir::printModule(base), before);
    EXPECT_EQ(ir::printModule(clone), before);
}

/** Double instrumentation (a missing clone) must be caught loudly. */
TEST(StagedPipelineDeathTest, ReinstrumentingPanics)
{
    auto prog = frontend::parseOrDie(kStagedSrc);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    compiler::Binary b = compiler::compile(
        *prog, printed, cfg(Vendor::GCC, OptLevel::O0,
                            SanitizerKind::ASan));
    san::SanitizerContext ctx;
    ctx.kind = SanitizerKind::ASan;
    EXPECT_DEATH_IF_SUPPORTED(san::instrument(b.module, ctx),
                              "already instrumented");
}

} // namespace
} // namespace ubfuzz
