/**
 * @file
 * The campaign store's contract: journals round-trip their records
 * exactly, a torn final record is recovered at every byte offset,
 * resume refuses journals from a different campaign, and shard
 * journals merge into the same totals as one sequential fold —
 * including under arbitrary regrouping (merge associativity).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

#include <gtest/gtest.h>

#include "campaign/store.h"
#include "fuzzer/orchestrator.h"

namespace ubfuzz::campaign {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory per test, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const char *tag)
    {
        path = fs::temp_directory_path() /
               (std::string("ubfuzz_store_") + tag + "_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + std::to_string(reinterpret_cast<uintptr_t>(this)));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

std::string
readFileBytes(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFileBytes(const fs::path &p, const std::string &bytes)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** A small synthetic unit delta, distinguishable by @p unit. */
UnitRecord
sampleRecord(int unit)
{
    UnitRecord rec;
    rec.unit = unit;
    rec.stats.seeds = 1;
    rec.stats.ubPrograms = static_cast<size_t>(10 + unit);
    rec.stats.perKind[static_cast<size_t>(unit) %
                      static_cast<size_t>(ubgen::kNumUBKinds)] = 1;
    rec.stats.exec.executions = static_cast<size_t>(100 * (unit + 1));
    fuzzer::CorpusKey key;
    key.textHash = 0x1000 + static_cast<uint64_t>(unit);
    key.textLen = 50;
    key.ubLoc = {unit, 0};
    rec.stats.corpusSeen[key] = 1;
    fuzzer::CampaignStats delta;
    delta.ubPrograms = 1;
    rec.memoAdds.emplace_back(key, delta);
    return rec;
}

fuzzer::CampaignConfig
smallConfig()
{
    fuzzer::CampaignConfig cfg;
    cfg.seed = 11;
    cfg.numSeeds = 6;
    cfg.capPerKind = 2;
    return cfg;
}

TEST(ConfigHash, CoversLogicalFieldsOnly)
{
    fuzzer::CampaignConfig a = smallConfig();
    fuzzer::CampaignConfig b = a;
    EXPECT_EQ(configHash(a), configHash(b));
    // jobs and the cache caps redistribute or bound work without
    // changing results, so a journal legally resumes across them.
    b.jobs = 8;
    b.corpusMemoCap = 4;
    b.codeCacheCap = 4;
    EXPECT_EQ(configHash(a), configHash(b));
    // Supervision settings likewise: crash-free results are identical
    // with or without isolation, so a journal written under --isolate
    // resumes in-process (and vice versa) — and retuning the watchdog
    // or retry budget must not orphan a half-finished campaign.
    b.isolate = true;
    b.unitTimeoutMs = 5000;
    b.retries = 7;
    b.failureInjection = *fuzzer::parseFailureInjection("crash:3:-1");
    EXPECT_EQ(configHash(a), configHash(b));
    // Everything that changes logical results changes the hash.
    b = a;
    b.seed = 12;
    EXPECT_NE(configHash(a), configHash(b));
    b = a;
    b.numSeeds = 7;
    EXPECT_NE(configHash(a), configHash(b));
    b = a;
    b.capPerKind = 3;
    EXPECT_NE(configHash(a), configHash(b));
    b = a;
    b.source = fuzzer::SourceMode::Music;
    EXPECT_NE(configHash(a), configHash(b));
    b = a;
    b.useOracle = false;
    EXPECT_NE(configHash(a), configHash(b));
    b = a;
    b.onlyO0 = true;
    EXPECT_NE(configHash(a), configHash(b));
    b = a;
    b.stepLimit = 12345;
    EXPECT_NE(configHash(a), configHash(b));
    b = a;
    b.corpusDedup = false;
    EXPECT_NE(configHash(a), configHash(b));
}

TEST(ShardSpec, PartitionsUnits)
{
    ShardSpec whole;
    for (int u = 0; u < 10; u++)
        EXPECT_TRUE(whole.owns(u));
    // Every unit is owned by exactly one of N shards.
    for (int count : {2, 3, 4}) {
        for (int u = 0; u < 24; u++) {
            int owners = 0;
            for (int i = 1; i <= count; i++)
                owners += ShardSpec{i, count}.owns(u) ? 1 : 0;
            EXPECT_EQ(owners, 1) << "unit " << u << " of " << count;
        }
    }
}

TEST(Store, AppendThenResumeRoundTripsRecords)
{
    TempDir dir("roundtrip");
    Manifest m = manifestFor(smallConfig(), ShardSpec{});
    std::string error;
    auto store = CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    for (int u : {0, 3, 1})
        store->append(sampleRecord(u));
    store.reset(); // close

    auto resumed = CampaignStore::open(dir.str(), m, true, &error);
    ASSERT_TRUE(resumed) << error;
    EXPECT_EQ(resumed->droppedTailBytes(), 0u);
    std::map<int, UnitRecord> records = resumed->takeReplayed();
    ASSERT_EQ(records.size(), 3u);
    for (int u : {0, 1, 3}) {
        ASSERT_TRUE(records.count(u));
        UnitRecord expected = sampleRecord(u);
        EXPECT_EQ(records[u].unit, expected.unit);
        EXPECT_EQ(records[u].stats, expected.stats);
        ASSERT_EQ(records[u].memoAdds.size(), 1u);
        EXPECT_EQ(records[u].memoAdds[0].first,
                  expected.memoAdds[0].first);
        EXPECT_EQ(records[u].memoAdds[0].second,
                  expected.memoAdds[0].second);
    }
    // The resumed store accepts further appends.
    resumed->append(sampleRecord(5));
    resumed.reset();
    auto again = CampaignStore::open(dir.str(), m, true, &error);
    ASSERT_TRUE(again) << error;
    EXPECT_EQ(again->takeReplayed().size(), 4u);
}

TEST(Store, QuarantineRecordsRoundTripAndUnknownKindsAreRejected)
{
    TempDir dir("quarantine");
    Manifest m = manifestFor(smallConfig(), ShardSpec{});
    std::string error;
    auto store = CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    store->append(sampleRecord(0));
    // A quarantined unit journals only its supervision counters — no
    // findings, no memo adds — so replay can fold it without either
    // re-running the unit or double-counting anything.
    UnitRecord q;
    q.unit = 1;
    q.quarantined = true;
    q.stats.quarantined = 1;
    q.stats.workerCrashes = 2;
    q.stats.workerTimeouts = 1;
    q.stats.retried = 2;
    store->append(q);
    store.reset();

    auto resumed = CampaignStore::open(dir.str(), m, true, &error);
    ASSERT_TRUE(resumed) << error;
    std::map<int, UnitRecord> records = resumed->takeReplayed();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_FALSE(records[0].quarantined);
    EXPECT_TRUE(records[1].quarantined);
    EXPECT_EQ(records[1].stats, q.stats);
    EXPECT_TRUE(records[1].memoAdds.empty());
    resumed.reset();

    // The record-kind byte sits right after the unit index (u32) in
    // the first record's payload; any value above 1 must fail the
    // record like a checksum miss would — but since the payload is
    // checksummed, flip the byte *and* observe the checksum catches
    // it first (kind enforcement is belt for future format bumps).
    const fs::path path =
        fs::path(dir.str()) / CampaignStore::journalFileName(m.shard);
    std::string bytes = readFileBytes(path);
    // manifest is 8 (magic) + 4+4+8+8+4+4+4 = 44 bytes; then frame
    // header (12) + unit u32 (4) puts the kind byte at offset 60.
    ASSERT_GT(bytes.size(), 61u);
    bytes[60] = 7;
    writeFileBytes(path, bytes);
    Manifest got;
    std::map<int, UnitRecord> recovered;
    size_t dropped = 0;
    ASSERT_TRUE(readJournal(path.string(), got, recovered, &dropped,
                            &error))
        << error;
    // The corrupted first record (and everything after it, per the
    // torn-tail discipline) is dropped.
    EXPECT_TRUE(recovered.empty());
    EXPECT_GT(dropped, 0u);
}

TEST(Store, FreshOpenRefusesExistingJournal)
{
    TempDir dir("noclobber");
    Manifest m = manifestFor(smallConfig(), ShardSpec{});
    std::string error;
    auto store = CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    store.reset();
    auto clobber = CampaignStore::open(dir.str(), m, false, &error);
    EXPECT_FALSE(clobber);
    EXPECT_NE(error.find("--resume"), std::string::npos) << error;
}

TEST(Store, ResumeRefusesDifferentCampaign)
{
    TempDir dir("mismatch");
    fuzzer::CampaignConfig cfg = smallConfig();
    Manifest m = manifestFor(cfg, ShardSpec{});
    std::string error;
    auto store = CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    store.reset();

    fuzzer::CampaignConfig other = cfg;
    other.seed = 999;
    auto resumed = CampaignStore::open(
        dir.str(), manifestFor(other, ShardSpec{}), true, &error);
    EXPECT_FALSE(resumed);
    EXPECT_NE(error.find("different campaign"), std::string::npos)
        << error;

    // Resuming a store that was never created fails cleanly too.
    TempDir empty("absent");
    auto missing = CampaignStore::open(empty.str(), m, true, &error);
    EXPECT_FALSE(missing);
}

TEST(Store, TornFinalRecordRecoveredAtEveryByteOffset)
{
    TempDir dir("torn");
    Manifest m = manifestFor(smallConfig(), ShardSpec{});
    std::string error;
    auto store = CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    store->append(sampleRecord(0));
    store->append(sampleRecord(1));
    const fs::path journal =
        dir.path / CampaignStore::journalFileName(m.shard);
    const std::string twoRecords = readFileBytes(journal);
    store->append(sampleRecord(2));
    store.reset();
    const std::string full = readFileBytes(journal);
    ASSERT_GT(full.size(), twoRecords.size());

    // Truncate the journal inside the final record, at every byte
    // offset from "record entirely missing" to "one byte short", and
    // prove recovery keeps exactly the first two records and drops the
    // tail — on disk as well as in memory.
    for (size_t len = twoRecords.size(); len < full.size(); len++) {
        writeFileBytes(journal, full.substr(0, len));
        auto resumed = CampaignStore::open(dir.str(), m, true, &error);
        ASSERT_TRUE(resumed) << "offset " << len << ": " << error;
        EXPECT_EQ(resumed->droppedTailBytes(), len - twoRecords.size())
            << "offset " << len;
        std::map<int, UnitRecord> records = resumed->takeReplayed();
        ASSERT_EQ(records.size(), 2u) << "offset " << len;
        EXPECT_TRUE(records.count(0));
        EXPECT_TRUE(records.count(1));
        // The torn unit re-runs and re-journals on the truncated file.
        resumed->append(sampleRecord(2));
        resumed.reset();
        EXPECT_EQ(readFileBytes(journal), full) << "offset " << len;
    }
}

TEST(Store, CorruptedChecksumDropsRecord)
{
    TempDir dir("corrupt");
    Manifest m = manifestFor(smallConfig(), ShardSpec{});
    std::string error;
    auto store = CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    store->append(sampleRecord(0));
    const fs::path journal =
        dir.path / CampaignStore::journalFileName(m.shard);
    const std::string oneRecord = readFileBytes(journal);
    store->append(sampleRecord(1));
    store.reset();

    // Flip one payload byte of the last record: the checksum fails, so
    // recovery treats it like a tear and keeps only the first record.
    std::string bytes = readFileBytes(journal);
    bytes[oneRecord.size() + 20] ^= 0x40;
    writeFileBytes(journal, bytes);
    auto resumed = CampaignStore::open(dir.str(), m, true, &error);
    ASSERT_TRUE(resumed) << error;
    std::map<int, UnitRecord> records = resumed->takeReplayed();
    EXPECT_EQ(records.size(), 1u);
    EXPECT_TRUE(records.count(0));
}

TEST(Store, DuplicateUnitIsStructuralCorruption)
{
    TempDir dir("dup");
    Manifest m = manifestFor(smallConfig(), ShardSpec{});
    std::string error;
    auto store = CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    store->append(sampleRecord(2));
    store->append(sampleRecord(2)); // a tear cannot explain this
    store.reset();
    auto resumed = CampaignStore::open(dir.str(), m, true, &error);
    EXPECT_FALSE(resumed);
    EXPECT_NE(error.find("twice"), std::string::npos) << error;
}

TEST(Store, OutOfShardUnitIsStructuralCorruption)
{
    TempDir dir("foreign");
    Manifest m = manifestFor(smallConfig(), ShardSpec{1, 2});
    std::string error;
    auto store = CampaignStore::open(dir.str(), m, false, &error);
    ASSERT_TRUE(store) << error;
    store->append(sampleRecord(0)); // owned (0 % 2 == 0)
    store->append(sampleRecord(1)); // shard 2's unit
    store.reset();
    auto resumed = CampaignStore::open(dir.str(), m, true, &error);
    EXPECT_FALSE(resumed);
    EXPECT_NE(error.find("outside"), std::string::npos) << error;
}

TEST(Merge, ShardJournalsFoldToSequentialCampaign)
{
    fuzzer::CampaignConfig cfg = smallConfig();
    cfg.jobs = 1;
    fuzzer::CampaignStats whole = fuzzer::runCampaignParallel(cfg);
    ASSERT_GT(whole.ubPrograms, 0u);

    TempDir dir("merge");
    for (int i = 1; i <= 2; i++) {
        ShardSpec shard{i, 2};
        std::string error;
        auto store = CampaignStore::open(
            dir.str(), manifestFor(cfg, shard), false, &error);
        ASSERT_TRUE(store) << error;
        fuzzer::ServiceOptions opts;
        opts.shard = shard;
        opts.store = store.get();
        fuzzer::ServiceResult res =
            fuzzer::runCampaignService(cfg, opts);
        EXPECT_TRUE(res.complete);
        EXPECT_EQ(res.unitsReplayed, 0);
    }

    MergeResult merged = mergeStore(dir.str());
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(merged.shardCount, 2);
    EXPECT_EQ(merged.unitsMerged, static_cast<size_t>(cfg.numSeeds));
    EXPECT_EQ(merged.campaignSeed, cfg.seed);
    EXPECT_EQ(merged.configHash, configHash(cfg));
    // Logical results are bit-identical to one process running every
    // unit (the work counters may differ: shards do not share a corpus
    // memo, so a cross-shard duplicate is recomputed, not replayed).
    EXPECT_EQ(fuzzer::findingsDigest(merged.stats),
              fuzzer::findingsDigest(whole));
    EXPECT_EQ(merged.stats.ubPrograms, whole.ubPrograms);
    EXPECT_EQ(merged.stats.corpusSeen, whole.corpusSeen);
    EXPECT_EQ(merged.stats.corpusDuplicates, whole.corpusDuplicates);
    EXPECT_EQ(merged.stats.bugFindingCounts, whole.bugFindingCounts);
    EXPECT_EQ(merged.stats.findings, whole.findings);
}

TEST(Merge, RefusesIncompleteCampaign)
{
    fuzzer::CampaignConfig cfg = smallConfig();
    TempDir dir("partial");
    // Only shard 1 of 2 ran: merging must fail, not fabricate totals.
    ShardSpec shard{1, 2};
    std::string error;
    auto store = CampaignStore::open(dir.str(), manifestFor(cfg, shard),
                                     false, &error);
    ASSERT_TRUE(store) << error;
    fuzzer::ServiceOptions opts;
    opts.shard = shard;
    opts.store = store.get();
    fuzzer::runCampaignService(cfg, opts);
    store.reset();

    MergeResult merged = mergeStore(dir.str());
    EXPECT_FALSE(merged.ok);
    EXPECT_NE(merged.error.find("shard"), std::string::npos)
        << merged.error;

    TempDir empty("nothing");
    EXPECT_FALSE(mergeStore(empty.str()).ok);
}

TEST(Merge, RefusesPausedShard)
{
    fuzzer::CampaignConfig cfg = smallConfig();
    TempDir dir("paused");
    std::string error;
    auto store = CampaignStore::open(
        dir.str(), manifestFor(cfg, ShardSpec{}), false, &error);
    ASSERT_TRUE(store) << error;
    fuzzer::ServiceOptions opts;
    opts.store = store.get();
    opts.maxFreshUnits = 2; // pause mid-campaign
    fuzzer::ServiceResult res = fuzzer::runCampaignService(cfg, opts);
    EXPECT_FALSE(res.complete);
    store.reset();

    MergeResult merged = mergeStore(dir.str());
    EXPECT_FALSE(merged.ok);
    EXPECT_NE(merged.error.find("incomplete"), std::string::npos)
        << merged.error;
}

TEST(Merge, FoldIsAssociativeOverContiguousGroups)
{
    // The cross-process merge rests on fold associativity: folding
    // per-unit deltas group by group, then folding the group totals,
    // must equal one sequential fold — for *any* contiguous grouping.
    // This is what lets shard journals (and journal replay) reproduce
    // a monolithic campaign exactly.
    fuzzer::CampaignConfig cfg;
    cfg.seed = 20240427;
    cfg.numSeeds = 20;
    cfg.capPerKind = 2;

    std::vector<fuzzer::CampaignStats> deltas;
    for (int u = 0; u < cfg.numSeeds; u++)
        deltas.push_back(
            fuzzer::detail::runCampaignUnit(cfg, u, nullptr));

    fuzzer::CampaignStats sequential;
    for (const auto &d : deltas)
        fuzzer::detail::mergeCampaignStats(
            sequential, fuzzer::CampaignStats(d));

    std::mt19937 rng(7);
    for (int trial = 0; trial < 12; trial++) {
        // Random contiguous grouping: each unit starts a new group
        // with probability 1/3 (trial 0 degenerates to one group).
        std::vector<fuzzer::CampaignStats> groups;
        for (size_t u = 0; u < deltas.size(); u++) {
            if (groups.empty() || (trial > 0 && rng() % 3 == 0))
                groups.emplace_back();
            fuzzer::detail::mergeCampaignStats(
                groups.back(), fuzzer::CampaignStats(deltas[u]));
        }
        fuzzer::CampaignStats regrouped;
        for (auto &g : groups)
            fuzzer::detail::mergeCampaignStats(regrouped,
                                               std::move(g));
        // Exact equality, every field — associativity holds for the
        // work counters too when the deltas themselves are fixed.
        EXPECT_EQ(regrouped, sequential)
            << "trial " << trial << " with " << groups.size()
            << " groups";
    }
}

} // namespace
} // namespace ubfuzz::campaign
