/**
 * @file
 * UBGen tests: matching, shadow statement synthesis (Table 1), the
 * single-UB property, and validation that generated programs trigger
 * exactly the intended UB at the expected location.
 */

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "frontend/parser.h"
#include "generator/generator.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"

namespace ubfuzz::ubgen {
namespace {

std::vector<UBProgram>
genFor(const char *src, UBKind kind, uint64_t rngSeed = 7)
{
    auto prog = frontend::parseOrDie(src);
    UBGenerator gen(*prog);
    Rng rng(rngSeed);
    return gen.generate(kind, rng);
}

TEST(UBGen, ArrayOverflowFromFigure6)
{
    // Figure 6: int a[5]; int x=1; a[x]=1  ==>  Δ(x); a[x + d] = 1.
    const char *src = R"(int a[5];
int x = 1;
int main(void) {
    a[x] = 1;
    __checksum((long)a[1]);
    return 0;
}
)";
    auto programs = genFor(src, UBKind::BufferOverflowArray);
    ASSERT_FALSE(programs.empty());
    bool any_valid = false;
    for (const auto &ub : programs)
        any_valid |= validateUBProgram(ub);
    EXPECT_TRUE(any_valid);
    // The mutated program contains the shadow aux variable.
    std::string text = ast::programText(*programs[0].program);
    EXPECT_NE(text.find("__ub_d0"), std::string::npos) << text;
}

TEST(UBGen, PointerOverflowFromFigure1Seed)
{
    // The seed of Figure 4 (= Figure 1 without `k = 2`).
    const char *src = R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    *c = *(d + k);
    return c->x;
}
)";
    auto programs = genFor(src, UBKind::BufferOverflowPointer);
    ASSERT_FALSE(programs.empty());
    int valid = 0;
    for (const auto &ub : programs)
        valid += validateUBProgram(ub) ? 1 : 0;
    EXPECT_GT(valid, 0);
}

TEST(UBGen, UseAfterFree)
{
    const char *src = R"(int main(void) {
    long *hp = (long*)__malloc(16l);
    hp[0] = 3l;
    hp[1] = 4l;
    __checksum(*hp);
    __free((char*)hp);
    return 0;
}
)";
    auto programs = genFor(src, UBKind::UseAfterFree);
    ASSERT_FALSE(programs.empty());
    bool any_valid = false;
    for (const auto &ub : programs)
        any_valid |= validateUBProgram(ub);
    EXPECT_TRUE(any_valid);
}

TEST(UBGen, UseAfterScope)
{
    // Mirrors Figure 8's shape: inner-scope variable, pointer deref
    // after the scope closes.
    const char *src = R"(int g = 1;
int *p = &g;
int main(void) {
    if (g > 0) {
        int inner = 5;
        __checksum((long)inner);
    }
    __checksum((long)*p);
    return 0;
}
)";
    auto programs = genFor(src, UBKind::UseAfterScope);
    ASSERT_FALSE(programs.empty());
    bool any_valid = false;
    for (const auto &ub : programs)
        any_valid |= validateUBProgram(ub);
    EXPECT_TRUE(any_valid);
    std::string text = ast::programText(*programs[0].program);
    EXPECT_NE(text.find("p = &inner"), std::string::npos) << text;
}

TEST(UBGen, NullDerefAndArithmeticKinds)
{
    const char *src = R"(int g = 9;
int *p = &g;
int d = 3;
int s = 2;
int main(void) {
    int acc = *p;
    acc = acc + g * 2;
    acc = acc / d;
    acc = acc << s;
    __checksum((long)acc);
    return 0;
}
)";
    for (UBKind kind :
         {UBKind::NullPtrDeref, UBKind::IntegerOverflow,
          UBKind::ShiftOverflow, UBKind::DivideByZero}) {
        auto programs = genFor(src, kind);
        ASSERT_FALSE(programs.empty()) << ubKindName(kind);
        bool any_valid = false;
        for (const auto &ub : programs)
            any_valid |= validateUBProgram(ub);
        EXPECT_TRUE(any_valid) << ubKindName(kind);
    }
}

TEST(UBGen, UninitCondition)
{
    const char *src = R"(int g = 2;
int main(void) {
    if (g > 1) {
        g = 3;
    }
    while (g < 9) {
        g += 2;
    }
    __checksum((long)g);
    return 0;
}
)";
    auto programs = genFor(src, UBKind::UseOfUninitMemory);
    ASSERT_GE(programs.size(), 2u); // both conditions matched
    bool any_valid = false;
    for (const auto &ub : programs)
        any_valid |= validateUBProgram(ub);
    EXPECT_TRUE(any_valid);
}

/** Generated programs from random seeds: high validity rate, and the
 *  full kind coverage the paper's Table 4 row for UBfuzz shows. */
TEST(UBGen, RandomSeedSweep)
{
    size_t generated = 0, valid = 0;
    size_t per_kind[kNumUBKinds] = {};
    for (uint64_t s = 1; s <= 12; s++) {
        gen::GeneratorConfig cfg;
        cfg.seed = s;
        auto seed = gen::generateProgram(cfg);
        UBGenerator gen(*seed);
        ASSERT_TRUE(gen.profiled());
        Rng rng(s);
        auto programs = gen.generateAll(rng, /*capPerKind=*/4);
        for (const auto &ub : programs) {
            generated++;
            per_kind[static_cast<size_t>(ub.kind)]++;
            valid += validateUBProgram(ub) ? 1 : 0;
        }
    }
    ASSERT_GT(generated, 40u);
    // Validity: most generated programs actually trigger their UB.
    EXPECT_GT(valid * 100, generated * 60)
        << valid << "/" << generated;
    // Kind diversity: at least 6 of the 9 kinds appear.
    int kinds_seen = 0;
    for (size_t k = 0; k < kNumUBKinds; k++)
        kinds_seen += per_kind[k] > 0 ? 1 : 0;
    EXPECT_GE(kinds_seen, 6);
}

/** "Only one UB in every generated program" (§3.2): the ground-truth
 *  checker sees exactly the injected kind, and seeds stay clean. */
TEST(UBGen, SeedRemainsValidAfterGenerationSetup)
{
    gen::GeneratorConfig cfg;
    cfg.seed = 5;
    auto seed = gen::generateProgram(cfg);
    std::string before = ast::programText(*seed);
    UBGenerator gen(*seed);
    Rng rng(1);
    auto programs = gen.generateAll(rng, 2);
    // The seed itself is untouched by matching/profiling/generation.
    EXPECT_EQ(ast::programText(*seed), before);
    for (const auto &ub : programs)
        EXPECT_NE(ast::programText(*ub.program), before);
}

} // namespace
} // namespace ubfuzz::ubgen
