/**
 * @file
 * The campaign serializer's contract: round trips are exact (the
 * deserialized struct equals the original, every field), the byte
 * format is pinned (golden bytes — a layout change must bump
 * kSerializeFormatVersion and these tests together), and torn input is
 * detected at every truncation offset instead of read out of bounds.
 */

#include <gtest/gtest.h>

#include "fuzzer/fuzzer.h"
#include "harden/harden.h"
#include "ir/ir.h"
#include "support/serialize.h"

namespace ubfuzz {
namespace {

using support::ByteReader;
using support::ByteWriter;

/** A CampaignStats with every field populated, so round-trip equality
 *  exercises every serializer branch (maps, sets, nested records). */
fuzzer::CampaignStats
sampleStats()
{
    fuzzer::CampaignStats s;
    s.seeds = 7;
    s.unprofiledSeeds = 1;
    s.ubPrograms = 41;
    s.perKind[0] = 5;
    s.perKind[3] = 9;
    s.perKind[static_cast<size_t>(ubgen::kNumUBKinds) - 1] = 2;
    s.nonTriggering = 4;
    s.noUB = 3;
    s.discrepantPrograms = 11;
    s.oracleSelectedPrograms = 8;
    s.verdictPairs = 30;
    s.selectedPairs = 12;
    s.selectedTrueBug = 10;
    s.selectedOptimization = 2;
    s.droppedPairs = 18;
    s.droppedTrueBug = 1;
    s.bugFindingCounts[san::BugId::GccAsanStructCopyNoCheck] = 6;
    s.bugFindingCounts[san::BugId::GccUbsanNarrowedDividendNoCheck] = 2;
    s.bugFirstKind[san::BugId::GccAsanStructCopyNoCheck] =
        ubgen::UBKind::BufferOverflowArray;
    s.bugLevels[san::BugId::GccAsanStructCopyNoCheck] = {
        OptLevel::O0, OptLevel::O2};
    s.wrongReports = 1;
    s.wrongReportBugs.insert(san::BugId::GccAsanMemCopyCheckWrongLoc);
    s.invalidFindings = 2;

    fuzzer::FindingRecord f;
    f.kind = ubgen::UBKind::UseAfterFree;
    f.crashing = {Vendor::GCC, 13, OptLevel::O0, SanitizerKind::ASan,
                  harden::kDuplicateCompare};
    f.missing = {Vendor::LLVM, 0, OptLevel::O2, SanitizerKind::ASan};
    f.ubLoc = {12, 3};
    f.groundTruthBug = true;
    f.attributedBug =
        static_cast<int>(san::BugId::GccAsanStructCopyNoCheck);
    s.findings.push_back(f);
    f.kind = ubgen::UBKind::DivideByZero;
    f.groundTruthBug = false;
    f.attributedBug = -1;
    s.findings.push_back(f);

    s.compile.lowerings = 40;
    s.compile.deltaLowerings = 100;
    s.compile.deltaFallbacks = 2;
    s.compile.earlyOptRuns = 38;
    s.compile.earlyOptCacheHits = 60;
    s.compile.specializations = 200;
    s.compile.traceExecutions = 9;
    s.exec.machinesBuilt = 39;
    s.exec.resets = 500;
    s.exec.executions = 700;
    s.exec.translations = 650;
    s.exec.translationHits = 50;
    s.exec.dedupSkips = 7;
    s.exec.corpusSkips = 2;
    s.exec.corpusCapRejects = 1;
    s.exec.translationCapRejects = 3;
    s.exec.quickenedTranslations = 4;
    s.exec.fusedRecords = 90;
    s.exec.faultInjections = 16;
    s.execTimeouts = 5;
    s.timeoutExcluded = 4;
    s.harden.programs = 6;
    s.harden.faultsInjected = 16;
    s.harden.faultsDetected = 13;
    s.harden.faultsMasked = 2;
    s.harden.faultsSdc = 1;
    s.harden.driftComparisons = 120;
    s.harden.driftReports = 0;
    s.workerCrashes = 3;
    s.workerTimeouts = 1;
    s.retried = 4;
    s.quarantined = 1;

    fuzzer::CorpusKey key;
    key.textHash = 0xdeadbeefcafef00dULL;
    key.textLen = 321;
    key.kind = ubgen::UBKind::ShiftOverflow;
    key.ubLoc = {44, 7};
    s.corpusSeen[key] = 2;
    key.textHash = 1;
    key.textLen = 9;
    s.corpusSeen[key] = 1;
    s.corpusDuplicates = 1;
    return s;
}

TEST(Serialize, CorpusKeyGoldenBytes)
{
    // Hand-computed little-endian layout: u64 hash, u64 len, u8 kind,
    // i32 line, i32 offset. If this fails, the on-disk format changed
    // — bump kSerializeFormatVersion, do not repin silently.
    fuzzer::CorpusKey key;
    key.textHash = 0x1122334455667788ULL;
    key.textLen = 5;
    key.kind = ubgen::UBKind::UseAfterFree;
    key.ubLoc = {7, -1};
    ByteWriter w;
    support::serialize(w, key);
    const uint8_t expected[] = {
        0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // hash
        0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // len
        0x02,                                           // UseAfterFree
        0x07, 0x00, 0x00, 0x00,                         // line 7
        0xff, 0xff, 0xff, 0xff,                         // offset -1
    };
    ASSERT_EQ(w.size(), sizeof(expected));
    for (size_t i = 0; i < sizeof(expected); i++)
        EXPECT_EQ(static_cast<uint8_t>(w.data()[i]), expected[i])
            << "byte " << i;
}

TEST(Serialize, Fnv1aKnownVectors)
{
    // Standard 64-bit FNV-1a test vectors: the journal checksum must
    // be *this* function, not a lookalike.
    EXPECT_EQ(support::fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(support::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(support::fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Serialize, CampaignStatsGoldenDigest)
{
    // Golden pin of the full CampaignStats byte layout: exact size and
    // FNV-1a of the serialized sample. Any layout change (field order,
    // widths, new fields) lands here before it lands in a stored
    // campaign — bump kSerializeFormatVersion when repinning.
    ByteWriter w;
    support::serialize(w, sampleStats());
    // Version 4 appended the four supervision counters (worker
    // crashes/timeouts, retried, quarantined) after the harden block.
    EXPECT_EQ(support::kSerializeFormatVersion, 4u);
    EXPECT_EQ(w.size(), 650u);
    EXPECT_EQ(support::fnv1a(w.data()), 0xd84be5ff79ef3021ULL);
}

TEST(Serialize, BinaryKeyRoundTrip)
{
    ir::BinaryKey key;
    key.hash = 0xfeedface12345678ULL;
    key.len = 4096;
    ByteWriter w;
    support::serialize(w, key);
    ByteReader r(w.data());
    ir::BinaryKey back;
    ASSERT_TRUE(support::deserialize(r, back));
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(back.hash, key.hash);
    EXPECT_EQ(back.len, key.len);
}

TEST(Serialize, FindingRecordRoundTrip)
{
    fuzzer::FindingRecord rec;
    rec.kind = ubgen::UBKind::IntegerOverflow;
    rec.crashing = {Vendor::LLVM, 17, OptLevel::O3, SanitizerKind::UBSan};
    rec.missing = {Vendor::GCC, 0, OptLevel::Os, SanitizerKind::UBSan};
    rec.ubLoc = {99, -3};
    rec.groundTruthBug = true;
    rec.attributedBug = 12;
    ByteWriter w;
    support::serialize(w, rec);
    ByteReader r(w.data());
    fuzzer::FindingRecord back;
    ASSERT_TRUE(support::deserialize(r, back));
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(back, rec);
}

TEST(Serialize, CampaignStatsRoundTripIsExact)
{
    fuzzer::CampaignStats original = sampleStats();
    ByteWriter w;
    support::serialize(w, original);
    ByteReader r(w.data());
    fuzzer::CampaignStats back;
    ASSERT_TRUE(support::deserialize(r, back));
    EXPECT_EQ(r.remaining(), 0u);
    // Structural equality over every field (defaulted operator==) —
    // the store's replay guarantee rests on this being exact.
    EXPECT_EQ(back, original);
}

TEST(Serialize, EmptyStatsRoundTrip)
{
    fuzzer::CampaignStats original;
    ByteWriter w;
    support::serialize(w, original);
    ByteReader r(w.data());
    fuzzer::CampaignStats back;
    ASSERT_TRUE(support::deserialize(r, back));
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(back, original);
}

TEST(Serialize, DeserializeOverwritesPreviousContents)
{
    // Deserializing into a dirty struct must reset it, not merge.
    ByteWriter w;
    support::serialize(w, fuzzer::CampaignStats{});
    fuzzer::CampaignStats dirty = sampleStats();
    ByteReader r(w.data());
    ASSERT_TRUE(support::deserialize(r, dirty));
    EXPECT_EQ(dirty, fuzzer::CampaignStats{});
}

TEST(Serialize, TruncationDetectedAtEveryOffset)
{
    ByteWriter w;
    support::serialize(w, sampleStats());
    const std::string &bytes = w.data();
    for (size_t len = 0; len < bytes.size(); len++) {
        ByteReader r(std::string_view(bytes).substr(0, len));
        fuzzer::CampaignStats out;
        EXPECT_FALSE(support::deserialize(r, out))
            << "prefix of " << len << " bytes parsed as complete";
    }
}

TEST(Serialize, RejectsWrongKindCount)
{
    // A stats blob written with a different UB-kind taxonomy must not
    // replay into this build's fixed-size perKind array.
    ByteWriter w;
    support::serialize(w, sampleStats());
    std::string bytes = w.data();
    // The kind count is the u32 after three u64 fields.
    bytes[24] = static_cast<char>(ubgen::kNumUBKinds + 1);
    ByteReader r(bytes);
    fuzzer::CampaignStats out;
    EXPECT_FALSE(support::deserialize(r, out));
}

TEST(Serialize, ReaderIsBoundsCheckedAndSticky)
{
    ByteWriter w;
    w.u32(7);
    ByteReader r(w.data());
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.u64(), 0u); // past the end: zero, flag set
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0u); // stays failed
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, StringsRoundTripWithLengthPrefix)
{
    ByteWriter w;
    w.str("hello");
    w.str("");
    w.str(std::string_view("a\0b", 3)); // embedded NUL survives
    ByteReader r(w.data());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), std::string("a\0b", 3));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

} // namespace
} // namespace ubfuzz
