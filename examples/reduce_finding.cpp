/**
 * @file
 * Test-case reduction for a bug report (the paper's C-Reduce step,
 * §4.1): shrink a generated UB program while the sanitizer FN finding
 * persists, then print the before/after programs.
 */

#include <cstdio>

#include "ast/printer.h"
#include "compiler/compiler.h"
#include "generator/generator.h"
#include "oracle/oracle.h"
#include "reduce/reducer.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"
#include "vm/vm.h"

using namespace ubfuzz;

namespace {

/** Finding persists: GCC ASan -O0 reports and -O2 stays silent, and
 *  the crash site is still executed at -O2. */
bool
findingPersists(const ast::Program &prog)
{
    ast::PrintedProgram printed = ast::printProgram(prog);
    compiler::CompilerConfig base{Vendor::GCC, 0, OptLevel::O0,
                                  SanitizerKind::ASan};
    compiler::CompilerConfig opt{Vendor::GCC, 0, OptLevel::O2,
                                 SanitizerKind::ASan};
    auto r0 = vm::execute(compiler::compile(prog, printed, base).module);
    if (!r0.crashed())
        return false;
    vm::ExecOptions topts;
    topts.recordTrace = true;
    auto r2 = vm::execute(compiler::compile(prog, printed, opt).module,
                          topts);
    if (r2.crashed())
        return false;
    return oracle::crashSiteMapping(r0.crashSite(), r2.trace);
}

} // namespace

int
main()
{
    // Find a seed whose UB program exhibits a GCC ASan -O2 miss.
    Rng rng(123);
    for (uint64_t seed = 1; seed <= 200; seed++) {
        gen::GeneratorConfig gc;
        gc.seed = seed;
        auto prog = gen::generateProgram(gc);
        ubgen::UBGenerator gen(*prog);
        for (ubgen::UBKind kind :
             {ubgen::UBKind::BufferOverflowPointer,
              ubgen::UBKind::BufferOverflowArray,
              ubgen::UBKind::UseAfterFree}) {
            for (auto &ub : gen.generate(kind, rng, 3)) {
                if (!ubgen::validateUBProgram(ub) ||
                    !findingPersists(*ub.program))
                    continue;
                std::string before =
                    ast::programText(*ub.program);
                reduce::ReduceStats stats;
                auto reduced = reduce::reduceProgram(
                    *ub.program, findingPersists, &stats);
                std::string after = ast::programText(*reduced);
                std::printf("==== original (%zu bytes) ====\n%s\n",
                            before.size(), before.c_str());
                std::printf("==== reduced (%zu bytes; removed %d "
                            "stmts, %d globals, %d functions; %d "
                            "predicate runs) ====\n%s",
                            after.size(), stats.statementsRemoved,
                            stats.globalsRemoved,
                            stats.functionsRemoved,
                            stats.predicateRuns, after.c_str());
                return 0;
            }
        }
    }
    std::printf("no reducible finding located in the seed range\n");
    return 0;
}
