/**
 * @file
 * A gallery of generated UB programs: for each of the nine UB kinds,
 * print one validated UB program with its shadow statement — a visual
 * tour of Table 1 on real generator output.
 */

#include <cstdio>

#include "ast/printer.h"
#include "generator/generator.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"

using namespace ubfuzz;

int
main()
{
    Rng rng(99);
    bool shown[ubgen::kNumUBKinds] = {};
    for (uint64_t seed = 1; seed <= 60; seed++) {
        gen::GeneratorConfig gc;
        gc.seed = seed;
        gc.maxStmtsPerBlock = 4; // keep the gallery readable
        gc.maxGlobals = 5;
        gc.maxFunctions = 0;
        auto prog = gen::generateProgram(gc);
        ubgen::UBGenerator gen(*prog);
        for (ubgen::UBKind kind : ubgen::kAllUBKinds) {
            if (shown[static_cast<size_t>(kind)])
                continue;
            for (auto &ub : gen.generate(kind, rng, 3)) {
                if (!ubgen::validateUBProgram(ub))
                    continue;
                shown[static_cast<size_t>(kind)] = true;
                ast::PrintedProgram printed =
                    ast::printProgram(*ub.program);
                std::printf(
                    "==== %s (UB at %s; shadow: %s) ====\n%s\n",
                    ubgen::ubKindName(kind),
                    ub.expectedLoc(printed).str().c_str(),
                    ub.shadowDesc.c_str(), printed.text.c_str());
                break;
            }
        }
    }
    return 0;
}
