/**
 * @file
 * The paper's motivating example (Figure 1): a stack-buffer-overflow
 * that GCC ASan catches at -O0 but misses at -O2 — a sanitizer false
 * negative, not an optimization artifact. Replays the whole story:
 * detection, miss, crash-site mapping verdict, and the injected-bug
 * ground truth that confirms it.
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "oracle/oracle.h"
#include "vm/vm.h"

using namespace ubfuzz;

int
main()
{
    const char *source = R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)";
    auto prog = frontend::parseOrDie(source);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    std::printf("==== a.c (Figure 1) ====\n%s\n", printed.text.c_str());

    for (OptLevel level : {OptLevel::O0, OptLevel::O2}) {
        compiler::CompilerConfig cfg;
        cfg.vendor = Vendor::GCC;
        cfg.level = level;
        cfg.sanitizer = SanitizerKind::ASan;
        auto bin = compiler::compile(*prog, printed, cfg);
        auto r = vm::execute(bin.module);
        std::printf("$ %s a.c && ./a.out\n", cfg.str().c_str());
        if (r.crashed()) {
            std::printf("==ERROR: AddressSanitizer: %s in a.c:%d\n\n",
                        vm::reportKindName(r.report),
                        r.reportLoc.line);
        } else {
            std::printf("(exits silently: the overflow went "
                        "undetected)\n\n");
        }
    }

    auto diff = oracle::runDifferential(
        *prog, printed, oracle::testingMatrix(SanitizerKind::ASan));
    std::printf("==== crash-site mapping across the full matrix "
                "====\n");
    for (const auto &v : diff.verdicts) {
        std::printf("crash %-22s vs silent %-22s -> %s\n",
                    diff.outcomes[v.crashingIdx].config.str().c_str(),
                    diff.outcomes[v.nonCrashingIdx].config.str().c_str(),
                    v.isBug ? "SANITIZER BUG" : "optimization");
    }
    std::printf("\nground truth (injected defect log of gcc -O2): ");
    bool fired = false;
    for (const auto &oc : diff.outcomes) {
        if (oc.config.vendor != Vendor::GCC ||
            oc.config.level != OptLevel::O2)
            continue;
        // The differential run already compiled this configuration and
        // retained its log — no need to compile it again.
        for (const auto &f : oc.log.firings) {
            std::printf("%s ", san::bugInfo(f.id).name);
            fired = true;
        }
    }
    std::printf("%s\n", fired ? "" : "(none)");
    return 0;
}
