/**
 * @file
 * Why differential testing alone is not enough (Challenge 2): the
 * Figure 3 program also shows an -O0/-O2 report discrepancy, but the
 * optimizer legitimately deleted the UB. Crash-site mapping tells the
 * two cases apart: it flags Figure 1 and rejects Figure 3.
 */

#include <cstdio>

#include "frontend/parser.h"
#include "oracle/oracle.h"

using namespace ubfuzz;

static void
analyze(const char *title, const char *source)
{
    auto prog = frontend::parseOrDie(source);
    ast::PrintedProgram printed = ast::printProgram(*prog);
    std::printf("==== %s ====\n%s", title, printed.text.c_str());
    auto diff = oracle::runDifferential(
        *prog, printed, oracle::testingMatrix(SanitizerKind::ASan));
    if (!diff.hasDiscrepancy()) {
        std::printf("-> no discrepancy\n\n");
        return;
    }
    int bug = 0, opt = 0;
    for (const auto &v : diff.verdicts)
        (v.isBug ? bug : opt)++;
    std::printf("-> discrepancy found; crash-site mapping: %d pair(s) "
                "classified SANITIZER BUG, %d classified "
                "optimization-caused\n\n",
                bug, opt);
}

int
main()
{
    // Figure 1: real FN bug — the crash site survives optimization.
    analyze("Figure 1: a sanitizer FN bug", R"(struct a {
    int x;
};
struct a b[2];
struct a *c = &b[0];
struct a *d = &b[0];
int k = 0;
int main(void) {
    *c = b[0];
    k = 2;
    *c = *(d + k);
    return c->x;
}
)");

    // Figure 3: dead OOB store — DSE deletes the UB before the
    // sanitizer pass, and the crash site is gone from the -O2 binary.
    analyze("Figure 3: UB optimized away (not a bug)", R"(int main(void) {
    int d[2];
    int i = 2;
    d[i] = 1;
    return 0;
}
)");
    return 0;
}
