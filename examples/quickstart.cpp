/**
 * @file
 * Quickstart: the complete UBfuzz pipeline on one seed program.
 *
 *   1. generate a valid seed (the Csmith stand-in)
 *   2. derive UB programs via shadow statement insertion (UBGen)
 *   3. differentially test the sanitizer matrix
 *   4. classify discrepancies with crash-site mapping
 *
 * Build & run:  ./build/examples/quickstart [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "ast/printer.h"
#include "generator/generator.h"
#include "oracle/oracle.h"
#include "support/rng.h"
#include "ubgen/ubgen.h"

using namespace ubfuzz;

int
main(int argc, char **argv)
{
    uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

    // 1. A valid, UB-free seed program.
    gen::GeneratorConfig gc;
    gc.seed = seed;
    auto program = gen::generateProgram(gc);
    std::printf("==== seed program (seed %llu) ====\n%s\n",
                static_cast<unsigned long long>(seed),
                ast::programText(*program).c_str());

    // 2. UB programs for every kind (Algorithm 1).
    ubgen::UBGenerator gen(*program);
    Rng rng(seed);
    auto ub_programs = gen.generateAll(rng, /*capPerKind=*/2);
    std::printf("==== UBGen produced %zu UB programs ====\n",
                ub_programs.size());

    for (const auto &ub : ub_programs) {
        if (!ubgen::validateUBProgram(ub))
            continue;
        ast::PrintedProgram printed = ast::printProgram(*ub.program);
        SourceLoc loc = ub.expectedLoc(printed);
        std::printf("\n--- %s at %s  [shadow: %s] ---\n",
                    ubgen::ubKindName(ub.kind), loc.str().c_str(),
                    ub.shadowDesc.c_str());

        // 3+4. Differential testing with crash-site mapping.
        for (SanitizerKind sani : ubgen::sanitizersFor(ub.kind)) {
            auto diff = oracle::runDifferential(
                *ub.program, printed, oracle::testingMatrix(sani));
            int crash = 0, miss = 0, bug_verdicts = 0;
            for (const auto &oc : diff.outcomes)
                (oc.result.crashed() ? crash : miss)++;
            for (const auto &v : diff.verdicts)
                bug_verdicts += v.isBug ? 1 : 0;
            std::printf("  %-6s: %d report / %d silent; oracle "
                        "flagged %d pair(s) as sanitizer bugs\n",
                        sanitizerName(sani), crash, miss,
                        bug_verdicts);
        }
    }
    return 0;
}
