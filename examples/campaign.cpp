/**
 * @file
 * A miniature fuzzing campaign from the command line:
 *
 *   ./build/examples/campaign [numSeeds] [source]
 *
 * where source is one of: ubfuzz (default), music, nosafe, juliet.
 * Prints the campaign statistics and the injected bugs it pinned.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fuzzer/fuzzer.h"

using namespace ubfuzz;

int
main(int argc, char **argv)
{
    fuzzer::CampaignConfig cfg;
    cfg.seed = 1;
    cfg.numSeeds = argc > 1 ? std::atoi(argv[1]) : 25;
    cfg.capPerKind = 3;
    if (argc > 2) {
        if (!std::strcmp(argv[2], "music"))
            cfg.source = fuzzer::SourceMode::Music;
        else if (!std::strcmp(argv[2], "nosafe"))
            cfg.source = fuzzer::SourceMode::CsmithNoSafe;
        else if (!std::strcmp(argv[2], "juliet"))
            cfg.source = fuzzer::SourceMode::Juliet;
    }

    std::printf("campaign: %d seeds, source=%s\n", cfg.numSeeds,
                fuzzer::sourceModeName(cfg.source));
    fuzzer::CampaignStats stats = fuzzer::runCampaign(cfg);

    std::printf("\nUB programs tested:       %zu\n", stats.ubPrograms);
    std::printf("programs without UB:      %zu\n", stats.noUB);
    std::printf("non-triggering (skipped): %zu\n",
                stats.nonTriggering);
    std::printf("per kind:\n");
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++) {
        if (stats.perKind[k]) {
            std::printf("  %-24s %zu\n",
                        ubgen::ubKindName(
                            static_cast<ubgen::UBKind>(k)),
                        stats.perKind[k]);
        }
    }
    std::printf("discrepant programs:      %zu\n",
                stats.discrepantPrograms);
    std::printf("oracle-selected programs: %zu\n",
                stats.oracleSelectedPrograms);
    std::printf("distinct bugs found:      %zu\n",
                stats.distinctBugsFound());
    for (const auto &[id, n] : stats.bugFindingCounts) {
        const san::BugInfo &b = san::bugInfo(id);
        std::printf("  [%s/%s] %-44s %5zu findings\n",
                    vendorName(b.vendor), sanitizerName(b.sanitizer),
                    b.name, n);
    }
    for (san::BugId id : stats.wrongReportBugs)
        std::printf("  [wrong-report] %s\n", san::bugInfo(id).name);
    return 0;
}
