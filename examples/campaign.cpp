/**
 * @file
 * A miniature fuzzing campaign from the command line:
 *
 *   ./build/examples/campaign [numSeeds] [source] [--jobs N]
 *                             [--step-limit N]
 *
 * where source is one of: ubfuzz (default), music, nosafe, juliet.
 * --jobs shards the seeds over a worker pool (0 = all hardware
 * threads) without changing the results; --step-limit bounds every
 * differential execution (default 1000000 steps). Prints the campaign
 * statistics and the injected bugs it pinned.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fuzzer/orchestrator.h"
#include "support/parse_num.h"

using namespace ubfuzz;

namespace {

/**
 * Strict flag parsing via support::parseInt: "4O0" aborts instead of
 * becoming 4, 99999999999 aborts instead of truncating through the
 * int cast, and each flag states the smallest value it accepts
 * (seeds need at least one; --jobs 0 means "all hardware threads",
 * so negatives are rejected but zero is not).
 */
int
parseIntArg(const char *what, const char *text, int min)
{
    auto v = support::parseInt(text, min);
    if (!v) {
        std::fprintf(stderr, "%s: invalid number '%s' (want an integer >= %d)\n",
                     what, text, min);
        std::exit(2);
    }
    return *v;
}

/** Same strict policy for 64-bit values: a step limit of zero would
 *  run nothing, so the minimum is one. */
uint64_t
parseU64Arg(const char *what, const char *text)
{
    auto v = support::parseUint64(text, 1);
    if (!v) {
        std::fprintf(stderr, "%s: invalid number '%s'\n", what, text);
        std::exit(2);
    }
    return *v;
}

} // namespace

int
main(int argc, char **argv)
{
    fuzzer::CampaignConfig cfg;
    cfg.seed = 1;
    cfg.numSeeds = 25;
    cfg.capPerKind = 3;
    int positional = 0;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--jobs") || !std::strcmp(argv[i], "-j")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--jobs requires a value\n");
                return 2;
            }
            cfg.jobs = parseIntArg("--jobs", argv[++i], 0);
        } else if (!std::strcmp(argv[i], "--step-limit")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--step-limit requires a value\n");
                return 2;
            }
            cfg.stepLimit = parseU64Arg("--step-limit", argv[++i]);
        } else if (positional == 0) {
            cfg.numSeeds = parseIntArg("numSeeds", argv[i], 1);
            positional++;
        } else if (positional == 1) {
            if (!std::strcmp(argv[i], "music"))
                cfg.source = fuzzer::SourceMode::Music;
            else if (!std::strcmp(argv[i], "nosafe"))
                cfg.source = fuzzer::SourceMode::CsmithNoSafe;
            else if (!std::strcmp(argv[i], "juliet"))
                cfg.source = fuzzer::SourceMode::Juliet;
            positional++;
        }
    }

    std::printf("campaign: %d seeds, source=%s, jobs=%d, step limit %llu\n",
                cfg.numSeeds, fuzzer::sourceModeName(cfg.source),
                fuzzer::resolveJobs(cfg.jobs),
                static_cast<unsigned long long>(cfg.stepLimit));
    fuzzer::CampaignStats stats = fuzzer::runCampaign(cfg);

    std::printf("\nUB programs tested:       %zu\n", stats.ubPrograms);
    std::printf("programs without UB:      %zu\n", stats.noUB);
    std::printf("non-triggering (skipped): %zu\n",
                stats.nonTriggering);
    std::printf("per kind:\n");
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++) {
        if (stats.perKind[k]) {
            std::printf("  %-24s %zu\n",
                        ubgen::ubKindName(
                            static_cast<ubgen::UBKind>(k)),
                        stats.perKind[k]);
        }
    }
    std::printf("discrepant programs:      %zu\n",
                stats.discrepantPrograms);
    std::printf("oracle-selected programs: %zu\n",
                stats.oracleSelectedPrograms);
    std::printf("exec timeouts:            %zu (excluded from "
                "pairing: %zu)\n",
                stats.execTimeouts, stats.timeoutExcluded);
    std::printf("distinct bugs found:      %zu\n",
                stats.distinctBugsFound());
    for (const auto &[id, n] : stats.bugFindingCounts) {
        const san::BugInfo &b = san::bugInfo(id);
        std::printf("  [%s/%s] %-44s %5zu findings\n",
                    vendorName(b.vendor), sanitizerName(b.sanitizer),
                    b.name, n);
    }
    for (san::BugId id : stats.wrongReportBugs)
        std::printf("  [wrong-report] %s\n", san::bugInfo(id).name);
    return 0;
}
