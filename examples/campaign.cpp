/**
 * @file
 * The campaign service from the command line:
 *
 *   ./build/examples/campaign [numSeeds] [source] [--jobs N]
 *       [--step-limit N] [--seed S] [--cap-per-kind N]
 *       [--mode M] [--fault-rate N] [--harden-passes dup,sig]
 *       [--store DIR] [--resume] [--shard i/N] [--max-units K]
 *       [--serve] [--isolate] [--unit-timeout MS] [--retries N]
 *       [--inject crash:U:A | hang:U:A | torn:U:A:BYTES]
 *   ./build/examples/campaign merge --store DIR
 *
 * where source (equivalently `--mode`) is one of: ubfuzz (default),
 * music, nosafe, juliet, harden. Harden mode runs the standard ubfuzz
 * campaign (same finding digest) plus the hardening differential
 * oracle: `--fault-rate` bit flips per hardened clean seed,
 * `--harden-passes` selecting the compiled-in families.
 *
 * A plain invocation runs one in-memory campaign. `--store DIR`
 * journals every completed unit to DIR so the campaign survives its
 * process: kill it mid-run, rerun with `--resume`, and the final
 * stats and finding digest are bit-identical to an uninterrupted run.
 * `--shard i/N` runs only every N-th unit (1-based; launch N
 * processes with the same --store and fold their journals with the
 * `merge` subcommand). `--max-units K` pauses after K fresh units —
 * the deterministic stand-in for `kill` that the CI crash/resume
 * smoke uses (exit code 3 marks a paused, resumable campaign).
 * `--serve` streams findings as they dedup, one line per new finding,
 * in unit order.
 *
 * `--isolate` runs every unit in a forked, supervised worker process
 * (fuzzer/supervisor): `--unit-timeout MS` SIGKILLs a worker past its
 * wall-clock deadline, crashes/hangs/torn results retry with backoff
 * up to `--retries` times, and a unit that exhausts its retries is
 * quarantined — the campaign completes without it. Crash-free results
 * are bit-identical to a non-isolated run. `--inject` forces a
 * deterministic worker fault on unit U's first A attempts (A = -1 for
 * all; torn also takes the byte offset to cut the result frame at) —
 * the CI smoke's stand-in for a genuinely misbehaving unit.
 *
 * SIGINT/SIGTERM pause gracefully: live workers are killed, everything
 * already folded stays journaled, and the exit code is 3 — rerun with
 * `--resume` to continue.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include "fuzzer/orchestrator.h"
#include "harden/harden.h"
#include "support/parse_num.h"

using namespace ubfuzz;

namespace {

/** Exit code for a paused (incomplete but resumable) campaign. */
constexpr int kExitPaused = 3;

/** Flipped by SIGINT/SIGTERM; the service checks it between units and
 *  inside the supervisor's watch loop (killing live workers), so a
 *  Ctrl-C flushes the journal at the fold frontier instead of dying
 *  mid-append. */
std::atomic<bool> g_stop{false};

extern "C" void
onStopSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

/**
 * Strict flag parsing via support::parseInt: "4O0" aborts instead of
 * becoming 4, 99999999999 aborts instead of truncating through the
 * int cast, and each flag states the smallest value it accepts
 * (seeds need at least one; --jobs 0 means "all hardware threads",
 * so negatives are rejected but zero is not).
 */
int
parseIntArg(const char *what, const char *text, int min)
{
    auto v = support::parseInt(text, min);
    if (!v) {
        std::fprintf(stderr, "%s: invalid number '%s' (want an integer >= %d)\n",
                     what, text, min);
        std::exit(2);
    }
    return *v;
}

/** Same strict policy for 64-bit values (seed may be any uint64). */
uint64_t
parseU64Arg(const char *what, const char *text, uint64_t min)
{
    auto v = support::parseUint64(text, min);
    if (!v) {
        std::fprintf(stderr, "%s: invalid number '%s'\n", what, text);
        std::exit(2);
    }
    return *v;
}

const char *
requireValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

void
printStats(const fuzzer::CampaignStats &stats)
{
    std::printf("\nUB programs tested:       %zu\n", stats.ubPrograms);
    std::printf("programs without UB:      %zu\n", stats.noUB);
    std::printf("non-triggering (skipped): %zu\n",
                stats.nonTriggering);
    std::printf("per kind:\n");
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++) {
        if (stats.perKind[k]) {
            std::printf("  %-24s %zu\n",
                        ubgen::ubKindName(
                            static_cast<ubgen::UBKind>(k)),
                        stats.perKind[k]);
        }
    }
    std::printf("discrepant programs:      %zu\n",
                stats.discrepantPrograms);
    std::printf("oracle-selected programs: %zu\n",
                stats.oracleSelectedPrograms);
    std::printf("exec timeouts:            %zu (excluded from "
                "pairing: %zu)\n",
                stats.execTimeouts, stats.timeoutExcluded);
    std::printf("distinct bugs found:      %zu\n",
                stats.distinctBugsFound());
    for (const auto &[id, n] : stats.bugFindingCounts) {
        const san::BugInfo &b = san::bugInfo(id);
        std::printf("  [%s/%s] %-44s %5zu findings\n",
                    vendorName(b.vendor), sanitizerName(b.sanitizer),
                    b.name, n);
    }
    for (san::BugId id : stats.wrongReportBugs)
        std::printf("  [wrong-report] %s\n", san::bugInfo(id).name);
    if (stats.harden.programs || stats.harden.driftComparisons) {
        const fuzzer::HardenStats &h = stats.harden;
        std::printf("hardened programs:        %zu\n", h.programs);
        std::printf("drift comparisons:        %zu (drift reports: "
                    "%zu)\n",
                    h.driftComparisons, h.driftReports);
        std::printf("faults injected:          %zu (detected %zu, "
                    "masked %zu, sdc %zu)\n",
                    h.faultsInjected, h.faultsDetected, h.faultsMasked,
                    h.faultsSdc);
        size_t observable = h.faultsDetected + h.faultsSdc;
        if (observable) {
            std::printf("fault detection rate:     %zu%%\n",
                        h.faultsDetected * 100 / observable);
        }
    }
    std::printf("worker crashes:           %zu\n", stats.workerCrashes);
    std::printf("worker timeouts:          %zu\n", stats.workerTimeouts);
    std::printf("retried attempts:         %zu\n", stats.retried);
    std::printf("quarantined units:        %zu\n", stats.quarantined);
    std::printf("finding digest:           %016llx\n",
                static_cast<unsigned long long>(
                    fuzzer::findingsDigest(stats)));
}

/** `campaign merge --store DIR`: fold a completed campaign's shard
 *  journals into one result without re-running anything. */
int
runMerge(int argc, char **argv)
{
    std::string dir;
    for (int i = 2; i < argc; i++) {
        if (!std::strcmp(argv[i], "--store")) {
            dir = requireValue(argc, argv, i);
        } else {
            std::fprintf(stderr, "merge: unknown argument '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    if (dir.empty()) {
        std::fprintf(stderr, "merge requires --store DIR\n");
        return 2;
    }
    campaign::MergeResult merged = campaign::mergeStore(dir);
    if (!merged.ok) {
        std::fprintf(stderr, "merge: %s\n", merged.error.c_str());
        return 1;
    }
    std::printf("merged %zu units from %d shard journal(s) in %s\n",
                merged.unitsMerged, merged.shardCount, dir.c_str());
    std::printf("campaign seed: %llu, config hash %016llx\n",
                static_cast<unsigned long long>(merged.campaignSeed),
                static_cast<unsigned long long>(merged.configHash));
    printStats(merged.stats);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && !std::strcmp(argv[1], "merge"))
        return runMerge(argc, argv);

    fuzzer::CampaignConfig cfg;
    cfg.seed = 1;
    cfg.numSeeds = 25;
    cfg.capPerKind = 3;

    std::string storeDir;
    bool resume = false;
    bool serve = false;
    const char *sawSupervisionFlag = nullptr;
    campaign::ShardSpec shard;
    int maxUnits = -1;
    int positional = 0;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--jobs") || !std::strcmp(argv[i], "-j")) {
            cfg.jobs = parseIntArg("--jobs", requireValue(argc, argv, i), 0);
        } else if (!std::strcmp(argv[i], "--step-limit")) {
            // A step limit of zero would run nothing, so the minimum
            // is one.
            cfg.stepLimit =
                parseU64Arg("--step-limit", requireValue(argc, argv, i), 1);
        } else if (!std::strcmp(argv[i], "--seed")) {
            cfg.seed =
                parseU64Arg("--seed", requireValue(argc, argv, i), 0);
        } else if (!std::strcmp(argv[i], "--cap-per-kind")) {
            cfg.capPerKind = static_cast<size_t>(parseIntArg(
                "--cap-per-kind", requireValue(argc, argv, i), 1));
        } else if (!std::strcmp(argv[i], "--mode")) {
            const char *text = requireValue(argc, argv, i);
            auto mode = fuzzer::parseSourceMode(text);
            if (!mode) {
                std::fprintf(stderr,
                             "--mode: unknown mode '%s' (want ubfuzz, "
                             "music, nosafe, juliet, or harden)\n",
                             text);
                return 2;
            }
            cfg.source = *mode;
        } else if (!std::strcmp(argv[i], "--fault-rate")) {
            cfg.faultsPerProgram = parseIntArg(
                "--fault-rate", requireValue(argc, argv, i), 1);
        } else if (!std::strcmp(argv[i], "--harden-passes")) {
            const char *text = requireValue(argc, argv, i);
            auto mask = harden::parseMask(text);
            if (!mask) {
                std::fprintf(stderr,
                             "--harden-passes: invalid list '%s' (want "
                             "a comma-separated subset of dup,sig)\n",
                             text);
                return 2;
            }
            cfg.hardenPasses = *mask;
        } else if (!std::strcmp(argv[i], "--store")) {
            storeDir = requireValue(argc, argv, i);
        } else if (!std::strcmp(argv[i], "--resume")) {
            resume = true;
        } else if (!std::strcmp(argv[i], "--serve")) {
            serve = true;
        } else if (!std::strcmp(argv[i], "--shard")) {
            const char *text = requireValue(argc, argv, i);
            auto spec = support::parseShard(text);
            if (!spec) {
                std::fprintf(stderr,
                             "--shard: invalid spec '%s' (want i/N "
                             "with 1 <= i <= N, e.g. 2/4)\n",
                             text);
                return 2;
            }
            shard.index = spec->first;
            shard.count = spec->second;
        } else if (!std::strcmp(argv[i], "--max-units")) {
            maxUnits =
                parseIntArg("--max-units", requireValue(argc, argv, i), 0);
        } else if (!std::strcmp(argv[i], "--isolate")) {
            cfg.isolate = true;
        } else if (!std::strcmp(argv[i], "--unit-timeout")) {
            // A zero deadline would kill every worker on arrival, so
            // the minimum is one millisecond.
            cfg.unitTimeoutMs = parseU64Arg(
                "--unit-timeout", requireValue(argc, argv, i), 1);
            sawSupervisionFlag = "--unit-timeout";
        } else if (!std::strcmp(argv[i], "--retries")) {
            cfg.retries =
                parseIntArg("--retries", requireValue(argc, argv, i), 0);
            sawSupervisionFlag = "--retries";
        } else if (!std::strcmp(argv[i], "--inject")) {
            const char *text = requireValue(argc, argv, i);
            auto inj = fuzzer::parseFailureInjection(text);
            if (!inj) {
                std::fprintf(stderr,
                             "--inject: invalid spec '%s' (want "
                             "crash:UNIT:ATTEMPTS, hang:UNIT:ATTEMPTS, "
                             "or torn:UNIT:ATTEMPTS:BYTES; ATTEMPTS -1 "
                             "means every attempt)\n",
                             text);
                return 2;
            }
            cfg.failureInjection = *inj;
            sawSupervisionFlag = "--inject";
        } else if (positional == 0) {
            cfg.numSeeds = parseIntArg("numSeeds", argv[i], 1);
            positional++;
        } else if (positional == 1) {
            // Strict like --mode: an unrecognized source used to be
            // silently ignored (the campaign ran ubfuzz), now it
            // aborts.
            auto mode = fuzzer::parseSourceMode(argv[i]);
            if (!mode) {
                std::fprintf(stderr,
                             "source: unknown mode '%s' (want ubfuzz, "
                             "music, nosafe, juliet, or harden)\n",
                             argv[i]);
                return 2;
            }
            cfg.source = *mode;
            positional++;
        }
    }
    if (resume && storeDir.empty()) {
        std::fprintf(stderr, "--resume requires --store DIR\n");
        return 2;
    }
    if (sawSupervisionFlag && !cfg.isolate) {
        std::fprintf(stderr, "%s requires --isolate\n",
                     sawSupervisionFlag);
        return 2;
    }

    std::unique_ptr<campaign::CampaignStore> store;
    if (!storeDir.empty()) {
        std::string error;
        store = campaign::CampaignStore::open(
            storeDir, campaign::manifestFor(cfg, shard), resume, &error);
        if (!store) {
            std::fprintf(stderr, "--store: %s\n", error.c_str());
            return 2;
        }
    }

    std::printf("campaign: %d seeds, source=%s, jobs=%d, step limit "
                "%llu, shard %d/%d%s%s%s\n",
                cfg.numSeeds, fuzzer::sourceModeName(cfg.source),
                fuzzer::resolveJobs(cfg.jobs),
                static_cast<unsigned long long>(cfg.stepLimit),
                shard.index, shard.count,
                cfg.isolate ? ", isolated workers" : "",
                store ? ", store " : "",
                store ? storeDir.c_str() : "");

    fuzzer::ServiceOptions opts;
    opts.shard = shard;
    opts.store = store.get();
    opts.maxFreshUnits = maxUnits;
    opts.stopRequested = &g_stop;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    // Streaming mode: findings print the moment their unit folds —
    // strict unit order, so the stream is identical run to run, and a
    // replayed unit streams exactly what its live run once did.
    std::set<fuzzer::FindingRecord> seen;
    if (serve) {
        opts.onUnitFolded = [&seen](int unit,
                                    const fuzzer::CampaignStats &delta,
                                    bool replayed) {
            for (const fuzzer::FindingRecord &f : delta.findings) {
                if (!seen.insert(f).second)
                    continue;
                std::printf("finding unit=%d%s kind=%s crash=[%s] "
                            "missing=[%s] line=%d%s\n",
                            unit, replayed ? " (replayed)" : "",
                            ubgen::ubKindName(f.kind),
                            f.crashing.str().c_str(),
                            f.missing.str().c_str(), f.ubLoc.line,
                            f.groundTruthBug ? " injected-bug" : "");
            }
        };
    }

    fuzzer::ServiceResult res = fuzzer::runCampaignService(cfg, opts);

    std::printf("units: %d owned, %d replayed, %d run%s\n",
                res.unitsOwned, res.unitsReplayed, res.unitsRun,
                res.complete ? "" : " (paused)");
    printStats(res.stats);
    if (!res.complete) {
        std::printf("campaign paused%s; rerun with --resume to "
                    "continue\n",
                    g_stop.load() ? " by signal" : "");
        return kExitPaused;
    }
    return 0;
}
