#include "sanitizer/sanitizer.h"

#include <unordered_map>
#include <unordered_set>

#include "sanitizer/pass_util.h"
#include "support/coverage.h"

namespace ubfuzz::san {

using ir::BasicBlock;
using ir::Function;
using ir::Inst;
using ir::Module;
using ir::Opcode;
using ir::Value;
using ast::BinaryOp;

static ubfuzz::CovSite covRun[2] = {
    {"gcc.ubsan.run", CovKind::Function},
    {"llvm.ubsan.run", CovKind::Function}};
static ubfuzz::CovSite covArith[2] = {
    {"gcc.ubsan.arith_check", CovKind::Line},
    {"llvm.ubsan.arith_check", CovKind::Line}};
static ubfuzz::CovSite covArithWide[2] = {
    {"gcc.ubsan.arith_wide", CovKind::Branch},
    {"llvm.ubsan.arith_wide", CovKind::Branch}};
static ubfuzz::CovSite covShift[2] = {
    {"gcc.ubsan.shift_check", CovKind::Line},
    {"llvm.ubsan.shift_check", CovKind::Line}};
static ubfuzz::CovSite covDiv[2] = {
    {"gcc.ubsan.div_check", CovKind::Line},
    {"llvm.ubsan.div_check", CovKind::Line}};
static ubfuzz::CovSite covNull[2] = {
    {"gcc.ubsan.null_check", CovKind::Line},
    {"llvm.ubsan.null_check", CovKind::Line}};
static ubfuzz::CovSite covBounds[2] = {
    {"gcc.ubsan.bounds_check", CovKind::Line},
    {"llvm.ubsan.bounds_check", CovKind::Line}};
static ubfuzz::CovSite covNullNeeded[2] = {
    {"gcc.ubsan.null_needed", CovKind::Branch},
    {"llvm.ubsan.null_needed", CovKind::Branch}};

namespace {

/** Is there a sub-32-bit value in @p v's short def chain (casts,
 *  loads, and one level of arithmetic)? The buggy "shortening"
 *  reasoning treats such operands as too narrow to misbehave. */
bool
valueFromNarrow(const DefMap &defs, const Value &v, int narrowBits,
                int depth = 0)
{
    const Inst *d = defs.def(v);
    if (!d || depth > 3)
        return false;
    int bits = ast::scalarBits(d->kind);
    if (bits > 0 && bits <= narrowBits &&
        (d->op == Opcode::Load || d->op == Opcode::Cast))
        return true;
    switch (d->op) {
      case Opcode::Cast:
        return valueFromNarrow(defs, d->a, narrowBits, depth + 1);
      case Opcode::Bin:
        return valueFromNarrow(defs, d->a, narrowBits, depth + 1) ||
               valueFromNarrow(defs, d->b, narrowBits, depth + 1);
      default:
        return false;
    }
}

bool
narrowedFrom(const DefMap &defs, const Value &v)
{
    return valueFromNarrow(defs, v, 16);
}

/** Does the shift-count chain involve an 8-bit value? */
bool
countFromChar(const DefMap &defs, const Value &v)
{
    return valueFromNarrow(defs, v, 8);
}

/** The first instruction after @p idx that uses register @p reg. */
const Inst *
firstUse(const BasicBlock &bb, size_t idx, uint32_t reg)
{
    for (size_t j = idx + 1; j < bb.insts.size(); j++) {
        const Inst &inst = bb.insts[j];
        bool uses = false;
        auto check = [&](const Value &v) {
            uses |= v.isReg() && v.reg == reg;
        };
        check(inst.a);
        check(inst.b);
        check(inst.c);
        for (const Value &arg : inst.args)
            check(arg);
        if (uses)
            return &inst;
    }
    return nullptr;
}

} // namespace

void
runUbsanPass(Module &m, const SanitizerContext &ctx)
{
    int vi = ctx.bugs.vendor() == Vendor::LLVM ? 1 : 0;
    covRun[vi].hit();

    for (Function &f : m.functions) {
        for (BasicBlock &bb : f.blocks) {
            DefMap defs;
            std::vector<Inst> out;
            out.reserve(bb.insts.size() * 2);
            for (size_t idx = 0; idx < bb.insts.size(); idx++) {
                const Inst &inst = bb.insts[idx];
                switch (inst.op) {
                  case Opcode::Bin: {
                    if (!inst.flag)
                        break; // compiler-internal arithmetic
                    bool sgn = ast::scalarSigned(inst.kind);
                    if (ast::isArithOp(inst.binOp) && sgn) {
                        covArith[vi].hit();
                        covArithWide[vi].branch(
                            ast::scalarBits(inst.kind) >= 64);
                        if (ctx.bugs.active(
                                BugId::
                                    GccUbsanWidenedNarrowAddNoCheck) &&
                            (narrowedFrom(defs, inst.a) ||
                             narrowedFrom(defs, inst.b))) {
                            ctx.fire(
                                BugId::GccUbsanWidenedNarrowAddNoCheck,
                                inst.loc);
                            break;
                        }
                        if (ctx.bugs.active(
                                BugId::GccUbsanNegationNoCheck) &&
                            inst.binOp == BinaryOp::Sub &&
                            inst.a.isImm() && inst.a.imm == 0) {
                            ctx.fire(BugId::GccUbsanNegationNoCheck,
                                     inst.loc);
                            break;
                        }
                        if (ctx.bugs.active(
                                BugId::
                                    LlvmUbsanStoreMergedArithSkipped) &&
                            inst.dst) {
                            const Inst *use =
                                firstUse(bb, idx, inst.dst);
                            if (use && use->op == Opcode::Store) {
                                const Inst *ad = defs.def(use->a);
                                if (ad &&
                                    ad->op == Opcode::GlobalAddr) {
                                    ctx.fire(
                                        BugId::
                                            LlvmUbsanStoreMergedArithSkipped,
                                        inst.loc);
                                    break;
                                }
                            }
                        }
                        Inst chk;
                        chk.op = Opcode::UbsanArith;
                        chk.kind = inst.kind;
                        chk.binOp = inst.binOp;
                        if (ctx.bugs.active(BugId::LlvmUbsanMulAsAdd) &&
                            inst.binOp == BinaryOp::Mul) {
                            chk.binOp = BinaryOp::Add;
                            ctx.fire(BugId::LlvmUbsanMulAsAdd,
                                     inst.loc);
                        }
                        chk.a = inst.a;
                        chk.b = inst.b;
                        chk.loc = inst.loc;
                        out.push_back(chk);
                        break;
                    }
                    if (ast::isShiftOp(inst.binOp)) {
                        covShift[vi].hit();
                        if (ctx.bugs.active(
                                BugId::
                                    GccUbsanShiftCharCountNoCheck) &&
                            countFromChar(defs, inst.b)) {
                            ctx.fire(
                                BugId::GccUbsanShiftCharCountNoCheck,
                                inst.loc);
                            break;
                        }
                        Inst chk;
                        chk.op = Opcode::UbsanShift;
                        chk.kind = inst.kind;
                        chk.a = inst.a;
                        chk.b = inst.b;
                        chk.loc = inst.loc;
                        if (ctx.bugs.active(
                                BugId::LlvmUbsanShiftNegOnly)) {
                            chk.flag = true; // negative counts only
                            ctx.fire(BugId::LlvmUbsanShiftNegOnly,
                                     inst.loc);
                        }
                        out.push_back(chk);
                        break;
                    }
                    if (ast::isDivRemOp(inst.binOp)) {
                        covDiv[vi].hit();
                        if (ctx.bugs.active(
                                BugId::LlvmUbsanRemNoCheck) &&
                            inst.binOp == BinaryOp::Rem) {
                            ctx.fire(BugId::LlvmUbsanRemNoCheck,
                                     inst.loc);
                            break;
                        }
                        if (ctx.bugs.active(
                                BugId::
                                    GccUbsanNarrowedDividendNoCheck) &&
                            narrowedFrom(defs, inst.a)) {
                            // Figure 12b: the dividend was narrowed
                            // from a wider (boolean-ish) expression.
                            ctx.fire(
                                BugId::GccUbsanNarrowedDividendNoCheck,
                                inst.loc);
                            break;
                        }
                        Inst chk;
                        chk.op = Opcode::UbsanDiv;
                        chk.kind = inst.kind;
                        chk.a = inst.a;
                        chk.b = inst.b;
                        chk.loc = inst.loc;
                        if (ctx.bugs.active(
                                BugId::GccUbsanDivCheckWrongLoc)) {
                            chk.loc.offset = 0;
                            ctx.fire(BugId::GccUbsanDivCheckWrongLoc,
                                     inst.loc);
                        }
                        out.push_back(chk);
                        break;
                    }
                    break;
                  }
                  case Opcode::Gep: {
                    if (inst.bound == 0)
                        break;
                    covBounds[vi].hit();
                    if (ctx.bugs.active(
                            BugId::
                                LlvmUbsanSmallArrayBoundsSkipped) &&
                        inst.bound <= 4) {
                        ctx.fire(
                            BugId::LlvmUbsanSmallArrayBoundsSkipped,
                            inst.loc);
                        break;
                    }
                    Inst chk;
                    chk.op = Opcode::UbsanBounds;
                    chk.a = inst.b; // the index operand
                    chk.imm = inst.bound;
                    chk.loc = inst.loc;
                    if (ctx.bugs.active(BugId::GccUbsanBoundsOffByOne) &&
                        inst.bound >= 8) {
                        chk.imm = inst.bound + 1;
                        ctx.fire(BugId::GccUbsanBoundsOffByOne,
                                 inst.loc);
                    }
                    out.push_back(chk);
                    break;
                  }
                  case Opcode::Load:
                  case Opcode::Store: {
                    // Null checks for derefs of runtime pointers.
                    const Inst *root = addressRoot(defs, inst.a);
                    bool runtime_ptr =
                        !root || root->op == Opcode::Load ||
                        root->op == Opcode::Call ||
                        root->op == Opcode::Malloc;
                    covNullNeeded[vi].branch(runtime_ptr);
                    if (!runtime_ptr)
                        break;
                    if (ctx.bugs.active(
                            BugId::
                                LlvmUbsanCompoundAssignNullSkipped)) {
                        // Figure 12e: the pointer feeds both a load
                        // and a store (++(*p)).
                        bool load_use = false, store_use = false;
                        for (const Inst &other : bb.insts) {
                            if (!inst.a.isReg() || !other.a.isReg() ||
                                other.a.reg != inst.a.reg)
                                continue;
                            load_use |= other.op == Opcode::Load;
                            store_use |= other.op == Opcode::Store;
                        }
                        if (load_use && store_use) {
                            ctx.fire(
                                BugId::
                                    LlvmUbsanCompoundAssignNullSkipped,
                                inst.loc);
                            break;
                        }
                    }
                    covNull[vi].hit();
                    Inst chk;
                    chk.op = Opcode::UbsanNull;
                    chk.a = inst.a;
                    chk.loc = inst.loc;
                    out.push_back(chk);
                    break;
                  }
                  case Opcode::MemCopy: {
                    if (ctx.bugs.active(
                            BugId::LlvmUbsanStructPtrNullSkipped)) {
                        ctx.fire(BugId::LlvmUbsanStructPtrNullSkipped,
                                 inst.loc);
                        break;
                    }
                    covNull[vi].hit();
                    for (const Value *addr : {&inst.a, &inst.b}) {
                        const Inst *root = addressRoot(defs, *addr);
                        bool runtime_ptr =
                            !root || root->op == Opcode::Load ||
                            root->op == Opcode::Call ||
                            root->op == Opcode::Malloc;
                        if (!runtime_ptr)
                            continue;
                        Inst chk;
                        chk.op = Opcode::UbsanNull;
                        chk.a = *addr;
                        chk.loc = inst.loc;
                        out.push_back(chk);
                    }
                    break;
                  }
                  default:
                    break;
                }
                defs.note(inst);
                out.push_back(inst);
            }
            bb.insts = std::move(out);
        }
    }
}

// MSan is LLVM-only (§4.1), so its coverage sites live only in the
// llvm slice — a gcc.msan site could never be hit and would distort
// the Table 5 universe.
static ubfuzz::CovSite covMsanRun("llvm.msan.run", CovKind::Function);
static ubfuzz::CovSite covMsanBranch("llvm.msan.branch_check",
                                     CovKind::Line);

void
runMsanPass(Module &m, const SanitizerContext &ctx)
{
    covMsanRun.hit();
    m.msan.enabled = true;
    if (ctx.bugs.active(BugId::LlvmMsanSubConstDefined)) {
        // Figure 12f: the optimized propagation path treats x - const
        // as producing fully defined bits.
        m.msan.bugSubConstDefined = true;
        ctx.fire(BugId::LlvmMsanSubConstDefined);
    }
    for (Function &f : m.functions) {
        for (BasicBlock &bb : f.blocks) {
            std::vector<Inst> out;
            out.reserve(bb.insts.size() + 4);
            for (const Inst &inst : bb.insts) {
                if ((inst.op == Opcode::CondBr ||
                     inst.op == Opcode::Checksum) &&
                    inst.a.isReg()) {
                    covMsanBranch.hit();
                    Inst chk;
                    chk.op = Opcode::MsanCheck;
                    chk.a = inst.a;
                    chk.loc = inst.loc;
                    out.push_back(chk);
                }
                out.push_back(inst);
            }
            bb.insts = std::move(out);
        }
    }
}

} // namespace ubfuzz::san
