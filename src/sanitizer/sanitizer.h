/**
 * @file
 * Sanitizer instrumentation passes for the simulated compilers.
 *
 * Mirrors the paper's Figure 2 pipeline position: the passes run after
 * the early optimizer and before the late optimizer. Each pass consults
 * the ActiveBugs set (vendor + version + level gates) and records every
 * defect that influenced the output in the CompileLog — the campaign's
 * ground truth for oracle evaluation (RQ3).
 */

#ifndef UBFUZZ_SANITIZER_SANITIZER_H
#define UBFUZZ_SANITIZER_SANITIZER_H

#include "ir/ir.h"
#include "sanitizer/bug_catalog.h"
#include "support/toolchain.h"

namespace ubfuzz::san {

/** Everything a sanitizer pass needs to know about its compilation. */
struct SanitizerContext
{
    SanitizerKind kind = SanitizerKind::None;
    ActiveBugs bugs;
    CompileLog *log = nullptr;

    void
    fire(BugId id, SourceLoc loc = {}) const
    {
        if (log)
            log->fire(id, loc);
    }
};

/** AddressSanitizer: redzones, shadow checks, lifetime poisoning. */
void runAsanPass(ir::Module &m, const SanitizerContext &ctx);

/** UndefinedBehaviorSanitizer: arith/shift/div/null/bounds checks. */
void runUbsanPass(ir::Module &m, const SanitizerContext &ctx);

/** MemorySanitizer: definedness checks at branches and outputs. */
void runMsanPass(ir::Module &m, const SanitizerContext &ctx);

/**
 * The sanitizer-check optimizer (GCC's sanopt / LLVM's check
 * elimination): removes provably-redundant checks. Several injected
 * bugs (the "Incorrect Sanitizer Optimization" category) live here.
 */
void runSanOpt(ir::Module &m, const SanitizerContext &ctx);

/** Dispatch the configured sanitizer pass followed by sanopt. */
void instrument(ir::Module &m, const SanitizerContext &ctx);

} // namespace ubfuzz::san

#endif // UBFUZZ_SANITIZER_SANITIZER_H
