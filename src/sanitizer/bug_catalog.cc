#include "sanitizer/bug_catalog.h"

#include "support/diagnostics.h"

namespace ubfuzz::san {

const char *
bugCategoryName(BugCategory c)
{
    switch (c) {
      case BugCategory::NoSanitizerCheck:
        return "No Sanitizer Check";
      case BugCategory::IncorrectSanitizerOptimization:
        return "Incorrect Sanitizer Optimization";
      case BugCategory::WrongRedZoneBuffer:
        return "Wrong Red-Zone Buffer";
      case BugCategory::IncorrectSanitizerCheck:
        return "Incorrect Sanitizer Check";
      case BugCategory::IncorrectExpressionFolding:
        return "Incorrect Expression Folding/Shorten";
      case BugCategory::IncorrectOperationHandling:
        return "Incorrect Operation Handling";
      case BugCategory::WrongLineInformation:
        return "Wrong Line Information";
    }
    return "?";
}

const std::vector<BugInfo> &
bugCatalog()
{
    using V = Vendor;
    using S = SanitizerKind;
    using C = BugCategory;
    using L = OptLevel;
    static const std::vector<BugInfo> catalog = {
        // ---------------- GCC ASan (8) ----------------
        {BugId::GccAsanGlobalPtrStoreNoCheck, V::GCC, S::ASan,
         C::NoSanitizerCheck, 10, L::O1, L::O3, true, true,
         "gcc-asan-global-ptr-store-no-check",
         "stores through pointers loaded from globals are not "
         "instrumented (models Figure 12a / GCC PR106558)"},
        {BugId::GccAsanStructCopyNoCheck, V::GCC, S::ASan,
         C::NoSanitizerCheck, 5, L::O2, L::O3, true, true,
         "gcc-asan-struct-copy-no-check",
         "aggregate copies through runtime pointers skip "
         "instrumentation (models Figure 1 / GCC PR105714)"},
        {BugId::GccAsanSanOptDupAcrossFree, V::GCC, S::ASan,
         C::IncorrectSanitizerOptimization, 8, L::O1, L::O3, true, true,
         "gcc-asan-sanopt-dup-across-free",
         "redundant-check elimination treats free() as a no-op and "
         "removes the check that would catch the use-after-free"},
        {BugId::GccAsanScopePoisonLoopRemoved, V::GCC, S::ASan,
         C::IncorrectSanitizerOptimization, 9, L::O3, L::O3, true, false,
         "gcc-asan-scope-poison-loop-removed",
         "scope-end poisoning of loop-local arrays is removed when "
         "exiting the loop (models Figure 12c / GCC PR108085)"},
        {BugId::GccAsanSanOptConstGepRemoved, V::GCC, S::ASan,
         C::IncorrectSanitizerOptimization, 10, L::O2, L::O3, true,
         false, "gcc-asan-sanopt-const-gep-removed",
         "checks on constant-index element addresses are removed as "
         "'provably in bounds' without consulting the bound"},
        {BugId::GccAsanStackRedzoneMultiple32, V::GCC, S::ASan,
         C::WrongRedZoneBuffer, 5, L::O0, L::O3, true, false,
         "gcc-asan-stack-redzone-multiple-32",
         "stack arrays whose size is a multiple of 16 get an 8-byte "
         "redzone instead of 32, so overflows of 8..32 bytes escape"},
        {BugId::GccAsanWideLoadCheckSkipped, V::GCC, S::ASan,
         C::IncorrectSanitizerCheck, 11, L::Os, L::O3, true, false,
         "gcc-asan-wide-load-check-skipped",
         "8-byte loads are given a zero-width shadow check"},
        {BugId::GccAsanMemCopyCheckWrongLoc, V::GCC, S::ASan,
         C::WrongLineInformation, 12, L::O2, L::O3, true, false,
         "gcc-asan-memcopy-check-wrong-loc",
         "checks for aggregate copies carry the location of the "
         "enclosing block's first statement (wrong-report bug)"},
        // ---------------- GCC UBSan (7) ----------------
        {BugId::GccUbsanNarrowedDividendNoCheck, V::GCC, S::UBSan,
         C::IncorrectExpressionFolding, 5, L::O0, L::O3, true, true,
         "gcc-ubsan-narrowed-dividend-no-check",
         "divisions whose dividend was narrowed from a wider compare "
         "result lose their check (models Figure 12b / GCC PR109151)"},
        {BugId::GccUbsanWidenedNarrowAddNoCheck, V::GCC, S::UBSan,
         C::IncorrectExpressionFolding, 5, L::O1, L::O3, true, true,
         "gcc-ubsan-widened-narrow-add-no-check",
         "arithmetic with an operand widened from char/short is "
         "shortened past the overflow check"},
        {BugId::GccUbsanShiftCharCountNoCheck, V::GCC, S::UBSan,
         C::IncorrectExpressionFolding, 6, L::O0, L::O3, true, true,
         "gcc-ubsan-shift-char-count-no-check",
         "shift counts derived from 8-bit values are assumed valid"},
        {BugId::GccUbsanNegationNoCheck, V::GCC, S::UBSan,
         C::IncorrectExpressionFolding, 5, L::O0, L::O3, true, false,
         "gcc-ubsan-negation-no-check",
         "negation (0 - x) skips the signed-overflow check, missing "
         "-INT_MIN"},
        {BugId::GccUbsanSanOptWidenedResultRemoved, V::GCC, S::UBSan,
         C::IncorrectSanitizerOptimization, 9, L::O2, L::O3, true,
         false, "gcc-ubsan-sanopt-widened-result-removed",
         "overflow checks whose result is immediately widened are "
         "removed as if the arithmetic happened in the wider type"},
        {BugId::GccUbsanBoundsOffByOne, V::GCC, S::UBSan,
         C::IncorrectSanitizerCheck, 11, L::O1, L::O3, true, false,
         "gcc-ubsan-bounds-off-by-one",
         "array bounds checks for arrays of >= 8 elements test "
         "index <= size instead of index < size"},
        {BugId::GccUbsanDivCheckWrongLoc, V::GCC, S::UBSan,
         C::WrongLineInformation, 10, L::O2, L::O3, true, false,
         "gcc-ubsan-div-check-wrong-loc",
         "division checks report column 0 of the statement "
         "(wrong-report bug)"},
        // ---------------- LLVM ASan (6) ----------------
        {BugId::LlvmAsanParamPtrGepLoadNoCheck, V::LLVM, S::ASan,
         C::NoSanitizerCheck, 9, L::O2, L::O3, true, false,
         "llvm-asan-param-ptr-gep-load-no-check",
         "indexed loads through pointer parameters are not "
         "instrumented"},
        {BugId::LlvmAsanAdjacentStoreNoCheck, V::LLVM, S::ASan,
         C::NoSanitizerCheck, 12, L::O2, L::O3, false, false,
         "llvm-asan-adjacent-store-no-check",
         "a store into an object already checked earlier in the block "
         "is treated as covered, whatever its offset"},
        {BugId::LlvmAsanGlobalSmallArrayRedzoneSkip, V::LLVM, S::ASan,
         C::WrongRedZoneBuffer, 5, L::O0, L::O3, true, false,
         "llvm-asan-global-small-array-redzone-skip",
         "small global arrays leave their first 8 redzone bytes "
         "unpoisoned as 'padding' (models Figure 12d / LLVM #55189)"},
        {BugId::LlvmAsanSanOptSameBaseRemoved, V::LLVM, S::ASan,
         C::IncorrectSanitizerOptimization, 8, L::O1, L::O3, false,
         false, "llvm-asan-sanopt-same-base-removed",
         "checks on element addresses sharing a base with an earlier "
         "check are removed regardless of the index"},
        {BugId::LlvmAsanEscapedScopeNoPoison, V::LLVM, S::ASan,
         C::IncorrectSanitizerOptimization, 10, L::O2, L::O3, false,
         false, "llvm-asan-escaped-scope-no-poison",
         "locals whose address escapes the block are not poisoned at "
         "scope end, missing use-after-scope"},
        {BugId::LlvmAsanCharPtrBaseChecked, V::LLVM, S::ASan,
         C::IncorrectSanitizerCheck, 7, L::O1, L::O3, false, false,
         "llvm-asan-char-ptr-base-checked",
         "byte-sized accesses check the base pointer of the address "
         "computation instead of the final address"},
        // ---------------- LLVM UBSan (8) ----------------
        {BugId::LlvmUbsanCompoundAssignNullSkipped, V::LLVM, S::UBSan,
         C::IncorrectSanitizerCheck, 5, L::O0, L::O3, true, false,
         "llvm-ubsan-compound-assign-null-skipped",
         "null checks are not placed before read-modify-write "
         "dereferences (models Figure 12e / LLVM #60236)"},
        {BugId::LlvmUbsanRemNoCheck, V::LLVM, S::UBSan,
         C::IncorrectSanitizerCheck, 6, L::O1, L::O3, true, false,
         "llvm-ubsan-rem-no-check",
         "the remainder operator is not given a divide-by-zero check"},
        {BugId::LlvmUbsanShiftNegOnly, V::LLVM, S::UBSan,
         C::IncorrectSanitizerCheck, 8, L::O2, L::O3, false, false,
         "llvm-ubsan-shift-neg-only",
         "shift checks flag negative counts but not counts >= width"},
        {BugId::LlvmUbsanMulAsAdd, V::LLVM, S::UBSan,
         C::IncorrectSanitizerCheck, 9, L::Os, L::O3, false, false,
         "llvm-ubsan-mul-as-add",
         "multiplication overflow checks test addition overflow"},
        {BugId::LlvmUbsanSmallArrayBoundsSkipped, V::LLVM, S::UBSan,
         C::IncorrectSanitizerCheck, 7, L::O1, L::O3, false, false,
         "llvm-ubsan-small-array-bounds-skipped",
         "arrays of <= 4 elements skip the bounds check"},
        {BugId::LlvmUbsanStructPtrNullSkipped, V::LLVM, S::UBSan,
         C::IncorrectSanitizerCheck, 10, L::O0, L::O3, false, false,
         "llvm-ubsan-struct-ptr-null-skipped",
         "aggregate copies through pointers skip the null check"},
        {BugId::LlvmUbsanCheckBudgetDropped, V::LLVM, S::UBSan,
         C::IncorrectSanitizerOptimization, 11, L::O2, L::O3, false,
         false, "llvm-ubsan-check-budget-dropped",
         "only the first 4 arithmetic checks of a block survive the "
         "check-throttling optimization"},
        {BugId::LlvmUbsanStoreMergedArithSkipped, V::LLVM, S::UBSan,
         C::IncorrectExpressionFolding, 12, L::O2, L::O3, false, false,
         "llvm-ubsan-store-merged-arith-skipped",
         "arithmetic merged into a store to a global loses its check"},
        // ---------------- LLVM MSan (1) ----------------
        {BugId::LlvmMsanSubConstDefined, V::LLVM, S::MSan,
         C::IncorrectOperationHandling, 5, L::O1, L::O3, true, false,
         "llvm-msan-sub-const-defined",
         "subtraction with a constant operand is treated as producing "
         "a fully-defined value (models Figure 12f / LLVM #61982)"},
    };
    UBF_ASSERT(catalog.size() == kNumBugs, "catalog size mismatch");
    for (size_t i = 0; i < catalog.size(); i++) {
        UBF_ASSERT(catalog[i].id == static_cast<BugId>(i),
                   "catalog order mismatch at ", i);
    }
    return catalog;
}

const BugInfo &
bugInfo(BugId id)
{
    return bugCatalog()[static_cast<size_t>(id)];
}

} // namespace ubfuzz::san
