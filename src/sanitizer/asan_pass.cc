#include "sanitizer/sanitizer.h"

#include <unordered_set>

#include "sanitizer/pass_util.h"
#include "support/coverage.h"

namespace ubfuzz::san {

using ir::BasicBlock;
using ir::Function;
using ir::Inst;
using ir::Module;
using ir::Opcode;
using ir::Value;

// Coverage sites, one per vendor so Table 5 can slice per compiler.
static ubfuzz::CovSite covRun[2] = {
    {"gcc.asan.run", CovKind::Function},
    {"llvm.asan.run", CovKind::Function}};
static ubfuzz::CovSite covLoad[2] = {
    {"gcc.asan.instrument_load", CovKind::Line},
    {"llvm.asan.instrument_load", CovKind::Line}};
static ubfuzz::CovSite covStore[2] = {
    {"gcc.asan.instrument_store", CovKind::Line},
    {"llvm.asan.instrument_store", CovKind::Line}};
static ubfuzz::CovSite covMemCopy[2] = {
    {"gcc.asan.instrument_memcopy", CovKind::Line},
    {"llvm.asan.instrument_memcopy", CovKind::Line}};
static ubfuzz::CovSite covWide[2] = {
    {"gcc.asan.wide_access", CovKind::Branch},
    {"llvm.asan.wide_access", CovKind::Branch}};
static ubfuzz::CovSite covStackRz[2] = {
    {"gcc.asan.stack_redzone", CovKind::Line},
    {"llvm.asan.stack_redzone", CovKind::Line}};
static ubfuzz::CovSite covGlobalRz[2] = {
    {"gcc.asan.global_redzone", CovKind::Line},
    {"llvm.asan.global_redzone", CovKind::Line}};
static ubfuzz::CovSite covScope[2] = {
    {"gcc.asan.scope_poison", CovKind::Branch},
    {"llvm.asan.scope_poison", CovKind::Branch}};
static ubfuzz::CovSite covDirectSkip[2] = {
    {"gcc.asan.direct_access_skip", CovKind::Branch},
    {"llvm.asan.direct_access_skip", CovKind::Branch}};

namespace {

/**
 * Frame objects whose address is stored into a *global* (directly or
 * through a global pointer). Used by the LlvmAsanEscapedScopeNoPoison
 * defect: the buggy escape analysis concludes that locals escaping
 * into global state need no scope poisoning.
 */
std::vector<bool>
escapedFrameObjects(const Function &f)
{
    std::vector<bool> escaped(f.frame.size(), false);
    for (const BasicBlock &bb : f.blocks) {
        std::unordered_map<uint32_t, uint32_t> root;
        std::unordered_set<uint32_t> globalAddrs;
        auto rootOf = [&](const Value &v) -> int64_t {
            if (!v.isReg())
                return -1;
            auto it = root.find(v.reg);
            return it == root.end() ? int64_t{-1}
                                    : static_cast<int64_t>(it->second);
        };
        for (const Inst &inst : bb.insts) {
            switch (inst.op) {
              case Opcode::FrameAddr:
                root[inst.dst] = inst.object;
                break;
              case Opcode::GlobalAddr:
                globalAddrs.insert(inst.dst);
                break;
              case Opcode::Gep:
              case Opcode::Cast:
                if (int64_t r = rootOf(inst.a); r >= 0)
                    root[inst.dst] = static_cast<uint32_t>(r);
                if (inst.a.isReg() && globalAddrs.count(inst.a.reg))
                    globalAddrs.insert(inst.dst);
                break;
              case Opcode::Store:
                if (int64_t r = rootOf(inst.b); r >= 0) {
                    bool dest_global =
                        inst.a.isReg() && globalAddrs.count(inst.a.reg);
                    if (dest_global)
                        escaped[static_cast<size_t>(r)] = true;
                }
                break;
              default:
                break;
            }
        }
    }
    return escaped;
}

} // namespace

void
runAsanPass(Module &m, const SanitizerContext &ctx)
{
    int vi = ctx.bugs.vendor() == Vendor::LLVM ? 1 : 0;
    covRun[vi].hit();

    // Global redzones (poisoned at module load by the VM runtime).
    for (ir::GlobalObject &g : m.globals) {
        covGlobalRz[vi].hit();
        g.redzone = 32;
        if (ctx.bugs.active(BugId::LlvmAsanGlobalSmallArrayRedzoneSkip) &&
            g.size <= 32) {
            // Figure 12d: the first redzone bytes past small global
            // arrays are wrongly treated as valid padding.
            g.poisonSkip = 8;
            ctx.fire(BugId::LlvmAsanGlobalSmallArrayRedzoneSkip);
        }
    }
    m.asanGlobals = true;
    m.asanHeap = true;

    for (Function &f : m.functions) {
        // Stack redzones for source-level objects (compiler temps stay
        // plain, like spill slots in real ASan).
        for (ir::FrameObject &obj : f.frame) {
            if (!obj.declId)
                continue;
            covStackRz[vi].hit();
            obj.redzone = 32;
            if (ctx.bugs.active(
                    BugId::GccAsanStackRedzoneMultiple32) &&
                obj.size >= 16 && obj.size % 16 == 0) {
                obj.redzone = 8;
                ctx.fire(BugId::GccAsanStackRedzoneMultiple32);
            }
        }

        std::vector<bool> cyclic = cyclicBlocks(f);
        std::vector<bool> escaped = escapedFrameObjects(f);

        for (BasicBlock &bb : f.blocks) {
            DefMap defs;
            // Frame objects already store-checked in this block (for
            // the adjacent-store bug).
            std::unordered_set<uint32_t> checkedStoreObjects;
            std::vector<Inst> out;
            out.reserve(bb.insts.size() * 2);
            SourceLoc block_first_loc =
                bb.insts.empty() ? SourceLoc{} : bb.insts.front().loc;

            auto emitCheck = [&](Value addr, uint64_t size, bool write,
                                 SourceLoc loc) {
                Inst chk;
                chk.op = Opcode::AsanCheck;
                chk.a = addr;
                chk.imm = size;
                chk.flag = write;
                chk.loc = loc;
                out.push_back(chk);
            };

            for (const Inst &inst : bb.insts) {
                switch (inst.op) {
                  case Opcode::Load: {
                    covLoad[vi].hit();
                    covWide[vi].branch(inst.imm >= 8);
                    const Inst *root = addressRoot(defs, inst.a);
                    bool direct_scalar =
                        root &&
                        (root->op == Opcode::FrameAddr ||
                         root->op == Opcode::GlobalAddr) &&
                        defs.def(inst.a) == root;
                    covDirectSkip[vi].branch(direct_scalar);
                    if (direct_scalar)
                        break; // provably in-bounds direct slot access
                    const Inst *adef = defs.def(inst.a);
                    if (ctx.bugs.active(
                            BugId::LlvmAsanParamPtrGepLoadNoCheck) &&
                        adef && adef->op == Opcode::Gep &&
                        adef->b.isReg()) {
                        const Inst *base = defs.def(adef->a);
                        const Inst *baseaddr =
                            base && base->op == Opcode::Load
                                ? defs.def(base->a)
                                : nullptr;
                        if (baseaddr &&
                            baseaddr->op == Opcode::FrameAddr &&
                            baseaddr->object < f.numParams) {
                            ctx.fire(
                                BugId::LlvmAsanParamPtrGepLoadNoCheck,
                                inst.loc);
                            break;
                        }
                    }
                    uint64_t size = inst.imm;
                    Value addr = inst.a;
                    if (ctx.bugs.active(
                            BugId::GccAsanWideLoadCheckSkipped) &&
                        size == 8) {
                        // Zero-width shadow check: never fires.
                        size = 0;
                        ctx.fire(BugId::GccAsanWideLoadCheckSkipped,
                                 inst.loc);
                    }
                    if (ctx.bugs.active(
                            BugId::LlvmAsanCharPtrBaseChecked) &&
                        inst.imm == 1 && adef &&
                        adef->op == Opcode::Gep && adef->b.isReg()) {
                        addr = adef->a;
                        ctx.fire(BugId::LlvmAsanCharPtrBaseChecked,
                                 inst.loc);
                    }
                    emitCheck(addr, size, false, inst.loc);
                    break;
                  }
                  case Opcode::Store: {
                    covStore[vi].hit();
                    covWide[vi].branch(inst.imm >= 8);
                    const Inst *root = addressRoot(defs, inst.a);
                    bool direct_scalar =
                        root &&
                        (root->op == Opcode::FrameAddr ||
                         root->op == Opcode::GlobalAddr) &&
                        defs.def(inst.a) == root;
                    covDirectSkip[vi].branch(direct_scalar);
                    if (direct_scalar)
                        break;
                    const Inst *adef = defs.def(inst.a);
                    if (ctx.bugs.active(
                            BugId::GccAsanGlobalPtrStoreNoCheck) &&
                        adef) {
                        // Figure 12a: the address was loaded from a
                        // global pointer variable.
                        const Inst *chase = adef;
                        if (chase->op == Opcode::Gep)
                            chase = defs.def(chase->a);
                        if (chase && chase->op == Opcode::Load) {
                            const Inst *pdef = defs.def(chase->a);
                            if (pdef &&
                                pdef->op == Opcode::GlobalAddr) {
                                ctx.fire(
                                    BugId::GccAsanGlobalPtrStoreNoCheck,
                                    inst.loc);
                                break;
                            }
                        }
                    }
                    auto object_key = [](const Inst *r) -> uint32_t {
                        if (!r)
                            return UINT32_MAX;
                        if (r->op == Opcode::FrameAddr)
                            return r->object * 2;
                        if (r->op == Opcode::GlobalAddr)
                            return r->object * 2 + 1;
                        return UINT32_MAX;
                    };
                    uint32_t okey = object_key(root);
                    if (ctx.bugs.active(
                            BugId::LlvmAsanAdjacentStoreNoCheck) &&
                        okey != UINT32_MAX &&
                        checkedStoreObjects.count(okey)) {
                        ctx.fire(BugId::LlvmAsanAdjacentStoreNoCheck,
                                 inst.loc);
                        break;
                    }
                    if (okey != UINT32_MAX)
                        checkedStoreObjects.insert(okey);
                    Value addr = inst.a;
                    if (ctx.bugs.active(
                            BugId::LlvmAsanCharPtrBaseChecked) &&
                        inst.imm == 1 && adef &&
                        adef->op == Opcode::Gep && adef->b.isReg()) {
                        addr = adef->a;
                        ctx.fire(BugId::LlvmAsanCharPtrBaseChecked,
                                 inst.loc);
                    }
                    emitCheck(addr, inst.imm, true, inst.loc);
                    break;
                  }
                  case Opcode::MemCopy: {
                    covMemCopy[vi].hit();
                    const Inst *src_root = addressRoot(defs, inst.b);
                    const Inst *dst_root = addressRoot(defs, inst.a);
                    auto runtime_root = [](const Inst *r) {
                        return !r || r->op == Opcode::Load ||
                               r->op == Opcode::Call ||
                               r->op == Opcode::Malloc;
                    };
                    if (ctx.bugs.active(
                            BugId::GccAsanStructCopyNoCheck) &&
                        (runtime_root(src_root) ||
                         runtime_root(dst_root))) {
                        // Figure 1: aggregate copies through runtime
                        // pointers escape instrumentation entirely.
                        ctx.fire(BugId::GccAsanStructCopyNoCheck,
                                 inst.loc);
                        break;
                    }
                    SourceLoc loc = inst.loc;
                    if (ctx.bugs.active(
                            BugId::GccAsanMemCopyCheckWrongLoc)) {
                        loc = block_first_loc;
                        ctx.fire(BugId::GccAsanMemCopyCheckWrongLoc,
                                 inst.loc);
                    }
                    emitCheck(inst.b, inst.imm, false, loc);
                    emitCheck(inst.a, inst.imm, true, loc);
                    break;
                  }
                  case Opcode::LifetimeEnd: {
                    bool in_loop = cyclic[bb.id];
                    covScope[vi].branch(in_loop);
                    if (ctx.bugs.active(
                            BugId::GccAsanScopePoisonLoopRemoved) &&
                        in_loop && f.frame[inst.object].size > 8) {
                        // Figure 12c: the scope poisoning is removed
                        // when leaving the loop.
                        ctx.fire(BugId::GccAsanScopePoisonLoopRemoved);
                        continue; // drop the marker entirely
                    }
                    if (ctx.bugs.active(
                            BugId::LlvmAsanEscapedScopeNoPoison) &&
                        escaped[inst.object]) {
                        ctx.fire(BugId::LlvmAsanEscapedScopeNoPoison);
                        continue;
                    }
                    break;
                  }
                  default:
                    break;
                }
                defs.note(inst);
                out.push_back(inst);
            }
            bb.insts = std::move(out);
        }
    }
}

} // namespace ubfuzz::san
