/**
 * @file
 * Small analyses shared by the sanitizer passes: in-block def chains
 * and cyclic-block detection.
 */

#ifndef UBFUZZ_SANITIZER_PASS_UTIL_H
#define UBFUZZ_SANITIZER_PASS_UTIL_H

#include <unordered_map>
#include <vector>

#include "ir/ir.h"

namespace ubfuzz::san {

/** Register -> defining instruction, within one basic block. */
class DefMap
{
  public:
    void
    note(const ir::Inst &inst)
    {
        if (inst.dst)
            defs_[inst.dst] = &inst;
    }

    const ir::Inst *
    def(const ir::Value &v) const
    {
        if (!v.isReg())
            return nullptr;
        auto it = defs_.find(v.reg);
        return it == defs_.end() ? nullptr : it->second;
    }

  private:
    std::unordered_map<uint32_t, const ir::Inst *> defs_;
};

/** Blocks that can reach themselves (participate in a loop). */
std::vector<bool> cyclicBlocks(const ir::Function &f);

/**
 * Walk an address chain (Gep/Cast) to its root instruction within the
 * block; nullptr when the chain leaves the block or starts at an
 * immediate.
 */
const ir::Inst *addressRoot(const DefMap &defs, const ir::Value &addr);

} // namespace ubfuzz::san

#endif // UBFUZZ_SANITIZER_PASS_UTIL_H
