/**
 * @file
 * The injected sanitizer-bug catalog.
 *
 * The paper tests real GCC/LLVM trunk and reports 31 bugs (Table 3).
 * This repository tests *simulated* compilers, so the ground truth is a
 * catalog of 30 injected defects in the simulated sanitizer passes,
 * distributed exactly like the paper's findings:
 *
 *     GCC:  ASan 8 + UBSan 7      LLVM: ASan 6 + UBSan 8 + MSan 1
 *
 * (The paper's 31st report — GCC ASan "Invalid" in Table 3 — was an
 * oracle false alarm caused by a legitimate -O3 loop transform, Figure
 * 8. That report is *not* an injected bug here either: it emerges
 * organically from the LifetimeHoist optimization pass, and the
 * campaign reports it as an invalid finding.)
 *
 * Every bug models one of the paper's root-cause categories (Table 6)
 * and several reproduce specific case studies (Figures 1, 12a-f). Each
 * is gated by vendor, version window, and optimization level; the
 * behavioural hook lives in the corresponding pass, guarded by
 * ActiveBugs::active(id).
 */

#ifndef UBFUZZ_SANITIZER_BUG_CATALOG_H
#define UBFUZZ_SANITIZER_BUG_CATALOG_H

#include <cstdint>
#include <vector>

#include "support/source_loc.h"
#include "support/toolchain.h"

namespace ubfuzz::san {

/** Root-cause categories, Table 6. */
enum class BugCategory : uint8_t {
    NoSanitizerCheck,
    IncorrectSanitizerOptimization,
    WrongRedZoneBuffer,
    IncorrectSanitizerCheck,
    IncorrectExpressionFolding,
    IncorrectOperationHandling,
    WrongLineInformation,
};

const char *bugCategoryName(BugCategory c);

/** Identity of every injected bug. Names encode vendor + sanitizer. */
enum class BugId : uint8_t {
    // --- GCC ASan (8) ---
    GccAsanGlobalPtrStoreNoCheck,  ///< Fig 12a: store via global ptr
    GccAsanStructCopyNoCheck,      ///< Fig 1: struct copy unchecked
    GccAsanSanOptDupAcrossFree,    ///< dup-check removal crosses free()
    GccAsanScopePoisonLoopRemoved, ///< Fig 12c: loop scope unpoisoned
    GccAsanSanOptConstGepRemoved,  ///< "const index proven safe"
    GccAsanStackRedzoneMultiple32, ///< 32k-sized arrays: tiny redzone
    GccAsanWideLoadCheckSkipped,   ///< 8-byte reads uninstrumented
    GccAsanMemCopyCheckWrongLoc,   ///< wrong-report bug (line info)
    // --- GCC UBSan (7) ---
    GccUbsanNarrowedDividendNoCheck, ///< Fig 12b: widened bool / x
    GccUbsanWidenedNarrowAddNoCheck, ///< operand from narrow cast
    GccUbsanShiftCharCountNoCheck,   ///< char shift count "trusted"
    GccUbsanNegationNoCheck,         ///< 0 - x treated as safe
    GccUbsanSanOptWidenedResultRemoved, ///< result widened => "safe"
    GccUbsanBoundsOffByOne,          ///< bound+1 for arrays >= 8
    GccUbsanDivCheckWrongLoc,        ///< wrong-report bug (line info)
    // --- LLVM ASan (6) ---
    LlvmAsanParamPtrGepLoadNoCheck,  ///< loads via param pointers
    LlvmAsanAdjacentStoreNoCheck,    ///< "batched" neighbouring stores
    LlvmAsanGlobalSmallArrayRedzoneSkip, ///< Fig 12d: global padding
    LlvmAsanSanOptSameBaseRemoved,   ///< same-base checks merged
    LlvmAsanEscapedScopeNoPoison,    ///< escaped locals not poisoned
    LlvmAsanCharPtrBaseChecked,      ///< byte access checks gep base
    // --- LLVM UBSan (8) ---
    LlvmUbsanCompoundAssignNullSkipped, ///< Fig 12e: ++(*p)
    LlvmUbsanRemNoCheck,             ///< % not checked, only /
    LlvmUbsanShiftNegOnly,           ///< only negative counts flagged
    LlvmUbsanMulAsAdd,               ///< Mul check tests Add overflow
    LlvmUbsanSmallArrayBoundsSkipped,///< arrays <= 4 elide bounds
    LlvmUbsanStructPtrNullSkipped,   ///< struct copies skip null check
    LlvmUbsanCheckBudgetDropped,     ///< >8 checks per block throttled
    LlvmUbsanStoreMergedArithSkipped,///< result stored to global
    // --- LLVM MSan (1) ---
    LlvmMsanSubConstDefined,         ///< Fig 12f: x - const "defined"
    kCount,
};

constexpr size_t kNumBugs = static_cast<size_t>(BugId::kCount);

/** Static metadata of one injected bug. */
struct BugInfo
{
    BugId id;
    Vendor vendor;
    SanitizerKind sanitizer;
    BugCategory category;
    /** First simulated release containing the defect. */
    int introducedVersion;
    /** Minimum optimization level at which the defect manifests. */
    OptLevel minLevel;
    /**
     * Maximum level (inclusive); O3 means "all levels above minLevel".
     * A few bugs only exist in a band (e.g. only -Os/-O2).
     */
    OptLevel maxLevel;
    /** Did developers confirm the report? (Table 3 "Confirmed"). */
    bool confirmed;
    /** Was it fixed after our report? (Table 3 "Fixed"). */
    bool fixedAfterReport;
    const char *name;
    const char *description;
};

/** The full catalog, indexed by BugId. */
const std::vector<BugInfo> &bugCatalog();

const BugInfo &bugInfo(BugId id);

/**
 * The set of catalog bugs active for one compiler configuration.
 * Passes consult this before each (mis)behaving decision.
 */
class ActiveBugs
{
  public:
    ActiveBugs() = default;

    ActiveBugs(Vendor vendor, int version, OptLevel level)
        : vendor_(vendor), version_(version), level_(level)
    {}

    bool
    active(BugId id) const
    {
        const BugInfo &b = bugInfo(id);
        return b.vendor == vendor_ && version_ >= b.introducedVersion &&
               optAtLeast(level_, b.minLevel) &&
               optAtLeast(b.maxLevel, level_);
    }

    Vendor vendor() const { return vendor_; }
    OptLevel level() const { return level_; }

  private:
    Vendor vendor_ = Vendor::GCC;
    int version_ = 0;
    OptLevel level_ = OptLevel::O0;
};

/** One defect actually influencing a compilation, with the source
 *  location whose check it affected — the fuzzer's ground truth. */
struct BugFiring
{
    BugId id;
    SourceLoc loc;
};

/** Everything a compilation wants to tell the fuzzer about itself. */
struct CompileLog
{
    std::vector<BugFiring> firings;

    void fire(BugId id, SourceLoc loc) { firings.push_back({id, loc}); }

    /** Did any bug fire at (or affecting) this source location? */
    bool
    firedAt(SourceLoc loc) const
    {
        for (const BugFiring &f : firings)
            if (f.loc == loc)
                return true;
        return false;
    }
};

} // namespace ubfuzz::san

#endif // UBFUZZ_SANITIZER_BUG_CATALOG_H
