#include "sanitizer/pass_util.h"

namespace ubfuzz::san {

std::vector<bool>
cyclicBlocks(const ir::Function &f)
{
    size_t n = f.blocks.size();
    auto succs = [&](uint32_t b) {
        std::vector<uint32_t> out;
        const ir::Inst &term = f.blocks[b].insts.back();
        if (term.op == ir::Opcode::Br)
            out.push_back(term.targets[0]);
        if (term.op == ir::Opcode::CondBr) {
            out.push_back(term.targets[0]);
            out.push_back(term.targets[1]);
        }
        return out;
    };
    std::vector<bool> cyclic(n, false);
    for (uint32_t start = 0; start < n; start++) {
        std::vector<bool> seen(n, false);
        std::vector<uint32_t> work = succs(start);
        while (!work.empty()) {
            uint32_t b = work.back();
            work.pop_back();
            if (b == start) {
                cyclic[start] = true;
                break;
            }
            if (seen[b])
                continue;
            seen[b] = true;
            for (uint32_t s : succs(b))
                work.push_back(s);
        }
    }
    return cyclic;
}

const ir::Inst *
addressRoot(const DefMap &defs, const ir::Value &addr)
{
    const ir::Inst *cur = defs.def(addr);
    while (cur) {
        if (cur->op == ir::Opcode::Gep || cur->op == ir::Opcode::Cast) {
            const ir::Inst *next = defs.def(cur->a);
            if (!next)
                return cur;
            cur = next;
            continue;
        }
        return cur;
    }
    return nullptr;
}

} // namespace ubfuzz::san
