#include "sanitizer/sanitizer.h"

#include <unordered_map>
#include <unordered_set>

#include "passes/pass.h"
#include "sanitizer/pass_util.h"
#include "support/coverage.h"
#include "support/diagnostics.h"

namespace ubfuzz::san {

using ir::BasicBlock;
using ir::Function;
using ir::Inst;
using ir::Module;
using ir::Opcode;
using ir::Value;
using ast::BinaryOp;

static ubfuzz::CovSite covRun[2] = {
    {"gcc.sanopt.run", CovKind::Function},
    {"llvm.sanopt.run", CovKind::Function}};
static ubfuzz::CovSite covDupRemoved[2] = {
    {"gcc.sanopt.dup_check_removed", CovKind::Line},
    {"llvm.sanopt.dup_check_removed", CovKind::Line}};
static ubfuzz::CovSite covStaticSafe[2] = {
    {"gcc.sanopt.static_safe_removed", CovKind::Line},
    {"llvm.sanopt.static_safe_removed", CovKind::Line}};
static ubfuzz::CovSite covStaticKept[2] = {
    {"gcc.sanopt.static_unsafe_kept", CovKind::Branch},
    {"llvm.sanopt.static_unsafe_kept", CovKind::Branch}};

namespace {

/** Statically evaluate a check with all-immediate operands.
 *  @return 0 unknown, 1 provably safe (removable), 2 provably UB. */
int
staticCheckVerdict(const Inst &chk)
{
    switch (chk.op) {
      case Opcode::UbsanArith: {
        if (!chk.a.isImm() || !chk.b.isImm())
            return 0;
        if (!ast::scalarSigned(chk.kind))
            return 1;
        int bits = ast::scalarBits(chk.kind);
        __int128 a = static_cast<int64_t>(
            ir::canonicalValue(chk.a.imm, chk.kind));
        __int128 b = static_cast<int64_t>(
            ir::canonicalValue(chk.b.imm, chk.kind));
        __int128 r = chk.binOp == BinaryOp::Add   ? a + b
                     : chk.binOp == BinaryOp::Sub ? a - b
                                                  : a * b;
        __int128 lo = -(static_cast<__int128>(1) << (bits - 1));
        __int128 hi = (static_cast<__int128>(1) << (bits - 1)) - 1;
        return (r < lo || r > hi) ? 2 : 1;
      }
      case Opcode::UbsanShift: {
        if (!chk.b.isImm())
            return 0;
        int64_t count = static_cast<int64_t>(chk.b.imm);
        return (count < 0 || count >= ast::scalarBits(chk.kind)) ? 2 : 1;
      }
      case Opcode::UbsanDiv: {
        if (!chk.b.isImm())
            return 0;
        return ir::canonicalValue(chk.b.imm, chk.kind) == 0 ? 2 : 1;
      }
      case Opcode::UbsanBounds: {
        if (!chk.a.isImm())
            return 0;
        int64_t idx = static_cast<int64_t>(chk.a.imm);
        return (idx < 0 || static_cast<uint64_t>(idx) >= chk.imm) ? 2
                                                                  : 1;
      }
      case Opcode::UbsanNull:
        if (!chk.a.isImm())
            return 0;
        return chk.a.imm == 0 ? 2 : 1;
      default:
        return 0;
    }
}

} // namespace

void
runSanOpt(Module &m, const SanitizerContext &ctx)
{
    int vi = ctx.bugs.vendor() == Vendor::LLVM ? 1 : 0;
    covRun[vi].hit();

    for (Function &f : m.functions) {
        for (BasicBlock &bb : f.blocks) {
            DefMap defs;
            // ASan duplicate elimination state. Checked addresses are
            // keyed by pointer provenance: "the pointer loaded from
            // object X" — two derefs of the same pointer variable are
            // the same check even when loads were not CSE'd.
            std::unordered_set<uint64_t> checkedAddr;
            std::unordered_set<uint32_t> checkedGepBase;
            bool free_since_clear = false;
            int arith_checks_in_block = 0;

            // Provenance key for an address register: the variable
            // slot its pointer was loaded from, or the register id.
            auto addrKey = [&](const DefMap &d,
                               const Value &addr) -> uint64_t {
                const Inst *def = d.def(addr);
                if (def && def->op == Opcode::Load) {
                    const Inst *src = d.def(def->a);
                    if (src && src->op == Opcode::FrameAddr)
                        return 0x1000000000ULL | src->object;
                    if (src && src->op == Opcode::GlobalAddr)
                        return 0x2000000000ULL | src->object;
                }
                return addr.isReg() ? addr.reg : ~0ULL;
            };

            std::vector<Inst> out;
            out.reserve(bb.insts.size());
            for (const Inst &inst : bb.insts) {
                bool drop = false;
                switch (inst.op) {
                  case Opcode::AsanCheck: {
                    if (!inst.a.isReg())
                        break;
                    uint64_t key = (addrKey(defs, inst.a) << 8) |
                                   (inst.imm & 0xFF);
                    if (checkedAddr.count(key)) {
                        // A same-address, same-size check already ran.
                        // Correct unless a free() happened in between
                        // (the GccAsanSanOptDupAcrossFree defect keeps
                        // us from invalidating the cache there).
                        covDupRemoved[vi].hit();
                        drop = true;
                        if (free_since_clear) {
                            ctx.fire(
                                BugId::GccAsanSanOptDupAcrossFree,
                                inst.loc);
                        }
                        break;
                    }
                    const Inst *adef = defs.def(inst.a);
                    if (ctx.bugs.active(
                            BugId::GccAsanSanOptConstGepRemoved) &&
                        adef && adef->op == Opcode::Gep &&
                        adef->b.isImm()) {
                        const Inst *base = defs.def(adef->a);
                        if (base &&
                            (base->op == Opcode::FrameAddr ||
                             base->op == Opcode::GlobalAddr)) {
                            // "Constant index is provably in bounds"
                            // — without consulting the bound.
                            ctx.fire(
                                BugId::GccAsanSanOptConstGepRemoved,
                                inst.loc);
                            drop = true;
                            break;
                        }
                    }
                    if (ctx.bugs.active(
                            BugId::LlvmAsanSanOptSameBaseRemoved) &&
                        adef && adef->op == Opcode::Gep &&
                        adef->a.isReg() &&
                        checkedGepBase.count(adef->a.reg)) {
                        ctx.fire(BugId::LlvmAsanSanOptSameBaseRemoved,
                                 inst.loc);
                        drop = true;
                        break;
                    }
                    checkedAddr.insert(key);
                    if (adef && adef->op == Opcode::Gep &&
                        adef->a.isReg())
                        checkedGepBase.insert(adef->a.reg);
                    break;
                  }
                  case Opcode::UbsanArith: {
                    int verdict = staticCheckVerdict(inst);
                    covStaticKept[vi].branch(verdict == 2);
                    if (verdict == 1) {
                        covStaticSafe[vi].hit();
                        drop = true;
                        break;
                    }
                    if (ctx.bugs.active(
                            BugId::
                                GccUbsanSanOptWidenedResultRemoved)) {
                        // Find the guarded Bin (the next instruction
                        // in the input stream) and test whether its
                        // result is immediately widened.
                        // The ubsan pass emits the check directly
                        // before its Bin, so peek ahead.
                        // (Handled below via lookahead.)
                    }
                    arith_checks_in_block++;
                    if (ctx.bugs.active(
                            BugId::LlvmUbsanCheckBudgetDropped) &&
                        arith_checks_in_block > 4) {
                        ctx.fire(BugId::LlvmUbsanCheckBudgetDropped,
                                 inst.loc);
                        drop = true;
                    }
                    break;
                  }
                  case Opcode::UbsanShift:
                  case Opcode::UbsanDiv:
                  case Opcode::UbsanBounds:
                  case Opcode::UbsanNull: {
                    int verdict = staticCheckVerdict(inst);
                    covStaticKept[vi].branch(verdict == 2);
                    if (verdict == 1) {
                        covStaticSafe[vi].hit();
                        drop = true;
                        }
                    break;
                  }
                  case Opcode::Store: {
                    // A store may overwrite a pointer variable and
                    // stale the provenance-keyed cache. Type-based
                    // reasoning keeps the cache alive for narrow
                    // stores (they cannot hold a pointer).
                    const Inst *dest = defs.def(inst.a);
                    if (dest && dest->op == Opcode::FrameAddr) {
                        checkedAddr.erase(
                            ((0x1000000000ULL | dest->object) << 8) |
                            (8 & 0xFF));
                        for (int sz = 0; sz < 9; sz++)
                            checkedAddr.erase(
                                ((0x1000000000ULL | dest->object)
                                 << 8) |
                                static_cast<uint64_t>(sz));
                    } else if (dest &&
                               dest->op == Opcode::GlobalAddr) {
                        for (int sz = 0; sz < 9; sz++)
                            checkedAddr.erase(
                                ((0x2000000000ULL | dest->object)
                                 << 8) |
                                static_cast<uint64_t>(sz));
                    } else if (inst.imm >= 8) {
                        checkedAddr.clear();
                        checkedGepBase.clear();
                    }
                    break;
                  }
                  case Opcode::LifetimeStart:
                    // Unpoisoning only: previously valid checks stay
                    // valid, the cache survives.
                    break;
                  case Opcode::Free:
                  case Opcode::Call:
                  case Opcode::Malloc:
                  case Opcode::MemCopy:
                  case Opcode::LifetimeEnd: {
                    bool is_free = inst.op == Opcode::Free;
                    if (is_free &&
                        ctx.bugs.active(
                            BugId::GccAsanSanOptDupAcrossFree)) {
                        // Defect: the check cache survives free().
                        free_since_clear = true;
                    } else {
                        checkedAddr.clear();
                        checkedGepBase.clear();
                        free_since_clear = false;
                    }
                    break;
                  }
                  default:
                    break;
                }
                defs.note(inst);
                if (!drop)
                    out.push_back(inst);
            }
            bb.insts = std::move(out);

            // GccUbsanSanOptWidenedResultRemoved: remove an arith
            // check when its guarded Bin's result feeds only a
            // widening Cast.
            if (ctx.bugs.active(
                    BugId::GccUbsanSanOptWidenedResultRemoved)) {
                std::vector<Inst> &insts = bb.insts;
                std::vector<Inst> cleaned;
                cleaned.reserve(insts.size());
                for (size_t i = 0; i < insts.size(); i++) {
                    const Inst &chk = insts[i];
                    if (chk.op == Opcode::UbsanArith &&
                        i + 1 < insts.size()) {
                        const Inst &bin = insts[i + 1];
                        if (bin.op == Opcode::Bin && bin.dst) {
                            // Count uses and find the lone use.
                            const Inst *lone = nullptr;
                            int uses = 0;
                            for (size_t j = i + 2; j < insts.size();
                                 j++) {
                                const Inst &u = insts[j];
                                auto scan = [&](const Value &v) {
                                    if (v.isReg() &&
                                        v.reg == bin.dst) {
                                        uses++;
                                        lone = &u;
                                    }
                                };
                                scan(u.a);
                                scan(u.b);
                                scan(u.c);
                                for (const Value &arg : u.args)
                                    scan(arg);
                            }
                            if (uses == 1 && lone &&
                                lone->op == Opcode::Cast &&
                                ast::scalarBits(lone->kind) >
                                    ast::scalarBits(bin.kind)) {
                                ctx.fire(
                                    BugId::
                                        GccUbsanSanOptWidenedResultRemoved,
                                    chk.loc);
                                continue; // drop the check
                            }
                        }
                    }
                    cleaned.push_back(chk);
                }
                bb.insts = std::move(cleaned);
            }
        }
    }
}

void
instrument(Module &m, const SanitizerContext &ctx)
{
    // The staged compiler hands out cached modules for specialization;
    // each must be cloned first, and a module that already went through
    // a sanitizer pass can never go through one again. The panic lives
    // in ir::PassContext::noteInstrumented — the per-family-once
    // invariant shared with the hardening passes.
    switch (ctx.kind) {
      case SanitizerKind::None:
        return;
      case SanitizerKind::ASan:
        ir::PassContext::noteInstrumented(m, ctx.kind);
        runAsanPass(m, ctx);
        break;
      case SanitizerKind::UBSan:
        ir::PassContext::noteInstrumented(m, ctx.kind);
        runUbsanPass(m, ctx);
        break;
      case SanitizerKind::MSan:
        ir::PassContext::noteInstrumented(m, ctx.kind);
        runMsanPass(m, ctx);
        break;
    }
    runSanOpt(m, ctx);
}

} // namespace ubfuzz::san
