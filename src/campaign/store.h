/**
 * @file
 * The persistent campaign store: an append-only on-disk journal that
 * makes campaigns survive their process.
 *
 * A campaign is a sequence of independent units whose stats deltas
 * fold in unit order (the PR 1 merge contract). The store extends
 * that contract across process and restart boundaries by journaling
 * one record per *completed* unit; a later process replays the journal,
 * folds the recorded deltas in unit order exactly as a live run would,
 * and runs only the remaining units — so kill + `--resume` reproduces
 * the uninterrupted result bit for bit, and N shard processes each
 * journaling their own unit subset merge into the same bytes as one
 * process running everything.
 *
 * On-disk layout (one file per shard, `shard-<i>-of-<N>.journal` in
 * the store directory; all integers little-endian, see
 * support/serialize.h):
 *
 *   manifest:  magic "UBFJRNL1" | format version u32 | code version u32
 *              | campaign seed u64 | config hash u64
 *              | shard index u32 | shard count u32 | unit count u32
 *   record*:   payload length u32 | FNV-1a(payload) u64 | payload
 *   payload:   unit index u32 | record kind u8 | CampaignStats delta
 *              | memo-add count u32 | (CorpusKey, CampaignStats)*
 *
 * Record kinds: 0 = completed (the delta is the unit's full stats),
 * 1 = quarantined (the supervised unit exhausted its retries; the
 * delta carries only the supervision counters, so replay neither
 * re-runs nor double-counts the unit and the campaign still merges as
 * complete). Anything else fails the record, like a checksum would.
 *
 * Crash safety: records are framed with a length and checksum and the
 * file is flushed after every append, so a crash can only tear the
 * *final* record. Recovery parses records until the first frame that
 * is short, fails its checksum, or fails to deserialize; everything
 * from there on is dropped (the file is truncated back to the last
 * good byte) and the torn unit simply re-runs. test_store truncates a
 * journal at every byte offset of its last record to prove this.
 */

#ifndef UBFUZZ_CAMPAIGN_STORE_H
#define UBFUZZ_CAMPAIGN_STORE_H

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fuzzer/fuzzer.h"

namespace ubfuzz::campaign {

/** Journal format version (the manifest also embeds the serializer
 *  version, support::kSerializeFormatVersion, as its code version). */
inline constexpr uint32_t kJournalFormatVersion = 2;

/**
 * One process's slice of a campaign: shard `index` of `count` owns
 * every unit whose seed index is ≡ index-1 (mod count). Shards are
 * 1-based on the CLI (`--shard 2/4`); `1/1` is the whole campaign.
 */
struct ShardSpec
{
    int index = 1;
    int count = 1;

    bool
    owns(int unit) const
    {
        return unit % count == index - 1;
    }

    friend bool operator==(const ShardSpec &, const ShardSpec &) =
        default;
};

/** The journal header: everything a later process must agree on
 *  before replaying records. */
struct Manifest
{
    uint32_t formatVersion = kJournalFormatVersion;
    /** Version of the record serializer the journal was written by. */
    uint32_t codeVersion = 0;
    uint64_t campaignSeed = 0;
    /** Hash of every logical-result-relevant CampaignConfig field
     *  (configHash below); `--jobs` and the cache caps are excluded —
     *  a campaign may legally resume with a different worker count. */
    uint64_t configHash = 0;
    ShardSpec shard;
    uint32_t unitCount = 0;

    friend bool operator==(const Manifest &, const Manifest &) = default;
};

/** One journaled unit: its index, its complete stats delta, and the
 *  corpus-memo entries it contributed. */
struct UnitRecord
{
    int unit = 0;
    /** True for a quarantine record: the unit never completed; `stats`
     *  holds only supervision counters and `memoAdds` is empty. */
    bool quarantined = false;
    fuzzer::CampaignStats stats;
    std::vector<std::pair<fuzzer::CorpusKey, fuzzer::CampaignStats>>
        memoAdds;
};

/**
 * Hash of the CampaignConfig fields that determine logical results
 * (seed, unit counts, source, oracle/O0 toggles, step limit, dedup).
 * `jobs` and the cache caps only redistribute or bound work, so they
 * are deliberately excluded: a journal written with `--jobs 4` resumes
 * under `--jobs 1` and still folds to identical bytes.
 */
uint64_t configHash(const fuzzer::CampaignConfig &config);

/** The manifest a fresh journal for (@p config, @p shard) would carry. */
Manifest manifestFor(const fuzzer::CampaignConfig &config,
                     ShardSpec shard);

class CampaignStore
{
  public:
    /** Journal file name for @p shard within a store directory. */
    static std::string journalFileName(const ShardSpec &shard);

    /**
     * Open the journal for @p expected.shard under @p dir.
     *
     * `resume == false`: the journal must not already exist (refusing
     * to clobber a previous campaign is the safe default); the
     * directory is created as needed and the manifest written.
     *
     * `resume == true`: the journal must exist, its manifest must
     * equal @p expected field for field, and its records are recovered
     * — a torn tail is dropped and the file truncated back to the last
     * intact record, ready for appends.
     *
     * Returns nullptr and sets @p error on any failure.
     */
    static std::unique_ptr<CampaignStore> open(const std::string &dir,
                                               const Manifest &expected,
                                               bool resume,
                                               std::string *error);

    ~CampaignStore();
    CampaignStore(const CampaignStore &) = delete;
    CampaignStore &operator=(const CampaignStore &) = delete;

    const Manifest &manifest() const { return manifest_; }

    /** Records recovered at open (empty unless resuming); ownership
     *  moves to the caller — the orchestrator folds them in unit
     *  order and pre-populates the corpus memo from their memoAdds. */
    std::map<int, UnitRecord> takeReplayed();

    /** Bytes dropped from a torn tail during recovery (0 = clean). */
    size_t droppedTailBytes() const { return droppedTail_; }

    /** Append one completed unit and flush — thread-safe, so workers
     *  journal at completion time (journal order is irrelevant: each
     *  record carries its unit index and replay folds by index). */
    void append(const UnitRecord &rec);

  private:
    CampaignStore() = default;

    Manifest manifest_;
    std::map<int, UnitRecord> replayed_;
    size_t droppedTail_ = 0;
    std::FILE *file_ = nullptr;
    std::mutex appendMu_;
};

/**
 * Parse one journal file: manifest plus every intact record (a torn
 * tail is reported via @p droppedTailBytes, not an error; the file is
 * not modified). Returns false and sets @p error on a missing file,
 * bad magic, or corrupt manifest.
 */
bool readJournal(const std::string &path, Manifest &manifest,
                 std::map<int, UnitRecord> &records,
                 size_t *droppedTailBytes, std::string *error);

struct MergeResult
{
    bool ok = false;
    std::string error;
    fuzzer::CampaignStats stats;
    /** Agreed-on campaign identity of the merged shards. */
    uint64_t campaignSeed = 0;
    uint64_t configHash = 0;
    uint32_t unitCount = 0;
    int shardCount = 0;
    size_t unitsMerged = 0;
};

/**
 * Fold the shard journals of a completed campaign under @p dir into
 * one CampaignStats, in global unit order — the cross-process half of
 * the merge contract. Requires all N shard journals of one campaign
 * (matching seed/config hash/versions/unit count), with every unit
 * 0..unitCount-1 present exactly once; anything else is an error, so
 * a partial or mixed-up store cannot silently masquerade as a full
 * campaign.
 */
MergeResult mergeStore(const std::string &dir);

} // namespace ubfuzz::campaign

#endif // UBFUZZ_CAMPAIGN_STORE_H
