#include "campaign/store.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/diagnostics.h"
#include "support/serialize.h"

namespace ubfuzz::campaign {

namespace fs = std::filesystem;
using support::ByteReader;
using support::ByteWriter;

namespace {

/** 8-byte journal magic; the trailing '1' is a coarse format marker on
 *  top of the explicit version field. */
constexpr char kMagic[8] = {'U', 'B', 'F', 'J', 'R', 'N', 'L', '1'};

/** Frame header: payload length (u32) + FNV-1a checksum (u64). */
constexpr size_t kFrameHeaderSize = 12;

void
putManifest(ByteWriter &w, const Manifest &m)
{
    for (char c : kMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(m.formatVersion);
    w.u32(m.codeVersion);
    w.u64(m.campaignSeed);
    w.u64(m.configHash);
    w.u32(static_cast<uint32_t>(m.shard.index));
    w.u32(static_cast<uint32_t>(m.shard.count));
    w.u32(m.unitCount);
}

bool
getManifest(ByteReader &r, Manifest &m)
{
    char magic[8];
    for (char &c : magic)
        c = static_cast<char>(r.u8());
    if (!r.ok() || std::memcmp(magic, kMagic, 8) != 0)
        return false;
    m.formatVersion = r.u32();
    m.codeVersion = r.u32();
    m.campaignSeed = r.u64();
    m.configHash = r.u64();
    m.shard.index = static_cast<int>(r.u32());
    m.shard.count = static_cast<int>(r.u32());
    m.unitCount = r.u32();
    return r.ok();
}

std::string
encodeRecord(const UnitRecord &rec)
{
    ByteWriter payload;
    payload.u32(static_cast<uint32_t>(rec.unit));
    payload.u8(rec.quarantined ? 1 : 0);
    support::serialize(payload, rec.stats);
    payload.u32(static_cast<uint32_t>(rec.memoAdds.size()));
    for (const auto &[key, delta] : rec.memoAdds) {
        support::serialize(payload, key);
        support::serialize(payload, delta);
    }
    ByteWriter frame;
    frame.u32(static_cast<uint32_t>(payload.size()));
    frame.u64(support::fnv1a(payload.data()));
    return frame.data() + payload.data();
}

bool
decodePayload(std::string_view payload, UnitRecord &rec)
{
    ByteReader r(payload);
    rec.unit = static_cast<int>(r.u32());
    uint8_t kind = r.u8();
    if (kind > 1)
        return false; // unknown record kind, as fatal as a checksum miss
    rec.quarantined = kind == 1;
    if (!support::deserialize(r, rec.stats))
        return false;
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); i++) {
        fuzzer::CorpusKey key;
        fuzzer::CampaignStats delta;
        if (!support::deserialize(r, key) ||
            !support::deserialize(r, delta))
            return false;
        rec.memoAdds.emplace_back(std::move(key), std::move(delta));
    }
    // A record must consume its payload exactly; trailing garbage
    // means a framing bug, not a tear, but both are grounds to stop.
    return r.ok() && r.remaining() == 0;
}

/**
 * Parse everything after the manifest. Returns the byte offset just
 * past the last intact record; anything beyond it is a torn tail.
 * Sets @p error (and returns SIZE_MAX) only for structural corruption
 * that a tear cannot explain: duplicate or out-of-shard units.
 */
size_t
parseRecords(std::string_view bytes, size_t start, const Manifest &m,
             std::map<int, UnitRecord> &records, std::string *error)
{
    size_t good = start;
    while (good < bytes.size()) {
        std::string_view rest = bytes.substr(good);
        if (rest.size() < kFrameHeaderSize)
            break; // torn frame header
        ByteReader header(rest.substr(0, kFrameHeaderSize));
        uint32_t len = header.u32();
        uint64_t sum = header.u64();
        if (rest.size() < kFrameHeaderSize + len)
            break; // torn payload
        std::string_view payload = rest.substr(kFrameHeaderSize, len);
        if (support::fnv1a(payload) != sum)
            break; // corrupt payload (mid-frame overwrite ≅ tear)
        UnitRecord rec;
        if (!decodePayload(payload, rec))
            break;
        if (rec.unit < 0 ||
            static_cast<uint32_t>(rec.unit) >= m.unitCount ||
            !m.shard.owns(rec.unit)) {
            if (error)
                *error = "journal record for unit " +
                         std::to_string(rec.unit) +
                         " outside this shard's slice";
            return SIZE_MAX;
        }
        if (!records.emplace(rec.unit, std::move(rec)).second) {
            if (error)
                *error = "journal contains unit " +
                         std::to_string(rec.unit) + " twice";
            return SIZE_MAX;
        }
        good += kFrameHeaderSize + len;
    }
    return good;
}

bool
readFile(const std::string &path, std::string &out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out = std::move(bytes);
    return true;
}

std::string
manifestSummary(const Manifest &m)
{
    return "seed=" + std::to_string(m.campaignSeed) +
           " configHash=" + std::to_string(m.configHash) +
           " shard=" + std::to_string(m.shard.index) + "/" +
           std::to_string(m.shard.count) +
           " units=" + std::to_string(m.unitCount) +
           " format=" + std::to_string(m.formatVersion) + "." +
           std::to_string(m.codeVersion);
}

} // namespace

uint64_t
configHash(const fuzzer::CampaignConfig &config)
{
    ByteWriter w;
    w.u64(config.seed);
    w.i32(config.numSeeds);
    w.u64(config.capPerKind);
    w.i32(config.mutantsPerSeed);
    w.u8(static_cast<uint8_t>(config.source));
    w.b(config.useOracle);
    w.b(config.onlyO0);
    w.u64(config.stepLimit);
    w.b(config.corpusDedup);
    w.i32(config.faultsPerProgram);
    w.u32(config.hardenPasses);
    return support::fnv1a(w.data());
}

Manifest
manifestFor(const fuzzer::CampaignConfig &config, ShardSpec shard)
{
    Manifest m;
    m.codeVersion = support::kSerializeFormatVersion;
    m.campaignSeed = config.seed;
    m.configHash = configHash(config);
    m.shard = shard;
    m.unitCount = static_cast<uint32_t>(
        fuzzer::detail::campaignUnitCount(config));
    return m;
}

std::string
CampaignStore::journalFileName(const ShardSpec &shard)
{
    return "shard-" + std::to_string(shard.index) + "-of-" +
           std::to_string(shard.count) + ".journal";
}

std::unique_ptr<CampaignStore>
CampaignStore::open(const std::string &dir, const Manifest &expected,
                    bool resume, std::string *error)
{
    const fs::path path = fs::path(dir) / journalFileName(expected.shard);
    std::error_code ec;

    auto store = std::unique_ptr<CampaignStore>(new CampaignStore);
    store->manifest_ = expected;

    if (!resume) {
        fs::create_directories(dir, ec);
        if (fs::exists(path)) {
            if (error)
                *error = path.string() +
                         " already exists (pass --resume to continue "
                         "that campaign, or remove the store)";
            return nullptr;
        }
        store->file_ = std::fopen(path.c_str(), "wb");
        if (!store->file_) {
            if (error)
                *error = "cannot create " + path.string();
            return nullptr;
        }
        ByteWriter w;
        putManifest(w, expected);
        std::fwrite(w.data().data(), 1, w.size(), store->file_);
        std::fflush(store->file_);
        return store;
    }

    std::string bytes;
    if (!readFile(path.string(), bytes, error))
        return nullptr;
    ByteReader r(bytes);
    Manifest stored;
    if (!getManifest(r, stored)) {
        if (error)
            *error = path.string() + ": corrupt or truncated manifest";
        return nullptr;
    }
    if (!(stored == expected)) {
        if (error)
            *error = path.string() +
                     ": journal belongs to a different campaign "
                     "(stored " +
                     manifestSummary(stored) + "; expected " +
                     manifestSummary(expected) + ")";
        return nullptr;
    }
    size_t good =
        parseRecords(bytes, r.pos(), stored, store->replayed_, error);
    if (good == SIZE_MAX)
        return nullptr;
    store->droppedTail_ = bytes.size() - good;
    if (store->droppedTail_ > 0) {
        // Drop the torn tail on disk too, so the appends below land on
        // a well-formed journal.
        fs::resize_file(path, good, ec);
        if (ec) {
            if (error)
                *error = "cannot truncate torn tail of " + path.string();
            return nullptr;
        }
    }
    store->file_ = std::fopen(path.c_str(), "ab");
    if (!store->file_) {
        if (error)
            *error = "cannot reopen " + path.string() + " for append";
        return nullptr;
    }
    return store;
}

CampaignStore::~CampaignStore()
{
    if (file_)
        std::fclose(file_);
}

std::map<int, UnitRecord>
CampaignStore::takeReplayed()
{
    return std::move(replayed_);
}

void
CampaignStore::append(const UnitRecord &rec)
{
    std::string bytes = encodeRecord(rec);
    std::lock_guard<std::mutex> lock(appendMu_);
    UBF_ASSERT(file_, "append on a closed store");
    size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file_);
    UBF_ASSERT(written == bytes.size(),
               "short journal write (disk full?)");
    // Flush per record: a killed process can then only lose the unit
    // it was still computing, never one it reported complete.
    std::fflush(file_);
}

bool
readJournal(const std::string &path, Manifest &manifest,
            std::map<int, UnitRecord> &records,
            size_t *droppedTailBytes, std::string *error)
{
    std::string bytes;
    if (!readFile(path, bytes, error))
        return false;
    ByteReader r(bytes);
    if (!getManifest(r, manifest)) {
        if (error)
            *error = path + ": corrupt or truncated manifest";
        return false;
    }
    size_t good = parseRecords(bytes, r.pos(), manifest, records, error);
    if (good == SIZE_MAX)
        return false;
    if (droppedTailBytes)
        *droppedTailBytes = bytes.size() - good;
    return true;
}

MergeResult
mergeStore(const std::string &dir)
{
    MergeResult res;
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".journal")
            paths.push_back(entry.path().string());
    }
    if (ec) {
        res.error = "cannot list " + dir;
        return res;
    }
    if (paths.empty()) {
        res.error = "no shard journals in " + dir;
        return res;
    }

    // Read every shard journal; all manifests must describe the same
    // campaign, and together the shards must be exactly 1..N.
    std::map<int, UnitRecord> all;
    std::map<int, bool> shardsSeen;
    Manifest first;
    for (size_t p = 0; p < paths.size(); p++) {
        Manifest m;
        std::map<int, UnitRecord> records;
        size_t dropped = 0;
        if (!readJournal(paths[p], m, records, &dropped, &res.error))
            return res;
        if (p == 0) {
            first = m;
        } else if (m.formatVersion != first.formatVersion ||
                   m.codeVersion != first.codeVersion ||
                   m.campaignSeed != first.campaignSeed ||
                   m.configHash != first.configHash ||
                   m.unitCount != first.unitCount ||
                   m.shard.count != first.shard.count) {
            res.error = paths[p] + ": shard of a different campaign (" +
                        manifestSummary(m) + " vs " +
                        manifestSummary(first) + ")";
            return res;
        }
        if (!shardsSeen.emplace(m.shard.index, true).second) {
            res.error = "duplicate journal for shard " +
                        std::to_string(m.shard.index);
            return res;
        }
        for (auto &[unit, rec] : records) {
            if (!all.emplace(unit, std::move(rec)).second) {
                res.error = "unit " + std::to_string(unit) +
                            " recorded by more than one shard";
                return res;
            }
        }
    }
    if (static_cast<int>(shardsSeen.size()) != first.shard.count) {
        res.error = "store has " + std::to_string(shardsSeen.size()) +
                    " shard journals, campaign expects " +
                    std::to_string(first.shard.count);
        return res;
    }
    for (uint32_t u = 0; u < first.unitCount; u++) {
        if (!all.count(static_cast<int>(u))) {
            res.error = "campaign incomplete: unit " +
                        std::to_string(u) +
                        " has no journal record (resume its shard "
                        "before merging)";
            return res;
        }
    }

    // Fold in global unit order — bit-identical to one process having
    // run every unit itself (std::map iterates in increasing order).
    for (auto &[unit, rec] : all)
        fuzzer::detail::mergeCampaignStats(res.stats,
                                           std::move(rec.stats));

    std::string violation = fuzzer::statsInvariantViolation(res.stats);
    if (!violation.empty()) {
        res.error = "merged totals violate accounting: " + violation;
        return res;
    }

    res.ok = true;
    res.campaignSeed = first.campaignSeed;
    res.configHash = first.configHash;
    res.unitCount = first.unitCount;
    res.shardCount = first.shard.count;
    res.unitsMerged = all.size();
    return res;
}

} // namespace ubfuzz::campaign
