#include "ast/ast.h"

namespace ubfuzz::ast {

const char *
unaryOpSpelling(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Neg: return "-";
      case UnaryOp::BitNot: return "~";
      case UnaryOp::LogNot: return "!";
      case UnaryOp::Deref: return "*";
      case UnaryOp::AddrOf: return "&";
    }
    return "?";
}

const char *
binaryOpSpelling(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Rem: return "%";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::LAnd: return "&&";
      case BinaryOp::LOr: return "||";
    }
    return "?";
}

bool
isArithOp(BinaryOp op)
{
    return op == BinaryOp::Add || op == BinaryOp::Sub ||
           op == BinaryOp::Mul;
}

bool
isDivRemOp(BinaryOp op)
{
    return op == BinaryOp::Div || op == BinaryOp::Rem;
}

bool
isShiftOp(BinaryOp op)
{
    return op == BinaryOp::Shl || op == BinaryOp::Shr;
}

bool
isComparisonOp(BinaryOp op)
{
    return op >= BinaryOp::Lt && op <= BinaryOp::Ne;
}

bool
isLogicalOp(BinaryOp op)
{
    return op == BinaryOp::LAnd || op == BinaryOp::LOr;
}

int
binaryOpPrecedence(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Mul: case BinaryOp::Div: case BinaryOp::Rem:
        return 10;
      case BinaryOp::Add: case BinaryOp::Sub:
        return 9;
      case BinaryOp::Shl: case BinaryOp::Shr:
        return 8;
      case BinaryOp::Lt: case BinaryOp::Le:
      case BinaryOp::Gt: case BinaryOp::Ge:
        return 7;
      case BinaryOp::Eq: case BinaryOp::Ne:
        return 6;
      case BinaryOp::BitAnd:
        return 5;
      case BinaryOp::BitXor:
        return 4;
      case BinaryOp::BitOr:
        return 3;
      case BinaryOp::LAnd:
        return 2;
      case BinaryOp::LOr:
        return 1;
    }
    return 0;
}

const char *
assignOpSpelling(AssignOp op)
{
    switch (op) {
      case AssignOp::Assign: return "=";
      case AssignOp::AddAssign: return "+=";
      case AssignOp::SubAssign: return "-=";
      case AssignOp::MulAssign: return "*=";
      case AssignOp::AndAssign: return "&=";
      case AssignOp::OrAssign: return "|=";
      case AssignOp::XorAssign: return "^=";
    }
    return "?";
}

BinaryOp
assignOpBinary(AssignOp op)
{
    switch (op) {
      case AssignOp::AddAssign: return BinaryOp::Add;
      case AssignOp::SubAssign: return BinaryOp::Sub;
      case AssignOp::MulAssign: return BinaryOp::Mul;
      case AssignOp::AndAssign: return BinaryOp::BitAnd;
      case AssignOp::OrAssign: return BinaryOp::BitOr;
      case AssignOp::XorAssign: return BinaryOp::BitXor;
      default:
        UBF_PANIC("assignOpBinary on plain assignment");
    }
}

void
StructDecl::addField(FieldDecl *f)
{
    uint64_t falign = f->type()->align();
    uint64_t off = (size_ + falign - 1) / falign * falign;
    f->setOffset(off);
    size_ = off + f->type()->size();
    align_ = std::max(align_, falign);
    // Pad the struct size up to its alignment, as C does.
    size_ = (size_ + align_ - 1) / align_ * align_;
    fields_.push_back(f);
}

const FieldDecl *
StructDecl::findField(const std::string &name) const
{
    for (const FieldDecl *f : fields_)
        if (f->name() == name)
            return f;
    return nullptr;
}

Program::Program() = default;

FunctionDecl *
Program::findFunction(const std::string &name) const
{
    for (FunctionDecl *f : functions_)
        if (f->name() == name)
            return f;
    for (FunctionDecl *f : builtins_)
        if (f->name() == name)
            return f;
    return nullptr;
}

VarDecl *
Program::findGlobal(const std::string &name) const
{
    for (VarDecl *g : globals_)
        if (g->name() == name)
            return g;
    return nullptr;
}

StructDecl *
Program::findStruct(const std::string &name) const
{
    for (StructDecl *s : structs_)
        if (s->name() == name)
            return s;
    return nullptr;
}

FunctionDecl *
Program::builtin(Builtin b)
{
    for (FunctionDecl *f : builtins_)
        if (f->builtin() == b)
            return f;

    TypeTable &tt = ctx_.types();
    const Type *s64 = tt.s64();
    const Type *byte_ptr = tt.bytePtr();
    const Type *void_ty = tt.voidTy();

    auto make_fn = [&](const char *name, const Type *ret,
                       std::initializer_list<const Type *> params) {
        FunctionDecl *f = ctx_.make<FunctionDecl>(name, ret);
        int i = 0;
        for (const Type *pt : params) {
            f->addParam(ctx_.make<VarDecl>("p" + std::to_string(i++), pt,
                                           Storage::Param, nullptr));
        }
        f->setBuiltin(b);
        builtins_.push_back(f);
        return f;
    };

    switch (b) {
      case Builtin::Malloc:
        return make_fn("__malloc", byte_ptr, {s64});
      case Builtin::Free:
        return make_fn("__free", void_ty, {byte_ptr});
      case Builtin::Checksum:
        return make_fn("__checksum", void_ty, {s64});
      case Builtin::LogVal:
        return make_fn("__log_val", void_ty, {s64, s64});
      case Builtin::LogPtr:
        return make_fn("__log_ptr", void_ty, {s64, byte_ptr});
      case Builtin::LogBuf:
        return make_fn("__log_buf", void_ty, {s64, byte_ptr, s64});
      case Builtin::LogScopeEnter:
        return make_fn("__log_scope_enter", void_ty, {s64});
      case Builtin::LogScopeExit:
        return make_fn("__log_scope_exit", void_ty, {s64});
      case Builtin::None:
        break;
    }
    UBF_PANIC("unknown builtin");
}

bool
isLValue(const Expr *e)
{
    switch (e->kind()) {
      case NodeKind::VarRef:
      case NodeKind::Index:
        return true;
      case NodeKind::Unary:
        return e->as<Unary>()->op() == UnaryOp::Deref;
      case NodeKind::Member:
        return e->as<Member>()->isArrow() ||
               isLValue(e->as<Member>()->base());
      default:
        return false;
    }
}

} // namespace ubfuzz::ast
