#include "ast/ast.h"

#include <algorithm>

namespace ubfuzz::ast {

const char *
unaryOpSpelling(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Neg: return "-";
      case UnaryOp::BitNot: return "~";
      case UnaryOp::LogNot: return "!";
      case UnaryOp::Deref: return "*";
      case UnaryOp::AddrOf: return "&";
    }
    return "?";
}

const char *
binaryOpSpelling(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Rem: return "%";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::LAnd: return "&&";
      case BinaryOp::LOr: return "||";
    }
    return "?";
}

bool
isArithOp(BinaryOp op)
{
    return op == BinaryOp::Add || op == BinaryOp::Sub ||
           op == BinaryOp::Mul;
}

bool
isDivRemOp(BinaryOp op)
{
    return op == BinaryOp::Div || op == BinaryOp::Rem;
}

bool
isShiftOp(BinaryOp op)
{
    return op == BinaryOp::Shl || op == BinaryOp::Shr;
}

bool
isComparisonOp(BinaryOp op)
{
    return op >= BinaryOp::Lt && op <= BinaryOp::Ne;
}

bool
isLogicalOp(BinaryOp op)
{
    return op == BinaryOp::LAnd || op == BinaryOp::LOr;
}

int
binaryOpPrecedence(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Mul: case BinaryOp::Div: case BinaryOp::Rem:
        return 10;
      case BinaryOp::Add: case BinaryOp::Sub:
        return 9;
      case BinaryOp::Shl: case BinaryOp::Shr:
        return 8;
      case BinaryOp::Lt: case BinaryOp::Le:
      case BinaryOp::Gt: case BinaryOp::Ge:
        return 7;
      case BinaryOp::Eq: case BinaryOp::Ne:
        return 6;
      case BinaryOp::BitAnd:
        return 5;
      case BinaryOp::BitXor:
        return 4;
      case BinaryOp::BitOr:
        return 3;
      case BinaryOp::LAnd:
        return 2;
      case BinaryOp::LOr:
        return 1;
    }
    return 0;
}

const char *
assignOpSpelling(AssignOp op)
{
    switch (op) {
      case AssignOp::Assign: return "=";
      case AssignOp::AddAssign: return "+=";
      case AssignOp::SubAssign: return "-=";
      case AssignOp::MulAssign: return "*=";
      case AssignOp::AndAssign: return "&=";
      case AssignOp::OrAssign: return "|=";
      case AssignOp::XorAssign: return "^=";
    }
    return "?";
}

BinaryOp
assignOpBinary(AssignOp op)
{
    switch (op) {
      case AssignOp::AddAssign: return BinaryOp::Add;
      case AssignOp::SubAssign: return BinaryOp::Sub;
      case AssignOp::MulAssign: return BinaryOp::Mul;
      case AssignOp::AndAssign: return BinaryOp::BitAnd;
      case AssignOp::OrAssign: return BinaryOp::BitOr;
      case AssignOp::XorAssign: return BinaryOp::BitXor;
      default:
        UBF_PANIC("assignOpBinary on plain assignment");
    }
}

//===------------------------------------------------------------------===//
// Node constructors needing complete types or the context pools
//===------------------------------------------------------------------===//

Call::Call(ASTContext *ctx, uint32_t id, FunctionDecl *callee,
           const std::vector<Expr *> &args, const Type *type)
    : Expr(ctx, NodeKind::Call, id, type), callee_(refOf(callee))
{
    std::vector<NodeIndex> idxs;
    idxs.reserve(args.size());
    for (Expr *a : args)
        idxs.push_back(refOf(a));
    args_ = ctx->listMake(idxs.data(), static_cast<uint32_t>(idxs.size()));
}

InitList::InitList(ASTContext *ctx, uint32_t id,
                   const std::vector<Expr *> &elems, const Type *type)
    : Expr(ctx, NodeKind::InitList, id, type)
{
    std::vector<NodeIndex> idxs;
    idxs.reserve(elems.size());
    for (Expr *e : elems)
        idxs.push_back(refOf(e));
    elems_ = ctx->listMake(idxs.data(), static_cast<uint32_t>(idxs.size()));
}

IfStmt::IfStmt(ASTContext *ctx, uint32_t id, Expr *cond, Block *thenBlock,
               Block *elseBlock)
    : Stmt(ctx, NodeKind::IfStmt, id), cond_(refOf(cond)),
      then_(refOf(thenBlock)), else_(refOf(elseBlock))
{}

ForStmt::ForStmt(ASTContext *ctx, uint32_t id, Stmt *init, Expr *cond,
                 Stmt *step, Block *body)
    : Stmt(ctx, NodeKind::ForStmt, id), init_(refOf(init)),
      cond_(refOf(cond)), step_(refOf(step)), body_(refOf(body))
{}

WhileStmt::WhileStmt(ASTContext *ctx, uint32_t id, Expr *cond, Block *body)
    : Stmt(ctx, NodeKind::WhileStmt, id), cond_(refOf(cond)),
      body_(refOf(body))
{}

VarDecl::VarDecl(ASTContext *ctx, uint32_t id, std::string_view name,
                 const Type *type, Storage storage, Expr *init)
    : Node(ctx, NodeKind::VarDecl, id), type_(TypeTable::refOf(type)),
      storage_(storage), init_(refOf(init))
{
    ctx->internString(name, nameOff_, nameLen_);
}

FieldDecl::FieldDecl(ASTContext *ctx, uint32_t id, std::string_view name,
                     const Type *type)
    : Node(ctx, NodeKind::FieldDecl, id), type_(TypeTable::refOf(type))
{
    ctx->internString(name, nameOff_, nameLen_);
}

StructDecl::StructDecl(ASTContext *ctx, uint32_t id, std::string_view name)
    : Node(ctx, NodeKind::StructDecl, id)
{
    ctx->internString(name, nameOff_, nameLen_);
}

FunctionDecl::FunctionDecl(ASTContext *ctx, uint32_t id,
                           std::string_view name, const Type *retType)
    : Node(ctx, NodeKind::FunctionDecl, id),
      retType_(TypeTable::refOf(retType))
{
    ctx->internString(name, nameOff_, nameLen_);
}

const FieldDecl *
StructDecl::findField(std::string_view name) const
{
    for (const FieldDecl *f : fields())
        if (f->name() == name)
            return f;
    return nullptr;
}

//===------------------------------------------------------------------===//
// ASTContext
//===------------------------------------------------------------------===//

ASTContext::~ASTContext()
{
    // Slots are trivially destructible by construction (static_assert
    // in construct<T>), so chunks are plain byte arrays.
    for (char *c : chunks_)
        delete[] c;
}

void
ASTContext::registerId(uint32_t id, NodeIndex idx)
{
    if (id >= idToIndex_.size())
        idToIndex_.resize(id + 1, kNullNode);
    UBF_ASSERT(idToIndex_[id] == kNullNode, "duplicate nodeId ", id);
    idToIndex_[id] = idx;
}

uint64_t
ASTContext::hashNodeRange(NodeIndex begin, NodeIndex end) const
{
    UBF_ASSERT(begin <= end && end <= numNodes_, "bad hash range");
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](const char *p, size_t n) {
        for (size_t i = 0; i < n; i++) {
            h ^= static_cast<unsigned char>(p[i]);
            h *= 0x100000001b3ull;
        }
    };
    for (NodeIndex i = begin; i < end; i++) {
        const char *p = slot(i);
        mix(p, kCtxByte);
        mix(p + kCtxByteEnd, kSlotBytes - kCtxByteEnd);
    }
    return h;
}

void
ASTContext::copyFrom(const ASTContext &src)
{
    UBF_ASSERT(numNodes_ == 0 && pool_.empty() && strings_.empty(),
               "copyFrom target must be fresh");
    chunks_.reserve(src.chunks_.size());
    NodeIndex remaining = src.numNodes_;
    for (char *srcChunk : src.chunks_) {
        char *p = new char[static_cast<size_t>(kSlotBytes) * kChunkSlots];
        uint32_t used = std::min<uint32_t>(remaining, kChunkSlots);
        std::memcpy(p, srcChunk, static_cast<size_t>(used) * kSlotBytes);
        chunks_.push_back(p);
        remaining -= used;
    }
    numNodes_ = src.numNodes_;
    // The one per-slot fixup: each node's back-pointer to its context.
    for (NodeIndex i = 0; i < numNodes_; i++)
        reinterpret_cast<Node *>(slot(i))->ctx_ = this;
    pool_ = src.pool_;
    strings_ = src.strings_;
    idToIndex_ = src.idToIndex_;
    nextId_ = src.nextId_;
    types_.copyFrom(src.types_);
}

ListRange
ASTContext::listMake(const NodeIndex *data, uint32_t n)
{
    ListRange r;
    r.off = static_cast<uint32_t>(pool_.size());
    r.len = n;
    r.cap = n;
    pool_.insert(pool_.end(), data, data + n);
    return r;
}

void
ASTContext::listRelocate(ListRange &r, uint32_t minCap)
{
    uint32_t newCap = r.cap ? r.cap * 2 : 2;
    while (newCap < minCap)
        newCap *= 2;
    uint32_t newOff = static_cast<uint32_t>(pool_.size());
    pool_.resize(pool_.size() + newCap);
    // Regions are exclusive and the new one sits past the old, so a
    // plain copy within the (already resized) pool is safe.
    std::copy_n(pool_.begin() + r.off, r.len, pool_.begin() + newOff);
    r.off = newOff;
    r.cap = newCap;
}

void
ASTContext::listAppend(ListRange &r, NodeIndex v)
{
    if (r.len == r.cap)
        listRelocate(r, r.len + 1);
    pool_[r.off + r.len] = v;
    r.len++;
}

void
ASTContext::listInsert(ListRange &r, uint32_t pos, NodeIndex v)
{
    UBF_ASSERT(pos <= r.len, "list insert out of range");
    if (r.len == r.cap)
        listRelocate(r, r.len + 1);
    for (uint32_t i = r.len; i > pos; i--)
        pool_[r.off + i] = pool_[r.off + i - 1];
    pool_[r.off + pos] = v;
    r.len++;
}

void
ASTContext::listErase(ListRange &r, uint32_t pos)
{
    UBF_ASSERT(pos < r.len, "list erase out of range");
    for (uint32_t i = pos; i + 1 < r.len; i++)
        pool_[r.off + i] = pool_[r.off + i + 1];
    r.len--;
}

void
ASTContext::internString(std::string_view s, uint32_t &off, uint32_t &len)
{
    off = static_cast<uint32_t>(strings_.size());
    len = static_cast<uint32_t>(s.size());
    strings_.insert(strings_.end(), s.begin(), s.end());
}

//===------------------------------------------------------------------===//
// Program
//===------------------------------------------------------------------===//

FunctionDecl *
Program::findFunction(const std::string &name) const
{
    for (FunctionDecl *f : functions_)
        if (f->name() == name)
            return f;
    for (FunctionDecl *f : builtins_)
        if (f->name() == name)
            return f;
    return nullptr;
}

VarDecl *
Program::findGlobal(const std::string &name) const
{
    for (VarDecl *g : globals_)
        if (g->name() == name)
            return g;
    return nullptr;
}

StructDecl *
Program::findStruct(const std::string &name) const
{
    for (StructDecl *s : structs_)
        if (s->name() == name)
            return s;
    return nullptr;
}

FunctionDecl *
Program::builtin(Builtin b)
{
    for (FunctionDecl *f : builtins_)
        if (f->builtin() == b)
            return f;

    TypeTable &tt = ctx_.types();
    const Type *s64 = tt.s64();
    const Type *byte_ptr = tt.bytePtr();
    const Type *void_ty = tt.voidTy();

    auto make_fn = [&](const char *name, const Type *ret,
                       std::initializer_list<const Type *> params) {
        FunctionDecl *f = ctx_.make<FunctionDecl>(name, ret);
        int i = 0;
        for (const Type *pt : params) {
            f->addParam(ctx_.make<VarDecl>("p" + std::to_string(i++), pt,
                                           Storage::Param, nullptr));
        }
        f->setBuiltin(b);
        builtins_.push_back(f);
        return f;
    };

    switch (b) {
      case Builtin::Malloc:
        return make_fn("__malloc", byte_ptr, {s64});
      case Builtin::Free:
        return make_fn("__free", void_ty, {byte_ptr});
      case Builtin::Checksum:
        return make_fn("__checksum", void_ty, {s64});
      case Builtin::LogVal:
        return make_fn("__log_val", void_ty, {s64, s64});
      case Builtin::LogPtr:
        return make_fn("__log_ptr", void_ty, {s64, byte_ptr});
      case Builtin::LogBuf:
        return make_fn("__log_buf", void_ty, {s64, byte_ptr, s64});
      case Builtin::LogScopeEnter:
        return make_fn("__log_scope_enter", void_ty, {s64});
      case Builtin::LogScopeExit:
        return make_fn("__log_scope_exit", void_ty, {s64});
      case Builtin::None:
        break;
    }
    UBF_PANIC("unknown builtin");
}

bool
isLValue(const Expr *e)
{
    switch (e->kind()) {
      case NodeKind::VarRef:
      case NodeKind::Index:
        return true;
      case NodeKind::Unary:
        return e->as<Unary>()->op() == UnaryOp::Deref;
      case NodeKind::Member:
        return e->as<Member>()->isArrow() ||
               isLValue(e->as<Member>()->base());
      default:
        return false;
    }
}

} // namespace ubfuzz::ast
