#include "ast/typing.h"

namespace ubfuzz::ast {

const Type *
promote(TypeTable &tt, const Type *t)
{
    UBF_ASSERT(t->isInteger(), "promote on non-integer");
    if (scalarBits(t->scalar()) < 32)
        return tt.s32();
    return t;
}

const Type *
commonType(TypeTable &tt, const Type *a, const Type *b)
{
    a = promote(tt, a);
    b = promote(tt, b);
    if (a == b)
        return a;
    ScalarKind ka = a->scalar(), kb = b->scalar();
    int wa = scalarBits(ka), wb = scalarBits(kb);
    bool sa = scalarSigned(ka), sb = scalarSigned(kb);
    if (sa == sb)
        return wa >= wb ? a : b;
    // Mixed signedness.
    const Type *uns = sa ? b : a;
    const Type *sgn = sa ? a : b;
    int wu = sa ? wb : wa;
    int ws = sa ? wa : wb;
    if (wu >= ws)
        return uns;
    // The signed type is strictly wider: it represents all unsigned
    // values of the narrower type.
    return sgn;
}

const Type *
binaryResultType(TypeTable &tt, BinaryOp op, const Type *lhs,
                 const Type *rhs)
{
    if (isComparisonOp(op) || isLogicalOp(op))
        return tt.s32();
    if (lhs->isPointer() || rhs->isPointer() || lhs->isArray() ||
        rhs->isArray()) {
        // Arrays decay to element pointers in expressions.
        auto decay = [&](const Type *t) {
            return t->isArray() ? tt.pointer(t->element()) : t;
        };
        const Type *l = decay(lhs);
        const Type *r = decay(rhs);
        if (op == BinaryOp::Add) {
            UBF_ASSERT(l->isPointer() != r->isPointer(),
                       "pointer + pointer is ill-typed");
            return l->isPointer() ? l : r;
        }
        if (op == BinaryOp::Sub) {
            if (l->isPointer() && r->isPointer())
                return tt.s64();
            UBF_ASSERT(l->isPointer(), "int - pointer is ill-typed");
            return l;
        }
        UBF_PANIC("pointer operand on non-additive operator ",
                  binaryOpSpelling(op));
    }
    if (isShiftOp(op))
        return promote(tt, lhs);
    return commonType(tt, lhs, rhs);
}

const Type *
unaryResultType(TypeTable &tt, UnaryOp op, const Type *sub)
{
    switch (op) {
      case UnaryOp::Neg:
      case UnaryOp::BitNot:
        return promote(tt, sub);
      case UnaryOp::LogNot:
        return tt.s32();
      case UnaryOp::Deref:
        if (sub->isArray())
            return sub->element();
        UBF_ASSERT(sub->isPointer(), "deref of non-pointer");
        return sub->element();
      case UnaryOp::AddrOf:
        return tt.pointer(sub);
    }
    UBF_PANIC("unknown unary op");
}

const Type *
indexResultType(const Type *base)
{
    UBF_ASSERT(base->isArray() || base->isPointer(),
               "index of non-array, non-pointer");
    return base->element();
}

IntLit *
ExprBuilder::lit(int64_t v, ScalarKind k)
{
    return ctx_.make<IntLit>(static_cast<uint64_t>(v), types().scalar(k));
}

IntLit *
ExprBuilder::litOf(uint64_t raw, const Type *t)
{
    return ctx_.make<IntLit>(raw, t);
}

VarRef *
ExprBuilder::ref(VarDecl *v)
{
    return ctx_.make<VarRef>(v, v->type());
}

Unary *
ExprBuilder::unary(UnaryOp op, Expr *sub)
{
    return ctx_.make<Unary>(op, sub,
                            unaryResultType(types(), op, sub->type()));
}

Binary *
ExprBuilder::bin(BinaryOp op, Expr *lhs, Expr *rhs)
{
    return ctx_.make<Binary>(
        op, lhs, rhs,
        binaryResultType(types(), op, lhs->type(), rhs->type()));
}

Select *
ExprBuilder::select(Expr *c, Expr *t, Expr *f)
{
    const Type *ty;
    if (t->type()->isPointer() || f->type()->isPointer())
        ty = t->type()->isPointer() ? t->type() : f->type();
    else
        ty = commonType(types(), t->type(), f->type());
    return ctx_.make<Select>(c, t, f, ty);
}

Index *
ExprBuilder::index(Expr *base, Expr *idx)
{
    return ctx_.make<Index>(base, idx, indexResultType(base->type()));
}

Member *
ExprBuilder::member(Expr *base, const FieldDecl *field, bool arrow)
{
    return ctx_.make<Member>(base, field, arrow, field->type());
}

Cast *
ExprBuilder::cast(const Type *to, Expr *sub)
{
    return ctx_.make<Cast>(sub, to);
}

Call *
ExprBuilder::call(FunctionDecl *callee, std::vector<Expr *> args)
{
    return ctx_.make<Call>(callee, std::move(args), callee->retType());
}

} // namespace ubfuzz::ast
