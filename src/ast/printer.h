/**
 * @file
 * MiniC pretty printer and source layout.
 *
 * Printing is the authority on source locations: the printer records, for
 * every statement and expression node, the (line, offset) where its first
 * token lands. IR lowering attaches these locations to instructions as
 * debug metadata, and the crash-site mapping oracle compares them — so
 * "the crash site at (line 10, offset 8)" means exactly what it does in
 * the paper's Figure 5.
 */

#ifndef UBFUZZ_AST_PRINTER_H
#define UBFUZZ_AST_PRINTER_H

#include <string>
#include <unordered_map>

#include "ast/ast.h"
#include "support/source_loc.h"

namespace ubfuzz::ast {

/** nodeId -> (line, offset) for a particular printing of a program. */
class SourceMap
{
  public:
    void set(uint32_t nodeId, SourceLoc loc) { locs_[nodeId] = loc; }

    /** Location of a node; invalid SourceLoc if not recorded. */
    SourceLoc
    loc(uint32_t nodeId) const
    {
        auto it = locs_.find(nodeId);
        return it == locs_.end() ? SourceLoc{} : it->second;
    }

    size_t size() const { return locs_.size(); }

  private:
    std::unordered_map<uint32_t, SourceLoc> locs_;
};

/** The text of a program plus the node-location map for that text. */
struct PrintedProgram
{
    std::string text;
    SourceMap map;
};

/** Pretty-print @p program and record node locations. */
PrintedProgram printProgram(const Program &program);

/** Convenience: just the text. */
std::string programText(const Program &program);

/** Print a single expression (no location recording); for diagnostics. */
std::string exprText(const Expr *e);

} // namespace ubfuzz::ast

#endif // UBFUZZ_AST_PRINTER_H
