/**
 * @file
 * MiniC typing rules (a faithful subset of C's usual arithmetic
 * conversions) and convenience builders for well-typed expressions.
 *
 * MiniC follows C: operands of arithmetic are promoted to at least 32
 * bits, the common type is computed per C6.3.1.8, shifts take the
 * promoted left operand's type, comparisons and logical operators yield
 * int. Signed overflow, bad shifts, and division by zero are UB — that
 * is the whole point of this repository.
 */

#ifndef UBFUZZ_AST_TYPING_H
#define UBFUZZ_AST_TYPING_H

#include "ast/ast.h"

namespace ubfuzz::ast {

/** Integer promotion: sub-int scalars widen to S32. */
const Type *promote(TypeTable &tt, const Type *t);

/** C usual-arithmetic-conversion common type of two integer types. */
const Type *commonType(TypeTable &tt, const Type *a, const Type *b);

/**
 * Result type of `lhs op rhs`, handling pointer arithmetic
 * (ptr+int -> ptr, ptr-ptr -> S64) and comparisons (-> S32).
 */
const Type *binaryResultType(TypeTable &tt, BinaryOp op, const Type *lhs,
                             const Type *rhs);

/** Result type of a unary operator applied to @p sub. */
const Type *unaryResultType(TypeTable &tt, UnaryOp op, const Type *sub);

/**
 * Element type produced by `base[i]`; base must be an array or pointer.
 */
const Type *indexResultType(const Type *base);

/**
 * Well-typed expression factories. All of them compute the result type
 * from the operands with the rules above.
 */
class ExprBuilder
{
  public:
    explicit ExprBuilder(Program &p) : prog_(p), ctx_(p.ctx()) {}

    IntLit *lit(int64_t v, ScalarKind k = ScalarKind::S32);
    IntLit *litOf(uint64_t raw, const Type *t);
    VarRef *ref(VarDecl *v);
    Unary *unary(UnaryOp op, Expr *sub);
    Unary *deref(Expr *sub) { return unary(UnaryOp::Deref, sub); }
    Unary *addrOf(Expr *sub) { return unary(UnaryOp::AddrOf, sub); }
    Binary *bin(BinaryOp op, Expr *lhs, Expr *rhs);
    Select *select(Expr *c, Expr *t, Expr *f);
    Index *index(Expr *base, Expr *idx);
    Member *member(Expr *base, const FieldDecl *field, bool arrow);
    Cast *cast(const Type *to, Expr *sub);
    Call *call(FunctionDecl *callee, std::vector<Expr *> args);

    Program &program() { return prog_; }
    TypeTable &types() { return prog_.types(); }

  private:
    Program &prog_;
    ASTContext &ctx_;
};

} // namespace ubfuzz::ast

#endif // UBFUZZ_AST_TYPING_H
