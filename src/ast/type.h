/**
 * @file
 * The MiniC type system.
 *
 * MiniC is the C subset every component of this repository speaks:
 * signed/unsigned integers of 8/16/32/64 bits, pointers, fixed-size
 * arrays, and plain structs of scalar fields. Types are interned in a
 * per-program TypeTable, so `const Type *` equality is type equality.
 *
 * Types are index-based like the AST arena: a Type names its pointee
 * by TypeRef (index into the table) and its struct by the StructDecl's
 * arena NodeIndex, never by raw pointer. Cloning a program therefore
 * copies the table verbatim — every TypeRef stored in a node slot
 * means the same type in the clone, which is what lets cloneProgram
 * memcpy node slots without touching them.
 */

#ifndef UBFUZZ_AST_TYPE_H
#define UBFUZZ_AST_TYPE_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>

namespace ubfuzz::ast {

class ASTContext;
class StructDecl;
class TypeTable;

/** Index of an interned Type inside its TypeTable. */
using TypeRef = uint32_t;
inline constexpr TypeRef kNullTypeRef = 0xFFFFFFFFu;

/** Built-in scalar kinds. Comparisons and logic produce S32, as in C. */
enum class ScalarKind : uint8_t {
    Void,
    S8, U8,
    S16, U16,
    S32, U32,
    S64, U64,
};

/** Size in bytes of a scalar kind (0 for Void). */
int scalarSize(ScalarKind k);
/** Whether the scalar kind is a signed integer. */
bool scalarSigned(ScalarKind k);
/** Bit width (8..64; 0 for Void). */
int scalarBits(ScalarKind k);
/** C spelling, e.g. "unsigned short". */
const char *scalarName(ScalarKind k);

/** An interned MiniC type. */
class Type
{
  public:
    enum class Kind : uint8_t { Scalar, Pointer, Array, Struct };

    Kind kind() const { return kind_; }
    bool isScalar() const { return kind_ == Kind::Scalar; }
    bool isPointer() const { return kind_ == Kind::Pointer; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isStruct() const { return kind_ == Kind::Struct; }
    bool isVoid() const
    {
        return kind_ == Kind::Scalar && scalar_ == ScalarKind::Void;
    }
    /** Non-void integer scalar. */
    bool isInteger() const { return isScalar() && !isVoid(); }

    ScalarKind scalar() const { return scalar_; }
    /** Pointee for pointers, element type for arrays. */
    const Type *element() const;
    /** Array element count. */
    uint32_t arraySize() const { return count_; }
    const StructDecl *structDecl() const;

    /** This type's index in its TypeTable. */
    TypeRef ref() const { return index_; }

    /** Byte size (arrays: elem size * count; pointers: 8). */
    uint64_t size() const;
    /** Natural alignment in bytes. */
    uint64_t align() const;

    /** C spelling of the type with an optional declarator name. */
    std::string cName(const std::string &declarator = "") const;

  private:
    friend class TypeTable;
    Type() = default;

    Kind kind_ = Kind::Scalar;
    ScalarKind scalar_ = ScalarKind::Void;
    /** Pointee/element, as an index into the owning table. */
    TypeRef elem_ = kNullTypeRef;
    uint32_t count_ = 0;
    /** Arena NodeIndex of the StructDecl (struct types only). */
    uint32_t structNode_ = 0xFFFFFFFFu;
    TypeRef index_ = 0;
    const TypeTable *table_ = nullptr;
};

/** Per-program intern table for types. */
class TypeTable
{
  public:
    /** @p ctx is the arena struct types resolve their StructDecl in. */
    explicit TypeTable(ASTContext *ctx);

    TypeTable(const TypeTable &) = delete;
    TypeTable &operator=(const TypeTable &) = delete;

    const Type *scalar(ScalarKind k) const;
    const Type *voidTy() const { return scalar(ScalarKind::Void); }
    const Type *s32() const { return scalar(ScalarKind::S32); }
    const Type *s64() const { return scalar(ScalarKind::S64); }

    const Type *pointer(const Type *pointee);
    const Type *array(const Type *elem, uint32_t count);
    const Type *structTy(const StructDecl *decl);

    /** `char *`, the type of __malloc's result. */
    const Type *bytePtr() { return pointer(scalar(ScalarKind::S8)); }

    /** Resolve an interned index (addresses are stable: deque). */
    const Type &at(TypeRef r) const { return types_[r]; }
    /** The index of @p t (kNullTypeRef for nullptr). */
    static TypeRef
    refOf(const Type *t)
    {
        return t ? t->index_ : kNullTypeRef;
    }

    /**
     * Become a verbatim copy of @p src (clone support): same entries at
     * the same indices, so TypeRefs stored in memcpy'd node slots keep
     * their meaning. Only valid on a freshly constructed table.
     */
    void copyFrom(const TypeTable &src);

  private:
    friend class Type;

    const Type *intern(Type t, std::tuple<uint8_t, uint32_t, uint32_t> key);

    ASTContext *ctx_;
    /** Interned types; deque so `const Type *` stays stable. */
    std::deque<Type> types_;
    /** (kind, elem/scalar/structNode, count) -> index into types_. */
    std::map<std::tuple<uint8_t, uint32_t, uint32_t>, TypeRef> interned_;
};

inline const Type *
Type::element() const
{
    return elem_ == kNullTypeRef ? nullptr : &table_->at(elem_);
}

} // namespace ubfuzz::ast

#endif // UBFUZZ_AST_TYPE_H
