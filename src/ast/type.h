/**
 * @file
 * The MiniC type system.
 *
 * MiniC is the C subset every component of this repository speaks:
 * signed/unsigned integers of 8/16/32/64 bits, pointers, fixed-size
 * arrays, and plain structs of scalar fields. Types are interned in a
 * per-program TypeTable, so `const Type *` equality is type equality.
 */

#ifndef UBFUZZ_AST_TYPE_H
#define UBFUZZ_AST_TYPE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ubfuzz::ast {

class StructDecl;

/** Built-in scalar kinds. Comparisons and logic produce S32, as in C. */
enum class ScalarKind : uint8_t {
    Void,
    S8, U8,
    S16, U16,
    S32, U32,
    S64, U64,
};

/** Size in bytes of a scalar kind (0 for Void). */
int scalarSize(ScalarKind k);
/** Whether the scalar kind is a signed integer. */
bool scalarSigned(ScalarKind k);
/** Bit width (8..64; 0 for Void). */
int scalarBits(ScalarKind k);
/** C spelling, e.g. "unsigned short". */
const char *scalarName(ScalarKind k);

/** An interned MiniC type. */
class Type
{
  public:
    enum class Kind : uint8_t { Scalar, Pointer, Array, Struct };

    Kind kind() const { return kind_; }
    bool isScalar() const { return kind_ == Kind::Scalar; }
    bool isPointer() const { return kind_ == Kind::Pointer; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isStruct() const { return kind_ == Kind::Struct; }
    bool isVoid() const
    {
        return kind_ == Kind::Scalar && scalar_ == ScalarKind::Void;
    }
    /** Non-void integer scalar. */
    bool isInteger() const { return isScalar() && !isVoid(); }

    ScalarKind scalar() const { return scalar_; }
    /** Pointee for pointers, element type for arrays. */
    const Type *element() const { return element_; }
    /** Array element count. */
    uint32_t arraySize() const { return count_; }
    const StructDecl *structDecl() const { return struct_; }

    /** Byte size (arrays: elem size * count; pointers: 8). */
    uint64_t size() const;
    /** Natural alignment in bytes. */
    uint64_t align() const;

    /** C spelling of the type with an optional declarator name. */
    std::string cName(const std::string &declarator = "") const;

  private:
    friend class TypeTable;
    Type() = default;

    Kind kind_ = Kind::Scalar;
    ScalarKind scalar_ = ScalarKind::Void;
    const Type *element_ = nullptr;
    uint32_t count_ = 0;
    const StructDecl *struct_ = nullptr;
};

/** Per-program intern table for types. */
class TypeTable
{
  public:
    TypeTable();

    const Type *scalar(ScalarKind k) const;
    const Type *voidTy() const { return scalar(ScalarKind::Void); }
    const Type *s32() const { return scalar(ScalarKind::S32); }
    const Type *s64() const { return scalar(ScalarKind::S64); }

    const Type *pointer(const Type *pointee);
    const Type *array(const Type *elem, uint32_t count);
    const Type *structTy(const StructDecl *decl);

    /** `char *`, the type of __malloc's result. */
    const Type *bytePtr() { return pointer(scalar(ScalarKind::S8)); }

  private:
    std::unique_ptr<Type> scalars_[9];
    std::map<const Type *, std::unique_ptr<Type>> pointers_;
    std::map<std::pair<const Type *, uint32_t>, std::unique_ptr<Type>>
        arrays_;
    std::map<const StructDecl *, std::unique_ptr<Type>> structs_;
};

} // namespace ubfuzz::ast

#endif // UBFUZZ_AST_TYPE_H
