#include "ast/printer.h"

#include <string_view>

namespace ubfuzz::ast {

namespace {

/** True if the expression prints as a primary/postfix form that never
 *  needs parentheses when used as an operand. Negative literals print
 *  with a leading '-', so they are not primary: `!-1` must come back
 *  from the parser the way it went in. */
bool
isPrimary(const Expr *e)
{
    switch (e->kind()) {
      case NodeKind::IntLit: {
        const Type *t = e->type();
        if (t->isInteger() && ast::scalarSigned(t->scalar()))
            return e->as<IntLit>()->signedValue() >= 0;
        return true;
      }
      case NodeKind::VarRef:
      case NodeKind::Call:
      case NodeKind::Index:
      case NodeKind::Member:
        return true;
      default:
        return false;
    }
}

class Printer
{
  public:
    PrintedProgram
    run(const Program &p)
    {
        for (const StructDecl *s : p.structs())
            printStruct(s);
        for (const VarDecl *g : p.globals())
            printGlobal(g);
        for (const FunctionDecl *f : p.functions())
            printFunction(f);
        PrintedProgram result;
        result.text = std::move(out_);
        result.map = std::move(map_);
        return result;
    }

    void
    printExprOnly(const Expr *e)
    {
        printExpr(e);
    }

    std::string takeText() { return std::move(out_); }

  private:
    void
    emit(std::string_view s)
    {
        out_ += s;
        col_ += static_cast<int>(s.size());
    }

    void
    newline()
    {
        out_ += '\n';
        line_++;
        col_ = 0;
    }

    void
    startLine()
    {
        for (int i = 0; i < indent_ * 4; i++)
            emit(" ");
    }

    void record(const Node *n) { map_.set(n->nodeId(), {line_, col_}); }

    std::string
    literalText(const IntLit *lit)
    {
        const Type *t = lit->type();
        ScalarKind k =
            t->isPointer() ? ScalarKind::S64 : t->scalar();
        switch (k) {
          case ScalarKind::U32:
            return std::to_string(static_cast<uint32_t>(lit->value())) +
                   "u";
          case ScalarKind::S64:
            return std::to_string(lit->signedValue()) + "l";
          case ScalarKind::U64:
            return std::to_string(lit->value()) + "ul";
          default:
            // Small/32-bit signed kinds print as plain decimals.
            return std::to_string(
                static_cast<int32_t>(lit->value()));
        }
    }

    void
    printOperand(const Expr *e, bool parenthesize)
    {
        if (parenthesize) {
            // Record the operand at the paren so nested rewrites keep
            // distinct, stable offsets.
            emit("(");
            printExpr(e);
            emit(")");
        } else {
            printExpr(e);
        }
    }

    void
    printExpr(const Expr *e)
    {
        record(e);
        switch (e->kind()) {
          case NodeKind::IntLit:
            emit(literalText(e->as<IntLit>()));
            break;
          case NodeKind::VarRef:
            emit(e->as<VarRef>()->decl()->name());
            break;
          case NodeKind::Unary: {
            auto *u = e->as<Unary>();
            emit(unaryOpSpelling(u->op()));
            printOperand(u->sub(), !isPrimary(u->sub()));
            break;
          }
          case NodeKind::Binary: {
            auto *b = e->as<Binary>();
            printOperand(b->lhs(), b->lhs()->kind() == NodeKind::Binary ||
                                       b->lhs()->kind() ==
                                           NodeKind::Select);
            emit(" ");
            emit(binaryOpSpelling(b->op()));
            emit(" ");
            printOperand(b->rhs(), b->rhs()->kind() == NodeKind::Binary ||
                                       b->rhs()->kind() ==
                                           NodeKind::Select);
            break;
          }
          case NodeKind::Select: {
            auto *s = e->as<Select>();
            printOperand(s->cond(), !isPrimary(s->cond()));
            emit(" ? ");
            printOperand(s->trueExpr(), !isPrimary(s->trueExpr()));
            emit(" : ");
            printOperand(s->falseExpr(), !isPrimary(s->falseExpr()));
            break;
          }
          case NodeKind::Index: {
            auto *ix = e->as<Index>();
            printOperand(ix->base(), !isPrimary(ix->base()));
            emit("[");
            printExpr(ix->index());
            emit("]");
            break;
          }
          case NodeKind::Member: {
            auto *m = e->as<Member>();
            printOperand(m->base(), !isPrimary(m->base()));
            emit(m->isArrow() ? "->" : ".");
            emit(m->field()->name());
            break;
          }
          case NodeKind::Cast: {
            auto *c = e->as<Cast>();
            emit("(");
            emit(c->type()->cName());
            emit(")");
            printOperand(c->sub(), !isPrimary(c->sub()));
            break;
          }
          case NodeKind::Call: {
            auto *c = e->as<Call>();
            emit(c->callee()->name());
            emit("(");
            bool first = true;
            for (const Expr *a : c->args()) {
                if (!first)
                    emit(", ");
                first = false;
                printExpr(a);
            }
            emit(")");
            break;
          }
          case NodeKind::InitList: {
            auto *il = e->as<InitList>();
            emit("{");
            bool first = true;
            for (const Expr *el : il->elems()) {
                if (!first)
                    emit(", ");
                first = false;
                printExpr(el);
            }
            emit("}");
            break;
          }
          default:
            UBF_PANIC("printExpr: not an expression");
        }
    }

    void
    printVarDecl(const VarDecl *v)
    {
        record(v);
        emit(v->type()->cName(std::string(v->name())));
        if (v->init()) {
            emit(" = ");
            printExpr(v->init());
        }
    }

    /** Print an assignment without the trailing semicolon. */
    void
    printAssign(const AssignStmt *a)
    {
        record(a);
        printExpr(a->lhs());
        emit(" ");
        emit(assignOpSpelling(a->op()));
        emit(" ");
        printExpr(a->rhs());
    }

    void
    printStruct(const StructDecl *s)
    {
        record(s);
        emit("struct ");
        emit(s->name());
        emit(" {");
        newline();
        for (const FieldDecl *f : s->fields()) {
            emit("    ");
            record(f);
            emit(f->type()->cName(std::string(f->name())));
            emit(";");
            newline();
        }
        emit("};");
        newline();
    }

    void
    printGlobal(const VarDecl *g)
    {
        printVarDecl(g);
        emit(";");
        newline();
    }

    void
    printFunction(const FunctionDecl *f)
    {
        record(f);
        emit(f->retType()->cName());
        emit(" ");
        emit(f->name());
        emit("(");
        if (f->params().empty()) {
            emit("void");
        } else {
            bool first = true;
            for (const VarDecl *p : f->params()) {
                if (!first)
                    emit(", ");
                first = false;
                record(p);
                emit(p->type()->cName(std::string(p->name())));
            }
        }
        emit(") ");
        printBlock(f->body());
        newline();
    }

    void
    printBlock(const Block *b)
    {
        record(b);
        emit("{");
        newline();
        indent_++;
        for (const Stmt *s : b->stmts())
            printStmt(s);
        indent_--;
        startLine();
        emit("}");
    }

    void
    printStmt(const Stmt *s)
    {
        startLine();
        switch (s->kind()) {
          case NodeKind::DeclStmt:
            record(s);
            printVarDecl(s->as<DeclStmt>()->var());
            emit(";");
            break;
          case NodeKind::AssignStmt:
            printAssign(s->as<AssignStmt>());
            emit(";");
            break;
          case NodeKind::ExprStmt:
            record(s);
            printExpr(s->as<ExprStmt>()->expr());
            emit(";");
            break;
          case NodeKind::IfStmt: {
            auto *i = s->as<IfStmt>();
            record(s);
            emit("if (");
            printExpr(i->cond());
            emit(") ");
            printBlock(i->thenBlock());
            if (i->elseBlock()) {
                emit(" else ");
                printBlock(i->elseBlock());
            }
            break;
          }
          case NodeKind::ForStmt: {
            auto *f = s->as<ForStmt>();
            record(s);
            emit("for (");
            if (f->init()) {
                if (auto *d = f->init()->dynCast<DeclStmt>()) {
                    record(d);
                    printVarDecl(d->var());
                } else {
                    printAssign(f->init()->as<AssignStmt>());
                }
            }
            emit("; ");
            if (f->cond())
                printExpr(f->cond());
            emit("; ");
            if (f->step())
                printAssign(f->step()->as<AssignStmt>());
            emit(") ");
            printBlock(f->body());
            break;
          }
          case NodeKind::WhileStmt: {
            auto *w = s->as<WhileStmt>();
            record(s);
            emit("while (");
            printExpr(w->cond());
            emit(") ");
            printBlock(w->body());
            break;
          }
          case NodeKind::Block:
            printBlock(s->as<Block>());
            break;
          case NodeKind::ReturnStmt: {
            auto *r = s->as<ReturnStmt>();
            record(s);
            emit("return");
            if (r->value()) {
                emit(" ");
                printExpr(r->value());
            }
            emit(";");
            break;
          }
          case NodeKind::BreakStmt:
            record(s);
            emit("break;");
            break;
          case NodeKind::ContinueStmt:
            record(s);
            emit("continue;");
            break;
          default:
            UBF_PANIC("printStmt: not a statement");
        }
        newline();
    }

    std::string out_;
    SourceMap map_;
    int line_ = 1;
    int col_ = 0;
    int indent_ = 0;
};

} // namespace

PrintedProgram
printProgram(const Program &program)
{
    return Printer().run(program);
}

std::string
programText(const Program &program)
{
    return printProgram(program).text;
}

std::string
exprText(const Expr *e)
{
    Printer p;
    p.printExprOnly(e);
    return p.takeText();
}

} // namespace ubfuzz::ast
