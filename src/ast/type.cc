#include "ast/type.h"

#include "ast/ast.h"
#include "support/diagnostics.h"

namespace ubfuzz::ast {

int
scalarSize(ScalarKind k)
{
    switch (k) {
      case ScalarKind::Void: return 0;
      case ScalarKind::S8: case ScalarKind::U8: return 1;
      case ScalarKind::S16: case ScalarKind::U16: return 2;
      case ScalarKind::S32: case ScalarKind::U32: return 4;
      case ScalarKind::S64: case ScalarKind::U64: return 8;
    }
    return 0;
}

bool
scalarSigned(ScalarKind k)
{
    switch (k) {
      case ScalarKind::S8: case ScalarKind::S16:
      case ScalarKind::S32: case ScalarKind::S64:
        return true;
      default:
        return false;
    }
}

int
scalarBits(ScalarKind k)
{
    return scalarSize(k) * 8;
}

const char *
scalarName(ScalarKind k)
{
    switch (k) {
      case ScalarKind::Void: return "void";
      case ScalarKind::S8: return "char";
      case ScalarKind::U8: return "unsigned char";
      case ScalarKind::S16: return "short";
      case ScalarKind::U16: return "unsigned short";
      case ScalarKind::S32: return "int";
      case ScalarKind::U32: return "unsigned int";
      case ScalarKind::S64: return "long";
      case ScalarKind::U64: return "unsigned long";
    }
    return "?";
}

uint64_t
Type::size() const
{
    switch (kind_) {
      case Kind::Scalar: return scalarSize(scalar_);
      case Kind::Pointer: return 8;
      case Kind::Array: return element_->size() * count_;
      case Kind::Struct: return struct_->size();
    }
    return 0;
}

uint64_t
Type::align() const
{
    switch (kind_) {
      case Kind::Scalar: return scalarSize(scalar_) ? scalarSize(scalar_) : 1;
      case Kind::Pointer: return 8;
      case Kind::Array: return element_->align();
      case Kind::Struct: return struct_->align();
    }
    return 1;
}

std::string
Type::cName(const std::string &declarator) const
{
    switch (kind_) {
      case Kind::Scalar:
        return declarator.empty()
                   ? std::string(scalarName(scalar_))
                   : std::string(scalarName(scalar_)) + " " + declarator;
      case Kind::Pointer:
        return element_->cName("*" + declarator);
      case Kind::Array:
        return element_->cName(declarator + "[" +
                               std::to_string(count_) + "]");
      case Kind::Struct: {
        std::string base = "struct " + struct_->name();
        return declarator.empty() ? base : base + " " + declarator;
      }
    }
    return "?";
}

TypeTable::TypeTable()
{
    static const ScalarKind kinds[] = {
        ScalarKind::Void, ScalarKind::S8, ScalarKind::U8, ScalarKind::S16,
        ScalarKind::U16, ScalarKind::S32, ScalarKind::U32, ScalarKind::S64,
        ScalarKind::U64,
    };
    for (ScalarKind k : kinds) {
        auto t = std::unique_ptr<Type>(new Type());
        t->kind_ = Type::Kind::Scalar;
        t->scalar_ = k;
        scalars_[static_cast<int>(k)] = std::move(t);
    }
}

const Type *
TypeTable::scalar(ScalarKind k) const
{
    return scalars_[static_cast<int>(k)].get();
}

const Type *
TypeTable::pointer(const Type *pointee)
{
    auto &slot = pointers_[pointee];
    if (!slot) {
        slot = std::unique_ptr<Type>(new Type());
        slot->kind_ = Type::Kind::Pointer;
        slot->element_ = pointee;
    }
    return slot.get();
}

const Type *
TypeTable::array(const Type *elem, uint32_t count)
{
    UBF_ASSERT(count > 0, "zero-length arrays are not in MiniC");
    auto &slot = arrays_[{elem, count}];
    if (!slot) {
        slot = std::unique_ptr<Type>(new Type());
        slot->kind_ = Type::Kind::Array;
        slot->element_ = elem;
        slot->count_ = count;
    }
    return slot.get();
}

const Type *
TypeTable::structTy(const StructDecl *decl)
{
    auto &slot = structs_[decl];
    if (!slot) {
        slot = std::unique_ptr<Type>(new Type());
        slot->kind_ = Type::Kind::Struct;
        slot->struct_ = decl;
    }
    return slot.get();
}

} // namespace ubfuzz::ast
