#include "ast/type.h"

#include "ast/ast.h"
#include "support/diagnostics.h"

namespace ubfuzz::ast {

int
scalarSize(ScalarKind k)
{
    switch (k) {
      case ScalarKind::Void: return 0;
      case ScalarKind::S8: case ScalarKind::U8: return 1;
      case ScalarKind::S16: case ScalarKind::U16: return 2;
      case ScalarKind::S32: case ScalarKind::U32: return 4;
      case ScalarKind::S64: case ScalarKind::U64: return 8;
    }
    return 0;
}

bool
scalarSigned(ScalarKind k)
{
    switch (k) {
      case ScalarKind::S8: case ScalarKind::S16:
      case ScalarKind::S32: case ScalarKind::S64:
        return true;
      default:
        return false;
    }
}

int
scalarBits(ScalarKind k)
{
    return scalarSize(k) * 8;
}

const char *
scalarName(ScalarKind k)
{
    switch (k) {
      case ScalarKind::Void: return "void";
      case ScalarKind::S8: return "char";
      case ScalarKind::U8: return "unsigned char";
      case ScalarKind::S16: return "short";
      case ScalarKind::U16: return "unsigned short";
      case ScalarKind::S32: return "int";
      case ScalarKind::U32: return "unsigned int";
      case ScalarKind::S64: return "long";
      case ScalarKind::U64: return "unsigned long";
    }
    return "?";
}

const StructDecl *
Type::structDecl() const
{
    if (structNode_ == 0xFFFFFFFFu)
        return nullptr;
    return table_->ctx_->nodeAt(structNode_)->as<StructDecl>();
}

uint64_t
Type::size() const
{
    switch (kind_) {
      case Kind::Scalar: return scalarSize(scalar_);
      case Kind::Pointer: return 8;
      case Kind::Array: return element()->size() * count_;
      case Kind::Struct: return structDecl()->size();
    }
    return 0;
}

uint64_t
Type::align() const
{
    switch (kind_) {
      case Kind::Scalar: return scalarSize(scalar_) ? scalarSize(scalar_) : 1;
      case Kind::Pointer: return 8;
      case Kind::Array: return element()->align();
      case Kind::Struct: return structDecl()->align();
    }
    return 1;
}

std::string
Type::cName(const std::string &declarator) const
{
    switch (kind_) {
      case Kind::Scalar:
        return declarator.empty()
                   ? std::string(scalarName(scalar_))
                   : std::string(scalarName(scalar_)) + " " + declarator;
      case Kind::Pointer:
        return element()->cName("*" + declarator);
      case Kind::Array:
        return element()->cName(declarator + "[" +
                                std::to_string(count_) + "]");
      case Kind::Struct: {
        std::string base = "struct " + std::string(structDecl()->name());
        return declarator.empty() ? base : base + " " + declarator;
      }
    }
    return "?";
}

TypeTable::TypeTable(ASTContext *ctx) : ctx_(ctx)
{
    // Intern the scalars up front, in enum order, so scalar(k) is a
    // plain index and every table places them at the same TypeRefs.
    static const ScalarKind kinds[] = {
        ScalarKind::Void, ScalarKind::S8, ScalarKind::U8, ScalarKind::S16,
        ScalarKind::U16, ScalarKind::S32, ScalarKind::U32, ScalarKind::S64,
        ScalarKind::U64,
    };
    for (ScalarKind k : kinds) {
        Type t;
        t.kind_ = Type::Kind::Scalar;
        t.scalar_ = k;
        intern(t, {static_cast<uint8_t>(Type::Kind::Scalar),
                   static_cast<uint32_t>(k), 0});
    }
}

const Type *
TypeTable::scalar(ScalarKind k) const
{
    return &types_[static_cast<int>(k)];
}

const Type *
TypeTable::intern(Type t, std::tuple<uint8_t, uint32_t, uint32_t> key)
{
    auto it = interned_.find(key);
    if (it != interned_.end())
        return &types_[it->second];
    TypeRef idx = static_cast<TypeRef>(types_.size());
    t.index_ = idx;
    t.table_ = this;
    types_.push_back(t);
    interned_.emplace(key, idx);
    return &types_[idx];
}

const Type *
TypeTable::pointer(const Type *pointee)
{
    Type t;
    t.kind_ = Type::Kind::Pointer;
    t.elem_ = refOf(pointee);
    return intern(t, {static_cast<uint8_t>(Type::Kind::Pointer),
                      t.elem_, 0});
}

const Type *
TypeTable::array(const Type *elem, uint32_t count)
{
    UBF_ASSERT(count > 0, "zero-length arrays are not in MiniC");
    Type t;
    t.kind_ = Type::Kind::Array;
    t.elem_ = refOf(elem);
    t.count_ = count;
    return intern(t, {static_cast<uint8_t>(Type::Kind::Array),
                      t.elem_, count});
}

const Type *
TypeTable::structTy(const StructDecl *decl)
{
    Type t;
    t.kind_ = Type::Kind::Struct;
    t.structNode_ = decl->arenaIndex();
    return intern(t, {static_cast<uint8_t>(Type::Kind::Struct),
                      t.structNode_, 0});
}

void
TypeTable::copyFrom(const TypeTable &src)
{
    UBF_ASSERT(types_.size() == 9, "TypeTable::copyFrom target not fresh");
    types_ = src.types_;
    interned_ = src.interned_;
    for (Type &t : types_)
        t.table_ = this;
}

} // namespace ubfuzz::ast
