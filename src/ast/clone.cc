#include "ast/clone.h"

#include <atomic>
#include <unordered_map>
#include <vector>

namespace ubfuzz::ast {

namespace {

std::atomic<uint64_t> cloneCalls{0};

/**
 * Stateful node-by-node cloner: maps decls and types from source to
 * destination. This is the pre-arena algorithm, kept verbatim as the
 * baseline the memcpy clone is benchmarked against.
 */
class Cloner
{
  public:
    explicit Cloner(const Program &src)
        : src_(src), dst_(std::make_unique<Program>())
    {}

    ClonedProgram
    run()
    {
        // Builtins referenced by calls are created lazily in the
        // destination with *fresh* ids; start the fresh-id counter
        // past every source id so they never collide with a replayed
        // nodeId (the arena context panics on duplicates).
        dst_->ctx().reserveIds(src_.ctx().peekNextId());
        // Structs first: types may reference them.
        for (const StructDecl *s : src_.structs()) {
            auto *ns = makeNode<StructDecl>(s, s->name());
            for (const FieldDecl *f : s->fields()) {
                auto *nf = makeNode<FieldDecl>(f, f->name(),
                                               mapType(f->type()));
                fieldMap_[f] = nf;
                ns->addField(nf);
            }
            structMap_[s] = ns;
            dst_->structs().push_back(ns);
        }
        // Global decls (two-phase: inits may reference other globals).
        for (const VarDecl *g : src_.globals()) {
            auto *ng = makeNode<VarDecl>(g, g->name(), mapType(g->type()),
                                         g->storage(), nullptr);
            varMap_[g] = ng;
            dst_->globals().push_back(ng);
        }
        // Function signatures (two-phase: calls may be forward).
        for (const FunctionDecl *f : src_.functions()) {
            auto *nf = makeNode<FunctionDecl>(f, f->name(),
                                              mapType(f->retType()));
            nf->setBuiltin(f->builtin());
            for (const VarDecl *p : f->params()) {
                auto *np = makeNode<VarDecl>(p, p->name(),
                                             mapType(p->type()),
                                             p->storage(), nullptr);
                varMap_[p] = np;
                nf->addParam(np);
            }
            funcMap_[f] = nf;
            dst_->functions().push_back(nf);
        }
        // Global initializers.
        for (size_t i = 0; i < src_.globals().size(); i++) {
            const VarDecl *g = src_.globals()[i];
            if (g->init())
                dst_->globals()[i]->setInit(cloneExpr(g->init()));
        }
        // Function bodies.
        for (size_t i = 0; i < src_.functions().size(); i++) {
            const FunctionDecl *f = src_.functions()[i];
            if (f->body()) {
                dst_->functions()[i]->setBody(
                    cloneStmt(f->body())->as<Block>());
            }
        }
        if (src_.main())
            dst_->setMain(funcMap_.at(src_.main()));

        ClonedProgram result;
        result.program = std::move(dst_);
        return result;
    }

  private:
    template <typename T, typename... Args>
    T *
    makeNode(const Node *orig, Args &&...args)
    {
        return dst_->ctx().makeWithId<T>(orig->nodeId(),
                                         std::forward<Args>(args)...);
    }

    const Type *
    mapType(const Type *t)
    {
        if (!t)
            return nullptr;
        TypeTable &tt = dst_->types();
        switch (t->kind()) {
          case Type::Kind::Scalar:
            return tt.scalar(t->scalar());
          case Type::Kind::Pointer:
            return tt.pointer(mapType(t->element()));
          case Type::Kind::Array:
            return tt.array(mapType(t->element()), t->arraySize());
          case Type::Kind::Struct:
            return tt.structTy(structMap_.at(t->structDecl()));
        }
        UBF_PANIC("unknown type kind");
    }

    FunctionDecl *
    mapFunc(const FunctionDecl *f)
    {
        auto it = funcMap_.find(f);
        if (it != funcMap_.end())
            return it->second;
        // Builtins are created on demand in the destination program.
        UBF_ASSERT(f->isBuiltin(), "call to unknown function in clone");
        FunctionDecl *nf = dst_->builtin(f->builtin());
        funcMap_[f] = nf;
        return nf;
    }

    Expr *
    cloneExpr(const Expr *e)
    {
        switch (e->kind()) {
          case NodeKind::IntLit:
            return makeNode<IntLit>(e, e->as<IntLit>()->value(),
                                    mapType(e->type()));
          case NodeKind::VarRef:
            return makeNode<VarRef>(e, varMap_.at(e->as<VarRef>()->decl()),
                                    mapType(e->type()));
          case NodeKind::Unary: {
            auto *u = e->as<Unary>();
            return makeNode<Unary>(e, u->op(), cloneExpr(u->sub()),
                                   mapType(e->type()));
          }
          case NodeKind::Binary: {
            auto *b = e->as<Binary>();
            return makeNode<Binary>(e, b->op(), cloneExpr(b->lhs()),
                                    cloneExpr(b->rhs()),
                                    mapType(e->type()));
          }
          case NodeKind::Select: {
            auto *s = e->as<Select>();
            return makeNode<Select>(e, cloneExpr(s->cond()),
                                    cloneExpr(s->trueExpr()),
                                    cloneExpr(s->falseExpr()),
                                    mapType(e->type()));
          }
          case NodeKind::Index: {
            auto *ix = e->as<Index>();
            return makeNode<Index>(e, cloneExpr(ix->base()),
                                   cloneExpr(ix->index()),
                                   mapType(e->type()));
          }
          case NodeKind::Member: {
            auto *m = e->as<Member>();
            return makeNode<Member>(e, cloneExpr(m->base()),
                                    fieldMap_.at(m->field()), m->isArrow(),
                                    mapType(e->type()));
          }
          case NodeKind::Cast:
            return makeNode<Cast>(e, cloneExpr(e->as<Cast>()->sub()),
                                  mapType(e->type()));
          case NodeKind::Call: {
            auto *c = e->as<Call>();
            std::vector<Expr *> args;
            args.reserve(c->args().size());
            for (const Expr *a : c->args())
                args.push_back(cloneExpr(a));
            return makeNode<Call>(e, mapFunc(c->callee()), std::move(args),
                                  mapType(e->type()));
          }
          case NodeKind::InitList: {
            auto *il = e->as<InitList>();
            std::vector<Expr *> elems;
            elems.reserve(il->elems().size());
            for (const Expr *el : il->elems())
                elems.push_back(cloneExpr(el));
            return makeNode<InitList>(e, std::move(elems),
                                      mapType(e->type()));
          }
          default:
            UBF_PANIC("cloneExpr: not an expression");
        }
    }

    VarDecl *
    cloneLocal(const VarDecl *v)
    {
        auto *nv = makeNode<VarDecl>(v, v->name(), mapType(v->type()),
                                     v->storage(), nullptr);
        varMap_[v] = nv;
        if (v->init())
            nv->setInit(cloneExpr(v->init()));
        return nv;
    }

    Stmt *
    cloneStmt(const Stmt *s)
    {
        switch (s->kind()) {
          case NodeKind::DeclStmt:
            return makeNode<DeclStmt>(
                s, cloneLocal(s->as<DeclStmt>()->var()));
          case NodeKind::AssignStmt: {
            auto *a = s->as<AssignStmt>();
            return makeNode<AssignStmt>(s, a->op(), cloneExpr(a->lhs()),
                                        cloneExpr(a->rhs()));
          }
          case NodeKind::ExprStmt:
            return makeNode<ExprStmt>(
                s, cloneExpr(s->as<ExprStmt>()->expr()));
          case NodeKind::IfStmt: {
            auto *i = s->as<IfStmt>();
            Expr *cond = cloneExpr(i->cond());
            Block *then_b = cloneStmt(i->thenBlock())->as<Block>();
            Block *else_b =
                i->elseBlock() ? cloneStmt(i->elseBlock())->as<Block>()
                               : nullptr;
            return makeNode<IfStmt>(s, cond, then_b, else_b);
          }
          case NodeKind::ForStmt: {
            auto *f = s->as<ForStmt>();
            Stmt *init = f->init() ? cloneStmt(f->init()) : nullptr;
            Expr *cond = f->cond() ? cloneExpr(f->cond()) : nullptr;
            Stmt *step = f->step() ? cloneStmt(f->step()) : nullptr;
            Block *body = cloneStmt(f->body())->as<Block>();
            return makeNode<ForStmt>(s, init, cond, step, body);
          }
          case NodeKind::WhileStmt: {
            auto *w = s->as<WhileStmt>();
            Expr *cond = cloneExpr(w->cond());
            return makeNode<WhileStmt>(s, cond,
                                       cloneStmt(w->body())->as<Block>());
          }
          case NodeKind::Block: {
            auto *b = makeNode<Block>(s);
            for (const Stmt *child : s->as<Block>()->stmts())
                b->append(cloneStmt(child));
            return b;
          }
          case NodeKind::ReturnStmt: {
            auto *r = s->as<ReturnStmt>();
            return makeNode<ReturnStmt>(
                s, r->value() ? cloneExpr(r->value()) : nullptr);
          }
          case NodeKind::BreakStmt:
            return makeNode<BreakStmt>(s);
          case NodeKind::ContinueStmt:
            return makeNode<ContinueStmt>(s);
          default:
            UBF_PANIC("cloneStmt: not a statement");
        }
    }

    const Program &src_;
    std::unique_ptr<Program> dst_;
    std::unordered_map<const StructDecl *, StructDecl *> structMap_;
    std::unordered_map<const FieldDecl *, FieldDecl *> fieldMap_;
    std::unordered_map<const VarDecl *, VarDecl *> varMap_;
    std::unordered_map<const FunctionDecl *, FunctionDecl *> funcMap_;
};

} // namespace

ClonedProgram
cloneProgram(const Program &src)
{
    cloneCalls.fetch_add(1, std::memory_order_relaxed);

    ClonedProgram result;
    result.program = std::make_unique<Program>();
    Program &dst = *result.program;
    const ASTContext &sctx = src.ctx();
    ASTContext &dctx = dst.ctx();

    // One memcpy per arena chunk plus a context-pointer patch; every
    // node id, child index, list range, and TypeRef carries over.
    dctx.copyFrom(sctx);

    // Re-root the program-level vectors at the copied slots.
    auto map = [&dctx](const Node *n) {
        return dctx.nodeAt(n->arenaIndex());
    };
    dst.structs_.reserve(src.structs_.size());
    for (const StructDecl *s : src.structs_)
        dst.structs_.push_back(map(s)->as<StructDecl>());
    dst.globals_.reserve(src.globals_.size());
    for (const VarDecl *g : src.globals_)
        dst.globals_.push_back(map(g)->as<VarDecl>());
    dst.functions_.reserve(src.functions_.size());
    for (const FunctionDecl *f : src.functions_)
        dst.functions_.push_back(map(f)->as<FunctionDecl>());
    dst.builtins_.reserve(src.builtins_.size());
    for (const FunctionDecl *f : src.builtins_)
        dst.builtins_.push_back(map(f)->as<FunctionDecl>());
    if (src.main_)
        dst.main_ = map(src.main_)->as<FunctionDecl>();

    return result;
}

ClonedProgram
cloneProgramByRebuild(const Program &src)
{
    return Cloner(src).run();
}

uint64_t
cloneProgramCallCount()
{
    return cloneCalls.load(std::memory_order_relaxed);
}

Expr *
cloneExprInto(Program &dst, const Expr *e)
{
    ASTContext &ctx = dst.ctx();
    switch (e->kind()) {
      case NodeKind::IntLit:
        return ctx.make<IntLit>(e->as<IntLit>()->value(), e->type());
      case NodeKind::VarRef:
        return ctx.make<VarRef>(e->as<VarRef>()->decl(), e->type());
      case NodeKind::Unary: {
        auto *u = e->as<Unary>();
        return ctx.make<Unary>(u->op(), cloneExprInto(dst, u->sub()),
                               e->type());
      }
      case NodeKind::Binary: {
        auto *b = e->as<Binary>();
        return ctx.make<Binary>(b->op(), cloneExprInto(dst, b->lhs()),
                                cloneExprInto(dst, b->rhs()), e->type());
      }
      case NodeKind::Select: {
        auto *s = e->as<Select>();
        return ctx.make<Select>(cloneExprInto(dst, s->cond()),
                                cloneExprInto(dst, s->trueExpr()),
                                cloneExprInto(dst, s->falseExpr()),
                                e->type());
      }
      case NodeKind::Index: {
        auto *ix = e->as<Index>();
        return ctx.make<Index>(cloneExprInto(dst, ix->base()),
                               cloneExprInto(dst, ix->index()),
                               e->type());
      }
      case NodeKind::Member: {
        auto *m = e->as<Member>();
        return ctx.make<Member>(cloneExprInto(dst, m->base()),
                                m->field(), m->isArrow(), e->type());
      }
      case NodeKind::Cast:
        return ctx.make<Cast>(cloneExprInto(dst, e->as<Cast>()->sub()),
                              e->type());
      case NodeKind::Call: {
        auto *c = e->as<Call>();
        std::vector<Expr *> args;
        args.reserve(c->args().size());
        for (const Expr *a : c->args())
            args.push_back(cloneExprInto(dst, a));
        return ctx.make<Call>(c->callee(), std::move(args), e->type());
      }
      default:
        UBF_PANIC("cloneExprInto: unsupported expression");
    }
}

} // namespace ubfuzz::ast
