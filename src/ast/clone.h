/**
 * @file
 * Deep cloning of MiniC programs.
 *
 * UBGen generates one UB program per matched expression by cloning the
 * seed and mutating the clone. Node ids are preserved across the clone so
 * that anything recorded against the seed (matched expression ids,
 * profiling site ids, insertion points) can be located in the clone.
 *
 * With the arena representation a clone is a chunk memcpy plus a
 * context-pointer patch: node ids, arena indices, child indices, and
 * TypeRefs all carry over verbatim, so no per-node rebuild and no
 * id-map reconstruction happen. The old node-by-node rebuild survives
 * as cloneProgramByRebuild, kept as the bench_clone baseline.
 */

#ifndef UBFUZZ_AST_CLONE_H
#define UBFUZZ_AST_CLONE_H

#include <cstdint>
#include <memory>

#include "ast/ast.h"

namespace ubfuzz::ast {

/** A cloned program; node lookups go through the context's dense
 *  id -> arena-index vector (rebuilding a map per clone is gone). */
struct ClonedProgram
{
    std::unique_ptr<Program> program;

    /** Find a cloned node by the (preserved) node id; null if absent. */
    Node *
    find(uint32_t nodeId) const
    {
        return program->ctx().nodeById(nodeId);
    }

    template <typename T>
    T *
    findAs(uint32_t nodeId) const
    {
        Node *n = find(nodeId);
        UBF_ASSERT(n, "node id ", nodeId, " not present in clone");
        return n->as<T>();
    }
};

/** Deep-clone @p src, preserving node ids (arena memcpy + patch). */
ClonedProgram cloneProgram(const Program &src);

/**
 * Deep-clone @p src by re-making every node (the pre-arena algorithm).
 * Exists as the baseline bench_clone measures cloneProgram against;
 * node ids are preserved, arena layout may differ.
 */
ClonedProgram cloneProgramByRebuild(const Program &src);

/** Number of cloneProgram calls so far in this process (monotonic).
 *  Lets callers assert how many clones an operation performed. */
uint64_t cloneProgramCallCount();

/**
 * Structurally copy an expression *within the same program*: the copy
 * gets fresh node ids but references the same declarations and types.
 * Used when an expression must appear twice (e.g. a profiling call
 * logging the value of a pointer sub-expression). @p e must be pure.
 */
Expr *cloneExprInto(Program &dst, const Expr *e);

} // namespace ubfuzz::ast

#endif // UBFUZZ_AST_CLONE_H
