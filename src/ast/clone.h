/**
 * @file
 * Deep cloning of MiniC programs.
 *
 * UBGen generates one UB program per matched expression by cloning the
 * seed and mutating the clone. Node ids are preserved across the clone so
 * that anything recorded against the seed (matched expression ids,
 * profiling site ids, insertion points) can be located in the clone.
 */

#ifndef UBFUZZ_AST_CLONE_H
#define UBFUZZ_AST_CLONE_H

#include <memory>
#include <unordered_map>

#include "ast/ast.h"

namespace ubfuzz::ast {

/** A cloned program plus an id -> node index for the clone. */
struct ClonedProgram
{
    std::unique_ptr<Program> program;
    std::unordered_map<uint32_t, Node *> byId;

    /** Find a cloned node by the (preserved) node id; null if absent. */
    Node *
    find(uint32_t nodeId) const
    {
        auto it = byId.find(nodeId);
        return it == byId.end() ? nullptr : it->second;
    }

    template <typename T>
    T *
    findAs(uint32_t nodeId) const
    {
        Node *n = find(nodeId);
        UBF_ASSERT(n, "node id ", nodeId, " not present in clone");
        return n->as<T>();
    }
};

/** Deep-clone @p src, preserving node ids. */
ClonedProgram cloneProgram(const Program &src);

/**
 * Structurally copy an expression *within the same program*: the copy
 * gets fresh node ids but references the same declarations and types.
 * Used when an expression must appear twice (e.g. a profiling call
 * logging the value of a pointer sub-expression). @p e must be pure.
 */
Expr *cloneExprInto(Program &dst, const Expr *e);

} // namespace ubfuzz::ast

#endif // UBFUZZ_AST_CLONE_H
