/**
 * @file
 * MiniC abstract syntax tree.
 *
 * Every node carries a stable @c nodeId that survives deep cloning, which
 * is how UBGen matches an expression in a seed program and then rewrites
 * the corresponding node in a fresh clone (one clone per generated UB
 * program, so every output has exactly one UB).
 *
 * Ownership: all nodes live in the Program's ASTContext arena; node
 * pointers inside the tree are non-owning.
 */

#ifndef UBFUZZ_AST_AST_H
#define UBFUZZ_AST_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/type.h"
#include "support/diagnostics.h"
#include "support/source_loc.h"

namespace ubfuzz::ast {

class ASTContext;
class Block;
class Expr;
class FunctionDecl;
class VarDecl;

/** Discriminator for all AST node classes. */
enum class NodeKind : uint8_t {
    // Expressions
    IntLit, VarRef, Unary, Binary, Select, Index, Member, Cast, Call,
    InitList,
    // Statements
    DeclStmt, AssignStmt, ExprStmt, IfStmt, ForStmt, WhileStmt, Block,
    ReturnStmt, BreakStmt, ContinueStmt,
    // Declarations
    VarDecl, FieldDecl, StructDecl, FunctionDecl,
};

/** Base of every AST node. */
class Node
{
  public:
    virtual ~Node() = default;

    NodeKind kind() const { return kind_; }
    /** Stable id, preserved by cloning. */
    uint32_t nodeId() const { return nodeId_; }

    /**
     * Checked downcast. @return nullptr when the dynamic kind differs.
     */
    template <typename T>
    T *
    dynCast()
    {
        return T::classof(kind_) ? static_cast<T *>(this) : nullptr;
    }

    template <typename T>
    const T *
    dynCast() const
    {
        return T::classof(kind_) ? static_cast<const T *>(this) : nullptr;
    }

    /** Unchecked downcast with a kind assertion. */
    template <typename T>
    T *
    as()
    {
        UBF_ASSERT(T::classof(kind_), "bad AST cast");
        return static_cast<T *>(this);
    }

    template <typename T>
    const T *
    as() const
    {
        UBF_ASSERT(T::classof(kind_), "bad AST cast");
        return static_cast<const T *>(this);
    }

  protected:
    Node(NodeKind kind, uint32_t id) : kind_(kind), nodeId_(id) {}

  private:
    friend class ASTContext;
    NodeKind kind_;
    uint32_t nodeId_;
};

//===------------------------------------------------------------------===//
// Expressions
//===------------------------------------------------------------------===//

/** Base of all expressions; the static type is assigned at build time. */
class Expr : public Node
{
  public:
    static bool
    classof(NodeKind k)
    {
        return k >= NodeKind::IntLit && k <= NodeKind::InitList;
    }

    const Type *type() const { return type_; }
    void setType(const Type *t) { type_ = t; }

  protected:
    Expr(NodeKind kind, uint32_t id, const Type *type)
        : Node(kind, id), type_(type)
    {}

  private:
    const Type *type_;
};

/** Integer literal; the value is stored as the raw 64-bit pattern. */
class IntLit : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::IntLit; }

    IntLit(uint32_t id, uint64_t value, const Type *type)
        : Expr(NodeKind::IntLit, id, type), value_(value)
    {}

    uint64_t value() const { return value_; }
    int64_t signedValue() const { return static_cast<int64_t>(value_); }
    /** Mutation support (MUSIC's CRCR operator). */
    void setValue(uint64_t v) { value_ = v; }

  private:
    uint64_t value_;
};

/** Reference to a variable (global, local, or parameter). */
class VarRef : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::VarRef; }

    VarRef(uint32_t id, VarDecl *decl, const Type *type)
        : Expr(NodeKind::VarRef, id, type), decl_(decl)
    {}

    VarDecl *decl() const { return decl_; }
    void setDecl(VarDecl *d) { decl_ = d; }

  private:
    VarDecl *decl_;
};

enum class UnaryOp : uint8_t { Neg, BitNot, LogNot, Deref, AddrOf };

const char *unaryOpSpelling(UnaryOp op);

class Unary : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Unary; }

    Unary(uint32_t id, UnaryOp op, Expr *sub, const Type *type)
        : Expr(NodeKind::Unary, id, type), op_(op), sub_(sub)
    {}

    UnaryOp op() const { return op_; }
    Expr *sub() const { return sub_; }
    void setSub(Expr *e) { sub_ = e; }

  private:
    UnaryOp op_;
    Expr *sub_;
};

enum class BinaryOp : uint8_t {
    Add, Sub, Mul, Div, Rem,
    Shl, Shr,
    BitAnd, BitOr, BitXor,
    Lt, Le, Gt, Ge, Eq, Ne,
    LAnd, LOr,
};

const char *binaryOpSpelling(BinaryOp op);
bool isArithOp(BinaryOp op);      ///< Add/Sub/Mul
bool isDivRemOp(BinaryOp op);     ///< Div/Rem
bool isShiftOp(BinaryOp op);      ///< Shl/Shr
bool isComparisonOp(BinaryOp op); ///< Lt..Ne
bool isLogicalOp(BinaryOp op);    ///< LAnd/LOr
/** C-style precedence level for the printer (higher binds tighter). */
int binaryOpPrecedence(BinaryOp op);

class Binary : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Binary; }

    Binary(uint32_t id, BinaryOp op, Expr *lhs, Expr *rhs, const Type *type)
        : Expr(NodeKind::Binary, id, type), op_(op), lhs_(lhs), rhs_(rhs)
    {}

    BinaryOp op() const { return op_; }
    void setOp(BinaryOp op) { op_ = op; }
    Expr *lhs() const { return lhs_; }
    Expr *rhs() const { return rhs_; }
    void setLhs(Expr *e) { lhs_ = e; }
    void setRhs(Expr *e) { rhs_ = e; }

  private:
    BinaryOp op_;
    Expr *lhs_;
    Expr *rhs_;
};

/** Ternary conditional `c ? t : f` — used by Csmith-style safe wrappers. */
class Select : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Select; }

    Select(uint32_t id, Expr *cond, Expr *t, Expr *f, const Type *type)
        : Expr(NodeKind::Select, id, type), cond_(cond), true_(t), false_(f)
    {}

    Expr *cond() const { return cond_; }
    Expr *trueExpr() const { return true_; }
    Expr *falseExpr() const { return false_; }
    void setCond(Expr *e) { cond_ = e; }
    void setTrueExpr(Expr *e) { true_ = e; }
    void setFalseExpr(Expr *e) { false_ = e; }

  private:
    Expr *cond_;
    Expr *true_;
    Expr *false_;
};

/** Array/pointer subscript `base[index]`. */
class Index : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Index; }

    Index(uint32_t id, Expr *base, Expr *index, const Type *type)
        : Expr(NodeKind::Index, id, type), base_(base), index_(index)
    {}

    Expr *base() const { return base_; }
    Expr *index() const { return index_; }
    void setBase(Expr *e) { base_ = e; }
    void setIndex(Expr *e) { index_ = e; }

  private:
    Expr *base_;
    Expr *index_;
};

class FieldDecl;

/** Struct member access `base.f` or `base->f`. */
class Member : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Member; }

    Member(uint32_t id, Expr *base, const FieldDecl *field, bool arrow,
           const Type *type)
        : Expr(NodeKind::Member, id, type), base_(base), field_(field),
          arrow_(arrow)
    {}

    Expr *base() const { return base_; }
    const FieldDecl *field() const { return field_; }
    bool isArrow() const { return arrow_; }
    void setBase(Expr *e) { base_ = e; }
    void setField(const FieldDecl *f) { field_ = f; }

  private:
    Expr *base_;
    const FieldDecl *field_;
    bool arrow_;
};

/** Explicit cast `(T)e`. */
class Cast : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Cast; }

    Cast(uint32_t id, Expr *sub, const Type *to)
        : Expr(NodeKind::Cast, id, to), sub_(sub)
    {}

    Expr *sub() const { return sub_; }
    void setSub(Expr *e) { sub_ = e; }

  private:
    Expr *sub_;
};

/** Direct call to a named function or builtin. */
class Call : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Call; }

    Call(uint32_t id, FunctionDecl *callee, std::vector<Expr *> args,
         const Type *type)
        : Expr(NodeKind::Call, id, type), callee_(callee),
          args_(std::move(args))
    {}

    FunctionDecl *callee() const { return callee_; }
    void setCallee(FunctionDecl *f) { callee_ = f; }
    const std::vector<Expr *> &args() const { return args_; }
    std::vector<Expr *> &args() { return args_; }

  private:
    FunctionDecl *callee_;
    std::vector<Expr *> args_;
};

/** Brace initializer list; only valid as an array VarDecl initializer. */
class InitList : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::InitList; }

    InitList(uint32_t id, std::vector<Expr *> elems, const Type *type)
        : Expr(NodeKind::InitList, id, type), elems_(std::move(elems))
    {}

    const std::vector<Expr *> &elems() const { return elems_; }
    std::vector<Expr *> &elems() { return elems_; }

  private:
    std::vector<Expr *> elems_;
};

//===------------------------------------------------------------------===//
// Statements
//===------------------------------------------------------------------===//

class Stmt : public Node
{
  public:
    static bool
    classof(NodeKind k)
    {
        return k >= NodeKind::DeclStmt && k <= NodeKind::ContinueStmt;
    }

  protected:
    using Node::Node;
};

/** Local variable declaration statement. */
class DeclStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::DeclStmt; }

    DeclStmt(uint32_t id, VarDecl *var) : Stmt(NodeKind::DeclStmt, id),
                                          var_(var)
    {}

    VarDecl *var() const { return var_; }
    void setVar(VarDecl *v) { var_ = v; }

  private:
    VarDecl *var_;
};

enum class AssignOp : uint8_t {
    Assign, AddAssign, SubAssign, MulAssign, AndAssign, OrAssign, XorAssign,
};

const char *assignOpSpelling(AssignOp op);
/** The arithmetic op behind a compound assignment (Assign -> none). */
BinaryOp assignOpBinary(AssignOp op);

/** Assignment `lhs op= rhs`; the lhs must be an lvalue expression. */
class AssignStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::AssignStmt; }

    AssignStmt(uint32_t id, AssignOp op, Expr *lhs, Expr *rhs)
        : Stmt(NodeKind::AssignStmt, id), op_(op), lhs_(lhs), rhs_(rhs)
    {}

    AssignOp op() const { return op_; }
    Expr *lhs() const { return lhs_; }
    Expr *rhs() const { return rhs_; }
    void setLhs(Expr *e) { lhs_ = e; }
    void setRhs(Expr *e) { rhs_ = e; }

  private:
    AssignOp op_;
    Expr *lhs_;
    Expr *rhs_;
};

/** Expression evaluated for effect (calls, profiling builtins). */
class ExprStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::ExprStmt; }

    ExprStmt(uint32_t id, Expr *expr) : Stmt(NodeKind::ExprStmt, id),
                                        expr_(expr)
    {}

    Expr *expr() const { return expr_; }
    void setExpr(Expr *e) { expr_ = e; }

  private:
    Expr *expr_;
};

class IfStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::IfStmt; }

    IfStmt(uint32_t id, Expr *cond, Block *thenBlock, Block *elseBlock)
        : Stmt(NodeKind::IfStmt, id), cond_(cond), then_(thenBlock),
          else_(elseBlock)
    {}

    Expr *cond() const { return cond_; }
    Block *thenBlock() const { return then_; }
    Block *elseBlock() const { return else_; }
    void setCond(Expr *e) { cond_ = e; }

  private:
    Expr *cond_;
    Block *then_;
    Block *else_;
};

class ForStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::ForStmt; }

    ForStmt(uint32_t id, Stmt *init, Expr *cond, Stmt *step, Block *body)
        : Stmt(NodeKind::ForStmt, id), init_(init), cond_(cond),
          step_(step), body_(body)
    {}

    Stmt *init() const { return init_; }
    Expr *cond() const { return cond_; }
    Stmt *step() const { return step_; }
    Block *body() const { return body_; }
    void setCond(Expr *e) { cond_ = e; }

  private:
    Stmt *init_;
    Expr *cond_;
    Stmt *step_;
    Block *body_;
};

class WhileStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::WhileStmt; }

    WhileStmt(uint32_t id, Expr *cond, Block *body)
        : Stmt(NodeKind::WhileStmt, id), cond_(cond), body_(body)
    {}

    Expr *cond() const { return cond_; }
    Block *body() const { return body_; }
    void setCond(Expr *e) { cond_ = e; }

  private:
    Expr *cond_;
    Block *body_;
};

/** Braced statement list; opens a lexical scope. */
class Block : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Block; }

    explicit Block(uint32_t id) : Stmt(NodeKind::Block, id) {}

    const std::vector<Stmt *> &stmts() const { return stmts_; }
    std::vector<Stmt *> &stmts() { return stmts_; }

    void append(Stmt *s) { stmts_.push_back(s); }
    void
    insert(size_t pos, Stmt *s)
    {
        UBF_ASSERT(pos <= stmts_.size(), "block insert out of range");
        stmts_.insert(stmts_.begin() + pos, s);
    }

  private:
    std::vector<Stmt *> stmts_;
};

class ReturnStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::ReturnStmt; }

    ReturnStmt(uint32_t id, Expr *value) : Stmt(NodeKind::ReturnStmt, id),
                                           value_(value)
    {}

    Expr *value() const { return value_; }
    void setValue(Expr *e) { value_ = e; }

  private:
    Expr *value_;
};

class BreakStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::BreakStmt; }
    explicit BreakStmt(uint32_t id) : Stmt(NodeKind::BreakStmt, id) {}
};

class ContinueStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::ContinueStmt; }
    explicit ContinueStmt(uint32_t id) : Stmt(NodeKind::ContinueStmt, id) {}
};

//===------------------------------------------------------------------===//
// Declarations
//===------------------------------------------------------------------===//

enum class Storage : uint8_t { Global, Local, Param };

class VarDecl : public Node
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::VarDecl; }

    VarDecl(uint32_t id, std::string name, const Type *type,
            Storage storage, Expr *init)
        : Node(NodeKind::VarDecl, id), name_(std::move(name)), type_(type),
          storage_(storage), init_(init)
    {}

    const std::string &name() const { return name_; }
    const Type *type() const { return type_; }
    Storage storage() const { return storage_; }
    Expr *init() const { return init_; }
    void setInit(Expr *e) { init_ = e; }

  private:
    std::string name_;
    const Type *type_;
    Storage storage_;
    Expr *init_;
};

class FieldDecl : public Node
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::FieldDecl; }

    FieldDecl(uint32_t id, std::string name, const Type *type)
        : Node(NodeKind::FieldDecl, id), name_(std::move(name)), type_(type)
    {}

    const std::string &name() const { return name_; }
    const Type *type() const { return type_; }
    uint64_t offset() const { return offset_; }
    void setOffset(uint64_t off) { offset_ = off; }

  private:
    std::string name_;
    const Type *type_;
    uint64_t offset_ = 0;
};

class StructDecl : public Node
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::StructDecl; }

    StructDecl(uint32_t id, std::string name)
        : Node(NodeKind::StructDecl, id), name_(std::move(name))
    {}

    const std::string &name() const { return name_; }
    const std::vector<FieldDecl *> &fields() const { return fields_; }

    /** Append a field; offsets/size are (re)computed with C layout. */
    void addField(FieldDecl *f);

    const FieldDecl *findField(const std::string &name) const;

    uint64_t size() const { return size_; }
    uint64_t align() const { return align_; }

  private:
    std::string name_;
    std::vector<FieldDecl *> fields_;
    uint64_t size_ = 0;
    uint64_t align_ = 1;
};

/** Builtin functions the VM implements natively. */
enum class Builtin : uint8_t {
    None,          ///< ordinary user function
    Malloc,        ///< char *__malloc(long size)
    Free,          ///< void __free(char *p)
    Checksum,      ///< void __checksum(long v): folds v into the output
    LogVal,        ///< void __log_val(long site, long v)
    LogPtr,        ///< void __log_ptr(long site, char *p)
    LogBuf,        ///< void __log_buf(long site, char *p, long size)
    LogScopeEnter, ///< void __log_scope_enter(long blockId)
    LogScopeExit,  ///< void __log_scope_exit(long blockId)
};

class FunctionDecl : public Node
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::FunctionDecl; }

    FunctionDecl(uint32_t id, std::string name, const Type *retType)
        : Node(NodeKind::FunctionDecl, id), name_(std::move(name)),
          retType_(retType)
    {}

    const std::string &name() const { return name_; }
    const Type *retType() const { return retType_; }

    const std::vector<VarDecl *> &params() const { return params_; }
    void addParam(VarDecl *p) { params_.push_back(p); }

    Block *body() const { return body_; }
    void setBody(Block *b) { body_ = b; }

    Builtin builtin() const { return builtin_; }
    void setBuiltin(Builtin b) { builtin_ = b; }
    bool isBuiltin() const { return builtin_ != Builtin::None; }

  private:
    std::string name_;
    const Type *retType_;
    std::vector<VarDecl *> params_;
    Block *body_ = nullptr;
    Builtin builtin_ = Builtin::None;
};

//===------------------------------------------------------------------===//
// Context and Program
//===------------------------------------------------------------------===//

/** Arena owning every AST node of one Program, plus its TypeTable. */
class ASTContext
{
  public:
    TypeTable &types() { return types_; }

    /** Allocate a node with a fresh nodeId. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        auto node = std::make_unique<T>(nextId_++,
                                        std::forward<Args>(args)...);
        T *raw = node.get();
        nodes_.push_back(std::move(node));
        return raw;
    }

    /** Allocate a node with a specific nodeId (cloning support). */
    template <typename T, typename... Args>
    T *
    makeWithId(uint32_t id, Args &&...args)
    {
        if (id >= nextId_)
            nextId_ = id + 1;
        auto node = std::make_unique<T>(id, std::forward<Args>(args)...);
        T *raw = node.get();
        nodes_.push_back(std::move(node));
        return raw;
    }

    uint32_t peekNextId() const { return nextId_; }

  private:
    TypeTable types_;
    std::vector<std::unique_ptr<Node>> nodes_;
    uint32_t nextId_ = 1;
};

/** A whole MiniC translation unit. */
class Program
{
  public:
    Program();

    ASTContext &ctx() { return ctx_; }
    TypeTable &types() { return ctx_.types(); }

    std::vector<StructDecl *> &structs() { return structs_; }
    const std::vector<StructDecl *> &structs() const { return structs_; }
    std::vector<VarDecl *> &globals() { return globals_; }
    const std::vector<VarDecl *> &globals() const { return globals_; }
    std::vector<FunctionDecl *> &functions() { return functions_; }
    const std::vector<FunctionDecl *> &functions() const
    {
        return functions_;
    }

    FunctionDecl *main() const { return main_; }
    void setMain(FunctionDecl *f) { main_ = f; }

    FunctionDecl *findFunction(const std::string &name) const;
    VarDecl *findGlobal(const std::string &name) const;
    StructDecl *findStruct(const std::string &name) const;

    /** The lazily-created builtin declaration for @p b. */
    FunctionDecl *builtin(Builtin b);

  private:
    ASTContext ctx_;
    std::vector<StructDecl *> structs_;
    std::vector<VarDecl *> globals_;
    std::vector<FunctionDecl *> functions_;
    std::vector<FunctionDecl *> builtins_;
    FunctionDecl *main_ = nullptr;
};

/** True if @p e can appear on the left of an assignment. */
bool isLValue(const Expr *e);

/**
 * Invoke @p fn on each direct child expression of @p e.
 * @p fn receives (Expr *child).
 */
template <typename F>
void
forEachChildExpr(Expr *e, F &&fn)
{
    switch (e->kind()) {
      case NodeKind::IntLit:
      case NodeKind::VarRef:
        break;
      case NodeKind::Unary:
        fn(e->as<Unary>()->sub());
        break;
      case NodeKind::Binary:
        fn(e->as<Binary>()->lhs());
        fn(e->as<Binary>()->rhs());
        break;
      case NodeKind::Select:
        fn(e->as<Select>()->cond());
        fn(e->as<Select>()->trueExpr());
        fn(e->as<Select>()->falseExpr());
        break;
      case NodeKind::Index:
        fn(e->as<Index>()->base());
        fn(e->as<Index>()->index());
        break;
      case NodeKind::Member:
        fn(e->as<Member>()->base());
        break;
      case NodeKind::Cast:
        fn(e->as<Cast>()->sub());
        break;
      case NodeKind::Call:
        for (Expr *a : e->as<Call>()->args())
            fn(a);
        break;
      case NodeKind::InitList:
        for (Expr *el : e->as<InitList>()->elems())
            fn(el);
        break;
      default:
        UBF_PANIC("forEachChildExpr: not an expression");
    }
}

} // namespace ubfuzz::ast

#endif // UBFUZZ_AST_AST_H
