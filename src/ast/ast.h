/**
 * @file
 * MiniC abstract syntax tree, arena-backed.
 *
 * Every node carries a stable @c nodeId that survives deep cloning, which
 * is how UBGen matches an expression in a seed program and then rewrites
 * the corresponding node in a fresh clone (one clone per generated UB
 * program, so every output has exactly one UB).
 *
 * Representation: nodes live in fixed-size 64-byte slots inside the
 * Program's ASTContext arena (chunked so slots never move), addressed by
 * NodeIndex. Children and cross-references (VarRef -> VarDecl, callees,
 * struct fields) are stored as NodeIndex, variable-arity children
 * (block statements, call args, init lists, fields, params) as
 * (offset, length) ranges into a shared index pool, and names as ranges
 * into a shared string pool. Node slots are therefore trivially
 * copyable: cloneProgram is a chunk memcpy plus a context-pointer
 * patch, and an AST-subtree fingerprint is a hash over a contiguous
 * slot range (ASTContext::hashNodeRange). The accessors still traffic
 * in node pointers — arena chunks never move, so `Node *` is stable
 * within one program — which keeps every consumer written against the
 * pointer API working unchanged.
 */

#ifndef UBFUZZ_AST_AST_H
#define UBFUZZ_AST_AST_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "ast/type.h"
#include "support/diagnostics.h"
#include "support/source_loc.h"

namespace ubfuzz::ast {

class ASTContext;
class Block;
class Expr;
class FunctionDecl;
class VarDecl;
class FieldDecl;
struct ClonedProgram;

/** Index of a node slot in its ASTContext arena. */
using NodeIndex = uint32_t;
inline constexpr NodeIndex kNullNode = 0xFFFFFFFFu;

/** An (offset, length, capacity) range into the context's index pool. */
struct ListRange
{
    uint32_t off = 0;
    uint32_t len = 0;
    uint32_t cap = 0;
};

/** Discriminator for all AST node classes. */
enum class NodeKind : uint8_t {
    // Expressions
    IntLit, VarRef, Unary, Binary, Select, Index, Member, Cast, Call,
    InitList,
    // Statements
    DeclStmt, AssignStmt, ExprStmt, IfStmt, ForStmt, WhileStmt, Block,
    ReturnStmt, BreakStmt, ContinueStmt,
    // Declarations
    VarDecl, FieldDecl, StructDecl, FunctionDecl,
};

/**
 * Base of every AST node: a 24-byte header. The context pointer sits
 * alone in bytes [16, 24) so hashNodeRange can hash everything else —
 * kind, nodeId, arena index, and the whole derived payload (which
 * starts at byte 24) — while skipping the one field that legitimately
 * differs between a program and its memcpy clone.
 */
class Node
{
  public:
    NodeKind kind() const { return kind_; }
    /** Stable id, preserved by cloning. */
    uint32_t nodeId() const { return nodeId_; }
    /** This node's slot index in the arena. */
    NodeIndex arenaIndex() const { return index_; }
    ASTContext &ctx() const { return *ctx_; }

    /**
     * Checked downcast. @return nullptr when the dynamic kind differs.
     */
    template <typename T>
    T *
    dynCast()
    {
        return T::classof(kind_) ? static_cast<T *>(this) : nullptr;
    }

    template <typename T>
    const T *
    dynCast() const
    {
        return T::classof(kind_) ? static_cast<const T *>(this) : nullptr;
    }

    /** Unchecked downcast with a kind assertion. */
    template <typename T>
    T *
    as()
    {
        UBF_ASSERT(T::classof(kind_), "bad AST cast");
        return static_cast<T *>(this);
    }

    template <typename T>
    const T *
    as() const
    {
        UBF_ASSERT(T::classof(kind_), "bad AST cast");
        return static_cast<const T *>(this);
    }

  protected:
    Node(ASTContext *ctx, NodeKind kind, uint32_t id)
        : kind_(kind), nodeId_(id), ctx_(ctx)
    {}

    /** The arena index of @p n (kNullNode for nullptr). */
    static NodeIndex
    refOf(const Node *n)
    {
        return n ? n->index_ : kNullNode;
    }

    Node *deref(NodeIndex i) const;

    template <typename T>
    T *
    derefAs(NodeIndex i) const
    {
        return i == kNullNode ? nullptr : static_cast<T *>(deref(i));
    }

    const Type *typeAt(TypeRef r) const;

  private:
    friend class ASTContext;
    NodeKind kind_;
    uint8_t pad0_[3] = {0, 0, 0};
    uint32_t nodeId_;
    NodeIndex index_ = kNullNode;
    uint32_t pad1_ = 0;
    ASTContext *ctx_;
};

static_assert(sizeof(Node) == 24, "node header layout");

/**
 * Lightweight view of a node-index list in the shared pool, yielding
 * `T *`. Iteration is index-based (re-reads the owning range and the
 * pool on every access), so it stays valid across pool growth and
 * range relocation; only erasing below the cursor shifts elements.
 */
template <typename T>
class NodeListRef
{
  public:
    NodeListRef(const ASTContext *ctx, const ListRange *range)
        : ctx_(ctx), range_(range)
    {}

    size_t size() const { return range_->len; }
    bool empty() const { return range_->len == 0; }
    T *operator[](size_t i) const;

    class iterator
    {
      public:
        iterator(const NodeListRef *list, size_t i) : list_(list), i_(i) {}
        T *operator*() const { return (*list_)[i_]; }
        iterator &operator++() { i_++; return *this; }
        bool
        operator!=(const iterator &o) const
        {
            return i_ != o.i_;
        }
        bool
        operator==(const iterator &o) const
        {
            return i_ == o.i_;
        }

      private:
        const NodeListRef *list_;
        size_t i_;
    };

    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, range_->len); }

  private:
    const ASTContext *ctx_;
    const ListRange *range_;
};

//===------------------------------------------------------------------===//
// Expressions
//===------------------------------------------------------------------===//

/** Base of all expressions; the static type is assigned at build time. */
class Expr : public Node
{
  public:
    static bool
    classof(NodeKind k)
    {
        return k >= NodeKind::IntLit && k <= NodeKind::InitList;
    }

    const Type *type() const { return typeAt(type_); }
    void setType(const Type *t) { type_ = TypeTable::refOf(t); }

  protected:
    Expr(ASTContext *ctx, NodeKind kind, uint32_t id, const Type *type)
        : Node(ctx, kind, id), type_(TypeTable::refOf(type))
    {}

  private:
    TypeRef type_;
};

/** Integer literal; the value is stored as the raw 64-bit pattern. */
class IntLit : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::IntLit; }

    IntLit(ASTContext *ctx, uint32_t id, uint64_t value, const Type *type)
        : Expr(ctx, NodeKind::IntLit, id, type), value_(value)
    {}

    uint64_t value() const { return value_; }
    int64_t signedValue() const { return static_cast<int64_t>(value_); }
    /** Mutation support (MUSIC's CRCR operator). */
    void setValue(uint64_t v) { value_ = v; }

  private:
    uint64_t value_;
};

/** Reference to a variable (global, local, or parameter). */
class VarRef : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::VarRef; }

    VarRef(ASTContext *ctx, uint32_t id, VarDecl *decl, const Type *type)
        : Expr(ctx, NodeKind::VarRef, id, type),
          decl_(refOf(reinterpret_cast<const Node *>(decl)))
    {}

    VarDecl *decl() const;
    void setDecl(VarDecl *d);

  private:
    NodeIndex decl_;
};

enum class UnaryOp : uint8_t { Neg, BitNot, LogNot, Deref, AddrOf };

const char *unaryOpSpelling(UnaryOp op);

class Unary : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Unary; }

    Unary(ASTContext *ctx, uint32_t id, UnaryOp op, Expr *sub,
          const Type *type)
        : Expr(ctx, NodeKind::Unary, id, type), op_(op), sub_(refOf(sub))
    {}

    UnaryOp op() const { return op_; }
    Expr *sub() const { return derefAs<Expr>(sub_); }
    void setSub(Expr *e) { sub_ = refOf(e); }

  private:
    UnaryOp op_;
    NodeIndex sub_;
};

enum class BinaryOp : uint8_t {
    Add, Sub, Mul, Div, Rem,
    Shl, Shr,
    BitAnd, BitOr, BitXor,
    Lt, Le, Gt, Ge, Eq, Ne,
    LAnd, LOr,
};

const char *binaryOpSpelling(BinaryOp op);
bool isArithOp(BinaryOp op);      ///< Add/Sub/Mul
bool isDivRemOp(BinaryOp op);     ///< Div/Rem
bool isShiftOp(BinaryOp op);      ///< Shl/Shr
bool isComparisonOp(BinaryOp op); ///< Lt..Ne
bool isLogicalOp(BinaryOp op);    ///< LAnd/LOr
/** C-style precedence level for the printer (higher binds tighter). */
int binaryOpPrecedence(BinaryOp op);

class Binary : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Binary; }

    Binary(ASTContext *ctx, uint32_t id, BinaryOp op, Expr *lhs, Expr *rhs,
           const Type *type)
        : Expr(ctx, NodeKind::Binary, id, type), op_(op), lhs_(refOf(lhs)),
          rhs_(refOf(rhs))
    {}

    BinaryOp op() const { return op_; }
    void setOp(BinaryOp op) { op_ = op; }
    Expr *lhs() const { return derefAs<Expr>(lhs_); }
    Expr *rhs() const { return derefAs<Expr>(rhs_); }
    void setLhs(Expr *e) { lhs_ = refOf(e); }
    void setRhs(Expr *e) { rhs_ = refOf(e); }

  private:
    BinaryOp op_;
    NodeIndex lhs_;
    NodeIndex rhs_;
};

/** Ternary conditional `c ? t : f` — used by Csmith-style safe wrappers. */
class Select : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Select; }

    Select(ASTContext *ctx, uint32_t id, Expr *cond, Expr *t, Expr *f,
           const Type *type)
        : Expr(ctx, NodeKind::Select, id, type), cond_(refOf(cond)),
          true_(refOf(t)), false_(refOf(f))
    {}

    Expr *cond() const { return derefAs<Expr>(cond_); }
    Expr *trueExpr() const { return derefAs<Expr>(true_); }
    Expr *falseExpr() const { return derefAs<Expr>(false_); }
    void setCond(Expr *e) { cond_ = refOf(e); }
    void setTrueExpr(Expr *e) { true_ = refOf(e); }
    void setFalseExpr(Expr *e) { false_ = refOf(e); }

  private:
    NodeIndex cond_;
    NodeIndex true_;
    NodeIndex false_;
};

/** Array/pointer subscript `base[index]`. */
class Index : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Index; }

    Index(ASTContext *ctx, uint32_t id, Expr *base, Expr *index,
          const Type *type)
        : Expr(ctx, NodeKind::Index, id, type), base_(refOf(base)),
          index_(refOf(index))
    {}

    Expr *base() const { return derefAs<Expr>(base_); }
    Expr *index() const { return derefAs<Expr>(index_); }
    void setBase(Expr *e) { base_ = refOf(e); }
    void setIndex(Expr *e) { index_ = refOf(e); }

  private:
    NodeIndex base_;
    NodeIndex index_;
};

/** Struct member access `base.f` or `base->f`. */
class Member : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Member; }

    Member(ASTContext *ctx, uint32_t id, Expr *base, const FieldDecl *field,
           bool arrow, const Type *type)
        : Expr(ctx, NodeKind::Member, id, type), base_(refOf(base)),
          field_(refOf(reinterpret_cast<const Node *>(field))),
          arrow_(arrow)
    {}

    Expr *base() const { return derefAs<Expr>(base_); }
    const FieldDecl *field() const;
    bool isArrow() const { return arrow_; }
    void setBase(Expr *e) { base_ = refOf(e); }
    void setField(const FieldDecl *f);

  private:
    NodeIndex base_;
    NodeIndex field_;
    bool arrow_;
};

/** Explicit cast `(T)e`. */
class Cast : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Cast; }

    Cast(ASTContext *ctx, uint32_t id, Expr *sub, const Type *to)
        : Expr(ctx, NodeKind::Cast, id, to), sub_(refOf(sub))
    {}

    Expr *sub() const { return derefAs<Expr>(sub_); }
    void setSub(Expr *e) { sub_ = refOf(e); }

  private:
    NodeIndex sub_;
};

/** Direct call to a named function or builtin. */
class Call : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Call; }

    Call(ASTContext *ctx, uint32_t id, FunctionDecl *callee,
         const std::vector<Expr *> &args, const Type *type);

    FunctionDecl *callee() const;
    void setCallee(FunctionDecl *f);
    NodeListRef<Expr> args() const { return {&ctx(), &args_}; }

  private:
    NodeIndex callee_;
    ListRange args_;
};

/** Brace initializer list; only valid as an array VarDecl initializer. */
class InitList : public Expr
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::InitList; }

    InitList(ASTContext *ctx, uint32_t id, const std::vector<Expr *> &elems,
             const Type *type);

    NodeListRef<Expr> elems() const { return {&ctx(), &elems_}; }

  private:
    ListRange elems_;
};

//===------------------------------------------------------------------===//
// Statements
//===------------------------------------------------------------------===//

class Stmt : public Node
{
  public:
    static bool
    classof(NodeKind k)
    {
        return k >= NodeKind::DeclStmt && k <= NodeKind::ContinueStmt;
    }

  protected:
    using Node::Node;
};

/** Local variable declaration statement. */
class DeclStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::DeclStmt; }

    DeclStmt(ASTContext *ctx, uint32_t id, VarDecl *var)
        : Stmt(ctx, NodeKind::DeclStmt, id),
          var_(refOf(reinterpret_cast<const Node *>(var)))
    {}

    VarDecl *var() const;
    void setVar(VarDecl *v);

  private:
    NodeIndex var_;
};

enum class AssignOp : uint8_t {
    Assign, AddAssign, SubAssign, MulAssign, AndAssign, OrAssign, XorAssign,
};

const char *assignOpSpelling(AssignOp op);
/** The arithmetic op behind a compound assignment (Assign -> none). */
BinaryOp assignOpBinary(AssignOp op);

/** Assignment `lhs op= rhs`; the lhs must be an lvalue expression. */
class AssignStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::AssignStmt; }

    AssignStmt(ASTContext *ctx, uint32_t id, AssignOp op, Expr *lhs,
               Expr *rhs)
        : Stmt(ctx, NodeKind::AssignStmt, id), op_(op), lhs_(refOf(lhs)),
          rhs_(refOf(rhs))
    {}

    AssignOp op() const { return op_; }
    Expr *lhs() const { return derefAs<Expr>(lhs_); }
    Expr *rhs() const { return derefAs<Expr>(rhs_); }
    void setLhs(Expr *e) { lhs_ = refOf(e); }
    void setRhs(Expr *e) { rhs_ = refOf(e); }

  private:
    AssignOp op_;
    NodeIndex lhs_;
    NodeIndex rhs_;
};

/** Expression evaluated for effect (calls, profiling builtins). */
class ExprStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::ExprStmt; }

    ExprStmt(ASTContext *ctx, uint32_t id, Expr *expr)
        : Stmt(ctx, NodeKind::ExprStmt, id), expr_(refOf(expr))
    {}

    Expr *expr() const { return derefAs<Expr>(expr_); }
    void setExpr(Expr *e) { expr_ = refOf(e); }

  private:
    NodeIndex expr_;
};

class IfStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::IfStmt; }

    IfStmt(ASTContext *ctx, uint32_t id, Expr *cond, Block *thenBlock,
           Block *elseBlock);

    Expr *cond() const { return derefAs<Expr>(cond_); }
    Block *thenBlock() const;
    Block *elseBlock() const;
    void setCond(Expr *e) { cond_ = refOf(e); }

  private:
    NodeIndex cond_;
    NodeIndex then_;
    NodeIndex else_;
};

class ForStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::ForStmt; }

    ForStmt(ASTContext *ctx, uint32_t id, Stmt *init, Expr *cond,
            Stmt *step, Block *body);

    Stmt *init() const { return derefAs<Stmt>(init_); }
    Expr *cond() const { return derefAs<Expr>(cond_); }
    Stmt *step() const { return derefAs<Stmt>(step_); }
    Block *body() const;
    void setCond(Expr *e) { cond_ = refOf(e); }

  private:
    NodeIndex init_;
    NodeIndex cond_;
    NodeIndex step_;
    NodeIndex body_;
};

class WhileStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::WhileStmt; }

    WhileStmt(ASTContext *ctx, uint32_t id, Expr *cond, Block *body);

    Expr *cond() const { return derefAs<Expr>(cond_); }
    Block *body() const;
    void setCond(Expr *e) { cond_ = refOf(e); }

  private:
    NodeIndex cond_;
    NodeIndex body_;
};

/** Braced statement list; opens a lexical scope. */
class Block : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::Block; }

    explicit Block(ASTContext *ctx, uint32_t id)
        : Stmt(ctx, NodeKind::Block, id)
    {}

    NodeListRef<Stmt> stmts() const { return {&ctx(), &stmts_}; }

    void append(Stmt *s);
    void insert(size_t pos, Stmt *s);
    void eraseAt(size_t pos);

  private:
    ListRange stmts_;
};

class ReturnStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::ReturnStmt; }

    ReturnStmt(ASTContext *ctx, uint32_t id, Expr *value)
        : Stmt(ctx, NodeKind::ReturnStmt, id), value_(refOf(value))
    {}

    Expr *value() const { return derefAs<Expr>(value_); }
    void setValue(Expr *e) { value_ = refOf(e); }

  private:
    NodeIndex value_;
};

class BreakStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::BreakStmt; }
    explicit BreakStmt(ASTContext *ctx, uint32_t id)
        : Stmt(ctx, NodeKind::BreakStmt, id)
    {}
};

class ContinueStmt : public Stmt
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::ContinueStmt; }
    explicit ContinueStmt(ASTContext *ctx, uint32_t id)
        : Stmt(ctx, NodeKind::ContinueStmt, id)
    {}
};

//===------------------------------------------------------------------===//
// Declarations
//===------------------------------------------------------------------===//

enum class Storage : uint8_t { Global, Local, Param };

class VarDecl : public Node
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::VarDecl; }

    VarDecl(ASTContext *ctx, uint32_t id, std::string_view name,
            const Type *type, Storage storage, Expr *init);

    std::string_view name() const;
    const Type *type() const { return typeAt(type_); }
    Storage storage() const { return storage_; }
    Expr *init() const { return derefAs<Expr>(init_); }
    void setInit(Expr *e) { init_ = refOf(e); }

  private:
    uint32_t nameOff_;
    uint32_t nameLen_;
    TypeRef type_;
    Storage storage_;
    NodeIndex init_;
};

class FieldDecl : public Node
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::FieldDecl; }

    FieldDecl(ASTContext *ctx, uint32_t id, std::string_view name,
              const Type *type);

    std::string_view name() const;
    const Type *type() const { return typeAt(type_); }
    uint64_t offset() const { return offset_; }
    void setOffset(uint64_t off) { offset_ = off; }

  private:
    uint32_t nameOff_;
    uint32_t nameLen_;
    TypeRef type_;
    uint64_t offset_ = 0;
};

class StructDecl : public Node
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::StructDecl; }

    StructDecl(ASTContext *ctx, uint32_t id, std::string_view name);

    std::string_view name() const;
    NodeListRef<FieldDecl> fields() const { return {&ctx(), &fields_}; }

    /** Append a field; offsets/size are (re)computed with C layout. */
    void addField(FieldDecl *f);

    const FieldDecl *findField(std::string_view name) const;

    uint64_t size() const { return size_; }
    uint64_t align() const { return align_; }

  private:
    uint32_t nameOff_;
    uint32_t nameLen_;
    ListRange fields_;
    uint32_t size_ = 0;
    uint32_t align_ = 1;
};

/** Builtin functions the VM implements natively. */
enum class Builtin : uint8_t {
    None,          ///< ordinary user function
    Malloc,        ///< char *__malloc(long size)
    Free,          ///< void __free(char *p)
    Checksum,      ///< void __checksum(long v): folds v into the output
    LogVal,        ///< void __log_val(long site, long v)
    LogPtr,        ///< void __log_ptr(long site, char *p)
    LogBuf,        ///< void __log_buf(long site, char *p, long size)
    LogScopeEnter, ///< void __log_scope_enter(long blockId)
    LogScopeExit,  ///< void __log_scope_exit(long blockId)
};

class FunctionDecl : public Node
{
  public:
    static bool classof(NodeKind k) { return k == NodeKind::FunctionDecl; }

    FunctionDecl(ASTContext *ctx, uint32_t id, std::string_view name,
                 const Type *retType);

    std::string_view name() const;
    const Type *retType() const { return typeAt(retType_); }

    NodeListRef<VarDecl> params() const { return {&ctx(), &params_}; }
    void addParam(VarDecl *p);

    Block *body() const { return derefAs<Block>(body_); }
    void setBody(Block *b);

    Builtin builtin() const { return builtin_; }
    void setBuiltin(Builtin b) { builtin_ = b; }
    bool isBuiltin() const { return builtin_ != Builtin::None; }

  private:
    uint32_t nameOff_;
    uint32_t nameLen_;
    TypeRef retType_;
    ListRange params_;
    NodeIndex body_ = kNullNode;
    Builtin builtin_ = Builtin::None;
};

//===------------------------------------------------------------------===//
// Context and Program
//===------------------------------------------------------------------===//

/**
 * Arena owning every AST node of one Program, plus its TypeTable and
 * the shared index/string pools. Slots are fixed 64-byte chunks of
 * raw storage; chunks never move, so node pointers are stable for the
 * program's lifetime, and a whole context can be duplicated with
 * copyFrom (chunk memcpy + ctx-pointer patch) in O(chunks).
 */
class ASTContext
{
  public:
    static constexpr uint32_t kSlotBytes = 64;
    static constexpr uint32_t kChunkShift = 10; ///< 1024 slots per chunk
    static constexpr uint32_t kChunkSlots = 1u << kChunkShift;
    static constexpr uint32_t kChunkMask = kChunkSlots - 1;
    /** Byte range [kCtxByte, kCtxByteEnd) of the Node ctx pointer —
     *  the slice hashNodeRange skips. */
    static constexpr uint32_t kCtxByte = 16;
    static constexpr uint32_t kCtxByteEnd = 24;

    ASTContext() : types_(this) {}
    ~ASTContext();

    ASTContext(const ASTContext &) = delete;
    ASTContext &operator=(const ASTContext &) = delete;

    TypeTable &types() { return types_; }
    const TypeTable &types() const { return types_; }

    /** Allocate a node with a fresh nodeId. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        return construct<T>(nextId_++, std::forward<Args>(args)...);
    }

    /** Allocate a node with a specific nodeId (cloning support);
     *  panics if the id is already taken. */
    template <typename T, typename... Args>
    T *
    makeWithId(uint32_t id, Args &&...args)
    {
        if (id >= nextId_)
            nextId_ = id + 1;
        return construct<T>(id, std::forward<Args>(args)...);
    }

    uint32_t peekNextId() const { return nextId_; }

    /** Ensure future make() ids start at or above @p n. The rebuild
     *  cloner replays source ids via makeWithId but creates builtins
     *  lazily with fresh ids; starting the counter past every source
     *  id keeps the two streams from colliding. */
    void
    reserveIds(uint32_t n)
    {
        if (n > nextId_)
            nextId_ = n;
    }

    /** Number of nodes allocated so far (== one past the last index). */
    NodeIndex numNodes() const { return numNodes_; }

    Node *
    nodeAt(NodeIndex i) const
    {
        UBF_ASSERT(i < numNodes_, "arena index out of range");
        return reinterpret_cast<Node *>(slot(i));
    }

    /** The node with @p id, or nullptr — a dense vector lookup. */
    Node *
    nodeById(uint32_t id) const
    {
        if (id >= idToIndex_.size() || idToIndex_[id] == kNullNode)
            return nullptr;
        return nodeAt(idToIndex_[id]);
    }

    /**
     * FNV-1a hash of the slot range [begin, end): every header and
     * payload byte except the per-slot context pointer. Two ranges
     * hash equal iff the nodes are bit-identical — kinds, nodeIds,
     * arena indices, child/cross-reference indices, TypeRefs, list
     * ranges, name ranges, literal values, operators.
     */
    uint64_t hashNodeRange(NodeIndex begin, NodeIndex end) const;

    /**
     * Become a node-for-node copy of @p src: memcpy the chunks, patch
     * each slot's context pointer, copy the pools, the id map, and the
     * type table verbatim. Every NodeIndex/TypeRef/range stored in a
     * slot keeps its meaning. Only valid on a fresh context.
     */
    void copyFrom(const ASTContext &src);

    // Index-pool operations (used by nodes holding ListRanges).
    ListRange listMake(const NodeIndex *data, uint32_t n);
    uint32_t
    listAt(const ListRange &r, uint32_t i) const
    {
        UBF_ASSERT(i < r.len, "list index out of range");
        return pool_[r.off + i];
    }
    void listAppend(ListRange &r, NodeIndex v);
    void listInsert(ListRange &r, uint32_t pos, NodeIndex v);
    void listErase(ListRange &r, uint32_t pos);

    // String-pool operations.
    void internString(std::string_view s, uint32_t &off, uint32_t &len);
    std::string_view
    stringAt(uint32_t off, uint32_t len) const
    {
        return {strings_.data() + off, len};
    }

  private:
    template <typename T, typename... Args>
    T *
    construct(uint32_t id, Args &&...args)
    {
        static_assert(sizeof(T) <= kSlotBytes, "node exceeds slot");
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena nodes must be trivially destructible");
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena nodes must be memcpy-clonable");
        NodeIndex idx = numNodes_;
        if ((idx >> kChunkShift) >= chunks_.size())
            chunks_.push_back(new char[kSlotBytes * kChunkSlots]);
        char *p = slot(idx);
        // Zero the slot first: padding bytes become deterministic, so
        // hashNodeRange can hash raw slot bytes.
        std::memset(p, 0, kSlotBytes);
        T *n = new (p) T(this, id, std::forward<Args>(args)...);
        static_cast<Node *>(n)->index_ = idx;
        numNodes_ = idx + 1;
        registerId(id, idx);
        return n;
    }

    char *
    slot(NodeIndex i) const
    {
        return chunks_[i >> kChunkShift] +
               static_cast<size_t>(i & kChunkMask) * kSlotBytes;
    }

    void registerId(uint32_t id, NodeIndex idx);
    /** Move @p r to the pool tail with capacity >= @p minCap. */
    void listRelocate(ListRange &r, uint32_t minCap);

    TypeTable types_;
    std::vector<char *> chunks_;
    NodeIndex numNodes_ = 0;
    /** Shared child-index pool; regions are exclusive per ListRange. */
    std::vector<uint32_t> pool_;
    /** Shared name bytes. */
    std::vector<char> strings_;
    /** nodeId -> arena index (kNullNode = unused id). */
    std::vector<NodeIndex> idToIndex_;
    uint32_t nextId_ = 1;
};

/** A whole MiniC translation unit. */
class Program
{
  public:
    Program() = default;

    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;

    ASTContext &ctx() { return ctx_; }
    const ASTContext &ctx() const { return ctx_; }
    TypeTable &types() { return ctx_.types(); }

    std::vector<StructDecl *> &structs() { return structs_; }
    const std::vector<StructDecl *> &structs() const { return structs_; }
    std::vector<VarDecl *> &globals() { return globals_; }
    const std::vector<VarDecl *> &globals() const { return globals_; }
    std::vector<FunctionDecl *> &functions() { return functions_; }
    const std::vector<FunctionDecl *> &functions() const
    {
        return functions_;
    }
    const std::vector<FunctionDecl *> &builtins() const
    {
        return builtins_;
    }

    FunctionDecl *main() const { return main_; }
    void setMain(FunctionDecl *f) { main_ = f; }

    FunctionDecl *findFunction(const std::string &name) const;
    VarDecl *findGlobal(const std::string &name) const;
    StructDecl *findStruct(const std::string &name) const;

    /** The lazily-created builtin declaration for @p b. */
    FunctionDecl *builtin(Builtin b);

  private:
    /** The memcpy clone repopulates builtins_ directly. */
    friend ClonedProgram cloneProgram(const Program &);
    friend ClonedProgram cloneProgramByRebuild(const Program &);
    ASTContext ctx_;
    std::vector<StructDecl *> structs_;
    std::vector<VarDecl *> globals_;
    std::vector<FunctionDecl *> functions_;
    std::vector<FunctionDecl *> builtins_;
    FunctionDecl *main_ = nullptr;
};

//===------------------------------------------------------------------===//
// Inline definitions needing the full ASTContext
//===------------------------------------------------------------------===//

inline Node *
Node::deref(NodeIndex i) const
{
    return ctx_->nodeAt(i);
}

inline const Type *
Node::typeAt(TypeRef r) const
{
    return r == kNullTypeRef ? nullptr : &ctx_->types().at(r);
}

template <typename T>
inline T *
NodeListRef<T>::operator[](size_t i) const
{
    return static_cast<T *>(
        ctx_->nodeAt(ctx_->listAt(*range_, static_cast<uint32_t>(i))));
}

inline VarDecl *
VarRef::decl() const
{
    return derefAs<VarDecl>(decl_);
}

inline void
VarRef::setDecl(VarDecl *d)
{
    decl_ = refOf(reinterpret_cast<const Node *>(d));
}

inline const FieldDecl *
Member::field() const
{
    return derefAs<FieldDecl>(field_);
}

inline void
Member::setField(const FieldDecl *f)
{
    field_ = refOf(reinterpret_cast<const Node *>(f));
}

inline VarDecl *
DeclStmt::var() const
{
    return derefAs<VarDecl>(var_);
}

inline void
DeclStmt::setVar(VarDecl *v)
{
    var_ = refOf(reinterpret_cast<const Node *>(v));
}

inline Block *
IfStmt::thenBlock() const
{
    return derefAs<Block>(then_);
}

inline Block *
IfStmt::elseBlock() const
{
    return derefAs<Block>(else_);
}

inline Block *
ForStmt::body() const
{
    return derefAs<Block>(body_);
}

inline Block *
WhileStmt::body() const
{
    return derefAs<Block>(body_);
}

inline void
Block::append(Stmt *s)
{
    ctx().listAppend(stmts_, refOf(s));
}

inline void
Block::insert(size_t pos, Stmt *s)
{
    UBF_ASSERT(pos <= stmts_.len, "block insert out of range");
    ctx().listInsert(stmts_, static_cast<uint32_t>(pos), refOf(s));
}

inline void
Block::eraseAt(size_t pos)
{
    UBF_ASSERT(pos < stmts_.len, "block erase out of range");
    ctx().listErase(stmts_, static_cast<uint32_t>(pos));
}

inline void
StructDecl::addField(FieldDecl *f)
{
    ctx().listAppend(fields_, refOf(f));
    uint64_t off = size_;
    uint64_t falign = f->type()->align();
    off = (off + falign - 1) / falign * falign;
    f->setOffset(off);
    size_ = static_cast<uint32_t>(off + f->type()->size());
    if (falign > align_)
        align_ = static_cast<uint32_t>(falign);
    // Pad the struct size up to its alignment, as C does.
    size_ = static_cast<uint32_t>((size_ + align_ - 1) / align_ * align_);
}

inline void
FunctionDecl::addParam(VarDecl *p)
{
    ctx().listAppend(params_, refOf(reinterpret_cast<const Node *>(p)));
}

inline void
FunctionDecl::setBody(Block *b)
{
    body_ = refOf(b);
}

inline FunctionDecl *
Call::callee() const
{
    return derefAs<FunctionDecl>(callee_);
}

inline void
Call::setCallee(FunctionDecl *f)
{
    callee_ = refOf(reinterpret_cast<const Node *>(f));
}

inline std::string_view
VarDecl::name() const
{
    return ctx().stringAt(nameOff_, nameLen_);
}

inline std::string_view
FieldDecl::name() const
{
    return ctx().stringAt(nameOff_, nameLen_);
}

inline std::string_view
StructDecl::name() const
{
    return ctx().stringAt(nameOff_, nameLen_);
}

inline std::string_view
FunctionDecl::name() const
{
    return ctx().stringAt(nameOff_, nameLen_);
}

/** True if @p e can appear on the left of an assignment. */
bool isLValue(const Expr *e);

/**
 * Invoke @p fn on each direct child expression of @p e.
 * @p fn receives (Expr *child).
 */
template <typename F>
void
forEachChildExpr(Expr *e, F &&fn)
{
    switch (e->kind()) {
      case NodeKind::IntLit:
      case NodeKind::VarRef:
        break;
      case NodeKind::Unary:
        fn(e->as<Unary>()->sub());
        break;
      case NodeKind::Binary:
        fn(e->as<Binary>()->lhs());
        fn(e->as<Binary>()->rhs());
        break;
      case NodeKind::Select:
        fn(e->as<Select>()->cond());
        fn(e->as<Select>()->trueExpr());
        fn(e->as<Select>()->falseExpr());
        break;
      case NodeKind::Index:
        fn(e->as<Index>()->base());
        fn(e->as<Index>()->index());
        break;
      case NodeKind::Member:
        fn(e->as<Member>()->base());
        break;
      case NodeKind::Cast:
        fn(e->as<Cast>()->sub());
        break;
      case NodeKind::Call:
        for (Expr *a : e->as<Call>()->args())
            fn(a);
        break;
      case NodeKind::InitList:
        for (Expr *el : e->as<InitList>()->elems())
            fn(el);
        break;
      default:
        UBF_PANIC("forEachChildExpr: not an expression");
    }
}

} // namespace ubfuzz::ast

#endif // UBFUZZ_AST_AST_H
