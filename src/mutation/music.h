/**
 * @file
 * The MUSIC baseline (§4.3): a mutation-testing style program mutator.
 *
 * MUSIC mutates a valid program's AST into syntactically valid mutants
 * with *no* semantic guarantees — most mutants remain UB-free, which is
 * exactly why it is a weak UB program generator (Table 4: ~4% of its
 * mutants contain UB, covering few kinds).
 *
 * Operators modeled on MUSIC's classic set:
 *   OAAN  arithmetic operator replacement        (+ -> *, / -> -, ...)
 *   ORRN  relational operator replacement        (< -> >=, ...)
 *   OLLN  logical connector replacement          (&& <-> ||)
 *   OBBN  bitwise operator replacement           (& <-> |)
 *   CRCR  constant replacement                   (c -> 0, 1, -c, c±1)
 *   SDL   statement deletion
 *   OCNG  condition negation
 */

#ifndef UBFUZZ_MUTATION_MUSIC_H
#define UBFUZZ_MUTATION_MUSIC_H

#include <memory>

#include "ast/ast.h"
#include "support/rng.h"

namespace ubfuzz::mutation {

/**
 * Produce one random mutant of @p seed (nullptr when the program
 * offers no mutation opportunity). Deterministic in @p rng.
 *
 * Every MUSIC operator perturbs exactly one function body of a
 * node-id-preserving clone; when @p perturbedFnId is non-null it
 * receives the FunctionDecl nodeId of that function (0 when no mutant
 * was produced). That is the handle compiler::SeedLoweringCache needs
 * to lower the mutant incrementally — splice every other function from
 * the seed's base module and re-lower only the mutated one — exactly
 * like UBGen's UBProgram::perturbedFnId.
 */
std::unique_ptr<ast::Program> musicMutate(const ast::Program &seed,
                                          Rng &rng,
                                          uint32_t *perturbedFnId = nullptr);

} // namespace ubfuzz::mutation

#endif // UBFUZZ_MUTATION_MUSIC_H
