#include "mutation/music.h"

#include <vector>

#include "ast/clone.h"
#include "ast/typing.h"

namespace ubfuzz::mutation {

using namespace ast;

namespace {

/** A mutation opportunity discovered in the cloned program. */
struct Opportunity
{
    enum class Kind { ArithOp, RelOp, LogicOp, BitOp, Constant,
                      DeleteStmt, NegateCond } kind;
    Binary *binary = nullptr;
    IntLit *lit = nullptr;
    Block *block = nullptr;
    size_t stmtIndex = 0;
    IfStmt *ifStmt = nullptr;
    WhileStmt *whileStmt = nullptr;
    /** nodeId of the FunctionDecl whose body holds the site. */
    uint32_t fnId = 0;
};

class Collector
{
  public:
    explicit Collector(std::vector<Opportunity> &out) : out_(out) {}

    void
    run(Program &p)
    {
        for (FunctionDecl *f : p.functions()) {
            if (f->body()) {
                fnId_ = f->nodeId();
                walkBlock(f->body());
            }
        }
    }

  private:
    std::vector<Opportunity> &out_;
    uint32_t fnId_ = 0;

    void
    push(Opportunity op)
    {
        op.fnId = fnId_;
        out_.emplace_back(op);
    }

    void
    walkBlock(Block *b)
    {
        for (size_t i = 0; i < b->stmts().size(); i++) {
            Stmt *s = b->stmts()[i];
            // SDL: deletable statements (declarations stay: deleting
            // one would leave dangling references, i.e. an invalid —
            // not merely UB — program, which MUSIC never emits).
            if (s->kind() != NodeKind::DeclStmt &&
                s->kind() != NodeKind::ReturnStmt) {
                Opportunity op;
                op.kind = Opportunity::Kind::DeleteStmt;
                op.block = b;
                op.stmtIndex = i;
                push(op);
            }
            walkStmt(s);
        }
    }

    void
    walkStmt(Stmt *s)
    {
        switch (s->kind()) {
          case NodeKind::DeclStmt:
            if (s->as<DeclStmt>()->var()->init())
                walkExpr(s->as<DeclStmt>()->var()->init());
            break;
          case NodeKind::AssignStmt:
            walkExpr(s->as<AssignStmt>()->lhs());
            walkExpr(s->as<AssignStmt>()->rhs());
            break;
          case NodeKind::ExprStmt:
            walkExpr(s->as<ExprStmt>()->expr());
            break;
          case NodeKind::IfStmt: {
            auto *i = s->as<IfStmt>();
            Opportunity op;
            op.kind = Opportunity::Kind::NegateCond;
            op.ifStmt = i;
            push(op);
            walkExpr(i->cond());
            walkBlock(i->thenBlock());
            if (i->elseBlock())
                walkBlock(i->elseBlock());
            break;
          }
          case NodeKind::WhileStmt: {
            auto *w = s->as<WhileStmt>();
            walkExpr(w->cond());
            walkBlock(w->body());
            break;
          }
          case NodeKind::ForStmt: {
            auto *f = s->as<ForStmt>();
            if (f->init())
                walkStmt(f->init());
            if (f->cond())
                walkExpr(f->cond());
            if (f->step())
                walkStmt(f->step());
            walkBlock(f->body());
            break;
          }
          case NodeKind::Block:
            walkBlock(s->as<Block>());
            break;
          case NodeKind::ReturnStmt:
            if (s->as<ReturnStmt>()->value())
                walkExpr(s->as<ReturnStmt>()->value());
            break;
          default:
            break;
        }
    }

    void
    walkExpr(Expr *e)
    {
        if (auto *b = e->dynCast<Binary>()) {
            bool int_operands = b->lhs()->type()->isInteger() &&
                                b->rhs()->type()->isInteger();
            Opportunity op;
            op.binary = b;
            if (isComparisonOp(b->op()) && int_operands) {
                op.kind = Opportunity::Kind::RelOp;
                push(op);
            } else if ((isArithOp(b->op()) || isDivRemOp(b->op())) &&
                       int_operands) {
                op.kind = Opportunity::Kind::ArithOp;
                push(op);
            } else if (isLogicalOp(b->op())) {
                op.kind = Opportunity::Kind::LogicOp;
                push(op);
            } else if (b->op() == BinaryOp::BitAnd ||
                       b->op() == BinaryOp::BitOr) {
                op.kind = Opportunity::Kind::BitOp;
                push(op);
            }
        }
        if (auto *l = e->dynCast<IntLit>()) {
            Opportunity op;
            op.kind = Opportunity::Kind::Constant;
            op.lit = l;
            push(op);
        }
        forEachChildExpr(e, [&](Expr *c) { walkExpr(c); });
    }
};

} // namespace

std::unique_ptr<ast::Program>
musicMutate(const Program &seed, Rng &rng, uint32_t *perturbedFnId)
{
    if (perturbedFnId)
        *perturbedFnId = 0;
    ClonedProgram clone = cloneProgram(seed);
    Program &p = *clone.program;
    ExprBuilder eb(p);

    std::vector<Opportunity> ops;
    Collector(ops).run(p);
    if (ops.empty())
        return nullptr;
    const Opportunity &op = ops[rng.index(ops)];
    if (perturbedFnId)
        *perturbedFnId = op.fnId;

    switch (op.kind) {
      case Opportunity::Kind::ArithOp: {
        BinaryOp cur = op.binary->op();
        BinaryOp next;
        do {
            next = rng.pick({BinaryOp::Add, BinaryOp::Sub,
                             BinaryOp::Mul, BinaryOp::Div,
                             BinaryOp::Rem});
        } while (next == cur);
        op.binary->setOp(next);
        break;
      }
      case Opportunity::Kind::RelOp: {
        BinaryOp cur = op.binary->op();
        BinaryOp next;
        do {
            next = rng.pick({BinaryOp::Lt, BinaryOp::Le, BinaryOp::Gt,
                             BinaryOp::Ge, BinaryOp::Eq, BinaryOp::Ne});
        } while (next == cur);
        op.binary->setOp(next);
        break;
      }
      case Opportunity::Kind::LogicOp:
        op.binary->setOp(op.binary->op() == BinaryOp::LAnd
                             ? BinaryOp::LOr
                             : BinaryOp::LAnd);
        break;
      case Opportunity::Kind::BitOp:
        op.binary->setOp(op.binary->op() == BinaryOp::BitAnd
                             ? BinaryOp::BitOr
                             : BinaryOp::BitAnd);
        break;
      case Opportunity::Kind::Constant: {
        // CRCR: replace the constant with 0, 1, -c, c+1 or c-1.
        int64_t c = op.lit->signedValue();
        int64_t repl = rng.pick<int64_t>({0, 1, -c, c + 1, c - 1});
        if (repl == c)
            repl = c + 1;
        op.lit->setValue(static_cast<uint64_t>(repl));
        break;
      }
      case Opportunity::Kind::DeleteStmt:
        op.block->eraseAt(op.stmtIndex);
        break;
      case Opportunity::Kind::NegateCond:
        op.ifStmt->setCond(
            eb.unary(UnaryOp::LogNot, op.ifStmt->cond()));
        break;
    }
    return std::move(clone.program);
}

} // namespace ubfuzz::mutation
