#include "ubgen/ub_kind.h"

namespace ubfuzz::ubgen {

const char *
ubKindName(UBKind k)
{
    switch (k) {
      case UBKind::BufferOverflowArray: return "buf-overflow-array";
      case UBKind::BufferOverflowPointer: return "buf-overflow-pointer";
      case UBKind::UseAfterFree: return "use-after-free";
      case UBKind::UseAfterScope: return "use-after-scope";
      case UBKind::NullPtrDeref: return "null-ptr-deref";
      case UBKind::IntegerOverflow: return "integer-overflow";
      case UBKind::ShiftOverflow: return "shift-overflow";
      case UBKind::DivideByZero: return "divide-by-zero";
      case UBKind::UseOfUninitMemory: return "use-of-uninit-memory";
      case UBKind::kCount: break;
    }
    return "?";
}

std::vector<SanitizerKind>
sanitizersFor(UBKind k)
{
    switch (k) {
      case UBKind::BufferOverflowArray:
        return {SanitizerKind::ASan, SanitizerKind::UBSan};
      case UBKind::BufferOverflowPointer:
      case UBKind::UseAfterFree:
      case UBKind::UseAfterScope:
        return {SanitizerKind::ASan};
      case UBKind::NullPtrDeref:
      case UBKind::IntegerOverflow:
      case UBKind::ShiftOverflow:
      case UBKind::DivideByZero:
        return {SanitizerKind::UBSan};
      case UBKind::UseOfUninitMemory:
        return {SanitizerKind::MSan};
      case UBKind::kCount:
        break;
    }
    return {};
}

bool
reportMatchesKind(UBKind k, vm::ReportKind r)
{
    using R = vm::ReportKind;
    switch (k) {
      case UBKind::BufferOverflowArray:
      case UBKind::BufferOverflowPointer:
        return r == R::StackBufferOverflow ||
               r == R::GlobalBufferOverflow ||
               r == R::HeapBufferOverflow || r == R::ArrayIndexOOB;
      case UBKind::UseAfterFree:
        return r == R::HeapUseAfterFree;
      case UBKind::UseAfterScope:
        return r == R::StackUseAfterScope;
      case UBKind::NullPtrDeref:
        return r == R::NullDeref;
      case UBKind::IntegerOverflow:
        return r == R::SignedIntegerOverflow;
      case UBKind::ShiftOverflow:
        return r == R::ShiftOutOfBounds;
      case UBKind::DivideByZero:
        return r == R::DivByZero;
      case UBKind::UseOfUninitMemory:
        return r == R::UninitValue;
      case UBKind::kCount:
        break;
    }
    return false;
}

} // namespace ubfuzz::ubgen
