/**
 * @file
 * UBGen: the paper's UB program generator (Algorithm 1).
 *
 * Given a valid seed program, UBGen
 *   1. statically matches every expression with the potential for a
 *      target UB kind (GetMatchedExpr, Table 1 column "Code Construct"),
 *   2. instruments a clone of the seed with __log_* profiling calls and
 *      executes it to learn runtime state — pointer targets, buffer
 *      ranges, liveness of each site (Profile, Definition 1),
 *   3. synthesizes a *shadow statement* per matched site and inserts it
 *      into a fresh clone, producing one UB program per site, each with
 *      exactly one precisely-located UB (SynShadowStmt / Insert).
 *
 * The shadow instantiations follow Table 1's last column, with one
 * engineering twist: deltas are computed through unsigned arithmetic
 * (e.g. `bx = (int)((unsigned)v - (unsigned)x)`) so the shadow
 * statement itself can never overflow.
 */

#ifndef UBFUZZ_UBGEN_UBGEN_H
#define UBFUZZ_UBGEN_UBGEN_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "ast/printer.h"
#include "ir/ir.h"
#include "support/rng.h"
#include "ubgen/ub_kind.h"
#include "vm/profile_data.h"

namespace ubfuzz::ubgen {

/** One generated UB program: a mutated clone of the seed. */
struct UBProgram
{
    std::unique_ptr<ast::Program> program;
    UBKind kind = UBKind::BufferOverflowArray;
    /** Node id of the UB-triggering expression (stable across print). */
    uint32_t siteId = 0;
    /**
     * Node id of the FunctionDecl whose body the shadow statement and
     * expression rewrite live in. Every structural change to the seed
     * is confined to this one function (plus appended auxiliary
     * globals), which is what lets the compiler's seed-level cache
     * lower the derived program incrementally: splice the other
     * functions from the seed's base module and re-lower only this
     * one. 0 means "unknown" — consumers must fall back to a full
     * lowering.
     */
    uint32_t perturbedFnId = 0;
    /** Human-readable description of the inserted shadow statement. */
    std::string shadowDesc;

    /** The expected UB location in @p printed (of this->program). */
    SourceLoc
    expectedLoc(const ast::PrintedProgram &printed) const
    {
        return printed.map.loc(siteId);
    }
};

/**
 * Matches and profiles a seed once, then generates UB programs for any
 * requested kind (the paper profiles once per seed for all kinds).
 */
class UBGenerator
{
  public:
    explicit UBGenerator(const ast::Program &seed);
    ~UBGenerator();

    UBGenerator(const UBGenerator &) = delete;
    UBGenerator &operator=(const UBGenerator &) = delete;

    /** Number of statically matched sites for a kind. */
    size_t matchCount(UBKind kind) const;

    /** Did the profiling execution complete? */
    bool profiled() const;

    /**
     * Algorithm 1: one UB program per matched, live site of @p kind
     * (capped at @p cap). Programs whose site was not reached during
     * profiling are skipped.
     */
    std::vector<UBProgram> generate(UBKind kind, Rng &rng,
                                    size_t cap = SIZE_MAX);

    /** All kinds at once (the default testing mode, §3.2.2). */
    std::vector<UBProgram> generateAll(Rng &rng,
                                       size_t capPerKind = SIZE_MAX);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Step budget of every ground-truth validation run. Deliberately fixed
 * — it bounds the precise checker, not the differential testing the
 * campaign's `--step-limit` controls — and shared by both validation
 * entry points so they can never drift apart.
 */
inline constexpr uint64_t kGroundTruthStepLimit = 2'000'000;

/**
 * Ground-truth validation: compile at -O0 without sanitizers and run
 * the precise checker. @return true iff the program exhibits exactly
 * the expected UB kind at the expected location.
 */
bool validateUBProgram(const UBProgram &ub);

/**
 * The same check against an already-lowered module of @p ub (printed
 * as @p printed), executed through @p machine — the campaign's hot
 * path, which lowers each UB program incrementally and reuses both
 * the module and one classifier machine per unit.
 */
bool validateUBModule(const UBProgram &ub, const ir::Module &mod,
                      const ast::PrintedProgram &printed,
                      vm::Machine &machine);

} // namespace ubfuzz::ubgen

#endif // UBFUZZ_UBGEN_UBGEN_H
