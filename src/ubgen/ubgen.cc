#include "ubgen/ubgen.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ast/clone.h"
#include "ast/typing.h"
#include "ir/lowering.h"
#include "support/diagnostics.h"

namespace ubfuzz::ubgen {

using namespace ast;

namespace {

/** A closed inner block usable for use-after-scope: repointing a
 *  pointer at one of its locals makes a later deref UB. */
struct ScopeCandidate
{
    uint32_t blockId = 0;
    uint32_t varId = 0;
    uint64_t varSize = 0;
    const Type *varType = nullptr;
};

/** One statically matched code construct (GetMatchedExpr output). */
struct Site
{
    UBKind kind;
    /** The UB expression node. */
    uint32_t exprId = 0;
    /** The FunctionDecl whose body contains the site (and therefore
     *  every perturbation synthesized for it). */
    uint32_t funcId = 0;
    /** Insertion point: block node + statement index inside it. */
    uint32_t blockId = 0;
    size_t stmtIndex = 0;
    /** Pointer sub-expression (Deref sub / Index base). */
    uint32_t subId = 0;
    /** For Null/UAF/UAScope: the pointer variable's node id. */
    uint32_t ptrVarId = 0;
    const Type *ptrVarType = nullptr;
    /** BufferOverflowArray: static bound + element size. */
    uint32_t arrayBound = 0;
    uint64_t elemSize = 0;
    /** Access form: a[i] / p[i] (true) vs *p (false). */
    bool indexForm = false;
    /** IntegerOverflow via unary negation. */
    bool negForm = false;
    std::vector<ScopeCandidate> scopeCands;
};

bool
exprIsCallFree(const Expr *e)
{
    if (e->kind() == NodeKind::Call)
        return false;
    bool ok = true;
    forEachChildExpr(const_cast<Expr *>(e), [&](Expr *c) {
        ok = ok && exprIsCallFree(c);
    });
    return ok;
}

//===----------------------------------------------------------------===//
// Expression matching (GetMatchedExpr)
//===----------------------------------------------------------------===//

class Matcher
{
  public:
    explicit Matcher(std::vector<Site> (&sites)[kNumUBKinds])
        : sites_(sites)
    {}

    void
    run(const Program &p)
    {
        for (const FunctionDecl *f : p.functions()) {
            if (f->body() && !f->isBuiltin()) {
                closed_.clear(); // candidates never cross functions
                curFunc_ = f->nodeId();
                walkBlock(f->body());
            }
        }
    }

  private:
    std::vector<Site> (&sites_)[kNumUBKinds];
    uint32_t curFunc_ = 0;
    uint32_t curBlock_ = 0;
    size_t curIndex_ = 0;
    std::vector<ScopeCandidate> closed_;

    void
    addSite(Site s)
    {
        s.funcId = curFunc_;
        s.blockId = curBlock_;
        s.stmtIndex = curIndex_;
        sites_[static_cast<size_t>(s.kind)].push_back(std::move(s));
    }

    void
    walkBlock(const Block *b)
    {
        uint32_t saved_block = curBlock_;
        size_t saved_index = curIndex_;
        size_t saved_closed = closed_.size();
        for (size_t i = 0; i < b->stmts().size(); i++) {
            curBlock_ = b->nodeId();
            curIndex_ = i;
            walkStmt(b->stmts()[i]);
            curBlock_ = b->nodeId();
            curIndex_ = i;
            collectClosed(b->stmts()[i]);
        }
        // Inner candidates stay available to *outer* later statements:
        // a block closed inside this block is also closed for whatever
        // follows in the parent. Keep them.
        (void)saved_closed;
        curBlock_ = saved_block;
        curIndex_ = saved_index;
    }

    void
    collectClosed(const Stmt *s)
    {
        auto add_block = [&](const Block *b) {
            if (!b)
                return;
            for (const Stmt *st : b->stmts()) {
                if (auto *d = st->dynCast<DeclStmt>()) {
                    const VarDecl *v = d->var();
                    if (v->type()->isInteger() ||
                        v->type()->isArray()) {
                        closed_.push_back(
                            {b->nodeId(), v->nodeId(),
                             v->type()->size(), v->type()});
                    }
                }
            }
        };
        switch (s->kind()) {
          case NodeKind::IfStmt:
            add_block(s->as<IfStmt>()->thenBlock());
            add_block(s->as<IfStmt>()->elseBlock());
            break;
          case NodeKind::ForStmt:
            add_block(s->as<ForStmt>()->body());
            break;
          case NodeKind::WhileStmt:
            add_block(s->as<WhileStmt>()->body());
            break;
          case NodeKind::Block:
            add_block(s->as<Block>());
            break;
          default:
            break;
        }
    }

    void
    walkStmt(const Stmt *s)
    {
        switch (s->kind()) {
          case NodeKind::DeclStmt: {
            const VarDecl *v = s->as<DeclStmt>()->var();
            if (v->init())
                walkExpr(v->init());
            break;
          }
          case NodeKind::AssignStmt:
            walkExpr(s->as<AssignStmt>()->lhs());
            walkExpr(s->as<AssignStmt>()->rhs());
            break;
          case NodeKind::ExprStmt:
            walkExpr(s->as<ExprStmt>()->expr());
            break;
          case NodeKind::IfStmt: {
            auto *i = s->as<IfStmt>();
            condSite(i->cond());
            walkExpr(i->cond());
            walkBlock(i->thenBlock());
            if (i->elseBlock())
                walkBlock(i->elseBlock());
            break;
          }
          case NodeKind::WhileStmt: {
            auto *w = s->as<WhileStmt>();
            condSite(w->cond());
            walkExpr(w->cond());
            walkBlock(w->body());
            break;
          }
          case NodeKind::ForStmt: {
            auto *f = s->as<ForStmt>();
            if (f->init())
                walkStmt(f->init());
            if (f->cond()) {
                condSite(f->cond());
                walkExpr(f->cond());
            }
            if (f->step())
                walkStmt(f->step());
            walkBlock(f->body());
            break;
          }
          case NodeKind::Block:
            walkBlock(s->as<Block>());
            break;
          case NodeKind::ReturnStmt:
            if (s->as<ReturnStmt>()->value())
                walkExpr(s->as<ReturnStmt>()->value());
            break;
          default:
            break;
        }
    }

    /** if(x) / while(x) / for(;x;) conditions: uninit-memory sites. */
    void
    condSite(const Expr *cond)
    {
        if (!cond->type()->isInteger())
            return;
        Site s;
        s.kind = UBKind::UseOfUninitMemory;
        s.exprId = cond->nodeId();
        addSite(std::move(s));
    }

    /** Pointer-flavoured sites for a deref-like access. Overflow
     *  rewriting only applies to *p and p[i] forms (not p->f, whose
     *  pointer cannot be offset in place). */
    void
    pointerSites(const Expr *accessExpr, const Expr *pointerExpr,
                 bool indexForm, uint64_t accessSize,
                 bool allowOverflow = true)
    {
        if (!exprIsCallFree(pointerExpr))
            return;
        if (allowOverflow) {
            Site s;
            s.kind = UBKind::BufferOverflowPointer;
            s.exprId = accessExpr->nodeId();
            s.subId = pointerExpr->nodeId();
            s.indexForm = indexForm;
            s.elemSize = accessSize;
            addSite(std::move(s));
        }
        // Δ(p) mutations need p to be a plain assignable variable.
        const VarRef *vr = pointerExpr->dynCast<VarRef>();
        if (!vr)
            return;
        for (UBKind k : {UBKind::NullPtrDeref, UBKind::UseAfterFree,
                         UBKind::UseAfterScope}) {
            Site s;
            s.kind = k;
            s.exprId = accessExpr->nodeId();
            s.subId = pointerExpr->nodeId();
            s.ptrVarId = vr->decl()->nodeId();
            s.ptrVarType = vr->decl()->type();
            s.elemSize = accessSize;
            if (k == UBKind::UseAfterScope) {
                // The shadow statement `p = &q` is inserted inside the
                // candidate block, so p must be visible there: globals
                // and parameters always are; locals would need scope
                // analysis, so they are skipped.
                if (closed_.empty() ||
                    vr->decl()->storage() == Storage::Local)
                    continue;
                s.scopeCands = closed_;
            }
            addSite(std::move(s));
        }
    }

    void
    walkExpr(const Expr *e)
    {
        switch (e->kind()) {
          case NodeKind::Binary: {
            auto *b = e->as<Binary>();
            const Type *t = b->type();
            bool call_free_ops = exprIsCallFree(b->lhs()) &&
                                 exprIsCallFree(b->rhs());
            if (t->isInteger()) {
                if (isArithOp(b->op()) &&
                    ast::scalarSigned(t->scalar()) && call_free_ops) {
                    Site s;
                    s.kind = UBKind::IntegerOverflow;
                    s.exprId = b->nodeId();
                    addSite(std::move(s));
                }
                if (isShiftOp(b->op()) &&
                    exprIsCallFree(b->rhs())) {
                    Site s;
                    s.kind = UBKind::ShiftOverflow;
                    s.exprId = b->nodeId();
                    addSite(std::move(s));
                }
                if (isDivRemOp(b->op()) &&
                    exprIsCallFree(b->rhs())) {
                    Site s;
                    s.kind = UBKind::DivideByZero;
                    s.exprId = b->nodeId();
                    addSite(std::move(s));
                }
            }
            walkExpr(b->lhs());
            walkExpr(b->rhs());
            break;
          }
          case NodeKind::Unary: {
            auto *u = e->as<Unary>();
            if (u->op() == UnaryOp::Neg && u->type()->isInteger() &&
                ast::scalarSigned(u->type()->scalar()) &&
                exprIsCallFree(u->sub())) {
                Site s;
                s.kind = UBKind::IntegerOverflow;
                s.exprId = u->nodeId();
                s.negForm = true;
                addSite(std::move(s));
            }
            if (u->op() == UnaryOp::Deref &&
                (u->sub()->type()->isPointer())) {
                uint64_t size = u->type()->isStruct() ||
                                        u->type()->isInteger()
                                    ? u->type()->size()
                                    : 8;
                pointerSites(u, u->sub(), /*indexForm=*/false, size);
            }
            walkExpr(u->sub());
            break;
          }
          case NodeKind::Index: {
            auto *ix = e->as<Index>();
            const Type *bt = ix->base()->type();
            if (bt->isArray() && exprIsCallFree(ix->index())) {
                Site s;
                s.kind = UBKind::BufferOverflowArray;
                s.exprId = ix->nodeId();
                s.arrayBound = bt->arraySize();
                s.elemSize = bt->element()->size();
                s.indexForm = true;
                addSite(std::move(s));
            } else if (bt->isPointer()) {
                pointerSites(ix, ix->base(), /*indexForm=*/true,
                             ix->type()->isInteger() ||
                                     ix->type()->isStruct()
                                 ? ix->type()->size()
                                 : 8);
            }
            walkExpr(ix->base());
            walkExpr(ix->index());
            break;
          }
          case NodeKind::Member: {
            auto *m = e->as<Member>();
            if (m->isArrow())
                pointerSites(m, m->base(), /*indexForm=*/false,
                             m->type()->size(),
                             /*allowOverflow=*/false);
            walkExpr(m->base());
            break;
          }
          default:
            forEachChildExpr(const_cast<Expr *>(e),
                             [&](Expr *c) { walkExpr(c); });
            break;
        }
    }
};

} // namespace

//===----------------------------------------------------------------===//
// UBGenerator implementation
//===----------------------------------------------------------------===//

struct UBGenerator::Impl
{
    const Program &seed;
    std::vector<Site> sites[kNumUBKinds];
    vm::RawProfile profile;
    bool profiled = false;

    explicit Impl(const Program &s) : seed(s)
    {
        Matcher(sites).run(seed);
        runProfile();
    }

    //===------------------------------------------------------------===//
    // Program profiling (Profile, §3.2.2)
    //===------------------------------------------------------------===//

    void
    runProfile()
    {
        ClonedProgram clone = cloneProgram(seed);
        Program &p = *clone.program;
        ExprBuilder eb(p);
        FunctionDecl *log_val = p.builtin(Builtin::LogVal);
        FunctionDecl *log_ptr = p.builtin(Builtin::LogPtr);

        // Gather insertions: (blockId, index, stmt).
        struct Insertion
        {
            uint32_t blockId;
            size_t index;
            Stmt *stmt;
        };
        std::vector<Insertion> insertions;
        std::unordered_set<uint32_t> scope_blocks;

        auto lit_id = [&](uint32_t id) {
            return eb.lit(static_cast<int64_t>(id), ScalarKind::S64);
        };

        for (const auto &kind_sites : sites) {
            for (const Site &site : kind_sites) {
                Stmt *marker = nullptr;
                if (site.subId) {
                    Expr *sub =
                        clone.findAs<Expr>(site.subId);
                    Expr *addr;
                    if (site.indexForm) {
                        // Log the address of p[i].
                        Expr *access =
                            clone.findAs<Expr>(site.exprId);
                        addr = eb.addrOf(
                            cloneExprInto(p, access));
                    } else {
                        addr = cloneExprInto(p, sub);
                    }
                    marker = p.ctx().make<ExprStmt>(eb.call(
                        log_ptr,
                        {lit_id(site.exprId),
                         eb.cast(p.types().bytePtr(), addr)}));
                } else {
                    marker = p.ctx().make<ExprStmt>(
                        eb.call(log_val, {lit_id(site.exprId),
                                          eb.lit(0, ScalarKind::S64)}));
                }
                insertions.push_back(
                    {site.blockId, site.stmtIndex, marker});
                for (const ScopeCandidate &c : site.scopeCands)
                    scope_blocks.insert(c.blockId);
            }
        }
        for (uint32_t bid : scope_blocks) {
            Stmt *marker = p.ctx().make<ExprStmt>(eb.call(
                log_val, {lit_id(bid), eb.lit(1, ScalarKind::S64)}));
            insertions.push_back({bid, 0, marker});
        }

        // Apply: per block, descending index.
        std::unordered_map<uint32_t, std::vector<Insertion>> by_block;
        for (auto &ins : insertions)
            by_block[ins.blockId].push_back(ins);
        for (auto &[bid, list] : by_block) {
            Node *n = clone.find(bid);
            if (!n)
                continue;
            Block *b = n->as<Block>();
            std::stable_sort(list.begin(), list.end(),
                             [](const Insertion &a, const Insertion &o) {
                                 return a.index > o.index;
                             });
            for (auto &ins : list)
                b->insert(std::min(ins.index, b->stmts().size()),
                          ins.stmt);
        }

        // Execute the instrumented program.
        PrintedProgram printed = printProgram(p);
        ir::Module mod = ir::lowerProgram(p, printed.map);
        vm::ExecOptions opts;
        opts.profile = &profile;
        opts.stepLimit = 2'000'000;
        vm::ExecResult r = vm::execute(mod, opts);
        profiled = r.kind != vm::ExecResult::Kind::Timeout;
    }

    //===------------------------------------------------------------===//
    // Profile queries (Q_liv / Q_val / Q_mem / Q_scp)
    //===------------------------------------------------------------===//

    bool
    valueLive(uint32_t siteId) const
    {
        return profile.values.count(siteId) > 0;
    }

    const vm::PtrRecord *
    pointerRecord(uint32_t siteId) const
    {
        auto it = profile.pointers.find(siteId);
        if (it == profile.pointers.end() || it->second.empty())
            return nullptr;
        return &it->second.front();
    }

    bool
    blockExecuted(uint32_t blockId) const
    {
        return profile.values.count(blockId) > 0;
    }

    //===------------------------------------------------------------===//
    // Shadow statement synthesis and insertion (SynShadowStmt/Insert)
    //===------------------------------------------------------------===//

    /** New zero-initialized global auxiliary variable. */
    VarDecl *
    makeAux(Program &p, ExprBuilder &eb, ScalarKind k, int &counter)
    {
        auto *aux = p.ctx().make<VarDecl>(
            "__ub_d" + std::to_string(counter++),
            p.types().scalar(k), Storage::Global,
            eb.lit(0, ast::scalarBits(k) >= 64 ? ScalarKind::S64
                                               : ScalarKind::S32));
        p.globals().push_back(aux);
        return aux;
    }

    /**
     * `(T)((U)v - (U)(x))` — the delta that forces x + delta == v,
     * computed through unsigned arithmetic so the shadow statement is
     * itself UB-free.
     */
    Expr *
    unsignedDelta(Program &p, ExprBuilder &eb, ScalarKind k, uint64_t v,
                  Expr *xCopy)
    {
        ScalarKind uk = ast::scalarBits(k) >= 64 ? ScalarKind::U64
                                                 : ScalarKind::U32;
        const Type *ut = p.types().scalar(uk);
        Expr *uv = eb.litOf(ir::canonicalValue(v, uk), ut);
        Expr *ux = eb.cast(ut, xCopy);
        return eb.cast(p.types().scalar(k),
                       eb.bin(BinaryOp::Sub, uv, ux));
    }

    ScalarKind
    promotedKind(Program &p, const Type *t)
    {
        return promote(p.types(), t)->scalar();
    }

    std::optional<UBProgram>
    synthesize(const Site &site, Rng &rng, int &auxCounter)
    {
        ClonedProgram clone = cloneProgram(seed);
        Program &p = *clone.program;
        ExprBuilder eb(p);
        Block *block = clone.findAs<Block>(site.blockId);
        size_t at = std::min(site.stmtIndex, block->stmts().size());

        UBProgram out;
        out.kind = site.kind;
        out.siteId = site.exprId;
        out.perturbedFnId = site.funcId;

        switch (site.kind) {
          case UBKind::BufferOverflowArray: {
            if (!valueLive(site.exprId))
                return std::nullopt;
            auto *ix = clone.findAs<Index>(site.exprId);
            ScalarKind k =
                promotedKind(p, ix->index()->type());
            VarDecl *aux = makeAux(p, eb, k, auxCounter);
            // Pick the overflow index v: usually the first OOB slot,
            // sometimes deeper into the redzone, sometimes negative.
            int64_t v;
            uint64_t max_extra =
                site.elemSize ? std::max<uint64_t>(28 / site.elemSize, 0)
                              : 0;
            uint64_t roll = rng.below(10);
            if (roll < 5 || max_extra == 0)
                v = site.arrayBound;
            else if (roll < 9)
                v = site.arrayBound +
                    1 + static_cast<int64_t>(rng.below(max_extra));
            else
                v = -1 - static_cast<int64_t>(rng.below(2));
            Expr *x_copy = cloneExprInto(p, ix->index());
            Stmt *shadow = p.ctx().make<AssignStmt>(
                AssignOp::Assign, eb.ref(aux),
                unsignedDelta(p, eb, k, static_cast<uint64_t>(v),
                              x_copy));
            block->insert(at, shadow);
            ix->setIndex(eb.bin(BinaryOp::Add, ix->index(),
                                eb.ref(aux)));
            out.shadowDesc = std::string(aux->name()) + " = " + std::to_string(v) +
                             " - (index)";
            break;
          }
          case UBKind::BufferOverflowPointer: {
            const vm::PtrRecord *rec = pointerRecord(site.exprId);
            if (!rec || !rec->objectId ||
                rec->objectState != vm::ObjectState::Live)
                return std::nullopt;
            uint64_t elem = std::max<uint64_t>(site.elemSize, 1);
            uint64_t end = rec->objectBase + rec->objectSize;
            if (rec->address >= end)
                return std::nullopt; // already at/past the end?
            uint64_t delta_bytes = end - rec->address;
            uint64_t bc = (delta_bytes + elem - 1) / elem;
            uint64_t extra_room = elem <= 24 ? (24 / elem) : 0;
            if (extra_room)
                bc += rng.below(extra_room + 1);
            VarDecl *aux =
                makeAux(p, eb, ScalarKind::S64, auxCounter);
            Stmt *shadow = p.ctx().make<AssignStmt>(
                AssignOp::Assign, eb.ref(aux),
                eb.lit(static_cast<int64_t>(bc), ScalarKind::S64));
            block->insert(at, shadow);
            if (site.indexForm) {
                auto *ix = clone.findAs<Index>(site.exprId);
                ix->setIndex(eb.bin(BinaryOp::Add, ix->index(),
                                    eb.ref(aux)));
            } else {
                auto *d = clone.findAs<Unary>(site.exprId);
                d->setSub(
                    eb.bin(BinaryOp::Add, d->sub(), eb.ref(aux)));
            }
            out.shadowDesc =
                std::string(aux->name()) + " = " + std::to_string(bc) +
                " (elements past the pointee)";
            break;
          }
          case UBKind::UseAfterFree: {
            const vm::PtrRecord *rec = pointerRecord(site.exprId);
            if (!rec || rec->objectKind != vm::ObjectKind::Heap ||
                rec->objectState != vm::ObjectState::Live ||
                rec->address != rec->objectBase)
                return std::nullopt;
            auto *pv = clone.findAs<VarDecl>(site.ptrVarId);
            Stmt *shadow = p.ctx().make<ExprStmt>(
                eb.call(p.builtin(Builtin::Free),
                        {eb.cast(p.types().bytePtr(), eb.ref(pv))}));
            block->insert(at, shadow);
            out.shadowDesc = "__free(" + std::string(pv->name()) + ")";
            break;
          }
          case UBKind::UseAfterScope: {
            const vm::PtrRecord *rec = pointerRecord(site.exprId);
            if (!rec)
                return std::nullopt;
            const Type *pointee = site.ptrVarType->element();
            const ScopeCandidate *chosen = nullptr;
            for (const ScopeCandidate &c : site.scopeCands) {
                if (c.varSize >= pointee->size() &&
                    blockExecuted(c.blockId)) {
                    chosen = &c;
                    break;
                }
            }
            if (!chosen)
                return std::nullopt;
            auto *pv = clone.findAs<VarDecl>(site.ptrVarId);
            auto *qv = clone.findAs<VarDecl>(chosen->varId);
            Block *inner = clone.findAs<Block>(chosen->blockId);
            Expr *addr;
            if (qv->type()->isArray()) {
                addr = eb.addrOf(eb.index(eb.ref(qv), eb.lit(0)));
            } else {
                addr = eb.addrOf(eb.ref(qv));
            }
            Expr *rhs = addr->type() == pv->type()
                            ? addr
                            : eb.cast(pv->type(), addr);
            inner->append(p.ctx().make<AssignStmt>(
                AssignOp::Assign, eb.ref(pv), rhs));
            out.shadowDesc =
                std::string(pv->name()) + " = &" + std::string(qv->name()) +
                " (inner scope)";
            break;
          }
          case UBKind::NullPtrDeref: {
            const vm::PtrRecord *rec = pointerRecord(site.exprId);
            if (!rec)
                return std::nullopt;
            auto *pv = clone.findAs<VarDecl>(site.ptrVarId);
            Stmt *shadow = p.ctx().make<AssignStmt>(
                AssignOp::Assign, eb.ref(pv),
                eb.cast(pv->type(), eb.lit(0)));
            block->insert(at, shadow);
            out.shadowDesc = std::string(pv->name()) + " = 0";
            break;
          }
          case UBKind::IntegerOverflow: {
            if (!valueLive(site.exprId))
                return std::nullopt;
            if (site.negForm) {
                auto *u = clone.findAs<Unary>(site.exprId);
                ScalarKind k = u->type()->scalar();
                int bits = ast::scalarBits(k);
                uint64_t minv =
                    bits >= 64 ? static_cast<uint64_t>(INT64_MIN)
                               : (~0ULL << (bits - 1));
                VarDecl *aux = makeAux(p, eb, k, auxCounter);
                Expr *x_copy = cloneExprInto(p, u->sub());
                block->insert(
                    at, p.ctx().make<AssignStmt>(
                            AssignOp::Assign, eb.ref(aux),
                            unsignedDelta(p, eb, k, minv, x_copy)));
                u->setSub(
                    eb.bin(BinaryOp::Add, u->sub(), eb.ref(aux)));
                out.shadowDesc = std::string(aux->name()) + " forces -(MIN)";
                break;
            }
            auto *b = clone.findAs<Binary>(site.exprId);
            ScalarKind k = b->type()->scalar();
            int bits = ast::scalarBits(k);
            int64_t maxv = bits >= 64 ? INT64_MAX
                                      : (1LL << (bits - 1)) - 1;
            int64_t minv = bits >= 64 ? INT64_MIN
                                      : -(1LL << (bits - 1));
            // Monte Carlo value pair that overflows (§3.2.3).
            int64_t v0, v1;
            switch (b->op()) {
              case BinaryOp::Add:
                v0 = maxv - static_cast<int64_t>(rng.below(1000));
                v1 = 1001 + static_cast<int64_t>(rng.below(9000));
                break;
              case BinaryOp::Sub:
                v0 = minv + static_cast<int64_t>(rng.below(1000));
                v1 = 1001 + static_cast<int64_t>(rng.below(9000));
                break;
              default: // Mul
                if (bits >= 64) {
                    v0 = (1LL << 33) +
                         static_cast<int64_t>(rng.below(1 << 20));
                    v1 = (1LL << 33) +
                         static_cast<int64_t>(rng.below(1 << 20));
                } else {
                    v0 = 70000 +
                         static_cast<int64_t>(rng.below(100000));
                    v1 = 70000 +
                         static_cast<int64_t>(rng.below(100000));
                }
                break;
            }
            VarDecl *aux0 = makeAux(p, eb, k, auxCounter);
            VarDecl *aux1 = makeAux(p, eb, k, auxCounter);
            Expr *x_copy = cloneExprInto(p, b->lhs());
            Expr *y_copy = cloneExprInto(p, b->rhs());
            block->insert(
                at, p.ctx().make<AssignStmt>(
                        AssignOp::Assign, eb.ref(aux1),
                        unsignedDelta(p, eb, k,
                                      static_cast<uint64_t>(v1),
                                      y_copy)));
            block->insert(
                at, p.ctx().make<AssignStmt>(
                        AssignOp::Assign, eb.ref(aux0),
                        unsignedDelta(p, eb, k,
                                      static_cast<uint64_t>(v0),
                                      x_copy)));
            b->setLhs(eb.bin(BinaryOp::Add, b->lhs(), eb.ref(aux0)));
            b->setRhs(eb.bin(BinaryOp::Add, b->rhs(), eb.ref(aux1)));
            out.shadowDesc = "operands forced to " +
                             std::to_string(v0) + " op " +
                             std::to_string(v1);
            break;
          }
          case UBKind::ShiftOverflow: {
            if (!valueLive(site.exprId))
                return std::nullopt;
            auto *b = clone.findAs<Binary>(site.exprId);
            ScalarKind k = b->type()->scalar();
            int bits = ast::scalarBits(k);
            int64_t v = rng.percent(30)
                            ? -1 - static_cast<int64_t>(rng.below(4))
                            : bits + static_cast<int64_t>(
                                         rng.below(16));
            ScalarKind ck = promotedKind(p, b->rhs()->type());
            VarDecl *aux = makeAux(p, eb, ck, auxCounter);
            Expr *y_copy = cloneExprInto(p, b->rhs());
            block->insert(
                at, p.ctx().make<AssignStmt>(
                        AssignOp::Assign, eb.ref(aux),
                        unsignedDelta(p, eb, ck,
                                      static_cast<uint64_t>(v),
                                      y_copy)));
            b->setRhs(eb.bin(BinaryOp::Add, b->rhs(), eb.ref(aux)));
            out.shadowDesc =
                "shift count forced to " + std::to_string(v);
            break;
          }
          case UBKind::DivideByZero: {
            if (!valueLive(site.exprId))
                return std::nullopt;
            auto *b = clone.findAs<Binary>(site.exprId);
            ScalarKind ck = promotedKind(p, b->rhs()->type());
            VarDecl *aux = makeAux(p, eb, ck, auxCounter);
            Expr *y_copy = cloneExprInto(p, b->rhs());
            block->insert(
                at, p.ctx().make<AssignStmt>(
                        AssignOp::Assign, eb.ref(aux),
                        unsignedDelta(p, eb, ck, 0, y_copy)));
            b->setRhs(eb.bin(BinaryOp::Add, b->rhs(), eb.ref(aux)));
            out.shadowDesc = "divisor forced to 0";
            break;
          }
          case UBKind::UseOfUninitMemory: {
            if (!valueLive(site.exprId))
                return std::nullopt;
            Node *n = clone.find(site.exprId);
            if (!n)
                return std::nullopt;
            Expr *cond = static_cast<Expr *>(n);
            auto *aux = p.ctx().make<VarDecl>(
                "__ub_u" + std::to_string(auxCounter++),
                p.types().s32(), Storage::Local, nullptr);
            block->insert(at, p.ctx().make<DeclStmt>(aux));
            BinaryOp op =
                rng.percent(50) ? BinaryOp::Add : BinaryOp::Sub;
            Expr *newCond = eb.bin(op, cond, eb.ref(aux));
            // Replace the condition in its owner statement.
            if (!replaceCond(*clone.program, site.exprId, newCond))
                return std::nullopt;
            out.siteId = newCond->nodeId();
            out.shadowDesc = "condition mixed with uninitialized " +
                             std::string(aux->name());
            break;
          }
          case UBKind::kCount:
            return std::nullopt;
        }
        out.program = std::move(clone.program);
        return out;
    }

    /** Find the If/While/For whose condition has @p condId and swap
     *  the condition for @p newCond. */
    bool
    replaceCond(Program &p, uint32_t condId, Expr *newCond)
    {
        bool done = false;
        for (FunctionDecl *f : p.functions()) {
            if (f->body())
                replaceCondInBlock(f->body(), condId, newCond, done);
        }
        return done;
    }

    void
    replaceCondInBlock(Block *b, uint32_t condId, Expr *newCond,
                       bool &done)
    {
        for (Stmt *s : b->stmts()) {
            if (done)
                return;
            switch (s->kind()) {
              case NodeKind::IfStmt: {
                auto *i = s->as<IfStmt>();
                if (i->cond()->nodeId() == condId) {
                    i->setCond(newCond);
                    done = true;
                    return;
                }
                replaceCondInBlock(i->thenBlock(), condId, newCond,
                                   done);
                if (i->elseBlock())
                    replaceCondInBlock(i->elseBlock(), condId, newCond,
                                       done);
                break;
              }
              case NodeKind::WhileStmt: {
                auto *w = s->as<WhileStmt>();
                if (w->cond()->nodeId() == condId) {
                    w->setCond(newCond);
                    done = true;
                    return;
                }
                replaceCondInBlock(w->body(), condId, newCond, done);
                break;
              }
              case NodeKind::ForStmt: {
                auto *fr = s->as<ForStmt>();
                if (fr->cond() && fr->cond()->nodeId() == condId) {
                    fr->setCond(newCond);
                    done = true;
                    return;
                }
                replaceCondInBlock(fr->body(), condId, newCond, done);
                break;
              }
              case NodeKind::Block:
                replaceCondInBlock(s->as<Block>(), condId, newCond,
                                   done);
                break;
              default:
                break;
            }
        }
    }
};

UBGenerator::UBGenerator(const Program &seed)
    : impl_(std::make_unique<Impl>(seed))
{}

UBGenerator::~UBGenerator() = default;

size_t
UBGenerator::matchCount(UBKind kind) const
{
    return impl_->sites[static_cast<size_t>(kind)].size();
}

bool
UBGenerator::profiled() const
{
    return impl_->profiled;
}

std::vector<UBProgram>
UBGenerator::generate(UBKind kind, Rng &rng, size_t cap)
{
    std::vector<UBProgram> result;
    int aux_counter = 0;
    for (const Site &site :
         impl_->sites[static_cast<size_t>(kind)]) {
        if (result.size() >= cap)
            break;
        if (auto ub = impl_->synthesize(site, rng, aux_counter))
            result.push_back(std::move(*ub));
    }
    return result;
}

std::vector<UBProgram>
UBGenerator::generateAll(Rng &rng, size_t capPerKind)
{
    std::vector<UBProgram> all;
    for (UBKind k : kAllUBKinds) {
        auto programs = generate(k, rng, capPerKind);
        for (auto &ub : programs)
            all.push_back(std::move(ub));
    }
    return all;
}

bool
validateUBProgram(const UBProgram &ub)
{
    PrintedProgram printed = printProgram(*ub.program);
    ir::Module mod = ir::lowerProgram(*ub.program, printed.map);
    vm::Machine machine; // one-off; bit-identical to vm::execute
    return validateUBModule(ub, mod, printed, machine);
}

bool
validateUBModule(const UBProgram &ub, const ir::Module &mod,
                 const ast::PrintedProgram &printed, vm::Machine &machine)
{
    vm::ExecOptions opts;
    opts.groundTruth = true;
    opts.stepLimit = kGroundTruthStepLimit;
    vm::ExecResult r = machine.run(mod, opts);
    if (r.kind != vm::ExecResult::Kind::Report)
        return false;
    if (!reportMatchesKind(ub.kind, r.report))
        return false;
    return r.reportLoc == ub.expectedLoc(printed);
}

} // namespace ubfuzz::ubgen
