/**
 * @file
 * The nine UB kinds UBGen supports (Table 1) and the sanitizer that
 * detects each (Table 2).
 */

#ifndef UBFUZZ_UBGEN_UB_KIND_H
#define UBFUZZ_UBGEN_UB_KIND_H

#include <vector>

#include "support/toolchain.h"
#include "vm/vm.h"

namespace ubfuzz::ubgen {

enum class UBKind : uint8_t {
    BufferOverflowArray,
    BufferOverflowPointer,
    UseAfterFree,
    UseAfterScope,
    NullPtrDeref,
    IntegerOverflow,
    ShiftOverflow,
    DivideByZero,
    UseOfUninitMemory,
    kCount,
};

constexpr size_t kNumUBKinds = static_cast<size_t>(UBKind::kCount);

inline constexpr UBKind kAllUBKinds[] = {
    UBKind::BufferOverflowArray, UBKind::BufferOverflowPointer,
    UBKind::UseAfterFree,        UBKind::UseAfterScope,
    UBKind::NullPtrDeref,        UBKind::IntegerOverflow,
    UBKind::ShiftOverflow,       UBKind::DivideByZero,
    UBKind::UseOfUninitMemory,
};

const char *ubKindName(UBKind k);

/** Table 2: which sanitizers detect which UB kind. */
std::vector<SanitizerKind> sanitizersFor(UBKind k);

/** Does a VM sanitizer report match the expected UB kind? */
bool reportMatchesKind(UBKind k, vm::ReportKind r);

} // namespace ubfuzz::ubgen

#endif // UBFUZZ_UBGEN_UB_KIND_H
