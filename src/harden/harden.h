/**
 * @file
 * ASPIS-style hardening passes: compile-time redundancy that turns a
 * silent single-event upset (one flipped bit in a register or stack
 * slot) into an explicit HardeningFault report.
 *
 *  - DuplicateCompare (EDDI-flavoured): every computed value gets a
 *    duplicate computed through an independent chain — shadow stack
 *    objects for memory, recomputation for pure ops — and consumption
 *    sites (stores, branches, returns, call arguments, the checksum)
 *    compare the two with a HardenCheck before using the value.
 *  - CfgSignature (RACFED-flavoured, simplified): each basic block
 *    stores its compile-time signature into a dedicated frame slot on
 *    entry and re-checks it before its terminator, catching upsets
 *    that corrupt the signature slot or the check's own data path.
 *    The inter-block transfer of the full RACFED scheme is subsumed by
 *    DuplicateCompare's duplicated branch conditions.
 *
 * Both run as registered ModulePasses at the very end of the
 * specialization pipeline (after the sanitizer stage and the late
 * optimizer), so no optimizer ever sees — or deletes — the redundancy.
 * HardenCheck only reports while the VM has a FaultPlan armed, which
 * is what guarantees zero sanitizer-report drift on the ordinary
 * testing matrix even when the program's own UB corrupts shadow state.
 */

#ifndef UBFUZZ_HARDEN_HARDEN_H
#define UBFUZZ_HARDEN_HARDEN_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ir/ir.h"

namespace ubfuzz::harden {

/** Hardening family bits (ir::Module::hardenedWith). */
inline constexpr uint32_t kDuplicateCompare = 1u << 0;
inline constexpr uint32_t kCfgSignature = 1u << 1;
inline constexpr uint32_t kAllFamilies =
    kDuplicateCompare | kCfgSignature;

/** "dup", "sig" — the CLI names of single family bits. */
const char *familyName(uint32_t bit);

/** Render a mask as its comma-joined family list, e.g. "dup,sig". */
std::string maskStr(uint32_t mask);

/**
 * Strict parse of a `--harden-passes` value: a non-empty
 * comma-separated list of known family names with no duplicates and no
 * trailing junk ("dup", "sig", "dup,sig"). Anything else —
 * including an empty string or "dup,dup" — is std::nullopt.
 */
std::optional<uint32_t> parseMask(std::string_view text);

/** Apply EDDI-style duplicate-and-compare to every function. */
void runDuplicateComparePass(ir::Module &m);

/** Apply the per-block signature store/check to every function. */
void runCfgSignaturePass(ir::Module &m);

} // namespace ubfuzz::harden

#endif // UBFUZZ_HARDEN_HARDEN_H
