#include "harden/harden.h"

#include <vector>

#include "support/diagnostics.h"

namespace ubfuzz::harden {

using ir::BasicBlock;
using ir::FrameObject;
using ir::Function;
using ir::Inst;
using ir::Module;
using ir::Opcode;
using ir::ScalarKind;
using ir::Value;

const char *
familyName(uint32_t bit)
{
    switch (bit) {
      case kDuplicateCompare: return "dup";
      case kCfgSignature: return "sig";
    }
    return "?";
}

std::string
maskStr(uint32_t mask)
{
    std::string s;
    for (uint32_t bit : {kDuplicateCompare, kCfgSignature}) {
        if (!(mask & bit))
            continue;
        if (!s.empty())
            s += ",";
        s += familyName(bit);
    }
    return s;
}

std::optional<uint32_t>
parseMask(std::string_view text)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (true) {
        size_t comma = text.find(',', pos);
        std::string_view item = text.substr(
            pos, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - pos);
        uint32_t bit;
        if (item == "dup")
            bit = kDuplicateCompare;
        else if (item == "sig")
            bit = kCfgSignature;
        else
            return std::nullopt;
        if (mask & bit) // duplicate family
            return std::nullopt;
        mask |= bit;
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    return mask;
}

namespace {

//===----------------------------------------------------------------===//
// DuplicateCompare (EDDI-style)
//===----------------------------------------------------------------===//

/**
 * Per-function rewriter. Values get duplicates (`dup[r]`), addresses
 * rooted at shadowable frame objects get shadow addresses
 * (`shadowAddr[r]`) pointing into a shadow copy of the object, and
 * consumption sites compare original against duplicate with a
 * HardenCheck (armed only under an active FaultPlan — see vm.h).
 *
 * Shadowability: a frame object can be shadowed iff every register
 * rooted at its FrameAddr (through Gep-only chains) is used purely as
 * an address — Gep base, Load/Store/MemCopy address, or a sanitizer
 * check operand (reads the pointer, accesses no memory we must
 * mirror). Any other use (stored as a value, passed to a call, fed
 * into arithmetic) could update the object through a chain this pass
 * cannot see, which would desynchronize the shadow and make an armed
 * HardenCheck fire without a fault. Unshadowable memory still gets
 * value duplication by re-loading through the (duplicated) address.
 */
class DupRewriter
{
  public:
    explicit DupRewriter(Function &f) : f_(f) {}

    void
    run()
    {
        analyzeShadowable();
        appendShadowObjects();
        for (BasicBlock &bb : f_.blocks)
            rewriteBlock(bb);
        emitEntryCopies();
    }

  private:
    /** regRoot_[r] = 1 + frame-object index r's pointer chain roots
     *  at, or 0. Single-assignment registers: two sweeps reach the
     *  fixpoint even with cross-block chains. */
    void
    analyzeShadowable()
    {
        regRoot_.assign(f_.numRegs, 0);
        shadowable_.assign(f_.frame.size(), true);
        for (int sweep = 0; sweep < 2; sweep++) {
            for (const BasicBlock &bb : f_.blocks) {
                for (const Inst &inst : bb.insts) {
                    if (inst.op == Opcode::FrameAddr && inst.dst)
                        regRoot_[inst.dst] = inst.object + 1;
                    else if (inst.op == Opcode::Gep && inst.dst &&
                             inst.a.isReg() && regRoot_[inst.a.reg])
                        regRoot_[inst.dst] = regRoot_[inst.a.reg];
                }
            }
        }
        auto escape = [this](const Value &v) {
            if (v.isReg() && regRoot_[v.reg])
                shadowable_[regRoot_[v.reg] - 1] = false;
        };
        for (const BasicBlock &bb : f_.blocks) {
            for (const Inst &inst : bb.insts) {
                switch (inst.op) {
                  case Opcode::Gep:
                    escape(inst.b); // rooted reg as *index*
                    escape(inst.c);
                    break;
                  case Opcode::Load:
                    break; // a is an address use
                  case Opcode::Store:
                    escape(inst.b); // pointer stored as a value
                    break;
                  case Opcode::MemCopy:
                    break; // both operands are addresses
                  case Opcode::AsanCheck:
                  case Opcode::UbsanNull:
                  case Opcode::MsanCheck:
                    break; // pointer read, no memory access to mirror
                  default:
                    escape(inst.a);
                    escape(inst.b);
                    escape(inst.c);
                    for (const Value &arg : inst.args)
                        escape(arg);
                    break;
                }
            }
        }
    }

    void
    appendShadowObjects()
    {
        size_t n = f_.frame.size();
        shadowIdx_.assign(n, 0);
        for (size_t o = 0; o < n; o++) {
            if (!shadowable_[o] || f_.frame[o].size == 0)
                continue;
            FrameObject sh;
            sh.name = f_.frame[o].name + ".sh";
            sh.size = f_.frame[o].size;
            sh.align = f_.frame[o].align;
            sh.scoped = false;
            sh.redzone = 0;
            sh.declId = 0;
            shadowIdx_[o] = static_cast<uint32_t>(f_.frame.size());
            f_.frame.push_back(std::move(sh));
        }
    }

    /** Copy every shadowed object's initial contents (0xAA fill for
     *  locals, marshaled values for parameters) into its shadow at
     *  function entry, before any original instruction runs. */
    void
    emitEntryCopies()
    {
        std::vector<Inst> prologue;
        for (size_t o = 0; o < shadowIdx_.size(); o++) {
            if (!shadowIdx_[o])
                continue;
            Inst fa;
            fa.op = Opcode::FrameAddr;
            fa.kind = ScalarKind::U64;
            fa.dst = f_.newReg();
            fa.object = static_cast<uint32_t>(o);
            Inst fs = fa;
            fs.dst = f_.newReg();
            fs.object = shadowIdx_[o];
            Inst cp;
            cp.op = Opcode::MemCopy;
            cp.a = Value::makeReg(fs.dst);
            cp.b = Value::makeReg(fa.dst);
            cp.imm = f_.frame[o].size;
            prologue.push_back(fa);
            prologue.push_back(fs);
            prologue.push_back(cp);
        }
        if (prologue.empty())
            return;
        BasicBlock &entry = f_.blocks.front();
        entry.insts.insert(entry.insts.begin(), prologue.begin(),
                           prologue.end());
    }

    uint32_t
    dupOf(uint32_t reg) const
    {
        return reg < dup_.size() ? dup_[reg] : 0;
    }

    uint32_t
    shadowOf(uint32_t reg) const
    {
        return reg < shadowAddr_.size() ? shadowAddr_[reg] : 0;
    }

    void
    setDup(uint32_t reg, uint32_t dupReg)
    {
        if (reg >= dup_.size())
            dup_.resize(reg + 1, 0);
        dup_[reg] = dupReg;
    }

    void
    setShadow(uint32_t reg, uint32_t shReg)
    {
        if (reg >= shadowAddr_.size())
            shadowAddr_.resize(reg + 1, 0);
        shadowAddr_[reg] = shReg;
    }

    /** The duplicate-side rendering of an operand: its dup register
     *  when one exists, else the operand itself. */
    Value
    dupVal(const Value &v) const
    {
        if (v.isReg() && dupOf(v.reg))
            return Value::makeReg(dupOf(v.reg));
        return v;
    }

    Inst
    makeCheck(const Value &orig, const Value &other, SourceLoc loc) const
    {
        Inst chk;
        chk.op = Opcode::HardenCheck;
        chk.kind = ScalarKind::U64;
        chk.a = orig;
        chk.b = other;
        chk.loc = loc;
        return chk;
    }

    /** Compare @p v against its duplicate (no-op without one). */
    void
    checkValue(std::vector<Inst> &out, const Value &v,
               SourceLoc loc) const
    {
        if (v.isReg() && dupOf(v.reg))
            out.push_back(makeCheck(v, Value::makeReg(dupOf(v.reg)),
                                    loc));
    }

    void
    rewriteBlock(BasicBlock &bb)
    {
        std::vector<Inst> out;
        out.reserve(bb.insts.size() * 2);
        for (Inst &inst : bb.insts) {
            switch (inst.op) {
              case Opcode::Const:
              case Opcode::Bin:
              case Opcode::Cast:
              case Opcode::Select: {
                out.push_back(inst);
                if (!inst.dst)
                    break;
                Inst d = inst;
                d.dst = f_.newReg();
                d.a = dupVal(inst.a);
                d.b = dupVal(inst.b);
                d.c = dupVal(inst.c);
                setDup(inst.dst, d.dst);
                out.push_back(std::move(d));
                break;
              }
              case Opcode::FrameAddr: {
                out.push_back(inst);
                if (!inst.dst)
                    break;
                if (shadowIdx_[inst.object]) {
                    Inst d = inst;
                    d.dst = f_.newReg();
                    d.object = shadowIdx_[inst.object];
                    setShadow(inst.dst, d.dst);
                    out.push_back(std::move(d));
                } else {
                    Inst d = inst;
                    d.dst = f_.newReg();
                    setDup(inst.dst, d.dst);
                    out.push_back(std::move(d));
                }
                break;
              }
              case Opcode::GlobalAddr: {
                out.push_back(inst);
                if (!inst.dst)
                    break;
                Inst d = inst;
                d.dst = f_.newReg();
                setDup(inst.dst, d.dst);
                out.push_back(std::move(d));
                break;
              }
              case Opcode::Gep: {
                out.push_back(inst);
                if (!inst.dst)
                    break;
                Inst d = inst;
                d.dst = f_.newReg();
                d.b = dupVal(inst.b);
                if (inst.a.isReg() && shadowOf(inst.a.reg)) {
                    d.a = Value::makeReg(shadowOf(inst.a.reg));
                    setShadow(inst.dst, d.dst);
                } else {
                    d.a = dupVal(inst.a);
                    setDup(inst.dst, d.dst);
                }
                out.push_back(std::move(d));
                break;
              }
              case Opcode::Load: {
                // Address integrity first (a corrupted address would
                // trap or read the wrong object before any value
                // compare could run), then the original load, then the
                // duplicate load, then the value compare.
                checkValue(out, inst.a, inst.loc);
                out.push_back(inst);
                if (!inst.dst)
                    break;
                Inst d = inst;
                d.dst = f_.newReg();
                if (inst.a.isReg() && shadowOf(inst.a.reg))
                    d.a = Value::makeReg(shadowOf(inst.a.reg));
                else
                    d.a = dupVal(inst.a);
                setDup(inst.dst, d.dst);
                uint32_t dd = d.dst;
                out.push_back(std::move(d));
                out.push_back(makeCheck(Value::makeReg(inst.dst),
                                        Value::makeReg(dd), inst.loc));
                break;
              }
              case Opcode::Store: {
                checkValue(out, inst.a, inst.loc);
                checkValue(out, inst.b, inst.loc);
                out.push_back(inst);
                if (inst.a.isReg() && shadowOf(inst.a.reg)) {
                    Inst d = inst;
                    d.a = Value::makeReg(shadowOf(inst.a.reg));
                    d.b = dupVal(inst.b);
                    out.push_back(std::move(d));
                }
                break;
              }
              case Opcode::MemCopy: {
                checkValue(out, inst.a, inst.loc);
                checkValue(out, inst.b, inst.loc);
                out.push_back(inst);
                if (inst.a.isReg() && shadowOf(inst.a.reg)) {
                    Inst d = inst;
                    d.a = Value::makeReg(shadowOf(inst.a.reg));
                    if (inst.b.isReg() && shadowOf(inst.b.reg))
                        d.b = Value::makeReg(shadowOf(inst.b.reg));
                    out.push_back(std::move(d));
                }
                break;
              }
              case Opcode::Call: {
                for (const Value &arg : inst.args)
                    checkValue(out, arg, inst.loc);
                out.push_back(inst);
                if (inst.dst) {
                    // The callee's result exists once; duplicate by an
                    // identity copy. Safe from optimizer interference
                    // because hardening runs after every optimizer.
                    Inst d;
                    d.op = Opcode::Bin;
                    d.binOp = ir::BinOp::Add;
                    d.kind = inst.kind;
                    d.dst = f_.newReg();
                    d.a = Value::makeReg(inst.dst);
                    d.b = Value::makeImm(0);
                    d.loc = inst.loc;
                    setDup(inst.dst, d.dst);
                    out.push_back(std::move(d));
                }
                break;
              }
              case Opcode::Malloc: {
                checkValue(out, inst.a, inst.loc);
                out.push_back(inst);
                if (inst.dst) {
                    Inst d;
                    d.op = Opcode::Bin;
                    d.binOp = ir::BinOp::Add;
                    d.kind = ScalarKind::U64;
                    d.dst = f_.newReg();
                    d.a = Value::makeReg(inst.dst);
                    d.b = Value::makeImm(0);
                    d.loc = inst.loc;
                    setDup(inst.dst, d.dst);
                    out.push_back(std::move(d));
                }
                break;
              }
              case Opcode::Free:
              case Opcode::Checksum:
                checkValue(out, inst.a, inst.loc);
                out.push_back(inst);
                break;
              case Opcode::CondBr:
              case Opcode::Ret:
                checkValue(out, inst.a, inst.loc);
                out.push_back(inst);
                break;
              default:
                // Nop, Br, lifetime markers, profiling logs, sanitizer
                // checks: pass through untouched.
                out.push_back(inst);
                break;
            }
        }
        bb.insts = std::move(out);
    }

    Function &f_;
    std::vector<uint32_t> regRoot_;
    std::vector<bool> shadowable_;
    std::vector<uint32_t> shadowIdx_;
    std::vector<uint32_t> dup_;
    std::vector<uint32_t> shadowAddr_;
};

//===----------------------------------------------------------------===//
// CfgSignature (simplified RACFED)
//===----------------------------------------------------------------===//

uint64_t
blockSignature(size_t fnIdx, uint32_t blockId)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    h = (h ^ static_cast<uint64_t>(fnIdx)) * 0x100000001b3ULL;
    h = (h ^ static_cast<uint64_t>(blockId)) * 0x100000001b3ULL;
    // Keep the stored signature nonzero so a zeroed slot always
    // mismatches.
    return h | 1;
}

void
signFunction(Module &m, size_t fnIdx)
{
    Function &f = m.functions[fnIdx];
    uint32_t sigObj = static_cast<uint32_t>(f.frame.size());
    FrameObject sig;
    sig.name = ".sig";
    sig.size = 8;
    sig.align = 8;
    f.frame.push_back(std::move(sig));

    for (BasicBlock &bb : f.blocks) {
        uint64_t sigVal = blockSignature(fnIdx, bb.id);

        // Entry: store the block's signature into the slot.
        Inst c;
        c.op = Opcode::Const;
        c.kind = ScalarKind::U64;
        c.dst = f.newReg();
        c.imm = sigVal;
        Inst fa;
        fa.op = Opcode::FrameAddr;
        fa.kind = ScalarKind::U64;
        fa.dst = f.newReg();
        fa.object = sigObj;
        Inst st;
        st.op = Opcode::Store;
        st.kind = ScalarKind::U64;
        st.a = Value::makeReg(fa.dst);
        st.b = Value::makeReg(c.dst);
        st.imm = 8;
        bb.insts.insert(bb.insts.begin(), {c, fa, st});

        // Exit: reload, fold the expected signature out, require zero.
        SourceLoc loc = bb.insts.back().loc;
        Inst fa2 = fa;
        fa2.dst = f.newReg();
        Inst ld;
        ld.op = Opcode::Load;
        ld.kind = ScalarKind::U64;
        ld.dst = f.newReg();
        ld.a = Value::makeReg(fa2.dst);
        ld.imm = 8;
        ld.loc = loc;
        Inst x;
        x.op = Opcode::Bin;
        x.binOp = ir::BinOp::BitXor;
        x.kind = ScalarKind::U64;
        x.dst = f.newReg();
        x.a = Value::makeReg(ld.dst);
        x.b = Value::makeImm(sigVal);
        x.loc = loc;
        Inst chk;
        chk.op = Opcode::HardenCheck;
        chk.kind = ScalarKind::U64;
        chk.a = Value::makeReg(x.dst);
        chk.b = Value::makeImm(0);
        chk.loc = loc;
        // Keep the terminator last (verifyModule's placement rule).
        auto at = bb.insts.end();
        if (!bb.insts.empty() && bb.insts.back().isTerminator())
            --at;
        bb.insts.insert(at, {fa2, ld, x, chk});
    }
}

} // namespace

void
runDuplicateComparePass(Module &m)
{
    for (Function &f : m.functions) {
        if (f.blocks.empty())
            continue;
        DupRewriter(f).run();
    }
}

void
runCfgSignaturePass(Module &m)
{
    for (size_t fi = 0; fi < m.functions.size(); fi++) {
        if (m.functions[fi].blocks.empty())
            continue;
        signFunction(m, fi);
    }
}

} // namespace ubfuzz::harden
