/**
 * @file
 * The crash-site mapping test oracle (Algorithm 2) and the
 * differential test runner around it.
 *
 * Given a UB program compiled by a matrix of compiler configurations
 * with the same sanitizer, a *discrepancy* is a pair (b_c, b_n) where
 * b_c produces a sanitizer report and b_n does not. The discrepancy is
 * attributed to a sanitizer FN bug iff the crash site of b_c — the
 * (line, offset) of its last executed instruction — is also executed
 * by b_n (the compiler did not optimize the UB away).
 */

#ifndef UBFUZZ_ORACLE_ORACLE_H
#define UBFUZZ_ORACLE_ORACLE_H

#include <optional>
#include <vector>

#include "compiler/compiler.h"
#include "vm/vm.h"

namespace ubfuzz::oracle {

/**
 * Algorithm 2 (IsBug): does the non-crashing execution pass through
 * the crashing execution's crash site?
 *
 * @param crashSite   the crash site of b_c (Definition 2)
 * @param nonCrashingTrace  all executed sites of b_n (GetExecutedSites)
 */
bool crashSiteMapping(SourceLoc crashSite,
                      const std::vector<SourceLoc> &nonCrashingTrace);

/** One compiled-and-executed configuration of the program under test. */
struct ConfigOutcome
{
    compiler::CompilerConfig config;
    san::CompileLog log;
    vm::ExecResult result;
    /**
     * The compiled binary itself, retained so the debugger pass (§3.3)
     * can re-execute it with tracing enabled instead of compiling the
     * same configuration a second time.
     */
    ir::Module module;
};

/** A (crashing, non-crashing) pair with the oracle verdict. */
struct DiscrepancyVerdict
{
    size_t crashingIdx = 0;
    size_t nonCrashingIdx = 0;
    /** Crash-site mapping said the discrepancy is a sanitizer FN bug. */
    bool isBug = false;
};

struct DifferentialResult
{
    std::vector<ConfigOutcome> outcomes;
    /** Every (crash, no-crash) pair with its oracle verdict. */
    std::vector<DiscrepancyVerdict> verdicts;
    /** Executions that hit the step limit (ExecResult::Kind::Timeout). */
    size_t timeouts = 0;
    /**
     * Timed-out binaries explicitly excluded from discrepancy pairing
     * when pairing actually happened: a timeout is neither a crash nor
     * evidence of a missed report, so it must never stand in as the
     * "silent" half of a pair.
     */
    size_t timeoutExcluded = 0;

    bool hasDiscrepancy() const { return !verdicts.empty(); }

    bool
    anyBugVerdict() const
    {
        for (const auto &v : verdicts)
            if (v.isBug)
                return true;
        return false;
    }
};

/**
 * The compile-all-first execution batch of one testing matrix.
 *
 * Phase 1 (`compile`) specializes every configuration through the
 * CompilationCache while the machine is still cold; phase 2 (`run`)
 * pushes all binaries through one shared vm::Machine — reset, not
 * rebuilt, between runs — pairs the discrepancies, and lazily
 * re-executes silent binaries of discrepant pairs with tracing (the
 * debugger pass of §3.3). Configurations whose specialized binaries
 * are byte-identical (equal ir::executionKey — e.g. both vendors'
 * modules at equivalent opt points) execute once; the others copy the
 * result and count a dedup skip on the machine's ExecStats.
 *
 * The ir::BinaryKey computed per outcome for that dedup is retained
 * and handed to every machine.run() call, so the machine's CodeCache
 * resolves each binary to its flattened bytecode without a second
 * serialization pass — one key computation serves both the execution
 * dedup and the translate-once cache, and the lazy debugger re-runs
 * hit the translation their silent run produced.
 */
class ExecutionPlan
{
  public:
    /** Phase 1: compile every configuration; no execution yet. */
    static ExecutionPlan
    compile(compiler::CompilationCache &cache,
            const std::vector<compiler::CompilerConfig> &configs);

    /** Phase 2: execute the whole batch through @p machine. Consumes
     *  the plan (outcomes move into the result). */
    DifferentialResult run(vm::Machine &machine, uint64_t stepLimit);

    size_t size() const { return outcomes_.size(); }

  private:
    /** For the trace accounting of the debugger re-executions. */
    compiler::CompilationCache *cache_ = nullptr;
    std::vector<ConfigOutcome> outcomes_;
    /** Index of the first outcome with an identical execution key. */
    std::vector<size_t> aliasOf_;
    /** Each outcome's ir::BinaryKey, computed once at compile time and
     *  handed to the machine so its CodeCache never re-serializes a
     *  module it is about to execute. */
    std::vector<ir::BinaryKey> keys_;
};

/**
 * Compile the cache's program under every configuration, execute
 * through @p machine, and apply crash-site mapping to every discrepant
 * pair — ExecutionPlan::compile + run. No configuration is ever
 * compiled twice, the cache shares lowering/early-opt work across
 * calls, and the machine shares its arenas across the whole batch (the
 * campaign passes one cache and one machine per program through its
 * whole sanitizer matrix). The step limit is a required argument: the
 * campaign plumbs CampaignConfig::stepLimit end to end.
 */
DifferentialResult
runDifferential(compiler::CompilationCache &cache, vm::Machine &machine,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit);

/** Overload for callers without a long-lived machine: builds a
 *  throwaway one. */
DifferentialResult
runDifferential(compiler::CompilationCache &cache,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit = 2'000'000);

/** Convenience overload for one-off callers: builds a throwaway
 *  CompilationCache (and machine) for @p program and delegates. */
DifferentialResult
runDifferential(const ast::Program &program,
                const ast::PrintedProgram &printed,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit = 2'000'000);

/** The paper's testing matrix: both vendors (where the sanitizer is
 *  supported) at -O0/-O1/-Os/-O2/-O3 (§4.1). */
std::vector<compiler::CompilerConfig>
testingMatrix(SanitizerKind sanitizer);

} // namespace ubfuzz::oracle

#endif // UBFUZZ_ORACLE_ORACLE_H
