/**
 * @file
 * The crash-site mapping test oracle (Algorithm 2) and the
 * differential test runner around it.
 *
 * Given a UB program compiled by a matrix of compiler configurations
 * with the same sanitizer, a *discrepancy* is a pair (b_c, b_n) where
 * b_c produces a sanitizer report and b_n does not. The discrepancy is
 * attributed to a sanitizer FN bug iff the crash site of b_c — the
 * (line, offset) of its last executed instruction — is also executed
 * by b_n (the compiler did not optimize the UB away).
 */

#ifndef UBFUZZ_ORACLE_ORACLE_H
#define UBFUZZ_ORACLE_ORACLE_H

#include <optional>
#include <vector>

#include "compiler/compiler.h"
#include "vm/vm.h"

namespace ubfuzz::oracle {

/**
 * Algorithm 2 (IsBug): does the non-crashing execution pass through
 * the crashing execution's crash site?
 *
 * @param crashSite   the crash site of b_c (Definition 2)
 * @param nonCrashingTrace  all executed sites of b_n (GetExecutedSites)
 */
bool crashSiteMapping(SourceLoc crashSite,
                      const std::vector<SourceLoc> &nonCrashingTrace);

/** One compiled-and-executed configuration of the program under test. */
struct ConfigOutcome
{
    compiler::CompilerConfig config;
    san::CompileLog log;
    vm::ExecResult result;
    /**
     * The compiled binary itself, retained so the debugger pass (§3.3)
     * can re-execute it with tracing enabled instead of compiling the
     * same configuration a second time.
     */
    ir::Module module;
};

/** A (crashing, non-crashing) pair with the oracle verdict. */
struct DiscrepancyVerdict
{
    size_t crashingIdx = 0;
    size_t nonCrashingIdx = 0;
    /** Crash-site mapping said the discrepancy is a sanitizer FN bug. */
    bool isBug = false;
};

struct DifferentialResult
{
    std::vector<ConfigOutcome> outcomes;
    /** Every (crash, no-crash) pair with its oracle verdict. */
    std::vector<DiscrepancyVerdict> verdicts;

    bool hasDiscrepancy() const { return !verdicts.empty(); }

    bool
    anyBugVerdict() const
    {
        for (const auto &v : verdicts)
            if (v.isBug)
                return true;
        return false;
    }
};

/**
 * Compile the cache's program under every configuration, execute, and
 * apply crash-site mapping to every discrepant pair. Non-crashing
 * binaries of discrepant pairs are re-executed with tracing enabled
 * (the "debugger" pass of §3.3) using the module retained in their
 * ConfigOutcome — no configuration is ever compiled twice, and the
 * cache shares lowering/early-opt work across calls (the campaign
 * passes one cache per program through its whole sanitizer matrix).
 */
DifferentialResult
runDifferential(compiler::CompilationCache &cache,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit = 2'000'000);

/** Convenience overload for one-off callers: builds a throwaway
 *  CompilationCache for @p program and delegates. */
DifferentialResult
runDifferential(const ast::Program &program,
                const ast::PrintedProgram &printed,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit = 2'000'000);

/** The paper's testing matrix: both vendors (where the sanitizer is
 *  supported) at -O0/-O1/-Os/-O2/-O3 (§4.1). */
std::vector<compiler::CompilerConfig>
testingMatrix(SanitizerKind sanitizer);

} // namespace ubfuzz::oracle

#endif // UBFUZZ_ORACLE_ORACLE_H
