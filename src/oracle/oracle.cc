#include "oracle/oracle.h"

#include <map>
#include <string>
#include <unordered_map>

namespace ubfuzz::oracle {

bool
crashSiteMapping(SourceLoc crashSite,
                 const std::vector<SourceLoc> &nonCrashingTrace)
{
    for (const SourceLoc &loc : nonCrashingTrace)
        if (loc == crashSite)
            return true;
    return false;
}

ExecutionPlan
ExecutionPlan::compile(compiler::CompilationCache &cache,
                       const std::vector<compiler::CompilerConfig> &configs)
{
    ExecutionPlan plan;
    plan.cache_ = &cache;
    plan.outcomes_.reserve(configs.size());
    plan.aliasOf_.reserve(configs.size());
    plan.keys_.reserve(configs.size());
    // Map each binary's execution key to the first outcome that has
    // it: later identical binaries alias their execution to it. Keyed
    // by ir::BinaryKey — (hash, length) of the serialized key rather
    // than the multi-KB key itself, the same collision-risk tradeoff
    // the corpus dedup makes. The keys are retained: run() hands them
    // to the machine so the VM's code cache reuses this serialization
    // pass instead of re-walking every module per execution. Unordered
    // on purpose: the key carries its own FNV-1a hash, and insertion
    // order (not key order) decides aliasing, so lookup is O(1) with
    // no ordered full-key compares.
    std::unordered_map<ir::BinaryKey, size_t, ir::BinaryKeyHash>
        firstWithKey;
    for (const compiler::CompilerConfig &cfg : configs) {
        compiler::Binary binary = cache.compile(cfg);
        ConfigOutcome outcome;
        outcome.config = cfg;
        outcome.log = std::move(binary.log);
        outcome.module = std::move(binary.module);
        size_t idx = plan.outcomes_.size();
        ir::BinaryKey key = ir::binaryKey(outcome.module);
        auto [it, inserted] = firstWithKey.emplace(key, idx);
        plan.aliasOf_.push_back(it->second);
        plan.keys_.push_back(key);
        plan.outcomes_.push_back(std::move(outcome));
        (void)inserted;
    }
    return plan;
}

DifferentialResult
ExecutionPlan::run(vm::Machine &machine, uint64_t stepLimit)
{
    DifferentialResult result;
    // Execute each distinct binary once; identical binaries behave
    // identically under every ExecOptions (see ir::executionKey), so
    // aliases copy the root's result instead of re-running.
    for (size_t i = 0; i < outcomes_.size(); i++) {
        if (aliasOf_[i] != i) {
            outcomes_[i].result = outcomes_[aliasOf_[i]].result;
            machine.noteDedupSkip();
            continue;
        }
        vm::ExecOptions opts;
        opts.stepLimit = stepLimit;
        outcomes_[i].result =
            machine.run(outcomes_[i].module, opts, &keys_[i]);
    }

    // Find discrepant pairs: some binary reports, another does not. A
    // timed-out binary is neither: it is excluded from pairing (and
    // counted) rather than treated as a silent non-crasher.
    std::vector<size_t> crashing, silent;
    std::vector<size_t> timedOut;
    for (size_t i = 0; i < outcomes_.size(); i++) {
        const vm::ExecResult &r = outcomes_[i].result;
        if (r.kind == vm::ExecResult::Kind::Timeout)
            timedOut.push_back(i);
        else if (r.crashed())
            crashing.push_back(i);
        else
            silent.push_back(i);
    }
    result.timeouts = timedOut.size();
    if (crashing.empty() || silent.empty()) {
        result.outcomes = std::move(outcomes_);
        return result;
    }
    result.timeoutExcluded = timedOut.size();

    // Trace each distinct silent binary once (the debugger run):
    // re-execute the retained module with tracing on — compilation and
    // the machine are deterministic, so this is exactly the binary
    // that ran silently above. Aliased binaries share the trace; the
    // copy happens only when an alias actually exists (traces can be
    // stepLimit-sized).
    std::map<size_t, size_t> traceIdxOfRoot;
    std::vector<std::vector<SourceLoc>> traces(silent.size());
    for (size_t k = 0; k < silent.size(); k++) {
        size_t root = aliasOf_[silent[k]];
        auto [it, inserted] = traceIdxOfRoot.emplace(root, k);
        if (!inserted) {
            traces[k] = traces[it->second];
            machine.noteDedupSkip();
            continue;
        }
        vm::ExecOptions opts;
        opts.stepLimit = stepLimit;
        opts.recordTrace = true;
        traces[k] = machine
                        .run(outcomes_[silent[k]].module, opts,
                             &keys_[silent[k]])
                        .trace;
        cache_->noteTraceExecution();
    }

    for (size_t ci : crashing) {
        SourceLoc site = outcomes_[ci].result.crashSite();
        for (size_t k = 0; k < silent.size(); k++) {
            DiscrepancyVerdict v;
            v.crashingIdx = ci;
            v.nonCrashingIdx = silent[k];
            v.isBug = crashSiteMapping(site, traces[k]);
            result.verdicts.push_back(v);
        }
    }
    result.outcomes = std::move(outcomes_);
    return result;
}

DifferentialResult
runDifferential(compiler::CompilationCache &cache, vm::Machine &machine,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit)
{
    return ExecutionPlan::compile(cache, configs).run(machine, stepLimit);
}

DifferentialResult
runDifferential(compiler::CompilationCache &cache,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit)
{
    vm::Machine machine;
    return runDifferential(cache, machine, configs, stepLimit);
}

DifferentialResult
runDifferential(const ast::Program &program,
                const ast::PrintedProgram &printed,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit)
{
    compiler::CompilationCache cache(program, printed);
    return runDifferential(cache, configs, stepLimit);
}

std::vector<compiler::CompilerConfig>
testingMatrix(SanitizerKind sanitizer)
{
    std::vector<compiler::CompilerConfig> configs;
    for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
        if (!vendorSupports(v, sanitizer))
            continue;
        for (OptLevel l : kAllOptLevels) {
            compiler::CompilerConfig c;
            c.vendor = v;
            c.level = l;
            c.sanitizer = sanitizer;
            configs.push_back(c);
        }
    }
    return configs;
}

} // namespace ubfuzz::oracle
