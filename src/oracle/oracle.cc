#include "oracle/oracle.h"

namespace ubfuzz::oracle {

bool
crashSiteMapping(SourceLoc crashSite,
                 const std::vector<SourceLoc> &nonCrashingTrace)
{
    for (const SourceLoc &loc : nonCrashingTrace)
        if (loc == crashSite)
            return true;
    return false;
}

DifferentialResult
runDifferential(compiler::CompilationCache &cache,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit)
{
    DifferentialResult result;
    result.outcomes.reserve(configs.size());
    for (const compiler::CompilerConfig &cfg : configs) {
        compiler::Binary binary = cache.compile(cfg);
        vm::ExecOptions opts;
        opts.stepLimit = stepLimit;
        ConfigOutcome outcome;
        outcome.config = cfg;
        outcome.log = std::move(binary.log);
        outcome.module = std::move(binary.module);
        outcome.result = vm::execute(outcome.module, opts);
        result.outcomes.push_back(std::move(outcome));
    }

    // Find discrepant pairs: some binary reports, another does not.
    std::vector<size_t> crashing, silent;
    for (size_t i = 0; i < result.outcomes.size(); i++) {
        const vm::ExecResult &r = result.outcomes[i].result;
        if (r.crashed())
            crashing.push_back(i);
        else if (r.kind != vm::ExecResult::Kind::Timeout)
            silent.push_back(i);
    }
    if (crashing.empty() || silent.empty())
        return result;

    // Trace each silent binary once (the debugger run): re-execute the
    // retained module with tracing on — compilation is deterministic,
    // so this is exactly the binary that ran silently above.
    std::vector<std::vector<SourceLoc>> traces(silent.size());
    for (size_t k = 0; k < silent.size(); k++) {
        vm::ExecOptions opts;
        opts.stepLimit = stepLimit;
        opts.recordTrace = true;
        traces[k] =
            vm::execute(result.outcomes[silent[k]].module, opts).trace;
        cache.noteTraceExecution();
    }

    for (size_t ci : crashing) {
        SourceLoc site = result.outcomes[ci].result.crashSite();
        for (size_t k = 0; k < silent.size(); k++) {
            DiscrepancyVerdict v;
            v.crashingIdx = ci;
            v.nonCrashingIdx = silent[k];
            v.isBug = crashSiteMapping(site, traces[k]);
            result.verdicts.push_back(v);
        }
    }
    return result;
}

DifferentialResult
runDifferential(const ast::Program &program,
                const ast::PrintedProgram &printed,
                const std::vector<compiler::CompilerConfig> &configs,
                uint64_t stepLimit)
{
    compiler::CompilationCache cache(program, printed);
    return runDifferential(cache, configs, stepLimit);
}

std::vector<compiler::CompilerConfig>
testingMatrix(SanitizerKind sanitizer)
{
    std::vector<compiler::CompilerConfig> configs;
    for (Vendor v : {Vendor::GCC, Vendor::LLVM}) {
        if (!vendorSupports(v, sanitizer))
            continue;
        for (OptLevel l : kAllOptLevels) {
            compiler::CompilerConfig c;
            c.vendor = v;
            c.level = l;
            c.sanitizer = sanitizer;
            configs.push_back(c);
        }
    }
    return configs;
}

} // namespace ubfuzz::oracle
