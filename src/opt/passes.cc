#include "opt/pass.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "support/coverage.h"

namespace ubfuzz::opt {

using ir::BasicBlock;
using ir::Function;
using ir::Inst;
using ir::Module;
using ir::Opcode;
using ir::Value;
using ast::BinaryOp;

UBF_COV_DECLARE_FUNC(covFold, "opt.fold.run");
UBF_COV_DECLARE(covFoldBin, "opt.fold.bin");
UBF_COV_DECLARE(covFoldBranch, "opt.fold.branch");
UBF_COV_DECLARE_FUNC(covPeephole, "opt.peephole.run");
UBF_COV_DECLARE(covPeepholeReassoc, "opt.peephole.reassoc");
UBF_COV_DECLARE_FUNC(covCse, "opt.cse.run");
UBF_COV_DECLARE_FUNC(covStoreFwd, "opt.storefwd.run");
UBF_COV_DECLARE(covStoreFwdHit, "opt.storefwd.forwarded");
UBF_COV_DECLARE_FUNC(covDse, "opt.dse.run");
UBF_COV_DECLARE(covDseOverwrite, "opt.dse.overwrite");
UBF_COV_DECLARE(covDseWriteOnly, "opt.dse.write_only_object");
UBF_COV_DECLARE_FUNC(covDce, "opt.dce.run");
UBF_COV_DECLARE_FUNC(covSimplify, "opt.simplifycfg.run");
UBF_COV_DECLARE(covSimplifyUnreachable, "opt.simplifycfg.unreachable");
UBF_COV_DECLARE_FUNC(covHoist, "opt.lifetimehoist.run");

namespace {

/** Apply @p fn to every operand Value of @p inst. */
template <typename F>
void
forEachOperand(Inst &inst, F &&fn)
{
    fn(inst.a);
    fn(inst.b);
    fn(inst.c);
    for (Value &v : inst.args)
        fn(v);
}

/** Pure value-producing instructions: deletable when unused. Removing a
 *  dead Load or division also removes its potential fault — precisely
 *  the "optimizer assumes no UB" behaviour of real compilers. */
bool
isPure(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::Const:
      case Opcode::Bin:
      case Opcode::Cast:
      case Opcode::Select:
      case Opcode::Gep:
      case Opcode::FrameAddr:
      case Opcode::GlobalAddr:
      case Opcode::Load:
        return true;
      default:
        return false;
    }
}

void
sweepNops(Function &f)
{
    for (BasicBlock &bb : f.blocks) {
        bb.insts.erase(std::remove_if(bb.insts.begin(), bb.insts.end(),
                                      [](const Inst &i) {
                                          return i.op == Opcode::Nop;
                                      }),
                       bb.insts.end());
    }
}

/** Rewrite @p inst into a no-op that just forwards @p src to its dst. */
void
makeIdentity(Inst &inst, Value src)
{
    inst.op = Opcode::Cast;
    inst.a = src;
    inst.b = Value{};
    inst.c = Value{};
    inst.args.clear();
    inst.flag = false;
}

void
makeConst(Inst &inst, uint64_t value)
{
    inst.op = Opcode::Const;
    inst.imm = ir::canonicalValue(value, inst.kind);
    inst.a = Value{};
    inst.b = Value{};
    inst.c = Value{};
    inst.args.clear();
    inst.flag = false;
}

//===--------------------------------------------------------------===//
// Constant folding
//===--------------------------------------------------------------===//

class ConstFoldPass : public Pass
{
  public:
    const char *name() const override { return "constfold"; }

    bool
    run(Module &, Function &f) override
    {
        UBF_COV_HIT(covFold);
        bool changed = false;
        for (BasicBlock &bb : f.blocks) {
            std::unordered_map<uint32_t, uint64_t> consts;
            for (Inst &inst : bb.insts) {
                forEachOperand(inst, [&](Value &v) {
                    if (!v.isReg())
                        return;
                    auto it = consts.find(v.reg);
                    if (it != consts.end()) {
                        v = Value::makeImm(it->second);
                        changed = true;
                    }
                });
                switch (inst.op) {
                  case Opcode::Const:
                    consts[inst.dst] =
                        ir::canonicalValue(inst.imm, inst.kind);
                    break;
                  case Opcode::Bin:
                    if (inst.a.isImm() && inst.b.isImm()) {
                        bool trapped = false;
                        uint64_t r =
                            ir::evalBinary(inst.binOp, inst.kind,
                                           inst.a.imm, inst.b.imm,
                                           trapped);
                        if (!trapped) {
                            UBF_COV_HIT(covFoldBin);
                            makeConst(inst, r);
                            consts[inst.dst] = inst.imm;
                            changed = true;
                        }
                    }
                    break;
                  case Opcode::Cast:
                    if (inst.a.isImm()) {
                        makeConst(inst, inst.a.imm);
                        consts[inst.dst] = inst.imm;
                        changed = true;
                    }
                    break;
                  case Opcode::Select:
                    if (inst.c.isImm()) {
                        Value pick = inst.c.imm ? inst.a : inst.b;
                        if (pick.isImm())
                            makeConst(inst, pick.imm);
                        else
                            makeIdentity(inst, pick);
                        changed = true;
                    }
                    break;
                  case Opcode::CondBr:
                    if (inst.a.isImm()) {
                        UBF_COV_HIT(covFoldBranch);
                        uint32_t target =
                            inst.a.imm ? inst.targets[0]
                                       : inst.targets[1];
                        inst.op = Opcode::Br;
                        inst.targets[0] = target;
                        inst.a = Value{};
                        changed = true;
                    }
                    break;
                  default:
                    break;
                }
            }
        }
        return changed;
    }
};

//===--------------------------------------------------------------===//
// Peephole / instcombine
//===--------------------------------------------------------------===//

class PeepholePass : public Pass
{
  public:
    explicit PeepholePass(Vendor vendor) : vendor_(vendor) {}
    const char *name() const override { return "peephole"; }

    bool
    run(Module &, Function &f) override
    {
        UBF_COV_HIT(covPeephole);
        bool changed = false;
        for (BasicBlock &bb : f.blocks) {
            // reg -> defining instruction index (for reassociation).
            std::unordered_map<uint32_t, size_t> defs;
            for (size_t i = 0; i < bb.insts.size(); i++) {
                Inst &inst = bb.insts[i];
                if (inst.op == Opcode::Bin)
                    changed |= simplifyBin(bb, defs, inst);
                if (inst.dst)
                    defs[inst.dst] = i;
            }
        }
        return changed;
    }

  private:
    static bool isImmVal(const Value &v, uint64_t x)
    {
        return v.isImm() && v.imm == x;
    }

    bool
    simplifyBin(BasicBlock &bb,
                const std::unordered_map<uint32_t, size_t> &defs,
                Inst &inst)
    {
        const Value a = inst.a, b = inst.b;
        bool llvm = vendor_ == Vendor::LLVM;
        switch (inst.binOp) {
          case BinaryOp::Mul:
            if (isImmVal(a, 0) || isImmVal(b, 0)) {
                makeConst(inst, 0);
                return true;
            }
            if (isImmVal(a, 1)) {
                makeIdentity(inst, b);
                return true;
            }
            if (isImmVal(b, 1)) {
                makeIdentity(inst, a);
                return true;
            }
            break;
          case BinaryOp::Add:
            if (isImmVal(a, 0)) {
                makeIdentity(inst, b);
                return true;
            }
            if (isImmVal(b, 0)) {
                makeIdentity(inst, a);
                return true;
            }
            // (x + c1) + c2 -> x + (c1 + c2). LLVM reassociation:
            // folding the constants can remove an intermediate signed
            // overflow, a classic UB-eliding transform.
            if (llvm && b.isImm() && a.isReg()) {
                auto it = defs.find(a.reg);
                if (it != defs.end()) {
                    const Inst &def = bb.insts[it->second];
                    if (def.op == Opcode::Bin &&
                        def.binOp == BinaryOp::Add &&
                        def.kind == inst.kind && def.b.isImm()) {
                        UBF_COV_HIT(covPeepholeReassoc);
                        bool trapped = false;
                        uint64_t c = ir::evalBinary(
                            BinaryOp::Add, inst.kind, def.b.imm, b.imm,
                            trapped);
                        inst.a = def.a;
                        inst.b = Value::makeImm(c);
                        return true;
                    }
                }
            }
            break;
          case BinaryOp::Sub:
            if (isImmVal(b, 0)) {
                makeIdentity(inst, a);
                return true;
            }
            if (llvm && a.isReg() && b.isReg() && a.reg == b.reg) {
                makeConst(inst, 0);
                return true;
            }
            break;
          case BinaryOp::Div:
            if (isImmVal(b, 1)) {
                makeIdentity(inst, a);
                return true;
            }
            break;
          case BinaryOp::BitAnd:
            if (isImmVal(a, 0) || isImmVal(b, 0)) {
                makeConst(inst, 0);
                return true;
            }
            if (a.isReg() && b.isReg() && a.reg == b.reg) {
                makeIdentity(inst, a);
                return true;
            }
            break;
          case BinaryOp::BitOr:
            if (isImmVal(a, 0)) {
                makeIdentity(inst, b);
                return true;
            }
            if (isImmVal(b, 0)) {
                makeIdentity(inst, a);
                return true;
            }
            if (a.isReg() && b.isReg() && a.reg == b.reg) {
                makeIdentity(inst, a);
                return true;
            }
            break;
          case BinaryOp::BitXor:
            if (llvm && a.isReg() && b.isReg() && a.reg == b.reg) {
                makeConst(inst, 0);
                return true;
            }
            if (isImmVal(b, 0)) {
                makeIdentity(inst, a);
                return true;
            }
            break;
          case BinaryOp::Shl:
          case BinaryOp::Shr:
            if (isImmVal(b, 0)) {
                makeIdentity(inst, a);
                return true;
            }
            break;
          default:
            break;
        }
        return false;
    }

    Vendor vendor_;
};

//===--------------------------------------------------------------===//
// Common subexpression elimination
//===--------------------------------------------------------------===//

class CSEPass : public Pass
{
  public:
    const char *name() const override { return "cse"; }

    bool
    run(Module &, Function &f) override
    {
        UBF_COV_HIT(covCse);
        bool changed = false;
        using Key = std::tuple<uint8_t, uint8_t, uint8_t, uint8_t,
                               uint64_t, uint8_t, uint64_t, uint64_t,
                               uint32_t, uint64_t>;
        for (BasicBlock &bb : f.blocks) {
            std::map<Key, uint32_t> seen;
            std::unordered_map<uint32_t, uint32_t> alias;
            for (Inst &inst : bb.insts) {
                forEachOperand(inst, [&](Value &v) {
                    if (v.isReg()) {
                        auto it = alias.find(v.reg);
                        if (it != alias.end())
                            v.reg = it->second;
                    }
                });
                switch (inst.op) {
                  case Opcode::Const:
                  case Opcode::Bin:
                  case Opcode::Cast:
                  case Opcode::Gep:
                  case Opcode::FrameAddr:
                  case Opcode::GlobalAddr:
                    break;
                  default:
                    continue;
                }
                auto enc = [](const Value &v) {
                    return std::pair<uint8_t, uint64_t>(
                        static_cast<uint8_t>(v.tag),
                        v.isReg() ? v.reg : v.imm);
                };
                auto [ta, va] = enc(inst.a);
                auto [tb, vb] = enc(inst.b);
                Key key{static_cast<uint8_t>(inst.op),
                        static_cast<uint8_t>(inst.kind),
                        static_cast<uint8_t>(inst.binOp),
                        ta, va, tb, vb, inst.imm, inst.object,
                        inst.bound};
                auto [it, inserted] = seen.emplace(key, inst.dst);
                if (!inserted) {
                    // Forward in-block uses directly; keep the dst
                    // defined via an identity (uses in later blocks
                    // may exist), and let DCE clean it up.
                    alias[inst.dst] = it->second;
                    makeIdentity(inst, Value::makeReg(it->second));
                    changed = true;
                }
            }
        }
        sweepNops(f);
        return changed;
    }
};

//===--------------------------------------------------------------===//
// Memory: store forwarding, redundant load elim, dead store elim
//===--------------------------------------------------------------===//

/** A statically-resolved address: object + constant byte offset. */
struct AddrKey
{
    enum class Space : uint8_t { Frame, Global, Unknown } space =
        Space::Unknown;
    uint32_t object = 0;
    int64_t offset = 0;

    bool resolved() const { return space != Space::Unknown; }

    bool
    sameObject(const AddrKey &o) const
    {
        return space == o.space && object == o.object;
    }
};

/** Resolve register address chains within one block. */
class AddrResolver
{
  public:
    void
    note(const Inst &inst)
    {
        if (!inst.dst)
            return;
        switch (inst.op) {
          case Opcode::FrameAddr:
            map_[inst.dst] = {AddrKey::Space::Frame, inst.object, 0};
            break;
          case Opcode::GlobalAddr:
            map_[inst.dst] = {AddrKey::Space::Global, inst.object, 0};
            break;
          case Opcode::Gep: {
            AddrKey base = resolve(inst.a);
            if (base.resolved() && inst.b.isImm()) {
                base.offset += static_cast<int64_t>(inst.b.imm) *
                               static_cast<int64_t>(inst.imm);
                map_[inst.dst] = base;
            }
            break;
          }
          case Opcode::Cast:
            if (inst.a.isReg()) {
                auto it = map_.find(inst.a.reg);
                if (it != map_.end())
                    map_[inst.dst] = it->second;
            }
            break;
          default:
            break;
        }
    }

    AddrKey
    resolve(const Value &v) const
    {
        if (!v.isReg())
            return {};
        auto it = map_.find(v.reg);
        return it == map_.end() ? AddrKey{} : it->second;
    }

  private:
    std::unordered_map<uint32_t, AddrKey> map_;
};

bool
rangesOverlap(int64_t a, uint64_t asz, int64_t b, uint64_t bsz)
{
    return a < b + static_cast<int64_t>(bsz) &&
           b < a + static_cast<int64_t>(asz);
}

class StoreForwardPass : public Pass
{
  public:
    const char *name() const override { return "storefwd"; }

    bool
    run(Module &, Function &f) override
    {
        UBF_COV_HIT(covStoreFwd);
        bool changed = false;
        struct Entry
        {
            AddrKey key;
            uint64_t size;
            Value value;  ///< from a Store
            uint32_t loadedInto = 0; ///< from a previous Load
        };
        for (BasicBlock &bb : f.blocks) {
            AddrResolver resolver;
            std::vector<Entry> entries;
            auto clobberAll = [&] { entries.clear(); };
            auto clobberOverlap = [&](const AddrKey &k, uint64_t size) {
                entries.erase(
                    std::remove_if(entries.begin(), entries.end(),
                                   [&](const Entry &e) {
                                       return e.key.sameObject(k) &&
                                              rangesOverlap(e.key.offset,
                                                            e.size,
                                                            k.offset,
                                                            size);
                                   }),
                    entries.end());
            };
            for (Inst &inst : bb.insts) {
                resolver.note(inst);
                switch (inst.op) {
                  case Opcode::Store: {
                    AddrKey key = resolver.resolve(inst.a);
                    if (!key.resolved()) {
                        clobberAll();
                        break;
                    }
                    clobberOverlap(key, inst.imm);
                    entries.push_back({key, inst.imm, inst.b, 0});
                    break;
                  }
                  case Opcode::Load: {
                    AddrKey key = resolver.resolve(inst.a);
                    if (!key.resolved())
                        break;
                    bool forwarded = false;
                    for (Entry &e : entries) {
                        if (!e.key.sameObject(key) ||
                            e.key.offset != key.offset ||
                            e.size != inst.imm)
                            continue;
                        if (!e.value.isNone()) {
                            makeIdentity(inst, e.value);
                        } else if (e.loadedInto) {
                            makeIdentity(
                                inst, Value::makeReg(e.loadedInto));
                        } else {
                            continue;
                        }
                        UBF_COV_HIT(covStoreFwdHit);
                        changed = true;
                        forwarded = true;
                        break;
                    }
                    if (!forwarded) {
                        Entry e;
                        e.key = key;
                        e.size = inst.imm;
                        e.loadedInto = inst.dst;
                        entries.push_back(e);
                    }
                    break;
                  }
                  case Opcode::Call:
                  case Opcode::Malloc:
                  case Opcode::Free:
                  case Opcode::MemCopy:
                    clobberAll();
                    break;
                  case Opcode::LifetimeStart:
                  case Opcode::LifetimeEnd: {
                    AddrKey k{AddrKey::Space::Frame, inst.object, 0};
                    entries.erase(
                        std::remove_if(entries.begin(), entries.end(),
                                       [&](const Entry &e) {
                                           return e.key.sameObject(k);
                                       }),
                        entries.end());
                    break;
                  }
                  default:
                    break;
                }
            }
        }
        return changed;
    }
};

class DSEPass : public Pass
{
  public:
    const char *name() const override { return "dse"; }

    bool
    run(Module &, Function &f) override
    {
        UBF_COV_HIT(covDse);
        bool changed = false;
        changed |= overwriteDSE(f);
        changed |= writeOnlyObjectDSE(f);
        sweepNops(f);
        return changed;
    }

  private:
    bool
    overwriteDSE(Function &f)
    {
        bool changed = false;
        for (BasicBlock &bb : f.blocks) {
            AddrResolver resolver;
            for (Inst &inst : bb.insts)
                resolver.note(inst);
            for (size_t i = 0; i < bb.insts.size(); i++) {
                Inst &st = bb.insts[i];
                if (st.op != Opcode::Store)
                    continue;
                AddrKey key = resolver.resolve(st.a);
                if (!key.resolved())
                    continue;
                for (size_t j = i + 1; j < bb.insts.size(); j++) {
                    const Inst &nx = bb.insts[j];
                    if (nx.op == Opcode::Store) {
                        AddrKey k2 = resolver.resolve(nx.a);
                        if (k2.resolved() &&
                            k2.sameObject(key) &&
                            k2.offset == key.offset &&
                            nx.imm == st.imm) {
                            UBF_COV_HIT(covDseOverwrite);
                            st.op = Opcode::Nop;
                            changed = true;
                            break;
                        }
                        if (!k2.resolved())
                            break; // may alias: keep
                        if (k2.sameObject(key) &&
                            rangesOverlap(k2.offset, nx.imm, key.offset,
                                          st.imm))
                            break; // partial overlap: keep
                        continue;
                    }
                    if (nx.op == Opcode::Load) {
                        AddrKey k2 = resolver.resolve(nx.a);
                        if (!k2.resolved() ||
                            (k2.sameObject(key) &&
                             rangesOverlap(k2.offset, nx.imm, key.offset,
                                           st.imm)))
                            break; // potential read
                        continue;
                    }
                    if (nx.op == Opcode::Call ||
                        nx.op == Opcode::MemCopy ||
                        nx.op == Opcode::Free ||
                        nx.isTerminator())
                        break;
                }
            }
        }
        return changed;
    }

    /**
     * Delete stores into frame objects whose address never escapes and
     * that are never read. This is the transform of Figure 3: a dead
     * out-of-bounds store disappears at -O2 before the sanitizer pass
     * ever sees it.
     */
    bool
    writeOnlyObjectDSE(Function &f)
    {
        size_t n = f.frame.size();
        std::vector<bool> escaped(n, false), loaded(n, false);
        // Root each register at a frame object where possible.
        // Registers are block-local, so a per-block map suffices.
        for (BasicBlock &bb : f.blocks) {
            std::unordered_map<uint32_t, uint32_t> root;
            auto rootOf = [&](const Value &v) -> int64_t {
                if (!v.isReg())
                    return -1;
                auto it = root.find(v.reg);
                return it == root.end() ? int64_t{-1}
                                      : static_cast<int64_t>(it->second);
            };
            for (Inst &inst : bb.insts) {
                switch (inst.op) {
                  case Opcode::FrameAddr:
                    root[inst.dst] = inst.object;
                    break;
                  case Opcode::Gep:
                  case Opcode::Cast:
                    if (int64_t r = rootOf(inst.a); r >= 0)
                        root[inst.dst] = static_cast<uint32_t>(r);
                    break;
                  case Opcode::Load:
                    if (int64_t r = rootOf(inst.a); r >= 0)
                        loaded[static_cast<size_t>(r)] = true;
                    break;
                  case Opcode::Store:
                    // Storing a rooted address escapes the object.
                    if (int64_t r = rootOf(inst.b); r >= 0)
                        escaped[static_cast<size_t>(r)] = true;
                    break;
                  case Opcode::MemCopy:
                    if (int64_t r = rootOf(inst.a); r >= 0)
                        loaded[static_cast<size_t>(r)] = true;
                    if (int64_t r = rootOf(inst.b); r >= 0)
                        loaded[static_cast<size_t>(r)] = true;
                    break;
                  case Opcode::AsanCheck:
                  case Opcode::LifetimeStart:
                  case Opcode::LifetimeEnd:
                    break; // not reads
                  default: {
                    // Any other use of a rooted register (call args,
                    // returns, arithmetic, logging) escapes the object.
                    forEachOperand(inst, [&](Value &v) {
                        if (int64_t r = rootOf(v); r >= 0)
                            escaped[static_cast<size_t>(r)] = true;
                    });
                    break;
                  }
                }
            }
        }
        bool changed = false;
        for (BasicBlock &bb : f.blocks) {
            std::unordered_map<uint32_t, uint32_t> root;
            auto rootOf = [&](const Value &v) -> int64_t {
                if (!v.isReg())
                    return -1;
                auto it = root.find(v.reg);
                return it == root.end() ? int64_t{-1}
                                      : static_cast<int64_t>(it->second);
            };
            for (Inst &inst : bb.insts) {
                if (inst.op == Opcode::FrameAddr) {
                    root[inst.dst] = inst.object;
                } else if (inst.op == Opcode::Gep ||
                           inst.op == Opcode::Cast) {
                    if (int64_t r = rootOf(inst.a); r >= 0)
                        root[inst.dst] = static_cast<uint32_t>(r);
                } else if (inst.op == Opcode::Store) {
                    int64_t r = rootOf(inst.a);
                    if (r >= 0 && !escaped[static_cast<size_t>(r)] &&
                        !loaded[static_cast<size_t>(r)]) {
                        UBF_COV_HIT(covDseWriteOnly);
                        inst.op = Opcode::Nop;
                        changed = true;
                    }
                }
            }
        }
        return changed;
    }
};

//===--------------------------------------------------------------===//
// Dead code elimination
//===--------------------------------------------------------------===//

class DCEPass : public Pass
{
  public:
    const char *name() const override { return "dce"; }

    bool
    run(Module &, Function &f) override
    {
        UBF_COV_HIT(covDce);
        bool changed = false;
        // Values may cross blocks (short-circuit/ternary lowering), so
        // use counts are function-scoped.
        std::unordered_map<uint32_t, int> uses;
        for (BasicBlock &bb : f.blocks) {
            for (Inst &inst : bb.insts) {
                forEachOperand(inst, [&](Value &v) {
                    if (v.isReg())
                        uses[v.reg]++;
                });
            }
        }
        for (auto bit = f.blocks.rbegin(); bit != f.blocks.rend();
             ++bit) {
            for (auto it = bit->insts.rbegin(); it != bit->insts.rend();
                 ++it) {
                Inst &inst = *it;
                if (!isPure(inst) || !inst.dst || uses[inst.dst] > 0)
                    continue;
                forEachOperand(inst, [&](Value &v) {
                    if (v.isReg())
                        uses[v.reg]--;
                });
                inst.op = Opcode::Nop;
                inst.dst = 0;
                inst.a = inst.b = inst.c = Value{};
                changed = true;
            }
        }
        sweepNops(f);
        return changed;
    }
};

//===--------------------------------------------------------------===//
// CFG simplification
//===--------------------------------------------------------------===//

class SimplifyCFGPass : public Pass
{
  public:
    const char *name() const override { return "simplifycfg"; }

    bool
    run(Module &, Function &f) override
    {
        UBF_COV_HIT(covSimplify);
        bool changed = false;
        // Constant branches were already folded to Br by constfold;
        // thread trivial jump chains.
        auto finalTarget = [&](uint32_t t) {
            std::unordered_set<uint32_t> visited;
            while (visited.insert(t).second) {
                const BasicBlock &bb = f.blocks[t];
                if (bb.insts.size() == 1 &&
                    bb.insts[0].op == Opcode::Br)
                    t = bb.insts[0].targets[0];
                else
                    break;
            }
            return t;
        };
        for (BasicBlock &bb : f.blocks) {
            Inst &term = bb.insts.back();
            if (term.op == Opcode::Br) {
                uint32_t t = finalTarget(term.targets[0]);
                if (t != term.targets[0]) {
                    term.targets[0] = t;
                    changed = true;
                }
            } else if (term.op == Opcode::CondBr) {
                for (int k = 0; k < 2; k++) {
                    uint32_t t = finalTarget(term.targets[k]);
                    if (t != term.targets[k]) {
                        term.targets[k] = t;
                        changed = true;
                    }
                }
                if (term.targets[0] == term.targets[1]) {
                    term.op = Opcode::Br;
                    term.a = Value{};
                    changed = true;
                }
            }
        }
        // Prune unreachable blocks: their bodies are replaced with a
        // bare return, which deletes any UB they contained.
        std::vector<bool> reachable(f.blocks.size(), false);
        std::vector<uint32_t> work{0};
        reachable[0] = true;
        while (!work.empty()) {
            uint32_t b = work.back();
            work.pop_back();
            const Inst &term = f.blocks[b].insts.back();
            for (int k = 0; k < 2; k++) {
                bool has = (term.op == Opcode::Br && k == 0) ||
                           term.op == Opcode::CondBr;
                if (has && !reachable[term.targets[k]]) {
                    reachable[term.targets[k]] = true;
                    work.push_back(term.targets[k]);
                }
            }
        }
        for (size_t b = 0; b < f.blocks.size(); b++) {
            BasicBlock &bb = f.blocks[b];
            if (reachable[b] || bb.insts.size() == 1)
                continue;
            if (bb.insts.size() == 1 && bb.insts[0].op == Opcode::Ret)
                continue;
            UBF_COV_HIT(covSimplifyUnreachable);
            Inst ret;
            ret.op = Opcode::Ret;
            if (f.retKind != ir::ScalarKind::Void)
                ret.a = Value::makeImm(0);
            bb.insts.clear();
            bb.insts.push_back(ret);
            changed = true;
        }
        return changed;
    }
};

//===--------------------------------------------------------------===//
// Lifetime hoisting (GCC -O3)
//===--------------------------------------------------------------===//

class LifetimeHoistPass : public Pass
{
  public:
    const char *name() const override { return "lifetimehoist"; }

    bool
    run(Module &, Function &f) override
    {
        UBF_COV_HIT(covHoist);
        // Blocks that participate in a cycle (reach themselves).
        size_t n = f.blocks.size();
        auto succs = [&](uint32_t b) {
            std::vector<uint32_t> out;
            const Inst &term = f.blocks[b].insts.back();
            if (term.op == Opcode::Br)
                out.push_back(term.targets[0]);
            if (term.op == Opcode::CondBr) {
                out.push_back(term.targets[0]);
                out.push_back(term.targets[1]);
            }
            return out;
        };
        std::vector<bool> cyclic(n, false);
        for (uint32_t start = 0; start < n; start++) {
            std::vector<bool> seen(n, false);
            std::vector<uint32_t> work = succs(start);
            while (!work.empty()) {
                uint32_t b = work.back();
                work.pop_back();
                if (b == start) {
                    cyclic[start] = true;
                    break;
                }
                if (seen[b])
                    continue;
                seen[b] = true;
                for (uint32_t s : succs(b))
                    work.push_back(s);
            }
        }
        // Small loop-scoped objects get hoisted to function scope:
        // delete their lifetime markers everywhere.
        std::unordered_set<uint32_t> hoisted;
        for (uint32_t b = 0; b < n; b++) {
            if (!cyclic[b])
                continue;
            for (const Inst &inst : f.blocks[b].insts) {
                if ((inst.op == Opcode::LifetimeStart ||
                     inst.op == Opcode::LifetimeEnd) &&
                    f.frame[inst.object].size <= 8)
                    hoisted.insert(inst.object);
            }
        }
        if (hoisted.empty())
            return false;
        for (BasicBlock &bb : f.blocks) {
            for (Inst &inst : bb.insts) {
                if ((inst.op == Opcode::LifetimeStart ||
                     inst.op == Opcode::LifetimeEnd) &&
                    hoisted.count(inst.object))
                    inst.op = Opcode::Nop;
            }
        }
        sweepNops(f);
        return true;
    }
};

} // namespace

std::unique_ptr<Pass> createConstFold()
{
    return std::make_unique<ConstFoldPass>();
}

std::unique_ptr<Pass> createPeephole(Vendor vendor)
{
    return std::make_unique<PeepholePass>(vendor);
}

std::unique_ptr<Pass> createCSE()
{
    return std::make_unique<CSEPass>();
}

std::unique_ptr<Pass> createStoreForward()
{
    return std::make_unique<StoreForwardPass>();
}

std::unique_ptr<Pass> createDSE()
{
    return std::make_unique<DSEPass>();
}

std::unique_ptr<Pass> createDCE()
{
    return std::make_unique<DCEPass>();
}

std::unique_ptr<Pass> createSimplifyCFG()
{
    return std::make_unique<SimplifyCFGPass>();
}

std::unique_ptr<Pass> createLifetimeHoist()
{
    return std::make_unique<LifetimeHoistPass>();
}

} // namespace ubfuzz::opt
