#include "opt/pass.h"

namespace ubfuzz::opt {

std::vector<std::unique_ptr<Pass>>
buildPipeline(Vendor vendor, OptLevel level, Stage stage)
{
    std::vector<std::unique_ptr<Pass>> p;
    if (stage == Stage::EarlyOpt) {
        // Even -O0 performs local constant folding (§1: "even with -O0,
        // some basic optimizations, such as constant folding, may still
        // optimize away the UB").
        p.push_back(createConstFold());
        if (level == OptLevel::O0)
            return p;
        p.push_back(createPeephole(vendor));
        if (vendor == Vendor::GCC) {
            // GCC: CSE and DSE arrive at -Os/-O2; store forwarding and
            // lifetime hoisting are -O2/-O3 features.
            p.push_back(createDCE());
            p.push_back(createSimplifyCFG());
            if (optAtLeast(level, OptLevel::Os)) {
                p.push_back(createCSE());
                p.push_back(createDSE());
            }
            if (optAtLeast(level, OptLevel::O2)) {
                p.push_back(createStoreForward());
                p.push_back(createConstFold());
                p.push_back(createDCE());
            }
            if (level == OptLevel::O3)
                p.push_back(createLifetimeHoist());
        } else {
            // LLVM: more eager at -O1 (store forwarding, DSE), with an
            // extra combine round at -O2 and above.
            p.push_back(createCSE());
            p.push_back(createStoreForward());
            p.push_back(createConstFold());
            p.push_back(createDSE());
            p.push_back(createDCE());
            p.push_back(createSimplifyCFG());
            if (optAtLeast(level, OptLevel::O2)) {
                p.push_back(createPeephole(vendor));
                p.push_back(createConstFold());
                p.push_back(createDCE());
            }
        }
        return p;
    }
    // Late stage (after sanitizer instrumentation): a lighter cleanup
    // round. Sanitizer checks are opaque side-effecting instructions
    // here, exactly like __asan_report calls in real compilers.
    if (level == OptLevel::O0)
        return p;
    p.push_back(createConstFold());
    p.push_back(createCSE());
    p.push_back(createDCE());
    p.push_back(createSimplifyCFG());
    if (optAtLeast(level, OptLevel::O2))
        p.push_back(createDSE());
    return p;
}

void
runPipeline(ir::Module &m,
            const std::vector<std::unique_ptr<Pass>> &pipeline,
            int iterations)
{
    for (int iter = 0; iter < iterations; iter++) {
        bool changed = false;
        for (ir::Function &f : m.functions) {
            for (const auto &pass : pipeline)
                changed |= pass->run(m, f);
        }
        if (!changed)
            break;
    }
}

int
stageIterations(OptLevel level, Stage stage)
{
    if (stage == Stage::EarlyOpt)
        return optAtLeast(level, OptLevel::O2) ? 2 : 1;
    return 1;
}

void
runStagePipeline(ir::Module &m, Vendor vendor, OptLevel level,
                 Stage stage)
{
    auto pipeline = buildPipeline(vendor, level, stage);
    runPipeline(m, pipeline, stageIterations(level, stage));
}

std::pair<Vendor, OptLevel>
canonicalEarlyOptPoint(Vendor vendor, OptLevel level)
{
    // -O0 builds {constfold} x1 for both vendors.
    if (level == OptLevel::O0)
        return {Vendor::GCC, OptLevel::O0};
    // LLVM's early pipeline gains passes only at the optAtLeast(O2)
    // boundary, and the fixpoint round count changes at the same
    // boundary, so {O1, Os} and {O2, O3} are equivalence classes.
    if (vendor == Vendor::LLVM) {
        if (level == OptLevel::Os)
            return {Vendor::LLVM, OptLevel::O1};
        if (level == OptLevel::O3)
            return {Vendor::LLVM, OptLevel::O2};
    }
    return {vendor, level};
}

} // namespace ubfuzz::opt
