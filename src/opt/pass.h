/**
 * @file
 * Optimization pass framework for the simulated compilers.
 *
 * Both vendors share pass implementations but build different pipelines
 * (order, aggressiveness, and which passes run at which level), which is
 * what creates cross-compiler discrepancies for the differential tester.
 * All passes assume the input program has no UB — exactly the assumption
 * that lets real optimizers delete UB code (§1, Challenge 2).
 */

#ifndef UBFUZZ_OPT_PASS_H
#define UBFUZZ_OPT_PASS_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/ir.h"
#include "support/toolchain.h"

namespace ubfuzz::opt {

/** Which half of the pipeline a pass list belongs to (Figure 2). */
enum class Stage : uint8_t {
    EarlyOpt, ///< before the sanitizer pass
    LateOpt,  ///< after the sanitizer pass
};

class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char *name() const = 0;
    /** Transform one function. @return true if anything changed. */
    virtual bool run(ir::Module &m, ir::Function &f) = 0;
};

/** Local (block-scoped) constant folding and constant propagation. */
std::unique_ptr<Pass> createConstFold();
/** Algebraic peepholes; LLVM's flavour adds reassociation and x-x. */
std::unique_ptr<Pass> createPeephole(Vendor vendor);
/** Block-local common-subexpression elimination. */
std::unique_ptr<Pass> createCSE();
/** Store-to-load forwarding and redundant load elimination. */
std::unique_ptr<Pass> createStoreForward();
/** Dead-store elimination (overwrite-based + write-only objects). */
std::unique_ptr<Pass> createDSE();
/** Dead pure-instruction elimination. */
std::unique_ptr<Pass> createDCE();
/** Constant branch folding + unreachable block pruning. */
std::unique_ptr<Pass> createSimplifyCFG();
/**
 * GCC -O3 stack-slot lifetime hoisting: small loop-scoped locals are
 * promoted to function scope. A *legitimate* transform that can
 * invalidate use-after-scope UB — the source of the paper's one
 * oracle false alarm (Figure 8).
 */
std::unique_ptr<Pass> createLifetimeHoist();

/** Build the per-vendor pass list for @p level and @p stage. */
std::vector<std::unique_ptr<Pass>> buildPipeline(Vendor vendor,
                                                 OptLevel level,
                                                 Stage stage);

/** Run a pipeline over every function (iterating to a cheap fixpoint). */
void runPipeline(ir::Module &m,
                 const std::vector<std::unique_ptr<Pass>> &pipeline,
                 int iterations = 1);

/** Fixpoint rounds the Figure 2 pipeline grants @p stage at @p level
 *  (-O2 and up run the early optimizer twice). */
int stageIterations(OptLevel level, Stage stage);

/** Build and run the @p stage pipeline for (vendor, level) on @p m —
 *  the one entry point the staged compiler uses for both halves. */
void runStagePipeline(ir::Module &m, Vendor vendor, OptLevel level,
                      Stage stage);

/**
 * The representative (vendor, level) whose *early* pipeline is
 * identical — same pass list, same fixpoint rounds — to the given
 * point's. Both vendors run bare constant folding at -O0, and LLVM's
 * early pipeline only changes shape at the -O2 boundary, so -O0 is
 * vendor-independent, LLVM -Os folds into -O1, and LLVM -O3 into -O2.
 * The CompilationCache keys early-opt modules by this point, letting
 * equivalent matrix columns share one optimizer run.
 *
 * Must be kept in sync with buildPipeline and stageIterations; the
 * test suite cross-checks the equivalence on generated programs.
 */
std::pair<Vendor, OptLevel> canonicalEarlyOptPoint(Vendor vendor,
                                                   OptLevel level);

} // namespace ubfuzz::opt

#endif // UBFUZZ_OPT_PASS_H
