/**
 * @file
 * Optimization pass framework for the simulated compilers.
 *
 * Both vendors share pass implementations but build different pipelines
 * (order, aggressiveness, and which passes run at which level), which is
 * what creates cross-compiler discrepancies for the differential tester.
 * All passes assume the input program has no UB — exactly the assumption
 * that lets real optimizers delete UB code (§1, Challenge 2).
 */

#ifndef UBFUZZ_OPT_PASS_H
#define UBFUZZ_OPT_PASS_H

#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/toolchain.h"

namespace ubfuzz::opt {

/** Which half of the pipeline a pass list belongs to (Figure 2). */
enum class Stage : uint8_t {
    EarlyOpt, ///< before the sanitizer pass
    LateOpt,  ///< after the sanitizer pass
};

class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char *name() const = 0;
    /** Transform one function. @return true if anything changed. */
    virtual bool run(ir::Module &m, ir::Function &f) = 0;
};

/** Local (block-scoped) constant folding and constant propagation. */
std::unique_ptr<Pass> createConstFold();
/** Algebraic peepholes; LLVM's flavour adds reassociation and x-x. */
std::unique_ptr<Pass> createPeephole(Vendor vendor);
/** Block-local common-subexpression elimination. */
std::unique_ptr<Pass> createCSE();
/** Store-to-load forwarding and redundant load elimination. */
std::unique_ptr<Pass> createStoreForward();
/** Dead-store elimination (overwrite-based + write-only objects). */
std::unique_ptr<Pass> createDSE();
/** Dead pure-instruction elimination. */
std::unique_ptr<Pass> createDCE();
/** Constant branch folding + unreachable block pruning. */
std::unique_ptr<Pass> createSimplifyCFG();
/**
 * GCC -O3 stack-slot lifetime hoisting: small loop-scoped locals are
 * promoted to function scope. A *legitimate* transform that can
 * invalidate use-after-scope UB — the source of the paper's one
 * oracle false alarm (Figure 8).
 */
std::unique_ptr<Pass> createLifetimeHoist();

/** Build the per-vendor pass list for @p level and @p stage. */
std::vector<std::unique_ptr<Pass>> buildPipeline(Vendor vendor,
                                                 OptLevel level,
                                                 Stage stage);

/** Run a pipeline over every function (iterating to a cheap fixpoint). */
void runPipeline(ir::Module &m,
                 const std::vector<std::unique_ptr<Pass>> &pipeline,
                 int iterations = 1);

} // namespace ubfuzz::opt

#endif // UBFUZZ_OPT_PASS_H
