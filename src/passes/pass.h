/**
 * @file
 * The unified module-pass interface: one pass family for optimizers,
 * sanitizer instrumentation, and hardening.
 *
 * Before this layer existed the repository had two pass systems living
 * side by side: the seven `opt::Pass` function passes (driven by
 * hardcoded sequences in opt::buildPipeline) and the sanitizer stage (a
 * hardcoded triple of free functions dispatched by san::instrument).
 * Every new instrumentation family meant another special case in
 * compiler::specialize and the caches. Now everything the compiler
 * runs between lowering and verification is an ir::ModulePass with a
 * stable pipelineId, and passes::PassRegistry builds the
 * per-(vendor, level, instrumentation-set) pipelines.
 *
 * Determinism contract: the function-to-module adapter groups in
 * passes::runModulePipeline execute with exactly the legacy nested
 * order (`for iteration { for function { for pass } }` with a fixpoint
 * break), so the registry-built pipelines are bit-identical to the old
 * opt::runStagePipeline — the standard campaign digest does not move.
 */

#ifndef UBFUZZ_PASSES_PASS_H
#define UBFUZZ_PASSES_PASS_H

#include <cstdint>

#include "ir/ir.h"
#include "support/toolchain.h"

namespace ubfuzz::san {
struct SanitizerContext;
}

namespace ubfuzz::opt {
class Pass;
}

namespace ubfuzz::ir {

/**
 * Everything a module pass may consult about its compilation point.
 * Optimizer adapters read (vendor, level, iterations); instrumentation
 * passes read `san` / `hardenMask`. One context serves a whole
 * pipeline run.
 */
struct PassContext
{
    Vendor vendor = Vendor::GCC;
    OptLevel level = OptLevel::O0;
    /** Sanitizer stage inputs; null outside specialization. */
    const san::SanitizerContext *san = nullptr;
    /** Requested hardening families (harden::k* bits). */
    uint32_t hardenMask = 0;
    /** Fixpoint rounds granted to function-pass adapter groups
     *  (opt::stageIterations of the stage being run). */
    int iterations = 1;

    /**
     * The per-family-once invariant, generalized from what used to be
     * san::instrument's private panic: a module records which
     * instrumentation families ran on it (Module::instrumentedWith,
     * Module::hardenedWith), and re-running any family panics — the
     * symptom of specializing a cached module without cloning it
     * first. Instrumentation passes call these instead of assigning
     * the fields directly.
     */
    static void noteInstrumented(Module &m, SanitizerKind kind);
    /** @p familyBit is one harden::k* bit. Panics when already set. */
    static void noteHardened(Module &m, uint32_t familyBit);
};

/**
 * A whole-module transformation with a registry identity. `name` keys
 * registration and diagnostics; `pipelineId` is the stable 64-bit
 * identity that cache keys absorb (two registry builds of the same
 * point produce identical pipelineId sequences, and a pass whose
 * behaviour changes must change its id).
 */
class ModulePass
{
  public:
    virtual ~ModulePass() = default;
    virtual const char *name() const = 0;
    virtual uint64_t pipelineId() const = 0;
    virtual void run(Module &m, PassContext &ctx) = 0;
    /**
     * Non-null when this pass is a wrapped opt::Pass. The pipeline
     * runner batches maximal runs of adapters into one legacy-order
     * fixpoint group — the bit-for-bit compatibility hinge.
     */
    virtual opt::Pass *asFunctionPass() { return nullptr; }
};

} // namespace ubfuzz::ir

#endif // UBFUZZ_PASSES_PASS_H
