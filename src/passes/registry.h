/**
 * @file
 * The pass registry: one namespace of ModulePass factories, and the
 * pipeline builders that replaced the hardcoded sequences in
 * compiler::earlyOptimize / compiler::specialize.
 *
 * Three families are registered at startup:
 *  - the seven opt::Pass function passes, wrapped by a
 *    function-to-module adapter ("constfold", "peephole.gcc", ...),
 *  - the sanitizer stage ("asan"/"ubsan"/"msan" + "sanopt"),
 *  - the hardening passes ("harden.dup", "harden.sig").
 *
 * Registration panics on a duplicate name or a colliding pipelineId
 * (EXPECT_DEATH-tested): silently shadowing a pass would corrupt every
 * cache keyed by a pipeline fingerprint.
 */

#ifndef UBFUZZ_PASSES_REGISTRY_H
#define UBFUZZ_PASSES_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "passes/pass.h"

namespace ubfuzz::passes {

/** An instantiated pipeline: passes run in sequence. */
using Pipeline = std::vector<std::unique_ptr<ir::ModulePass>>;

class PassRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<ir::ModulePass>()>;

    /** The process-wide registry, with the built-in families already
     *  registered. */
    static PassRegistry &instance();

    /**
     * Register a pass. @p pipelineId must be unique across the
     * registry, like @p name; either collision panics. Thread-safety:
     * registration happens during static init / first use — callers
     * adding test passes do so single-threaded.
     */
    void add(const std::string &name, uint64_t pipelineId, Factory f);

    /** Instantiate a registered pass; panics on an unknown name. */
    std::unique_ptr<ir::ModulePass> create(const std::string &name) const;

    bool has(const std::string &name) const;

  private:
    PassRegistry() = default;
    struct Entry
    {
        uint64_t id;
        Factory factory;
    };
    std::vector<std::pair<std::string, Entry>> entries_;
};

/**
 * The early-optimizer pipeline for (vendor, level): the same pass
 * composition opt::buildPipeline(Stage::EarlyOpt) hardcoded, expressed
 * as registry lookups.
 */
Pipeline buildEarlyPipeline(Vendor vendor, OptLevel level);

/**
 * The specialization pipeline for a full configuration: sanitizer
 * family + sanopt (when a sanitizer is on), the late-opt cleanup
 * round, then the requested hardening passes. Hardening runs last —
 * after every optimizer — so no pass ever sees (or deletes) the
 * duplicate/compare instrumentation, mirroring where ASPIS schedules
 * its passes in the real LLVM pipeline.
 */
Pipeline buildSpecializePipeline(Vendor vendor, OptLevel level,
                                 SanitizerKind sanitizer,
                                 uint32_t hardenMask);

/** FNV-1a over the pipeline's pipelineId sequence — the identity cache
 *  keys absorb. Byte-identical pipelines have equal fingerprints. */
uint64_t pipelineFingerprint(const Pipeline &pipeline);

/** Memoized fingerprint of buildEarlyPipeline(vendor, level) — the
 *  hot-path form CompilationCache keys on (no allocation per query). */
uint64_t earlyPipelineFingerprint(Vendor vendor, OptLevel level);

/**
 * Run @p pipeline over @p m. Module passes run once, in order; maximal
 * consecutive runs of function-pass adapters execute as one group in
 * the legacy nested order (`for iter < ctx.iterations { for function {
 * for pass } }`, breaking when an iteration changes nothing), which
 * keeps registry-built pipelines bit-identical to the pre-refactor
 * opt::runStagePipeline.
 */
void runModulePipeline(ir::Module &m, const Pipeline &pipeline,
                       ir::PassContext &ctx);

} // namespace ubfuzz::passes

#endif // UBFUZZ_PASSES_REGISTRY_H
