#include "passes/registry.h"

#include <array>

#include "harden/harden.h"
#include "opt/pass.h"
#include "sanitizer/sanitizer.h"
#include "support/diagnostics.h"

namespace ubfuzz::ir {

void
PassContext::noteInstrumented(Module &m, SanitizerKind kind)
{
    UBF_ASSERT(m.instrumentedWith == SanitizerKind::None,
               "module already instrumented with ",
               sanitizerName(m.instrumentedWith),
               " (missing ir::cloneModule before specialize?)");
    m.instrumentedWith = kind;
}

void
PassContext::noteHardened(Module &m, uint32_t familyBit)
{
    UBF_ASSERT((m.hardenedWith & familyBit) == 0,
               "module already hardened with ",
               harden::familyName(familyBit),
               " (missing ir::cloneModule before specialize?)");
    m.hardenedWith |= familyBit;
}

} // namespace ubfuzz::ir

namespace ubfuzz::passes {

namespace {

uint64_t
idOf(std::string_view name)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name)
        h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
    return h;
}

/** Wraps one opt::Pass. Standalone run() executes its own one-pass
 *  fixpoint group; the pipeline runner normally batches consecutive
 *  adapters instead (see runModulePipeline). */
class FunctionPassAdapter : public ir::ModulePass
{
  public:
    FunctionPassAdapter(std::unique_ptr<opt::Pass> inner, uint64_t id)
        : inner_(std::move(inner)), id_(id)
    {
    }

    const char *name() const override { return inner_->name(); }
    uint64_t pipelineId() const override { return id_; }

    void
    run(ir::Module &m, ir::PassContext &ctx) override
    {
        for (int iter = 0; iter < ctx.iterations; iter++) {
            bool changed = false;
            for (ir::Function &f : m.functions)
                changed |= inner_->run(m, f);
            if (!changed)
                break;
        }
    }

    opt::Pass *asFunctionPass() override { return inner_.get(); }

  private:
    std::unique_ptr<opt::Pass> inner_;
    uint64_t id_;
};

/** One sanitizer family (ASan/UBSan/MSan) as a registered pass. */
class SanitizerPass : public ir::ModulePass
{
  public:
    SanitizerPass(SanitizerKind kind, const char *name, uint64_t id)
        : kind_(kind), name_(name), id_(id)
    {
    }

    const char *name() const override { return name_; }
    uint64_t pipelineId() const override { return id_; }

    void
    run(ir::Module &m, ir::PassContext &ctx) override
    {
        UBF_ASSERT(ctx.san && ctx.san->kind == kind_,
                   "sanitizer pass run without its SanitizerContext");
        ir::PassContext::noteInstrumented(m, kind_);
        switch (kind_) {
          case SanitizerKind::None:
            break;
          case SanitizerKind::ASan:
            san::runAsanPass(m, *ctx.san);
            break;
          case SanitizerKind::UBSan:
            san::runUbsanPass(m, *ctx.san);
            break;
          case SanitizerKind::MSan:
            san::runMsanPass(m, *ctx.san);
            break;
        }
    }

  private:
    SanitizerKind kind_;
    const char *name_;
    uint64_t id_;
};

/** The sanitizer-check optimizer as a registered pass. */
class SanOptPass : public ir::ModulePass
{
  public:
    const char *name() const override { return "sanopt"; }
    uint64_t pipelineId() const override { return idOf("sanopt"); }

    void
    run(ir::Module &m, ir::PassContext &ctx) override
    {
        UBF_ASSERT(ctx.san, "sanopt run without a SanitizerContext");
        san::runSanOpt(m, *ctx.san);
    }
};

/** One hardening family as a registered pass. */
class HardenPass : public ir::ModulePass
{
  public:
    HardenPass(uint32_t bit, const char *name, uint64_t id)
        : bit_(bit), name_(name), id_(id)
    {
    }

    const char *name() const override { return name_; }
    uint64_t pipelineId() const override { return id_; }

    void
    run(ir::Module &m, ir::PassContext &ctx) override
    {
        (void)ctx;
        ir::PassContext::noteHardened(m, bit_);
        if (bit_ == harden::kDuplicateCompare)
            harden::runDuplicateComparePass(m);
        else
            harden::runCfgSignaturePass(m);
    }

  private:
    uint32_t bit_;
    const char *name_;
    uint64_t id_;
};

void
registerBuiltins(PassRegistry &r)
{
    auto fn = [&r](const char *name, auto create) {
        uint64_t id = idOf(name);
        r.add(name, id, [create, id] {
            return std::make_unique<FunctionPassAdapter>(create(), id);
        });
    };
    fn("constfold", [] { return opt::createConstFold(); });
    fn("peephole.gcc", [] { return opt::createPeephole(Vendor::GCC); });
    fn("peephole.llvm",
       [] { return opt::createPeephole(Vendor::LLVM); });
    fn("cse", [] { return opt::createCSE(); });
    fn("storefwd", [] { return opt::createStoreForward(); });
    fn("dse", [] { return opt::createDSE(); });
    fn("dce", [] { return opt::createDCE(); });
    fn("simplifycfg", [] { return opt::createSimplifyCFG(); });
    fn("lifetimehoist", [] { return opt::createLifetimeHoist(); });

    auto sanPass = [&r](const char *name, SanitizerKind kind) {
        uint64_t id = idOf(name);
        r.add(name, id, [kind, name, id] {
            return std::make_unique<SanitizerPass>(kind, name, id);
        });
    };
    sanPass("asan", SanitizerKind::ASan);
    sanPass("ubsan", SanitizerKind::UBSan);
    sanPass("msan", SanitizerKind::MSan);
    r.add("sanopt", idOf("sanopt"),
          [] { return std::make_unique<SanOptPass>(); });

    auto hardenPass = [&r](const char *name, uint32_t bit) {
        uint64_t id = idOf(name);
        r.add(name, id, [bit, name, id] {
            return std::make_unique<HardenPass>(bit, name, id);
        });
    };
    hardenPass("harden.dup", harden::kDuplicateCompare);
    hardenPass("harden.sig", harden::kCfgSignature);
}

} // namespace

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry *reg = [] {
        auto *r = new PassRegistry();
        registerBuiltins(*r);
        return r;
    }();
    return *reg;
}

void
PassRegistry::add(const std::string &name, uint64_t pipelineId,
                  Factory f)
{
    for (const auto &[n, e] : entries_) {
        UBF_ASSERT(n != name, "pass '", name, "' registered twice");
        UBF_ASSERT(e.id != pipelineId, "pass '", name,
                   "' collides with '", n, "' on pipelineId ",
                   pipelineId);
    }
    entries_.emplace_back(name, Entry{pipelineId, std::move(f)});
}

std::unique_ptr<ir::ModulePass>
PassRegistry::create(const std::string &name) const
{
    for (const auto &[n, e] : entries_)
        if (n == name)
            return e.factory();
    UBF_PANIC("unknown pass '", name, "'");
}

bool
PassRegistry::has(const std::string &name) const
{
    for (const auto &[n, e] : entries_)
        if (n == name)
            return true;
    return false;
}

Pipeline
buildEarlyPipeline(Vendor vendor, OptLevel level)
{
    const PassRegistry &r = PassRegistry::instance();
    auto add = [&](Pipeline &p, const char *name) {
        p.push_back(r.create(name));
    };
    const char *peephole =
        vendor == Vendor::GCC ? "peephole.gcc" : "peephole.llvm";

    // Same composition as the retired opt::buildPipeline(EarlyOpt)
    // hardcoded — test_passes cross-checks executionKey equality
    // against it on the standard seed mix.
    Pipeline p;
    add(p, "constfold");
    if (level == OptLevel::O0)
        return p;
    add(p, peephole);
    if (vendor == Vendor::GCC) {
        add(p, "dce");
        add(p, "simplifycfg");
        if (optAtLeast(level, OptLevel::Os)) {
            add(p, "cse");
            add(p, "dse");
        }
        if (optAtLeast(level, OptLevel::O2)) {
            add(p, "storefwd");
            add(p, "constfold");
            add(p, "dce");
        }
        if (level == OptLevel::O3)
            add(p, "lifetimehoist");
    } else {
        add(p, "cse");
        add(p, "storefwd");
        add(p, "constfold");
        add(p, "dse");
        add(p, "dce");
        add(p, "simplifycfg");
        if (optAtLeast(level, OptLevel::O2)) {
            add(p, peephole);
            add(p, "constfold");
            add(p, "dce");
        }
    }
    return p;
}

Pipeline
buildSpecializePipeline(Vendor vendor, OptLevel level,
                        SanitizerKind sanitizer, uint32_t hardenMask)
{
    (void)vendor; // the late round is vendor-independent today

    const PassRegistry &r = PassRegistry::instance();
    auto add = [&](Pipeline &p, const char *name) {
        p.push_back(r.create(name));
    };

    Pipeline p;
    // Sanitizer family + check optimizer (exactly san::instrument's
    // dispatch: nothing at all for a plain build).
    switch (sanitizer) {
      case SanitizerKind::None:
        break;
      case SanitizerKind::ASan:
        add(p, "asan");
        break;
      case SanitizerKind::UBSan:
        add(p, "ubsan");
        break;
      case SanitizerKind::MSan:
        add(p, "msan");
        break;
    }
    if (sanitizer != SanitizerKind::None)
        add(p, "sanopt");

    // Late cleanup round (the retired buildPipeline(LateOpt)).
    if (level != OptLevel::O0) {
        add(p, "constfold");
        add(p, "cse");
        add(p, "dce");
        add(p, "simplifycfg");
        if (optAtLeast(level, OptLevel::O2))
            add(p, "dse");
    }

    // Hardening last: the optimizers must never see the redundancy.
    if (hardenMask & harden::kDuplicateCompare)
        add(p, "harden.dup");
    if (hardenMask & harden::kCfgSignature)
        add(p, "harden.sig");
    return p;
}

uint64_t
pipelineFingerprint(const Pipeline &pipeline)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto &pass : pipeline) {
        uint64_t id = pass->pipelineId();
        for (int i = 0; i < 8; i++) {
            h = (h ^ static_cast<uint8_t>(id >> (i * 8))) *
                0x100000001b3ULL;
        }
    }
    return h;
}

uint64_t
earlyPipelineFingerprint(Vendor vendor, OptLevel level)
{
    // 2 vendors x 5 levels, computed once (magic static): the hot path
    // queries this per compile and must not rebuild pipelines.
    static const auto table = [] {
        std::array<std::array<uint64_t, 5>, 2> t{};
        for (int v = 0; v < 2; v++) {
            for (int l = 0; l < 5; l++) {
                t[v][l] = pipelineFingerprint(buildEarlyPipeline(
                    static_cast<Vendor>(v), static_cast<OptLevel>(l)));
            }
        }
        return t;
    }();
    return table[static_cast<size_t>(vendor)][static_cast<size_t>(level)];
}

void
runModulePipeline(ir::Module &m, const Pipeline &pipeline,
                  ir::PassContext &ctx)
{
    size_t i = 0;
    while (i < pipeline.size()) {
        opt::Pass *fp = pipeline[i]->asFunctionPass();
        if (!fp) {
            pipeline[i]->run(m, ctx);
            i++;
            continue;
        }
        // Batch the maximal adapter run into one legacy-order fixpoint
        // group: for iteration { for function { for pass } }.
        std::vector<opt::Pass *> group;
        while (i < pipeline.size() &&
               (fp = pipeline[i]->asFunctionPass()) != nullptr) {
            group.push_back(fp);
            i++;
        }
        for (int iter = 0; iter < ctx.iterations; iter++) {
            bool changed = false;
            for (ir::Function &f : m.functions) {
                for (opt::Pass *pass : group)
                    changed |= pass->run(m, f);
            }
            if (!changed)
                break;
        }
    }
}

} // namespace ubfuzz::passes
