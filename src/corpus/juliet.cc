#include "corpus/juliet.h"

#include "frontend/parser.h"

namespace ubfuzz::corpus {

using ubgen::UBKind;

const std::vector<JulietCase> &
julietSuite()
{
    static const std::vector<JulietCase> suite = {
        {"CWE121_stack_overflow_write", UBKind::BufferOverflowArray,
         R"(int main(void) {
    int data[10];
    int i = 10;
    data[i] = 7;
    return 0;
}
)"},
        {"CWE121_stack_overflow_loop", UBKind::BufferOverflowArray,
         R"(int main(void) {
    int data[8];
    for (int i = 0; i <= 8; i += 1) {
        data[i] = i;
    }
    return 0;
}
)"},
        {"CWE122_heap_overflow_write", UBKind::BufferOverflowPointer,
         R"(int main(void) {
    int *data = (int*)__malloc(40l);
    int i = 0;
    while (i < 10) {
        data[i] = 1;
        i += 1;
    }
    *(data + 10) = 2;
    __free((char*)data);
    return 0;
}
)"},
        {"CWE124_buffer_underwrite", UBKind::BufferOverflowPointer,
         R"(int g[4] = {1, 2, 3, 4};
int main(void) {
    int *p = &g[0];
    *(p - 1) = 9;
    return 0;
}
)"},
        {"CWE416_use_after_free_read", UBKind::UseAfterFree,
         R"(int main(void) {
    int *data = (int*)__malloc(8l);
    data[0] = 42;
    __free((char*)data);
    return data[0];
}
)"},
        {"CWE416_use_after_free_write", UBKind::UseAfterFree,
         R"(int main(void) {
    int *data = (int*)__malloc(16l);
    data[0] = 1;
    __free((char*)data);
    data[1] = 2;
    return 0;
}
)"},
        {"CWE562_return_of_stack_addr", UBKind::UseAfterScope,
         R"(int g = 1;
int main(void) {
    int *p = &g;
    if (g) {
        int local = 7;
        p = &local;
    }
    return *p;
}
)"},
        {"CWE476_null_deref_plain", UBKind::NullPtrDeref,
         R"(int main(void) {
    int *data = 0;
    return *data;
}
)"},
        {"CWE476_null_deref_branch", UBKind::NullPtrDeref,
         R"(int cond = 1;
int main(void) {
    int v = 5;
    int *data = &v;
    if (cond) {
        data = 0;
    }
    *data = 3;
    return 0;
}
)"},
        {"CWE190_int_overflow_add", UBKind::IntegerOverflow,
         R"(int big = 2147483647;
int main(void) {
    int result = big + 1;
    return result != 0;
}
)"},
        {"CWE190_int_overflow_mul", UBKind::IntegerOverflow,
         R"(int a = 2000000000;
int b = 2000000000;
int main(void) {
    return (a * b) != 0;
}
)"},
        {"CWE191_int_underflow_sub", UBKind::IntegerOverflow,
         R"(int small = -2147483647;
int main(void) {
    int r = small - 2;
    return r != 0;
}
)"},
        {"CWE1335_shift_negative_left", UBKind::ShiftOverflow,
         R"(int amount = -3;
int main(void) {
    return 1 << amount;
}
)"},
        {"CWE1335_shift_negative_right", UBKind::ShiftOverflow,
         R"(int amount = -1;
int main(void) {
    return 4 >> amount;
}
)"},
        {"CWE369_div_by_zero", UBKind::DivideByZero,
         R"(int zero = 0;
int main(void) {
    return 100 / zero;
}
)"},
        {"CWE369_div_by_zero_expr", UBKind::DivideByZero,
         R"(int a = 5;
int b = 5;
int main(void) {
    return 100 / (a - b);
}
)"},
        {"CWE457_uninit_branch", UBKind::UseOfUninitMemory,
         R"(int main(void) {
    int data;
    if (data > 0) {
        return 1;
    }
    return 0;
}
)"},
        {"CWE457_uninit_loop_bound", UBKind::UseOfUninitMemory,
         R"(int main(void) {
    int n;
    int s = 0;
    while (s < n) {
        s += 1;
        if (s > 100) {
            return s;
        }
    }
    return s;
}
)"},
    };
    return suite;
}

std::unique_ptr<ast::Program>
parseCase(const JulietCase &c)
{
    return frontend::parseOrDie(c.source);
}

} // namespace ubfuzz::corpus
