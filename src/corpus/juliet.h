/**
 * @file
 * The embedded UB test corpus — our stand-in for the NIST Juliet test
 * suite (§4.3). Fixed, curated, minimal programs that each contain one
 * known, sanitizer-detectable UB. The paper's finding (reproduced by
 * bench_table4_generators): because these programs exercise only plain
 * textbook patterns, none of them reveals a sanitizer FN bug.
 */

#ifndef UBFUZZ_CORPUS_JULIET_H
#define UBFUZZ_CORPUS_JULIET_H

#include <memory>
#include <vector>

#include "ast/ast.h"
#include "ubgen/ub_kind.h"

namespace ubfuzz::corpus {

struct JulietCase
{
    const char *name;
    ubgen::UBKind kind;
    const char *source;
};

/** The full embedded suite. */
const std::vector<JulietCase> &julietSuite();

/** Parse one case (panics on malformed embedded source). */
std::unique_ptr<ast::Program> parseCase(const JulietCase &c);

} // namespace ubfuzz::corpus

#endif // UBFUZZ_CORPUS_JULIET_H
