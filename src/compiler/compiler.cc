#include "compiler/compiler.h"

#include "harden/harden.h"
#include "ir/lowering.h"
#include "opt/pass.h"
#include "passes/registry.h"
#include "sanitizer/sanitizer.h"
#include "support/diagnostics.h"

namespace ubfuzz::compiler {

std::string
CompilerConfig::str() const
{
    std::string s = vendorName(vendor);
    s += "-" + std::to_string(effectiveVersion());
    s += " ";
    s += optLevelName(level);
    if (sanitizer != SanitizerKind::None) {
        s += " -fsanitize=";
        s += sanitizerName(sanitizer);
    }
    if (harden != 0) {
        s += " -fharden=";
        s += harden::maskStr(harden);
    }
    return s;
}

ir::Module
lowerOnce(const ast::Program &program, const ast::PrintedProgram &printed,
          CompileStats *stats)
{
    if (stats)
        stats->lowerings++;
    return ir::lowerProgram(program, printed.map);
}

ir::Module
earlyOptimize(ir::Module base, Vendor vendor, OptLevel level,
              CompileStats *stats)
{
    if (stats)
        stats->earlyOptRuns++;
    passes::Pipeline pipeline = passes::buildEarlyPipeline(vendor, level);
    ir::PassContext ctx;
    ctx.vendor = vendor;
    ctx.level = level;
    ctx.iterations = opt::stageIterations(level, opt::Stage::EarlyOpt);
    passes::runModulePipeline(base, pipeline, ctx);
    return base;
}

Binary
specialize(ir::Module earlyOptimized, const CompilerConfig &config,
           CompileStats *stats)
{
    UBF_ASSERT(vendorSupports(config.vendor, config.sanitizer),
               "sanitizer unsupported by vendor");
    // The clone guard, hoisted from san::instrument so it also covers
    // plain (uninstrumented) specializations of a cached module.
    UBF_ASSERT(earlyOptimized.instrumentedWith == SanitizerKind::None &&
                   earlyOptimized.hardenedWith == 0,
               "module already specialized "
               "(missing ir::cloneModule before specialize?)");
    if (stats)
        stats->specializations++;
    Binary binary;
    binary.config = config;
    binary.module = std::move(earlyOptimized);

    // Sanitizer instrumentation + check optimizer, the late cleanup
    // optimizer, then hardening — one registry-built pipeline.
    san::SanitizerContext sanCtx;
    sanCtx.kind = config.sanitizer;
    sanCtx.bugs = san::ActiveBugs(config.vendor,
                                  config.effectiveVersion(),
                                  config.level);
    sanCtx.log = &binary.log;
    passes::Pipeline pipeline = passes::buildSpecializePipeline(
        config.vendor, config.level, config.sanitizer, config.harden);
    ir::PassContext ctx;
    ctx.vendor = config.vendor;
    ctx.level = config.level;
    ctx.san = &sanCtx;
    ctx.hardenMask = config.harden;
    ctx.iterations =
        opt::stageIterations(config.level, opt::Stage::LateOpt);
    passes::runModulePipeline(binary.module, pipeline, ctx);

    std::string verr = ir::verifyModule(binary.module);
    UBF_ASSERT(verr.empty(), "post-compile verification failed: ", verr);
    return binary;
}

Binary
compile(const ast::Program &program, const ast::PrintedProgram &printed,
        const CompilerConfig &config)
{
    // One-off path: the module is private at every stage, so it moves
    // through the pipeline without a single clone — the same cost as
    // the pre-staged monolithic compile.
    return specialize(earlyOptimize(lowerOnce(program, printed),
                                    config.vendor, config.level),
                      config);
}

Binary
compileProgram(const ast::Program &program, const CompilerConfig &config)
{
    ast::PrintedProgram printed = ast::printProgram(program);
    return compile(program, printed, config);
}

uint64_t
textHash(std::string_view text)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text)
        h = (h ^ c) * 0x100000001b3ULL;
    return h;
}

uint64_t
CompilationCache::baseTextHash() const
{
    if (!baseTextHash_)
        baseTextHash_ = textHash(printed_.text);
    return *baseTextHash_;
}

Binary
CompilationCache::compile(const CompilerConfig &config)
{
    return specialize(
        ir::cloneModule(earlyOptModule(config.vendor, config.level)),
        config, &stats_);
}

void
CompilationCache::adoptBase(ir::Module base)
{
    UBF_ASSERT(!base_ && earlyOpt_.empty(),
               "adoptBase on a cache that already lowered");
    base_ = std::move(base);
}

SeedLoweringCache::SeedLoweringCache(const ast::Program &base,
                                     CompileStats *stats)
    : printed_(ast::printProgram(base))
{
    if (stats)
        stats->lowerings++;
    base_ = ir::lowerProgram(base, printed_.map, &info_);
}

ir::Module
SeedLoweringCache::lowerDerived(const ast::Program &derived,
                                const ast::PrintedProgram &printedDerived,
                                uint32_t perturbedFnId,
                                CompileStats *stats)
{
    if (perturbedFnId != 0) {
        ir::IncrementalStats inc;
        ir::Module m = ir::lowerProgramIncremental(
            derived, printedDerived.map, base_, info_, printed_.map,
            perturbedFnId, &inc);
        if (inc.splicedFunctions > 0 || inc.copiedStmts > 0) {
            if (stats)
                stats->deltaLowerings++;
            return m;
        }
        // Nothing could be reused: a full lowering in disguise.
        if (stats) {
            stats->lowerings++;
            stats->deltaFallbacks++;
        }
        return m;
    }
    if (stats) {
        stats->lowerings++;
        stats->deltaFallbacks++;
    }
    return ir::lowerProgram(derived, printedDerived.map);
}

const ir::Module &
CompilationCache::earlyOptModule(Vendor vendor, OptLevel level)
{
    // Equivalent matrix columns (same early pipeline, same rounds)
    // share one entry — and one optimizer run.
    auto point = opt::canonicalEarlyOptPoint(vendor, level);
    auto key = std::make_pair(
        point,
        passes::earlyPipelineFingerprint(point.first, point.second));
    auto it = earlyOpt_.find(key);
    if (it != earlyOpt_.end()) {
        stats_.earlyOptCacheHits++;
        return it->second;
    }
    if (!base_)
        base_ = lowerOnce(program_, printed_, &stats_);
    return earlyOpt_
        .emplace(key, earlyOptimize(ir::cloneModule(*base_), point.first,
                                    point.second, &stats_))
        .first->second;
}

} // namespace ubfuzz::compiler
