#include "compiler/compiler.h"

#include "ir/lowering.h"
#include "opt/pass.h"
#include "sanitizer/sanitizer.h"
#include "support/diagnostics.h"

namespace ubfuzz::compiler {

std::string
CompilerConfig::str() const
{
    std::string s = vendorName(vendor);
    s += "-" + std::to_string(effectiveVersion());
    s += " ";
    s += optLevelName(level);
    if (sanitizer != SanitizerKind::None) {
        s += " -fsanitize=";
        s += sanitizerName(sanitizer);
    }
    return s;
}

Binary
compile(const ast::Program &program, const ast::PrintedProgram &printed,
        const CompilerConfig &config)
{
    UBF_ASSERT(vendorSupports(config.vendor, config.sanitizer),
               "sanitizer unsupported by vendor");
    Binary binary;
    binary.config = config;
    binary.module = ir::lowerProgram(program, printed.map);

    // Early optimizer (runs before the sanitizer pass; this is where
    // legitimate UB elimination happens — Challenge 2).
    auto early = opt::buildPipeline(config.vendor, config.level,
                                    opt::Stage::EarlyOpt);
    int iterations = optAtLeast(config.level, OptLevel::O2) ? 2 : 1;
    opt::runPipeline(binary.module, early, iterations);

    // Sanitizer instrumentation + check optimizer.
    san::SanitizerContext ctx;
    ctx.kind = config.sanitizer;
    ctx.bugs = san::ActiveBugs(config.vendor, config.effectiveVersion(),
                               config.level);
    ctx.log = &binary.log;
    san::instrument(binary.module, ctx);

    // Late optimizer: cleanup that must not break checks.
    auto late = opt::buildPipeline(config.vendor, config.level,
                                   opt::Stage::LateOpt);
    opt::runPipeline(binary.module, late, 1);

    std::string verr = ir::verifyModule(binary.module);
    UBF_ASSERT(verr.empty(), "post-compile verification failed: ", verr);
    return binary;
}

Binary
compileProgram(const ast::Program &program, const CompilerConfig &config)
{
    ast::PrintedProgram printed = ast::printProgram(program);
    return compile(program, printed, config);
}

} // namespace ubfuzz::compiler
