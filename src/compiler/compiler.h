/**
 * @file
 * The compiler facade: one call that plays the role of
 * `gcc-13 -O2 -g -fsanitize=address a.c` in the paper.
 *
 * Pipeline (Figure 2): lower -> early optimizer passes -> sanitizer
 * pass -> sanitizer-check optimizer -> late optimizer passes. Debug
 * metadata (-g) is always on. The resulting Binary carries the compile
 * log of injected-bug firings, which the fuzzer uses as ground truth
 * when evaluating the crash-site mapping oracle.
 *
 * The pipeline is staged so the campaign's inner loop compiles once
 * and specializes many times:
 *
 *   lowerOnce      AST + SourceMap -> base module   (per program)
 *   earlyOptimize  base -> post-early-opt module    (per vendor/level)
 *   specialize     early-opt -> Binary              (per full config)
 *
 * Early optimization depends only on (vendor, level) — never on the
 * sanitizer or the simulated version — so a CompilationCache lets the
 * whole ASan/UBSan/MSan testing matrix share one lowering and one
 * early-opt run per (vendor, level). Caches are single-threaded by
 * design: the orchestrator gives every campaign unit its own, which
 * keeps `--jobs N` bit-identical to a sequential run.
 */

#ifndef UBFUZZ_COMPILER_COMPILER_H
#define UBFUZZ_COMPILER_COMPILER_H

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "ast/ast.h"
#include "ast/printer.h"
#include "ir/ir.h"
#include "ir/lowering.h"
#include "sanitizer/bug_catalog.h"
#include "support/toolchain.h"

namespace ubfuzz::compiler {

struct CompilerConfig
{
    Vendor vendor = Vendor::GCC;
    /** Simulated release; 0 means trunk (the campaign default). */
    int version = 0;
    OptLevel level = OptLevel::O0;
    SanitizerKind sanitizer = SanitizerKind::None;
    /** Hardening families to schedule after every optimizer
     *  (harden::k* bits); 0 — the default — compiles exactly as
     *  before the pass-pipeline refactor. */
    uint32_t harden = 0;

    int
    effectiveVersion() const
    {
        return version == 0 ? trunkVersion(vendor) : version;
    }

    /** Command-line-style rendering, e.g. "gcc-14 -O2 -fsanitize=asan". */
    std::string str() const;

    friend bool
    operator==(const CompilerConfig &a, const CompilerConfig &b)
    {
        return a.vendor == b.vendor && a.version == b.version &&
               a.level == b.level && a.sanitizer == b.sanitizer &&
               a.harden == b.harden;
    }
};

/** A compiled artifact: IR plus debug metadata plus the compile log. */
struct Binary
{
    ir::Module module;
    san::CompileLog log;
    CompilerConfig config;
};

/**
 * Execution counters for the staged pipeline. The campaign accumulates
 * these per unit (CampaignStats::compile) and bench_throughput prints
 * them, making hot-path regressions — a reintroduced re-lowering or
 * double compile — visible as a counter jump instead of a silent
 * slowdown.
 */
struct CompileStats
{
    /** Full ir::lowerProgram executions (AST -> IR). With the
     *  seed-level cache, one per seed base program plus one per
     *  incremental fallback. */
    size_t lowerings = 0;
    /**
     * Incremental lowerings: derived UB programs whose module was
     * built by splicing the seed's base module (only the perturbed
     * function re-lowered). Each of these was a full lowering before
     * the seed-level cache.
     */
    size_t deltaLowerings = 0;
    /**
     * Derived programs that fell back to a full from-scratch lowering
     * (no perturbed-site handle, or no function passed the splice
     * proof). Fallbacks also count in `lowerings`, so the seed-cache
     * invariant is `lowerings == base programs + deltaFallbacks`.
     */
    size_t deltaFallbacks = 0;
    /** Early-optimizer pipeline executions. */
    size_t earlyOptRuns = 0;
    /** Early-opt requests served from a CompilationCache entry. */
    size_t earlyOptCacheHits = 0;
    /** Sanitizer + late-opt specializations (one per Binary built). */
    size_t specializations = 0;
    /**
     * Debugger (tracing) re-executions of retained modules, each of
     * which was a full second compile of a silent binary before the
     * staged pipeline. The pre-refactor campaign performed
     * `specializations + traceExecutions` compiles (each with its own
     * lowering and early opt); the staged one performs exactly
     * `specializations`.
     */
    size_t traceExecutions = 0;

    void
    merge(const CompileStats &o)
    {
        lowerings += o.lowerings;
        deltaLowerings += o.deltaLowerings;
        deltaFallbacks += o.deltaFallbacks;
        earlyOptRuns += o.earlyOptRuns;
        earlyOptCacheHits += o.earlyOptCacheHits;
        specializations += o.specializations;
        traceExecutions += o.traceExecutions;
    }

    friend bool operator==(const CompileStats &, const CompileStats &) =
        default;
};

/**
 * Stage 1: lower the printed program to the shared base module. The
 * PrintedProgram's SourceMap is the single source of truth for (line,
 * offset) debug locations, so binaries of the same printed text are
 * comparable by crash site.
 */
ir::Module lowerOnce(const ast::Program &program,
                     const ast::PrintedProgram &printed,
                     CompileStats *stats = nullptr);

/**
 * Stage 2: run the early optimizer on @p base and return it. Early
 * opt is where legitimate UB elimination happens (Challenge 2); it
 * depends only on (vendor, level), so its result is shared by every
 * sanitizer and version at that point of the matrix.
 *
 * Takes the module by value: move a throwaway in, or pass
 * ir::cloneModule(shared) when the original must survive.
 */
ir::Module earlyOptimize(ir::Module base, Vendor vendor, OptLevel level,
                         CompileStats *stats = nullptr);

/**
 * Stage 3: run everything that depends on the full configuration on
 * @p earlyOptimized — sanitizer instrumentation (with its
 * version-gated injected bugs), sanitizer-check optimization, the late
 * cleanup pipeline, and verification — and wrap it in a Binary.
 *
 * Takes the module by value, like earlyOptimize: cached modules must
 * come in as ir::cloneModule copies (san::instrument panics if a
 * module is ever specialized twice).
 */
Binary specialize(ir::Module earlyOptimized,
                  const CompilerConfig &config,
                  CompileStats *stats = nullptr);

/**
 * Compile an already-printed program: lowerOnce + earlyOptimize +
 * specialize, uncached. One-off callers (examples, tests) use this;
 * the campaign hot path goes through CompilationCache.
 */
Binary compile(const ast::Program &program,
               const ast::PrintedProgram &printed,
               const CompilerConfig &config);

/** Convenience overload that prints internally. */
Binary compileProgram(const ast::Program &program,
                      const CompilerConfig &config);

/**
 * FNV-1a over @p text. The campaign's corpus dedup keys tested
 * programs by the hash of their printed text (the compiler's sole
 * input besides the config), so the hash lives here next to the
 * pipeline it fingerprints.
 */
uint64_t textHash(std::string_view text);

/**
 * Per-program memoization of the compile-once stages: the lowered base
 * module, and the post-early-opt module per (vendor, level). One cache
 * serves a whole testing matrix — every sanitizer row reuses the same
 * early-opt modules. Not thread-safe; intended to live inside one
 * campaign unit (the orchestrator's parallelism is across units).
 */
class CompilationCache
{
  public:
    /** @p program and @p printed must outlive the cache. */
    CompilationCache(const ast::Program &program,
                     const ast::PrintedProgram &printed)
        : program_(program), printed_(printed)
    {
    }

    CompilationCache(const CompilationCache &) = delete;
    CompilationCache &operator=(const CompilationCache &) = delete;

    /** Compile under @p config, reusing every cached stage. The result
     *  is bit-identical to compile(program, printed, config). */
    Binary compile(const CompilerConfig &config);

    /** Account one debugger (tracing) re-execution of a binary built
     *  from this cache — what used to be a recompile. */
    void noteTraceExecution() { stats_.traceExecutions++; }

    /**
     * Hash of the printed base text every binary of this cache is
     * compiled from (memoized textHash(printed.text)). Two caches with
     * equal hashes compile identical binaries under every config —
     * the key the campaign's cross-seed corpus dedup is built on.
     */
    uint64_t baseTextHash() const;

    /**
     * Seed the lowered base module instead of lowering on first use,
     * for callers that already lowered the program (e.g. the
     * campaign's ground-truth classifier). @p base must be the result
     * of lowering `program` against `printed.map`. Only valid on a
     * fresh cache.
     */
    void adoptBase(ir::Module base);

    const CompileStats &stats() const { return stats_; }

  private:
    const ir::Module &earlyOptModule(Vendor vendor, OptLevel level);

    const ast::Program &program_;
    const ast::PrintedProgram &printed_;
    /** Lowered base module; built on first use. */
    std::optional<ir::Module> base_;
    /**
     * Post-early-opt modules keyed by the canonical (vendor, level)
     * point *and* the fingerprint of the registry pipeline that point
     * builds. The fingerprint is redundant while canonicalEarlyOptPoint
     * stays in sync with the registry — absorbing it makes the cache
     * safe against the two drifting apart: a stale canonicalization
     * then splits entries instead of serving a wrong module.
     */
    std::map<std::pair<std::pair<Vendor, OptLevel>, uint64_t>, ir::Module>
        earlyOpt_;
    /** Memoized textHash(printed_.text); computed on first use. */
    mutable std::optional<uint64_t> baseTextHash_;
    CompileStats stats_;
};

/**
 * The seed-level lowering cache, one layer above CompilationCache: a
 * campaign derives ~8-25 UB programs from one seed by perturbing a
 * single function and appending auxiliary globals, so the seed's clean
 * base program is lowered once (with splice provenance) and every
 * derived program is lowered incrementally from it — the unperturbed
 * functions' IR is spliced with shifted debug locations, only the
 * perturbed function and the globals are rebuilt. The result is always
 * bit-identical to a from-scratch lowering (identical
 * ir::executionKey); a derived program that cannot be proven splicable
 * transparently falls back to `lowerOnce` and is counted in
 * CompileStats::deltaFallbacks.
 *
 * Not thread-safe; one per campaign unit (seed), like CompilationCache
 * — which keeps `--jobs N` bit-identical to a sequential run.
 */
class SeedLoweringCache
{
  public:
    /** Print and lower @p base (the seed's clean program) eagerly;
     *  counts one lowering in @p stats. The cache keeps no reference
     *  to @p base afterwards. */
    explicit SeedLoweringCache(const ast::Program &base,
                               CompileStats *stats = nullptr);

    SeedLoweringCache(const SeedLoweringCache &) = delete;
    SeedLoweringCache &operator=(const SeedLoweringCache &) = delete;

    /**
     * Lower @p derived — a node-id-preserving clone of the base
     * program with perturbations confined to the function with decl
     * node id @p perturbedFnId (0 = unknown) — against
     * @p printedDerived. Splices every provably unperturbed function
     * from the base module; falls back to a full lowering when nothing
     * can be spliced. Counts a deltaLowering or a lowering +
     * deltaFallback in @p stats accordingly.
     */
    ir::Module lowerDerived(const ast::Program &derived,
                            const ast::PrintedProgram &printedDerived,
                            uint32_t perturbedFnId,
                            CompileStats *stats = nullptr);

    /** The seed's clean base module (lowered in the constructor). */
    const ir::Module &baseModule() const { return base_; }

    /** The seed's printing the base module was lowered against. */
    const ast::PrintedProgram &basePrinted() const { return printed_; }

  private:
    ast::PrintedProgram printed_;
    ir::Module base_;
    ir::LoweringInfo info_;
};

} // namespace ubfuzz::compiler

#endif // UBFUZZ_COMPILER_COMPILER_H
