/**
 * @file
 * The compiler facade: one call that plays the role of
 * `gcc-13 -O2 -g -fsanitize=address a.c` in the paper.
 *
 * Pipeline (Figure 2): lower -> early optimizer passes -> sanitizer
 * pass -> sanitizer-check optimizer -> late optimizer passes. Debug
 * metadata (-g) is always on. The resulting Binary carries the compile
 * log of injected-bug firings, which the fuzzer uses as ground truth
 * when evaluating the crash-site mapping oracle.
 */

#ifndef UBFUZZ_COMPILER_COMPILER_H
#define UBFUZZ_COMPILER_COMPILER_H

#include <string>

#include "ast/ast.h"
#include "ast/printer.h"
#include "ir/ir.h"
#include "sanitizer/bug_catalog.h"
#include "support/toolchain.h"

namespace ubfuzz::compiler {

struct CompilerConfig
{
    Vendor vendor = Vendor::GCC;
    /** Simulated release; 0 means trunk (the campaign default). */
    int version = 0;
    OptLevel level = OptLevel::O0;
    SanitizerKind sanitizer = SanitizerKind::None;

    int
    effectiveVersion() const
    {
        return version == 0 ? trunkVersion(vendor) : version;
    }

    /** Command-line-style rendering, e.g. "gcc-14 -O2 -fsanitize=asan". */
    std::string str() const;

    friend bool
    operator==(const CompilerConfig &a, const CompilerConfig &b)
    {
        return a.vendor == b.vendor && a.version == b.version &&
               a.level == b.level && a.sanitizer == b.sanitizer;
    }
};

/** A compiled artifact: IR plus debug metadata plus the compile log. */
struct Binary
{
    ir::Module module;
    san::CompileLog log;
    CompilerConfig config;
};

/**
 * Compile an already-printed program. The PrintedProgram's SourceMap is
 * the single source of truth for (line, offset) debug locations, so
 * binaries of the same printed text are comparable by crash site.
 */
Binary compile(const ast::Program &program,
               const ast::PrintedProgram &printed,
               const CompilerConfig &config);

/** Convenience overload that prints internally. */
Binary compileProgram(const ast::Program &program,
                      const CompilerConfig &config);

} // namespace ubfuzz::compiler

#endif // UBFUZZ_COMPILER_COMPILER_H
