/**
 * @file
 * Multi-threaded campaign orchestration. A campaign is a set of
 * independent units (seed programs, or Juliet cases); the orchestrator
 * shards them across a worker pool. Determinism contract:
 *
 *  - every unit draws from an RNG stream split from the campaign seed,
 *    so its behavior is independent of scheduling;
 *  - each unit writes its stats into its own accumulator slot (no
 *    mutex, no sharing between workers);
 *  - slots are folded in unit order after the pool drains, so the
 *    merged result is bit-identical to a sequential run.
 */

#ifndef UBFUZZ_FUZZER_ORCHESTRATOR_H
#define UBFUZZ_FUZZER_ORCHESTRATOR_H

#include "fuzzer/fuzzer.h"

namespace ubfuzz::fuzzer {

/**
 * Run a campaign sharded across `config.jobs` worker threads (clamped
 * to [1, unit count]). `jobs <= 1` runs on the calling thread. The
 * result is identical for every jobs value.
 */
CampaignStats runCampaignParallel(const CampaignConfig &config);

/** Resolve a --jobs request: 0 or negative means "all hardware threads". */
int resolveJobs(int requested);

} // namespace ubfuzz::fuzzer

#endif // UBFUZZ_FUZZER_ORCHESTRATOR_H
