/**
 * @file
 * Multi-threaded, store-backed campaign orchestration. A campaign is a
 * set of independent units (seed programs, or Juliet cases); the
 * orchestrator shards them across a worker pool — and, through the
 * campaign service entry point, across *processes* and *restarts*.
 * Determinism contract:
 *
 *  - every unit draws from an RNG stream split from the campaign seed,
 *    so its behavior is independent of scheduling;
 *  - each unit writes its stats into its own accumulator slot (no
 *    mutex, no sharing between workers);
 *  - slots are folded in unit order after the pool drains, so the
 *    merged result is bit-identical to a sequential run.
 *
 * The campaign service extends the same fold-in-unit-order contract
 * across process boundaries: completed units are journaled to a
 * CampaignStore, a resumed run folds the journaled deltas in unit
 * order exactly as a live run would and computes only the remaining
 * units, and `--shard i/N` runs disjoint unit slices in N independent
 * processes whose journals campaign::mergeStore folds back into the
 * same bytes as one uninterrupted process.
 */

#ifndef UBFUZZ_FUZZER_ORCHESTRATOR_H
#define UBFUZZ_FUZZER_ORCHESTRATOR_H

#include <atomic>
#include <functional>

#include "campaign/store.h"
#include "fuzzer/fuzzer.h"

namespace ubfuzz::fuzzer {

/** How the campaign service runs a campaign beyond one in-memory
 *  process: which shard slice, which journal, when to pause, and who
 *  watches units fold. */
struct ServiceOptions
{
    /** This process's slice of the unit space (default: all of it). */
    campaign::ShardSpec shard;

    /**
     * Journal of completed units, or null for a purely in-memory run.
     * Units recovered by the store (resume) are folded without being
     * re-run; fresh units are appended as they complete. The store's
     * manifest must describe (config, shard) — campaign::manifestFor.
     */
    campaign::CampaignStore *store = nullptr;

    /**
     * Stop *scheduling* new units after this many fresh (non-replayed)
     * units have been claimed; negative means no cap. Used by the CLI's
     * `--max-units` to checkpoint-pause a campaign deterministically
     * (the crash/resume CI smoke kills at half the units this way), and
     * handy for time-boxed shards. In-flight units still complete and
     * journal; the run then reports `complete == false`.
     */
    int maxFreshUnits = -1;

    /**
     * Streaming front end: called once per unit as it folds into the
     * total, in strict unit order, with the unit's stats delta.
     * `replayed` distinguishes journal replays from freshly computed
     * units. Called under the fold lock — keep it cheap (the `--serve`
     * mode prints findings as they dedup).
     */
    std::function<void(int unit, const CampaignStats &delta,
                       bool replayed)>
        onUnitFolded;

    /**
     * Graceful-pause flag, or null. When it flips (the CLI sets it from
     * SIGINT/SIGTERM), no new units are claimed, live isolated workers
     * are SIGKILLed, and the run returns with everything already folded
     * and journaled — `complete == false`, resumable exactly like a
     * maxFreshUnits pause. Aborted units are neither journaled nor
     * folded; they re-run on resume.
     */
    const std::atomic<bool> *stopRequested = nullptr;
};

/** What a service run did, beyond the folded stats. */
struct ServiceResult
{
    CampaignStats stats;
    /** Units this shard owns / replayed from the journal / ran. */
    int unitsOwned = 0;
    int unitsReplayed = 0;
    int unitsRun = 0;
    /** Units (replayed or fresh) that folded as quarantine records —
     *  every retry was exhausted; the campaign completed without them.
     *  Always 0 outside `--isolate`. */
    int unitsQuarantined = 0;
    /** Every owned unit folded (false after a maxFreshUnits pause —
     *  `stats` is then a prefix, not a campaign result). */
    bool complete = false;
};

/**
 * Run a campaign (or one shard of it) as a checkpointable service:
 * replay the store's journal, fold completed units in unit order, run
 * and journal only the remaining ones. Kill + resume reproduces the
 * uninterrupted result bit for bit, for any `--jobs` value. After a
 * complete run that replayed journal records, the merged accounting
 * invariants are re-asserted (statsInvariantViolation) so resume drift
 * fails loudly.
 */
ServiceResult runCampaignService(const CampaignConfig &config,
                                 const ServiceOptions &options);

/**
 * Run a campaign sharded across `config.jobs` worker threads (clamped
 * to [1, unit count]). `jobs <= 1` runs on the calling thread. The
 * result is identical for every jobs value. (Equivalent to
 * runCampaignService with default options.)
 */
CampaignStats runCampaignParallel(const CampaignConfig &config);

/** Resolve a --jobs request: 0 or negative means "all hardware threads". */
int resolveJobs(int requested);

} // namespace ubfuzz::fuzzer

#endif // UBFUZZ_FUZZER_ORCHESTRATOR_H
