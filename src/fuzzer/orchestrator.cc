#include "fuzzer/orchestrator.h"

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace ubfuzz::fuzzer {

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

CampaignStats
runCampaignParallel(const CampaignConfig &config)
{
    const int units = detail::campaignUnitCount(config);
    CampaignStats total;
    if (units <= 0)
        return total;

    int jobs = resolveJobs(config.jobs);
    if (jobs > units)
        jobs = units;

    // One corpus memo per campaign: identical UB programs derived from
    // different seeds replay the first test's recorded stats instead of
    // re-running the matrix. Sequential runs catch every cross-seed
    // duplicate; sharded runs catch every one not being computed
    // concurrently — either way the replayed delta is bit-identical to
    // recomputation, so the results never depend on `jobs`.
    CorpusMemo memo;

    if (jobs <= 1) {
        for (int i = 0; i < units; i++) {
            detail::mergeCampaignStats(
                total, detail::runCampaignUnit(config, i, &memo));
        }
        return total;
    }

    // Workers steal unit indices from a shared cursor and run each
    // unit on a private accumulator — no locks on the hot path. A
    // completed unit is folded into `total` in strict unit order: the
    // frontier advances as soon as the next unit lands, and at most
    // the out-of-order window (~jobs units) is ever buffered, so peak
    // memory stays O(jobs) rather than O(units). Unit-order folding
    // is what keeps the result bit-identical to a sequential run.
    std::atomic<int> cursor{0};
    std::mutex foldMutex;
    std::map<int, CampaignStats> pending;
    int frontier = 0;
    auto work = [&] {
        for (;;) {
            int i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= units)
                return;
            CampaignStats stats =
                detail::runCampaignUnit(config, i, &memo);
            std::lock_guard<std::mutex> lock(foldMutex);
            pending.emplace(i, std::move(stats));
            while (!pending.empty() &&
                   pending.begin()->first == frontier) {
                detail::mergeCampaignStats(
                    total, std::move(pending.begin()->second));
                pending.erase(pending.begin());
                frontier++;
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int w = 0; w < jobs; w++)
        pool.emplace_back(work);
    for (std::thread &t : pool)
        t.join();
    return total;
}

} // namespace ubfuzz::fuzzer
