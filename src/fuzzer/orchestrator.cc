#include "fuzzer/orchestrator.h"

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fuzzer/supervisor.h"
#include "support/diagnostics.h"

namespace ubfuzz::fuzzer {

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

namespace {

/** One unit's outcome waiting at the fold frontier. */
struct Slot
{
    CampaignStats stats;
    bool replayed = false;
};

} // namespace

ServiceResult
runCampaignService(const CampaignConfig &config,
                   const ServiceOptions &opts)
{
    const int units = detail::campaignUnitCount(config);
    ServiceResult res;
    UBF_ASSERT(opts.shard.count >= 1 && opts.shard.index >= 1 &&
                   opts.shard.index <= opts.shard.count,
               "invalid shard ", opts.shard.index, "/",
               opts.shard.count);
    if (opts.store) {
        // The store was opened against some (config, shard); a caller
        // handing us a journal for a different slice is a bug, not a
        // recoverable condition.
        UBF_ASSERT(opts.store->manifest().shard == opts.shard,
                   "store shard does not match service shard");
        UBF_ASSERT(opts.store->manifest().unitCount ==
                       static_cast<uint32_t>(units < 0 ? 0 : units),
                   "store unit count does not match campaign");
    }
    if (units <= 0) {
        res.complete = true;
        return res;
    }

    // The unit indices this shard owns, in increasing order. All
    // folding below is positional within this list; `owned[p]` maps a
    // position back to its campaign-wide unit index.
    std::vector<int> owned;
    for (int i = 0; i < units; i++)
        if (opts.shard.owns(i))
            owned.push_back(i);
    res.unitsOwned = static_cast<int>(owned.size());
    if (owned.empty()) {
        res.complete = true;
        return res;
    }

    // One corpus memo per campaign process: identical UB programs
    // derived from different seeds replay the first test's recorded
    // stats instead of re-running the matrix (bit-identical results
    // either way — see CorpusMemo). A resumed run re-populates it from
    // the journaled memo contributions of the replayed units, in unit
    // order, so fresh units keep deduping against work this process
    // never re-ran.
    CorpusMemo memo(config.corpusMemoCap);
    std::map<int, campaign::UnitRecord> replayed;
    if (opts.store) {
        replayed = opts.store->takeReplayed();
        for (auto &[unit, rec] : replayed) {
            for (auto &[key, delta] : rec.memoAdds) {
                memo.insert(key, std::make_shared<const CampaignStats>(
                                     std::move(delta)));
            }
        }
    }
    res.unitsReplayed = static_cast<int>(replayed.size());

    // Completed units buffered until the fold frontier reaches them.
    // Replayed units are pre-seeded (their deltas are already in
    // memory from journal recovery, so peak memory is O(jobs +
    // replayed), not O(units)); fresh units land as workers finish.
    // Folding in strict position order is what keeps every resume /
    // shard / jobs combination bit-identical to one sequential run.
    std::map<size_t, Slot> pending;
    size_t frontier = 0;
    for (size_t p = 0; p < owned.size(); p++) {
        auto it = replayed.find(owned[p]);
        if (it != replayed.end())
            pending.emplace(p, Slot{std::move(it->second.stats), true});
    }

    auto fold = [&] {
        while (!pending.empty() && pending.begin()->first == frontier) {
            Slot &slot = pending.begin()->second;
            if (opts.onUnitFolded)
                opts.onUnitFolded(owned[frontier], slot.stats,
                                  slot.replayed);
            detail::mergeCampaignStats(res.stats,
                                       std::move(slot.stats));
            pending.erase(pending.begin());
            frontier++;
        }
    };

    // Positions still to compute, in order, clipped to the fresh-unit
    // budget (maxFreshUnits pauses the campaign deterministically: the
    // first `toRun` fresh positions run, everything after stays for
    // the next resume).
    std::vector<size_t> fresh;
    for (size_t p = 0; p < owned.size(); p++)
        if (!pending.count(p))
            fresh.push_back(p);
    const size_t budget = opts.maxFreshUnits < 0
                              ? fresh.size()
                              : static_cast<size_t>(opts.maxFreshUnits);
    const size_t toRun = std::min(budget, fresh.size());

    auto stopped = [&] {
        return opts.stopRequested &&
               opts.stopRequested->load(std::memory_order_relaxed);
    };

    // Run one fresh unit and journal it. Journaling happens at
    // completion time (the store serializes appends internally), so a
    // kill loses at most the units still computing — never a completed
    // one — and the journal's record order is irrelevant: each record
    // carries its unit index and replay folds by index. Under
    // `--isolate` the unit runs in a forked, deadline-watched worker
    // (fuzzer/supervisor); a unit that exhausts its retries journals a
    // quarantine record instead, so the campaign still completes.
    // Returns nullopt only for a stop-aborted unit, which is neither
    // journaled nor folded and re-runs on resume.
    auto runOne = [&](size_t p) -> std::optional<CampaignStats> {
        int unit = owned[p];
        campaign::UnitRecord rec;
        rec.unit = unit;
        if (config.isolate) {
            SuperviseOutcome sup = superviseUnit(
                config, unit, &memo, opts.stopRequested);
            if (sup.kind == SuperviseOutcome::Kind::Aborted)
                return std::nullopt;
            if (sup.kind == SuperviseOutcome::Kind::Quarantined) {
                rec.quarantined = true;
                rec.stats.quarantined = 1;
            } else {
                // The supervisor, not the worker, owns the memo: fold
                // the worker's adds in exactly as journal replay would.
                for (auto &[key, delta] : sup.out.memoAdds)
                    memo.insert(key, delta);
                rec.stats = std::move(sup.out.stats);
                rec.memoAdds.reserve(sup.out.memoAdds.size());
                for (auto &[key, delta] : sup.out.memoAdds)
                    rec.memoAdds.emplace_back(key, *delta);
            }
            // Attempt accounting merges into the unit's own journaled
            // delta, so a replay reproduces the live stats field for
            // field even for injected-failure runs.
            rec.stats.workerCrashes += sup.workerCrashes;
            rec.stats.workerTimeouts += sup.workerTimeouts;
            rec.stats.retried += sup.retried;
        } else {
            detail::UnitOutput out =
                detail::runCampaignUnitRecorded(config, unit, &memo);
            rec.stats = std::move(out.stats);
            rec.memoAdds.reserve(out.memoAdds.size());
            for (auto &[key, delta] : out.memoAdds)
                rec.memoAdds.emplace_back(key, *delta);
        }
        if (opts.store)
            opts.store->append(rec);
        return std::move(rec.stats);
    };

    int jobs = resolveJobs(config.jobs);
    if (jobs > static_cast<int>(toRun))
        jobs = static_cast<int>(toRun);

    if (jobs <= 1) {
        // Sequential: fold any replayed prefix, then the frontier
        // always points at the next fresh position.
        size_t freshDone = 0;
        fold();
        while (frontier < owned.size() && freshDone < toRun &&
               !stopped()) {
            std::optional<CampaignStats> stats = runOne(frontier);
            if (!stats)
                break; // stop request aborted the unit mid-run
            pending.emplace(frontier, Slot{std::move(*stats), false});
            freshDone++;
            fold();
        }
        res.unitsRun = static_cast<int>(freshDone);
    } else {
        // Workers steal fresh positions from a shared cursor and run
        // each unit on a private accumulator — no locks on the hot
        // path. A completed unit is folded into the total in strict
        // position order under the fold mutex.
        std::atomic<size_t> cursor{0};
        std::atomic<int> ran{0};
        std::mutex foldMutex;
        auto work = [&] {
            for (;;) {
                if (stopped())
                    return;
                size_t k =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (k >= toRun)
                    return;
                size_t p = fresh[k];
                std::optional<CampaignStats> stats = runOne(p);
                if (!stats)
                    return; // stop request aborted the unit mid-run
                ran.fetch_add(1, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(foldMutex);
                pending.emplace(p, Slot{std::move(*stats), false});
                fold();
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(jobs));
        for (int w = 0; w < jobs; w++)
            pool.emplace_back(work);
        for (std::thread &t : pool)
            t.join();
        // Drain any replayed tail (and handle the all-replayed case,
        // where no worker ever folds).
        fold();
        res.unitsRun = ran.load();
    }

    res.complete = frontier == owned.size();
    // Each quarantined unit folded a delta whose only nonzero field
    // pack is the supervision counters (quarantined == 1), so the
    // merged count *is* the unit count — for fresh and replayed alike.
    res.unitsQuarantined = static_cast<int>(res.stats.quarantined);
    if (res.complete && opts.store && res.unitsReplayed > 0) {
        // Stats-accounting drift on resume fails loudly: the merged
        // (replayed + fresh) totals must satisfy the same per-unit
        // accounting identities a single-process run does.
        std::string violation = statsInvariantViolation(res.stats);
        UBF_ASSERT(violation.empty(),
                   "journal replay drifted from live accounting: ",
                   violation);
    }
    return res;
}

CampaignStats
runCampaignParallel(const CampaignConfig &config)
{
    return runCampaignService(config, ServiceOptions{}).stats;
}

} // namespace ubfuzz::fuzzer
