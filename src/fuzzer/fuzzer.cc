#include "fuzzer/fuzzer.h"

#include <algorithm>
#include <optional>

#include "ast/printer.h"
#include "corpus/juliet.h"
#include "fuzzer/orchestrator.h"
#include "ir/lowering.h"
#include "mutation/music.h"
#include "oracle/oracle.h"
#include "support/diagnostics.h"
#include "support/parse_num.h"
#include "support/rng.h"
#include "vm/bytecode.h"
#include "vm/vm.h"

namespace ubfuzz::fuzzer {

using ubgen::UBKind;

const char *
sourceModeName(SourceMode m)
{
    switch (m) {
      case SourceMode::UBFuzz: return "ubfuzz";
      case SourceMode::Music: return "music";
      case SourceMode::CsmithNoSafe: return "csmith-nosafe";
      case SourceMode::Juliet: return "juliet";
      case SourceMode::Harden: return "harden";
    }
    return "?";
}

std::optional<SourceMode>
parseSourceMode(std::string_view text)
{
    if (text == "ubfuzz")
        return SourceMode::UBFuzz;
    if (text == "music")
        return SourceMode::Music;
    if (text == "nosafe")
        return SourceMode::CsmithNoSafe;
    if (text == "juliet")
        return SourceMode::Juliet;
    if (text == "harden")
        return SourceMode::Harden;
    return std::nullopt;
}

std::optional<FailureInjection>
parseFailureInjection(std::string_view text)
{
    std::vector<std::string_view> fields;
    while (true) {
        size_t colon = text.find(':');
        fields.push_back(text.substr(0, colon));
        if (colon == std::string_view::npos)
            break;
        text.remove_prefix(colon + 1);
    }

    FailureInjection inj;
    if (fields[0] == "crash")
        inj.kind = FailureInjection::Kind::Crash;
    else if (fields[0] == "hang")
        inj.kind = FailureInjection::Kind::Hang;
    else if (fields[0] == "torn")
        inj.kind = FailureInjection::Kind::TornPipe;
    else
        return std::nullopt;

    // crash/hang take exactly UNIT:ATTEMPTS; torn additionally takes
    // the byte offset its write is cut at. Nothing is optional.
    const size_t want =
        inj.kind == FailureInjection::Kind::TornPipe ? 4u : 3u;
    if (fields.size() != want)
        return std::nullopt;
    auto unit = support::parseInt(fields[1], 0);
    if (!unit)
        return std::nullopt;
    inj.unit = *unit;
    // ATTEMPTS is a count of failing attempts (>= 1) or the literal
    // -1 for "every attempt"; 0 would make the injection a no-op, so
    // it is a usage error, not a value.
    auto attempts = support::parseInt(fields[2], -1);
    if (!attempts || *attempts == 0)
        return std::nullopt;
    inj.attempts = *attempts;
    if (inj.kind == FailureInjection::Kind::TornPipe) {
        auto bytes = support::parseUint64(fields[3]);
        if (!bytes)
            return std::nullopt;
        inj.tornBytes = *bytes;
    }
    return inj;
}

UBKind
kindOfReport(vm::ReportKind r)
{
    using R = vm::ReportKind;
    switch (r) {
      case R::ArrayIndexOOB:
        return UBKind::BufferOverflowArray;
      case R::StackBufferOverflow:
      case R::GlobalBufferOverflow:
      case R::HeapBufferOverflow:
        return UBKind::BufferOverflowPointer;
      case R::HeapUseAfterFree:
        return UBKind::UseAfterFree;
      case R::StackUseAfterScope:
        return UBKind::UseAfterScope;
      case R::NullDeref:
        return UBKind::NullPtrDeref;
      case R::SignedIntegerOverflow:
        return UBKind::IntegerOverflow;
      case R::ShiftOutOfBounds:
        return UBKind::ShiftOverflow;
      case R::DivByZero:
        return UBKind::DivideByZero;
      case R::UninitValue:
        return UBKind::UseOfUninitMemory;
      case R::None:
      case R::HardeningFault:
        // Not a sanitizer report: only callers holding a crashed
        // sanitizer ExecResult may ask for its UB kind — a
        // HardeningFault belongs to the fault oracle, which classifies
        // it before this mapping is ever consulted. (No default arm,
        // so a new ReportKind is a compile error here rather than a
        // silent mislabel.)
        break;
    }
    UBF_PANIC("kindOfReport: not a sanitizer report: ",
              vm::reportKindName(r));
}

namespace {

/**
 * Can a *program-wide* defect firing (one recorded without a source
 * location: redzone sizing, scope-poison policy, MSan propagation)
 * plausibly explain a missed UB of this kind? Location-specific
 * firings are matched by location instead.
 */
bool
globalFiringExplains(san::BugId id, UBKind kind)
{
    switch (id) {
      case san::BugId::GccAsanStackRedzoneMultiple32:
      case san::BugId::LlvmAsanGlobalSmallArrayRedzoneSkip:
        return kind == UBKind::BufferOverflowArray ||
               kind == UBKind::BufferOverflowPointer;
      case san::BugId::GccAsanScopePoisonLoopRemoved:
      case san::BugId::LlvmAsanEscapedScopeNoPoison:
        return kind == UBKind::UseAfterScope;
      case san::BugId::LlvmMsanSubConstDefined:
        return kind == UBKind::UseOfUninitMemory;
      default:
        return false;
    }
}

/** Ground-truth attribution: which injected defect explains a missed
 *  report at @p ubLoc for UB kind @p kind? -1 when none does. */
int
attributeFiring(const san::CompileLog &log, SourceLoc ubLoc, UBKind kind)
{
    for (const auto &f : log.firings)
        if (f.loc == ubLoc)
            return static_cast<int>(f.id);
    for (const auto &f : log.firings)
        if (!f.loc.isValid() && globalFiringExplains(f.id, kind))
            return static_cast<int>(f.id);
    return -1;
}

/** A program queued for differential testing with known ground truth. */
struct TestItem
{
    std::unique_ptr<ast::Program> program;
    UBKind kind;
    /** Site node id (UBFuzz mode) or 0 (baselines use gtLoc only). */
    uint32_t siteId = 0;
    /** Expected UB location; computed per printing. */
    SourceLoc gtLoc;
    /** Printed form and ground-truth lowering carried over from the
     *  classify pass (baseline modes), so testItem neither re-prints
     *  nor re-lowers what the classifier already produced. */
    std::optional<ast::PrintedProgram> printed;
    std::optional<ir::Module> baseModule;
};

/**
 * Split an independent RNG stream for one campaign unit. Each unit gets
 * its own SplitMix64 stream keyed on (campaign seed, unit index), so a
 * unit's randomness does not depend on which worker runs it or on how
 * many units ran before it — the property that makes `--jobs N`
 * bit-identical to a sequential run.
 */
Rng
unitRng(uint64_t campaignSeed, uint64_t index)
{
    Rng splitter(campaignSeed * 0x2545F4914F6CDD1DULL + 99 +
                 (index + 1) * 0x9E3779B97F4A7C15ULL);
    return splitter.fork();
}

class Campaign
{
  public:
    /** @p memoAdds, when given, collects the (key, delta) entries this
     *  unit was the first to record in @p memo — the journalable form
     *  of its memo contribution. */
    Campaign(const CampaignConfig &cfg, CorpusMemo *memo,
             std::vector<std::pair<
                 CorpusKey, std::shared_ptr<const CampaignStats>>>
                 *memoAdds = nullptr)
        : cfg_(cfg), memo_(memo), memoAdds_(memoAdds),
          codeCache_(cfg.codeCacheCap)
    {
    }

    /** Run one independent unit: a seed program, or a Juliet case. */
    CampaignStats
    runUnit(int index)
    {
        runUnitInner(index);
        // The unit's bytecode cache dissolves with it; fold its
        // stop-admitting count into the unit's work counters so the
        // campaign totals expose cap pressure, and its quickening
        // counters so the totals expose how much of the execution load
        // ran on fused translations.
        stats_.exec.translationCapRejects += codeCache_.capRejects();
        stats_.exec.quickenedTranslations +=
            codeCache_.quickenedTranslations();
        stats_.exec.fusedRecords += codeCache_.fusedRecords();
        return std::move(stats_);
    }

  private:
    void
    runUnitInner(int index)
    {
        if (cfg_.source == SourceMode::Juliet) {
            const corpus::JulietCase &c =
                corpus::julietSuite()[static_cast<size_t>(index)];
            stats_.seeds++;
            auto prog = corpus::parseCase(c);
            classifyAndTest(std::move(prog));
            return;
        }
        stats_.seeds++;
        Rng rng = unitRng(cfg_.seed, static_cast<uint64_t>(index));
        gen::GeneratorConfig gc;
        gc.seed = cfg_.seed * 1000003ULL + static_cast<uint64_t>(index);
        switch (cfg_.source) {
          case SourceMode::UBFuzz:
          case SourceMode::Harden: {
            gc.safeMath = true;
            auto seed = gen::generateProgram(gc);
            ubgen::UBGenerator ubg(*seed);
            if (!ubg.profiled()) {
                stats_.unprofiledSeeds++;
                break;
            }
            auto programs = ubg.generateAll(rng, cfg_.capPerKind);
            // Lower the clean seed once; every derived UB program
            // below perturbs a single function of it, so its module is
            // built incrementally from this base instead of from
            // scratch — and is then reused for both the ground-truth
            // validation run and the whole testing matrix.
            // Deliberately eager (even for the rare seed with zero
            // derived programs): one base per productive seed is what
            // makes `lowerings == productive seeds + fallbacks` an
            // invariant CI can assert against an independent quantity.
            compiler::SeedLoweringCache seedCache(*seed,
                                                  &stats_.compile);
            for (auto &ub : programs) {
                ast::PrintedProgram printed =
                    ast::printProgram(*ub.program);
                ir::Module mod = seedCache.lowerDerived(
                    *ub.program, printed, ub.perturbedFnId,
                    &stats_.compile);
                // Ground-truth validation through the unit's reusable
                // classifier machine, without a second print or
                // lowering.
                if (!ubgen::validateUBModule(ub, mod, printed,
                                             classifyMachine_)) {
                    stats_.nonTriggering++;
                    continue;
                }
                TestItem item;
                item.program = std::move(ub.program);
                item.kind = ub.kind;
                item.siteId = ub.siteId;
                item.printed = std::move(printed);
                item.baseModule = std::move(mod);
                testItem(std::move(item));
            }
            // The fault oracle draws from the unit RNG only after
            // every UBFuzz draw above, so the shared phases are
            // bit-identical between the two modes.
            if (cfg_.source == SourceMode::Harden)
                faultOracle(seedCache, rng);
            break;
          }
          case SourceMode::Music: {
            gc.safeMath = true;
            auto seed = gen::generateProgram(gc);
            // Every MUSIC mutant is a single-site perturbation of one
            // function of the cloned seed, so the seed-level cache
            // applies exactly as in UBFuzz mode: lower the clean seed
            // once, splice every unperturbed function into each
            // mutant's module, re-lower only the mutated one (the PR 4
            // follow-up). musicMutate reports the perturbed function.
            compiler::SeedLoweringCache seedCache(*seed,
                                                  &stats_.compile);
            for (int m = 0; m < cfg_.mutantsPerSeed; m++) {
                uint32_t fnId = 0;
                auto mutant = mutation::musicMutate(*seed, rng, &fnId);
                if (!mutant)
                    continue;
                ast::PrintedProgram printed =
                    ast::printProgram(*mutant);
                ir::Module mod = seedCache.lowerDerived(
                    *mutant, printed, fnId, &stats_.compile);
                classifyAndTestLowered(std::move(mutant),
                                       std::move(printed),
                                       std::move(mod));
            }
            break;
          }
          case SourceMode::CsmithNoSafe: {
            gc.safeMath = false;
            classifyAndTest(gen::generateProgram(gc));
            break;
          }
          case SourceMode::Juliet:
            break;
        }
    }

    /** Two executions observably agree: same termination kind, report,
     *  report site, trap, exit code, and checksum. */
    static bool
    sameObservable(const vm::ExecResult &a, const vm::ExecResult &b)
    {
        return a.kind == b.kind && a.report == b.report &&
               a.reportLoc == b.reportLoc && a.trap == b.trap &&
               a.exitCode == b.exitCode && a.checksum == b.checksum;
    }

    /**
     * The fault half of the hardening oracle, run once per productive
     * seed on its *clean* program: compile a hardened twin at a fixed
     * plain-build point, execute it fault-free to learn its step count,
     * then re-execute it `faultsPerProgram` times with one deterministic
     * bit flip armed each time, classifying every run as detected
     * (HardeningFault report), masked (observably identical to the
     * fault-free run), or silent data corruption.
     */
    void
    faultOracle(compiler::SeedLoweringCache &seedCache, Rng &rng)
    {
        compiler::CompilerConfig hc;
        hc.vendor = Vendor::GCC;
        hc.level = OptLevel::O2;
        hc.sanitizer = SanitizerKind::None;
        hc.harden = cfg_.hardenPasses;
        compiler::Binary bin = compiler::specialize(
            compiler::earlyOptimize(
                ir::cloneModule(seedCache.baseModule()), hc.vendor,
                hc.level, &stats_.compile),
            hc, &stats_.compile);

        // A dedicated machine (counted: machinesBuilt + corpusSkips ==
        // ubPrograms + harden.programs), sharing the unit's bytecode
        // cache like every other machine of the unit.
        stats_.harden.programs++;
        vm::Machine machine(&codeCache_);
        vm::ExecOptions opts;
        opts.stepLimit = cfg_.stepLimit;
        vm::ExecResult base = machine.run(bin.module, opts);
        if (base.kind != vm::ExecResult::Kind::Timeout &&
            base.steps > 1) {
            for (int k = 0; k < cfg_.faultsPerProgram; k++) {
                vm::FaultPlan plan;
                plan.step = 1 + rng.below(base.steps - 1);
                plan.target = rng.next();
                plan.bitIndex = static_cast<uint8_t>(rng.below(64));
                vm::ExecOptions fopts;
                fopts.stepLimit = cfg_.stepLimit;
                fopts.fault = &plan;
                vm::ExecResult r = machine.run(bin.module, fopts);
                stats_.harden.faultsInjected++;
                if (r.kind == vm::ExecResult::Kind::Report &&
                    r.report == vm::ReportKind::HardeningFault) {
                    stats_.harden.faultsDetected++;
                } else if (sameObservable(r, base)) {
                    stats_.harden.faultsMasked++;
                } else {
                    stats_.harden.faultsSdc++;
                }
            }
        }
        stats_.exec.merge(machine.stats());
    }

    CampaignConfig cfg_;
    CorpusMemo *memo_ = nullptr;
    std::vector<std::pair<CorpusKey, std::shared_ptr<const CampaignStats>>>
        *memoAdds_ = nullptr;
    CampaignStats stats_;

    /**
     * One bytecode cache per unit: every machine of the unit — the
     * per-program differential machines and the classifier below —
     * resolves modules through it, so a binary executed more than once
     * (the debugger re-execution of a silent binary, a re-validated
     * module) is flattened exactly once. Single-threaded like the
     * compilation caches; the orchestrator's parallelism is across
     * units. Declared before the machines that point at it.
     */
    vm::CodeCache codeCache_;

    /**
     * One machine per unit for the ground-truth classifier: baseline
     * modes classify many programs per seed (Music: every mutant), and
     * each classification is a single execution — the rebuild cost
     * vm::execute would pay per call dwarfs the run. Its work counters
     * are deliberately not merged into CampaignStats::exec, which
     * tracks the differential engine (one machine per *tested*
     * program; the CI invariants machinesBuilt + corpusSkips ==
     * ubPrograms and executions == translations + translationHits
     * depend on that).
     */
    vm::Machine classifyMachine_{&codeCache_};

    /** Ground-truth classify a baseline program, then test if UB.
     *  Lowers from scratch — for sources with no seed base to lower
     *  incrementally from (one generated program per NoSafe seed, the
     *  fixed Juliet cases); Music mutants come through
     *  classifyAndTestLowered with their incremental module. */
    void
    classifyAndTest(std::unique_ptr<ast::Program> prog)
    {
        ast::PrintedProgram printed = ast::printProgram(*prog);
        ir::Module mod =
            compiler::lowerOnce(*prog, printed, &stats_.compile);
        classifyAndTestLowered(std::move(prog), std::move(printed),
                               std::move(mod));
    }

    /** The classify tail for callers that already printed and lowered
     *  the program (incrementally or not): one ground-truth run
     *  through the unit's classifier machine, then the full matrix. */
    void
    classifyAndTestLowered(std::unique_ptr<ast::Program> prog,
                           ast::PrintedProgram printed, ir::Module mod)
    {
        vm::ExecOptions opts;
        opts.groundTruth = true;
        opts.stepLimit = cfg_.stepLimit;
        vm::ExecResult r = classifyMachine_.run(mod, opts);
        if (r.kind != vm::ExecResult::Kind::Report) {
            stats_.noUB++;
            return;
        }
        TestItem item;
        item.program = std::move(prog);
        item.kind = kindOfReport(r.report);
        item.gtLoc = r.reportLoc;
        item.printed = std::move(printed);
        item.baseModule = std::move(mod);
        testItem(std::move(item));
    }

    /**
     * Test one item through its whole sanitizer matrix — or, when an
     * identical item (same printed text, kind, UB site) was already
     * tested this campaign, replay the recorded stats delta instead.
     * Replay is bit-identical to recomputing because the printed text
     * is the compiler's entire input; only the execution work counters
     * know the difference.
     */
    void
    testItem(TestItem item)
    {
        ast::PrintedProgram printed =
            item.printed ? std::move(*item.printed)
                         : ast::printProgram(*item.program);
        SourceLoc ub_loc =
            item.siteId ? printed.map.loc(item.siteId) : item.gtLoc;

        // One cache per tested program: every sanitizer row of the
        // matrix below shares a single lowering and one early-opt run
        // per (vendor, level).
        compiler::CompilationCache cache(*item.program, printed);
        if (item.baseModule)
            cache.adoptBase(std::move(*item.baseModule));

        CorpusKey key;
        key.textHash = cache.baseTextHash();
        key.textLen = printed.text.size();
        key.kind = item.kind;
        key.ubLoc = ub_loc;
        if (stats_.corpusSeen[key]++ > 0)
            stats_.corpusDuplicates++;

        if (memo_ && cfg_.corpusDedup) {
            if (auto delta = memo_->find(key)) {
                stats_.exec.corpusSkips++;
                detail::mergeCampaignStats(stats_,
                                           CampaignStats(*delta));
                return;
            }
        }

        // One machine per UB program: the whole config matrix below —
        // including the debugger re-executions — runs through it, with
        // a cheap reset between runs instead of a rebuild. It shares
        // the unit's bytecode cache, so re-executions of a binary any
        // machine of this unit already ran reuse the translation.
        vm::Machine machine(&codeCache_);
        CampaignStats delta;
        testItemMatrix(std::move(item), ub_loc, cache, machine, delta);
        stats_.exec.merge(machine.stats());
        if (memo_ && cfg_.corpusDedup) {
            auto recorded = std::make_shared<const CampaignStats>(delta);
            switch (memo_->insert(key, recorded)) {
              case CorpusMemo::Insert::Inserted:
                // This unit owns the entry: journal it so a resumed
                // campaign re-populates the memo without re-running
                // the matrix.
                if (memoAdds_)
                    memoAdds_->emplace_back(key, std::move(recorded));
                break;
              case CorpusMemo::Insert::AlreadyPresent:
                break;
              case CorpusMemo::Insert::CapFull:
                stats_.exec.corpusCapRejects++;
                break;
            }
        }
        detail::mergeCampaignStats(stats_, std::move(delta));
    }

    /** The matrix proper; every statistic it produces goes into
     *  @p delta so a corpus-dedup hit can replay it verbatim. */
    void
    testItemMatrix(TestItem item, SourceLoc ub_loc,
                   compiler::CompilationCache &cache,
                   vm::Machine &machine, CampaignStats &delta)
    {
        delta.ubPrograms++;
        delta.perKind[static_cast<size_t>(item.kind)]++;

        bool program_discrepant = false;
        bool program_selected = false;

        for (SanitizerKind sani : ubgen::sanitizersFor(item.kind)) {
            std::vector<compiler::CompilerConfig> configs =
                oracle::testingMatrix(sani);
            if (cfg_.onlyO0) {
                std::erase_if(configs,
                              [](const compiler::CompilerConfig &c) {
                                  return c.level != OptLevel::O0;
                              });
            }
            oracle::DifferentialResult diff = oracle::runDifferential(
                cache, machine, configs, cfg_.stepLimit);
            delta.execTimeouts += diff.timeouts;
            delta.timeoutExcluded += diff.timeoutExcluded;

            // Drift phase (Harden mode): every outcome's hardened twin
            // must behave observably identically without a fault armed
            // — hardening that changes a sanitizer report (or anything
            // else) is a compiler bug, not a detection. Timeout on
            // either side is incomparable (hardening multiplies the
            // step count), not drift.
            if (cfg_.source == SourceMode::Harden) {
                for (const auto &oc : diff.outcomes) {
                    if (oc.result.kind == vm::ExecResult::Kind::Timeout)
                        continue;
                    compiler::CompilerConfig hc = oc.config;
                    hc.harden = cfg_.hardenPasses;
                    compiler::Binary hardened = cache.compile(hc);
                    vm::ExecOptions opts;
                    opts.stepLimit = cfg_.stepLimit;
                    vm::ExecResult hr =
                        machine.run(hardened.module, opts);
                    if (hr.kind == vm::ExecResult::Kind::Timeout)
                        continue;
                    delta.harden.driftComparisons++;
                    if (!sameObservable(oc.result, hr))
                        delta.harden.driftReports++;
                }
            }

            // Wrong-report detection: a binary reports, but at the
            // wrong location, and a wrong-line-information defect
            // fired at the true UB site.
            for (const auto &oc : diff.outcomes) {
                if (!oc.result.crashed() ||
                    oc.result.reportLoc == ub_loc)
                    continue;
                for (const auto &f : oc.log.firings) {
                    if (f.loc == ub_loc &&
                        san::bugInfo(f.id).category ==
                            san::BugCategory::WrongLineInformation) {
                        delta.wrongReports++;
                        delta.wrongReportBugs.insert(f.id);
                        break;
                    }
                }
            }

            if (!diff.hasDiscrepancy())
                continue;
            program_discrepant = true;

            for (const auto &v : diff.verdicts) {
                delta.verdictPairs++;
                const oracle::ConfigOutcome &missing =
                    diff.outcomes[v.nonCrashingIdx];
                int attributed =
                    attributeFiring(missing.log, ub_loc, item.kind);
                bool gt_bug = attributed >= 0;
                bool selected = cfg_.useOracle ? v.isBug : true;
                if (!selected) {
                    delta.droppedPairs++;
                    if (gt_bug)
                        delta.droppedTrueBug++;
                    continue;
                }
                delta.selectedPairs++;
                program_selected = true;
                if (gt_bug)
                    delta.selectedTrueBug++;
                else
                    delta.selectedOptimization++;

                FindingRecord rec;
                rec.kind = item.kind;
                rec.crashing = diff.outcomes[v.crashingIdx].config;
                rec.missing = missing.config;
                rec.ubLoc = ub_loc;
                rec.groundTruthBug = gt_bug;
                if (gt_bug) {
                    rec.attributedBug = attributed;
                    san::BugId id = static_cast<san::BugId>(attributed);
                    delta.bugFindingCounts[id]++;
                    delta.bugFirstKind.emplace(id, item.kind);
                    delta.bugLevels[id].insert(missing.config.level);
                } else {
                    delta.invalidFindings++;
                }
                if (delta.findings.size() < 200)
                    delta.findings.push_back(rec);
            }
        }
        if (program_discrepant)
            delta.discrepantPrograms++;
        if (program_selected)
            delta.oracleSelectedPrograms++;
        delta.compile.merge(cache.stats());
    }
};

} // namespace

namespace detail {

int
campaignUnitCount(const CampaignConfig &config)
{
    if (config.source == SourceMode::Juliet)
        return static_cast<int>(corpus::julietSuite().size());
    return config.numSeeds;
}

CampaignStats
runCampaignUnit(const CampaignConfig &config, int index, CorpusMemo *memo)
{
    return Campaign(config, memo).runUnit(index);
}

UnitOutput
runCampaignUnitRecorded(const CampaignConfig &config, int index,
                        CorpusMemo *memo)
{
    UnitOutput out;
    out.stats =
        Campaign(config, memo, &out.memoAdds).runUnit(index);
    return out;
}

void
mergeCampaignStats(CampaignStats &into, CampaignStats &&from)
{
    into.seeds += from.seeds;
    into.unprofiledSeeds += from.unprofiledSeeds;
    into.ubPrograms += from.ubPrograms;
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++)
        into.perKind[k] += from.perKind[k];
    into.nonTriggering += from.nonTriggering;
    into.noUB += from.noUB;
    into.discrepantPrograms += from.discrepantPrograms;
    into.oracleSelectedPrograms += from.oracleSelectedPrograms;
    into.verdictPairs += from.verdictPairs;
    into.selectedPairs += from.selectedPairs;
    into.selectedTrueBug += from.selectedTrueBug;
    into.selectedOptimization += from.selectedOptimization;
    into.droppedPairs += from.droppedPairs;
    into.droppedTrueBug += from.droppedTrueBug;
    for (const auto &[id, n] : from.bugFindingCounts)
        into.bugFindingCounts[id] += n;
    // emplace keeps the earlier unit's kind, matching the sequential
    // "first kind seen" semantics when merged in unit order.
    for (const auto &[id, kind] : from.bugFirstKind)
        into.bugFirstKind.emplace(id, kind);
    for (const auto &[id, levels] : from.bugLevels)
        into.bugLevels[id].insert(levels.begin(), levels.end());
    into.wrongReports += from.wrongReports;
    into.wrongReportBugs.insert(from.wrongReportBugs.begin(),
                                from.wrongReportBugs.end());
    into.invalidFindings += from.invalidFindings;
    into.compile.merge(from.compile);
    into.exec.merge(from.exec);
    into.execTimeouts += from.execTimeouts;
    into.timeoutExcluded += from.timeoutExcluded;
    into.workerCrashes += from.workerCrashes;
    into.workerTimeouts += from.workerTimeouts;
    into.retried += from.retried;
    into.quarantined += from.quarantined;
    into.harden.merge(from.harden);
    // Fold the corpus seen-set in unit order: occurrences of a key an
    // earlier unit already tested are cross-seed duplicates. `from`'s
    // own beyond-first occurrences are already in from.corpusDuplicates;
    // a key collision additionally turns `from`'s first occurrence into
    // a duplicate.
    into.corpusDuplicates += from.corpusDuplicates;
    for (const auto &[key, n] : from.corpusSeen) {
        auto [it, inserted] = into.corpusSeen.emplace(key, n);
        if (!inserted) {
            it->second += n;
            into.corpusDuplicates++;
        }
    }
    for (auto &rec : from.findings) {
        if (into.findings.size() >= 200)
            break;
        into.findings.push_back(rec);
    }
}

} // namespace detail

uint64_t
findingsDigest(const CampaignStats &stats)
{
    std::vector<FindingRecord> findings = stats.findings;
    std::sort(findings.begin(), findings.end());
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) { h = (h ^ v) * 0x100000001b3ULL; };
    for (const auto &f : findings) {
        mix(static_cast<uint64_t>(f.kind));
        mix(static_cast<uint64_t>(f.crashing.vendor));
        mix(static_cast<uint64_t>(f.crashing.level));
        mix(static_cast<uint64_t>(f.crashing.sanitizer));
        mix(static_cast<uint64_t>(f.missing.vendor));
        mix(static_cast<uint64_t>(f.missing.level));
        mix(static_cast<uint64_t>(f.missing.sanitizer));
        mix(static_cast<uint64_t>(static_cast<uint32_t>(f.ubLoc.line)));
        mix(static_cast<uint64_t>(
            static_cast<uint32_t>(f.ubLoc.offset)));
        mix(static_cast<uint64_t>(f.attributedBug + 1));
    }
    return h;
}

std::string
statsInvariantViolation(const CampaignStats &s)
{
    auto mismatch = [](const char *what, size_t lhs, size_t rhs) {
        return std::string(what) + ": " + std::to_string(lhs) +
               " != " + std::to_string(rhs);
    };
    // One base lowering per productive seed (or per classified
    // baseline program), plus one for every incremental fallback.
    if (s.compile.lowerings !=
        s.productiveSeeds() + s.compile.deltaFallbacks) {
        return mismatch("lowerings != productive seeds + fallbacks",
                        s.compile.lowerings,
                        s.productiveSeeds() + s.compile.deltaFallbacks);
    }
    // Every interpreted execution resolves through a CodeCache exactly
    // once: a flattening or a hit, never both, never neither.
    if (s.exec.executions !=
        s.exec.translations + s.exec.translationHits) {
        return mismatch("executions != translations + hits",
                        s.exec.executions,
                        s.exec.translations + s.exec.translationHits);
    }
    // One differential machine per tested program, plus one per
    // hardened fault-oracle program; replayed duplicates build none.
    if (s.exec.machinesBuilt + s.exec.corpusSkips !=
        s.ubPrograms + s.harden.programs) {
        return mismatch("machines built + corpus replays != "
                        "ub programs + hardened programs",
                        s.exec.machinesBuilt + s.exec.corpusSkips,
                        s.ubPrograms + s.harden.programs);
    }
    return {};
}

CampaignStats
runCampaign(const CampaignConfig &config)
{
    return runCampaignParallel(config);
}

} // namespace ubfuzz::fuzzer
