/**
 * @file
 * Fork-isolated campaign workers: frame codec + supervisor loop.
 */

#include "fuzzer/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#if !defined(_WIN32)
#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "support/diagnostics.h"
#include "support/serialize.h"

namespace ubfuzz::fuzzer {

std::string
encodeUnitFrame(int unit, const detail::UnitOutput &out)
{
    support::ByteWriter payload;
    payload.u32(static_cast<uint32_t>(unit));
    support::serialize(payload, out.stats);
    payload.u32(static_cast<uint32_t>(out.memoAdds.size()));
    for (const auto &[key, delta] : out.memoAdds) {
        support::serialize(payload, key);
        support::serialize(payload, *delta);
    }

    support::ByteWriter frame;
    frame.u32(static_cast<uint32_t>(payload.size()));
    frame.u64(support::fnv1a(payload.data()));
    return frame.data() + payload.data();
}

bool
decodeUnitFrame(std::string_view bytes, int expectedUnit,
                detail::UnitOutput &out)
{
    constexpr size_t kHeader = 4 + 8;
    if (bytes.size() < kHeader)
        return false;
    support::ByteReader header(bytes.substr(0, kHeader));
    uint32_t payloadLen = header.u32();
    uint64_t checksum = header.u64();
    // Exactly one frame: a worker writes its frame and exits, so
    // trailing bytes are as much a tear as missing ones.
    if (bytes.size() != kHeader + payloadLen)
        return false;
    std::string_view payload = bytes.substr(kHeader, payloadLen);
    if (support::fnv1a(payload) != checksum)
        return false;

    support::ByteReader r(payload);
    if (r.u32() != static_cast<uint32_t>(expectedUnit))
        return false;
    detail::UnitOutput decoded;
    if (!support::deserialize(r, decoded.stats))
        return false;
    uint32_t memoCount = r.u32();
    for (uint32_t i = 0; i < memoCount && r.ok(); i++) {
        CorpusKey key;
        CampaignStats delta;
        if (!support::deserialize(r, key) ||
            !support::deserialize(r, delta))
            return false;
        decoded.memoAdds.emplace_back(
            key, std::make_shared<const CampaignStats>(std::move(delta)));
    }
    if (!r.ok() || r.remaining() != 0)
        return false;
    out = std::move(decoded);
    return true;
}

namespace {

detail::UnitOutput
computeUnit(const CampaignConfig &config, int unit, CorpusMemo *memo,
            const UnitWorkFn &work)
{
    if (work)
        return work(config, unit, memo);
    return detail::runCampaignUnitRecorded(config, unit, memo);
}

bool
stopRequested(const std::atomic<bool> *stop)
{
    return stop && stop->load(std::memory_order_relaxed);
}

#if !defined(_WIN32)

void
writeAll(int fd, std::string_view bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // supervisor went away; it will classify the tear
        }
        off += static_cast<size_t>(n);
    }
}

[[noreturn]] void
runWorker(int writeFd, const CampaignConfig &config, int unit,
          int attempt, CorpusMemo *memo, const UnitWorkFn &work)
{
    // The worker is a fork of the supervisor: restore default signal
    // dispositions so a terminal Ctrl-C kills workers outright while
    // the supervisor drains gracefully (it re-kills us anyway).
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);

    const FailureInjection &inj = config.failureInjection;
    const bool injected = inj.firesOn(unit, attempt);
    if (injected && inj.kind == FailureInjection::Kind::Crash)
        ::_exit(101); // dies before producing a single byte
    if (injected && inj.kind == FailureInjection::Kind::Hang) {
        for (;;)
            ::pause(); // watchdog food: only SIGKILL gets us out
    }

    std::string frame =
        encodeUnitFrame(unit, computeUnit(config, unit, memo, work));
    if (injected && inj.kind == FailureInjection::Kind::TornPipe) {
        writeAll(writeFd, std::string_view(frame).substr(
                              0, std::min<size_t>(inj.tornBytes,
                                                  frame.size())));
        ::_exit(102); // died mid-write: the supervisor sees a torn frame
    }
    writeAll(writeFd, frame);
    // _exit, never exit: the child shares the parent's stdio buffers
    // and must not flush them a second time.
    ::_exit(0);
}

enum class AttemptStatus : uint8_t { Frame, Crash, Timeout, Stopped };

AttemptStatus
runAttempt(const CampaignConfig &config, int unit, int attempt,
           CorpusMemo *memo, const std::atomic<bool> *stop,
           const UnitWorkFn &work, detail::UnitOutput &out)
{
    int fds[2];
    if (::pipe(fds) != 0)
        UBF_FATAL("pipe() failed: ", std::strerror(errno));

    // Pending stdio output would be duplicated by the fork.
    std::fflush(nullptr);

    // Hold the corpus-memo mutex across fork() so the child inherits a
    // consistent memo map and a lock its own (continuing) thread owns —
    // with --jobs N other worker threads may be mid-insert right now.
    std::unique_lock<std::mutex> memoLock;
    if (memo)
        memoLock = memo->forkLock();
    pid_t pid = ::fork();
    if (pid == 0) {
        if (memoLock.owns_lock())
            memoLock.unlock();
        ::close(fds[0]);
        runWorker(fds[1], config, unit, attempt, memo, work);
    }
    if (memoLock.owns_lock())
        memoLock.unlock();
    ::close(fds[1]);
    if (pid < 0) {
        ::close(fds[0]);
        UBF_FATAL("fork() failed: ", std::strerror(errno));
    }

    const bool hasDeadline = config.unitTimeoutMs > 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config.unitTimeoutMs);

    std::string buf;
    char chunk[4096];
    AttemptStatus status = AttemptStatus::Crash;
    for (;;) {
        if (stopRequested(stop)) {
            status = AttemptStatus::Stopped;
            break;
        }
        // Short ticks so stop requests and the deadline are both
        // noticed promptly even while the worker is silent.
        int waitMs = 50;
        if (hasDeadline) {
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
            if (left <= 0) {
                status = AttemptStatus::Timeout;
                break;
            }
            waitMs = static_cast<int>(
                std::min<long long>(waitMs, left));
        }
        struct pollfd pfd = {fds[0], POLLIN, 0};
        int pr = ::poll(&pfd, 1, waitMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break; // classified as crash: no complete frame arrived
        }
        if (pr == 0)
            continue;
        ssize_t n = ::read(fds[0], chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0) {
            // EOF. The frame decides, not the exit status: a complete,
            // checksummed frame is a result; anything less is a crash.
            status = decodeUnitFrame(buf, unit, out)
                         ? AttemptStatus::Frame
                         : AttemptStatus::Crash;
            break;
        }
        buf.append(chunk, static_cast<size_t>(n));
    }

    if (status == AttemptStatus::Timeout ||
        status == AttemptStatus::Stopped)
        ::kill(pid, SIGKILL);
    ::close(fds[0]);
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    return status;
}

#else // _WIN32

// No fork on Windows: run the unit in-process so the service still
// works, minus the isolation (the deterministic result is identical).
AttemptStatus
runAttempt(const CampaignConfig &config, int unit, int attempt,
           CorpusMemo *memo, const std::atomic<bool> *stop,
           const UnitWorkFn &work, detail::UnitOutput &out)
{
    (void)attempt;
    if (stopRequested(stop))
        return AttemptStatus::Stopped;
    out = computeUnit(config, unit, memo, work);
    return AttemptStatus::Frame;
}

#endif

} // namespace

SuperviseOutcome
superviseUnit(const CampaignConfig &config, int unit, CorpusMemo *memo,
              const std::atomic<bool> *stop, const UnitWorkFn &work)
{
    SuperviseOutcome result;
    for (int attempt = 0;; attempt++) {
        if (stopRequested(stop)) {
            result.kind = SuperviseOutcome::Kind::Aborted;
            return result;
        }
        detail::UnitOutput out;
        switch (runAttempt(config, unit, attempt, memo, stop, work,
                           out)) {
          case AttemptStatus::Frame:
            result.kind = SuperviseOutcome::Kind::Completed;
            result.out = std::move(out);
            return result;
          case AttemptStatus::Stopped:
            result.kind = SuperviseOutcome::Kind::Aborted;
            return result;
          case AttemptStatus::Crash:
            result.workerCrashes++;
            break;
          case AttemptStatus::Timeout:
            result.workerTimeouts++;
            break;
        }
        if (attempt >= config.retries) {
            result.kind = SuperviseOutcome::Kind::Quarantined;
            return result;
        }
        result.retried++;
        // Exponential backoff before the retry, in stop-aware slices.
        auto backoffEnd =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(std::min<long long>(
                5LL << std::min(attempt, 6), 250));
        while (std::chrono::steady_clock::now() < backoffEnd) {
            if (stopRequested(stop)) {
                result.kind = SuperviseOutcome::Kind::Aborted;
                return result;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
}

} // namespace ubfuzz::fuzzer
