/**
 * @file
 * The UBfuzz campaign driver (§4.1 "Testing process"): generate seeds,
 * derive UB programs, differentially test the sanitizer matrix, apply
 * crash-site mapping, and attribute findings against the injected-bug
 * ground truth.
 *
 * The same driver also runs the paper's baselines by swapping the UB
 * program source (MUSIC mutants, Csmith-NoSafe, the Juliet-like
 * corpus) — the §4.3 comparison — and the ablations (oracle off;
 * -O0-only testing).
 */

#ifndef UBFUZZ_FUZZER_FUZZER_H
#define UBFUZZ_FUZZER_FUZZER_H

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string_view>
#include <tuple>
#include <vector>

#include "compiler/compiler.h"
#include "generator/generator.h"
#include "harden/harden.h"
#include "sanitizer/bug_catalog.h"
#include "ubgen/ubgen.h"
#include "vm/vm.h"

namespace ubfuzz::fuzzer {

/**
 * Where UB programs come from (Table 4's generator column). Harden is
 * UBFuzz plus the hardening differential oracle: the same seeds, UB
 * programs, and testing matrix (the finding digest is identical), with
 * two extra phases per unit — a hardened-twin drift comparison of every
 * matrix outcome, and a deterministic fault-injection campaign on the
 * hardened clean seed.
 */
enum class SourceMode : uint8_t {
    UBFuzz,
    Music,
    CsmithNoSafe,
    Juliet,
    Harden,
};

const char *sourceModeName(SourceMode m);

/**
 * Strict inverse of sourceModeName for the CLI (`--mode`): exactly
 * "ubfuzz", "music", "nosafe", "juliet", or "harden"; anything else —
 * including prefixes and trailing junk — is std::nullopt.
 */
std::optional<SourceMode> parseSourceMode(std::string_view text);

/**
 * Deterministic in-tree fault hook for the supervised (`--isolate`)
 * execution layer — the supervisor's analogue of vm::FaultPlan. It
 * makes a chosen unit's worker misbehave on its first `attempts`
 * supervised attempts (crash before producing a result, hang past the
 * deadline, or die mid-write leaving a torn result frame), after which
 * the unit succeeds normally. Tests and the CI smoke drive the
 * retry/backoff/quarantine machinery through this instead of relying
 * on real nondeterministic failures.
 */
struct FailureInjection
{
    enum class Kind : uint8_t {
        None,     ///< no injected failure
        Crash,    ///< worker _exits before writing any result bytes
        Hang,     ///< worker blocks forever (deadline watchdog food)
        TornPipe, ///< worker writes only `tornBytes` of its frame
    };

    Kind kind = Kind::None;
    /** Campaign unit whose worker misbehaves. */
    int unit = -1;
    /** Fail the first `attempts` supervised attempts, then succeed;
     *  negative means every attempt (forces quarantine). */
    int attempts = 1;
    /** TornPipe only: result-frame bytes written before the worker
     *  dies (0 = dies before writing anything). */
    uint64_t tornBytes = 0;

    bool
    firesOn(int forUnit, int attempt) const
    {
        return kind != Kind::None && forUnit == unit &&
               (attempts < 0 || attempt < attempts);
    }

    friend bool operator==(const FailureInjection &,
                           const FailureInjection &) = default;
};

/**
 * Strict CLI parser for `--inject`: `crash:UNIT:ATTEMPTS`,
 * `hang:UNIT:ATTEMPTS`, or `torn:UNIT:ATTEMPTS:BYTES`, with UNIT >= 0
 * and ATTEMPTS >= 1 or exactly -1 ("every attempt"). Anything else —
 * unknown kinds, missing or extra fields, junk numbers — is
 * std::nullopt.
 */
std::optional<FailureInjection>
parseFailureInjection(std::string_view text);

struct CampaignConfig
{
    uint64_t seed = 1;
    /** Seed programs to process (ignored for Juliet). */
    int numSeeds = 40;
    /** UB programs per (seed, kind) for UBFuzz mode. */
    size_t capPerKind = 3;
    /** Mutants per seed for Music mode (paper: ~14). */
    int mutantsPerSeed = 14;
    SourceMode source = SourceMode::UBFuzz;
    /** Crash-site mapping on/off (ablation: accept every discrepancy). */
    bool useOracle = true;
    /** Ablation: test only at -O0 (§1: misses higher-level bugs). */
    bool onlyO0 = false;
    /** Step budget of every differential execution, plumbed end to end
     *  (runDifferential -> ExecOptions); `--step-limit` on the CLI. */
    uint64_t stepLimit = 1'000'000;
    /**
     * Worker threads sharding the seeds. Results are identical for any
     * value: every seed owns an RNG stream split from `seed`, and
     * per-seed results merge in seed order. 1 runs on the caller.
     */
    int jobs = 1;
    /**
     * Cross-seed corpus dedup: identical UB programs (same printed
     * text, kind, and UB site) replay the recorded stats of their
     * first test instead of re-running the matrix. Never changes any
     * logical statistic or the finding digest — only the work counters
     * (ExecStats) — because identical text compiles and executes
     * identically.
     */
    bool corpusDedup = true;
    /**
     * Entry caps of the campaign-wide corpus memo and the per-unit
     * bytecode cache (defaults mirror CorpusMemo::kDefaultMaxEntries
     * and vm::CodeCache::kDefaultMaxEntries). Both caches stop
     * admitting when full and recompute instead, so caps bound memory
     * without changing any logical result — tests shrink them to 4 and
     * assert the digest and stats are bit-identical, with only the
     * ExecStats cap-reject counters knowing the difference.
     */
    size_t corpusMemoCap = 16384;
    size_t codeCacheCap = 1024;
    /**
     * Harden mode: deterministic single-bit faults injected per
     * hardened clean-seed program (`--fault-rate` on the CLI). Each
     * fault's plan (step, target, bit) is drawn from the unit's RNG
     * *after* all UBFuzz draws, so the finding digest matches the
     * standard mode for any value.
     */
    int faultsPerProgram = 8;
    /** Hardening families compiled into the twins (harden::k* bits;
     *  `--harden-passes` on the CLI). */
    uint32_t hardenPasses = harden::kAllFamilies;
    /**
     * Supervised execution (`--isolate`): run every campaign unit in a
     * forked worker process that streams its stats delta and corpus
     * memo adds back over a pipe, so a crashing, hanging, or aborting
     * unit costs one retry (and eventually one quarantine record), not
     * the whole campaign. Crash-free runs are bit-identical with this
     * on or off, for any `jobs` value — the supervisor folds worker
     * results behind the same unit-order frontier the in-process path
     * uses. Like `jobs`, none of the fields below enter the journal's
     * configHash: a campaign may legally resume with different
     * supervision settings.
     */
    bool isolate = false;
    /** Per-unit wall-clock deadline in milliseconds, enforced by
     *  SIGKILL (`--unit-timeout`); 0 disables the watchdog. */
    uint64_t unitTimeoutMs = 0;
    /** Supervised re-attempts after a worker crash or timeout before
     *  the unit is quarantined (`--retries`; 0 = no retries). */
    int retries = 2;
    /** Deterministic worker-failure hook (`--inject`; tests/CI). */
    FailureInjection failureInjection;
};

/**
 * Identity of one tested (program, UB) item for corpus dedup. The
 * printed text is the compiler's entire input, so (text hash, text
 * length, kind, UB site) pin down the whole testing matrix's behavior;
 * length and site make an accidental 64-bit hash collision practically
 * impossible.
 */
struct CorpusKey
{
    uint64_t textHash = 0;
    uint64_t textLen = 0;
    ubgen::UBKind kind = ubgen::UBKind::BufferOverflowArray;
    SourceLoc ubLoc;

    auto
    tie() const
    {
        return std::make_tuple(textHash, textLen,
                               static_cast<int>(kind), ubLoc.line,
                               ubLoc.offset);
    }

    friend bool
    operator<(const CorpusKey &a, const CorpusKey &b)
    {
        return a.tie() < b.tie();
    }

    friend bool
    operator==(const CorpusKey &a, const CorpusKey &b)
    {
        return a.tie() == b.tie();
    }
};

/** One oracle-selected (program, missing-config) finding. */
struct FindingRecord
{
    ubgen::UBKind kind;
    compiler::CompilerConfig crashing;
    compiler::CompilerConfig missing;
    SourceLoc ubLoc;
    /** Ground truth: an injected bug influenced the missing binary. */
    bool groundTruthBug = false;
    int attributedBug = -1; ///< san::BugId when groundTruthBug

    /** Total order so finding sets are comparable across runs. */
    auto
    key() const
    {
        auto cc = [](const compiler::CompilerConfig &c) {
            return std::make_tuple(static_cast<int>(c.vendor), c.version,
                                   static_cast<int>(c.level),
                                   static_cast<int>(c.sanitizer));
        };
        return std::make_tuple(static_cast<int>(kind), cc(crashing),
                               cc(missing), ubLoc.line, ubLoc.offset,
                               groundTruthBug, attributedBug);
    }

    friend bool
    operator<(const FindingRecord &a, const FindingRecord &b)
    {
        return a.key() < b.key();
    }

    friend bool
    operator==(const FindingRecord &a, const FindingRecord &b)
    {
        return a.key() == b.key();
    }
};

/**
 * Hardening differential-oracle counters (Harden mode only; all zero
 * elsewhere). The CI smoke asserts `driftReports == 0` (hardening must
 * not change any observable behavior without a fault) and a detection
 * rate `faultsDetected / (faultsDetected + faultsSdc) >= 0.9` (at
 * least 90% of the observable-result-altering faults are turned into
 * HardeningFault reports).
 */
struct HardenStats
{
    /** Hardened clean-seed programs put through the fault oracle. */
    size_t programs = 0;
    size_t faultsInjected = 0;
    /** Fault runs ending in a HardeningFault report. */
    size_t faultsDetected = 0;
    /** Fault runs whose observable result equals the fault-free run. */
    size_t faultsMasked = 0;
    /** Silent data corruption: result altered, no detection. */
    size_t faultsSdc = 0;
    /** Hardened-twin vs plain outcome comparisons (drift phase). */
    size_t driftComparisons = 0;
    /** Comparisons where the hardened twin behaved differently. */
    size_t driftReports = 0;

    void
    merge(const HardenStats &o)
    {
        programs += o.programs;
        faultsInjected += o.faultsInjected;
        faultsDetected += o.faultsDetected;
        faultsMasked += o.faultsMasked;
        faultsSdc += o.faultsSdc;
        driftComparisons += o.driftComparisons;
        driftReports += o.driftReports;
    }

    friend bool operator==(const HardenStats &, const HardenStats &) =
        default;
};

struct CampaignStats
{
    /** Seed programs attempted (including unprofiled ones). */
    size_t seeds = 0;
    /**
     * Seeds whose UBGen profiling failed, so no UB program was derived
     * from them. Kept separate from `seeds` so generator-yield
     * denominators (Table 4) divide by productive seeds, not attempts.
     */
    size_t unprofiledSeeds = 0;
    /** UB programs actually tested (validated / classified). */
    size_t ubPrograms = 0;
    size_t perKind[ubgen::kNumUBKinds] = {};
    /** Generated programs that did not trigger UB (skipped). */
    size_t nonTriggering = 0;
    /** Baseline programs with no UB at all (Table 4 "No UB"). */
    size_t noUB = 0;

    size_t discrepantPrograms = 0;
    size_t oracleSelectedPrograms = 0;
    /** Individual (crash, silent) pairs examined / selected. */
    size_t verdictPairs = 0;
    size_t selectedPairs = 0;
    /** Ground-truth classification of selected pairs (RQ3 precision). */
    size_t selectedTrueBug = 0;
    size_t selectedOptimization = 0;
    /** Ground-truth classification of dropped pairs (RQ3 recall). */
    size_t droppedPairs = 0;
    size_t droppedTrueBug = 0;

    /** Distinct injected bugs found, with per-bug details. */
    std::map<san::BugId, size_t> bugFindingCounts;
    std::map<san::BugId, ubgen::UBKind> bugFirstKind;
    std::map<san::BugId, std::set<OptLevel>> bugLevels;

    /** Wrong-report findings (report produced at a wrong location). */
    size_t wrongReports = 0;
    std::set<san::BugId> wrongReportBugs;

    /** Oracle-selected discrepancies not explained by any injected
     *  bug — candidate invalid reports (the paper's Figure 8 case). */
    size_t invalidFindings = 0;

    std::vector<FindingRecord> findings; ///< capped sample

    /**
     * Staged-compiler execution counters: how many lowerings, early-opt
     * runs, and specializations the campaign actually performed. The
     * compile-once/specialize-many win is `earlyOptCacheHits` high and
     * `lowerings` equal to the number of tested programs.
     */
    compiler::CompileStats compile;

    /**
     * Execution-engine work counters (vm::ExecStats): machines built
     * (one per tested program, not one per run), resets between runs,
     * dedup skips. Like `compile`, these count work actually performed
     * — a rebuild-per-execution regression shows up here first.
     */
    vm::ExecStats exec;

    /** Differential executions that hit the step limit. */
    size_t execTimeouts = 0;
    /** Timed-out binaries excluded from discrepancy pairing. */
    size_t timeoutExcluded = 0;

    /**
     * Supervised-execution counters (`--isolate`; all zero otherwise,
     * which bench_throughput's CI smoke asserts). Crash-free runs keep
     * all four at zero, so they never perturb the digest grid; with
     * failures (real or injected) every failed attempt lands in
     * exactly one of crashes/timeouts, every re-attempt in `retried`,
     * and every abandoned unit in `quarantined` — no silent loss.
     * A quarantined unit contributes nothing else, so the accounting
     * identities (statsInvariantViolation) hold with both sides simply
     * missing its share. The counters are journaled with their unit's
     * record (quarantine records carry the failing unit's attempt
     * tally), so a resumed campaign reproduces them without re-running
     * anything.
     */
    size_t workerCrashes = 0;  ///< attempts dead before a complete frame
    size_t workerTimeouts = 0; ///< attempts SIGKILLed at the deadline
    size_t retried = 0;        ///< re-attempts after a crash/timeout
    size_t quarantined = 0;    ///< units abandoned after retry exhaustion

    /** Hardening-oracle counters (Harden mode; zero elsewhere). */
    HardenStats harden;

    /**
     * Corpus identity multiset of this campaign (unit): every tested
     * item's CorpusKey with its occurrence count. Units carry their own
     * seen-sets; mergeCampaignStats folds them in seed order, counting
     * occurrences of already-seen keys into `corpusDuplicates` — which
     * keeps the cross-seed accounting bit-identical for any `--jobs`.
     */
    std::map<CorpusKey, size_t> corpusSeen;
    /** Tested items whose key was already seen by an earlier item. */
    size_t corpusDuplicates = 0;

    size_t distinctBugsFound() const { return bugFindingCounts.size(); }

    /** Distinct (text, kind, site) identities tested this campaign. */
    size_t uniquePrograms() const { return corpusSeen.size(); }

    /** Seeds that produced at least a profile (Table 4 denominator). */
    size_t
    productiveSeeds() const
    {
        return seeds - unprofiledSeeds;
    }

    /** Exact structural equality, every field — what the campaign
     *  store's replay tests compare (a journaled campaign must
     *  reproduce the live struct, not just the digest). */
    friend bool operator==(const CampaignStats &, const CampaignStats &) =
        default;
};

/**
 * The campaign-wide corpus memo: CorpusKey -> the complete CampaignStats
 * delta recorded when that item was first tested. A hit replays the
 * delta instead of re-running the matrix.
 *
 * Determinism: a stored delta is a pure function of its key (identical
 * printed text compiles and executes identically), so replaying is
 * bit-identical to recomputing — which is why sharing the memo across
 * concurrently running units cannot perturb any logical statistic or
 * the finding digest, regardless of scheduling. Under `--jobs 1` every
 * cross-seed duplicate hits; under `--jobs N` a duplicate being
 * computed concurrently may be recomputed (identical result, slightly
 * less work saved). Only the work counters (ExecStats) reflect that
 * difference.
 */
class CorpusMemo
{
  public:
    /** What CorpusMemo::insert did with the entry. */
    enum class Insert : uint8_t {
        Inserted,       ///< new key admitted
        AlreadyPresent, ///< first insertion won earlier
        CapFull,        ///< memo stopped admitting at its cap
    };

    /** Default memory bound: ~16k retained per-item deltas at most. */
    static constexpr size_t kDefaultMaxEntries = 16384;

    explicit CorpusMemo(size_t maxEntries = kDefaultMaxEntries)
        : maxEntries_(maxEntries)
    {
    }

    /** The recorded delta for @p key, or nullptr. */
    std::shared_ptr<const CampaignStats>
    find(const CorpusKey &key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : it->second;
    }

    /**
     * Record @p delta for @p key; the first insertion wins, and the
     * memo stops admitting new keys at its cap so a huge campaign
     * cannot grow it without bound (a refused-by-cap duplicate is
     * simply recomputed — identical results, a little less work
     * saved; the O(jobs) peak of the orchestrator's fold is intact).
     * The return value tells the caller which case happened, so the
     * campaign can journal its own contributions and count cap
     * rejections.
     */
    Insert
    insert(const CorpusKey &key,
           std::shared_ptr<const CampaignStats> delta)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (map_.count(key))
            return Insert::AlreadyPresent;
        if (map_.size() >= maxEntries_)
            return Insert::CapFull;
        map_.emplace(key, std::move(delta));
        return Insert::Inserted;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return map_.size();
    }

    /**
     * Lock to hold across fork(). A worker child inherits the memo by
     * copy-on-write; if another campaign thread held `mu_` at the fork
     * moment, the child's copy of the mutex would be locked forever
     * (its owner does not exist there) and the map possibly mid-update.
     * The supervisor takes this lock, forks, and releases it on both
     * sides — the forking thread continues in the child, so the child
     * releases a lock it legitimately owns and sees a consistent map.
     */
    std::unique_lock<std::mutex>
    forkLock()
    {
        return std::unique_lock<std::mutex>(mu_);
    }

  private:
    size_t maxEntries_;
    mutable std::mutex mu_;
    std::map<CorpusKey, std::shared_ptr<const CampaignStats>> map_;
};

/**
 * Run one campaign, sharded across `config.jobs` workers. Deterministic
 * in the config; `jobs` never changes the result, only the wall clock.
 */
CampaignStats runCampaign(const CampaignConfig &config);

/** Map a ground-truth report to the UB kind taxonomy. */
ubgen::UBKind kindOfReport(vm::ReportKind r);

/**
 * Order-independent digest of a campaign's findings (FNV-1a over the
 * sorted records). The cross-PR invariant: the digest is identical for
 * every `--jobs` value and unchanged by corpus dedup; bench_throughput
 * prints it and CI asserts it.
 */
uint64_t findingsDigest(const CampaignStats &stats);

/**
 * Check the cross-layer accounting invariants that must survive any
 * combination of journal replay, resume, and shard merge (they are
 * per-unit identities, so any in-order fold of unit deltas preserves
 * them): `lowerings == productive seeds + delta fallbacks`,
 * `executions == translations + translation hits`, and
 * `machines built + corpus replays == ub programs + hardened fault
 * programs`. Returns an empty
 * string when all hold, else a description of the first violation —
 * the campaign service panics on it after every replay-involved run,
 * so stats-accounting drift on resume fails loudly instead of
 * corrupting merged totals silently.
 */
std::string statsInvariantViolation(const CampaignStats &stats);

namespace detail {

/** Independent units a campaign shards over (seeds or Juliet cases). */
int campaignUnitCount(const CampaignConfig &config);

/** Run unit @p index on its own RNG stream split from `config.seed`.
 *  @p memo is the campaign's shared corpus memo (may be null). */
CampaignStats runCampaignUnit(const CampaignConfig &config, int index,
                              CorpusMemo *memo = nullptr);

/**
 * Everything one completed unit contributes, in journalable form: its
 * stats delta plus the corpus-memo entries it was the first to record
 * (so a resumed campaign can re-populate the memo and keep deduping
 * against units it never re-ran).
 */
struct UnitOutput
{
    CampaignStats stats;
    std::vector<std::pair<CorpusKey, std::shared_ptr<const CampaignStats>>>
        memoAdds;
};

/** runCampaignUnit, additionally recording the unit's memo
 *  contributions — the journaling entry point. */
UnitOutput runCampaignUnitRecorded(const CampaignConfig &config,
                                   int index, CorpusMemo *memo);

/**
 * Fold @p from into @p into. Folding unit stats in increasing index
 * order reproduces a sequential run exactly (findings cap, first-kind
 * attribution), which is what makes sharding merge-order-independent.
 */
void mergeCampaignStats(CampaignStats &into, CampaignStats &&from);

} // namespace detail

} // namespace ubfuzz::fuzzer

#endif // UBFUZZ_FUZZER_FUZZER_H
