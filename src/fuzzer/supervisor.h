/**
 * @file
 * Supervised (fork-isolated) execution of campaign units.
 *
 * The campaign service's `--isolate` mode runs every unit in a forked
 * worker process. The worker computes the unit exactly as the
 * in-process path would (same RNG stream, same corpus-memo snapshot)
 * and streams its result — the CampaignStats delta plus the corpus
 * memo entries it was the first to record — back over a pipe as one
 * checksummed frame:
 *
 *   frame:    payload length u32 | FNV-1a(payload) u64 | payload
 *   payload:  unit index u32 | CampaignStats delta
 *             | memo-add count u32 | (CorpusKey, CampaignStats)*
 *
 * This is the journal's record discipline (campaign/store) applied to
 * IPC: the supervisor folds a worker's delta only after the whole
 * frame arrived and its checksum and decode both passed, so a worker
 * that dies mid-write — at any byte offset — contributes nothing, the
 * same way a torn journal tail replays nothing. A dead, hung (past the
 * `--unit-timeout` deadline, enforced by SIGKILL), or torn worker is
 * retried with exponential backoff up to `--retries` times; a unit
 * that exhausts its retries is quarantined — the campaign completes
 * without it and records why.
 *
 * Determinism: a worker is a fork of the supervisor, so a crash-free
 * unit computes bit-identically to the in-process path, and the
 * supervisor folds results behind the same unit-order frontier — the
 * standard digest is invariant across `--isolate` on/off and any
 * `--jobs` value.
 */

#ifndef UBFUZZ_FUZZER_SUPERVISOR_H
#define UBFUZZ_FUZZER_SUPERVISOR_H

#include <atomic>
#include <functional>
#include <string>
#include <string_view>

#include "fuzzer/fuzzer.h"

namespace ubfuzz::fuzzer {

/** @{ Worker result-frame codec, shared by the supervisor, the worker,
 *  and the torn-IPC test grid. Encoding is the support/serialize
 *  little-endian codec; decode accepts exactly one complete,
 *  checksummed frame for the expected unit and rejects everything
 *  else — a truncation at any byte offset, a flipped byte, trailing
 *  garbage, or another unit's frame. */
std::string encodeUnitFrame(int unit, const detail::UnitOutput &out);
bool decodeUnitFrame(std::string_view bytes, int expectedUnit,
                     detail::UnitOutput &out);
/** @} */

/** What supervising one unit produced. */
struct SuperviseOutcome
{
    enum class Kind : uint8_t {
        /** A worker attempt returned a complete frame; `out` is its
         *  result (bit-identical to an in-process run of the unit). */
        Completed,
        /** Every attempt crashed, hung, or tore its frame; the unit
         *  contributes only a quarantine record. */
        Quarantined,
        /** A stop request arrived mid-supervision; the live worker was
         *  killed and the unit is simply not run (it re-runs on
         *  resume). Counters still report the attempts made. */
        Aborted,
    };

    Kind kind = Kind::Completed;
    detail::UnitOutput out; ///< valid only for Completed

    /** Attempt accounting: every failed attempt is exactly one crash
     *  or one timeout, and every re-attempt after a failure is one
     *  retry — `workerCrashes + workerTimeouts == retried` for a
     *  Completed outcome and `retried + 1` for a Quarantined one. */
    size_t workerCrashes = 0;
    size_t workerTimeouts = 0;
    size_t retried = 0;
};

/**
 * The unit body a worker runs; tests substitute a cheap deterministic
 * one to grid-test the IPC/retry machinery without recomputing real
 * units. Defaults to detail::runCampaignUnitRecorded.
 */
using UnitWorkFn = std::function<detail::UnitOutput(
    const CampaignConfig &, int unit, CorpusMemo *)>;

/**
 * Run unit @p unit in a forked, deadline-watched worker and return its
 * result, retrying per @p config (unitTimeoutMs, retries,
 * failureInjection). @p memo is the supervisor's corpus memo: the
 * worker inherits a consistent snapshot across fork (CorpusMemo's fork
 * lock), and the supervisor — not the worker — owns re-inserting the
 * returned memo adds. @p stop may be null; when it flips, the live
 * worker is SIGKILLed and the outcome is Aborted.
 */
SuperviseOutcome superviseUnit(const CampaignConfig &config, int unit,
                               CorpusMemo *memo,
                               const std::atomic<bool> *stop = nullptr,
                               const UnitWorkFn &work = {});

} // namespace ubfuzz::fuzzer

#endif // UBFUZZ_FUZZER_SUPERVISOR_H
