#include "support/parse_num.h"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace ubfuzz::support {

namespace {

/** Shape check: optional '-' (signed only), then one or more digits.
 *  strtol's own laxness (leading whitespace, '+', "0x") is rejected
 *  here so the two strto* calls below only ever see clean input. */
bool
wellFormed(std::string_view text, bool allowNegative)
{
    size_t i = 0;
    if (allowNegative && i < text.size() && text[i] == '-')
        i++;
    if (i >= text.size())
        return false;
    for (; i < text.size(); i++)
        if (text[i] < '0' || text[i] > '9')
            return false;
    return true;
}

} // namespace

std::optional<int64_t>
parseInt64(std::string_view text, int64_t min, int64_t max)
{
    if (!wellFormed(text, /*allowNegative=*/true))
        return std::nullopt;
    std::string buf(text); // strtoll needs a terminated string
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 10);
    if (errno == ERANGE || end != buf.c_str() + buf.size())
        return std::nullopt;
    int64_t value = static_cast<int64_t>(v);
    if (value < min || value > max)
        return std::nullopt;
    return value;
}

std::optional<uint64_t>
parseUint64(std::string_view text, uint64_t min, uint64_t max)
{
    if (!wellFormed(text, /*allowNegative=*/false))
        return std::nullopt;
    std::string buf(text);
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
    if (errno == ERANGE || end != buf.c_str() + buf.size())
        return std::nullopt;
    uint64_t value = static_cast<uint64_t>(v);
    if (value < min || value > max)
        return std::nullopt;
    return value;
}

std::optional<int>
parseInt(std::string_view text, int min, int max)
{
    auto v = parseInt64(text, min, max);
    if (!v)
        return std::nullopt;
    return static_cast<int>(*v);
}

std::optional<std::pair<int, int>>
parseShard(std::string_view text)
{
    size_t slash = text.find('/');
    if (slash == std::string_view::npos ||
        text.find('/', slash + 1) != std::string_view::npos)
        return std::nullopt;
    // Parse the count first so the index can be windowed to [1, count]
    // in one parseInt call — "5/4" fails the same way "0/4" does.
    auto count = parseInt(text.substr(slash + 1), 1);
    if (!count)
        return std::nullopt;
    auto index = parseInt(text.substr(0, slash), 1, *count);
    if (!index)
        return std::nullopt;
    return std::make_pair(*index, *count);
}

} // namespace ubfuzz::support
