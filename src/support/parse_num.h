/**
 * @file
 * Strict base-10 number parsing for CLI flags and environment knobs.
 *
 * Every harness in this repository used to hand-roll strtol/strtoull
 * parsing, and every copy had the same two holes: overflow clamped
 * silently (strtol sets errno=ERANGE and returns LONG_MAX, so
 * `--seeds 99999999999` truncated through an int cast instead of
 * aborting) and range policy was ad hoc (`--jobs -4` parsed fine).
 * These helpers are the one shared implementation: they accept exactly
 * `-?[0-9]+` (sign only for the signed variant), check errno, and
 * enforce an inclusive [min, max] window — anything else is a parse
 * failure the caller must turn into a usage error, never a clamped or
 * truncated value.
 */

#ifndef UBFUZZ_SUPPORT_PARSE_NUM_H
#define UBFUZZ_SUPPORT_PARSE_NUM_H

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <utility>

namespace ubfuzz::support {

/** Parse a signed decimal integer in [min, max]; nullopt on garbage,
 *  trailing junk, overflow (ERANGE), or out-of-window values. */
std::optional<int64_t>
parseInt64(std::string_view text,
           int64_t min = std::numeric_limits<int64_t>::min(),
           int64_t max = std::numeric_limits<int64_t>::max());

/** Unsigned variant: additionally rejects a leading '-' (strtoull
 *  would happily wrap "-4" to 18446744073709551612). */
std::optional<uint64_t>
parseUint64(std::string_view text, uint64_t min = 0,
            uint64_t max = std::numeric_limits<uint64_t>::max());

/** Convenience for int-typed flags: parseInt64 windowed to int. */
std::optional<int>
parseInt(std::string_view text,
         int min = std::numeric_limits<int>::min(),
         int max = std::numeric_limits<int>::max());

/**
 * Parse a 1-based shard spec "i/N" (the `--shard` flag): exactly one
 * '/', both sides strict decimal integers, 1 <= i <= N. Everything
 * else — "0/4" (shards are 1-based), "5/4" (index past the count),
 * "2/0" (no shards), "2/", "/4", "2/4/8", "2x4" — is nullopt. Returns
 * {index, count}.
 */
std::optional<std::pair<int, int>> parseShard(std::string_view text);

} // namespace ubfuzz::support

#endif // UBFUZZ_SUPPORT_PARSE_NUM_H
