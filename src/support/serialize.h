/**
 * @file
 * Versioned, endian-fixed binary serialization for campaign state.
 *
 * The campaign service journals one record per completed unit to disk
 * and replays it on resume — across processes, machines, and PRs — so
 * the byte format must be pinned, not "whatever the host ABI does".
 * The codec here is explicit little-endian with fixed-width fields,
 * written byte by byte (shifts, never memcpy of host integers), so the
 * same struct serializes to the same bytes on every platform. The
 * format carries a version (kSerializeFormatVersion, embedded in the
 * journal manifest) and test_serialize pins the exact bytes of a known
 * CampaignStats with a golden test: any accidental format change
 * breaks a test before it breaks a stored campaign.
 *
 * On top of the codec sit serialize/deserialize pairs for the campaign
 * state that crosses process boundaries: fuzzer::CampaignStats
 * (including compiler::CompileStats and vm::ExecStats), findings
 * (fuzzer::FindingRecord), and corpus-memo entries — all keyed by the
 * existing (textHash, length, kind, site) identity (fuzzer::CorpusKey)
 * and ir::BinaryKey identities. Deserialization is bounds-checked and
 * total: torn or corrupt input flips the reader's fail flag instead of
 * reading out of bounds, which is what the store's truncated-tail
 * recovery is built on.
 */

#ifndef UBFUZZ_SUPPORT_SERIALIZE_H
#define UBFUZZ_SUPPORT_SERIALIZE_H

#include <cstdint>
#include <string>
#include <string_view>

namespace ubfuzz {

namespace fuzzer {
struct CampaignStats;
struct FindingRecord;
struct CorpusKey;
} // namespace fuzzer

namespace ir {
struct BinaryKey;
}

namespace support {

/**
 * Bump on any change to the byte layout of the serializers below. The
 * campaign store writes it into every journal manifest and refuses to
 * replay a journal from a different format version.
 */
inline constexpr uint32_t kSerializeFormatVersion = 4;

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; i++)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    /** u32 length prefix + raw bytes. */
    void
    str(std::string_view s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buf_.append(s.data(), s.size());
    }

    const std::string &data() const { return buf_; }
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked little-endian reader over a byte view. A read past
 * the end (or a failed expectation) sets the sticky fail flag and
 * returns a zero value; callers check ok() once at the end instead of
 * after every field.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : data_(data) {}

    bool ok() const { return ok_; }
    size_t remaining() const { return data_.size() - pos_; }
    size_t pos() const { return pos_; }

    uint8_t
    u8()
    {
        if (pos_ + 1 > data_.size()) {
            ok_ = false;
            return 0;
        }
        return static_cast<uint8_t>(data_[pos_++]);
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(u8()) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(u8()) << (8 * i);
        return v;
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }

    bool
    b()
    {
        uint8_t v = u8();
        if (v > 1)
            ok_ = false;
        return v == 1;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        if (pos_ + n > data_.size()) {
            ok_ = false;
            return {};
        }
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    /** Fail unless the next bytes equal @p expected (consumed either way). */
    void
    expectU64(uint64_t expected)
    {
        if (u64() != expected)
            ok_ = false;
    }

  private:
    std::string_view data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** FNV-1a over @p bytes — the journal's record checksum. */
uint64_t fnv1a(std::string_view bytes);

/** @{ Campaign-state serializers. Deserializers return the reader's
 *  ok(): false means torn/corrupt input, and the output value must
 *  not be used. */
void serialize(ByteWriter &w, const ir::BinaryKey &key);
bool deserialize(ByteReader &r, ir::BinaryKey &key);

void serialize(ByteWriter &w, const fuzzer::CorpusKey &key);
bool deserialize(ByteReader &r, fuzzer::CorpusKey &key);

void serialize(ByteWriter &w, const fuzzer::FindingRecord &rec);
bool deserialize(ByteReader &r, fuzzer::FindingRecord &rec);

void serialize(ByteWriter &w, const fuzzer::CampaignStats &stats);
bool deserialize(ByteReader &r, fuzzer::CampaignStats &stats);
/** @} */

} // namespace support
} // namespace ubfuzz

#endif // UBFUZZ_SUPPORT_SERIALIZE_H
