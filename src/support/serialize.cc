#include "support/serialize.h"

#include "fuzzer/fuzzer.h"
#include "ir/ir.h"

namespace ubfuzz::support {

uint64_t
fnv1a(std::string_view bytes)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : bytes)
        h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
    return h;
}

namespace {

void
putLoc(ByteWriter &w, const SourceLoc &loc)
{
    w.i32(loc.line);
    w.i32(loc.offset);
}

void
getLoc(ByteReader &r, SourceLoc &loc)
{
    loc.line = r.i32();
    loc.offset = r.i32();
}

void
putConfig(ByteWriter &w, const compiler::CompilerConfig &c)
{
    w.u8(static_cast<uint8_t>(c.vendor));
    w.i32(c.version);
    w.u8(static_cast<uint8_t>(c.level));
    w.u8(static_cast<uint8_t>(c.sanitizer));
    w.u32(c.harden);
}

void
getConfig(ByteReader &r, compiler::CompilerConfig &c)
{
    c.vendor = static_cast<Vendor>(r.u8());
    c.version = r.i32();
    c.level = static_cast<OptLevel>(r.u8());
    c.sanitizer = static_cast<SanitizerKind>(r.u8());
    c.harden = r.u32();
}

} // namespace

void
serialize(ByteWriter &w, const ir::BinaryKey &key)
{
    w.u64(key.hash);
    w.u64(key.len);
}

bool
deserialize(ByteReader &r, ir::BinaryKey &key)
{
    key.hash = r.u64();
    key.len = r.u64();
    return r.ok();
}

void
serialize(ByteWriter &w, const fuzzer::CorpusKey &key)
{
    w.u64(key.textHash);
    w.u64(key.textLen);
    w.u8(static_cast<uint8_t>(key.kind));
    putLoc(w, key.ubLoc);
}

bool
deserialize(ByteReader &r, fuzzer::CorpusKey &key)
{
    key.textHash = r.u64();
    key.textLen = r.u64();
    key.kind = static_cast<ubgen::UBKind>(r.u8());
    getLoc(r, key.ubLoc);
    return r.ok();
}

void
serialize(ByteWriter &w, const fuzzer::FindingRecord &rec)
{
    w.u8(static_cast<uint8_t>(rec.kind));
    putConfig(w, rec.crashing);
    putConfig(w, rec.missing);
    putLoc(w, rec.ubLoc);
    w.b(rec.groundTruthBug);
    w.i32(rec.attributedBug);
}

bool
deserialize(ByteReader &r, fuzzer::FindingRecord &rec)
{
    rec.kind = static_cast<ubgen::UBKind>(r.u8());
    getConfig(r, rec.crashing);
    getConfig(r, rec.missing);
    getLoc(r, rec.ubLoc);
    rec.groundTruthBug = r.b();
    rec.attributedBug = r.i32();
    return r.ok();
}

void
serialize(ByteWriter &w, const fuzzer::CampaignStats &s)
{
    w.u64(s.seeds);
    w.u64(s.unprofiledSeeds);
    w.u64(s.ubPrograms);
    w.u32(static_cast<uint32_t>(ubgen::kNumUBKinds));
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++)
        w.u64(s.perKind[k]);
    w.u64(s.nonTriggering);
    w.u64(s.noUB);
    w.u64(s.discrepantPrograms);
    w.u64(s.oracleSelectedPrograms);
    w.u64(s.verdictPairs);
    w.u64(s.selectedPairs);
    w.u64(s.selectedTrueBug);
    w.u64(s.selectedOptimization);
    w.u64(s.droppedPairs);
    w.u64(s.droppedTrueBug);

    w.u32(static_cast<uint32_t>(s.bugFindingCounts.size()));
    for (const auto &[id, n] : s.bugFindingCounts) {
        w.u8(static_cast<uint8_t>(id));
        w.u64(n);
    }
    w.u32(static_cast<uint32_t>(s.bugFirstKind.size()));
    for (const auto &[id, kind] : s.bugFirstKind) {
        w.u8(static_cast<uint8_t>(id));
        w.u8(static_cast<uint8_t>(kind));
    }
    w.u32(static_cast<uint32_t>(s.bugLevels.size()));
    for (const auto &[id, levels] : s.bugLevels) {
        w.u8(static_cast<uint8_t>(id));
        w.u32(static_cast<uint32_t>(levels.size()));
        for (OptLevel l : levels)
            w.u8(static_cast<uint8_t>(l));
    }

    w.u64(s.wrongReports);
    w.u32(static_cast<uint32_t>(s.wrongReportBugs.size()));
    for (san::BugId id : s.wrongReportBugs)
        w.u8(static_cast<uint8_t>(id));
    w.u64(s.invalidFindings);

    w.u32(static_cast<uint32_t>(s.findings.size()));
    for (const auto &rec : s.findings)
        serialize(w, rec);

    w.u64(s.compile.lowerings);
    w.u64(s.compile.deltaLowerings);
    w.u64(s.compile.deltaFallbacks);
    w.u64(s.compile.earlyOptRuns);
    w.u64(s.compile.earlyOptCacheHits);
    w.u64(s.compile.specializations);
    w.u64(s.compile.traceExecutions);

    w.u64(s.exec.machinesBuilt);
    w.u64(s.exec.resets);
    w.u64(s.exec.executions);
    w.u64(s.exec.translations);
    w.u64(s.exec.translationHits);
    w.u64(s.exec.dedupSkips);
    w.u64(s.exec.corpusSkips);
    w.u64(s.exec.corpusCapRejects);
    w.u64(s.exec.translationCapRejects);
    w.u64(s.exec.quickenedTranslations);
    w.u64(s.exec.fusedRecords);
    w.u64(s.exec.faultInjections);

    w.u64(s.execTimeouts);
    w.u64(s.timeoutExcluded);

    w.u32(static_cast<uint32_t>(s.corpusSeen.size()));
    for (const auto &[key, n] : s.corpusSeen) {
        serialize(w, key);
        w.u64(n);
    }
    w.u64(s.corpusDuplicates);

    w.u64(s.harden.programs);
    w.u64(s.harden.faultsInjected);
    w.u64(s.harden.faultsDetected);
    w.u64(s.harden.faultsMasked);
    w.u64(s.harden.faultsSdc);
    w.u64(s.harden.driftComparisons);
    w.u64(s.harden.driftReports);

    w.u64(s.workerCrashes);
    w.u64(s.workerTimeouts);
    w.u64(s.retried);
    w.u64(s.quarantined);
}

bool
deserialize(ByteReader &r, fuzzer::CampaignStats &s)
{
    s = fuzzer::CampaignStats{};
    s.seeds = r.u64();
    s.unprofiledSeeds = r.u64();
    s.ubPrograms = r.u64();
    uint32_t kinds = r.u32();
    if (kinds != ubgen::kNumUBKinds)
        return false;
    for (size_t k = 0; k < ubgen::kNumUBKinds; k++)
        s.perKind[k] = r.u64();
    s.nonTriggering = r.u64();
    s.noUB = r.u64();
    s.discrepantPrograms = r.u64();
    s.oracleSelectedPrograms = r.u64();
    s.verdictPairs = r.u64();
    s.selectedPairs = r.u64();
    s.selectedTrueBug = r.u64();
    s.selectedOptimization = r.u64();
    s.droppedPairs = r.u64();
    s.droppedTrueBug = r.u64();

    for (uint32_t i = 0, n = r.u32(); i < n && r.ok(); i++) {
        san::BugId id = static_cast<san::BugId>(r.u8());
        s.bugFindingCounts[id] = r.u64();
    }
    for (uint32_t i = 0, n = r.u32(); i < n && r.ok(); i++) {
        san::BugId id = static_cast<san::BugId>(r.u8());
        s.bugFirstKind[id] = static_cast<ubgen::UBKind>(r.u8());
    }
    for (uint32_t i = 0, n = r.u32(); i < n && r.ok(); i++) {
        san::BugId id = static_cast<san::BugId>(r.u8());
        auto &levels = s.bugLevels[id];
        for (uint32_t j = 0, m = r.u32(); j < m && r.ok(); j++)
            levels.insert(static_cast<OptLevel>(r.u8()));
    }

    s.wrongReports = r.u64();
    for (uint32_t i = 0, n = r.u32(); i < n && r.ok(); i++)
        s.wrongReportBugs.insert(static_cast<san::BugId>(r.u8()));
    s.invalidFindings = r.u64();

    for (uint32_t i = 0, n = r.u32(); i < n && r.ok(); i++) {
        fuzzer::FindingRecord rec;
        if (!deserialize(r, rec))
            return false;
        s.findings.push_back(rec);
    }

    s.compile.lowerings = r.u64();
    s.compile.deltaLowerings = r.u64();
    s.compile.deltaFallbacks = r.u64();
    s.compile.earlyOptRuns = r.u64();
    s.compile.earlyOptCacheHits = r.u64();
    s.compile.specializations = r.u64();
    s.compile.traceExecutions = r.u64();

    s.exec.machinesBuilt = r.u64();
    s.exec.resets = r.u64();
    s.exec.executions = r.u64();
    s.exec.translations = r.u64();
    s.exec.translationHits = r.u64();
    s.exec.dedupSkips = r.u64();
    s.exec.corpusSkips = r.u64();
    s.exec.corpusCapRejects = r.u64();
    s.exec.translationCapRejects = r.u64();
    s.exec.quickenedTranslations = r.u64();
    s.exec.fusedRecords = r.u64();
    s.exec.faultInjections = r.u64();

    s.execTimeouts = r.u64();
    s.timeoutExcluded = r.u64();

    for (uint32_t i = 0, n = r.u32(); i < n && r.ok(); i++) {
        fuzzer::CorpusKey key;
        if (!deserialize(r, key))
            return false;
        s.corpusSeen[key] = r.u64();
    }
    s.corpusDuplicates = r.u64();

    s.harden.programs = r.u64();
    s.harden.faultsInjected = r.u64();
    s.harden.faultsDetected = r.u64();
    s.harden.faultsMasked = r.u64();
    s.harden.faultsSdc = r.u64();
    s.harden.driftComparisons = r.u64();
    s.harden.driftReports = r.u64();

    s.workerCrashes = r.u64();
    s.workerTimeouts = r.u64();
    s.retried = r.u64();
    s.quarantined = r.u64();
    return r.ok();
}

} // namespace ubfuzz::support
