/**
 * @file
 * Structural coverage registry for the compiler's own code.
 *
 * The paper's Table 5 measures Gcov line/function/branch coverage of the
 * sanitizer-related source files in GCC and LLVM while compiling different
 * program corpora. Our substitute instruments the optimizer and sanitizer
 * passes of the simulated compilers with explicit coverage sites:
 *
 *   - UBF_COV_DECLARE(id, "group.name")          declares a line site
 *   - UBF_COV_DECLARE_FUNC(id, "group.name")     declares a function site
 *   - UBF_COV_DECLARE_BRANCH(id, "group.name")   declares a branch site
 *   - UBF_COV_HIT(id) / UBF_COV_BRANCH(id, cond) record execution
 *
 * Sites register themselves at static-initialization time, so the total
 * universe of sites is known before anything runs — exactly what a
 * percentage needs. Group prefixes ("gcc.asan", "llvm.ubsan", ...) let
 * reports slice the universe per simulated vendor, mirroring the paper's
 * per-compiler columns.
 */

#ifndef UBFUZZ_SUPPORT_COVERAGE_H
#define UBFUZZ_SUPPORT_COVERAGE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ubfuzz {

/** The three coverage metrics of Table 5. */
enum class CovKind { Line, Function, Branch };

class CoverageRegistry;

/** A single instrumented site; self-registers on construction. */
class CovSite
{
  public:
    CovSite(const char *name, CovKind kind);

    const char *name() const { return name_; }
    CovKind kind() const { return kind_; }

    /**
     * Record execution (for Line/Function sites). Counters are atomic
     * because campaign workers run compiler passes concurrently;
     * relaxed ordering suffices — totals are read only after the pool
     * has joined.
     */
    void hit() { hits_.fetch_add(1, std::memory_order_relaxed); }

    /** Record a branch outcome (for Branch sites). */
    void
    branch(bool taken)
    {
        if (taken)
            trueHits_.fetch_add(1, std::memory_order_relaxed);
        else
            falseHits_.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

    uint64_t
    trueHits() const
    {
        return trueHits_.load(std::memory_order_relaxed);
    }

    uint64_t
    falseHits() const
    {
        return falseHits_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        hits_.store(0, std::memory_order_relaxed);
        trueHits_.store(0, std::memory_order_relaxed);
        falseHits_.store(0, std::memory_order_relaxed);
    }

  private:
    const char *name_;
    CovKind kind_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> trueHits_{0};
    std::atomic<uint64_t> falseHits_{0};
};

/** Aggregated coverage numbers for one slice of the site universe. */
struct CovReport
{
    uint64_t lineTotal = 0;
    uint64_t lineHit = 0;
    uint64_t funcTotal = 0;
    uint64_t funcHit = 0;
    /** Branch arms: two per branch site. */
    uint64_t branchTotal = 0;
    uint64_t branchHit = 0;

    double linePct() const;
    double funcPct() const;
    double branchPct() const;
    std::string str() const;
};

/** Process-wide registry of all coverage sites. */
class CoverageRegistry
{
  public:
    static CoverageRegistry &instance();

    void registerSite(CovSite *site);

    /** Clear all hit counters (site universe is unchanged). */
    void resetHits();

    /**
     * Aggregate all sites whose name starts with @p prefix
     * (empty prefix = everything).
     */
    CovReport report(const std::string &prefix) const;

    /** Names of all registered sites (for tests). */
    std::vector<std::string> siteNames() const;

  private:
    CoverageRegistry() = default;
    std::vector<CovSite *> sites_;
};

} // namespace ubfuzz

/**
 * Declaration macros. Use at namespace scope in a .cc file; the site
 * object registers itself before main() runs.
 */
#define UBF_COV_DECLARE(id, name)                                          \
    static ::ubfuzz::CovSite id(name, ::ubfuzz::CovKind::Line)
#define UBF_COV_DECLARE_FUNC(id, name)                                     \
    static ::ubfuzz::CovSite id(name, ::ubfuzz::CovKind::Function)
#define UBF_COV_DECLARE_BRANCH(id, name)                                   \
    static ::ubfuzz::CovSite id(name, ::ubfuzz::CovKind::Branch)

#define UBF_COV_HIT(id) (id).hit()
#define UBF_COV_BRANCH(id, cond) (id).branch((cond))

#endif // UBFUZZ_SUPPORT_COVERAGE_H
