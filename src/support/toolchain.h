/**
 * @file
 * Cross-cutting toolchain enums: the two simulated compiler vendors, the
 * optimization levels the paper tests (-O0, -O1, -Os, -O2, -O3), and the
 * three sanitizers (Table 2). MSan is LLVM-only, as in the paper.
 */

#ifndef UBFUZZ_SUPPORT_TOOLCHAIN_H
#define UBFUZZ_SUPPORT_TOOLCHAIN_H

#include <array>
#include <cstdint>
#include <string>

namespace ubfuzz {

enum class Vendor : uint8_t { GCC, LLVM };

inline const char *
vendorName(Vendor v)
{
    return v == Vendor::GCC ? "gcc" : "llvm";
}

enum class OptLevel : uint8_t { O0, O1, Os, O2, O3 };

inline const char *
optLevelName(OptLevel l)
{
    switch (l) {
      case OptLevel::O0: return "-O0";
      case OptLevel::O1: return "-O1";
      case OptLevel::Os: return "-Os";
      case OptLevel::O2: return "-O2";
      case OptLevel::O3: return "-O3";
    }
    return "?";
}

/** All levels in the paper's testing matrix (§4.1). */
inline constexpr std::array<OptLevel, 5> kAllOptLevels = {
    OptLevel::O0, OptLevel::O1, OptLevel::Os, OptLevel::O2, OptLevel::O3,
};

/** Is `a` at least as aggressive as `b`? (Os sits between O1 and O2.) */
inline bool
optAtLeast(OptLevel a, OptLevel b)
{
    return static_cast<int>(a) >= static_cast<int>(b);
}

enum class SanitizerKind : uint8_t { None, ASan, UBSan, MSan };

inline const char *
sanitizerName(SanitizerKind s)
{
    switch (s) {
      case SanitizerKind::None: return "none";
      case SanitizerKind::ASan: return "asan";
      case SanitizerKind::UBSan: return "ubsan";
      case SanitizerKind::MSan: return "msan";
    }
    return "?";
}

/** Does this vendor ship this sanitizer? (GCC has no MSan — §4.1.) */
inline bool
vendorSupports(Vendor v, SanitizerKind s)
{
    if (s == SanitizerKind::MSan)
        return v == Vendor::LLVM;
    return true;
}

/**
 * Simulated release history. Stable versions are GCC 5..13 and LLVM
 * 5..17; the campaign always tests "trunk" (one past the last stable),
 * matching the paper's setup of testing development versions. Figure 9
 * and 10 use the per-version bug activity windows.
 */
inline int
firstStableVersion(Vendor)
{
    return 5;
}

inline int
lastStableVersion(Vendor v)
{
    return v == Vendor::GCC ? 13 : 17;
}

inline int
trunkVersion(Vendor v)
{
    return lastStableVersion(v) + 1;
}

/** Release year of a version (GCC 5 = 2015, LLVM 5 = 2017; ~1/year). */
inline int
releaseYear(Vendor v, int version)
{
    return v == Vendor::GCC ? 2010 + version : 2012 + version;
}

} // namespace ubfuzz

#endif // UBFUZZ_SUPPORT_TOOLCHAIN_H
