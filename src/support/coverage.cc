#include "support/coverage.h"

#include <cstring>
#include <sstream>

namespace ubfuzz {

CovSite::CovSite(const char *name, CovKind kind) : name_(name), kind_(kind)
{
    CoverageRegistry::instance().registerSite(this);
}

double
CovReport::linePct()
const
{
    return lineTotal ? 100.0 * lineHit / lineTotal : 0.0;
}

double
CovReport::funcPct()
const
{
    return funcTotal ? 100.0 * funcHit / funcTotal : 0.0;
}

double
CovReport::branchPct()
const
{
    return branchTotal ? 100.0 * branchHit / branchTotal : 0.0;
}

std::string
CovReport::str()
const
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << "LC " << linePct() << "% (" << lineHit << "/"
       << lineTotal << ") FC " << funcPct() << "% (" << funcHit << "/"
       << funcTotal << ") BC " << branchPct() << "% (" << branchHit << "/"
       << branchTotal << ")";
    return os.str();
}

CoverageRegistry &
CoverageRegistry::instance()
{
    static CoverageRegistry registry;
    return registry;
}

void
CoverageRegistry::registerSite(CovSite *site)
{
    sites_.push_back(site);
}

void
CoverageRegistry::resetHits()
{
    for (CovSite *s : sites_)
        s->reset();
}

CovReport
CoverageRegistry::report(const std::string &prefix) const
{
    CovReport r;
    for (const CovSite *s : sites_) {
        if (std::strncmp(s->name(), prefix.c_str(), prefix.size()) != 0)
            continue;
        switch (s->kind()) {
          case CovKind::Line:
            r.lineTotal++;
            if (s->hits())
                r.lineHit++;
            break;
          case CovKind::Function:
            r.funcTotal++;
            if (s->hits())
                r.funcHit++;
            // A function is also a line region.
            r.lineTotal++;
            if (s->hits())
                r.lineHit++;
            break;
          case CovKind::Branch:
            r.branchTotal += 2;
            if (s->trueHits())
                r.branchHit++;
            if (s->falseHits())
                r.branchHit++;
            break;
        }
    }
    return r;
}

std::vector<std::string>
CoverageRegistry::siteNames() const
{
    std::vector<std::string> names;
    names.reserve(sites_.size());
    for (const CovSite *s : sites_)
        names.emplace_back(s->name());
    return names;
}

} // namespace ubfuzz
