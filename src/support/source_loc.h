/**
 * @file
 * Source locations for MiniC programs.
 *
 * A crash site in the paper (Definition 2) is a (line, offset) pair in the
 * source program; every IR instruction carries one as debug metadata, and
 * the crash-site mapping oracle (Algorithm 2) compares them for equality.
 */

#ifndef UBFUZZ_SUPPORT_SOURCE_LOC_H
#define UBFUZZ_SUPPORT_SOURCE_LOC_H

#include <cstdint>
#include <functional>
#include <string>

namespace ubfuzz {

/** A (line, offset-in-line) position in pretty-printed MiniC source. */
struct SourceLoc
{
    /** 1-based source line; 0 means "unknown location". */
    int32_t line = 0;
    /** 0-based column offset within the line. */
    int32_t offset = 0;

    constexpr bool isValid() const { return line > 0; }

    friend constexpr bool
    operator==(const SourceLoc &a, const SourceLoc &b)
    {
        return a.line == b.line && a.offset == b.offset;
    }

    friend constexpr bool
    operator<(const SourceLoc &a, const SourceLoc &b)
    {
        return a.line != b.line ? a.line < b.line : a.offset < b.offset;
    }

    std::string
    str() const
    {
        return "(" + std::to_string(line) + "," + std::to_string(offset) +
               ")";
    }
};

/** Hash for unordered containers keyed by SourceLoc. */
struct SourceLocHash
{
    size_t
    operator()(const SourceLoc &l) const
    {
        return std::hash<uint64_t>()(
            (static_cast<uint64_t>(static_cast<uint32_t>(l.line)) << 32) |
            static_cast<uint32_t>(l.offset));
    }
};

} // namespace ubfuzz

#endif // UBFUZZ_SUPPORT_SOURCE_LOC_H
