/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the repository (seed program generation, shadow
 * statement value sampling, mutation selection, campaign scheduling) flows
 * through this generator so that every experiment is reproducible from a
 * single 64-bit seed. The core is SplitMix64, which is small, fast, and
 * has well-understood statistical quality for this use.
 */

#ifndef UBFUZZ_SUPPORT_RNG_H
#define UBFUZZ_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <initializer_list>

namespace ubfuzz {

/** Deterministic 64-bit PRNG (SplitMix64). */
class Rng
{
  public:
    explicit Rng(uint64_t seed=0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound > 0);
        // Rejection-free modulo is fine here: bound is always tiny
        // relative to 2^64 so the bias is negligible for fuzzing.
        return next() % bound;
    }

    /** Uniform signed value in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        assert(lo <= hi);
        uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
        if (span == UINT64_MAX)
            return static_cast<int64_t>(next());
        return lo + static_cast<int64_t>(next() % (span + 1));
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        assert(den > 0);
        return below(den) < num;
    }

    /** True with probability pct/100. */
    bool percent(uint64_t pct) { return chance(pct, 100); }

    /** Pick one element of a non-empty initializer list. */
    template <typename T>
    T
    pick(std::initializer_list<T> options)
    {
        assert(options.size() > 0);
        return *(options.begin() + below(options.size()));
    }

    /** Pick an index of a non-empty container. */
    template <typename C>
    size_t
    index(const C &container)
    {
        assert(!container.empty());
        return static_cast<size_t>(below(container.size()));
    }

    /** Derive an independent child generator (for sub-tasks). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ULL);
    }

  private:
    uint64_t state_;
};

} // namespace ubfuzz

#endif // UBFUZZ_SUPPORT_RNG_H
