/**
 * @file
 * Error-reporting helpers, following the gem5 fatal()/panic() split:
 * fatal() is for user errors (bad input program, bad configuration),
 * panic() is for internal invariant violations (a ubfuzz bug).
 */

#ifndef UBFUZZ_SUPPORT_DIAGNOSTICS_H
#define UBFUZZ_SUPPORT_DIAGNOSTICS_H

#include <sstream>
#include <string>

namespace ubfuzz {

/** Abort with an internal-invariant failure message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(1) with a user-facing error message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

namespace detail {

inline std::string
formatParts()
{
    return {};
}

template <typename T, typename... Rest>
std::string
formatParts(const T &head, const Rest &...rest)
{
    std::ostringstream os;
    os << head;
    return os.str() + formatParts(rest...);
}

} // namespace detail
} // namespace ubfuzz

#define UBF_PANIC(...)                                                     \
    ::ubfuzz::panicImpl(__FILE__, __LINE__,                                \
                        ::ubfuzz::detail::formatParts(__VA_ARGS__))

#define UBF_FATAL(...)                                                     \
    ::ubfuzz::fatalImpl(__FILE__, __LINE__,                                \
                        ::ubfuzz::detail::formatParts(__VA_ARGS__))

#define UBF_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond))                                                       \
            UBF_PANIC("assertion failed: " #cond " ", __VA_ARGS__);        \
    } while (0)

#endif // UBFUZZ_SUPPORT_DIAGNOSTICS_H
