#include "reduce/reducer.h"

#include <unordered_set>
#include <vector>

#include "ast/clone.h"
#include "support/diagnostics.h"

namespace ubfuzz::reduce {

using namespace ast;

namespace {

/** Enumerate (blockId, index) of every deletable statement. */
void
collectStmtSlots(const Block *b,
                 std::vector<std::pair<uint32_t, size_t>> &out)
{
    for (size_t i = 0; i < b->stmts().size(); i++) {
        const Stmt *s = b->stmts()[i];
        if (s->kind() != NodeKind::ReturnStmt)
            out.emplace_back(b->nodeId(), i);
        switch (s->kind()) {
          case NodeKind::IfStmt:
            collectStmtSlots(s->as<IfStmt>()->thenBlock(), out);
            if (s->as<IfStmt>()->elseBlock())
                collectStmtSlots(s->as<IfStmt>()->elseBlock(), out);
            break;
          case NodeKind::WhileStmt:
            collectStmtSlots(s->as<WhileStmt>()->body(), out);
            break;
          case NodeKind::ForStmt:
            collectStmtSlots(s->as<ForStmt>()->body(), out);
            break;
          case NodeKind::Block:
            collectStmtSlots(s->as<Block>(), out);
            break;
          default:
            break;
        }
    }
}

/** All declaration node-ids referenced anywhere in the program. */
void
collectRefs(const Expr *e, std::unordered_set<uint32_t> &refs)
{
    if (auto *vr = e->dynCast<VarRef>())
        refs.insert(vr->decl()->nodeId());
    if (auto *c = e->dynCast<Call>())
        refs.insert(c->callee()->nodeId());
    forEachChildExpr(const_cast<Expr *>(e), [&](Expr *child) {
        collectRefs(child, refs);
    });
}

void
collectRefsStmt(const Stmt *s, std::unordered_set<uint32_t> &refs)
{
    switch (s->kind()) {
      case NodeKind::DeclStmt:
        if (s->as<DeclStmt>()->var()->init())
            collectRefs(s->as<DeclStmt>()->var()->init(), refs);
        break;
      case NodeKind::AssignStmt:
        collectRefs(s->as<AssignStmt>()->lhs(), refs);
        collectRefs(s->as<AssignStmt>()->rhs(), refs);
        break;
      case NodeKind::ExprStmt:
        collectRefs(s->as<ExprStmt>()->expr(), refs);
        break;
      case NodeKind::IfStmt: {
        auto *i = s->as<IfStmt>();
        collectRefs(i->cond(), refs);
        for (const Stmt *c : i->thenBlock()->stmts())
            collectRefsStmt(c, refs);
        if (i->elseBlock())
            for (const Stmt *c : i->elseBlock()->stmts())
                collectRefsStmt(c, refs);
        break;
      }
      case NodeKind::WhileStmt:
        collectRefs(s->as<WhileStmt>()->cond(), refs);
        for (const Stmt *c : s->as<WhileStmt>()->body()->stmts())
            collectRefsStmt(c, refs);
        break;
      case NodeKind::ForStmt: {
        auto *f = s->as<ForStmt>();
        if (f->init())
            collectRefsStmt(f->init(), refs);
        if (f->cond())
            collectRefs(f->cond(), refs);
        if (f->step())
            collectRefsStmt(f->step(), refs);
        for (const Stmt *c : f->body()->stmts())
            collectRefsStmt(c, refs);
        break;
      }
      case NodeKind::Block:
        for (const Stmt *c : s->as<Block>()->stmts())
            collectRefsStmt(c, refs);
        break;
      case NodeKind::ReturnStmt:
        if (s->as<ReturnStmt>()->value())
            collectRefs(s->as<ReturnStmt>()->value(), refs);
        break;
      default:
        break;
    }
}

std::unordered_set<uint32_t>
allReferences(const Program &p)
{
    std::unordered_set<uint32_t> refs;
    for (const VarDecl *g : p.globals())
        if (g->init())
            collectRefs(g->init(), refs);
    for (const FunctionDecl *f : p.functions())
        if (f->body())
            for (const Stmt *s : f->body()->stmts())
                collectRefsStmt(s, refs);
    return refs;
}

} // namespace

std::unique_ptr<ast::Program>
reduceProgram(const Program &input, const Predicate &interesting,
              ReduceStats *stats)
{
    ReduceStats local;
    ReduceStats &st = stats ? *stats : local;

    // Clone accounting: reduction must cost exactly one clone for the
    // working copy plus one per trial — an accepted trial is *moved*
    // into `current`, never re-cloned (it used to be, doubling the
    // cost of every accepted step).
    uint64_t clonesBefore = cloneProgramCallCount();
    uint64_t trialsMade = 0;

    ClonedProgram current = cloneProgram(input);
    bool progress = true;
    while (progress) {
        progress = false;

        // Statement deletion, one at a time.
        std::vector<std::pair<uint32_t, size_t>> slots;
        for (const FunctionDecl *f : current.program->functions())
            if (f->body())
                collectStmtSlots(f->body(), slots);
        for (const auto &[blockId, index] : slots) {
            ClonedProgram trial = cloneProgram(*current.program);
            trialsMade++;
            Node *n = trial.find(blockId);
            if (!n)
                continue;
            Block *b = n->as<Block>();
            if (index >= b->stmts().size())
                continue;
            // Deleting a declaration would orphan its references;
            // only try it when nothing else refers to the variable.
            if (auto *d = b->stmts()[index]->dynCast<DeclStmt>()) {
                auto refs = allReferences(*trial.program);
                if (refs.count(d->var()->nodeId()))
                    continue;
            }
            b->eraseAt(index);
            st.predicateRuns++;
            if (interesting(*trial.program)) {
                current = std::move(trial);
                st.statementsRemoved++;
                progress = true;
                break; // re-enumerate slots on the new program
            }
        }
        if (progress)
            continue;

        // Dead globals and uncalled functions.
        auto refs = allReferences(*current.program);
        {
            ClonedProgram trial = cloneProgram(*current.program);
            trialsMade++;
            auto &globals = trial.program->globals();
            size_t before = globals.size();
            globals.erase(
                std::remove_if(globals.begin(), globals.end(),
                               [&](VarDecl *g) {
                                   return refs.count(g->nodeId()) == 0;
                               }),
                globals.end());
            auto &fns = trial.program->functions();
            size_t fn_before = fns.size();
            fns.erase(std::remove_if(
                          fns.begin(), fns.end(),
                          [&](FunctionDecl *f) {
                              return f != trial.program->main() &&
                                     refs.count(f->nodeId()) == 0;
                          }),
                      fns.end());
            if (globals.size() < before || fns.size() < fn_before) {
                st.predicateRuns++;
                if (interesting(*trial.program)) {
                    st.globalsRemoved +=
                        static_cast<int>(before - globals.size());
                    st.functionsRemoved +=
                        static_cast<int>(fn_before - fns.size());
                    current = std::move(trial);
                    progress = true;
                }
            }
        }
    }
    UBF_ASSERT(cloneProgramCallCount() - clonesBefore == 1 + trialsMade,
               "reducer cloned more than once per trial");
    return std::move(current.program);
}

} // namespace ubfuzz::reduce
