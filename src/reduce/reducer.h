/**
 * @file
 * Test-case reducer (the repository's C-Reduce, §4.1): shrink a
 * program while an interestingness predicate keeps holding, by
 * fixpoint statement deletion and dead top-level pruning.
 */

#ifndef UBFUZZ_REDUCE_REDUCER_H
#define UBFUZZ_REDUCE_REDUCER_H

#include <functional>
#include <memory>

#include "ast/ast.h"

namespace ubfuzz::reduce {

/** Returns true when the candidate still exhibits the behaviour of
 *  interest (e.g. "this sanitizer FN finding persists"). */
using Predicate = std::function<bool(const ast::Program &)>;

struct ReduceStats
{
    int statementsRemoved = 0;
    int globalsRemoved = 0;
    int functionsRemoved = 0;
    int predicateRuns = 0;
};

/**
 * Greedy fixpoint reduction. @p interesting must hold for @p input.
 * @return the reduced program (at worst a copy of the input).
 */
std::unique_ptr<ast::Program> reduceProgram(const ast::Program &input,
                                            const Predicate &interesting,
                                            ReduceStats *stats = nullptr);

} // namespace ubfuzz::reduce

#endif // UBFUZZ_REDUCE_REDUCER_H
