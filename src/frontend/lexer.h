/**
 * @file
 * Tokenizer for MiniC source text.
 */

#ifndef UBFUZZ_FRONTEND_LEXER_H
#define UBFUZZ_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/source_loc.h"

namespace ubfuzz::frontend {

enum class TokKind : uint8_t {
    End, Ident, IntLit,
    // Keywords
    KwStruct, KwVoid, KwChar, KwShort, KwInt, KwLong, KwUnsigned,
    KwIf, KwElse, KwFor, KwWhile, KwReturn, KwBreak, KwContinue,
    // Punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Question, Colon,
    // Operators
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr, Lt, Le, Gt, Ge, EqEq, Ne,
    AmpAmp, PipePipe,
    Assign, PlusAssign, MinusAssign, StarAssign,
    AmpAssign, PipeAssign, CaretAssign,
    Dot, Arrow,
};

struct Token
{
    TokKind kind = TokKind::End;
    std::string_view text;
    SourceLoc loc;
    /** For IntLit: magnitude and suffix flags. */
    uint64_t intValue = 0;
    bool suffixUnsigned = false;
    bool suffixLong = false;
};

/** Lexing outcome: tokens, or an error message. */
struct LexResult
{
    std::vector<Token> tokens;
    std::string error;
    bool ok() const { return error.empty(); }
};

/** Tokenize @p source. The tokens reference @p source's storage. */
LexResult lex(std::string_view source);

} // namespace ubfuzz::frontend

#endif // UBFUZZ_FRONTEND_LEXER_H
