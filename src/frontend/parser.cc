#include "frontend/parser.h"

#include <optional>
#include <unordered_map>
#include <vector>

#include "ast/typing.h"
#include "frontend/lexer.h"

namespace ubfuzz::frontend {

using namespace ast;

namespace {

/** Internal fail-fast parse error. */
struct ParseError
{
    std::string message;
};

[[noreturn]] void
errorAt(const Token &tok, const std::string &msg)
{
    throw ParseError{msg + " at " + tok.loc.str()};
}

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens_(std::move(tokens)), program_(std::make_unique<Program>()),
          builder_(*program_)
    {}

    std::unique_ptr<Program>
    run()
    {
        pushScope();
        while (!at(TokKind::End))
            parseTopLevel();
        popScope();
        if (FunctionDecl *m = program_->findFunction("main"))
            program_->setMain(m);
        return std::move(program_);
    }

  private:
    //===------------------------------------------------------------===//
    // Token plumbing
    //===------------------------------------------------------------===//

    const Token &peek(size_t off = 0) const
    {
        size_t i = pos_ + off;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    bool at(TokKind k) const { return peek().kind == k; }

    const Token &
    advance()
    {
        const Token &t = peek();
        if (pos_ + 1 < tokens_.size())
            pos_++;
        return t;
    }

    bool
    accept(TokKind k)
    {
        if (at(k)) {
            advance();
            return true;
        }
        return false;
    }

    const Token &
    expect(TokKind k, const char *what)
    {
        if (!at(k))
            errorAt(peek(), std::string("expected ") + what);
        return advance();
    }

    //===------------------------------------------------------------===//
    // Scopes
    //===------------------------------------------------------------===//

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    void
    declare(VarDecl *v)
    {
        scopes_.back()[std::string(v->name())] = v;
    }

    VarDecl *
    lookup(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return f->second;
        }
        return nullptr;
    }

    //===------------------------------------------------------------===//
    // Types
    //===------------------------------------------------------------===//

    bool
    atTypeStart() const
    {
        switch (peek().kind) {
          case TokKind::KwVoid: case TokKind::KwChar:
          case TokKind::KwShort: case TokKind::KwInt:
          case TokKind::KwLong: case TokKind::KwUnsigned:
            return true;
          case TokKind::KwStruct:
            // "struct S x" is a type use; "struct S {" is a definition.
            return peek(2).kind != TokKind::LBrace;
          default:
            return false;
        }
    }

    const Type *
    parseBaseType()
    {
        TypeTable &tt = program_->types();
        if (accept(TokKind::KwVoid))
            return tt.voidTy();
        if (accept(TokKind::KwStruct)) {
            const Token &name = expect(TokKind::Ident, "struct name");
            StructDecl *s = program_->findStruct(std::string(name.text));
            if (!s)
                errorAt(name, "unknown struct");
            return tt.structTy(s);
        }
        bool is_unsigned = accept(TokKind::KwUnsigned);
        if (accept(TokKind::KwChar))
            return tt.scalar(is_unsigned ? ScalarKind::U8 : ScalarKind::S8);
        if (accept(TokKind::KwShort))
            return tt.scalar(is_unsigned ? ScalarKind::U16
                                         : ScalarKind::S16);
        if (accept(TokKind::KwLong))
            return tt.scalar(is_unsigned ? ScalarKind::U64
                                         : ScalarKind::S64);
        if (accept(TokKind::KwInt) || is_unsigned)
            return tt.scalar(is_unsigned ? ScalarKind::U32
                                         : ScalarKind::S32);
        errorAt(peek(), "expected type");
    }

    const Type *
    parsePointers(const Type *base)
    {
        while (accept(TokKind::Star))
            base = program_->types().pointer(base);
        return base;
    }

    //===------------------------------------------------------------===//
    // Top level
    //===------------------------------------------------------------===//

    void
    parseTopLevel()
    {
        if (at(TokKind::KwStruct) && peek(2).kind == TokKind::LBrace) {
            parseStructDef();
            return;
        }
        const Type *base = parseBaseType();
        // One or more declarators: globals `int a = 1, *b = &a;` or a
        // function definition.
        bool first = true;
        while (true) {
            const Type *ty = parsePointers(base);
            const Token &name = expect(TokKind::Ident, "identifier");
            if (first && at(TokKind::LParen)) {
                parseFunctionRest(ty, std::string(name.text));
                return;
            }
            first = false;
            parseGlobalRest(ty, name);
            if (accept(TokKind::Comma))
                continue;
            expect(TokKind::Semi, "';'");
            return;
        }
    }

    void
    parseStructDef()
    {
        expect(TokKind::KwStruct, "'struct'");
        const Token &name = expect(TokKind::Ident, "struct name");
        auto *s =
            program_->ctx().make<StructDecl>(std::string(name.text));
        program_->structs().push_back(s);
        expect(TokKind::LBrace, "'{'");
        while (!accept(TokKind::RBrace)) {
            const Type *base = parseBaseType();
            const Type *ty = parsePointers(base);
            const Token &fname = expect(TokKind::Ident, "field name");
            if (accept(TokKind::LBracket)) {
                const Token &n = expect(TokKind::IntLit, "array size");
                expect(TokKind::RBracket, "']'");
                ty = program_->types().array(
                    ty, static_cast<uint32_t>(n.intValue));
            }
            s->addField(program_->ctx().make<FieldDecl>(
                std::string(fname.text), ty));
            expect(TokKind::Semi, "';'");
        }
        expect(TokKind::Semi, "';'");
    }

    void
    parseGlobalRest(const Type *ty, const Token &name)
    {
        if (accept(TokKind::LBracket)) {
            const Token &n = expect(TokKind::IntLit, "array size");
            expect(TokKind::RBracket, "']'");
            ty = program_->types().array(ty,
                                         static_cast<uint32_t>(n.intValue));
        }
        Expr *init = nullptr;
        if (accept(TokKind::Assign))
            init = parseInitializer(ty);
        auto *g = program_->ctx().make<VarDecl>(
            std::string(name.text), ty, Storage::Global, init);
        program_->globals().push_back(g);
        declare(g);
    }

    Expr *
    parseInitializer(const Type *ty)
    {
        if (at(TokKind::LBrace)) {
            advance();
            std::vector<Expr *> elems;
            if (!at(TokKind::RBrace)) {
                elems.push_back(parseExpr());
                while (accept(TokKind::Comma))
                    elems.push_back(parseExpr());
            }
            expect(TokKind::RBrace, "'}'");
            return program_->ctx().make<InitList>(std::move(elems), ty);
        }
        return parseExpr();
    }

    void
    parseFunctionRest(const Type *ret, const std::string &name)
    {
        auto *fn = program_->ctx().make<FunctionDecl>(name, ret);
        program_->functions().push_back(fn);
        functions_[name] = fn;
        expect(TokKind::LParen, "'('");
        pushScope();
        if (!accept(TokKind::RParen)) {
            if (at(TokKind::KwVoid) && peek(1).kind == TokKind::RParen) {
                advance();
            } else {
                do {
                    const Type *pty = parsePointers(parseBaseType());
                    const Token &pname =
                        expect(TokKind::Ident, "parameter name");
                    auto *p = program_->ctx().make<VarDecl>(
                        std::string(pname.text), pty, Storage::Param,
                        nullptr);
                    fn->addParam(p);
                    declare(p);
                } while (accept(TokKind::Comma));
            }
            expect(TokKind::RParen, "')'");
        }
        currentFn_ = fn;
        fn->setBody(parseBlock());
        currentFn_ = nullptr;
        popScope();
    }

    //===------------------------------------------------------------===//
    // Statements
    //===------------------------------------------------------------===//

    Block *
    parseBlock()
    {
        expect(TokKind::LBrace, "'{'");
        auto *b = program_->ctx().make<Block>();
        pushScope();
        while (!accept(TokKind::RBrace))
            b->append(parseStmt());
        popScope();
        return b;
    }

    Stmt *
    parseStmt()
    {
        switch (peek().kind) {
          case TokKind::LBrace:
            return parseBlock();
          case TokKind::KwIf: {
            advance();
            expect(TokKind::LParen, "'('");
            Expr *cond = parseExpr();
            expect(TokKind::RParen, "')'");
            Block *then_b = parseBlockOrStmt();
            Block *else_b = nullptr;
            if (accept(TokKind::KwElse))
                else_b = parseBlockOrStmt();
            return program_->ctx().make<IfStmt>(cond, then_b, else_b);
          }
          case TokKind::KwWhile: {
            advance();
            expect(TokKind::LParen, "'('");
            Expr *cond = parseExpr();
            expect(TokKind::RParen, "')'");
            return program_->ctx().make<WhileStmt>(cond,
                                                   parseBlockOrStmt());
          }
          case TokKind::KwFor: {
            advance();
            expect(TokKind::LParen, "'('");
            pushScope();
            Stmt *init = nullptr;
            if (!at(TokKind::Semi)) {
                if (atTypeStart())
                    init = parseDecl(/*consume_semi=*/false);
                else
                    init = parseAssign(/*consume_semi=*/false);
            }
            expect(TokKind::Semi, "';'");
            Expr *cond = at(TokKind::Semi) ? nullptr : parseExpr();
            expect(TokKind::Semi, "';'");
            Stmt *step = at(TokKind::RParen)
                             ? nullptr
                             : parseAssign(/*consume_semi=*/false);
            expect(TokKind::RParen, "')'");
            Block *body = parseBlockOrStmt();
            popScope();
            return program_->ctx().make<ForStmt>(init, cond, step, body);
          }
          case TokKind::KwReturn: {
            advance();
            Expr *v = at(TokKind::Semi) ? nullptr : parseExpr();
            expect(TokKind::Semi, "';'");
            return program_->ctx().make<ReturnStmt>(v);
          }
          case TokKind::KwBreak:
            advance();
            expect(TokKind::Semi, "';'");
            return program_->ctx().make<BreakStmt>();
          case TokKind::KwContinue:
            advance();
            expect(TokKind::Semi, "';'");
            return program_->ctx().make<ContinueStmt>();
          default:
            if (atTypeStart())
                return parseDecl(/*consume_semi=*/true);
            return parseAssign(/*consume_semi=*/true);
        }
    }

    /** An if/while/for body: braced block, or a single statement that we
     *  wrap in a block (the printer always emits braces). */
    Block *
    parseBlockOrStmt()
    {
        if (at(TokKind::LBrace))
            return parseBlock();
        auto *b = program_->ctx().make<Block>();
        pushScope();
        b->append(parseStmt());
        popScope();
        return b;
    }

    Stmt *
    parseDecl(bool consume_semi)
    {
        const Type *base = parseBaseType();
        const Type *ty = parsePointers(base);
        const Token &name = expect(TokKind::Ident, "variable name");
        if (accept(TokKind::LBracket)) {
            const Token &n = expect(TokKind::IntLit, "array size");
            expect(TokKind::RBracket, "']'");
            ty = program_->types().array(ty,
                                         static_cast<uint32_t>(n.intValue));
        }
        Expr *init = nullptr;
        if (accept(TokKind::Assign))
            init = parseInitializer(ty);
        auto *v = program_->ctx().make<VarDecl>(
            std::string(name.text), ty, Storage::Local, init);
        declare(v);
        if (consume_semi)
            expect(TokKind::Semi, "';'");
        return program_->ctx().make<DeclStmt>(v);
    }

    static std::optional<AssignOp>
    assignOpFor(TokKind k)
    {
        switch (k) {
          case TokKind::Assign: return AssignOp::Assign;
          case TokKind::PlusAssign: return AssignOp::AddAssign;
          case TokKind::MinusAssign: return AssignOp::SubAssign;
          case TokKind::StarAssign: return AssignOp::MulAssign;
          case TokKind::AmpAssign: return AssignOp::AndAssign;
          case TokKind::PipeAssign: return AssignOp::OrAssign;
          case TokKind::CaretAssign: return AssignOp::XorAssign;
          default: return std::nullopt;
        }
    }

    /** Assignment or expression statement. */
    Stmt *
    parseAssign(bool consume_semi)
    {
        Expr *lhs = parseExpr();
        Stmt *result;
        if (auto op = assignOpFor(peek().kind)) {
            if (!isLValue(lhs))
                errorAt(peek(), "assignment target is not an lvalue");
            advance();
            Expr *rhs = parseExpr();
            result = program_->ctx().make<AssignStmt>(*op, lhs, rhs);
        } else {
            result = program_->ctx().make<ExprStmt>(lhs);
        }
        if (consume_semi)
            expect(TokKind::Semi, "';'");
        return result;
    }

    //===------------------------------------------------------------===//
    // Expressions
    //===------------------------------------------------------------===//

    Expr *
    parseExpr()
    {
        return parseConditional();
    }

    Expr *
    parseConditional()
    {
        Expr *cond = parseBinary(1);
        if (!accept(TokKind::Question))
            return cond;
        Expr *t = parseExpr();
        expect(TokKind::Colon, "':'");
        Expr *f = parseConditional();
        return builder_.select(cond, t, f);
    }

    static std::optional<BinaryOp>
    binOpFor(TokKind k)
    {
        switch (k) {
          case TokKind::PipePipe: return BinaryOp::LOr;
          case TokKind::AmpAmp: return BinaryOp::LAnd;
          case TokKind::Pipe: return BinaryOp::BitOr;
          case TokKind::Caret: return BinaryOp::BitXor;
          case TokKind::Amp: return BinaryOp::BitAnd;
          case TokKind::EqEq: return BinaryOp::Eq;
          case TokKind::Ne: return BinaryOp::Ne;
          case TokKind::Lt: return BinaryOp::Lt;
          case TokKind::Le: return BinaryOp::Le;
          case TokKind::Gt: return BinaryOp::Gt;
          case TokKind::Ge: return BinaryOp::Ge;
          case TokKind::Shl: return BinaryOp::Shl;
          case TokKind::Shr: return BinaryOp::Shr;
          case TokKind::Plus: return BinaryOp::Add;
          case TokKind::Minus: return BinaryOp::Sub;
          case TokKind::Star: return BinaryOp::Mul;
          case TokKind::Slash: return BinaryOp::Div;
          case TokKind::Percent: return BinaryOp::Rem;
          default: return std::nullopt;
        }
    }

    /** Precedence-climbing over binary operators. */
    Expr *
    parseBinary(int min_prec)
    {
        Expr *lhs = parseUnary();
        while (true) {
            auto op = binOpFor(peek().kind);
            if (!op || binaryOpPrecedence(*op) < min_prec)
                return lhs;
            advance();
            Expr *rhs = parseBinary(binaryOpPrecedence(*op) + 1);
            lhs = builder_.bin(*op, lhs, rhs);
        }
    }

    bool
    atCastStart() const
    {
        if (!at(TokKind::LParen))
            return false;
        switch (peek(1).kind) {
          case TokKind::KwVoid: case TokKind::KwChar:
          case TokKind::KwShort: case TokKind::KwInt:
          case TokKind::KwLong: case TokKind::KwUnsigned:
          case TokKind::KwStruct:
            return true;
          default:
            return false;
        }
    }

    Expr *
    parseUnary()
    {
        switch (peek().kind) {
          case TokKind::Minus:
            advance();
            return builder_.unary(UnaryOp::Neg, parseUnary());
          case TokKind::Tilde:
            advance();
            return builder_.unary(UnaryOp::BitNot, parseUnary());
          case TokKind::Bang:
            advance();
            return builder_.unary(UnaryOp::LogNot, parseUnary());
          case TokKind::Star: {
            advance();
            Expr *sub = parseUnary();
            if (!sub->type()->isPointer() && !sub->type()->isArray())
                errorAt(peek(), "dereference of non-pointer");
            return builder_.deref(sub);
          }
          case TokKind::Amp: {
            advance();
            Expr *sub = parseUnary();
            if (!isLValue(sub))
                errorAt(peek(), "address of non-lvalue");
            return builder_.addrOf(sub);
          }
          default:
            if (atCastStart()) {
                advance(); // '('
                const Type *ty = parsePointers(parseBaseType());
                expect(TokKind::RParen, "')'");
                return builder_.cast(ty, parseUnary());
            }
            return parsePostfix();
        }
    }

    Expr *
    parsePostfix()
    {
        Expr *e = parsePrimary();
        while (true) {
            if (accept(TokKind::LBracket)) {
                Expr *idx = parseExpr();
                expect(TokKind::RBracket, "']'");
                if (!e->type()->isArray() && !e->type()->isPointer())
                    errorAt(peek(), "subscript of non-array");
                e = builder_.index(e, idx);
            } else if (accept(TokKind::Dot)) {
                const Token &f = expect(TokKind::Ident, "field name");
                e = makeMember(e, f, /*arrow=*/false);
            } else if (accept(TokKind::Arrow)) {
                const Token &f = expect(TokKind::Ident, "field name");
                e = makeMember(e, f, /*arrow=*/true);
            } else {
                return e;
            }
        }
    }

    Expr *
    makeMember(Expr *base, const Token &fname, bool arrow)
    {
        const Type *bt = base->type();
        if (arrow) {
            if (!bt->isPointer() || !bt->element()->isStruct())
                errorAt(fname, "'->' on non-struct-pointer");
            bt = bt->element();
        } else if (!bt->isStruct()) {
            errorAt(fname, "'.' on non-struct");
        }
        const FieldDecl *field =
            bt->structDecl()->findField(std::string(fname.text));
        if (!field)
            errorAt(fname, "no such field");
        return builder_.member(base, field, arrow);
    }

    static const std::unordered_map<std::string_view, Builtin> &
    builtinNames()
    {
        static const std::unordered_map<std::string_view, Builtin> map = {
            {"__malloc", Builtin::Malloc},
            {"__free", Builtin::Free},
            {"__checksum", Builtin::Checksum},
            {"__log_val", Builtin::LogVal},
            {"__log_ptr", Builtin::LogPtr},
            {"__log_buf", Builtin::LogBuf},
            {"__log_scope_enter", Builtin::LogScopeEnter},
            {"__log_scope_exit", Builtin::LogScopeExit},
        };
        return map;
    }

    Expr *
    parsePrimary()
    {
        if (at(TokKind::IntLit)) {
            const Token &t = advance();
            ScalarKind k;
            if (t.suffixUnsigned && t.suffixLong)
                k = ScalarKind::U64;
            else if (t.suffixLong)
                k = ScalarKind::S64;
            else if (t.suffixUnsigned)
                k = ScalarKind::U32;
            else
                k = t.intValue <= 0x7fffffffULL ? ScalarKind::S32
                                                : ScalarKind::S64;
            return builder_.litOf(t.intValue, program_->types().scalar(k));
        }
        if (at(TokKind::Ident)) {
            const Token &t = advance();
            if (at(TokKind::LParen))
                return parseCall(t);
            VarDecl *v = lookup(std::string(t.text));
            if (!v)
                errorAt(t, "unknown variable '" + std::string(t.text) +
                               "'");
            return builder_.ref(v);
        }
        if (accept(TokKind::LParen)) {
            Expr *e = parseExpr();
            expect(TokKind::RParen, "')'");
            return e;
        }
        errorAt(peek(), "expected expression");
    }

    Expr *
    parseCall(const Token &name)
    {
        FunctionDecl *fn = nullptr;
        auto bit = builtinNames().find(name.text);
        if (bit != builtinNames().end()) {
            fn = program_->builtin(bit->second);
        } else {
            auto fit = functions_.find(std::string(name.text));
            if (fit == functions_.end())
                errorAt(name, "call to unknown function '" +
                                  std::string(name.text) + "'");
            fn = fit->second;
        }
        expect(TokKind::LParen, "'('");
        std::vector<Expr *> args;
        if (!at(TokKind::RParen)) {
            args.push_back(parseExpr());
            while (accept(TokKind::Comma))
                args.push_back(parseExpr());
        }
        expect(TokKind::RParen, "')'");
        if (args.size() != fn->params().size())
            errorAt(name, "wrong number of arguments to '" +
                              std::string(name.text) + "'");
        return builder_.call(fn, std::move(args));
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    std::unique_ptr<Program> program_;
    ExprBuilder builder_;
    std::vector<std::unordered_map<std::string, VarDecl *>> scopes_;
    std::unordered_map<std::string, FunctionDecl *> functions_;
    FunctionDecl *currentFn_ = nullptr;
};

} // namespace

ParseResult
parseProgram(std::string_view source)
{
    ParseResult result;
    LexResult lexed = lex(source);
    if (!lexed.ok()) {
        result.error = lexed.error;
        return result;
    }
    try {
        result.program = Parser(std::move(lexed.tokens)).run();
    } catch (const ParseError &e) {
        result.error = e.message;
    }
    return result;
}

std::unique_ptr<ast::Program>
parseOrDie(std::string_view source)
{
    ParseResult r = parseProgram(source);
    if (!r.ok())
        UBF_PANIC("parse failed: ", r.error, "\nsource:\n",
                  std::string(source));
    return std::move(r.program);
}

} // namespace ubfuzz::frontend
