/**
 * @file
 * Recursive-descent parser for MiniC.
 *
 * Parses the exact language the pretty printer emits (round-trip safe)
 * plus ordinary hand-written programs such as the paper's Figures 1, 3,
 * 8 and 12a-f, which are embedded in the corpus and examples.
 */

#ifndef UBFUZZ_FRONTEND_PARSER_H
#define UBFUZZ_FRONTEND_PARSER_H

#include <memory>
#include <string>
#include <string_view>

#include "ast/ast.h"

namespace ubfuzz::frontend {

/** Result of parsing: a program, or a diagnostic. */
struct ParseResult
{
    std::unique_ptr<ast::Program> program;
    std::string error;

    bool ok() const { return program != nullptr; }
};

/** Parse a full MiniC translation unit. */
ParseResult parseProgram(std::string_view source);

/**
 * Parse a translation unit that is expected to be valid; panics with the
 * diagnostic if it is not. For embedded corpus sources and tests.
 */
std::unique_ptr<ast::Program> parseOrDie(std::string_view source);

} // namespace ubfuzz::frontend

#endif // UBFUZZ_FRONTEND_PARSER_H
