#include "frontend/lexer.h"

#include <cctype>
#include <unordered_map>

namespace ubfuzz::frontend {

namespace {

const std::unordered_map<std::string_view, TokKind> kKeywords = {
    {"struct", TokKind::KwStruct}, {"void", TokKind::KwVoid},
    {"char", TokKind::KwChar},     {"short", TokKind::KwShort},
    {"int", TokKind::KwInt},       {"long", TokKind::KwLong},
    {"unsigned", TokKind::KwUnsigned},
    {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
    {"for", TokKind::KwFor},       {"while", TokKind::KwWhile},
    {"return", TokKind::KwReturn}, {"break", TokKind::KwBreak},
    {"continue", TokKind::KwContinue},
};

} // namespace

LexResult
lex(std::string_view src)
{
    LexResult result;
    size_t i = 0;
    int line = 1;
    int col = 0;

    auto peek = [&](size_t off = 0) -> char {
        return i + off < src.size() ? src[i + off] : '\0';
    };
    auto advance = [&](size_t n = 1) {
        for (size_t k = 0; k < n && i < src.size(); k++, i++) {
            if (src[i] == '\n') {
                line++;
                col = 0;
            } else {
                col++;
            }
        }
    };
    auto push = [&](TokKind kind, size_t start, SourceLoc loc) {
        Token t;
        t.kind = kind;
        t.text = src.substr(start, i - start);
        t.loc = loc;
        result.tokens.push_back(t);
        return &result.tokens.back();
    };

    while (i < src.size()) {
        char c = peek();
        // Whitespace.
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        // Comments.
        if (c == '/' && peek(1) == '/') {
            while (i < src.size() && peek() != '\n')
                advance();
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            advance(2);
            while (i < src.size() && !(peek() == '*' && peek(1) == '/'))
                advance();
            advance(2);
            continue;
        }

        SourceLoc loc{line, col};
        size_t start = i;

        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_')
                advance();
            std::string_view text = src.substr(start, i - start);
            auto it = kKeywords.find(text);
            push(it != kKeywords.end() ? it->second : TokKind::Ident,
                 start, loc);
            continue;
        }

        // Integer literals (decimal or hex) with u/l suffixes.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            uint64_t value = 0;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                advance(2);
                while (std::isxdigit(static_cast<unsigned char>(peek()))) {
                    char d = peek();
                    uint64_t digit =
                        std::isdigit(static_cast<unsigned char>(d))
                            ? static_cast<uint64_t>(d - '0')
                            : static_cast<uint64_t>(
                                  std::tolower(d) - 'a' + 10);
                    value = value * 16 + digit;
                    advance();
                }
            } else {
                while (std::isdigit(static_cast<unsigned char>(peek()))) {
                    value = value * 10 +
                            static_cast<uint64_t>(peek() - '0');
                    advance();
                }
            }
            bool suf_u = false, suf_l = false;
            while (peek() == 'u' || peek() == 'U' || peek() == 'l' ||
                   peek() == 'L') {
                if (peek() == 'u' || peek() == 'U')
                    suf_u = true;
                else
                    suf_l = true;
                advance();
            }
            Token *t = push(TokKind::IntLit, start, loc);
            t->intValue = value;
            t->suffixUnsigned = suf_u;
            t->suffixLong = suf_l;
            continue;
        }

        // Operators and punctuation (longest match first).
        auto two = [&](char a, char b) {
            return c == a && peek(1) == b;
        };
        TokKind kind;
        int len = 2;
        if (two('<', '<')) kind = TokKind::Shl;
        else if (two('>', '>')) kind = TokKind::Shr;
        else if (two('<', '=')) kind = TokKind::Le;
        else if (two('>', '=')) kind = TokKind::Ge;
        else if (two('=', '=')) kind = TokKind::EqEq;
        else if (two('!', '=')) kind = TokKind::Ne;
        else if (two('&', '&')) kind = TokKind::AmpAmp;
        else if (two('|', '|')) kind = TokKind::PipePipe;
        else if (two('+', '=')) kind = TokKind::PlusAssign;
        else if (two('-', '=')) kind = TokKind::MinusAssign;
        else if (two('*', '=')) kind = TokKind::StarAssign;
        else if (two('&', '=')) kind = TokKind::AmpAssign;
        else if (two('|', '=')) kind = TokKind::PipeAssign;
        else if (two('^', '=')) kind = TokKind::CaretAssign;
        else if (two('-', '>')) kind = TokKind::Arrow;
        else {
            len = 1;
            switch (c) {
              case '(': kind = TokKind::LParen; break;
              case ')': kind = TokKind::RParen; break;
              case '{': kind = TokKind::LBrace; break;
              case '}': kind = TokKind::RBrace; break;
              case '[': kind = TokKind::LBracket; break;
              case ']': kind = TokKind::RBracket; break;
              case ',': kind = TokKind::Comma; break;
              case ';': kind = TokKind::Semi; break;
              case '?': kind = TokKind::Question; break;
              case ':': kind = TokKind::Colon; break;
              case '+': kind = TokKind::Plus; break;
              case '-': kind = TokKind::Minus; break;
              case '*': kind = TokKind::Star; break;
              case '/': kind = TokKind::Slash; break;
              case '%': kind = TokKind::Percent; break;
              case '&': kind = TokKind::Amp; break;
              case '|': kind = TokKind::Pipe; break;
              case '^': kind = TokKind::Caret; break;
              case '~': kind = TokKind::Tilde; break;
              case '!': kind = TokKind::Bang; break;
              case '<': kind = TokKind::Lt; break;
              case '>': kind = TokKind::Gt; break;
              case '=': kind = TokKind::Assign; break;
              case '.': kind = TokKind::Dot; break;
              default:
                result.error = "unexpected character '" +
                               std::string(1, c) + "' at " + loc.str();
                return result;
            }
        }
        advance(static_cast<size_t>(len));
        push(kind, start, loc);
    }

    Token end;
    end.kind = TokKind::End;
    end.loc = {line, col};
    result.tokens.push_back(end);
    return result;
}

} // namespace ubfuzz::frontend
