#include "ir/ir.h"

#include <sstream>
#include <unordered_set>

namespace ubfuzz::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Const: return "const";
      case Opcode::Bin: return "bin";
      case Opcode::Cast: return "cast";
      case Opcode::Select: return "select";
      case Opcode::FrameAddr: return "frameaddr";
      case Opcode::GlobalAddr: return "globaladdr";
      case Opcode::Gep: return "gep";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::MemCopy: return "memcopy";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Ret: return "ret";
      case Opcode::Call: return "call";
      case Opcode::Malloc: return "malloc";
      case Opcode::Free: return "free";
      case Opcode::Checksum: return "checksum";
      case Opcode::LogVal: return "log_val";
      case Opcode::LogPtr: return "log_ptr";
      case Opcode::LogBuf: return "log_buf";
      case Opcode::LogScopeEnter: return "log_scope_enter";
      case Opcode::LogScopeExit: return "log_scope_exit";
      case Opcode::LifetimeStart: return "lifetime_start";
      case Opcode::LifetimeEnd: return "lifetime_end";
      case Opcode::AsanCheck: return "asan_check";
      case Opcode::UbsanArith: return "ubsan_arith";
      case Opcode::UbsanShift: return "ubsan_shift";
      case Opcode::UbsanDiv: return "ubsan_div";
      case Opcode::UbsanNull: return "ubsan_null";
      case Opcode::UbsanBounds: return "ubsan_bounds";
      case Opcode::MsanCheck: return "msan_check";
      case Opcode::HardenCheck: return "harden_check";
    }
    return "?";
}

Module
cloneModule(const Module &m)
{
    // Module owns all of its state by value, so the copy constructor
    // performs the deep clone; see the declaration for why the
    // operation still deserves a name.
    return m;
}

uint64_t
canonicalValue(uint64_t raw, ScalarKind k)
{
    int bits = ast::scalarBits(k);
    if (bits >= 64 || bits == 0)
        return raw;
    uint64_t mask = (1ULL << bits) - 1;
    raw &= mask;
    if (ast::scalarSigned(k) && (raw & (1ULL << (bits - 1))))
        raw |= ~mask;
    return raw;
}

uint64_t
evalBinary(BinOp op, ScalarKind k, uint64_t a, uint64_t b, bool &trapped)
{
    trapped = false;
    a = canonicalValue(a, k);
    b = canonicalValue(b, k);
    bool sgn = ast::scalarSigned(k);
    int bits = ast::scalarBits(k);
    uint64_t mask = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
    uint64_t r = 0;
    switch (op) {
      case BinOp::Add: r = a + b; break;
      case BinOp::Sub: r = a - b; break;
      case BinOp::Mul: r = a * b; break;
      case BinOp::Div:
      case BinOp::Rem: {
        if (canonicalValue(b, k) == 0) {
            trapped = true;
            return 0;
        }
        if (sgn) {
            int64_t sa = static_cast<int64_t>(a);
            int64_t sb = static_cast<int64_t>(b);
            int64_t minv = bits >= 64 ? INT64_MIN : -(1LL << (bits - 1));
            if (sa == minv && sb == -1) {
                trapped = true;
                return 0;
            }
            r = static_cast<uint64_t>(op == BinOp::Div ? sa / sb
                                                       : sa % sb);
        } else {
            uint64_t ua = a & mask, ub = b & mask;
            r = op == BinOp::Div ? ua / ub : ua % ub;
        }
        break;
      }
      case BinOp::Shl:
      case BinOp::Shr: {
        uint64_t count = b & (bits == 64 ? 63 : 31);
        if (op == BinOp::Shl)
            r = a << count;
        else if (sgn)
            r = static_cast<uint64_t>(static_cast<int64_t>(a) >> count);
        else
            r = (a & mask) >> count;
        break;
      }
      case BinOp::BitAnd: r = a & b; break;
      case BinOp::BitOr: r = a | b; break;
      case BinOp::BitXor: r = a ^ b; break;
      case BinOp::Lt:
        return sgn ? static_cast<int64_t>(a) < static_cast<int64_t>(b)
                   : (a & mask) < (b & mask);
      case BinOp::Le:
        return sgn ? static_cast<int64_t>(a) <= static_cast<int64_t>(b)
                   : (a & mask) <= (b & mask);
      case BinOp::Gt:
        return sgn ? static_cast<int64_t>(a) > static_cast<int64_t>(b)
                   : (a & mask) > (b & mask);
      case BinOp::Ge:
        return sgn ? static_cast<int64_t>(a) >= static_cast<int64_t>(b)
                   : (a & mask) >= (b & mask);
      case BinOp::Eq:
        return a == b;
      case BinOp::Ne:
        return a != b;
      case BinOp::LAnd:
      case BinOp::LOr:
        UBF_PANIC("logical ops never reach evalBinary");
    }
    return canonicalValue(r, k);
}

namespace {

std::string
valueText(const Value &v)
{
    if (v.isReg())
        return "%" + std::to_string(v.reg);
    if (v.isImm())
        return std::to_string(static_cast<int64_t>(v.imm));
    return "_";
}

void
printInst(std::ostringstream &os, const Inst &i)
{
    os << "    ";
    if (i.dst)
        os << "%" << i.dst << " = ";
    os << opcodeName(i.op);
    if (i.op == Opcode::Bin)
        os << "." << ast::binaryOpSpelling(i.binOp);
    os << "." << ast::scalarName(i.kind);
    if (!i.a.isNone())
        os << " " << valueText(i.a);
    if (!i.b.isNone())
        os << ", " << valueText(i.b);
    if (!i.c.isNone())
        os << ", " << valueText(i.c);
    for (const Value &arg : i.args)
        os << ", " << valueText(arg);
    if (i.op == Opcode::Br)
        os << " -> bb" << i.targets[0];
    if (i.op == Opcode::CondBr)
        os << " -> bb" << i.targets[0] << ", bb" << i.targets[1];
    if (i.op == Opcode::Call)
        os << " fn#" << i.callee;
    if (i.op == Opcode::FrameAddr || i.op == Opcode::GlobalAddr ||
        i.op == Opcode::LifetimeStart || i.op == Opcode::LifetimeEnd)
        os << " obj#" << i.object;
    if (i.imm)
        os << " imm=" << i.imm;
    if (i.bound)
        os << " bound=" << i.bound;
    if (i.loc.isValid())
        os << "  #" << i.loc.line << "," << i.loc.offset;
    os << "\n";
}

} // namespace

std::string
printModule(const Module &m)
{
    std::ostringstream os;
    for (size_t gi = 0; gi < m.globals.size(); gi++) {
        const GlobalObject &g = m.globals[gi];
        os << "global #" << gi << " " << g.name << " size=" << g.size;
        if (g.redzone)
            os << " redzone=" << g.redzone;
        os << "\n";
    }
    for (size_t fi = 0; fi < m.functions.size(); fi++) {
        const Function &f = m.functions[fi];
        os << "fn #" << fi << " " << f.name << " (params "
           << f.numParams << ")\n";
        for (size_t oi = 0; oi < f.frame.size(); oi++) {
            const FrameObject &o = f.frame[oi];
            os << "  obj#" << oi << " " << o.name << " size=" << o.size;
            if (o.scoped)
                os << " scoped";
            if (o.redzone)
                os << " redzone=" << o.redzone;
            os << "\n";
        }
        for (const BasicBlock &bb : f.blocks) {
            os << "  bb" << bb.id << ":\n";
            for (const Inst &inst : bb.insts)
                printInst(os, inst);
        }
    }
    return os.str();
}

namespace {

/**
 * The one serializer behind executionKey and binaryKey: every field
 * the VM reads, in a fixed order, written through @p raw. binaryKey
 * streams the bytes into an FNV-1a hash without materializing the
 * multi-KB string — it runs once per execution on paths that have no
 * precomputed key, so the allocation matters.
 */
template <typename RawFn>
void
serializeExecutionKey(const Module &m, RawFn &&raw)
{
    auto u64 = [&raw](uint64_t v) { raw(&v, sizeof(v)); };
    auto val = [&u64](const Value &v) {
        u64(static_cast<uint64_t>(v.tag));
        u64(v.reg);
        u64(v.imm);
    };
    u64(static_cast<uint64_t>(m.mainIndex));
    u64(m.asanGlobals);
    u64(m.asanHeap);
    u64(m.msan.enabled);
    u64(m.msan.bugSubConstDefined);
    u64(m.msan.bugAndDefined);
    u64(m.hardenedWith);
    u64(m.globals.size());
    for (const GlobalObject &g : m.globals) {
        u64(g.size);
        u64(g.align);
        u64(g.redzone);
        u64(g.poisonSkip);
        u64(g.declId);
        u64(g.init.size());
        raw(g.init.data(), g.init.size());
        u64(g.relocs.size());
        for (const GlobalObject::Reloc &r : g.relocs) {
            u64(r.offset);
            u64(r.targetIndex);
            u64(static_cast<uint64_t>(r.addend));
        }
    }
    u64(m.functions.size());
    for (const Function &f : m.functions) {
        u64(static_cast<uint64_t>(f.retKind));
        u64(f.numParams);
        u64(f.numRegs);
        u64(f.frame.size());
        for (const FrameObject &o : f.frame) {
            u64(o.size);
            u64(o.align);
            u64(o.scoped);
            u64(o.redzone);
            u64(o.declId);
        }
        u64(f.blocks.size());
        for (const BasicBlock &bb : f.blocks) {
            u64(bb.id);
            u64(bb.insts.size());
            for (const Inst &i : bb.insts) {
                u64(static_cast<uint64_t>(i.op));
                u64(static_cast<uint64_t>(i.kind));
                u64(i.dst);
                u64(static_cast<uint64_t>(i.binOp));
                val(i.a);
                val(i.b);
                val(i.c);
                u64(i.imm);
                u64(i.targets[0]);
                u64(i.targets[1]);
                u64(i.callee);
                u64(i.object);
                u64(i.flag);
                u64(i.bound);
                u64(i.args.size());
                for (const Value &a : i.args)
                    val(a);
                u64(static_cast<uint64_t>(
                    static_cast<uint32_t>(i.loc.line)));
                u64(static_cast<uint64_t>(
                    static_cast<uint32_t>(i.loc.offset)));
            }
        }
    }
}

} // namespace

std::string
executionKey(const Module &m)
{
    std::string key;
    key.reserve(4096);
    serializeExecutionKey(m, [&key](const void *p, size_t n) {
        key.append(static_cast<const char *>(p), n);
    });
    return key;
}

BinaryKey
binaryKey(const Module &m)
{
    BinaryKey key;
    key.hash = 0xcbf29ce484222325ULL;
    serializeExecutionKey(m, [&key](const void *p, size_t n) {
        const unsigned char *bytes = static_cast<const unsigned char *>(p);
        uint64_t h = key.hash;
        for (size_t i = 0; i < n; i++)
            h = (h ^ bytes[i]) * 0x100000001b3ULL;
        key.hash = h;
        key.len += n;
    });
    return key;
}

std::string
verifyModule(const Module &m)
{
    for (size_t fi = 0; fi < m.functions.size(); fi++) {
        const Function &f = m.functions[fi];
        auto fail = [&](const std::string &why, const Inst *inst) {
            std::string msg = "fn " + f.name + ": " + why;
            if (inst)
                msg += " (in " + std::string(opcodeName(inst->op)) + ")";
            return msg;
        };
        if (f.blocks.empty())
            return fail("no blocks", nullptr);
        for (const BasicBlock &bb : f.blocks) {
            if (bb.insts.empty())
                return fail("empty block bb" + std::to_string(bb.id),
                            nullptr);
            for (size_t k = 0; k < bb.insts.size(); k++) {
                const Inst &inst = bb.insts[k];
                bool last = k + 1 == bb.insts.size();
                if (inst.isTerminator() != last) {
                    return fail(
                        "terminator placement in bb" +
                            std::to_string(bb.id),
                        &inst);
                }
                for (int t = 0; t < 2; t++) {
                    bool uses_target =
                        (inst.op == Opcode::Br && t == 0) ||
                        inst.op == Opcode::CondBr;
                    if (uses_target &&
                        inst.targets[t] >= f.blocks.size()) {
                        return fail("branch target out of range", &inst);
                    }
                }
                auto check_val = [&](const Value &v) {
                    return !v.isReg() || v.reg < f.numRegs;
                };
                if (!check_val(inst.a) || !check_val(inst.b) ||
                    !check_val(inst.c))
                    return fail("register out of range", &inst);
                if (inst.op == Opcode::Call &&
                    inst.callee >= m.functions.size())
                    return fail("callee out of range", &inst);
                if ((inst.op == Opcode::FrameAddr ||
                     inst.op == Opcode::LifetimeStart ||
                     inst.op == Opcode::LifetimeEnd) &&
                    inst.object >= f.frame.size())
                    return fail("frame object out of range", &inst);
                if (inst.op == Opcode::GlobalAddr &&
                    inst.object >= m.globals.size())
                    return fail("global out of range", &inst);
            }
        }
        // Every used register must have a definition somewhere in the
        // function. (Values may flow across blocks when an expression
        // contains short-circuit or ternary sub-expressions, so the
        // check is function-scoped, not block-scoped.)
        std::unordered_set<uint32_t> defined;
        for (const BasicBlock &bb : f.blocks)
            for (const Inst &inst : bb.insts)
                if (inst.dst)
                    defined.insert(inst.dst);
        for (const BasicBlock &bb : f.blocks) {
            for (const Inst &inst : bb.insts) {
                auto check_use = [&](const Value &v) {
                    return !v.isReg() || defined.count(v.reg) > 0;
                };
                if (!check_use(inst.a) || !check_use(inst.b) ||
                    !check_use(inst.c))
                    return fail("use of undefined register in bb" +
                                    std::to_string(bb.id),
                                &inst);
                for (const Value &arg : inst.args)
                    if (!check_use(arg))
                        return fail("use of undefined arg register",
                                    &inst);
            }
        }
    }
    return {};
}

} // namespace ubfuzz::ir
