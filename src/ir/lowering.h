/**
 * @file
 * AST -> IR lowering, plus the incremental re-lowering machinery the
 * seed-level compile cache is built on.
 *
 * Lowering consumes the SourceMap produced by printing the program, so
 * every instruction gets the (line, offset) of the expression it came
 * from — the debug metadata that crash-site mapping depends on.
 *
 * UBGen derives each UB program by cloning a seed (node ids preserved)
 * and perturbing exactly one function body plus appending auxiliary
 * globals. Lowering a function depends only on its own subtree, the
 * global/function index tables (stable: UBGen appends, never reorders),
 * and the source locations of its nodes — so an unperturbed function's
 * instruction stream is identical across seed and UB program except
 * that every debug location shifts by one per-function line delta (the
 * lines inserted above it). `lowerProgram(..., LoweringInfo *)` records
 * the provenance needed to replay that reasoning safely, and
 * `lowerProgramIncremental` splices base IR for every function it can
 * prove unperturbed, re-lowering only the rest.
 */

#ifndef UBFUZZ_IR_LOWERING_H
#define UBFUZZ_IR_LOWERING_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ast/ast.h"
#include "ast/printer.h"
#include "ir/ir.h"

namespace ubfuzz::ir {

/**
 * Fingerprint of an AST subtree as a contiguous arena slot range:
 * [begin, end) node indices plus ASTContext::hashNodeRange over them.
 * Producers (the generator, the parser, the node-by-node cloner) build
 * each subtree's nodes consecutively, so the span is tight; the memcpy
 * clone preserves arena indices and slot bytes verbatim, so an
 * unperturbed subtree matches by pure range re-hash — no tree walk.
 * Any in-place mutation rewrites bytes inside the span, and any
 * inserted node lives past the seed's arena tail, outside every
 * recorded span — both change or miss the hash, failing the proof.
 */
struct SubtreeFingerprint
{
    uint32_t begin = 0;
    uint32_t end = 0;
    uint64_t hash = 0;

    bool
    operator==(const SubtreeFingerprint &o) const
    {
        return begin == o.begin && end == o.end && hash == o.hash;
    }
    bool operator!=(const SubtreeFingerprint &o) const { return !(*this == o); }

    /**
     * Does the same slot range of @p ctx, which must contain
     * @p root's slot, still hash identically? False (never a panic)
     * when the range is out of bounds for this context.
     */
    bool
    matches(const ast::ASTContext &ctx, const ast::Node *root) const
    {
        return begin < end && end <= ctx.numNodes() &&
               root->arenaIndex() >= begin && root->arenaIndex() < end &&
               ctx.hashNodeRange(begin, end) == hash;
    }
};

/**
 * Provenance of one *simple* statement's lowering: the IR range it
 * emitted and the lowering-state window it emitted it in. "Simple"
 * means the emission stayed contiguous in one basic block and created
 * no new blocks — declarations, assignments, expression statements,
 * returns, breaks and continues, and plain scope blocks containing
 * only such statements. Compound statements (if/while/for) are never
 * memoized whole; their nested simple statements are.
 *
 * A statement range can be replayed into an in-progress lowering at a
 * different register/frame/line offset because, by construction,
 * lowered statements are self-contained: registers never flow between
 * statements (values cross through frame slots), temporaries are
 * statement-local, and a simple statement prints on a single source
 * line.
 */
struct StmtLoweringInfo
{
    /** Arena-range fingerprint of the statement subtree (same scheme
     *  as FunctionLoweringInfo::astFingerprint). */
    SubtreeFingerprint fingerprint;
    /** Block the emission went into (unchanged across the stmt). */
    uint32_t block = 0;
    /** Emitted instruction range [instStart, instEnd) in `block`. */
    uint32_t instStart = 0;
    uint32_t instEnd = 0;
    /** Block count at statement start (== at end; id alignment). */
    uint32_t numBlocks = 0;
    /** fn.numRegs before/after — the range's register window. */
    uint32_t regsBefore = 0;
    uint32_t regsAfter = 0;
    /** fn.frame.size() before/after — frame objects it created. */
    uint32_t frameBefore = 0;
    uint32_t frameAfter = 0;
    /** The statement's own printed location in the base program. */
    SourceLoc loc;
    /**
     * Did lowering this statement move the location cursor, and where
     * did it leave it (base coordinates)? For leaf statements the end
     * cursor is the statement's own loc, but a scope Block leaves it
     * at its *last inner statement* (blocks never setLoc themselves),
     * and an empty block does not move it at all — a replay must
     * restore exactly what a scratch lowering would leave behind,
     * because the next loc-inheriting emission (e.g. the branch
     * closing an enclosing if) bakes it into the module.
     */
    bool setOwnLoc = false;
    SourceLoc endLoc;
};

/**
 * Per-function lowering provenance, recorded while lowering a base
 * program and consumed when incrementally lowering a derived clone.
 */
struct FunctionLoweringInfo
{
    /** The FunctionDecl nodeId this module function was lowered from. */
    uint32_t declId = 0;
    /**
     * Arena-range fingerprint of the function's AST subtree. The
     * memcpy clone preserves arena indices and slot bytes, so an
     * unperturbed function matches by re-hashing the recorded range;
     * any in-place rewrite or insertion changes the covered bytes or
     * falls outside the range — the structural half of the
     * splice-safety proof.
     */
    SubtreeFingerprint astFingerprint;
    /** Every nodeId whose source location the lowering consumed. The
     *  locational half of the proof: splicing requires all of them to
     *  shift by one uniform line delta in the derived printing. */
    std::vector<uint32_t> locDeps;
    /**
     * Instructions (blockId, instIndex) whose location was inherited
     * from whatever statement lowered *before* this function (the
     * lowering cursor is not reset between functions). These do not
     * shift with the function body; the splicer re-stamps them with
     * its own current cursor, exactly as a fresh lowering would.
     */
    std::vector<std::pair<uint32_t, uint32_t>> inheritedLocInsts;
    /** Did this function ever set its own location cursor? */
    bool setOwnLoc = false;
    /** Cursor value when the function finished (base coordinates);
     *  meaningful only when setOwnLoc. */
    SourceLoc endLoc;
    /**
     * Statement-level provenance, keyed by statement nodeId. When the
     * whole-function splice proof fails (the function *is* the
     * perturbed one), the incremental lowering still replays every
     * provably unchanged simple statement from here and re-lowers only
     * the perturbed statements and the compound shells around them.
     */
    std::unordered_map<uint32_t, StmtLoweringInfo> stmts;
};

/** Lowering provenance for a whole module (parallel to functions). */
struct LoweringInfo
{
    std::vector<FunctionLoweringInfo> functions;
};

/** Work counters of one incremental lowering. */
struct IncrementalStats
{
    /** Functions whose IR was spliced whole from the base module. */
    size_t splicedFunctions = 0;
    /** Functions lowered statement-by-statement (perturbed or failed
     *  whole-function proof). */
    size_t reloweredFunctions = 0;
    /** Statement ranges replayed from base provenance inside
     *  re-lowered functions. */
    size_t copiedStmts = 0;
    /** Statements actually lowered from the derived AST. */
    size_t reloweredStmts = 0;
};

/** Lower @p program to an IR module using @p map for debug locations.
 *  When @p info is non-null, records splice provenance into it. */
Module lowerProgram(const ast::Program &program, const ast::SourceMap &map,
                    LoweringInfo *info = nullptr);

/**
 * Incrementally lower @p derived — a node-id-preserving clone of the
 * base program with perturbations confined to the function with decl
 * nodeId @p perturbedFnId plus appended globals — against @p derivedMap,
 * splicing function IR from @p base (lowered with provenance @p baseInfo
 * against @p baseMap) wherever the per-function proof holds:
 *
 *   1. same position, same FunctionDecl nodeId, not the perturbed one,
 *   2. identical AST fingerprint (no structural change), and
 *   3. every consumed source location shifted by one uniform line delta
 *      with unchanged intra-line offsets.
 *
 * Functions failing any check are transparently re-lowered from the
 * derived AST, so the result is always exactly `lowerProgram(derived,
 * derivedMap)` — bit-identical instruction streams, frames, globals,
 * and debug locations (and therefore an identical ir::executionKey).
 * Globals are always lowered fresh (they carry no instructions).
 */
Module lowerProgramIncremental(const ast::Program &derived,
                               const ast::SourceMap &derivedMap,
                               const Module &base,
                               const LoweringInfo &baseInfo,
                               const ast::SourceMap &baseMap,
                               uint32_t perturbedFnId,
                               IncrementalStats *stats = nullptr);

/** The register-kind a MiniC type occupies (pointers/arrays are U64). */
ScalarKind scalarKindOf(const ast::Type *t);

} // namespace ubfuzz::ir

#endif // UBFUZZ_IR_LOWERING_H
