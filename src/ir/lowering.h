/**
 * @file
 * AST -> IR lowering.
 *
 * Lowering consumes the SourceMap produced by printing the program, so
 * every instruction gets the (line, offset) of the expression it came
 * from — the debug metadata that crash-site mapping depends on.
 */

#ifndef UBFUZZ_IR_LOWERING_H
#define UBFUZZ_IR_LOWERING_H

#include "ast/ast.h"
#include "ast/printer.h"
#include "ir/ir.h"

namespace ubfuzz::ir {

/** Lower @p program to an IR module using @p map for debug locations. */
Module lowerProgram(const ast::Program &program, const ast::SourceMap &map);

/** The register-kind a MiniC type occupies (pointers/arrays are U64). */
ScalarKind scalarKindOf(const ast::Type *t);

} // namespace ubfuzz::ir

#endif // UBFUZZ_IR_LOWERING_H
