#include "ir/lowering.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "ast/typing.h"

namespace ubfuzz::ir {

using namespace ast;

ScalarKind
scalarKindOf(const Type *t)
{
    if (t->isPointer() || t->isArray())
        return ScalarKind::U64;
    UBF_ASSERT(t->isScalar(), "no register kind for struct values");
    return t->scalar();
}

namespace {

/** A lowered rvalue: an operand plus its kind. */
struct RV
{
    Value v;
    ScalarKind kind = ScalarKind::S64;
};

/**
 * Computes a SubtreeFingerprint: walks a subtree once to find the
 * [min, max] arena-index span of its nodes, then hashes the raw slot
 * bytes of that range (ASTContext::hashNodeRange). The walk recurses
 * only into *owned* children — statements, expressions, parameters,
 * declaration initializers. Cross-references (a VarRef's decl, a
 * Call's callee, a Member's field) are NOT recursed: their arena
 * indices sit in the referencing node's own slot bytes, so the hash
 * already pins them, and chasing them would balloon the span to
 * wherever the declaration lives. The walk runs once per *recorded*
 * subtree (seed-side); verification on a derived clone is a pure
 * range re-hash with no walk at all.
 */
class SubtreeSpan
{
  public:
    SubtreeFingerprint
    run(const FunctionDecl *f)
    {
        touch(f);
        for (const VarDecl *p : f->params())
            walkVarDecl(p);
        if (f->body())
            walkStmt(f->body());
        return finish(f->ctx());
    }

    SubtreeFingerprint
    runStmt(const Stmt *s)
    {
        walkStmt(s);
        return finish(s->ctx());
    }

  private:
    NodeIndex lo_ = ast::kNullNode;
    NodeIndex hi_ = 0;

    void
    touch(const Node *n)
    {
        NodeIndex i = n->arenaIndex();
        if (i < lo_)
            lo_ = i;
        if (i > hi_)
            hi_ = i;
    }

    SubtreeFingerprint
    finish(const ASTContext &ctx) const
    {
        UBF_ASSERT(lo_ != ast::kNullNode, "empty subtree span");
        SubtreeFingerprint fp;
        fp.begin = lo_;
        fp.end = hi_ + 1;
        fp.hash = ctx.hashNodeRange(fp.begin, fp.end);
        return fp;
    }

    void
    walkExpr(const Expr *e)
    {
        touch(e);
        forEachChildExpr(const_cast<Expr *>(e),
                         [&](Expr *c) { walkExpr(c); });
    }

    void
    walkVarDecl(const VarDecl *v)
    {
        touch(v);
        if (v->init())
            walkExpr(v->init());
    }

    void
    walkStmt(const Stmt *s)
    {
        touch(s);
        switch (s->kind()) {
          case NodeKind::Block:
            for (const Stmt *c : s->as<Block>()->stmts())
                walkStmt(c);
            break;
          case NodeKind::DeclStmt:
            walkVarDecl(s->as<DeclStmt>()->var());
            break;
          case NodeKind::AssignStmt: {
            auto *a = s->as<AssignStmt>();
            walkExpr(a->lhs());
            walkExpr(a->rhs());
            break;
          }
          case NodeKind::ExprStmt:
            walkExpr(s->as<ExprStmt>()->expr());
            break;
          case NodeKind::IfStmt: {
            auto *i = s->as<IfStmt>();
            walkExpr(i->cond());
            walkStmt(i->thenBlock());
            if (i->elseBlock())
                walkStmt(i->elseBlock());
            break;
          }
          case NodeKind::WhileStmt:
            walkExpr(s->as<WhileStmt>()->cond());
            walkStmt(s->as<WhileStmt>()->body());
            break;
          case NodeKind::ForStmt: {
            auto *f = s->as<ForStmt>();
            if (f->init())
                walkStmt(f->init());
            if (f->cond())
                walkExpr(f->cond());
            if (f->step())
                walkStmt(f->step());
            walkStmt(f->body());
            break;
          }
          case NodeKind::ReturnStmt:
            if (s->as<ReturnStmt>()->value())
                walkExpr(s->as<ReturnStmt>()->value());
            break;
          case NodeKind::BreakStmt:
          case NodeKind::ContinueStmt:
            break;
          default:
            UBF_PANIC("subtree span: unhandled statement");
        }
    }
};

/** Base-module reuse inputs of one incremental lowering. */
struct ReusePlan
{
    const Module *base = nullptr;
    const LoweringInfo *info = nullptr;
    const SourceMap *baseMap = nullptr;
    uint32_t perturbedFnId = 0;
    IncrementalStats *stats = nullptr;
};

/** Statement-level reuse context for one re-lowered function. */
struct StmtReuseCtx
{
    const Function *baseFn = nullptr;
    const FunctionLoweringInfo *info = nullptr;
    IncrementalStats *stats = nullptr;
};

class Lowerer
{
  public:
    Lowerer(const Program &p, const SourceMap &map,
            LoweringInfo *record = nullptr,
            const ReusePlan *reuse = nullptr)
        : prog_(p), map_(map), record_(record), reuse_(reuse)
    {
        UBF_ASSERT(!(record_ && reuse_),
                   "recording provenance of a spliced module would "
                   "leave gaps; lower from scratch to record");
    }

    Module
    run()
    {
        lowerGlobals();
        // Create all functions up front so calls can reference them.
        for (const FunctionDecl *f : prog_.functions()) {
            Function fn;
            fn.name = f->name();
            fn.retKind = f->retType()->isVoid()
                             ? ScalarKind::Void
                             : scalarKindOf(f->retType());
            funcIndex_[f] = static_cast<uint32_t>(module_.functions.size());
            module_.functions.push_back(std::move(fn));
        }
        const auto &funcs = prog_.functions();
        for (size_t i = 0; i < funcs.size(); i++) {
            if (reuse_ && trySplice(i, funcs[i])) {
                if (reuse_->stats)
                    reuse_->stats->splicedFunctions++;
                continue;
            }
            // Whole-function reuse is off the table (this is the
            // perturbed function, or the proof failed); fall back to
            // statement-level replay if base provenance lines up.
            StmtReuseCtx stmtCtx;
            if (reuse_ && i < reuse_->base->functions.size() &&
                i < reuse_->info->functions.size() &&
                reuse_->info->functions[i].declId == funcs[i]->nodeId()) {
                stmtCtx.baseFn = &reuse_->base->functions[i];
                stmtCtx.info = &reuse_->info->functions[i];
                stmtCtx.stats = reuse_->stats;
                stmtReuse_ = &stmtCtx;
            }
            if (reuse_ && reuse_->stats)
                reuse_->stats->reloweredFunctions++;
            if (record_) {
                record_->functions.emplace_back();
                curInfo_ = &record_->functions.back();
                curInfo_->declId = funcs[i]->nodeId();
                curInfo_->astFingerprint = SubtreeSpan().run(funcs[i]);
            }
            lowerFunction(funcs[i]);
            stmtReuse_ = nullptr;
            if (curInfo_) {
                curInfo_->setOwnLoc = ownLocSet_;
                curInfo_->endLoc = curLoc_;
                curInfo_ = nullptr;
            }
        }
        if (prog_.main())
            module_.mainIndex =
                static_cast<int32_t>(funcIndex_.at(prog_.main()));
        return std::move(module_);
    }

  private:
    //===------------------------------------------------------------===//
    // Globals
    //===------------------------------------------------------------===//

    void
    lowerGlobals()
    {
        // Two-phase: indices first (address-of initializers may refer to
        // later globals), then initial bytes.
        for (const VarDecl *g : prog_.globals()) {
            GlobalObject obj;
            obj.name = g->name();
            obj.size = g->type()->size();
            obj.align = static_cast<uint32_t>(g->type()->align());
            obj.init.assign(obj.size, 0);
            obj.declId = g->nodeId();
            globalIndex_[g] = static_cast<uint32_t>(module_.globals.size());
            module_.globals.push_back(std::move(obj));
        }
        for (const VarDecl *g : prog_.globals()) {
            if (!g->init())
                continue;
            GlobalObject &obj = module_.globals[globalIndex_.at(g)];
            if (auto *il = g->init()->dynCast<InitList>()) {
                UBF_ASSERT(g->type()->isArray(),
                           "init list on non-array global");
                uint64_t esz = g->type()->element()->size();
                for (size_t i = 0; i < il->elems().size(); i++) {
                    initScalar(obj, i * esz, il->elems()[i],
                               g->type()->element());
                }
            } else {
                initScalar(obj, 0, g->init(), g->type());
            }
        }
    }

    /** Evaluate a constant initializer into bytes/relocations. */
    void
    initScalar(GlobalObject &obj, uint64_t offset, const Expr *e,
               const Type *slotType)
    {
        // Address-of initializers become relocations.
        int64_t addend = 0;
        if (const VarDecl *target = constAddress(e, addend)) {
            obj.relocs.push_back(
                {offset, globalIndex_.at(target), addend});
            return;
        }
        uint64_t value = constEval(e);
        uint64_t size = slotType->size();
        for (uint64_t i = 0; i < size; i++)
            obj.init[offset + i] = static_cast<uint8_t>(value >> (8 * i));
    }

    /**
     * Recognize constant address expressions: &g, &g[i], &g.f, g (array
     * decay), possibly wrapped in pointer casts.
     */
    const VarDecl *
    constAddress(const Expr *e, int64_t &addend)
    {
        switch (e->kind()) {
          case NodeKind::Cast:
            return constAddress(e->as<Cast>()->sub(), addend);
          case NodeKind::VarRef: {
            const VarDecl *v = e->as<VarRef>()->decl();
            if (v->type()->isArray() && v->storage() == Storage::Global) {
                addend = 0;
                return v;
            }
            return nullptr;
          }
          case NodeKind::Unary: {
            auto *u = e->as<Unary>();
            if (u->op() != UnaryOp::AddrOf)
                return nullptr;
            return constLValue(u->sub(), addend);
          }
          default:
            return nullptr;
        }
    }

    const VarDecl *
    constLValue(const Expr *e, int64_t &addend)
    {
        switch (e->kind()) {
          case NodeKind::VarRef: {
            const VarDecl *v = e->as<VarRef>()->decl();
            if (v->storage() != Storage::Global)
                return nullptr;
            addend = 0;
            return v;
          }
          case NodeKind::Index: {
            auto *ix = e->as<Index>();
            int64_t base_add = 0;
            const VarDecl *v = constLValue(ix->base(), base_add);
            if (!v)
                return nullptr;
            int64_t idx = static_cast<int64_t>(constEval(ix->index()));
            addend =
                base_add +
                idx * static_cast<int64_t>(
                          indexResultType(ix->base()->type())->size());
            return v;
          }
          case NodeKind::Member: {
            auto *m = e->as<Member>();
            if (m->isArrow())
                return nullptr;
            int64_t base_add = 0;
            const VarDecl *v = constLValue(m->base(), base_add);
            if (!v)
                return nullptr;
            addend = base_add +
                     static_cast<int64_t>(m->field()->offset());
            return v;
          }
          default:
            return nullptr;
        }
    }

    uint64_t
    constEval(const Expr *e)
    {
        switch (e->kind()) {
          case NodeKind::IntLit:
            return e->as<IntLit>()->value();
          case NodeKind::Cast:
            return canonicalize(constEval(e->as<Cast>()->sub()),
                                scalarKindOf(e->type()));
          case NodeKind::Unary: {
            auto *u = e->as<Unary>();
            uint64_t s = constEval(u->sub());
            switch (u->op()) {
              case UnaryOp::Neg:
                return canonicalize(0 - s, scalarKindOf(e->type()));
              case UnaryOp::BitNot:
                return canonicalize(~s, scalarKindOf(e->type()));
              case UnaryOp::LogNot:
                return s == 0;
              default:
                break;
            }
            UBF_PANIC("non-constant unary initializer");
          }
          case NodeKind::Binary: {
            auto *b = e->as<Binary>();
            uint64_t l = constEval(b->lhs());
            uint64_t r = constEval(b->rhs());
            ScalarKind k = scalarKindOf(e->type());
            switch (b->op()) {
              case BinaryOp::Add: return canonicalize(l + r, k);
              case BinaryOp::Sub: return canonicalize(l - r, k);
              case BinaryOp::Mul: return canonicalize(l * r, k);
              default:
                UBF_PANIC("non-constant binary initializer");
            }
          }
          default:
            UBF_PANIC("non-constant global initializer");
        }
    }

    /** Canonical 64-bit representation of a value of kind @p k. */
    static uint64_t
    canonicalize(uint64_t raw, ScalarKind k)
    {
        int bits = scalarBits(k);
        if (bits >= 64)
            return raw;
        uint64_t mask = (1ULL << bits) - 1;
        raw &= mask;
        if (scalarSigned(k) && (raw & (1ULL << (bits - 1))))
            raw |= ~mask;
        return raw;
    }

    //===------------------------------------------------------------===//
    // Function lowering
    //===------------------------------------------------------------===//

    Function *fn_ = nullptr;
    uint32_t curBlock_ = 0;
    SourceLoc curLoc_;
    /** Has the current function set curLoc_ itself? Until it does,
     *  emitted fallback locations are inherited from the previous
     *  function and must be re-stamped by a splicer. */
    bool ownLocSet_ = false;
    /** Count of successful setLoc calls — lets the statement memo tell
     *  "this statement moved the cursor" apart from "it left the
     *  cursor exactly where it already was". */
    uint64_t locSeq_ = 0;
    std::vector<uint32_t> breakTargets_;
    std::vector<uint32_t> continueTargets_;

    /**
     * Splice base IR for function @p i instead of lowering it, when the
     * per-function proof holds (see lowerProgramIncremental). Patches
     * debug locations — uniform line shift for function-own ones, the
     * live cursor for inherited ones — and advances curLoc_ exactly as
     * lowering the function would have.
     */
    bool
    trySplice(size_t i, const FunctionDecl *f)
    {
        const Module &base = *reuse_->base;
        const LoweringInfo &binfo = *reuse_->info;
        if (i >= base.functions.size() || i >= binfo.functions.size())
            return false;
        const FunctionLoweringInfo &fi = binfo.functions[i];
        if (fi.declId != f->nodeId() ||
            f->nodeId() == reuse_->perturbedFnId)
            return false;
        // Pure range re-hash: the memcpy clone preserved arena indices
        // and slot bytes, so no tree walk is needed to prove the
        // function unperturbed.
        if (!fi.astFingerprint.matches(prog_.ctx(), f))
            return false;
        // Every location the base lowering consumed must reappear in
        // the derived printing at the same intra-line offset, shifted
        // by one uniform line delta.
        int32_t delta = 0;
        bool have_delta = false;
        for (uint32_t id : fi.locDeps) {
            SourceLoc b = reuse_->baseMap->loc(id);
            SourceLoc d = map_.loc(id);
            if (b.isValid() != d.isValid())
                return false;
            if (!b.isValid())
                continue;
            if (d.offset != b.offset)
                return false;
            if (!have_delta) {
                delta = d.line - b.line;
                have_delta = true;
            } else if (d.line - b.line != delta) {
                return false;
            }
        }
        Function fn = base.functions[i];
        std::unordered_set<uint64_t> inherited;
        for (auto [bb, idx] : fi.inheritedLocInsts)
            inherited.insert((static_cast<uint64_t>(bb) << 32) | idx);
        for (BasicBlock &bb : fn.blocks) {
            for (size_t k = 0; k < bb.insts.size(); k++) {
                Inst &inst = bb.insts[k];
                if (!inherited.empty() &&
                    inherited.count(
                        (static_cast<uint64_t>(bb.id) << 32) | k)) {
                    inst.loc = curLoc_;
                } else if (inst.loc.isValid()) {
                    inst.loc.line += delta;
                }
            }
        }
        module_.functions[i] = std::move(fn);
        if (fi.setOwnLoc)
            curLoc_ = SourceLoc{fi.endLoc.line + delta, fi.endLoc.offset};
        return true;
    }

    void
    lowerFunction(const FunctionDecl *f)
    {
        fn_ = &module_.functions[funcIndex_.at(f)];
        localIndex_.clear();
        clearDeclIndex();
        ownLocSet_ = false;
        depSet_.clear();
        // Parameters occupy the first frame slots.
        for (const VarDecl *p : f->params()) {
            FrameObject obj;
            obj.name = p->name();
            obj.size = p->type()->size();
            obj.align = static_cast<uint32_t>(p->type()->align());
            obj.declId = p->nodeId();
            uint32_t idx = static_cast<uint32_t>(fn_->frame.size());
            localIndex_[p] = idx;
            setDeclIndex(p->nodeId(), idx);
            fn_->frame.push_back(std::move(obj));
        }
        fn_->numParams = static_cast<uint32_t>(f->params().size());
        curBlock_ = newBlock();
        lowerBlock(f->body());
        finalize();
        fn_ = nullptr;
    }

    uint32_t
    newBlock()
    {
        uint32_t id = static_cast<uint32_t>(fn_->blocks.size());
        fn_->blocks.push_back(BasicBlock{id, {}});
        return id;
    }

    Inst &
    emit(Inst inst)
    {
        auto &insts = fn_->blocks[curBlock_].insts;
        if (!inst.loc.isValid()) {
            inst.loc = curLoc_;
            if (curInfo_ && !ownLocSet_)
                curInfo_->inheritedLocInsts.push_back(
                    {curBlock_, static_cast<uint32_t>(insts.size())});
        }
        insts.push_back(std::move(inst));
        return insts.back();
    }

    uint32_t
    emitValue(Inst inst)
    {
        inst.dst = fn_->newReg();
        uint32_t dst = inst.dst;
        emit(std::move(inst));
        return dst;
    }

    /** Source-map lookup that records the consumed node id as a splice
     *  provenance dependency when recording is on. */
    SourceLoc
    mapLoc(uint32_t id)
    {
        if (curInfo_ && depSet_.insert(id).second)
            curInfo_->locDeps.push_back(id);
        return map_.loc(id);
    }

    void
    setLoc(const Node *n)
    {
        SourceLoc l = mapLoc(n->nodeId());
        if (l.isValid()) {
            curLoc_ = l;
            ownLocSet_ = true;
            locSeq_++;
        }
    }

    /** Every created block must end in a terminator. */
    void
    finalize()
    {
        for (BasicBlock &bb : fn_->blocks) {
            if (!bb.insts.empty() && bb.insts.back().isTerminator())
                continue;
            Inst ret;
            ret.op = Opcode::Ret;
            if (fn_->retKind != ScalarKind::Void)
                ret.a = Value::makeImm(0);
            ret.loc = curLoc_;
            if (curInfo_ && !ownLocSet_)
                curInfo_->inheritedLocInsts.push_back(
                    {bb.id, static_cast<uint32_t>(bb.insts.size())});
            bb.insts.push_back(std::move(ret));
        }
    }

    bool
    blockTerminated() const
    {
        const auto &insts = fn_->blocks[curBlock_].insts;
        return !insts.empty() && insts.back().isTerminator();
    }

    uint32_t
    allocTemp(uint64_t size = 8)
    {
        FrameObject obj;
        obj.name = "tmp" + std::to_string(fn_->frame.size());
        obj.size = size;
        uint32_t idx = static_cast<uint32_t>(fn_->frame.size());
        fn_->frame.push_back(std::move(obj));
        return idx;
    }

    //===------------------------------------------------------------===//
    // Statements
    //===------------------------------------------------------------===//

    /** Lowering-state snapshot taken before each statement, for the
     *  statement provenance memo. */
    struct StmtSnapshot
    {
        uint32_t block = 0;
        uint32_t instCount = 0;
        uint32_t numBlocks = 0;
        uint32_t numRegs = 0;
        uint32_t frameSize = 0;
        uint64_t locSeq = 0;
    };

    StmtSnapshot
    takeSnapshot() const
    {
        return {curBlock_,
                static_cast<uint32_t>(fn_->blocks[curBlock_].insts.size()),
                static_cast<uint32_t>(fn_->blocks.size()), fn_->numRegs,
                static_cast<uint32_t>(fn_->frame.size()), locSeq_};
    }

    /** Memoize @p s's emission when it was simple: contiguous in one
     *  block, no new blocks, and the statement has a printed loc. */
    void
    maybeRecordStmt(const Stmt *s, const StmtSnapshot &snap)
    {
        if (curBlock_ != snap.block ||
            static_cast<uint32_t>(fn_->blocks.size()) != snap.numBlocks)
            return;
        SourceLoc l = map_.loc(s->nodeId());
        if (!l.isValid())
            return;
        StmtLoweringInfo m;
        m.fingerprint = SubtreeSpan().runStmt(s);
        m.block = snap.block;
        m.instStart = snap.instCount;
        m.instEnd =
            static_cast<uint32_t>(fn_->blocks[curBlock_].insts.size());
        m.numBlocks = snap.numBlocks;
        m.regsBefore = snap.numRegs;
        m.regsAfter = fn_->numRegs;
        m.frameBefore = snap.frameSize;
        m.frameAfter = static_cast<uint32_t>(fn_->frame.size());
        m.loc = l;
        m.setOwnLoc = locSeq_ != snap.locSeq;
        m.endLoc = curLoc_;
        curInfo_->stmts.emplace(s->nodeId(), std::move(m));
    }

    void
    lowerBlock(const Block *b)
    {
        std::vector<uint32_t> scoped;
        for (const Stmt *s : b->stmts()) {
            StmtSnapshot snap;
            if (curInfo_)
                snap = takeSnapshot();
            if (auto *d = s->dynCast<DeclStmt>()) {
                uint32_t idx;
                if (auto copied = tryCopyStmt(s))
                    idx = *copied;
                else
                    idx = lowerDecl(d);
                scoped.push_back(idx);
            } else {
                if (!tryCopyStmt(s))
                    lowerStmt(s);
            }
            if (curInfo_)
                maybeRecordStmt(s, snap);
            if (blockTerminated()) {
                // Everything after return/break is unreachable; park the
                // cursor on a fresh block that finalize() will close.
                curBlock_ = newBlock();
            }
        }
        // Close lexical scopes in reverse declaration order.
        for (auto it = scoped.rbegin(); it != scoped.rend(); ++it) {
            Inst end;
            end.op = Opcode::LifetimeEnd;
            end.object = *it;
            emit(std::move(end));
        }
    }

    /**
     * Replay @p s's base IR range instead of lowering it, when its
     * provenance proves it unperturbed and the current lowering state
     * is offset-compatible: same emission block id and block count
     * (shadow statements are straight-line, so block allocation stays
     * aligned), registers and own frame objects shifted by constant
     * deltas, cross-statement variable references resolved by decl
     * node id, and every debug location shifted by the statement's own
     * line delta (simple statements print on one line). Returns the
     * new frame index of the declared variable for DeclStmts, a dummy
     * for other kinds, or nullopt when the statement must be lowered
     * for real.
     */
    std::optional<uint32_t>
    tryCopyStmt(const Stmt *s)
    {
        if (!stmtReuse_)
            return std::nullopt;
        auto it = stmtReuse_->info->stmts.find(s->nodeId());
        if (it == stmtReuse_->info->stmts.end()) {
            if (stmtReuse_->stats)
                stmtReuse_->stats->reloweredStmts++;
            return std::nullopt;
        }
        const StmtLoweringInfo &m = it->second;
        const Function &bfn = *stmtReuse_->baseFn;
        auto bail = [&]() -> std::optional<uint32_t> {
            if (stmtReuse_->stats)
                stmtReuse_->stats->reloweredStmts++;
            return std::nullopt;
        };
        if (curBlock_ != m.block ||
            static_cast<uint32_t>(fn_->blocks.size()) != m.numBlocks)
            return bail();
        if (m.block >= bfn.blocks.size() ||
            m.instEnd > bfn.blocks[m.block].insts.size() ||
            m.frameAfter > bfn.frame.size())
            return bail();
        SourceLoc d = map_.loc(s->nodeId());
        if (!d.isValid() || d.offset != m.loc.offset)
            return bail();
        if (!m.fingerprint.matches(prog_.ctx(), s))
            return bail();
        int32_t dline = d.line - m.loc.line;
        int64_t dreg = static_cast<int64_t>(fn_->numRegs) - m.regsBefore;
        uint32_t newFrameStart = static_cast<uint32_t>(fn_->frame.size());

        // Transform into a scratch vector first so a failed proof
        // leaves no partial state behind.
        std::vector<Inst> copied;
        copied.reserve(m.instEnd - m.instStart);
        bool ok = true;
        auto remapReg = [&](uint32_t r) -> uint32_t {
            if (r == 0)
                return 0;
            if (r < m.regsBefore) {
                ok = false; // cross-statement register: not replayable
                return r;
            }
            return static_cast<uint32_t>(r + dreg);
        };
        auto remapVal = [&](Value v) -> Value {
            if (v.isReg())
                v.reg = remapReg(v.reg);
            return v;
        };
        for (uint32_t k = m.instStart; k < m.instEnd && ok; k++) {
            Inst inst = bfn.blocks[m.block].insts[k];
            inst.dst = remapReg(inst.dst);
            inst.a = remapVal(inst.a);
            inst.b = remapVal(inst.b);
            inst.c = remapVal(inst.c);
            for (Value &a : inst.args)
                a = remapVal(a);
            if (inst.op == Opcode::FrameAddr ||
                inst.op == Opcode::LifetimeStart ||
                inst.op == Opcode::LifetimeEnd) {
                if (inst.object >= m.frameBefore) {
                    inst.object =
                        inst.object - m.frameBefore + newFrameStart;
                } else {
                    // A variable declared by an earlier statement:
                    // rebind by decl node id (its index may have
                    // shifted past an inserted declaration).
                    const FrameObject &bo = bfn.frame[inst.object];
                    const uint32_t *di =
                        bo.declId ? findDeclIndex(bo.declId) : nullptr;
                    if (!di) {
                        ok = false;
                        break;
                    }
                    inst.object = *di;
                }
            }
            if (inst.op == Opcode::Br || inst.op == Opcode::CondBr) {
                // Only already-existing targets can appear in a simple
                // statement (break/continue to enclosing-loop blocks,
                // which the re-lowered shells allocated at aligned
                // ids); unused target slots hold 0 and pass trivially.
                for (uint32_t t : inst.targets) {
                    if (t >= m.numBlocks) {
                        ok = false;
                        break;
                    }
                }
            }
            if (inst.loc.isValid())
                inst.loc.line += dline;
            copied.push_back(std::move(inst));
        }
        if (!ok)
            return bail();

        // Commit: instructions, frame objects, registers, cursor.
        auto &insts = fn_->blocks[curBlock_].insts;
        insts.insert(insts.end(),
                     std::make_move_iterator(copied.begin()),
                     std::make_move_iterator(copied.end()));
        for (uint32_t fi = m.frameBefore; fi < m.frameAfter; fi++) {
            FrameObject obj = bfn.frame[fi];
            uint32_t nidx = static_cast<uint32_t>(fn_->frame.size());
            if (obj.declId)
                setDeclIndex(obj.declId, nidx);
            else
                obj.name = "tmp" + std::to_string(nidx);
            fn_->frame.push_back(std::move(obj));
        }
        fn_->numRegs = static_cast<uint32_t>(m.regsAfter + dreg);
        // Restore the cursor exactly where a scratch lowering of this
        // statement would leave it: its last setLoc, line-shifted — or
        // untouched when the statement never moved it (empty block).
        if (m.setOwnLoc)
            curLoc_ = SourceLoc{m.endLoc.line + dline, m.endLoc.offset};
        if (auto *ds = s->dynCast<DeclStmt>())
            localIndex_[ds->var()] = newFrameStart;
        if (stmtReuse_->stats)
            stmtReuse_->stats->copiedStmts++;
        return newFrameStart;
    }

    uint32_t
    lowerDecl(const DeclStmt *d)
    {
        const VarDecl *v = d->var();
        setLoc(d);
        FrameObject obj;
        obj.name = v->name();
        obj.size = v->type()->size();
        obj.align = static_cast<uint32_t>(v->type()->align());
        obj.scoped = true;
        obj.declId = v->nodeId();
        uint32_t idx = static_cast<uint32_t>(fn_->frame.size());
        fn_->frame.push_back(std::move(obj));
        localIndex_[v] = idx;
        setDeclIndex(v->nodeId(), idx);

        Inst start;
        start.op = Opcode::LifetimeStart;
        start.object = idx;
        emit(std::move(start));

        if (v->init()) {
            uint32_t addr = emitValue(
                [&] {
                    Inst fa;
                    fa.op = Opcode::FrameAddr;
                    fa.object = idx;
                    return fa;
                }());
            if (auto *il = v->init()->dynCast<InitList>()) {
                uint64_t esz = v->type()->element()->size();
                ScalarKind ek = scalarKindOf(v->type()->element());
                // Explicit elements, then zero-fill the rest (C
                // semantics for partial initializer lists).
                for (uint32_t i = 0; i < v->type()->arraySize(); i++) {
                    RV rv;
                    if (i < il->elems().size()) {
                        rv = lowerExpr(il->elems()[i]);
                        rv = convert(rv, ek);
                    } else {
                        rv = RV{Value::makeImm(0), ek};
                    }
                    Inst g;
                    g.op = Opcode::Gep;
                    g.a = Value::makeReg(addr);
                    g.b = Value::makeImm(i);
                    g.imm = esz;
                    uint32_t ea = fn_->newReg();
                    g.dst = ea;
                    emit(std::move(g));
                    Inst st;
                    st.op = Opcode::Store;
                    st.a = Value::makeReg(ea);
                    st.b = rv.v;
                    st.imm = esz;
                    emit(std::move(st));
                }
            } else {
                RV rv = lowerExpr(v->init());
                ScalarKind k = scalarKindOf(v->type());
                rv = convert(rv, k);
                Inst st;
                st.op = Opcode::Store;
                st.a = Value::makeReg(addr);
                st.b = rv.v;
                st.imm = v->type()->size();
                emit(std::move(st));
            }
        }
        return idx;
    }

    void
    lowerStmt(const Stmt *s)
    {
        switch (s->kind()) {
          case NodeKind::AssignStmt:
            lowerAssign(s->as<AssignStmt>());
            break;
          case NodeKind::ExprStmt:
            setLoc(s);
            lowerExpr(s->as<ExprStmt>()->expr());
            break;
          case NodeKind::IfStmt: {
            auto *i = s->as<IfStmt>();
            setLoc(i->cond());
            RV cond = lowerExpr(i->cond());
            uint32_t then_bb = newBlock();
            uint32_t else_bb = i->elseBlock() ? newBlock() : 0;
            uint32_t join_bb = newBlock();
            emitCondBr(cond, then_bb,
                       i->elseBlock() ? else_bb : join_bb,
                       mapLoc(i->cond()->nodeId()));
            curBlock_ = then_bb;
            lowerBlock(i->thenBlock());
            emitBr(join_bb);
            if (i->elseBlock()) {
                curBlock_ = else_bb;
                lowerBlock(i->elseBlock());
                emitBr(join_bb);
            }
            curBlock_ = join_bb;
            break;
          }
          case NodeKind::WhileStmt: {
            auto *w = s->as<WhileStmt>();
            uint32_t cond_bb = newBlock();
            uint32_t body_bb = newBlock();
            uint32_t exit_bb = newBlock();
            emitBr(cond_bb);
            curBlock_ = cond_bb;
            setLoc(w->cond());
            RV cond = lowerExpr(w->cond());
            emitCondBr(cond, body_bb, exit_bb,
                       mapLoc(w->cond()->nodeId()));
            breakTargets_.push_back(exit_bb);
            continueTargets_.push_back(cond_bb);
            curBlock_ = body_bb;
            lowerBlock(w->body());
            emitBr(cond_bb);
            breakTargets_.pop_back();
            continueTargets_.pop_back();
            curBlock_ = exit_bb;
            break;
          }
          case NodeKind::ForStmt: {
            auto *f = s->as<ForStmt>();
            uint32_t init_obj = UINT32_MAX;
            if (f->init()) {
                if (auto *d = f->init()->dynCast<DeclStmt>())
                    init_obj = lowerDecl(d);
                else
                    lowerAssign(f->init()->as<AssignStmt>());
            }
            uint32_t cond_bb = newBlock();
            uint32_t body_bb = newBlock();
            uint32_t step_bb = newBlock();
            uint32_t exit_bb = newBlock();
            emitBr(cond_bb);
            curBlock_ = cond_bb;
            if (f->cond()) {
                setLoc(f->cond());
                RV cond = lowerExpr(f->cond());
                emitCondBr(cond, body_bb, exit_bb,
                           mapLoc(f->cond()->nodeId()));
            } else {
                emitBr(body_bb);
            }
            breakTargets_.push_back(exit_bb);
            continueTargets_.push_back(step_bb);
            curBlock_ = body_bb;
            lowerBlock(f->body());
            emitBr(step_bb);
            curBlock_ = step_bb;
            if (f->step())
                lowerAssign(f->step()->as<AssignStmt>());
            emitBr(cond_bb);
            breakTargets_.pop_back();
            continueTargets_.pop_back();
            curBlock_ = exit_bb;
            if (init_obj != UINT32_MAX) {
                Inst end;
                end.op = Opcode::LifetimeEnd;
                end.object = init_obj;
                emit(std::move(end));
            }
            break;
          }
          case NodeKind::Block:
            lowerBlock(s->as<Block>());
            break;
          case NodeKind::ReturnStmt: {
            auto *r = s->as<ReturnStmt>();
            setLoc(s);
            Inst ret;
            ret.op = Opcode::Ret;
            if (r->value()) {
                RV rv = lowerExpr(r->value());
                rv = convert(rv, fn_->retKind);
                ret.a = rv.v;
            } else if (fn_->retKind != ScalarKind::Void) {
                ret.a = Value::makeImm(0);
            }
            emit(std::move(ret));
            break;
          }
          case NodeKind::BreakStmt:
            setLoc(s);
            UBF_ASSERT(!breakTargets_.empty(), "break outside loop");
            emitBr(breakTargets_.back());
            break;
          case NodeKind::ContinueStmt:
            setLoc(s);
            UBF_ASSERT(!continueTargets_.empty(),
                       "continue outside loop");
            emitBr(continueTargets_.back());
            break;
          default:
            UBF_PANIC("lowerStmt: unhandled statement");
        }
    }

    void
    emitBr(uint32_t target)
    {
        if (blockTerminated())
            return;
        Inst br;
        br.op = Opcode::Br;
        br.targets[0] = target;
        emit(std::move(br));
    }

    void
    emitCondBr(RV cond, uint32_t t, uint32_t f, SourceLoc loc)
    {
        Inst br;
        br.op = Opcode::CondBr;
        br.a = cond.v;
        br.kind = cond.kind;
        br.targets[0] = t;
        br.targets[1] = f;
        br.loc = loc;
        emit(std::move(br));
    }

    void
    lowerAssign(const AssignStmt *a)
    {
        setLoc(a);
        const Type *lt = a->lhs()->type();
        if (lt->isStruct()) {
            UBF_ASSERT(a->op() == AssignOp::Assign,
                       "compound assign on struct");
            Value dst = lowerAddr(a->lhs());
            Value src = lowerAddr(a->rhs());
            Inst mc;
            mc.op = Opcode::MemCopy;
            mc.a = dst;
            mc.b = src;
            mc.imm = lt->size();
            mc.loc = mapLoc(a->lhs()->nodeId());
            emit(std::move(mc));
            return;
        }
        Value addr = lowerAddr(a->lhs());
        ScalarKind lk = scalarKindOf(lt);
        RV rhs;
        if (a->op() == AssignOp::Assign) {
            rhs = lowerExpr(a->rhs());
        } else {
            // lhs op= rhs  ==  lhs = (T)(lhs op rhs)
            Inst ld;
            ld.op = Opcode::Load;
            ld.a = addr;
            ld.imm = lt->size();
            ld.kind = lk;
            ld.loc = mapLoc(a->lhs()->nodeId());
            RV cur{Value::makeReg(emitValue(std::move(ld))), lk};
            RV rv = lowerExpr(a->rhs());
            BinaryOp bop = assignOpBinary(a->op());
            const Type *common;
            if (lt->isPointer()) {
                common = lt;
            } else {
                common = binaryResultType(
                    const_cast<Program &>(prog_).types(), bop, lt,
                    a->rhs()->type());
            }
            ScalarKind ck = scalarKindOf(common);
            if (lt->isPointer()) {
                // Pointer += integer: scaled address arithmetic.
                RV idx = convert(rv, ScalarKind::S64);
                Inst g;
                g.op = Opcode::Gep;
                g.a = cur.v;
                g.b = idx.v;
                g.imm = lt->element()->size();
                if (bop == BinaryOp::Sub) {
                    Inst neg;
                    neg.op = Opcode::Bin;
                    neg.binOp = BinaryOp::Sub;
                    neg.kind = ScalarKind::S64;
                    neg.a = Value::makeImm(0);
                    neg.b = idx.v;
                    g.b = Value::makeReg(emitValue(std::move(neg)));
                }
                rhs = RV{Value::makeReg(emitValue(std::move(g))),
                         ScalarKind::U64};
            } else {
                cur = convert(cur, ck);
                rv = convert(rv, ck);
                Inst bin;
                bin.op = Opcode::Bin;
                bin.binOp = bop;
                bin.kind = ck;
                bin.a = cur.v;
                bin.b = rv.v;
                bin.flag = true; // from source arithmetic
                bin.loc = mapLoc(a->rhs()->nodeId());
                rhs = RV{Value::makeReg(emitValue(std::move(bin))), ck};
            }
        }
        rhs = convert(rhs, lk);
        Inst st;
        st.op = Opcode::Store;
        st.a = addr;
        st.b = rhs.v;
        st.imm = lt->size();
        st.loc = mapLoc(a->lhs()->nodeId());
        emit(std::move(st));
    }

    //===------------------------------------------------------------===//
    // Expressions
    //===------------------------------------------------------------===//

    RV
    convert(RV rv, ScalarKind to)
    {
        if (rv.kind == to || to == ScalarKind::Void)
            return rv;
        if (rv.v.isImm()) {
            return RV{Value::makeImm(canonicalize(rv.v.imm, to)), to};
        }
        Inst c;
        c.op = Opcode::Cast;
        c.kind = to;
        c.a = rv.v;
        return RV{Value::makeReg(emitValue(std::move(c))), to};
    }

    /** Address of an lvalue (or of an array/struct rvalue operand). */
    Value
    lowerAddr(const Expr *e)
    {
        switch (e->kind()) {
          case NodeKind::VarRef: {
            const VarDecl *v = e->as<VarRef>()->decl();
            Inst addr;
            if (v->storage() == Storage::Global) {
                addr.op = Opcode::GlobalAddr;
                addr.object = globalIndex_.at(v);
            } else {
                addr.op = Opcode::FrameAddr;
                addr.object = localIndex_.at(v);
            }
            addr.loc = mapLoc(e->nodeId());
            return Value::makeReg(emitValue(std::move(addr)));
          }
          case NodeKind::Unary: {
            auto *u = e->as<Unary>();
            UBF_ASSERT(u->op() == UnaryOp::Deref,
                       "address of non-lvalue unary");
            RV p = lowerExpr(u->sub());
            return p.v;
          }
          case NodeKind::Index: {
            auto *ix = e->as<Index>();
            const Type *bt = ix->base()->type();
            Value base;
            uint64_t bound = 0;
            if (bt->isArray()) {
                base = lowerAddr(ix->base());
                bound = bt->arraySize();
            } else {
                base = lowerExpr(ix->base()).v;
            }
            RV idx = convert(lowerExpr(ix->index()), ScalarKind::S64);
            Inst g;
            g.op = Opcode::Gep;
            g.a = base;
            g.b = idx.v;
            g.imm = indexResultType(bt)->size();
            g.bound = bound;
            g.loc = mapLoc(e->nodeId());
            return Value::makeReg(emitValue(std::move(g)));
          }
          case NodeKind::Member: {
            auto *m = e->as<Member>();
            Value base = m->isArrow() ? lowerExpr(m->base()).v
                                      : lowerAddr(m->base());
            Inst g;
            g.op = Opcode::Gep;
            g.a = base;
            g.b = Value::makeImm(m->field()->offset());
            g.imm = 1;
            g.loc = mapLoc(e->nodeId());
            return Value::makeReg(emitValue(std::move(g)));
          }
          default:
            UBF_PANIC("lowerAddr: not an lvalue");
        }
    }

    RV
    lowerExpr(const Expr *e)
    {
        switch (e->kind()) {
          case NodeKind::IntLit: {
            ScalarKind k = scalarKindOf(e->type());
            return RV{Value::makeImm(
                          canonicalize(e->as<IntLit>()->value(), k)),
                      k};
          }
          case NodeKind::VarRef: {
            const Type *t = e->type();
            if (t->isArray()) {
                // Array decay: the value is the address.
                return RV{lowerAddr(e), ScalarKind::U64};
            }
            Value addr = lowerAddr(e);
            Inst ld;
            ld.op = Opcode::Load;
            ld.a = addr;
            ld.imm = t->size();
            ld.kind = scalarKindOf(t);
            ld.loc = mapLoc(e->nodeId());
            return RV{Value::makeReg(emitValue(std::move(ld))),
                      scalarKindOf(t)};
          }
          case NodeKind::Unary:
            return lowerUnary(e->as<Unary>());
          case NodeKind::Binary:
            return lowerBinary(e->as<Binary>());
          case NodeKind::Select: {
            auto *s = e->as<Select>();
            ScalarKind k = scalarKindOf(e->type());
            uint32_t tmp = allocTemp();
            RV cond = lowerExpr(s->cond());
            uint32_t t_bb = newBlock();
            uint32_t f_bb = newBlock();
            uint32_t join_bb = newBlock();
            emitCondBr(cond, t_bb, f_bb, mapLoc(s->nodeId()));
            curBlock_ = t_bb;
            storeTemp(tmp, convert(lowerExpr(s->trueExpr()), k));
            emitBr(join_bb);
            curBlock_ = f_bb;
            storeTemp(tmp, convert(lowerExpr(s->falseExpr()), k));
            emitBr(join_bb);
            curBlock_ = join_bb;
            return loadTemp(tmp, k);
          }
          case NodeKind::Index:
          case NodeKind::Member: {
            const Type *t = e->type();
            if (t->isArray())
                return RV{lowerAddr(e), ScalarKind::U64};
            Value addr = lowerAddr(e);
            Inst ld;
            ld.op = Opcode::Load;
            ld.a = addr;
            ld.imm = t->size();
            ld.kind = scalarKindOf(t);
            ld.loc = mapLoc(e->nodeId());
            return RV{Value::makeReg(emitValue(std::move(ld))),
                      scalarKindOf(t)};
          }
          case NodeKind::Cast: {
            auto *c = e->as<Cast>();
            RV sub = lowerExpr(c->sub());
            return convert(sub, scalarKindOf(e->type()));
          }
          case NodeKind::Call:
            return lowerCall(e->as<Call>());
          default:
            UBF_PANIC("lowerExpr: unhandled expression kind");
        }
    }

    void
    storeTemp(uint32_t obj, RV rv)
    {
        Inst fa;
        fa.op = Opcode::FrameAddr;
        fa.object = obj;
        uint32_t addr = emitValue(std::move(fa));
        Inst st;
        st.op = Opcode::Store;
        st.a = Value::makeReg(addr);
        st.b = rv.v;
        st.imm = 8;
        emit(std::move(st));
    }

    RV
    loadTemp(uint32_t obj, ScalarKind k)
    {
        Inst fa;
        fa.op = Opcode::FrameAddr;
        fa.object = obj;
        uint32_t addr = emitValue(std::move(fa));
        Inst ld;
        ld.op = Opcode::Load;
        ld.a = Value::makeReg(addr);
        ld.imm = 8;
        ld.kind = k;
        return RV{Value::makeReg(emitValue(std::move(ld))), k};
    }

    RV
    lowerUnary(const Unary *u)
    {
        switch (u->op()) {
          case UnaryOp::Deref: {
            const Type *t = u->type();
            if (t->isArray())
                return RV{lowerAddr(u), ScalarKind::U64};
            Value addr = lowerAddr(u);
            Inst ld;
            ld.op = Opcode::Load;
            ld.a = addr;
            ld.imm = t->size();
            ld.kind = scalarKindOf(t);
            ld.loc = mapLoc(u->nodeId());
            return RV{Value::makeReg(emitValue(std::move(ld))),
                      scalarKindOf(t)};
          }
          case UnaryOp::AddrOf:
            return RV{lowerAddr(u->sub()), ScalarKind::U64};
          case UnaryOp::Neg: {
            ScalarKind k = scalarKindOf(u->type());
            RV sub = convert(lowerExpr(u->sub()), k);
            Inst bin;
            bin.op = Opcode::Bin;
            bin.binOp = BinaryOp::Sub;
            bin.kind = k;
            bin.a = Value::makeImm(0);
            bin.b = sub.v;
            bin.flag = true; // -INT_MIN is real signed overflow
            bin.loc = mapLoc(u->nodeId());
            return RV{Value::makeReg(emitValue(std::move(bin))), k};
          }
          case UnaryOp::BitNot: {
            ScalarKind k = scalarKindOf(u->type());
            RV sub = convert(lowerExpr(u->sub()), k);
            Inst bin;
            bin.op = Opcode::Bin;
            bin.binOp = BinaryOp::BitXor;
            bin.kind = k;
            bin.a = sub.v;
            bin.b = Value::makeImm(canonicalize(~0ULL, k));
            bin.loc = mapLoc(u->nodeId());
            return RV{Value::makeReg(emitValue(std::move(bin))), k};
          }
          case UnaryOp::LogNot: {
            RV sub = lowerExpr(u->sub());
            Inst bin;
            bin.op = Opcode::Bin;
            bin.binOp = BinaryOp::Eq;
            bin.kind = sub.kind;
            bin.a = sub.v;
            bin.b = Value::makeImm(0);
            bin.loc = mapLoc(u->nodeId());
            return RV{Value::makeReg(emitValue(std::move(bin))),
                      ScalarKind::S32};
          }
        }
        UBF_PANIC("unknown unary op");
    }

    RV
    lowerBinary(const Binary *b)
    {
        BinaryOp op = b->op();
        if (isLogicalOp(op)) {
            // Short circuit: tmp = lhs ? (op==&& ? rhs!=0 : 1)
            //                          : (op==&& ? 0 : rhs!=0)
            uint32_t tmp = allocTemp();
            RV lhs = lowerExpr(b->lhs());
            uint32_t rhs_bb = newBlock();
            uint32_t short_bb = newBlock();
            uint32_t join_bb = newBlock();
            bool is_and = op == BinaryOp::LAnd;
            emitCondBr(lhs, is_and ? rhs_bb : short_bb,
                       is_and ? short_bb : rhs_bb,
                       mapLoc(b->nodeId()));
            curBlock_ = rhs_bb;
            {
                RV rhs = lowerExpr(b->rhs());
                Inst ne;
                ne.op = Opcode::Bin;
                ne.binOp = BinaryOp::Ne;
                ne.kind = rhs.kind;
                ne.a = rhs.v;
                ne.b = Value::makeImm(0);
                RV norm{Value::makeReg(emitValue(std::move(ne))),
                        ScalarKind::S32};
                storeTemp(tmp, norm);
            }
            emitBr(join_bb);
            curBlock_ = short_bb;
            storeTemp(tmp,
                      RV{Value::makeImm(is_and ? 0 : 1), ScalarKind::S32});
            emitBr(join_bb);
            curBlock_ = join_bb;
            return loadTemp(tmp, ScalarKind::S32);
        }

        const Type *lt = b->lhs()->type();
        const Type *rt = b->rhs()->type();
        bool lptr = lt->isPointer() || lt->isArray();
        bool rptr = rt->isPointer() || rt->isArray();

        if ((lptr || rptr) && (op == BinaryOp::Add ||
                               op == BinaryOp::Sub)) {
            if (lptr && rptr) {
                // Pointer difference in elements.
                RV l = lowerExpr(b->lhs());
                RV r = lowerExpr(b->rhs());
                Inst sub;
                sub.op = Opcode::Bin;
                sub.binOp = BinaryOp::Sub;
                sub.kind = ScalarKind::S64;
                sub.a = l.v;
                sub.b = r.v;
                uint32_t diff = emitValue(std::move(sub));
                uint64_t esz = lt->element()->size();
                if (esz > 1) {
                    Inst div;
                    div.op = Opcode::Bin;
                    div.binOp = BinaryOp::Div;
                    div.kind = ScalarKind::S64;
                    div.a = Value::makeReg(diff);
                    div.b = Value::makeImm(esz);
                    diff = emitValue(std::move(div));
                }
                return RV{Value::makeReg(diff), ScalarKind::S64};
            }
            const Expr *pe = lptr ? b->lhs() : b->rhs();
            const Expr *ie = lptr ? b->rhs() : b->lhs();
            RV p = lowerExpr(pe);
            RV idx = convert(lowerExpr(ie), ScalarKind::S64);
            if (op == BinaryOp::Sub) {
                Inst neg;
                neg.op = Opcode::Bin;
                neg.binOp = BinaryOp::Sub;
                neg.kind = ScalarKind::S64;
                neg.a = Value::makeImm(0);
                neg.b = idx.v;
                idx = RV{Value::makeReg(emitValue(std::move(neg))),
                         ScalarKind::S64};
            }
            const Type *et =
                (lptr ? lt : rt)->element();
            Inst g;
            g.op = Opcode::Gep;
            g.a = p.v;
            g.b = idx.v;
            g.imm = et->size();
            g.loc = mapLoc(b->nodeId());
            return RV{Value::makeReg(emitValue(std::move(g))),
                      ScalarKind::U64};
        }

        // Pointer comparisons happen in U64.
        if (lptr || rptr) {
            UBF_ASSERT(isComparisonOp(op), "bad pointer operator");
            RV l = lowerExpr(b->lhs());
            RV r = lowerExpr(b->rhs());
            Inst cmp;
            cmp.op = Opcode::Bin;
            cmp.binOp = op;
            cmp.kind = ScalarKind::U64;
            cmp.a = l.v;
            cmp.b = r.v;
            cmp.loc = mapLoc(b->nodeId());
            return RV{Value::makeReg(emitValue(std::move(cmp))),
                      ScalarKind::S32};
        }

        TypeTable &tt = const_cast<Program &>(prog_).types();
        if (isComparisonOp(op)) {
            const Type *common = commonType(tt, lt, rt);
            ScalarKind ck = scalarKindOf(common);
            RV l = convert(lowerExpr(b->lhs()), ck);
            RV r = convert(lowerExpr(b->rhs()), ck);
            Inst cmp;
            cmp.op = Opcode::Bin;
            cmp.binOp = op;
            cmp.kind = ck;
            cmp.a = l.v;
            cmp.b = r.v;
            cmp.loc = mapLoc(b->nodeId());
            return RV{Value::makeReg(emitValue(std::move(cmp))),
                      ScalarKind::S32};
        }

        ScalarKind rk = scalarKindOf(b->type());
        RV l, r;
        if (isShiftOp(op)) {
            l = convert(lowerExpr(b->lhs()), rk);
            r = convert(lowerExpr(b->rhs()), ScalarKind::S64);
        } else {
            l = convert(lowerExpr(b->lhs()), rk);
            r = convert(lowerExpr(b->rhs()), rk);
        }
        Inst bin;
        bin.op = Opcode::Bin;
        bin.binOp = op;
        bin.kind = rk;
        bin.a = l.v;
        bin.b = r.v;
        bin.flag = true; // source-level arithmetic: sanitizer-checkable
        bin.loc = mapLoc(b->nodeId());
        return RV{Value::makeReg(emitValue(std::move(bin))), rk};
    }

    RV
    lowerCall(const Call *c)
    {
        const FunctionDecl *callee = c->callee();
        std::vector<RV> args;
        args.reserve(c->args().size());
        for (size_t i = 0; i < c->args().size(); i++) {
            RV a = lowerExpr(c->args()[i]);
            a = convert(a, scalarKindOf(callee->params()[i]->type()));
            args.push_back(a);
        }
        SourceLoc loc = mapLoc(c->nodeId());
        auto simple = [&](Opcode op) {
            Inst inst;
            inst.op = op;
            if (args.size() > 0)
                inst.a = args[0].v;
            if (args.size() > 1)
                inst.b = args[1].v;
            if (args.size() > 2)
                inst.c = args[2].v;
            inst.loc = loc;
            return inst;
        };
        switch (callee->builtin()) {
          case Builtin::Malloc: {
            Inst m = simple(Opcode::Malloc);
            return RV{Value::makeReg(emitValue(std::move(m))),
                      ScalarKind::U64};
          }
          case Builtin::Free:
            emit(simple(Opcode::Free));
            return RV{Value::makeImm(0), ScalarKind::S32};
          case Builtin::Checksum:
            emit(simple(Opcode::Checksum));
            return RV{Value::makeImm(0), ScalarKind::S32};
          case Builtin::LogVal:
            emit(simple(Opcode::LogVal));
            return RV{Value::makeImm(0), ScalarKind::S32};
          case Builtin::LogPtr:
            emit(simple(Opcode::LogPtr));
            return RV{Value::makeImm(0), ScalarKind::S32};
          case Builtin::LogBuf:
            emit(simple(Opcode::LogBuf));
            return RV{Value::makeImm(0), ScalarKind::S32};
          case Builtin::LogScopeEnter:
            emit(simple(Opcode::LogScopeEnter));
            return RV{Value::makeImm(0), ScalarKind::S32};
          case Builtin::LogScopeExit:
            emit(simple(Opcode::LogScopeExit));
            return RV{Value::makeImm(0), ScalarKind::S32};
          case Builtin::None:
            break;
        }
        Inst call;
        call.op = Opcode::Call;
        call.callee = funcIndex_.at(callee);
        call.kind = callee->retType()->isVoid()
                        ? ScalarKind::Void
                        : scalarKindOf(callee->retType());
        for (const RV &a : args)
            call.args.push_back(a.v);
        call.loc = loc;
        if (call.kind == ScalarKind::Void) {
            emit(std::move(call));
            return RV{Value::makeImm(0), ScalarKind::S32};
        }
        ScalarKind k = call.kind;
        return RV{Value::makeReg(emitValue(std::move(call))), k};
    }

    const Program &prog_;
    const SourceMap &map_;
    /** Provenance recording sink (base lowering); null otherwise. */
    LoweringInfo *record_ = nullptr;
    /** Base-module reuse plan (incremental lowering); null otherwise. */
    const ReusePlan *reuse_ = nullptr;
    /** Statement-level reuse for the function being lowered. */
    const StmtReuseCtx *stmtReuse_ = nullptr;
    /** record_->functions entry of the function being lowered. */
    FunctionLoweringInfo *curInfo_ = nullptr;
    /** Node ids already recorded in curInfo_->locDeps. */
    std::unordered_set<uint32_t> depSet_;
    /** Frame index of each declared variable (by decl nodeId) in the
     *  function being lowered — how copied statement ranges rebind
     *  references to variables whose frame index shifted. Node ids
     *  are dense per program, so this is a plain vector; per-function
     *  clearing is an epoch bump, not a wipe. */
    std::vector<uint32_t> declIdSlot_;
    std::vector<uint32_t> declIdEpoch_;
    uint32_t declEpoch_ = 1;

    void clearDeclIndex() { declEpoch_++; }

    void
    setDeclIndex(uint32_t declId, uint32_t idx)
    {
        if (declId >= declIdSlot_.size()) {
            declIdSlot_.resize(declId + 1, 0);
            declIdEpoch_.resize(declId + 1, 0);
        }
        declIdSlot_[declId] = idx;
        declIdEpoch_[declId] = declEpoch_;
    }

    const uint32_t *
    findDeclIndex(uint32_t declId) const
    {
        if (declId >= declIdSlot_.size() ||
            declIdEpoch_[declId] != declEpoch_)
            return nullptr;
        return &declIdSlot_[declId];
    }
    Module module_;
    std::unordered_map<const VarDecl *, uint32_t> globalIndex_;
    std::unordered_map<const VarDecl *, uint32_t> localIndex_;
    std::unordered_map<const FunctionDecl *, uint32_t> funcIndex_;
};

} // namespace

Module
lowerProgram(const Program &program, const SourceMap &map,
             LoweringInfo *info)
{
    return Lowerer(program, map, info).run();
}

Module
lowerProgramIncremental(const ast::Program &derived,
                        const ast::SourceMap &derivedMap,
                        const Module &base, const LoweringInfo &baseInfo,
                        const ast::SourceMap &baseMap,
                        uint32_t perturbedFnId, IncrementalStats *stats)
{
    ReusePlan plan{&base, &baseInfo, &baseMap, perturbedFnId, stats};
    return Lowerer(derived, derivedMap, nullptr, &plan).run();
}

} // namespace ubfuzz::ir
