/**
 * @file
 * The register IR of the simulated compilers.
 *
 * A "binary" in this repository is an ir::Module plus debug metadata:
 * every instruction carries the (line, offset) of the source expression
 * it was lowered from, which is what the VM's tracing (the "debugger")
 * and the crash-site mapping oracle consume — the -g of our toolchain.
 *
 * Design notes:
 *  - Registers are single-assignment by construction (lowering emits a
 *    fresh register per value) and only used within the defining block;
 *    values that cross control flow live in frame slots. This keeps
 *    optimization passes honest without needing phi nodes.
 *  - Sanitizer checks are explicit instructions inserted by the
 *    sanitizer passes; the VM implements their runtime semantics
 *    against shadow memory.
 */

#ifndef UBFUZZ_IR_IR_H
#define UBFUZZ_IR_IR_H

#include <cstdint>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "support/source_loc.h"
#include "support/toolchain.h"

namespace ubfuzz::ir {

/** Value kinds reuse the AST scalar kinds; pointers are U64. */
using ScalarKind = ast::ScalarKind;
using BinOp = ast::BinaryOp;

enum class Opcode : uint8_t {
    Nop,
    Const,         ///< dst = imm
    Bin,           ///< dst = a <binOp> b, in `kind`
    Cast,          ///< dst = convert a from a.kind to `kind`
    Select,        ///< dst = a if cond(reg c) != 0 else b (no side effects)
    FrameAddr,     ///< dst = address of frame object `object`
    GlobalAddr,    ///< dst = address of global `object`
    Gep,           ///< dst = a + b * imm(elemSize); `bound`>0 for arrays
    Load,          ///< dst = *[a], `imm` bytes, result `kind`
    Store,         ///< *[a] = b, `imm` bytes
    MemCopy,       ///< copy `imm` bytes from [b] to [a]
    Br,            ///< goto targets[0]
    CondBr,        ///< if a != 0 goto targets[0] else targets[1]
    Ret,           ///< return a (optional)
    Call,          ///< dst = call functions[callee](args)
    Malloc,        ///< dst = __malloc(a)
    Free,          ///< __free(a)
    Checksum,      ///< fold a into the program checksum
    LogVal,        ///< profiling: record value b for site a
    LogPtr,        ///< profiling: record pointer b for site a
    LogBuf,        ///< profiling: record buffer [b, b+c) for site a
    LogScopeEnter, ///< profiling: scope a entered
    LogScopeExit,  ///< profiling: scope a exited
    LifetimeStart, ///< frame object `object` enters scope
    LifetimeEnd,   ///< frame object `object` leaves scope
    // --- sanitizer instructions (inserted by sanitizer passes) ---
    AsanCheck,     ///< shadow-check [a, a+imm); isWrite in flag
    UbsanArith,    ///< signed-overflow check of a <binOp> b in `kind`
    UbsanShift,    ///< shift-amount check of b for width of `kind`
    UbsanDiv,      ///< division check of a / b in `kind`
    UbsanNull,     ///< null-pointer check of a
    UbsanBounds,   ///< array-bounds check: 0 <= a < imm
    MsanCheck,     ///< uninitialized-value check of a
    // --- hardening instructions (inserted by hardening passes) ---
    HardenCheck,   ///< duplicate-compare: a (reg) must raw-equal b
};

/**
 * Number of IR opcodes. New opcodes must be appended before this stays
 * correct; the bytecode flattener sizes its opcode->handler table with
 * it and a test walks every value, so a gap shows up immediately.
 */
inline constexpr size_t kNumOpcodes =
    static_cast<size_t>(Opcode::HardenCheck) + 1;

const char *opcodeName(Opcode op);

/** An operand: a register or an immediate. */
struct Value
{
    enum class Tag : uint8_t { None, Reg, Imm };
    Tag tag = Tag::None;
    uint32_t reg = 0;
    uint64_t imm = 0;

    static Value
    makeReg(uint32_t r)
    {
        Value v;
        v.tag = Tag::Reg;
        v.reg = r;
        return v;
    }

    static Value
    makeImm(uint64_t i)
    {
        Value v;
        v.tag = Tag::Imm;
        v.imm = i;
        return v;
    }

    bool isReg() const { return tag == Tag::Reg; }
    bool isImm() const { return tag == Tag::Imm; }
    bool isNone() const { return tag == Tag::None; }

    friend bool
    operator==(const Value &x, const Value &y)
    {
        if (x.tag != y.tag)
            return false;
        if (x.tag == Tag::Reg)
            return x.reg == y.reg;
        if (x.tag == Tag::Imm)
            return x.imm == y.imm;
        return true;
    }
};

/** One IR instruction. A deliberately fat struct: simplicity first. */
struct Inst
{
    Opcode op = Opcode::Nop;
    /** Operation / result kind (value width + signedness). */
    ScalarKind kind = ScalarKind::S64;
    /** Destination register; 0 means "no result". */
    uint32_t dst = 0;
    BinOp binOp = BinOp::Add;
    Value a, b, c;
    /** Size / constant / elem-size / bound, depending on opcode. */
    uint64_t imm = 0;
    /** Branch targets (block ids). */
    uint32_t targets[2] = {0, 0};
    /** Callee function index for Call. */
    uint32_t callee = 0;
    /** Frame/global object index. */
    uint32_t object = 0;
    /** AsanCheck: is this a write access? */
    bool flag = false;
    /** Static array bound for Gep from a direct array subscript. */
    uint64_t bound = 0;
    std::vector<Value> args;
    /** Debug metadata: source (line, offset). */
    SourceLoc loc;

    bool
    isTerminator() const
    {
        return op == Opcode::Br || op == Opcode::CondBr ||
               op == Opcode::Ret;
    }

    /** Does executing this instruction write memory? */
    bool
    writesMemory() const
    {
        return op == Opcode::Store || op == Opcode::MemCopy ||
               op == Opcode::Call || op == Opcode::Malloc ||
               op == Opcode::Free;
    }

    /** Is this a sanitizer check or poison-management instruction
     *  (hardening checks included — instrumentation, not payload)? */
    bool
    isSanitizerOp() const
    {
        return op >= Opcode::AsanCheck && op <= Opcode::HardenCheck;
    }
};

struct BasicBlock
{
    uint32_t id = 0;
    std::vector<Inst> insts;
};

/** A stack-allocated object of one function frame. */
struct FrameObject
{
    std::string name;
    uint64_t size = 0;
    uint32_t align = 8;
    /** Scoped objects get lifetime markers (use-after-scope support). */
    bool scoped = false;
    /** Redzone width applied by ASan; 0 when not instrumented. */
    uint32_t redzone = 0;
    /** The AST VarDecl node id this object was lowered from (0: temp). */
    uint32_t declId = 0;
};

/** A module-level global with initial bytes and relocations. */
struct GlobalObject
{
    std::string name;
    uint64_t size = 0;
    uint32_t align = 8;
    std::vector<uint8_t> init; ///< sized to `size`; zero-filled default
    struct Reloc
    {
        uint64_t offset;      ///< where in this global to patch
        uint32_t targetIndex; ///< which global's address to write
        int64_t addend;
    };
    std::vector<Reloc> relocs;
    /** Redzone width applied by ASan for globals; 0 = none. */
    uint32_t redzone = 0;
    /**
     * Bug-injection support (Wrong Red-Zone Buffer): number of leading
     * right-redzone bytes the (buggy) ASan pass fails to poison.
     */
    uint32_t poisonSkip = 0;
    uint32_t declId = 0;
};

struct Function
{
    std::string name;
    ScalarKind retKind = ScalarKind::Void;
    /** Parameter count; parameters are frame objects [0, numParams). */
    uint32_t numParams = 0;
    std::vector<FrameObject> frame;
    std::vector<BasicBlock> blocks;
    uint32_t numRegs = 1; ///< register ids are 1..numRegs-1 (0 invalid)

    uint32_t
    newReg()
    {
        return numRegs++;
    }
};

/**
 * MSan shadow-propagation policy. The MSan *pass* decides these (with
 * bug hooks); the VM merely obeys. Mirrors how real MSan compiles its
 * propagation logic into the binary.
 */
struct MsanPolicy
{
    bool enabled = false;
    /**
     * Figure 12f bug: treat `x - const` as fully defined even when x is
     * uninitialized.
     */
    bool bugSubConstDefined = false;
    /** Variant: bitwise AND always yields defined values. */
    bool bugAndDefined = false;
};

struct Module
{
    std::vector<GlobalObject> globals;
    std::vector<Function> functions;
    int32_t mainIndex = -1;
    /** ASan redzones for globals are applied at load when true. */
    bool asanGlobals = false;
    /** ASan redzones + poisoning for heap allocations when true. */
    bool asanHeap = false;
    MsanPolicy msan;
    /**
     * Which sanitizer pass instrumented this module (None until the
     * sanitizer stage runs). The staged compiler reuses lowered and
     * early-optimized modules across configurations by cloning them;
     * this field lets san::instrument reject the double
     * instrumentation a missing clone would silently cause.
     */
    SanitizerKind instrumentedWith = SanitizerKind::None;
    /**
     * Bitmask of hardening passes that ran on this module (harden::
     * kDuplicateCompare / kCfgSignature). Like `instrumentedWith`,
     * this is the per-family-once invariant the pass pipeline
     * enforces: re-running a family whose bit is already set panics.
     * Part of executionKey — a hardened module must never share a
     * cached execution with its unhardened twin.
     */
    uint32_t hardenedWith = 0;

    Function *
    findFunction(const std::string &name)
    {
        for (auto &f : functions)
            if (f.name == name)
                return &f;
        return nullptr;
    }
};

/**
 * Deep-copy a module. Module is value-semantic throughout (vectors of
 * plain structs, no pointers), so a copy *is* a deep clone; this
 * function exists to make the staged compiler's clone points explicit
 * and greppable — every specialization of a shared/cached module must
 * go through it.
 */
Module cloneModule(const Module &m);

/** Canonical 64-bit representation of a value of kind @p k
 *  (truncate to the kind's width, then sign- or zero-extend). */
uint64_t canonicalValue(uint64_t raw, ScalarKind k);

/**
 * Evaluate a binary operation on canonical values with the exact
 * semantics the VM uses (wrapping arithmetic, x86-style shift-count
 * masking). Sets @p trapped for division by zero and INT_MIN / -1
 * instead of producing a value. Shared by the VM and constant folding
 * so they can never disagree.
 */
uint64_t evalBinary(BinOp op, ScalarKind k, uint64_t a, uint64_t b,
                    bool &trapped);

/** Render the module as text (for tests and debugging). */
std::string printModule(const Module &m);

/**
 * Canonical serialization of every field the VM reads during
 * execution: module flags (asanGlobals/asanHeap/MsanPolicy), global
 * layout and contents (size, align, redzone, poisonSkip, init bytes,
 * relocations), and the full instruction stream including debug
 * locations. Two modules with equal keys are indistinguishable to
 * vm::execute under every ExecOptions — which is what lets a batch
 * runner execute one of them and reuse the result for the other.
 * Names are deliberately excluded (the VM never reads them), so
 * renamed-but-identical binaries still share a key.
 */
std::string executionKey(const Module &m);

/**
 * Compact identity of a binary: FNV-1a hash and length of its
 * executionKey. Two modules with equal keys are indistinguishable to
 * the VM under every ExecOptions (same collision-risk tradeoff the
 * corpus dedup makes: a 64-bit hash *and* the serialized length).
 * The batch runner's execution dedup and the VM's code cache both key
 * on this, so one serialization pass serves both.
 */
struct BinaryKey
{
    uint64_t hash = 0;
    uint64_t len = 0;

    friend bool
    operator==(const BinaryKey &a, const BinaryKey &b)
    {
        return a.hash == b.hash && a.len == b.len;
    }

    friend bool
    operator<(const BinaryKey &a, const BinaryKey &b)
    {
        return a.hash != b.hash ? a.hash < b.hash : a.len < b.len;
    }
};

/**
 * Hasher for unordered containers keyed by BinaryKey. The key already
 * carries a 64-bit FNV-1a of the serialized binary, so this just folds
 * the length in (one multiply by the golden-ratio constant) instead of
 * re-hashing anything.
 */
struct BinaryKeyHash
{
    size_t
    operator()(const BinaryKey &k) const noexcept
    {
        return static_cast<size_t>(
            k.hash ^ (k.len * 0x9E3779B97F4A7C15ULL));
    }
};

/** The BinaryKey of @p m (serializes executionKey(m) once). */
BinaryKey binaryKey(const Module &m);

/**
 * Structural sanity check (register def-before-use inside blocks,
 * terminators present, branch targets valid). @return empty string when
 * the module is well-formed, else a description of the first problem.
 */
std::string verifyModule(const Module &m);

} // namespace ubfuzz::ir

#endif // UBFUZZ_IR_IR_H
