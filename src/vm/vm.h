/**
 * @file
 * The execution engine for compiled IR modules.
 *
 * The VM plays three roles from the paper's toolchain:
 *  - the *machine* that runs compiled binaries (memory, traps, exit code),
 *  - the *sanitizer runtime* (shadow memory for ASan poisoning and MSan
 *    definedness; executing the check instructions the passes inserted),
 *  - the *debugger* (LLDB in the paper): with tracing enabled it records
 *    the (line, offset) of every executed instruction, which is exactly
 *    what Algorithm 2's GetExecutedSites needs.
 *
 * Memory model: three segments (globals / stack / heap) backed by flat
 * byte arrays. Out-of-bounds accesses inside a mapped segment behave
 * like real hardware — they read or corrupt neighbouring bytes silently
 * — while accesses outside any segment (or to page zero) raise a
 * hardware trap. Uninitialized memory reads produce the deterministic
 * fill pattern 0xAA.
 */

#ifndef UBFUZZ_VM_VM_H
#define UBFUZZ_VM_VM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/source_loc.h"
#include "vm/profile_data.h"

namespace ubfuzz::vm {

/** What a sanitizer (or the ground-truth checker) reported. */
enum class ReportKind : uint8_t {
    None,
    StackBufferOverflow,
    GlobalBufferOverflow,
    HeapBufferOverflow,
    HeapUseAfterFree,
    StackUseAfterScope,
    NullDeref,
    SignedIntegerOverflow,
    ShiftOutOfBounds,
    DivByZero,
    ArrayIndexOOB,
    UninitValue,
    /** A hardening check (duplicate-compare / CFG signature) caught a
     *  corrupted value — only ever raised while a FaultPlan is armed. */
    HardeningFault,
};

const char *reportKindName(ReportKind k);

/** Hardware-level failure of an unchecked execution. */
enum class TrapKind : uint8_t {
    None,
    Segfault,
    DivByZero,
    StackOverflow,
    InvalidFree,
    OutOfMemory,
};

const char *trapKindName(TrapKind k);

/**
 * A deterministic single-event upset: at executed step `step` (1-based,
 * in the VM's own step counter), flip one bit in a register or frame
 * slot of the innermost live frame. `target` picks the victim — bit 0
 * selects register (0) vs frame-slot (1), the remaining bits index into
 * whatever the frame actually has (modulo-reduced, so any uint64 is a
 * valid plan). `bitIndex` picks the bit (mod 64 for registers, mod 8
 * within the chosen byte for slots). Derived from the unit RNG stream,
 * so plans are identical across --jobs values.
 */
struct FaultPlan
{
    uint64_t step = 0;
    uint64_t target = 0;
    uint8_t bitIndex = 0;
};

/** Execution options. */
struct ExecOptions
{
    /** Maximum executed instructions before Timeout. */
    uint64_t stepLimit = 4'000'000;
    /** Record executed (line, offset) sites (the "debugger"). */
    bool recordTrace = false;
    /** Collect __log_* profiling records into `profile`. */
    RawProfile *profile = nullptr;
    /**
     * Ground-truth mode: precise object-based memory checking plus
     * always-on arithmetic/shift/division/uninit checking, independent
     * of any sanitizer instrumentation. Used to decide "does this
     * program actually contain UB on this input" (Table 4) and to
     * validate UBGen's output.
     */
    bool groundTruth = false;
    /**
     * Fault-injection mode: apply this single-bit upset during the
     * run. Arms the HardenCheck instructions (they only report while a
     * plan is armed, which is what keeps hardened binaries
     * drift-free on the ordinary sanitizer matrix). Fault runs bypass
     * the CodeCache and interpret a fresh baseline-tier translation:
     * fused superinstructions retire two records per dispatch, which
     * would break the step-exact fault timing.
     */
    const FaultPlan *fault = nullptr;
};

/** The outcome of one execution. */
struct ExecResult
{
    enum class Kind : uint8_t { Clean, Report, Trap, Timeout };
    Kind kind = Kind::Clean;

    /** Sanitizer report details (kind == Report). */
    ReportKind report = ReportKind::None;
    SourceLoc reportLoc;

    /** Trap details (kind == Trap). */
    TrapKind trap = TrapKind::None;
    SourceLoc trapLoc;

    int64_t exitCode = 0;
    uint64_t checksum = 0;
    uint64_t steps = 0;
    /** Fault injection: the armed FaultPlan's bit flip actually landed
     *  (the run reached plan.step and the frame had a victim). */
    bool faultApplied = false;

    /** Executed sites in order (consecutive duplicates collapsed). */
    std::vector<SourceLoc> trace;

    bool crashed() const { return kind == Kind::Report; }
    bool cleanOrTrap() const
    {
        return kind == Kind::Clean || kind == Kind::Trap;
    }

    /** The crash site per Definition 2 (only valid when crashed()). */
    SourceLoc
    crashSite() const
    {
        return reportLoc;
    }

    std::string str() const;
};

/**
 * Execution-engine work counters. A Machine owns one set; the campaign
 * accumulates them per unit (CampaignStats::exec) and bench_throughput
 * prints them, exactly like compiler::CompileStats. They count work
 * *actually performed*, so a reintroduced machine-per-execution rebuild
 * shows up as `machinesBuilt` jumping from one-per-program back to
 * one-per-run.
 */
struct ExecStats
{
    /** Full Machine constructions (arena allocation + 0xAA fill). */
    size_t machinesBuilt = 0;
    /** Cheap re-arms between runs on an already-built machine. */
    size_t resets = 0;
    /** Executions actually interpreted by a machine. */
    size_t executions = 0;
    /**
     * Modules flattened into bytecode (CodeCache misses). Every
     * execution resolves through the cache exactly once, so the
     * translate-once invariant is `executions == translations +
     * translationHits` — CI asserts it campaign-wide.
     */
    size_t translations = 0;
    /** Executions served by an already-flattened translation (the
     *  debugger re-execution of a silent binary is the common hit). */
    size_t translationHits = 0;
    /**
     * Executions skipped because a byte-identical binary (equal
     * ir::executionKey) already ran in the same batch; its result was
     * copied instead.
     */
    size_t dedupSkips = 0;
    /**
     * Whole testing matrices replayed from the campaign's corpus memo
     * because an identical UB program was already tested (cross-seed
     * corpus dedup). Counted by the fuzzer, not the machine.
     */
    size_t corpusSkips = 0;
    /**
     * Corpus-memo insertions refused because the memo had stopped
     * admitting at its entry cap (fuzzer::CorpusMemo never evicts; a
     * full memo recomputes duplicates instead). Counted by the fuzzer.
     * Like every other work counter here, caps change only this — the
     * cap-independence of all logical results is asserted by
     * test_orchestrator's TinyCapsAreBitIdentical.
     */
    size_t corpusCapRejects = 0;
    /**
     * Translations handed out but not retained because the CodeCache
     * had stopped admitting at its entry cap (a later run of the same
     * binary re-flattens instead of hitting).
     */
    size_t translationCapRejects = 0;
    /**
     * Hot re-translations at the fused tier (profile-guided
     * quickening: a cached binary whose run count reached the hot
     * threshold was re-flattened with the superinstruction pass).
     * Extra work on top of the baseline translations, so deliberately
     * outside the `executions == translations + translationHits`
     * identity — and not bounded by translationHits either, because
     * the unit's classifier machine shares the cache but keeps its
     * own hit counts out of these stats. Counted by the CodeCache and
     * folded per campaign unit, like the cap rejects.
     */
    size_t quickenedTranslations = 0;
    /** Superinstruction records across all quickened translations —
     *  how much pair coverage the fusion pass actually found. */
    size_t fusedRecords = 0;
    /** Bit flips actually applied by armed FaultPlans (one per fault
     *  run that reached its step with a live victim). */
    size_t faultInjections = 0;

    void
    merge(const ExecStats &o)
    {
        machinesBuilt += o.machinesBuilt;
        resets += o.resets;
        executions += o.executions;
        translations += o.translations;
        translationHits += o.translationHits;
        dedupSkips += o.dedupSkips;
        corpusSkips += o.corpusSkips;
        corpusCapRejects += o.corpusCapRejects;
        translationCapRejects += o.translationCapRejects;
        quickenedTranslations += o.quickenedTranslations;
        fusedRecords += o.fusedRecords;
        faultInjections += o.faultInjections;
    }

    friend bool operator==(const ExecStats &, const ExecStats &) =
        default;
};

/**
 * A reusable execution engine: the machine (memory segments, shadow
 * arena), sanitizer runtime, and debugger of the paper's toolchain,
 * hoisted out of the per-execution path.
 *
 * Construction allocates and 0xAA-fills the stack arena and its two
 * shadow planes once; `run()` then executes any module, and between
 * runs a cheap `reset()` re-arms the machine by restoring only the
 * bytes the previous execution actually dirtied (tracked by a write
 * watermark) instead of rebuilding everything. The differential runner
 * constructs one Machine per UB program and pushes the whole config
 * matrix — including the lazy debugger re-executions — through it.
 *
 * Guarantee: `Machine m; m.run(mod, opts)` is bit-identical to
 * `vm::execute(mod, opts)` for every preceding sequence of runs on
 * `m`, across all result fields (exit code, checksum, report, trap,
 * steps, trace). test_vm's MachineReuse suite enforces this.
 *
 * Execution goes through flattened bytecode (vm/bytecode.h): run()
 * resolves the module to a translation — via the CodeCache passed at
 * construction, or a machine-private one — and interprets it with a
 * dispatch loop specialized for the run's mode (silent / MSan-shadow /
 * ground-truth), falling back to a generic loop when tracing or
 * profiling. runReference() keeps the original struct-walking
 * interpreter alive as the semantic baseline: the test_bytecode parity
 * suite and bench_exec's ns/step microbenchmark compare against it.
 */
class CodeCache;

class Machine
{
  public:
    /** @p cache, when given, must outlive the machine; machines of one
     *  campaign unit share it. Defaults to a machine-private cache. */
    explicit Machine(CodeCache *cache = nullptr);
    ~Machine();
    Machine(Machine &&) noexcept;
    Machine &operator=(Machine &&) noexcept;
    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Execute @p module from its main function. Resets first when a
     *  previous run left state behind. @p key, when given, must equal
     *  ir::binaryKey(module) — batch runners pass the key they already
     *  computed for execution dedup instead of re-serializing. */
    ExecResult run(const ir::Module &module, const ExecOptions &opts = {},
                   const ir::BinaryKey *key = nullptr);

    /** Execute through the reference struct-walking interpreter
     *  (bit-identical by definition; kept for parity tests and the
     *  dispatch microbenchmark, not a hot path). */
    ExecResult runReference(const ir::Module &module,
                            const ExecOptions &opts = {});

    /** Re-arm explicitly (run() does this on demand); idempotent. */
    void reset();

    /** Work counters since construction (machinesBuilt counts this
     *  machine's own construction). */
    const ExecStats &stats() const;

    /** Account one execution skipped by a batch runner because an
     *  identical binary already ran (see ir::executionKey). */
    void noteDedupSkip();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Execute @p module (from its main function) on a throwaway Machine.
 *  One-off convenience; batch callers construct a Machine and reuse it. */
ExecResult execute(const ir::Module &module, const ExecOptions &opts = {});

} // namespace ubfuzz::vm

#endif // UBFUZZ_VM_VM_H
