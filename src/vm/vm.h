/**
 * @file
 * The execution engine for compiled IR modules.
 *
 * The VM plays three roles from the paper's toolchain:
 *  - the *machine* that runs compiled binaries (memory, traps, exit code),
 *  - the *sanitizer runtime* (shadow memory for ASan poisoning and MSan
 *    definedness; executing the check instructions the passes inserted),
 *  - the *debugger* (LLDB in the paper): with tracing enabled it records
 *    the (line, offset) of every executed instruction, which is exactly
 *    what Algorithm 2's GetExecutedSites needs.
 *
 * Memory model: three segments (globals / stack / heap) backed by flat
 * byte arrays. Out-of-bounds accesses inside a mapped segment behave
 * like real hardware — they read or corrupt neighbouring bytes silently
 * — while accesses outside any segment (or to page zero) raise a
 * hardware trap. Uninitialized memory reads produce the deterministic
 * fill pattern 0xAA.
 */

#ifndef UBFUZZ_VM_VM_H
#define UBFUZZ_VM_VM_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/source_loc.h"
#include "vm/profile_data.h"

namespace ubfuzz::vm {

/** What a sanitizer (or the ground-truth checker) reported. */
enum class ReportKind : uint8_t {
    None,
    StackBufferOverflow,
    GlobalBufferOverflow,
    HeapBufferOverflow,
    HeapUseAfterFree,
    StackUseAfterScope,
    NullDeref,
    SignedIntegerOverflow,
    ShiftOutOfBounds,
    DivByZero,
    ArrayIndexOOB,
    UninitValue,
};

const char *reportKindName(ReportKind k);

/** Hardware-level failure of an unchecked execution. */
enum class TrapKind : uint8_t {
    None,
    Segfault,
    DivByZero,
    StackOverflow,
    InvalidFree,
    OutOfMemory,
};

const char *trapKindName(TrapKind k);

/** Execution options. */
struct ExecOptions
{
    /** Maximum executed instructions before Timeout. */
    uint64_t stepLimit = 4'000'000;
    /** Record executed (line, offset) sites (the "debugger"). */
    bool recordTrace = false;
    /** Collect __log_* profiling records into `profile`. */
    RawProfile *profile = nullptr;
    /**
     * Ground-truth mode: precise object-based memory checking plus
     * always-on arithmetic/shift/division/uninit checking, independent
     * of any sanitizer instrumentation. Used to decide "does this
     * program actually contain UB on this input" (Table 4) and to
     * validate UBGen's output.
     */
    bool groundTruth = false;
};

/** The outcome of one execution. */
struct ExecResult
{
    enum class Kind : uint8_t { Clean, Report, Trap, Timeout };
    Kind kind = Kind::Clean;

    /** Sanitizer report details (kind == Report). */
    ReportKind report = ReportKind::None;
    SourceLoc reportLoc;

    /** Trap details (kind == Trap). */
    TrapKind trap = TrapKind::None;
    SourceLoc trapLoc;

    int64_t exitCode = 0;
    uint64_t checksum = 0;
    uint64_t steps = 0;

    /** Executed sites in order (consecutive duplicates collapsed). */
    std::vector<SourceLoc> trace;

    bool crashed() const { return kind == Kind::Report; }
    bool cleanOrTrap() const
    {
        return kind == Kind::Clean || kind == Kind::Trap;
    }

    /** The crash site per Definition 2 (only valid when crashed()). */
    SourceLoc
    crashSite() const
    {
        return reportLoc;
    }

    std::string str() const;
};

/** Execute @p module (from its main function). */
ExecResult execute(const ir::Module &module, const ExecOptions &opts = {});

} // namespace ubfuzz::vm

#endif // UBFUZZ_VM_VM_H
